// Figures 2 and 3: effect of the distance-constrained pruning threshold ε
// on both datasets — payoff difference, average payoff and CPU time for
// MPTA / GTA / FGT / IEGT with pruning at each ε, against the *-W variants
// (same algorithms with unpruned VDPS generation, ε = ∞), which appear as
// flat reference rows.
//
// Paper shape: beyond a knee (ε >= 0.6 on GM, ε >= 2 on SYN) the pruned
// effectiveness matches the -W rows while CPU time stays far below them.

#include "bench/common.h"

namespace fta {
namespace bench {
namespace {

void RunEpsilonSweep(const char* figure, const MultiCenterInstance& multi,
                     const SolverOptions& base,
                     const std::vector<double>& epsilons) {
  std::vector<std::string> header{"algorithm"};
  for (double e : epsilons) header.push_back(StrFormat("eps=%.2g", e));

  ResultTable pdif(std::string(figure) + "(a) — payoff difference", header);
  ResultTable avg(std::string(figure) + "(b) — average payoff", header);
  ResultTable cpu(std::string(figure) + "(c/d) — CPU time (s)", header);

  for (Algorithm a : PaperAlgorithms()) {
    std::vector<double> row_pdif, row_avg, row_cpu;
    for (double e : epsilons) {
      SolverOptions options = base;
      options.vdps.epsilon = e;
      const RunMetrics m = RunOnMulti(a, multi, options);
      row_pdif.push_back(m.payoff_difference);
      row_avg.push_back(m.average_payoff);
      row_cpu.push_back(m.cpu_seconds);
    }
    pdif.AddNumericRow(AlgorithmName(a), row_pdif);
    avg.AddNumericRow(AlgorithmName(a), row_avg);
    cpu.AddNumericRow(AlgorithmName(a), row_cpu);
  }
  // -W variants: unpruned generation; constant in ε, shown as flat rows.
  for (Algorithm a : PaperAlgorithms()) {
    SolverOptions options = base;
    options.vdps.epsilon = kInfinity;
    const RunMetrics m = RunOnMulti(a, multi, options);
    const std::string name = std::string(AlgorithmName(a)) + "-W";
    pdif.AddNumericRow(name,
                       std::vector<double>(epsilons.size(),
                                           m.payoff_difference));
    avg.AddNumericRow(name, std::vector<double>(epsilons.size(),
                                                m.average_payoff));
    cpu.AddNumericRow(name,
                      std::vector<double>(epsilons.size(), m.cpu_seconds));
  }
  std::printf("%s\n%s\n%s\n", pdif.ToText().c_str(), avg.ToText().c_str(),
              cpu.ToText().c_str());
}

void Main() {
  PrintHeader("Figures 2-3 — effect of the pruning threshold epsilon");
  RunEpsilonSweep("Fig 2 GM ", GmMulti(GmDefault(), GmPrepDefault()),
                  GmOptions(), {0.2, 0.4, 0.6, 0.8, 1.0});
  RunEpsilonSweep("Fig 3 SYN ", GenerateSyn(SynDefault()), SynOptions(),
                  {0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0});
}

}  // namespace
}  // namespace bench
}  // namespace fta

int main() { fta::bench::Main(); }
