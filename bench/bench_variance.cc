// Statistical robustness of the headline comparison: the paper plots
// single runs; this bench repeats the default-configuration experiment
// over several seeds (fresh instances + fresh game initializations) and
// reports mean ± 95% CI per algorithm and metric, on both dataset
// families. The claim to check: the algorithm ordering (IEGT fairest,
// MPTA highest payoff & slowest) is stable, not a single-seed artifact.

#include "bench/common.h"

namespace fta {
namespace bench {
namespace {

void RunFamily(const char* name,
               const std::function<MultiCenterInstance(uint64_t)>& make,
               const SolverOptions& options, size_t seeds) {
  ResultTable table(
      StrFormat("%s — %zu seeds, mean +- 95%% CI", name, seeds),
      {"algorithm", "P_dif", "avg payoff", "CPU (s)", "rounds"});
  for (Algorithm a : PaperAlgorithms()) {
    const RepeatedRunSummary s = RunRepeated(a, make, options, seeds);
    table.AddRow({AlgorithmName(a), s.payoff_difference.ToString(),
                  s.average_payoff.ToString(), s.cpu_seconds.ToString(),
                  s.rounds.ToString()});
  }
  std::printf("%s\n", table.ToText().c_str());
}

void Main() {
  PrintHeader("Variance — multi-seed robustness of the headline comparison");
  RunFamily(
      "gMission",
      [](uint64_t seed) {
        return GmMulti(GmDefault(seed), GmPrepDefault());
      },
      GmOptions(), 5);
  RunFamily(
      "SYN",
      [](uint64_t seed) {
        SynConfig config = SynDefault(seed);
        return GenerateSyn(config);
      },
      SynOptions(), 5);
}

}  // namespace
}  // namespace bench
}  // namespace fta

int main() { fta::bench::Main(); }
