// Streaming dispatch bench: warm (delta-patched catalog + warm-started
// solver) vs cold-restart (full regeneration + random init) on the same
// Poisson churn event sequence, at 5-8% per-tick element churn (the queue
// is still filling toward its rate x patience steady state, so the
// measured fraction sits a little above the 5% design point — a strictly
// harder regime for the delta path) and the paper's GM pruning threshold
// ε=0.6 km. Emits BENCH_stream.json.
//
// Hard gates (the bench aborts if they fail):
//  - steady-state warm per-tick cost (catalog maintenance + solve) is
//    <= 0.5x the cold-restart per-tick cost, measured after a warmup of
//    kWarmupTicks and min-of-kReps to shed scheduler noise;
//  - the warm run's whole-run digest equals the cold-seeded run's digest
//    (the differential identity the stream test battery pins, re-checked
//    here on the bench workload).

#include <algorithm>
#include <fstream>
#include <sstream>
#include <vector>

#include "bench/common.h"
#include "util/check.h"

namespace fta {
namespace bench {
namespace {

constexpr size_t kTicks = 40;
constexpr size_t kWarmupTicks = 10;
constexpr int kReps = 3;
constexpr double kGateRatio = 0.5;

ChurnWorkloadConfig BenchChurn() {
  // Steady state ~ rate x patience = 240 queued orders and ~40 workers;
  // each 0.05 h tick then turns over ~12 orders and ~2 workers — 5% of the
  // population arriving (and, in steady state, another 5% expiring).
  ChurnWorkloadConfig churn;
  churn.horizon_hours = 0.05 * static_cast<double>(kTicks);
  churn.tasks.base_rate_per_hour = 240.0;
  churn.tasks.peak_hours = {};  // homogeneous: steady-state churn
  churn.worker_rate_per_hour = 40.0;
  churn.area_size = 10.0;
  churn.mean_worker_dwell_hours = 1.0;
  churn.mean_task_patience_hours = 1.0;
  return churn;
}

StreamConfig BenchStream(ResolvePolicy policy) {
  StreamConfig config;
  config.center = Point{5.0, 5.0};
  config.tick_period = 0.05;
  config.max_ticks = kTicks;
  config.policy = policy;
  config.vdps.epsilon = 0.6;  // paper's GM default (Table I)
  config.vdps.max_set_size = 3;
  config.seed = 7;
  return config;
}

struct PolicyRun {
  StreamResult result;
  /// Mean per-tick cost over the steady-state window, best of kReps.
  double steady_catalog_ms = 0.0;
  double steady_solve_ms = 0.0;
  double steady_total_ms = 0.0;
  /// Mean per-tick fraction of elements churned in the steady window.
  double churn_fraction = 0.0;
};

PolicyRun RunPolicy(ResolvePolicy policy,
                    const std::vector<StreamEvent>& events) {
  PolicyRun run;
  run.steady_total_ms = kInfinity;
  for (int rep = 0; rep < kReps; ++rep) {
    StreamDispatcher dispatcher(BenchStream(policy), events);
    StatusOr<StreamResult> result = dispatcher.Run();
    FTA_CHECK_OK(result.status());
    FTA_CHECK_MSG(result->ticks.size() == kTicks, "missing tick stats");
    double catalog_ms = 0.0, solve_ms = 0.0, churn = 0.0;
    for (size_t t = kWarmupTicks; t < kTicks; ++t) {
      const TickStats& ts = result->ticks[t];
      catalog_ms += ts.catalog_ms;
      solve_ms += ts.solve_ms;
      const size_t population = ts.num_workers + ts.num_dps;
      if (population > 0) {
        // One-sided: the fraction of the live population that arrived this
        // tick (steady state sheds about the same fraction).
        churn += static_cast<double>(ts.workers_in + ts.tasks_in) /
                 static_cast<double>(population);
      }
    }
    const double n = static_cast<double>(kTicks - kWarmupTicks);
    if ((catalog_ms + solve_ms) / n < run.steady_total_ms) {
      run.steady_catalog_ms = catalog_ms / n;
      run.steady_solve_ms = solve_ms / n;
      run.steady_total_ms = (catalog_ms + solve_ms) / n;
      run.churn_fraction = churn / n;
      run.result = std::move(*result);
    }
  }
  return run;
}

void AppendPolicy(std::ostringstream& json, const char* name,
                  const PolicyRun& run) {
  const StreamCounters& c = run.result.counters;
  json << "    {\"policy\": \"" << name << "\", "
       << "\"steady_catalog_ms_per_tick\": "
       << StrFormat("%.4f", run.steady_catalog_ms)
       << ", \"steady_solve_ms_per_tick\": "
       << StrFormat("%.4f", run.steady_solve_ms)
       << ", \"steady_total_ms_per_tick\": "
       << StrFormat("%.4f", run.steady_total_ms)
       << ", \"churn_fraction_per_tick\": "
       << StrFormat("%.4f", run.churn_fraction)
       << ", \"regens\": " << c.regens << ", \"deltas\": " << c.deltas
       << ", \"solver_rounds\": " << c.solver_rounds
       << ", \"converged_ticks\": " << c.converged_ticks
       << ", \"tasks_arrived\": " << c.tasks_arrived
       << ", \"tasks_expired\": " << c.tasks_expired
       << ", \"workers_arrived\": " << c.workers_arrived
       << ", \"workers_departed\": " << c.workers_departed
       << ", \"digest\": \""
       << StrFormat("%016llx",
                    static_cast<unsigned long long>(run.result.digest))
       << "\"}";
}

void Main() {
  const std::vector<StreamEvent> events = GenerateChurnEvents(BenchChurn(), 7);
  std::printf("stream bench: %zu events, %zu ticks (%zu warmup), %d reps\n",
              events.size(), kTicks, kWarmupTicks, kReps);

  const PolicyRun cold = RunPolicy(ResolvePolicy::kColdRestart, events);
  const PolicyRun seeded = RunPolicy(ResolvePolicy::kColdSeeded, events);
  const PolicyRun warm = RunPolicy(ResolvePolicy::kWarm, events);

  const double ratio = warm.steady_total_ms / cold.steady_total_ms;
  std::printf(
      "  cold-restart: %.3f ms/tick (catalog %.3f + solve %.3f)\n"
      "  cold-seeded:  %.3f ms/tick (catalog %.3f + solve %.3f)\n"
      "  warm:         %.3f ms/tick (catalog %.3f + solve %.3f)\n"
      "  churn/tick:   %.1f%% of live elements\n"
      "  warm / cold-restart ratio: %.3f (gate <= %.2f)\n",
      cold.steady_total_ms, cold.steady_catalog_ms, cold.steady_solve_ms,
      seeded.steady_total_ms, seeded.steady_catalog_ms,
      seeded.steady_solve_ms, warm.steady_total_ms, warm.steady_catalog_ms,
      warm.steady_solve_ms, warm.churn_fraction * 100.0, ratio, kGateRatio);

  FTA_CHECK_MSG(warm.result.digest == seeded.result.digest,
                "warm digest must equal cold-seeded digest "
                "(delta-patched catalog or warm start diverged)");
  FTA_CHECK_MSG(warm.result.counters.deltas == kTicks - 1,
                "warm run must delta-patch every tick after the first");
  FTA_CHECK_MSG(
      ratio <= kGateRatio,
      "steady-state warm per-tick cost must be <= "
          << kGateRatio << "x cold restart, got "
          << StrFormat("%.3fx (warm %.3f ms vs cold %.3f ms)", ratio,
                       warm.steady_total_ms, cold.steady_total_ms));

  std::ostringstream json;
  json << "{\n  \"bench\": \"stream\",\n  \"meta\": " << BenchMetaJson()
       << ",\n  \"ticks\": " << kTicks
       << ",\n  \"warmup_ticks\": " << kWarmupTicks
       << ",\n  \"reps\": " << kReps << ",\n  \"epsilon\": 0.6"
       << ",\n  \"events\": " << events.size() << ",\n  \"policies\": [\n";
  AppendPolicy(json, "cold-restart", cold);
  json << ",\n";
  AppendPolicy(json, "cold-seeded", seeded);
  json << ",\n";
  AppendPolicy(json, "warm", warm);
  json << "\n  ],\n  \"warm_cold_ratio\": " << StrFormat("%.4f", ratio)
       << ",\n  \"gate_ratio\": " << StrFormat("%.2f", kGateRatio)
       << ",\n  \"warm_equals_cold_seeded\": "
       << (warm.result.digest == seeded.result.digest ? "true" : "false")
       << "\n}\n";

  const std::string path = "BENCH_stream.json";
  std::ofstream out(path);
  out << json.str();
  out.close();
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace bench
}  // namespace fta

int main() { fta::bench::Main(); }
