#ifndef FTA_BENCH_COMMON_H_
#define FTA_BENCH_COMMON_H_

/// Shared configuration of the paper-reproduction benches.
///
/// The paper's SYN scale (100K tasks / 5K delivery points / 2K workers /
/// 50 centers on a 2x20-core Xeon) is shrunk by kSynScale with population
/// ratios and spatial densities preserved (see ScaleSyn); all reported
/// comparisons are relative between algorithms at matched inputs, so the
/// figure *shapes* survive the scaling. Every bench prints the factor.

#include <cstdio>
#include <ctime>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fta/fta.h"

namespace fta {
namespace bench {

/// Process-lifetime worker pools, one per thread count. Replay benches
/// repeat their workloads many times; constructing a fresh ThreadPool per
/// repetition both pays thread spawn inside the timed region and hides
/// pool-reuse regressions. Inject these through VdpsConfig::pool /
/// BestResponseConfig::pool (or pass to AssignmentServer) so repetitions
/// share one pool — bench_serve asserts via ThreadPool::total_created()
/// that its measurement loop spawns none. Benches are single-threaded at
/// the call site, so the static map needs no lock.
inline ThreadPool& SharedBenchPool(size_t threads) {
  static std::map<size_t, std::unique_ptr<ThreadPool>> pools;
  std::unique_ptr<ThreadPool>& slot = pools[threads];
  if (!slot) slot = std::make_unique<ThreadPool>(threads);
  return *slot;
}

/// Provenance stamped into every BENCH_*.json so tools/bench_track can
/// fold gate runs into a comparable trajectory (BENCH_history.jsonl).
struct BenchMeta {
  std::string git_sha;   // short SHA, "unknown" outside a checkout
  std::string cpu;       // /proc/cpuinfo model name
  std::string date;      // UTC YYYY-MM-DD
  std::string compiler;  // __VERSION__
  std::string build;     // "release" (NDEBUG) or "debug"
  unsigned threads = 0;  // hardware_concurrency
};

/// True for a plausible abbreviated git SHA: ≥4 lowercase hex chars.
/// `git rev-parse` outside a checkout (or with git absent) can still
/// produce output — a shell error line, an empty string — and a bench
/// run must degrade to "unknown" rather than record garbage that
/// bench_track would then treat as a real commit.
inline bool LooksLikeGitSha(const std::string& sha) {
  if (sha.size() < 4) return false;
  for (const char c : sha) {
    const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!hex) return false;
  }
  return true;
}

inline BenchMeta GetBenchMeta() {
  BenchMeta meta;
  meta.git_sha = "unknown";
  if (FILE* p = popen("git rev-parse --short=12 HEAD 2>/dev/null", "r")) {
    char buf[64] = {0};
    if (fgets(buf, sizeof(buf), p) != nullptr) {
      std::string sha(buf);
      while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
        sha.pop_back();
      }
      if (LooksLikeGitSha(sha)) meta.git_sha = sha;
    }
    pclose(p);
  }
  meta.cpu = "unknown";
  std::ifstream cpuinfo("/proc/cpuinfo");
  for (std::string line; std::getline(cpuinfo, line);) {
    const size_t colon = line.find(':');
    if (line.rfind("model name", 0) == 0 && colon != std::string::npos) {
      size_t start = colon + 1;
      while (start < line.size() && line[start] == ' ') ++start;
      meta.cpu = line.substr(start);
      break;
    }
  }
  const std::time_t now = std::time(nullptr);
  char datebuf[16] = {0};
  std::tm tm_utc;
  if (gmtime_r(&now, &tm_utc) != nullptr &&
      std::strftime(datebuf, sizeof(datebuf), "%Y-%m-%d", &tm_utc) > 0) {
    meta.date = datebuf;
  } else {
    meta.date = "unknown";
  }
  meta.compiler = __VERSION__;
#ifdef NDEBUG
  meta.build = "release";
#else
  meta.build = "debug";
#endif
  meta.threads = std::thread::hardware_concurrency();
  return meta;
}

/// Appends the meta object into an in-progress JSON document (after
/// Key("meta")).
inline void AppendBenchMeta(obs::JsonWriter& w) {
  const BenchMeta meta = GetBenchMeta();
  w.BeginObject();
  w.Key("git_sha");
  w.String(meta.git_sha);
  w.Key("cpu");
  w.String(meta.cpu);
  w.Key("date");
  w.String(meta.date);
  w.Key("compiler");
  w.String(meta.compiler);
  w.Key("build");
  w.String(meta.build);
  w.Key("threads");
  w.UInt(meta.threads);
  w.EndObject();
}

/// The meta object as a standalone JSON string, for ostringstream-built
/// bench files.
inline std::string BenchMetaJson() {
  obs::JsonWriter w;
  AppendBenchMeta(w);
  return w.str();
}

/// Population scale factor applied to the paper's SYN numbers.
inline constexpr double kSynScale = 0.05;

/// Paper Table I defaults for the gMission dataset (|S|=200, |W|=40,
/// |DP|=100, ε=0.6 km), synthesized per DESIGN.md §4.
inline GMissionConfig GmDefault(uint64_t seed = 101) {
  GMissionConfig config;
  config.num_tasks = 200;
  config.num_workers = 40;
  config.seed = seed;
  return config;
}

inline GMissionPrepConfig GmPrepDefault(size_t num_dps = 100,
                                        uint32_t max_dp = 3) {
  GMissionPrepConfig prep;
  prep.num_delivery_points = num_dps;
  prep.max_dp = max_dp;
  prep.seed = 102;
  return prep;
}

/// One-center wrapper so GM instances fit the multi-center sweep API.
inline MultiCenterInstance GmMulti(const GMissionConfig& config,
                                   const GMissionPrepConfig& prep) {
  MultiCenterInstance multi;
  multi.centers.push_back(GenerateGMissionLike(config, prep));
  return multi;
}

/// Paper Table I defaults for SYN, scaled by kSynScale.
inline SynConfig SynDefault(uint64_t seed = 103) {
  SynConfig config;  // paper defaults baked into SynConfig
  config.seed = seed;
  return ScaleSyn(config, kSynScale);
}

/// Default solver options per dataset (underlined Table I values).
inline SolverOptions GmOptions() {
  SolverOptions options;
  options.vdps.epsilon = 0.6;
  options.vdps.max_set_size = 3;
  return options;
}

inline SolverOptions SynOptions() {
  SolverOptions options;
  options.vdps.epsilon = 2.0;
  options.vdps.max_set_size = 3;
  return options;
}

/// The four paper algorithms as sweep series under common options.
inline std::vector<SweepSeries> PaperSeries(const SolverOptions& options) {
  std::vector<SweepSeries> series;
  for (Algorithm a : PaperAlgorithms()) {
    series.push_back({AlgorithmName(a), a, options});
  }
  return series;
}

inline void PrintHeader(const std::string& what) {
  std::printf("############################################################\n");
  std::printf("# %s\n", what.c_str());
  std::printf("# SYN populations scaled by %.3g vs. the paper (see DESIGN.md)\n",
              kSynScale);
  std::printf("############################################################\n\n");
}

}  // namespace bench
}  // namespace fta

#endif  // FTA_BENCH_COMMON_H_
