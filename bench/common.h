#ifndef FTA_BENCH_COMMON_H_
#define FTA_BENCH_COMMON_H_

/// Shared configuration of the paper-reproduction benches.
///
/// The paper's SYN scale (100K tasks / 5K delivery points / 2K workers /
/// 50 centers on a 2x20-core Xeon) is shrunk by kSynScale with population
/// ratios and spatial densities preserved (see ScaleSyn); all reported
/// comparisons are relative between algorithms at matched inputs, so the
/// figure *shapes* survive the scaling. Every bench prints the factor.

#include <cstdio>
#include <string>
#include <vector>

#include "fta/fta.h"

namespace fta {
namespace bench {

/// Population scale factor applied to the paper's SYN numbers.
inline constexpr double kSynScale = 0.05;

/// Paper Table I defaults for the gMission dataset (|S|=200, |W|=40,
/// |DP|=100, ε=0.6 km), synthesized per DESIGN.md §4.
inline GMissionConfig GmDefault(uint64_t seed = 101) {
  GMissionConfig config;
  config.num_tasks = 200;
  config.num_workers = 40;
  config.seed = seed;
  return config;
}

inline GMissionPrepConfig GmPrepDefault(size_t num_dps = 100,
                                        uint32_t max_dp = 3) {
  GMissionPrepConfig prep;
  prep.num_delivery_points = num_dps;
  prep.max_dp = max_dp;
  prep.seed = 102;
  return prep;
}

/// One-center wrapper so GM instances fit the multi-center sweep API.
inline MultiCenterInstance GmMulti(const GMissionConfig& config,
                                   const GMissionPrepConfig& prep) {
  MultiCenterInstance multi;
  multi.centers.push_back(GenerateGMissionLike(config, prep));
  return multi;
}

/// Paper Table I defaults for SYN, scaled by kSynScale.
inline SynConfig SynDefault(uint64_t seed = 103) {
  SynConfig config;  // paper defaults baked into SynConfig
  config.seed = seed;
  return ScaleSyn(config, kSynScale);
}

/// Default solver options per dataset (underlined Table I values).
inline SolverOptions GmOptions() {
  SolverOptions options;
  options.vdps.epsilon = 0.6;
  options.vdps.max_set_size = 3;
  return options;
}

inline SolverOptions SynOptions() {
  SolverOptions options;
  options.vdps.epsilon = 2.0;
  options.vdps.max_set_size = 3;
  return options;
}

/// The four paper algorithms as sweep series under common options.
inline std::vector<SweepSeries> PaperSeries(const SolverOptions& options) {
  std::vector<SweepSeries> series;
  for (Algorithm a : PaperAlgorithms()) {
    series.push_back({AlgorithmName(a), a, options});
  }
  return series;
}

inline void PrintHeader(const std::string& what) {
  std::printf("############################################################\n");
  std::printf("# %s\n", what.c_str());
  std::printf("# SYN populations scaled by %.3g vs. the paper (see DESIGN.md)\n",
              kSynScale);
  std::printf("############################################################\n\n");
}

}  // namespace bench
}  // namespace fta

#endif  // FTA_BENCH_COMMON_H_
