// Micro-benchmarks (google-benchmark) for the library's hot paths: C-VDPS
// generation with and without pruning, IAU evaluation, best-response
// rounds, the solvers end-to-end, k-means, tree-decomposition MWIS, and
// grid-index radius queries.
//
// Three hard gates run before the suite (and can be run alone with
// --bench=obs / --bench=game / --bench=simd): the observability overhead
// gate (BENCH_obs.json), the payoff-ledger gate (BENCH_game.json) — which
// fails the binary unless the ledger Evaluate path does zero steady-state
// heap allocations and beats the OthersView rebuild path by >= 5x — and
// the SIMD kernel gate (BENCH_simd.json), which requires the batched
// AVX2 candidate scan to beat the legacy per-candidate ledger path by
// >= 2x per Evaluate at |W| >= 256 (report-only on hosts without AVX2).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <string>
#include <vector>

#include "bench/common.h"
#include "fta/fta.h"
#include "util/check.h"

// Global allocation counter backing the game gate's zero-allocation claim:
// every global operator new bumps it, so a steady-state delta of zero is
// proof, not an estimate. Relaxed ordering is fine — the gate reads the
// counter on the same thread that allocates (the engine under test is
// serial), and the benchmark's own threads only add noise *between* reads.
namespace {
std::atomic<uint64_t> g_heap_allocations{0};
}  // namespace

// GCC cannot see that the replacement operator new below is malloc-backed
// and flags every free() in the matching deletes as mismatched; the pair
// is consistent by construction.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace fta {
namespace {

Instance GmInstance(size_t tasks = 200, size_t dps = 100,
                    size_t workers = 40) {
  GMissionConfig config;
  config.num_tasks = tasks;
  config.num_workers = workers;
  config.seed = 11;
  GMissionPrepConfig prep;
  prep.num_delivery_points = dps;
  prep.seed = 12;
  return GenerateGMissionLike(config, prep);
}

VdpsConfig PrunedVdps(double epsilon = 0.6) {
  VdpsConfig vdps;
  vdps.epsilon = epsilon;
  vdps.max_set_size = 3;
  return vdps;
}

void BM_VdpsGenerationPruned(benchmark::State& state) {
  const Instance inst = GmInstance();
  const VdpsConfig vdps =
      PrunedVdps(static_cast<double>(state.range(0)) / 10.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(VdpsCatalog::Generate(inst, vdps));
  }
}
BENCHMARK(BM_VdpsGenerationPruned)->Arg(2)->Arg(6)->Arg(10);

void BM_VdpsGenerationUnpruned(benchmark::State& state) {
  const Instance inst = GmInstance();
  VdpsConfig vdps;
  vdps.max_set_size = 3;  // epsilon = infinity
  for (auto _ : state) {
    benchmark::DoNotOptimize(VdpsCatalog::Generate(inst, vdps));
  }
}
BENCHMARK(BM_VdpsGenerationUnpruned);

void BM_VdpsExactDp(benchmark::State& state) {
  const Instance inst =
      GmInstance(60, static_cast<size_t>(state.range(0)), 10);
  VdpsConfig vdps;
  vdps.max_set_size = 3;
  vdps.use_exact_dp = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(VdpsCatalog::Generate(inst, vdps));
  }
}
BENCHMARK(BM_VdpsExactDp)->Arg(10)->Arg(14)->Arg(18);

void BM_IauNaive(benchmark::State& state) {
  Rng rng(1);
  std::vector<double> others(static_cast<size_t>(state.range(0)));
  for (double& p : others) p = rng.Uniform(0, 10);
  const IauParams params;
  double own = 5.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Iau(own, others, params));
  }
}
BENCHMARK(BM_IauNaive)->Arg(100)->Arg(1000)->Arg(10000);

void BM_IauOthersView(benchmark::State& state) {
  Rng rng(1);
  std::vector<double> others(static_cast<size_t>(state.range(0)));
  for (double& p : others) p = rng.Uniform(0, 10);
  const OthersView view(others);
  const IauParams params;
  double own = 5.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(view.Iau(own, params));
  }
}
BENCHMARK(BM_IauOthersView)->Arg(100)->Arg(1000)->Arg(10000);

void BM_FgtSolve(benchmark::State& state) {
  const Instance inst = GmInstance();
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, PrunedVdps());
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveFgt(inst, catalog));
  }
}
BENCHMARK(BM_FgtSolve);

// Serial-vs-parallel best-response scans on the default Table-1-scale
// instance. Arg(n) = engine threads; items/sec = candidate strategies
// evaluated (availability + IAU) per second, the engine's throughput
// metric. Output is bit-identical across all arguments.
void BM_BestResponseRoundsParallel(benchmark::State& state) {
  const Instance inst = GmInstance();
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, PrunedVdps());
  FgtConfig config;
  config.engine.num_threads = static_cast<size_t>(state.range(0));
  // One pool per thread count for every timed iteration: per-iteration
  // pool construction would otherwise dominate the small arguments.
  if (config.engine.num_threads > 1) {
    config.engine.pool = &bench::SharedBenchPool(config.engine.num_threads);
  }
  config.engine.use_incremental_index = false;  // isolate the fan-out
  uint64_t candidates = 0;
  for (auto _ : state) {
    const GameResult result = SolveFgt(inst, catalog, config);
    candidates += result.engine.strategies_scanned +
                  result.engine.cache_skips;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(candidates));
}
BENCHMARK(BM_BestResponseRoundsParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Cold (full availability re-check every turn) vs incremental (inverted
// index + dirty bits). Arg(0/1) = index off/on. Counter columns show the
// per-run scan reduction; wall time shows the payoff.
void BM_BestResponseIncrementalIndex(benchmark::State& state) {
  const Instance inst = GmInstance();
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, PrunedVdps());
  FgtConfig config;
  config.engine.use_incremental_index = state.range(0) != 0;
  config.record_trace = true;
  uint64_t scanned = 0;
  uint64_t skipped = 0;
  uint64_t scanned_after_r1 = 0;  // the steady-state scan load
  for (auto _ : state) {
    const GameResult result = SolveFgt(inst, catalog, config);
    scanned += result.engine.strategies_scanned;
    skipped += result.engine.cache_skips;
    for (const IterationStats& it : result.trace) {
      if (it.iteration >= 2) {
        scanned_after_r1 += it.engine.strategies_scanned;
      }
    }
    benchmark::DoNotOptimize(result);
  }
  state.counters["scanned"] =
      benchmark::Counter(static_cast<double>(scanned),
                         benchmark::Counter::kAvgIterations);
  state.counters["scanned_r2plus"] =
      benchmark::Counter(static_cast<double>(scanned_after_r1),
                         benchmark::Counter::kAvgIterations);
  state.counters["cache_skips"] =
      benchmark::Counter(static_cast<double>(skipped),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_BestResponseIncrementalIndex)->Arg(0)->Arg(1);

void BM_IegtSolve(benchmark::State& state) {
  const Instance inst = GmInstance();
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, PrunedVdps());
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveIegt(inst, catalog));
  }
}
BENCHMARK(BM_IegtSolve);

void BM_GtaSolve(benchmark::State& state) {
  const Instance inst = GmInstance();
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, PrunedVdps());
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveGta(inst, catalog));
  }
}
BENCHMARK(BM_GtaSolve);

void BM_MptaSolve(benchmark::State& state) {
  const Instance inst = GmInstance();
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, PrunedVdps());
  MptaConfig config;
  config.candidates_per_worker = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveMpta(inst, catalog, config));
  }
}
BENCHMARK(BM_MptaSolve)->Arg(4)->Arg(8)->Arg(16);

void BM_KMeans(benchmark::State& state) {
  Rng data_rng(3);
  std::vector<Point> pts(static_cast<size_t>(state.range(0)));
  for (Point& p : pts) {
    p = {data_rng.Uniform(0, 100), data_rng.Uniform(0, 100)};
  }
  for (auto _ : state) {
    Rng rng(4);
    benchmark::DoNotOptimize(KMeans(pts, 50, rng));
  }
}
BENCHMARK(BM_KMeans)->Arg(1000)->Arg(10000);

void BM_TreeDecompositionMwis(benchmark::State& state) {
  Rng rng(5);
  const size_t n = static_cast<size_t>(state.range(0));
  Graph g(n);
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t v = u + 1; v < n; ++v) {
      if (rng.Bernoulli(4.0 / static_cast<double>(n))) g.AddEdge(u, v);
    }
  }
  std::vector<double> w(n);
  for (double& x : w) x = rng.Uniform(0.1, 10.0);
  for (auto _ : state) {
    const TreeDecomposition td = TreeDecomposition::Build(g);
    benchmark::DoNotOptimize(MwisOverTreeDecomposition(g, w, td, 24));
  }
}
BENCHMARK(BM_TreeDecompositionMwis)->Arg(50)->Arg(200);

void BM_GridRadiusQuery(benchmark::State& state) {
  Rng rng(6);
  std::vector<Point> pts(static_cast<size_t>(state.range(0)));
  for (Point& p : pts) p = {rng.Uniform(0, 100), rng.Uniform(0, 100)};
  const GridIndex index(pts, 2.0);
  size_t i = 0;
  for (auto _ : state) {
    const Point q{static_cast<double>(i % 100),
                  static_cast<double>((i * 7) % 100)};
    benchmark::DoNotOptimize(index.RadiusQuery(q, 2.0));
    ++i;
  }
}
BENCHMARK(BM_GridRadiusQuery)->Arg(1000)->Arg(100000);

// --- Observability micro-costs -------------------------------------------

void BM_SpanDisabled(benchmark::State& state) {
  obs::SetTracingEnabled(false);
  for (auto _ : state) {
    FTA_SPAN("bench/span");
  }
}
BENCHMARK(BM_SpanDisabled);

// Fixed iteration count: every enabled span is retained in the recorder, so
// letting google-benchmark pick the count would grow the buffer unbounded.
void BM_SpanEnabled(benchmark::State& state) {
  obs::TraceRecorder::Global().Clear();
  obs::SetTracingEnabled(true);
  for (auto _ : state) {
    FTA_SPAN("bench/span");
  }
  obs::SetTracingEnabled(false);
  obs::TraceRecorder::Global().Clear();
}
BENCHMARK(BM_SpanEnabled)->Iterations(1 << 16);

void BM_CounterAdd(benchmark::State& state) {
  obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("bench/counter_add");
  for (auto _ : state) {
    counter.Add(1);
  }
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramObserve(benchmark::State& state) {
  obs::Histogram& hist = obs::MetricsRegistry::Global().GetHistogram(
      "bench/hist_observe", obs::ExponentialBounds(0.25, 4.0, 8));
  double value = 0.0;
  for (auto _ : state) {
    hist.Observe(value);
    value += 0.5;
    if (value > 4096.0) value = 0.0;
  }
}
BENCHMARK(BM_HistogramObserve);

}  // namespace

// Observability overhead gate, run before the benchmark suite proper: the
// instrumentation left in the hot paths must cost < 2% of a GM-default FGT
// run when tracing is disabled (the production configuration). Disabled
// spans do constant work, so the modeled overhead is
//
//   spans-per-run x disabled-span-cost / untraced-run-wall-time
//
// with spans-per-run counted from a traced run of the same workload. The
// model is deliberate: on a noisy 1-CPU container, differencing two wall
// times of the full solver would drown the signal, while the per-span cost
// is measurable to well under a nanosecond. Results go to BENCH_obs.json.
int RunObsOverheadGate() {
  // Per-span cost with tracing disabled (one relaxed atomic load).
  obs::SetTracingEnabled(false);
  constexpr int kProbeSpans = 2000000;
  Stopwatch probe;
  for (int i = 0; i < kProbeSpans; ++i) {
    FTA_SPAN("bench/obs_gate_probe");
  }
  const double disabled_span_ns =
      probe.ElapsedSeconds() * 1e9 / kProbeSpans;

  // Spans a traced GM-default FGT run emits.
  const Instance inst = GmInstance();
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, PrunedVdps());
  obs::TraceRecorder::Global().Clear();
  obs::SetTracingEnabled(true);
  benchmark::DoNotOptimize(SolveFgt(inst, catalog));
  obs::SetTracingEnabled(false);
  const size_t spans_per_run = obs::TraceRecorder::Global().num_events();
  obs::TraceRecorder::Global().Clear();

  // Untraced FGT wall time: best of 5 to shed scheduler noise.
  double run_seconds = kInfinity;
  for (int rep = 0; rep < 5; ++rep) {
    Stopwatch sw;
    benchmark::DoNotOptimize(SolveFgt(inst, catalog));
    run_seconds = std::min(run_seconds, sw.ElapsedSeconds());
  }

  const double overhead_fraction =
      static_cast<double>(spans_per_run) * disabled_span_ns * 1e-9 /
      run_seconds;
  constexpr double kThreshold = 0.02;
  const bool span_pass = overhead_fraction < kThreshold;

  // ---- Stream-telemetry section. Two hard gates on the per-tick
  // telemetry layer (stream/telemetry.h):
  //   1. identity — a full-telemetry GM-churn warm run's digest (with
  //      digest_catalog on) is bit-identical to the telemetry-off run's;
  //   2. overhead — the telemetry cost per tick, measured directly on
  //      OnTick (the only code telemetry adds to the tick path; wall-time
  //      differencing of whole runs would drown in scheduler noise, same
  //      rationale as the span model above), is < 2% of the telemetry-off
  //      per-tick wall time. ----
  constexpr size_t kStreamTicks = 16;
  ChurnWorkloadConfig churn;
  churn.horizon_hours = 0.05 * static_cast<double>(kStreamTicks);
  churn.tasks.base_rate_per_hour = 240.0;
  churn.tasks.peak_hours = {};
  churn.worker_rate_per_hour = 40.0;
  churn.area_size = 10.0;
  churn.mean_worker_dwell_hours = 1.0;
  churn.mean_task_patience_hours = 1.0;
  const std::vector<StreamEvent> events = GenerateChurnEvents(churn, 7);
  StreamConfig stream_config;
  stream_config.center = Point{5.0, 5.0};
  stream_config.tick_period = 0.05;
  stream_config.max_ticks = kStreamTicks;
  stream_config.policy = ResolvePolicy::kWarm;
  stream_config.vdps.epsilon = 0.6;
  stream_config.vdps.max_set_size = 3;
  stream_config.seed = 7;
  stream_config.digest_catalog = true;

  uint64_t digest_off = 0;
  double off_ms_per_tick = kInfinity;
  for (int rep = 0; rep < 3; ++rep) {
    StreamConfig c = stream_config;
    c.telemetry.enabled = false;
    StreamDispatcher dispatcher(c, events);
    StatusOr<StreamResult> result = dispatcher.Run();
    FTA_CHECK_OK(result.status());
    digest_off = result->digest;
    double tick_ms = 0.0;
    for (const TickStats& ts : result->ticks) tick_ms += ts.tick_ms;
    off_ms_per_tick = std::min(
        off_ms_per_tick, tick_ms / static_cast<double>(kStreamTicks));
  }
  uint64_t digest_on = 0;
  {
    StreamDispatcher dispatcher(stream_config, events);
    StatusOr<StreamResult> result = dispatcher.Run();
    FTA_CHECK_OK(result.status());
    digest_on = result->digest;
  }
  const bool digest_match = digest_on == digest_off;

  // Direct OnTick cost over a representative synthetic tick.
  StreamTelemetry telemetry(StreamTelemetryConfig{});
  TickStats probe_ts;
  probe_ts.num_workers = 40;
  probe_ts.num_dps = 240;
  probe_ts.workers_in = 2;
  probe_ts.tasks_in = 12;
  probe_ts.tasks_out = 12;
  probe_ts.used_delta = true;
  probe_ts.catalog_ms = 0.4;
  probe_ts.solve_ms = 0.2;
  probe_ts.project_ms = 0.01;
  probe_ts.tick_ms = 0.7;
  probe_ts.rounds = 2;
  probe_ts.converged = true;
  constexpr int kOnTickReps = 200000;
  Stopwatch ontick_sw;
  for (int i = 0; i < kOnTickReps; ++i) {
    probe_ts.tick = static_cast<uint64_t>(i);
    telemetry.OnTick(probe_ts);
  }
  const double ontick_ns =
      ontick_sw.ElapsedSeconds() * 1e9 / kOnTickReps;
  const double stream_overhead_fraction =
      ontick_ns * 1e-6 / off_ms_per_tick;
  const bool stream_pass =
      digest_match && stream_overhead_fraction < kThreshold;

  const bool pass = span_pass && stream_pass;

  obs::JsonWriter json;
  json.BeginObject();
  json.Key("bench");
  json.String("obs_overhead");
  json.Key("meta");
  bench::AppendBenchMeta(json);
  json.Key("workload");
  json.String("gm_default_fgt");
  json.Key("disabled_span_ns");
  json.Double(disabled_span_ns);
  json.Key("spans_per_run");
  json.UInt(spans_per_run);
  json.Key("run_seconds");
  json.Double(run_seconds);
  json.Key("overhead_fraction");
  json.Double(overhead_fraction);
  json.Key("threshold");
  json.Double(kThreshold);
  json.Key("stream_telemetry");
  json.BeginObject();
  json.Key("workload");
  json.String("gm_churn_warm_fgt");
  json.Key("ticks");
  json.UInt(kStreamTicks);
  json.Key("off_ms_per_tick");
  json.Double(off_ms_per_tick);
  json.Key("ontick_ns");
  json.Double(ontick_ns);
  json.Key("overhead_fraction");
  json.Double(stream_overhead_fraction);
  json.Key("threshold");
  json.Double(kThreshold);
  json.Key("digest_match");
  json.Bool(digest_match);
  json.EndObject();
  json.Key("pass");
  json.Bool(pass);
  json.EndObject();
  const std::string path = "BENCH_obs.json";
  std::ofstream out(path);
  out << json.str() << "\n";
  out.close();

  std::printf(
      "obs overhead gate: %.3f ns/span disabled, %zu spans/run, FGT run "
      "%.3f ms -> modeled overhead %.4f%% (< %.1f%%: %s); wrote %s\n",
      disabled_span_ns, spans_per_run, run_seconds * 1e3,
      overhead_fraction * 100.0, kThreshold * 100.0,
      span_pass ? "PASS" : "FAIL", path.c_str());
  std::printf(
      "stream telemetry gate: %.1f ns/OnTick vs %.3f ms/tick off -> "
      "%.4f%% (< %.1f%%), digests %s (%s)\n",
      ontick_ns, off_ms_per_tick, stream_overhead_fraction * 100.0,
      kThreshold * 100.0, digest_match ? "match" : "DIVERGE",
      stream_pass ? "PASS" : "FAIL");
  if (!span_pass) {
    std::fprintf(stderr,
                 "obs overhead gate FAILED: disabled-mode instrumentation "
                 "costs %.4f%% of the GM-default FGT run (limit %.1f%%)\n",
                 overhead_fraction * 100.0, kThreshold * 100.0);
    return 1;
  }
  if (!stream_pass) {
    std::fprintf(stderr,
                 "stream telemetry gate FAILED: digest_match=%d, per-tick "
                 "overhead %.4f%% (limit %.1f%%)\n",
                 digest_match ? 1 : 0, stream_overhead_fraction * 100.0,
                 kThreshold * 100.0);
    return 1;
  }
  return 0;
}

// Payoff-ledger gate: proves the tentpole claims of the sorted payoff
// ledger (game/payoff_ledger.h) on a purpose-built instance that isolates
// Evaluate's view construction. Workers are strung out along a line away
// from the distribution center with one delivery point each; since every
// route starts with the worker-to-center leg, only the center-adjacent
// worker can meet any deadline, so 255 of 256 workers have an empty
// catalog and an empty candidate scan. An Evaluate over the 256-worker
// state is then almost exactly one exclude-one view — the code the ledger
// replaces. Two hard gates:
//
//   1. Zero steady-state heap allocations on the ledger path, counted by
//      the global operator-new hook above (the rebuild path allocates two
//      vectors per call).
//   2. >= 5x Evaluate-path speedup over the OthersView rebuild at
//      |W| >= 200 (best-of-reps on both sides to shed scheduler noise).
//
// On production GM-scale catalogs the candidate scan dilutes the win; the
// JSON therefore also records a GM-default FGT run's ledger counters so
// the report shows both the isolated and the end-to-end picture. Results
// go to BENCH_game.json.
namespace {

Instance LedgerGateInstance(size_t num_workers) {
  std::vector<DeliveryPoint> dps;
  std::vector<Worker> workers;
  dps.reserve(num_workers);
  workers.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    const double x = static_cast<double>(i) * 1000.0;
    const double dy = 1.0 + 0.001 * static_cast<double>(i);
    dps.emplace_back(
        Point{x, dy},
        std::vector<SpatialTask>{SpatialTask{static_cast<uint32_t>(i), 5.0,
                                             1.0}});
    workers.push_back(Worker{{x, 0.0}, 2});
  }
  return Instance(Point{0.0, 0.0}, std::move(dps), std::move(workers),
                  TravelModel(5.0));
}

/// Seconds for `sweeps` full Evaluate sweeps over all workers, best of
/// `reps` (each rep re-times the same steady state).
double TimeEvaluateSweeps(BestResponseEngine& engine, size_t num_workers,
                          int sweeps, int reps) {
  double best = kInfinity;
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    for (int s = 0; s < sweeps; ++s) {
      for (size_t w = 0; w < num_workers; ++w) {
        benchmark::DoNotOptimize(engine.Evaluate(w));
      }
    }
    best = std::min(best, sw.ElapsedSeconds());
  }
  return best;
}

}  // namespace

int RunGameLedgerGate(size_t num_workers) {
  const Instance inst = LedgerGateInstance(num_workers);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  const IauParams params;

  // Serial engines: the zero-allocation claim is about the Evaluate path
  // itself, not the (optional) thread-pool fan-out.
  BestResponseConfig ledger_config;   // use_payoff_ledger = true (default)
  BestResponseConfig rebuild_config;
  rebuild_config.use_payoff_ledger = false;

  JointState ledger_state(inst, catalog);
  BestResponseEngine ledger_engine(ledger_state, params, ledger_config);
  JointState rebuild_state(inst, catalog);
  BestResponseEngine rebuild_engine(rebuild_state, params, rebuild_config);
  for (size_t w = 0; w < num_workers; ++w) {
    if (!catalog.strategies(w).empty() && ledger_state.IsAvailable(w, 0)) {
      ledger_engine.Apply(w, 0);
      rebuild_engine.Apply(w, 0);
    }
  }

  // Warm both paths (first-touch page faults, availability cache), then
  // count heap allocations across a steady-state sweep of each.
  constexpr int kSweeps = 20;
  constexpr int kReps = 5;
  TimeEvaluateSweeps(ledger_engine, num_workers, 1, 1);
  TimeEvaluateSweeps(rebuild_engine, num_workers, 1, 1);
  const uint64_t evaluate_calls =
      static_cast<uint64_t>(kSweeps) * num_workers;

  uint64_t before = g_heap_allocations.load(std::memory_order_relaxed);
  TimeEvaluateSweeps(ledger_engine, num_workers, kSweeps, 1);
  const uint64_t ledger_allocs =
      g_heap_allocations.load(std::memory_order_relaxed) - before;
  before = g_heap_allocations.load(std::memory_order_relaxed);
  TimeEvaluateSweeps(rebuild_engine, num_workers, kSweeps, 1);
  const uint64_t rebuild_allocs =
      g_heap_allocations.load(std::memory_order_relaxed) - before;

  const double ledger_seconds =
      TimeEvaluateSweeps(ledger_engine, num_workers, kSweeps, kReps);
  const double rebuild_seconds =
      TimeEvaluateSweeps(rebuild_engine, num_workers, kSweeps, kReps);
  const double speedup = rebuild_seconds / ledger_seconds;

  constexpr double kSpeedupThreshold = 5.0;
  const bool zero_alloc_pass = ledger_allocs == 0;
  const bool speedup_pass = speedup >= kSpeedupThreshold;
  const bool pass = zero_alloc_pass && speedup_pass;

  // End-to-end context: what the ledger saves on a production-shaped
  // GM-default FGT solve (candidate scans included).
  const Instance gm = GmInstance();
  const VdpsCatalog gm_catalog = VdpsCatalog::Generate(gm, PrunedVdps());
  const GameResult gm_run = SolveFgt(gm, gm_catalog);
  const LedgerCounters& gm_ledger = gm_run.engine.ledger;

  obs::JsonWriter json;
  json.BeginObject();
  json.Key("bench");
  json.String("game_ledger");
  json.Key("meta");
  bench::AppendBenchMeta(json);
  json.Key("workload");
  json.String("chain_single_strategy");
  json.Key("workers");
  json.UInt(static_cast<uint64_t>(num_workers));
  json.Key("evaluate_calls");
  json.UInt(evaluate_calls);
  json.Key("ledger");
  json.BeginObject();
  json.Key("steady_state_allocations");
  json.UInt(ledger_allocs);
  json.Key("seconds");
  json.Double(ledger_seconds);
  json.Key("ns_per_evaluate");
  json.Double(ledger_seconds * 1e9 / static_cast<double>(evaluate_calls));
  json.EndObject();
  json.Key("rebuild");
  json.BeginObject();
  json.Key("steady_state_allocations");
  json.UInt(rebuild_allocs);
  json.Key("seconds");
  json.Double(rebuild_seconds);
  json.Key("ns_per_evaluate");
  json.Double(rebuild_seconds * 1e9 / static_cast<double>(evaluate_calls));
  json.EndObject();
  json.Key("speedup");
  json.Double(speedup);
  json.Key("speedup_threshold");
  json.Double(kSpeedupThreshold);
  json.Key("zero_alloc_pass");
  json.Bool(zero_alloc_pass);
  json.Key("speedup_pass");
  json.Bool(speedup_pass);
  json.Key("gm_default_fgt_ledger");
  json.BeginObject();
  json.Key("sorts_eliminated");
  json.UInt(gm_ledger.sorts_eliminated);
  json.Key("bytes_not_allocated");
  json.UInt(gm_ledger.bytes_not_allocated);
  json.Key("memmove_elements");
  json.UInt(gm_ledger.memmove_elements);
  json.Key("scratch_reuses");
  json.UInt(gm_ledger.scratch_reuses);
  json.EndObject();
  json.Key("pass");
  json.Bool(pass);
  json.EndObject();
  const std::string path = "BENCH_game.json";
  std::ofstream out(path);
  out << json.str() << "\n";
  out.close();

  std::printf(
      "game ledger gate (|W|=%zu, %llu Evaluates): ledger %.1f ns/call "
      "(%llu allocs), rebuild %.1f ns/call (%llu allocs) -> %.2fx "
      "(>= %.1fx and 0 allocs: %s); wrote %s\n",
      num_workers,
      static_cast<unsigned long long>(evaluate_calls),
      ledger_seconds * 1e9 / static_cast<double>(evaluate_calls),
      static_cast<unsigned long long>(ledger_allocs),
      rebuild_seconds * 1e9 / static_cast<double>(evaluate_calls),
      static_cast<unsigned long long>(rebuild_allocs), speedup,
      kSpeedupThreshold, pass ? "PASS" : "FAIL", path.c_str());
  if (!pass) {
    std::fprintf(stderr,
                 "game ledger gate FAILED: allocations=%llu (need 0), "
                 "speedup %.2fx (need >= %.1fx)\n",
                 static_cast<unsigned long long>(ledger_allocs), speedup,
                 kSpeedupThreshold);
    return 1;
  }
  return 0;
}

// SIMD kernel gate: proves the tentpole claims of the batched payoff
// kernels (game/iau_kernels.h, util/simd.h) on a purpose-built instance
// that exercises the candidate scan the ledger gate's chain instance
// deliberately empties out. Three hard gates on AVX2 hosts:
//
//   1. Zero steady-state heap allocations on the batched Evaluate path
//      (the gather scratch and rank chunks are sized once).
//   2. >= 2x per-Evaluate speedup over the legacy per-candidate ledger
//      path (exclude-one view + one view.Iau per candidate through the
//      AoS strategy records — the engine's code before the kernel layer,
//      replicated below so production stays single-path).
//   3. The replica and the engine choose the same best response for every
//      worker (the baseline must be semantically the old path, not a
//      strawman).
//
// Without AVX2 the same numbers are measured and written but the speedup
// is report-only (the scalar batch is the same rank algorithm the legacy
// path runs, just batched). Results go to BENCH_simd.json.
namespace {

/// |W| workers and 2|W| single-task delivery points scattered near the
/// distribution center with a deadline no route can miss: every worker's
/// catalog holds one strategy per point (maxDP = 1), and after the greedy
/// seeding assignment roughly half the candidates of every Evaluate
/// survive the availability filter — hundreds of kernel lanes per call
/// against an exclude-one view of |W| - 1 payoffs, the shape the batched
/// kernels target.
Instance SimdGateInstance(size_t num_workers) {
  Rng rng(21);
  const size_t num_dps = num_workers * 2;
  std::vector<DeliveryPoint> dps;
  dps.reserve(num_dps);
  for (size_t i = 0; i < num_dps; ++i) {
    const Point at{rng.Uniform(-10.0, 10.0), rng.Uniform(-10.0, 10.0)};
    // Distinct rewards give the ledger |W| distinct payoffs.
    dps.emplace_back(at, std::vector<SpatialTask>{SpatialTask{
                             static_cast<uint32_t>(i), 1000.0,
                             1.0 + 0.001 * static_cast<double>(i)}});
  }
  std::vector<Worker> workers;
  workers.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers.push_back(
        Worker{{rng.Uniform(-10.0, 10.0), rng.Uniform(-10.0, 10.0)}, 1});
  }
  return Instance(Point{0.0, 0.0}, std::move(dps), std::move(workers),
                  TravelModel(5.0));
}

/// Replica of the engine's pre-batching Evaluate inner loop: one
/// exclude-one view per call, then a view.Iau (lower_bound + the sorted
/// expression tree) per available candidate, payoffs read through the AoS
/// strategy records. `avail` stands in for the engine's incremental
/// availability index (the legacy path ran with it too — both sides pay
/// one cached byte per candidate, so the timing difference is the kernel
/// work, not availability checking). Semantically the engine's old path —
/// Better()'s (utility desc, index asc) fold over the same null-first
/// candidate order — kept in the bench so the library stays single-path.
int32_t LegacyBestResponse(const JointState& state, PayoffLedger& ledger,
                           const std::vector<uint8_t>& avail, size_t w,
                           const IauParams& params) {
  const LedgerView& view = ledger.Exclude(w);
  const std::vector<WorkerStrategy>& strategies =
      state.catalog().strategies(w);
  const int32_t current = state.strategy_of(w);
  const double incumbent_u = view.Iau(state.payoff_of(w), params);
  bool valid = false;
  double best_u = 0.0;
  int32_t best_idx = 0;
  if (current != kNullStrategy) {
    best_u = view.Iau(0.0, params);
    best_idx = kNullStrategy;
    valid = true;
  }
  for (size_t i = 0; i < strategies.size(); ++i) {
    const int32_t idx = static_cast<int32_t>(i);
    if (idx == current) continue;
    if (avail[i] == 0) continue;
    const double u = view.Iau(strategies[i].payoff, params);
    // In an ascending-index scan only a strictly greater utility may
    // replace the running winner (ties keep the lower index / null).
    if (!valid || u > best_u) {
      best_u = u;
      best_idx = idx;
      valid = true;
    }
  }
  if (valid && DefinitelyGreater(best_u, incumbent_u)) return best_idx;
  return current;
}

/// Seconds for `sweeps` legacy-replica sweeps over all workers, best of
/// `reps` — the counterpart of TimeEvaluateSweeps for the baseline.
double TimeLegacySweeps(const JointState& state, PayoffLedger& ledger,
                        const std::vector<std::vector<uint8_t>>& avail,
                        const IauParams& params, size_t num_workers,
                        int sweeps, int reps) {
  double best = kInfinity;
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    for (int s = 0; s < sweeps; ++s) {
      for (size_t w = 0; w < num_workers; ++w) {
        benchmark::DoNotOptimize(
            LegacyBestResponse(state, ledger, avail[w], w, params));
      }
    }
    best = std::min(best, sw.ElapsedSeconds());
  }
  return best;
}

}  // namespace

int RunSimdKernelGate(size_t num_workers) {
  const simd::SimdMode entry_mode = simd::ActiveSimdMode();
  const bool avx2 = simd::CpuSupportsAvx2();

  const Instance inst = SimdGateInstance(num_workers);
  VdpsConfig vdps;
  vdps.max_set_size = 1;
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, vdps);

  const IauParams params;
  // Serial engine in the production configuration (incremental
  // availability index on); the legacy replica gets a precomputed bitmap
  // of the same availability answers, so both sides pay one cached byte
  // per candidate — raw IsAvailable chases the AoS strategy record plus
  // the entry's point list, cache misses that would drown the kernel
  // signal on both sides equally.
  BestResponseConfig config;
  JointState state(inst, catalog);
  BestResponseEngine engine(state, params, config);
  for (size_t w = 0; w < num_workers; ++w) {
    const size_t n = catalog.strategies(w).size();
    for (size_t i = 0; i < n; ++i) {
      const int32_t idx = static_cast<int32_t>(i);
      if (state.IsAvailable(w, idx)) {
        engine.Apply(w, idx);
        break;
      }
    }
  }
  PayoffLedger legacy_ledger(state.payoffs());
  std::vector<std::vector<uint8_t>> avail(num_workers);
  for (size_t w = 0; w < num_workers; ++w) {
    const size_t n = catalog.strategies(w).size();
    avail[w].resize(n);
    for (size_t i = 0; i < n; ++i) {
      avail[w][i] =
          state.IsAvailable(w, static_cast<int32_t>(i)) ? 1 : 0;
    }
  }

  // Gate 3 first: the baseline's choices must match the engine's before
  // its timing means anything.
  bool replica_agrees = true;
  for (size_t w = 0; w < num_workers; ++w) {
    if (engine.Evaluate(w).strategy !=
        LegacyBestResponse(state, legacy_ledger, avail[w], w, params)) {
      replica_agrees = false;
    }
  }

  // Lanes per Evaluate, from the engine's own batch counters.
  const BestResponseCounters sweep_before = engine.counters();
  for (size_t w = 0; w < num_workers; ++w) {
    benchmark::DoNotOptimize(engine.Evaluate(w));
  }
  const BestResponseCounters sweep_after = engine.counters();
  const double lanes_per_evaluate =
      static_cast<double>(sweep_after.simd_lanes - sweep_before.simd_lanes) /
      static_cast<double>(num_workers);

  constexpr int kSweeps = 10;
  constexpr int kReps = 5;
  const uint64_t evaluate_calls =
      static_cast<uint64_t>(kSweeps) * num_workers;

  // Steady-state allocation count on the dispatch mode the speedup claim
  // is about (AVX2 where available), after a warm-up sweep of each side.
  if (avx2) simd::SetSimdMode(simd::SimdMode::kAvx2);
  TimeEvaluateSweeps(engine, num_workers, 1, 1);
  TimeLegacySweeps(state, legacy_ledger, avail, params, num_workers, 1,
                  1);
  const uint64_t before =
      g_heap_allocations.load(std::memory_order_relaxed);
  TimeEvaluateSweeps(engine, num_workers, kSweeps, 1);
  const uint64_t engine_allocs =
      g_heap_allocations.load(std::memory_order_relaxed) - before;

  double avx2_seconds = 0.0;
  if (avx2) {
    avx2_seconds = TimeEvaluateSweeps(engine, num_workers, kSweeps, kReps);
  }
  simd::SetSimdMode(simd::SimdMode::kScalar);
  const double scalar_seconds =
      TimeEvaluateSweeps(engine, num_workers, kSweeps, kReps);
  simd::SetSimdMode(entry_mode);
  const double legacy_seconds = TimeLegacySweeps(
      state, legacy_ledger, avail, params, num_workers, kSweeps, kReps);

  const double active_seconds = avx2 ? avx2_seconds : scalar_seconds;
  const double speedup = legacy_seconds / active_seconds;
  const double speedup_scalar = legacy_seconds / scalar_seconds;

  constexpr double kSpeedupThreshold = 2.0;
  const bool zero_alloc_pass = engine_allocs == 0;
  const bool report_only = !avx2;
  const bool speedup_pass = report_only || speedup >= kSpeedupThreshold;
  const bool pass = zero_alloc_pass && replica_agrees && speedup_pass;

  const double per_call = 1e9 / static_cast<double>(evaluate_calls);
  obs::JsonWriter json;
  json.BeginObject();
  json.Key("bench");
  json.String("simd_kernels");
  json.Key("meta");
  bench::AppendBenchMeta(json);
  json.Key("workload");
  json.String("uniform_single_point_catalogs");
  json.Key("workers");
  json.UInt(static_cast<uint64_t>(num_workers));
  json.Key("strategies_per_worker");
  json.UInt(static_cast<uint64_t>(catalog.MaxStrategiesPerWorker()));
  json.Key("lanes_per_evaluate");
  json.Double(lanes_per_evaluate);
  json.Key("evaluate_calls");
  json.UInt(evaluate_calls);
  json.Key("avx2_supported");
  json.Bool(avx2);
  json.Key("dispatch");
  json.String(simd::SimdModeName(avx2 ? simd::SimdMode::kAvx2
                                      : simd::SimdMode::kScalar));
  json.Key("legacy");
  json.BeginObject();
  json.Key("seconds");
  json.Double(legacy_seconds);
  json.Key("ns_per_evaluate");
  json.Double(legacy_seconds * per_call);
  json.EndObject();
  json.Key("scalar_batch");
  json.BeginObject();
  json.Key("seconds");
  json.Double(scalar_seconds);
  json.Key("ns_per_evaluate");
  json.Double(scalar_seconds * per_call);
  json.EndObject();
  if (avx2) {
    json.Key("avx2_batch");
    json.BeginObject();
    json.Key("seconds");
    json.Double(avx2_seconds);
    json.Key("ns_per_evaluate");
    json.Double(avx2_seconds * per_call);
    json.EndObject();
  }
  json.Key("steady_state_allocations");
  json.UInt(engine_allocs);
  json.Key("speedup");
  json.Double(speedup);
  json.Key("speedup_scalar_batch");
  json.Double(speedup_scalar);
  json.Key("speedup_threshold");
  json.Double(kSpeedupThreshold);
  json.Key("zero_alloc_pass");
  json.Bool(zero_alloc_pass);
  json.Key("replica_agrees");
  json.Bool(replica_agrees);
  json.Key("speedup_pass");
  json.Bool(speedup_pass);
  json.Key("report_only");
  json.Bool(report_only);
  json.Key("pass");
  json.Bool(pass);
  json.EndObject();
  const std::string path = "BENCH_simd.json";
  std::ofstream out(path);
  out << json.str() << "\n";
  out.close();

  std::printf(
      "simd kernel gate (|W|=%zu, %.0f lanes/Evaluate): legacy %.1f "
      "ns/call, scalar batch %.1f ns/call, %s %.1f ns/call (%llu allocs) "
      "-> %.2fx (>= %.1fx%s, 0 allocs, replica %s: %s); wrote %s\n",
      num_workers, lanes_per_evaluate,
      legacy_seconds * per_call, scalar_seconds * per_call,
      avx2 ? "avx2 batch" : "no avx2; scalar", active_seconds * per_call,
      static_cast<unsigned long long>(engine_allocs), speedup,
      kSpeedupThreshold, report_only ? " report-only" : "",
      replica_agrees ? "agrees" : "DISAGREES",
      pass ? "PASS" : "FAIL", path.c_str());
  if (!pass) {
    std::fprintf(stderr,
                 "simd kernel gate FAILED: allocations=%llu (need 0), "
                 "replica_agrees=%d, speedup %.2fx (need >= %.1fx)\n",
                 static_cast<unsigned long long>(engine_allocs),
                 replica_agrees ? 1 : 0, speedup, kSpeedupThreshold);
    return 1;
  }
  return 0;
}

}  // namespace fta

int main(int argc, char** argv) {
  // --bench=obs / --bench=game / --bench=simd run just that gate (the CI
  // smoke mode); --gate-workers=N resizes the ledger and SIMD gates'
  // instances. All are consumed here so google-benchmark never sees them.
  bool obs_only = false;
  bool game_only = false;
  bool simd_only = false;
  std::size_t gate_workers = 256;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--bench=obs") {
      obs_only = true;
    } else if (arg == "--bench=game") {
      game_only = true;
    } else if (arg == "--bench=simd") {
      simd_only = true;
    } else if (arg.rfind("--gate-workers=", 0) == 0) {
      gate_workers = static_cast<std::size_t>(
          std::strtoull(arg.c_str() + std::strlen("--gate-workers="),
                        nullptr, 10));
      if (gate_workers == 0) {
        std::fprintf(stderr, "bad --gate-workers value: %s\n", arg.c_str());
        return 1;
      }
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  if (obs_only) return fta::RunObsOverheadGate();
  if (game_only) return fta::RunGameLedgerGate(gate_workers);
  if (simd_only) return fta::RunSimdKernelGate(gate_workers);
  if (const int rc = fta::RunObsOverheadGate(); rc != 0) return rc;
  if (const int rc = fta::RunGameLedgerGate(gate_workers); rc != 0) {
    return rc;
  }
  if (const int rc = fta::RunSimdKernelGate(gate_workers); rc != 0) {
    return rc;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
