// Micro-benchmarks (google-benchmark) for the library's hot paths: C-VDPS
// generation with and without pruning, IAU evaluation, best-response
// rounds, the solvers end-to-end, k-means, tree-decomposition MWIS, and
// grid-index radius queries.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "fta/fta.h"

namespace fta {
namespace {

Instance GmInstance(size_t tasks = 200, size_t dps = 100,
                    size_t workers = 40) {
  GMissionConfig config;
  config.num_tasks = tasks;
  config.num_workers = workers;
  config.seed = 11;
  GMissionPrepConfig prep;
  prep.num_delivery_points = dps;
  prep.seed = 12;
  return GenerateGMissionLike(config, prep);
}

VdpsConfig PrunedVdps(double epsilon = 0.6) {
  VdpsConfig vdps;
  vdps.epsilon = epsilon;
  vdps.max_set_size = 3;
  return vdps;
}

void BM_VdpsGenerationPruned(benchmark::State& state) {
  const Instance inst = GmInstance();
  const VdpsConfig vdps =
      PrunedVdps(static_cast<double>(state.range(0)) / 10.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(VdpsCatalog::Generate(inst, vdps));
  }
}
BENCHMARK(BM_VdpsGenerationPruned)->Arg(2)->Arg(6)->Arg(10);

void BM_VdpsGenerationUnpruned(benchmark::State& state) {
  const Instance inst = GmInstance();
  VdpsConfig vdps;
  vdps.max_set_size = 3;  // epsilon = infinity
  for (auto _ : state) {
    benchmark::DoNotOptimize(VdpsCatalog::Generate(inst, vdps));
  }
}
BENCHMARK(BM_VdpsGenerationUnpruned);

void BM_VdpsExactDp(benchmark::State& state) {
  const Instance inst =
      GmInstance(60, static_cast<size_t>(state.range(0)), 10);
  VdpsConfig vdps;
  vdps.max_set_size = 3;
  vdps.use_exact_dp = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(VdpsCatalog::Generate(inst, vdps));
  }
}
BENCHMARK(BM_VdpsExactDp)->Arg(10)->Arg(14)->Arg(18);

void BM_IauNaive(benchmark::State& state) {
  Rng rng(1);
  std::vector<double> others(static_cast<size_t>(state.range(0)));
  for (double& p : others) p = rng.Uniform(0, 10);
  const IauParams params;
  double own = 5.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Iau(own, others, params));
  }
}
BENCHMARK(BM_IauNaive)->Arg(100)->Arg(1000)->Arg(10000);

void BM_IauOthersView(benchmark::State& state) {
  Rng rng(1);
  std::vector<double> others(static_cast<size_t>(state.range(0)));
  for (double& p : others) p = rng.Uniform(0, 10);
  const OthersView view(others);
  const IauParams params;
  double own = 5.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(view.Iau(own, params));
  }
}
BENCHMARK(BM_IauOthersView)->Arg(100)->Arg(1000)->Arg(10000);

void BM_FgtSolve(benchmark::State& state) {
  const Instance inst = GmInstance();
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, PrunedVdps());
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveFgt(inst, catalog));
  }
}
BENCHMARK(BM_FgtSolve);

// Serial-vs-parallel best-response scans on the default Table-1-scale
// instance. Arg(n) = engine threads; items/sec = candidate strategies
// evaluated (availability + IAU) per second, the engine's throughput
// metric. Output is bit-identical across all arguments.
void BM_BestResponseRoundsParallel(benchmark::State& state) {
  const Instance inst = GmInstance();
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, PrunedVdps());
  FgtConfig config;
  config.engine.num_threads = static_cast<size_t>(state.range(0));
  config.engine.use_incremental_index = false;  // isolate the fan-out
  uint64_t candidates = 0;
  for (auto _ : state) {
    const GameResult result = SolveFgt(inst, catalog, config);
    candidates += result.engine.strategies_scanned +
                  result.engine.cache_skips;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(candidates));
}
BENCHMARK(BM_BestResponseRoundsParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Cold (full availability re-check every turn) vs incremental (inverted
// index + dirty bits). Arg(0/1) = index off/on. Counter columns show the
// per-run scan reduction; wall time shows the payoff.
void BM_BestResponseIncrementalIndex(benchmark::State& state) {
  const Instance inst = GmInstance();
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, PrunedVdps());
  FgtConfig config;
  config.engine.use_incremental_index = state.range(0) != 0;
  config.record_trace = true;
  uint64_t scanned = 0;
  uint64_t skipped = 0;
  uint64_t scanned_after_r1 = 0;  // the steady-state scan load
  for (auto _ : state) {
    const GameResult result = SolveFgt(inst, catalog, config);
    scanned += result.engine.strategies_scanned;
    skipped += result.engine.cache_skips;
    for (const IterationStats& it : result.trace) {
      if (it.iteration >= 2) {
        scanned_after_r1 += it.engine.strategies_scanned;
      }
    }
    benchmark::DoNotOptimize(result);
  }
  state.counters["scanned"] =
      benchmark::Counter(static_cast<double>(scanned),
                         benchmark::Counter::kAvgIterations);
  state.counters["scanned_r2plus"] =
      benchmark::Counter(static_cast<double>(scanned_after_r1),
                         benchmark::Counter::kAvgIterations);
  state.counters["cache_skips"] =
      benchmark::Counter(static_cast<double>(skipped),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_BestResponseIncrementalIndex)->Arg(0)->Arg(1);

void BM_IegtSolve(benchmark::State& state) {
  const Instance inst = GmInstance();
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, PrunedVdps());
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveIegt(inst, catalog));
  }
}
BENCHMARK(BM_IegtSolve);

void BM_GtaSolve(benchmark::State& state) {
  const Instance inst = GmInstance();
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, PrunedVdps());
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveGta(inst, catalog));
  }
}
BENCHMARK(BM_GtaSolve);

void BM_MptaSolve(benchmark::State& state) {
  const Instance inst = GmInstance();
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, PrunedVdps());
  MptaConfig config;
  config.candidates_per_worker = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveMpta(inst, catalog, config));
  }
}
BENCHMARK(BM_MptaSolve)->Arg(4)->Arg(8)->Arg(16);

void BM_KMeans(benchmark::State& state) {
  Rng data_rng(3);
  std::vector<Point> pts(static_cast<size_t>(state.range(0)));
  for (Point& p : pts) {
    p = {data_rng.Uniform(0, 100), data_rng.Uniform(0, 100)};
  }
  for (auto _ : state) {
    Rng rng(4);
    benchmark::DoNotOptimize(KMeans(pts, 50, rng));
  }
}
BENCHMARK(BM_KMeans)->Arg(1000)->Arg(10000);

void BM_TreeDecompositionMwis(benchmark::State& state) {
  Rng rng(5);
  const size_t n = static_cast<size_t>(state.range(0));
  Graph g(n);
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t v = u + 1; v < n; ++v) {
      if (rng.Bernoulli(4.0 / static_cast<double>(n))) g.AddEdge(u, v);
    }
  }
  std::vector<double> w(n);
  for (double& x : w) x = rng.Uniform(0.1, 10.0);
  for (auto _ : state) {
    const TreeDecomposition td = TreeDecomposition::Build(g);
    benchmark::DoNotOptimize(MwisOverTreeDecomposition(g, w, td, 24));
  }
}
BENCHMARK(BM_TreeDecompositionMwis)->Arg(50)->Arg(200);

void BM_GridRadiusQuery(benchmark::State& state) {
  Rng rng(6);
  std::vector<Point> pts(static_cast<size_t>(state.range(0)));
  for (Point& p : pts) p = {rng.Uniform(0, 100), rng.Uniform(0, 100)};
  const GridIndex index(pts, 2.0);
  size_t i = 0;
  for (auto _ : state) {
    const Point q{static_cast<double>(i % 100),
                  static_cast<double>((i * 7) % 100)};
    benchmark::DoNotOptimize(index.RadiusQuery(q, 2.0));
    ++i;
  }
}
BENCHMARK(BM_GridRadiusQuery)->Arg(1000)->Arg(100000);

// --- Observability micro-costs -------------------------------------------

void BM_SpanDisabled(benchmark::State& state) {
  obs::SetTracingEnabled(false);
  for (auto _ : state) {
    FTA_SPAN("bench/span");
  }
}
BENCHMARK(BM_SpanDisabled);

// Fixed iteration count: every enabled span is retained in the recorder, so
// letting google-benchmark pick the count would grow the buffer unbounded.
void BM_SpanEnabled(benchmark::State& state) {
  obs::TraceRecorder::Global().Clear();
  obs::SetTracingEnabled(true);
  for (auto _ : state) {
    FTA_SPAN("bench/span");
  }
  obs::SetTracingEnabled(false);
  obs::TraceRecorder::Global().Clear();
}
BENCHMARK(BM_SpanEnabled)->Iterations(1 << 16);

void BM_CounterAdd(benchmark::State& state) {
  obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("bench/counter_add");
  for (auto _ : state) {
    counter.Add(1);
  }
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramObserve(benchmark::State& state) {
  obs::Histogram& hist = obs::MetricsRegistry::Global().GetHistogram(
      "bench/hist_observe", obs::ExponentialBounds(0.25, 4.0, 8));
  double value = 0.0;
  for (auto _ : state) {
    hist.Observe(value);
    value += 0.5;
    if (value > 4096.0) value = 0.0;
  }
}
BENCHMARK(BM_HistogramObserve);

}  // namespace

// Observability overhead gate, run before the benchmark suite proper: the
// instrumentation left in the hot paths must cost < 2% of a GM-default FGT
// run when tracing is disabled (the production configuration). Disabled
// spans do constant work, so the modeled overhead is
//
//   spans-per-run x disabled-span-cost / untraced-run-wall-time
//
// with spans-per-run counted from a traced run of the same workload. The
// model is deliberate: on a noisy 1-CPU container, differencing two wall
// times of the full solver would drown the signal, while the per-span cost
// is measurable to well under a nanosecond. Results go to BENCH_obs.json.
int RunObsOverheadGate() {
  // Per-span cost with tracing disabled (one relaxed atomic load).
  obs::SetTracingEnabled(false);
  constexpr int kProbeSpans = 2000000;
  Stopwatch probe;
  for (int i = 0; i < kProbeSpans; ++i) {
    FTA_SPAN("bench/obs_gate_probe");
  }
  const double disabled_span_ns =
      probe.ElapsedSeconds() * 1e9 / kProbeSpans;

  // Spans a traced GM-default FGT run emits.
  const Instance inst = GmInstance();
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, PrunedVdps());
  obs::TraceRecorder::Global().Clear();
  obs::SetTracingEnabled(true);
  benchmark::DoNotOptimize(SolveFgt(inst, catalog));
  obs::SetTracingEnabled(false);
  const size_t spans_per_run = obs::TraceRecorder::Global().num_events();
  obs::TraceRecorder::Global().Clear();

  // Untraced FGT wall time: best of 5 to shed scheduler noise.
  double run_seconds = kInfinity;
  for (int rep = 0; rep < 5; ++rep) {
    Stopwatch sw;
    benchmark::DoNotOptimize(SolveFgt(inst, catalog));
    run_seconds = std::min(run_seconds, sw.ElapsedSeconds());
  }

  const double overhead_fraction =
      static_cast<double>(spans_per_run) * disabled_span_ns * 1e-9 /
      run_seconds;
  constexpr double kThreshold = 0.02;
  const bool pass = overhead_fraction < kThreshold;

  obs::JsonWriter json;
  json.BeginObject();
  json.Key("bench");
  json.String("obs_overhead");
  json.Key("workload");
  json.String("gm_default_fgt");
  json.Key("disabled_span_ns");
  json.Double(disabled_span_ns);
  json.Key("spans_per_run");
  json.UInt(spans_per_run);
  json.Key("run_seconds");
  json.Double(run_seconds);
  json.Key("overhead_fraction");
  json.Double(overhead_fraction);
  json.Key("threshold");
  json.Double(kThreshold);
  json.Key("pass");
  json.Bool(pass);
  json.EndObject();
  const std::string path = "BENCH_obs.json";
  std::ofstream out(path);
  out << json.str() << "\n";
  out.close();

  std::printf(
      "obs overhead gate: %.3f ns/span disabled, %zu spans/run, FGT run "
      "%.3f ms -> modeled overhead %.4f%% (< %.1f%%: %s); wrote %s\n",
      disabled_span_ns, spans_per_run, run_seconds * 1e3,
      overhead_fraction * 100.0, kThreshold * 100.0,
      pass ? "PASS" : "FAIL", path.c_str());
  if (!pass) {
    std::fprintf(stderr,
                 "obs overhead gate FAILED: disabled-mode instrumentation "
                 "costs %.4f%% of the GM-default FGT run (limit %.1f%%)\n",
                 overhead_fraction * 100.0, kThreshold * 100.0);
    return 1;
  }
  return 0;
}

}  // namespace fta

int main(int argc, char** argv) {
  if (const int rc = fta::RunObsOverheadGate(); rc != 0) return rc;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
