// City-scale traffic replay through the sharded assignment server: a
// synthesized multi-center city (heterogeneous per-center Poisson rates,
// GM pruning defaults) replayed through AssignmentServer at 1, 2, and 8
// runner threads and through the single-threaded sequential reference
// loop. Emits BENCH_serve.json.
//
// Hard gates (the bench aborts if they fail):
//  - response identity: EVERY response of every server run (tick,
//    shard_seq, first_global_seq, coalesced count, running digest) equals
//    the sequential reference's — the serve determinism contract
//    (DESIGN.md §14), re-checked on the bench workload at every thread
//    count;
//  - pool reuse: the measurement loop constructs zero ThreadPools after
//    warmup (ThreadPool::total_created() must stay flat across
//    repetitions);
//  - throughput: >= kSpeedupGate x the sequential reference at 8 runner
//    threads — enforced only when the host has >= 8 hardware threads;
//    on smaller hosts the shard fan-out has no cores to land on, so the
//    ratio is reported (loudly) instead of gated.

#include <algorithm>
#include <fstream>
#include <sstream>
#include <vector>

#include "bench/common.h"
#include "util/check.h"

namespace fta {
namespace bench {
namespace {

constexpr size_t kCenters = 12;
constexpr uint64_t kTicks = 16;
constexpr double kTickPeriod = 0.05;
constexpr int kReps = 2;
constexpr double kSpeedupGate = 3.0;
constexpr unsigned kGateMinHardwareThreads = 8;

CityWorkloadConfig BenchCity() {
  CityWorkloadConfig city;
  city.num_centers = kCenters;
  city.center_spacing = 12.0;
  city.rate_sigma = 0.6;  // heterogeneous: hot downtown, quiet tail
  city.tick_period = kTickPeriod;
  city.ticks = kTicks;
  // Per center, bench_stream's steady churn regime: ~12 orders and ~2
  // workers turn over per tick against a queue filling toward rate x
  // patience.
  city.base.tasks.base_rate_per_hour = 240.0;
  city.base.tasks.peak_hours = {};
  city.base.worker_rate_per_hour = 40.0;
  city.base.area_size = 10.0;
  city.base.mean_worker_dwell_hours = 1.0;
  city.base.mean_task_patience_hours = 1.0;
  return city;
}

ServerConfig BenchServer(size_t threads) {
  ServerConfig config;
  config.num_threads = threads;
  config.queue_capacity = 256;
  config.tick_period = kTickPeriod;
  config.engine.policy = ResolvePolicy::kWarm;
  config.engine.solver = StreamSolver::kFgt;
  config.engine.vdps.epsilon = 0.6;  // paper's GM default (Table I)
  config.engine.vdps.max_set_size = 3;
  config.engine.seed = 7;
  return config;
}

void CheckAgainstReference(const AssignmentServer& server,
                           const ReferenceResult& ref, size_t threads) {
  for (uint32_t c = 0; c < server.num_shards(); ++c) {
    FTA_CHECK_MSG(server.shard_digest(c) == ref.digests[c],
                  "shard " << c << " digest diverged from the sequential "
                           << "reference at " << threads << " threads");
    const std::vector<ServeResponse>& got = server.responses(c);
    const std::vector<ServeResponse>& want = ref.responses[c];
    FTA_CHECK_MSG(got.size() == want.size(),
                  "shard " << c << " answered " << got.size()
                           << " batches, reference has " << want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      const bool same = got[i].tick == want[i].tick &&
                        got[i].shard_seq == want[i].shard_seq &&
                        got[i].first_global_seq == want[i].first_global_seq &&
                        got[i].coalesced_requests ==
                            want[i].coalesced_requests &&
                        got[i].shard_digest == want[i].shard_digest;
      FTA_CHECK_MSG(same, "shard " << c << " response " << i
                                   << " diverged from the reference at "
                                   << threads << " threads");
    }
  }
}

struct ServerRun {
  double wall_ms = kInfinity;
  double throughput = 0.0;  // assignments per second, best rep
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  uint64_t retries = 0;
  uint64_t assignments = 0;
  uint64_t shard_batches_min = 0;
  uint64_t shard_batches_max = 0;
  /// Max over shards of (shard solve-ms total / mean) — 1.0 is perfectly
  /// balanced.
  double solve_imbalance = 0.0;
};

ServerRun RunServer(size_t threads, const ServeTrace& trace,
                    const ReferenceResult& ref, ThreadPool& pool) {
  ServerRun best;
  for (int rep = 0; rep < kReps; ++rep) {
    std::vector<CenterSpec> centers;
    for (const Point& p : trace.centers) centers.push_back({p});
    Stopwatch sw;
    AssignmentServer server(BenchServer(threads), std::move(centers), &pool);
    StatusOr<uint64_t> retries = ReplayTrace(server, trace);
    FTA_CHECK_OK(retries.status());
    server.Drain();
    const double wall_ms = sw.ElapsedMillis();
    CheckAgainstReference(server, ref, threads);
    const ServeCounters counters = server.counters();
    FTA_CHECK_MSG(counters.answered == counters.admitted,
                  "drain left admitted requests unanswered");
    if (wall_ms >= best.wall_ms) continue;

    best.wall_ms = wall_ms;
    best.retries = *retries;
    best.assignments = counters.assignments;
    best.throughput =
        static_cast<double>(counters.assignments) / (wall_ms / 1000.0);
    obs::SketchData latency(0.01);
    for (uint32_t c = 0; c < server.num_shards(); ++c) {
      for (const ServeResponse& r : server.responses(c)) {
        latency.Observe(r.latency_ms);
      }
    }
    best.p50_latency_ms = latency.ValueAtQuantile(0.5);
    best.p99_latency_ms = latency.ValueAtQuantile(0.99);

    const std::vector<uint64_t> batches = server.shard_batch_counts();
    best.shard_batches_min =
        *std::min_element(batches.begin(), batches.end());
    best.shard_batches_max =
        *std::max_element(batches.begin(), batches.end());
    std::vector<double> solve_totals(server.num_shards(), 0.0);
    double total = 0.0;
    for (uint32_t c = 0; c < server.num_shards(); ++c) {
      for (const ServeResponse& r : server.responses(c)) {
        solve_totals[c] += r.stats.solve_ms;
      }
      total += solve_totals[c];
    }
    const double mean = total / static_cast<double>(server.num_shards());
    best.solve_imbalance =
        mean > 0.0
            ? *std::max_element(solve_totals.begin(), solve_totals.end()) /
                  mean
            : 0.0;
  }
  return best;
}

void AppendRun(std::ostringstream& json, size_t threads,
               const ServerRun& run) {
  json << "    {\"threads\": " << threads
       << ", \"wall_ms\": " << StrFormat("%.3f", run.wall_ms)
       << ", \"throughput_assignments_per_s\": "
       << StrFormat("%.1f", run.throughput)
       << ", \"p50_latency_ms\": " << StrFormat("%.4f", run.p50_latency_ms)
       << ", \"p99_latency_ms\": " << StrFormat("%.4f", run.p99_latency_ms)
       << ", \"assignments\": " << run.assignments
       << ", \"queue_full_retries\": " << run.retries
       << ", \"shard_batches_min\": " << run.shard_batches_min
       << ", \"shard_batches_max\": " << run.shard_batches_max
       << ", \"solve_imbalance\": "
       << StrFormat("%.3f", run.solve_imbalance) << ", \"digest_ok\": true}";
}

void Main() {
  PrintHeader("bench_serve — sharded multi-center assignment server");

  const CityWorkload city = GenerateCityWorkload(BenchCity(), 7);
  const ServeTrace trace =
      BuildServeTrace(city, /*max_requests_per_tick=*/3, /*seed=*/7);
  size_t events = 0;
  for (const auto& center_events : city.events) {
    events += center_events.size();
  }
  std::printf(
      "serve bench: %zu centers, %llu ticks, %zu requests, %zu events, "
      "%d reps\n",
      city.centers.size(), static_cast<unsigned long long>(city.ticks),
      trace.requests.size(), events, kReps);

  // Pools come first so the measured loop never constructs one; the gate
  // below pins that.
  ThreadPool& pool = SharedBenchPool(8);
  ReferenceResult ref;
  double ref_wall_ms = kInfinity;
  for (int rep = 0; rep < kReps; ++rep) {
    Stopwatch sw;
    ReferenceResult r = RunSequentialReference(BenchServer(1), trace);
    const double wall_ms = sw.ElapsedMillis();
    if (wall_ms < ref_wall_ms) {
      ref_wall_ms = wall_ms;
      ref = std::move(r);
    }
  }
  const double ref_throughput =
      static_cast<double>(ref.assignments) / (ref_wall_ms / 1000.0);
  std::printf("  sequential reference: %.1f ms, %llu batches, "
              "%llu assignments, %.1f assignments/s\n",
              ref_wall_ms, static_cast<unsigned long long>(ref.batches),
              static_cast<unsigned long long>(ref.assignments),
              ref_throughput);

  const uint64_t pools_before = ThreadPool::total_created();
  ServerRun runs[3];
  const size_t thread_counts[3] = {1, 2, 8};
  for (size_t i = 0; i < 3; ++i) {
    runs[i] = RunServer(thread_counts[i], trace, ref, pool);
    std::printf("  server %zu thread(s): %.1f ms, %.1f assignments/s, "
                "p50 %.2f ms, p99 %.2f ms, imbalance %.2f, retries %llu\n",
                thread_counts[i], runs[i].wall_ms, runs[i].throughput,
                runs[i].p50_latency_ms, runs[i].p99_latency_ms,
                runs[i].solve_imbalance,
                static_cast<unsigned long long>(runs[i].retries));
  }
  const uint64_t pools_after = ThreadPool::total_created();
  FTA_CHECK_MSG(pools_after == pools_before,
                "measurement loop constructed "
                    << (pools_after - pools_before)
                    << " ThreadPool(s); servers and engines must reuse the "
                       "shared bench pool");

  const double speedup = runs[2].throughput / ref_throughput;
  const unsigned hw_threads = std::thread::hardware_concurrency();
  const bool gate_enforced = hw_threads >= kGateMinHardwareThreads;
  std::printf("  8-shard speedup vs sequential: %.2fx (gate >= %.1fx, %s)\n",
              speedup, kSpeedupGate,
              gate_enforced ? "enforced" : "REPORT-ONLY");
  if (gate_enforced) {
    FTA_CHECK_MSG(speedup >= kSpeedupGate,
                  "8-shard throughput must be >= "
                      << kSpeedupGate << "x the sequential reference, got "
                      << StrFormat("%.2fx", speedup));
  } else {
    std::printf(
        "  NOTE: host has %u hardware thread(s) < %u — the speedup gate is "
        "REPORT-ONLY on this machine (digest identity stays hard).\n",
        hw_threads, kGateMinHardwareThreads);
  }

  std::ostringstream json;
  json << "{\n  \"bench\": \"serve\",\n  \"meta\": " << BenchMetaJson()
       << ",\n  \"workload\": {\"centers\": " << city.centers.size()
       << ", \"ticks\": " << city.ticks
       << ", \"requests\": " << trace.requests.size()
       << ", \"events\": " << events
       << ", \"epsilon\": 0.6, \"reps\": " << kReps << "}"
       << ",\n  \"reference\": {\"wall_ms\": "
       << StrFormat("%.3f", ref_wall_ms) << ", \"batches\": " << ref.batches
       << ", \"assignments\": " << ref.assignments
       << ", \"throughput_assignments_per_s\": "
       << StrFormat("%.1f", ref_throughput) << "}"
       << ",\n  \"runs\": [\n";
  for (size_t i = 0; i < 3; ++i) {
    AppendRun(json, thread_counts[i], runs[i]);
    json << (i + 1 < 3 ? ",\n" : "\n");
  }
  json << "  ],\n  \"serve8\": {\"throughput_assignments_per_s\": "
       << StrFormat("%.1f", runs[2].throughput)
       << ", \"p99_latency_ms\": "
       << StrFormat("%.4f", runs[2].p99_latency_ms)
       << ", \"speedup_vs_sequential\": " << StrFormat("%.3f", speedup)
       << "},\n  \"speedup_gate\": " << StrFormat("%.1f", kSpeedupGate)
       << ",\n  \"gate_enforced\": " << (gate_enforced ? "true" : "false")
       << ",\n  \"digest_identity\": true\n}\n";

  const std::string path = "BENCH_serve.json";
  std::ofstream out(path);
  out << json.str();
  out.close();
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace bench
}  // namespace fta

int main() { fta::bench::Main(); }
