// Figures 6 and 7: effect of the number of workers |W| on both datasets.
//
// Paper shape: the payoff differences of MPTA / GTA / FGT fall as |W|
// grows (more workers spread the payoffs); IEGT stays flat and lowest
// (evolutionary stability); MPTA has the highest average payoff and is by
// far the most CPU-hungry.

#include "bench/common.h"

namespace fta {
namespace bench {
namespace {

void Main() {
  PrintHeader("Figures 6-7 — effect of the number of workers |W|");

  {
    const std::vector<size_t> sizes{20, 40, 60, 80, 100};
    std::vector<std::string> labels;
    for (size_t s : sizes) labels.push_back(StrFormat("%zu", s));
    const SweepResult gm = RunParameterSweep(
        "Fig 6 GM", "|W|", labels,
        [&](size_t p) {
          GMissionConfig config = GmDefault();
          config.num_workers = sizes[p];
          return GmMulti(config, GmPrepDefault());
        },
        PaperSeries(GmOptions()));
    std::printf("%s\n", gm.ToText().c_str());
  }
  {
    const std::vector<size_t> paper_sizes{1000, 2000, 3000, 4000, 5000};
    std::vector<std::string> labels;
    for (size_t s : paper_sizes) {
      labels.push_back(StrFormat(
          "%zu", static_cast<size_t>(static_cast<double>(s) * kSynScale)));
    }
    const SweepResult syn = RunParameterSweep(
        "Fig 7 SYN", "|W|", labels,
        [&](size_t p) {
          SynConfig config = SynDefault();
          config.num_workers = static_cast<size_t>(
              static_cast<double>(paper_sizes[p]) * kSynScale);
          return GenerateSyn(config);
        },
        PaperSeries(SynOptions()));
    std::printf("%s\n", syn.ToText().c_str());
  }
}

}  // namespace
}  // namespace bench
}  // namespace fta

int main() { fta::bench::Main(); }
