// Figure 12: convergence of the game-theoretic approaches. Prints the
// per-iteration payoff difference and average payoff of FGT and IEGT on
// the default configuration of both datasets, plus FGT's exact potential
// (which must be monotonically non-decreasing — the convergence guarantee
// of the refined Lemma 2).

#include "bench/common.h"

namespace fta {
namespace bench {
namespace {

void PrintTrace(const char* name, const GameResult& result,
                bool with_potential) {
  std::vector<std::string> header{"metric"};
  for (const IterationStats& s : result.trace) {
    header.push_back(StrFormat("it%d", s.iteration));
  }
  ResultTable t(std::string(name) +
                    StrFormat(" (converged=%s, %d rounds)",
                              result.converged ? "yes" : "no",
                              result.rounds),
                header);
  std::vector<double> pdif, avg, phi, changes, scanned, skips;
  for (const IterationStats& s : result.trace) {
    pdif.push_back(s.payoff_difference);
    avg.push_back(s.average_payoff);
    phi.push_back(s.potential);
    changes.push_back(static_cast<double>(s.num_changes));
    scanned.push_back(static_cast<double>(s.engine.strategies_scanned));
    skips.push_back(static_cast<double>(s.engine.cache_skips));
  }
  t.AddNumericRow("P_dif", pdif);
  t.AddNumericRow("avg payoff", avg);
  if (with_potential) t.AddNumericRow("potential", phi);
  t.AddNumericRow("moves", changes);
  t.AddNumericRow("scanned", scanned);
  t.AddNumericRow("cache skips", skips);
  std::printf("%s\n", t.ToText().c_str());
}

void RunOn(const char* dataset, const Instance& instance,
           const SolverOptions& options) {
  const VdpsCatalog catalog = VdpsCatalog::Generate(instance, options.vdps);
  std::printf("[%s] %s\n\n", dataset, catalog.Summary().c_str());

  FgtConfig fgt = options.fgt;
  fgt.record_trace = true;
  PrintTrace((std::string("Fig 12 — FGT convergence on ") + dataset).c_str(),
             SolveFgt(instance, catalog, fgt), /*with_potential=*/true);

  IegtConfig iegt = options.iegt;
  iegt.record_trace = true;
  PrintTrace(
      (std::string("Fig 12 — IEGT convergence on ") + dataset).c_str(),
      SolveIegt(instance, catalog, iegt), /*with_potential=*/false);
}

void Main() {
  PrintHeader("Figure 12 — convergence of FGT and IEGT");
  RunOn("GM", GenerateGMissionLike(GmDefault(), GmPrepDefault()),
        GmOptions());
  const MultiCenterInstance syn = GenerateSyn(SynDefault());
  // Trace the most populated center (traces are per-population).
  size_t biggest = 0;
  for (size_t c = 1; c < syn.centers.size(); ++c) {
    if (syn.centers[c].num_workers() >
        syn.centers[biggest].num_workers()) {
      biggest = c;
    }
  }
  RunOn("SYN (largest center)", syn.centers[biggest], SynOptions());
}

}  // namespace
}  // namespace bench
}  // namespace fta

int main() { fta::bench::Main(); }
