// Figures 4 and 5: effect of the number of tasks |S| on both datasets.
//
// Paper shape: payoff differences and average payoffs of all methods grow
// with |S| (more tasks -> higher payoffs -> more room for inequity); IEGT's
// payoff difference stays well below the others (18-35% of theirs); CPU
// time is nearly flat in |S| (tasks are bundled per delivery point).

#include "bench/common.h"

namespace fta {
namespace bench {
namespace {

void Main() {
  PrintHeader("Figures 4-5 — effect of the number of tasks |S|");

  {
    const std::vector<size_t> sizes{100, 200, 300, 400, 500};
    std::vector<std::string> labels;
    for (size_t s : sizes) labels.push_back(StrFormat("%zu", s));
    const SweepResult gm = RunParameterSweep(
        "Fig 4 GM", "|S|", labels,
        [&](size_t p) {
          GMissionConfig config = GmDefault();
          config.num_tasks = sizes[p];
          return GmMulti(config, GmPrepDefault());
        },
        PaperSeries(GmOptions()));
    std::printf("%s\n", gm.ToText().c_str());
  }
  {
    const std::vector<size_t> paper_sizes{25000, 50000, 75000, 100000,
                                          125000};
    std::vector<std::string> labels;
    for (size_t s : paper_sizes) {
      labels.push_back(StrFormat("%zu", static_cast<size_t>(
                                            static_cast<double>(s) *
                                            kSynScale)));
    }
    const SweepResult syn = RunParameterSweep(
        "Fig 5 SYN", "|S|", labels,
        [&](size_t p) {
          SynConfig config = SynDefault();
          config.num_tasks = static_cast<size_t>(
              static_cast<double>(paper_sizes[p]) * kSynScale);
          return GenerateSyn(config);
        },
        PaperSeries(SynOptions()));
    std::printf("%s\n", syn.ToText().c_str());
  }
}

}  // namespace
}  // namespace bench
}  // namespace fta

int main() { fta::bench::Main(); }
