// Ablations for the design choices DESIGN.md calls out (not in the paper):
//   1. MPTA candidate cap K — quality/width/CPU trade-off of the top-K
//      restriction plus greedy completion.
//   2. IAU weights alpha = beta — how strongly inequity aversion trades
//      average payoff for fairness in FGT (alpha = 0 is a fairness-blind
//      best-response game).
//   3. Pareto frontier depth — how many (time, slack) sequence options per
//      C-VDPS are worth keeping for far-from-center workers.

#include "bench/common.h"

namespace fta {
namespace bench {
namespace {

void AblateMptaCandidates(const Instance& instance) {
  ResultTable t("Ablation — MPTA candidates-per-worker cap K",
                {"K", "total payoff", "avg payoff", "P_dif", "exact",
                 "width", "CPU (ms)"});
  for (size_t k : {1u, 2u, 4u, 8u, 16u, 32u}) {
    SolverOptions options = GmOptions();
    const VdpsCatalog catalog =
        VdpsCatalog::Generate(instance, options.vdps);
    MptaConfig config = options.mpta;
    config.candidates_per_worker = k;
    CpuTimer timer;
    const MptaResult r = SolveMpta(instance, catalog, config);
    const double ms = timer.ElapsedMillis();
    t.AddRow({StrFormat("%zu", k),
              StrFormat("%.2f", r.assignment.TotalPayoff(instance)),
              StrFormat("%.4f", r.assignment.AveragePayoff(instance)),
              StrFormat("%.4f", r.assignment.PayoffDifference(instance)),
              r.exact ? "yes" : "no", StrFormat("%d", r.width),
              StrFormat("%.1f", ms)});
  }
  std::printf("%s\n", t.ToText().c_str());
}

void AblateIauWeights(const Instance& instance) {
  ResultTable t("Ablation — FGT inequity-aversion weight (alpha = beta)",
                {"alpha", "P_dif", "avg payoff", "rounds"});
  const VdpsCatalog catalog =
      VdpsCatalog::Generate(instance, GmOptions().vdps);
  for (double alpha : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    FgtConfig config;
    config.iau = IauParams{alpha, alpha};
    const GameResult r = SolveFgt(instance, catalog, config);
    t.AddRow({StrFormat("%.2f", alpha),
              StrFormat("%.4f", r.assignment.PayoffDifference(instance)),
              StrFormat("%.4f", r.assignment.AveragePayoff(instance)),
              StrFormat("%d", r.rounds)});
  }
  std::printf("%s\n", t.ToText().c_str());
}

void AblateParetoDepth(const Instance& instance) {
  ResultTable t("Ablation — Pareto frontier depth per C-VDPS",
                {"depth", "entries", "strategies", "IEGT P_dif",
                 "IEGT avg payoff", "gen CPU (ms)"});
  for (uint32_t depth : {1u, 2u, 4u, 8u}) {
    VdpsConfig vdps = GmOptions().vdps;
    vdps.max_pareto = depth;
    CpuTimer timer;
    const VdpsCatalog catalog = VdpsCatalog::Generate(instance, vdps);
    const double gen_ms = timer.ElapsedMillis();
    size_t strategies = 0;
    for (size_t w = 0; w < catalog.num_workers(); ++w) {
      strategies += catalog.strategies(w).size();
    }
    const GameResult r = SolveIegt(instance, catalog);
    t.AddRow({StrFormat("%u", depth),
              StrFormat("%zu", catalog.num_entries()),
              StrFormat("%zu", strategies),
              StrFormat("%.4f", r.assignment.PayoffDifference(instance)),
              StrFormat("%.4f", r.assignment.AveragePayoff(instance)),
              StrFormat("%.1f", gen_ms)});
  }
  std::printf("%s\n", t.ToText().c_str());
}

void Main() {
  PrintHeader("Ablations — MPTA cap K, IAU weights, Pareto depth");
  const Instance instance =
      GenerateGMissionLike(GmDefault(), GmPrepDefault());
  AblateMptaCandidates(instance);
  AblateIauWeights(instance);
  AblateParetoDepth(instance);
}

}  // namespace
}  // namespace bench
}  // namespace fta

int main() { fta::bench::Main(); }
