// C-VDPS catalog generation micro-bench: thread-count determinism, phase
// timings, and the route arena's allocation savings on the GM default
// instance. Emits BENCH_vdps.json with wall-clock, counter, and memory
// fields so the bench trajectory accumulates across revisions.
//
// Hard gates (the bench aborts if they fail):
//  - catalogs are bit-identical across thread counts {1, 2, 4, 8};
//  - the sequence engine cuts transient route allocations and bytes per
//    generated entry by >= 2x vs. the pre-arena implementation (modeled
//    exactly by the legacy_* counters). "Transient" = route copies that do
//    not survive into the final catalog: the old enumerator allocated a
//    sort key + an option route per recorded sequence and threw away
//    everything the Pareto frontier rejected; the serial arena engines
//    allocate exactly the final catalog (entry.dps keys + surviving
//    routes), so their transient route traffic is zero by construction.
//    (Parallel runs additionally copy the few set keys that multiple
//    shards discover independently; the gate measures the serial run.)

#include <fstream>
#include <sstream>

#include "bench/common.h"

namespace fta {
namespace bench {
namespace {

/// Exact structural equality of two catalogs: entries (sets, rewards,
/// Pareto options with routes), per-worker strategies, and the inverted
/// index. Doubles compared bit-for-bit — the determinism guarantee is
/// "identical", not "close".
bool CatalogsIdentical(const VdpsCatalog& a, const VdpsCatalog& b) {
  if (a.num_entries() != b.num_entries()) return false;
  for (size_t e = 0; e < a.num_entries(); ++e) {
    const CVdpsEntry& x = a.entry(e);
    const CVdpsEntry& y = b.entry(e);
    if (x.dps != y.dps || x.total_reward != y.total_reward ||
        x.options.size() != y.options.size()) {
      return false;
    }
    for (size_t o = 0; o < x.options.size(); ++o) {
      if (x.options[o].route != y.options[o].route ||
          x.options[o].center_time != y.options[o].center_time ||
          x.options[o].slack != y.options[o].slack) {
        return false;
      }
    }
  }
  if (a.num_workers() != b.num_workers()) return false;
  for (size_t w = 0; w < a.num_workers(); ++w) {
    const auto& sa = a.strategies(w);
    const auto& sb = b.strategies(w);
    if (sa.size() != sb.size()) return false;
    for (size_t i = 0; i < sa.size(); ++i) {
      if (sa[i].entry_id != sb[i].entry_id || sa[i].route != sb[i].route ||
          sa[i].total_time != sb[i].total_time ||
          sa[i].payoff != sb[i].payoff) {
        return false;
      }
    }
  }
  if (a.num_indexed_delivery_points() != b.num_indexed_delivery_points()) {
    return false;
  }
  for (uint32_t dp = 0; dp < a.num_indexed_delivery_points(); ++dp) {
    const auto& ta = a.strategies_touching(dp);
    const auto& tb = b.strategies_touching(dp);
    if (ta.size() != tb.size()) return false;
    for (size_t i = 0; i < ta.size(); ++i) {
      if (ta[i].worker != tb[i].worker || ta[i].strategy != tb[i].strategy) {
        return false;
      }
    }
  }
  return true;
}

void AppendCounters(std::ostringstream& json, const GenerationCounters& g) {
  json << "\"states_expanded\": " << g.states_expanded
       << ", \"options_recorded\": " << g.options_recorded
       << ", \"pareto_inserts\": " << g.pareto_inserts
       << ", \"pareto_evictions\": " << g.pareto_evictions
       << ", \"entries\": " << g.entries
       << ", \"strategies\": " << g.strategies
       << ", \"arena_nodes\": " << g.arena_nodes
       << ", \"arena_bytes\": " << g.arena_bytes
       << ", \"route_allocs\": " << g.route_allocs
       << ", \"route_bytes_copied\": " << g.route_bytes_copied
       << ", \"scratch_bytes_copied\": " << g.scratch_bytes_copied
       << ", \"legacy_route_allocs\": " << g.legacy_route_allocs
       << ", \"legacy_route_bytes\": " << g.legacy_route_bytes
       << ", \"adjacency_pairs\": " << g.adjacency_pairs
       << ", \"shards\": " << g.shards
       << ", \"max_shard_states\": " << g.max_shard_states
       << ", \"adjacency_ms\": " << StrFormat("%.3f", g.adjacency_ms)
       << ", \"enumerate_ms\": " << StrFormat("%.3f", g.enumerate_ms)
       << ", \"finalize_ms\": " << StrFormat("%.3f", g.finalize_ms)
       << ", \"strategies_ms\": " << StrFormat("%.3f", g.strategies_ms)
       << ", \"wall_ms\": " << StrFormat("%.3f", g.wall_ms);
}

void Main() {
  PrintHeader("bench_vdps — parallel, allocation-lean C-VDPS generation");

  const Instance instance = GenerateGMissionLike(GmDefault(), GmPrepDefault());
  const VdpsConfig base = GmOptions().vdps;
  const std::vector<size_t> thread_counts{1, 2, 4, 8};

  struct Engine {
    const char* name;
    size_t beam_width;  // 0 = exhaustive sequence enumerator
  };
  // The exact DP is capped at 24 delivery points, so on the GM default
  // (|DP| = 100) the engines under test are the two scalable ones; the
  // vdps_catalog_equivalence test battery pins exact == sequences.
  const std::vector<Engine> engines{{"sequences", 0}, {"beam", 64}};

  std::ostringstream json;
  json << "{\n  \"bench\": \"vdps\",\n  \"meta\": " << BenchMetaJson()
       << ",\n"
       << "  \"dataset\": \"GM default (200 tasks, 40 workers, 100 dps, "
          "eps=0.6, maxDP=3)\",\n  \"engines\": [\n";

  bool first_entry = true;
  GenerationCounters sequences_serial_counters;
  for (const Engine& engine : engines) {
    std::vector<VdpsCatalog> catalogs;
    for (size_t threads : thread_counts) {
      VdpsConfig config = base;
      config.beam_width = engine.beam_width;
      config.num_threads = threads;
      // Reuse one pool per thread count across engines and repetitions so
      // the timed region measures generation, not thread spawn.
      if (threads > 1) config.pool = &SharedBenchPool(threads);
      Stopwatch sw;
      catalogs.push_back(VdpsCatalog::Generate(instance, config));
      const double wall_ms = sw.ElapsedMillis();
      const VdpsCatalog& catalog = catalogs.back();
      const bool identical = CatalogsIdentical(catalogs.front(), catalog);
      FTA_CHECK_MSG(identical, "catalog at " << threads
                                             << " threads diverged from the "
                                                "1-thread catalog ("
                                             << engine.name << ")");
      if (engine.beam_width == 0 && threads == 1) {
        sequences_serial_counters = catalog.generation();
      }
      std::printf(
          "%-9s threads=%zu  wall=%8.2fms  entries=%zu strategies=%llu "
          "states=%llu arena=%llu B  identical_to_serial=%s\n",
          engine.name, threads, wall_ms, catalog.num_entries(),
          static_cast<unsigned long long>(catalog.generation().strategies),
          static_cast<unsigned long long>(
              catalog.generation().states_expanded),
          static_cast<unsigned long long>(catalog.generation().arena_bytes),
          identical ? "yes" : "NO");
      if (!first_entry) json << ",\n";
      first_entry = false;
      json << "    {\"engine\": \"" << engine.name
           << "\", \"threads\": " << threads << ", \"bench_wall_ms\": "
           << StrFormat("%.3f", wall_ms) << ", \"identical_to_serial\": "
           << (identical ? "true" : "false") << ", ";
      AppendCounters(json, catalog.generation());
      json << "}";
    }
  }
  json << "\n  ],\n";

  // Allocation-reduction gate. Both implementations end with the same
  // catalog (entry.dps keys + surviving option routes), so the retained
  // route copies are common to both and the arena's win is everything
  // else: the pre-arena enumerator's per-record sort key + option route
  // allocations that the Pareto frontier later discarded. For the arena
  // engines route_allocs/route_bytes_copied count exactly the retained
  // copies, so the transient traffic is (legacy − retained) vs.
  // scratch-only — zero heap allocations, zero heap bytes.
  const GenerationCounters& g = sequences_serial_counters;
  const uint64_t transient_allocs_now = 0;  // by construction; see above
  const uint64_t transient_bytes_now = g.scratch_bytes_copied;
  const uint64_t transient_allocs_old = g.legacy_route_allocs - g.route_allocs;
  const uint64_t transient_bytes_old =
      g.legacy_route_bytes - g.route_bytes_copied;
  const double alloc_ratio =
      static_cast<double>(transient_allocs_old) /
      static_cast<double>(std::max<uint64_t>(transient_allocs_now, 1));
  const double bytes_ratio =
      static_cast<double>(transient_bytes_old) /
      static_cast<double>(std::max<uint64_t>(transient_bytes_now, 1));
  const double entries_d = static_cast<double>(std::max<uint64_t>(g.entries, 1));
  std::printf(
      "\nsequences engine, route-copy accounting (per generated entry):\n"
      "  transient allocs: %.2f pre-arena -> %.2f now (>= %.0fx reduction)\n"
      "  transient bytes:  %.2f pre-arena -> %.2f now (>= %.0fx reduction)\n"
      "  total allocs:     %.2f pre-arena -> %.2f now "
      "(remainder is the final catalog itself)\n"
      "  arena footprint:  %llu B of shared 8-byte nodes replace %llu B of "
      "discarded route copies\n",
      static_cast<double>(transient_allocs_old) / entries_d,
      static_cast<double>(transient_allocs_now) / entries_d, alloc_ratio,
      static_cast<double>(transient_bytes_old) / entries_d,
      static_cast<double>(transient_bytes_now) / entries_d, bytes_ratio,
      static_cast<double>(g.legacy_route_allocs) / entries_d,
      static_cast<double>(g.route_allocs) / entries_d,
      static_cast<unsigned long long>(g.arena_bytes),
      static_cast<unsigned long long>(transient_bytes_old));
  FTA_CHECK_MSG(
      transient_allocs_old > 0 && alloc_ratio >= 2.0 && bytes_ratio >= 2.0,
      "route arena must cut transient route allocations and bytes per entry "
      "by >= 2x (got "
          << StrFormat("%.2fx / %.2fx", alloc_ratio, bytes_ratio) << ")");

  json << "  \"alloc_reduction\": {\"engine\": \"sequences\", "
       << "\"transient_alloc_ratio\": " << StrFormat("%.3f", alloc_ratio)
       << ", \"transient_bytes_ratio\": " << StrFormat("%.3f", bytes_ratio)
       << ", \"transient_allocs_per_entry\": "
       << StrFormat("%.3f",
                    static_cast<double>(transient_allocs_old) / entries_d)
       << ", \"transient_allocs_per_entry_now\": "
       << StrFormat("%.3f",
                    static_cast<double>(transient_allocs_now) / entries_d)
       << ", \"total_allocs_per_entry\": "
       << StrFormat("%.3f", static_cast<double>(g.route_allocs) / entries_d)
       << ", \"legacy_total_allocs_per_entry\": "
       << StrFormat("%.3f",
                    static_cast<double>(g.legacy_route_allocs) / entries_d)
       << "}\n}\n";

  const std::string path = "BENCH_vdps.json";
  std::ofstream out(path);
  out << json.str();
  out.close();
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace
}  // namespace bench
}  // namespace fta

int main() { fta::bench::Main(); }
