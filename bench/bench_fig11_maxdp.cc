// Figure 11: effect of maxDP (the maximum acceptable number of delivery
// points per worker) on SYN.
//
// Paper shape: MPTA / GTA / FGT payoff differences grow with maxDP (longer
// routes concentrate reward on lucky workers) while IEGT stays flat and
// far lowest (13-59% of the others); average payoffs rise with maxDP; the
// iterative games cost more CPU than GTA.

#include "bench/common.h"

namespace fta {
namespace bench {
namespace {

void Main() {
  PrintHeader("Figure 11 — effect of maxDP (SYN)");
  const std::vector<uint32_t> maxdps{1, 2, 3, 4};
  std::vector<std::string> labels;
  for (uint32_t m : maxdps) labels.push_back(StrFormat("%u", m));
  // VDPS generation must enumerate sets up to the largest worker capacity.
  std::vector<SweepSeries> series;
  for (Algorithm a : PaperAlgorithms()) {
    SolverOptions options = SynOptions();
    options.vdps.max_set_size = 4;
    series.push_back({AlgorithmName(a), a, options});
  }
  const SweepResult syn = RunParameterSweep(
      "Fig 11 SYN", "maxDP", labels,
      [&](size_t p) {
        SynConfig config = SynDefault();
        config.max_dp = maxdps[p];
        return GenerateSyn(config);
      },
      series);
  std::printf("%s\n", syn.ToText().c_str());
}

}  // namespace
}  // namespace bench
}  // namespace fta

int main() { fta::bench::Main(); }
