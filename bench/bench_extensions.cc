// Extension benches — the paper's future-work features implemented here:
//   1. Early termination: rounds/quality trade-off for FGT and IEGT.
//   2. Priority-aware evolution: weighted fairness vs plain IEGT.
//   3. Beam-width scaling: approximate C-VDPS generation for large maxDP
//      where the exhaustive enumerator is intractable.
//   4. Long-run (multi-wave) fairness of all four algorithms.

#include "bench/common.h"

namespace fta {
namespace bench {
namespace {

void EarlyTermination() {
  const Instance instance =
      GenerateGMissionLike(GmDefault(), GmPrepDefault());
  const VdpsCatalog catalog =
      VdpsCatalog::Generate(instance, GmOptions().vdps);
  ResultTable t("early termination — IEGT patience sweep",
                {"patience", "rounds", "P_dif", "avg payoff", "stopped"});
  for (int patience : {0, 1, 2, 4, 8}) {
    IegtConfig config;
    config.early_stop = EarlyStopRule{1e-3, patience};
    const GameResult r = SolveIegt(instance, catalog, config);
    t.AddRow({StrFormat("%d", patience), StrFormat("%d", r.rounds),
              StrFormat("%.4f", r.assignment.PayoffDifference(instance)),
              StrFormat("%.4f", r.assignment.AveragePayoff(instance)),
              r.early_stopped ? "early" : "converged"});
  }
  std::printf("%s\n", t.ToText().c_str());
}

void PriorityEvolution() {
  ResultTable t("priority-aware IEGT vs plain IEGT (priorities 1 / 3)",
                {"seed", "plain wP_dif", "prio wP_dif", "plain ratio",
                 "prio ratio"});
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    GMissionConfig config = GmDefault(seed * 97);
    config.num_workers = 10;
    const Instance instance =
        GenerateGMissionLike(config, GmPrepDefault(60));
    const VdpsCatalog catalog =
        VdpsCatalog::Generate(instance, GmOptions().vdps);
    std::vector<double> priorities;
    for (size_t w = 0; w < instance.num_workers(); ++w) {
      priorities.push_back(w % 2 == 0 ? 1.0 : 3.0);
    }
    IegtConfig plain;
    plain.seed = seed;
    PriorityIegtConfig prio;
    prio.priorities = priorities;
    prio.seed = seed;
    const GameResult a = SolveIegt(instance, catalog, plain);
    const GameResult b = SolvePriorityIegt(instance, catalog, prio);
    const auto ratio = [&](const GameResult& r) {
      const std::vector<double> payoffs = r.assignment.Payoffs(instance);
      double hi = 0.0, lo = 0.0;
      for (size_t w = 0; w < payoffs.size(); ++w) {
        (priorities[w] > 1.5 ? hi : lo) += payoffs[w];
      }
      return lo > 0 ? hi / lo : 0.0;
    };
    t.AddRow({StrFormat("%llu", static_cast<unsigned long long>(seed)),
              StrFormat("%.3f",
                        PriorityPayoffDifference(
                            a.assignment.Payoffs(instance), priorities)),
              StrFormat("%.3f",
                        PriorityPayoffDifference(
                            b.assignment.Payoffs(instance), priorities)),
              StrFormat("%.2fx", ratio(a)), StrFormat("%.2fx", ratio(b))});
  }
  std::printf("%s\n", t.ToText().c_str());
}

void BeamScaling() {
  // maxDP = 6: exhaustive enumeration is intractable on a dense instance;
  // the beam trades completeness for bounded work.
  GMissionConfig config = GmDefault(55);
  config.num_tasks = 300;
  const Instance instance = GenerateGMissionLike(config, GmPrepDefault(80, 6));
  ResultTable t("beam width scaling (maxDP = 6, 80 delivery points)",
                {"beam", "entries", "gen CPU (ms)", "IEGT P_dif",
                 "IEGT avg payoff"});
  for (size_t beam : {50u, 200u, 1000u, 5000u}) {
    VdpsConfig vdps = GmOptions().vdps;
    vdps.epsilon = 2.0;  // wide pruning: the sequence space actually explodes
    vdps.max_set_size = 6;
    vdps.beam_width = beam;
    CpuTimer timer;
    const VdpsCatalog catalog = VdpsCatalog::Generate(instance, vdps);
    const double ms = timer.ElapsedMillis();
    const GameResult r = SolveIegt(instance, catalog);
    t.AddRow({StrFormat("%zu", beam),
              StrFormat("%zu", catalog.num_entries()),
              StrFormat("%.1f", ms),
              StrFormat("%.4f", r.assignment.PayoffDifference(instance)),
              StrFormat("%.4f", r.assignment.AveragePayoff(instance))});
  }
  std::printf("%s\n", t.ToText().c_str());
}

void LongRunFairness() {
  ResultTable t("multi-wave dispatch: one-day earnings fairness",
                {"algorithm", "served", "earn P_dif", "earn Gini",
                 "earn Jain"});
  for (Algorithm a : PaperAlgorithms()) {
    SimulationConfig config;
    config.algorithm = a;
    config.options.vdps.epsilon = 2.5;
    config.seed = 12;
    const SimulationResult r = RunDispatchSimulation(config);
    t.AddRow({AlgorithmName(a), StrFormat("%zu", r.tasks_served),
              StrFormat("%.3f", r.earnings_payoff_difference),
              StrFormat("%.3f", r.earnings_gini),
              StrFormat("%.3f", r.earnings_jain)});
  }
  std::printf("%s\n", t.ToText().c_str());
}

void BatchVsSingleTask() {
  // The paper's batch VDPS games vs. the myopic "single-task assignment
  // mode" its Definition 3 mentions: batching should win on both payoff
  // and fairness because it plans whole routes jointly.
  ResultTable t("batch games vs single-task dispatch mode",
                {"mode", "P_dif", "avg payoff", "covered tasks"});
  const Instance instance =
      GenerateGMissionLike(GmDefault(), GmPrepDefault());
  const VdpsCatalog catalog =
      VdpsCatalog::Generate(instance, GmOptions().vdps);
  const auto add = [&](const char* name, const Assignment& a) {
    t.AddRow({name, StrFormat("%.4f", a.PayoffDifference(instance)),
              StrFormat("%.4f", a.AveragePayoff(instance)),
              StrFormat("%zu/%zu", a.num_covered_tasks(instance),
                        instance.num_tasks())});
  };
  add("single-task (min added time)",
      SolveSingleTaskMode(instance, SingleTaskPolicy::kMinAddedTime));
  add("single-task (max marginal payoff)",
      SolveSingleTaskMode(instance, SingleTaskPolicy::kMaxMarginalPayoff));
  add("batch FGT", SolveFgt(instance, catalog).assignment);
  add("batch IEGT", SolveIegt(instance, catalog).assignment);
  std::printf("%s\n", t.ToText().c_str());
}

void MptaOptimalityGap() {
  // How far is MPTA (candidate-capped MWIS + completion) from the true
  // max-total optimum? Branch and bound provides the exact reference on
  // mid-size instances.
  ResultTable t("MPTA optimality gap vs exact branch and bound",
                {"seed", "BnB optimum", "MPTA total", "gap %", "BnB nodes"});
  for (uint64_t seed : {1u, 2u, 3u}) {
    GMissionConfig config = GmDefault(seed * 31);
    config.num_workers = 10;
    config.num_tasks = 120;
    const Instance instance =
        GenerateGMissionLike(config, GmPrepDefault(40));
    const VdpsCatalog catalog =
        VdpsCatalog::Generate(instance, GmOptions().vdps);
    const BnbResult bnb = SolveMaxTotalBnB(instance, catalog, 20'000'000);
    const MptaResult mpta = SolveMpta(instance, catalog);
    const double gap =
        bnb.total_payoff > 0
            ? 100.0 * (bnb.total_payoff -
                       mpta.assignment.TotalPayoff(instance)) /
                  bnb.total_payoff
            : 0.0;
    t.AddRow({StrFormat("%llu", static_cast<unsigned long long>(seed)),
              StrFormat("%.2f%s", bnb.total_payoff,
                        bnb.complete ? "" : " (cap)"),
              StrFormat("%.2f", mpta.assignment.TotalPayoff(instance)),
              StrFormat("%.2f", gap),
              StrFormat("%zu", bnb.nodes_explored)});
  }
  std::printf("%s\n", t.ToText().c_str());
}

void Main() {
  PrintHeader("Extensions — early stop, priorities, beam, long-run fairness");
  EarlyTermination();
  PriorityEvolution();
  BeamScaling();
  LongRunFairness();
  BatchVsSingleTask();
  MptaOptimalityGap();
}

}  // namespace
}  // namespace bench
}  // namespace fta

int main() { fta::bench::Main(); }
