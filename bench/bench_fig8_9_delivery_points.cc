// Figures 8 and 9: effect of the number of delivery points |DP| on both
// datasets. On GM, |DP| is the k of the paper's k-means preparation.
//
// Paper shape: payoff differences decline as |DP| grows (more strategies
// per worker -> easier to equalize); average payoffs also decline (the
// same tasks spread over more points -> fewer tasks per stop); MPTA's CPU
// time dwarfs the others.

#include "bench/common.h"

namespace fta {
namespace bench {
namespace {

/// Per-|DP| C-VDPS generation counters on GM: the paper's complexity
/// analysis says generation dominates as |DP| grows; this shows where the
/// states, Pareto traffic, and arena bytes go.
void PrintGmGenerationCounters(const std::vector<size_t>& sizes) {
  const std::vector<std::string> header{"|DP|",         "states",
                                        "pareto_ins",   "pareto_evic",
                                        "entries",      "strategies",
                                        "arena_bytes",  "shards",
                                        "max_shard_st", "wall_ms"};
  ResultTable table("Fig 8 GM — C-VDPS generation counters", header);
  const auto u = [](uint64_t v) {
    return StrFormat("%llu", static_cast<unsigned long long>(v));
  };
  for (size_t s : sizes) {
    const Instance instance =
        GenerateGMissionLike(GmDefault(), GmPrepDefault(s));
    const VdpsCatalog catalog =
        VdpsCatalog::Generate(instance, GmOptions().vdps);
    const GenerationCounters& g = catalog.generation();
    table.AddRow({StrFormat("%zu", s), u(g.states_expanded),
                  u(g.pareto_inserts), u(g.pareto_evictions), u(g.entries),
                  u(g.strategies), u(g.arena_bytes), u(g.shards),
                  u(g.max_shard_states), StrFormat("%.2f", g.wall_ms)});
  }
  std::printf("%s\n", table.ToText().c_str());
}

void Main() {
  PrintHeader("Figures 8-9 — effect of the number of delivery points |DP|");

  {
    const std::vector<size_t> sizes{20, 40, 60, 80, 100};
    std::vector<std::string> labels;
    for (size_t s : sizes) labels.push_back(StrFormat("%zu", s));
    const SweepResult gm = RunParameterSweep(
        "Fig 8 GM", "|DP|", labels,
        [&](size_t p) {
          return GmMulti(GmDefault(), GmPrepDefault(sizes[p]));
        },
        PaperSeries(GmOptions()));
    std::printf("%s\n", gm.ToText().c_str());
    PrintGmGenerationCounters(sizes);
  }
  {
    const std::vector<size_t> paper_sizes{3000, 3500, 4000, 4500, 5000};
    std::vector<std::string> labels;
    for (size_t s : paper_sizes) {
      labels.push_back(StrFormat(
          "%zu", static_cast<size_t>(static_cast<double>(s) * kSynScale)));
    }
    const SweepResult syn = RunParameterSweep(
        "Fig 9 SYN", "|DP|", labels,
        [&](size_t p) {
          SynConfig config = SynDefault();
          config.num_delivery_points = static_cast<size_t>(
              static_cast<double>(paper_sizes[p]) * kSynScale);
          return GenerateSyn(config);
        },
        PaperSeries(SynOptions()));
    std::printf("%s\n", syn.ToText().c_str());
  }
}

}  // namespace
}  // namespace bench
}  // namespace fta

int main() { fta::bench::Main(); }
