// Figures 8 and 9: effect of the number of delivery points |DP| on both
// datasets. On GM, |DP| is the k of the paper's k-means preparation.
//
// Paper shape: payoff differences decline as |DP| grows (more strategies
// per worker -> easier to equalize); average payoffs also decline (the
// same tasks spread over more points -> fewer tasks per stop); MPTA's CPU
// time dwarfs the others.

#include "bench/common.h"

namespace fta {
namespace bench {
namespace {

void Main() {
  PrintHeader("Figures 8-9 — effect of the number of delivery points |DP|");

  {
    const std::vector<size_t> sizes{20, 40, 60, 80, 100};
    std::vector<std::string> labels;
    for (size_t s : sizes) labels.push_back(StrFormat("%zu", s));
    const SweepResult gm = RunParameterSweep(
        "Fig 8 GM", "|DP|", labels,
        [&](size_t p) {
          return GmMulti(GmDefault(), GmPrepDefault(sizes[p]));
        },
        PaperSeries(GmOptions()));
    std::printf("%s\n", gm.ToText().c_str());
  }
  {
    const std::vector<size_t> paper_sizes{3000, 3500, 4000, 4500, 5000};
    std::vector<std::string> labels;
    for (size_t s : paper_sizes) {
      labels.push_back(StrFormat(
          "%zu", static_cast<size_t>(static_cast<double>(s) * kSynScale)));
    }
    const SweepResult syn = RunParameterSweep(
        "Fig 9 SYN", "|DP|", labels,
        [&](size_t p) {
          SynConfig config = SynDefault();
          config.num_delivery_points = static_cast<size_t>(
              static_cast<double>(paper_sizes[p]) * kSynScale);
          return GenerateSyn(config);
        },
        PaperSeries(SynOptions()));
    std::printf("%s\n", syn.ToText().c_str());
  }
}

}  // namespace
}  // namespace bench
}  // namespace fta

int main() { fta::bench::Main(); }
