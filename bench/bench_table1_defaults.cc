// Table I of the paper: the experiment parameter grid (default values
// underlined -> marked with *), plus a run of all four algorithms at the
// default configuration of both datasets.

#include "bench/common.h"

namespace fta {
namespace bench {
namespace {

void PrintParameterTable() {
  ResultTable t("Table I — experiment parameters (* = default)",
                {"parameter", "values"});
  t.AddRow({"epsilon (km) (GM)", "0.2, 0.4, 0.6*, 0.8, 1"});
  t.AddRow({"epsilon (km) (SYN)", "0.5, 1, 1.5, 2*, 2.5, 3, 3.5, 4"});
  t.AddRow({"|S| (GM)", "100, 200*, 300, 400, 500"});
  t.AddRow({"|S| (SYN, x scale)", "25K, 50K, 75K, 100K*, 125K"});
  t.AddRow({"|W| (GM)", "20, 40*, 60, 80, 100"});
  t.AddRow({"|W| (SYN, x scale)", "1K, 2K*, 3K, 4K, 5K"});
  t.AddRow({"|DP| (GM)", "20, 40, 60, 80, 100*"});
  t.AddRow({"|DP| (SYN, x scale)", "3K, 3.5K, 4K, 4.5K, 5K*"});
  t.AddRow({"expiration e (h) (SYN)", "0.5, 1, 1.5, 2*, 2.5"});
  t.AddRow({"maxDP (SYN)", "1, 2, 3*, 4"});
  std::printf("%s\n", t.ToText().c_str());
}

void RunDefaults(const char* name, const MultiCenterInstance& multi,
                 const SolverOptions& options) {
  ResultTable t(std::string(name) + " — default configuration",
                {"algorithm", "P_dif", "avg payoff", "CPU (s)", "assigned"});
  for (Algorithm a : PaperAlgorithms()) {
    const RunMetrics m = RunOnMulti(a, multi, options);
    t.AddRow({AlgorithmName(a), StrFormat("%.4f", m.payoff_difference),
              StrFormat("%.4f", m.average_payoff),
              StrFormat("%.3f", m.cpu_seconds),
              StrFormat("%zu/%zu", m.assigned_workers, m.num_workers)});
  }
  std::printf("%s\n", t.ToText().c_str());
}

void Main() {
  PrintHeader("Table I — parameters & default-configuration comparison");
  PrintParameterTable();
  RunDefaults("gMission", GmMulti(GmDefault(), GmPrepDefault()),
              GmOptions());
  RunDefaults("SYN", GenerateSyn(SynDefault()), SynOptions());
}

}  // namespace
}  // namespace bench
}  // namespace fta

int main() { fta::bench::Main(); }
