// Figure 10: effect of the task expiration time e on SYN.
//
// Paper shape: payoff differences first rise with e (more reachable
// delivery points -> more strategy choices -> more inequity room) then
// plateau once every reachable point is reachable (e >= 1.5); average
// payoffs and CPU times rise then plateau for the same reason.

#include "bench/common.h"

namespace fta {
namespace bench {
namespace {

void Main() {
  PrintHeader("Figure 10 — effect of the expiration time e (SYN)");
  const std::vector<double> expiries{0.5, 1.0, 1.5, 2.0, 2.5};
  std::vector<std::string> labels;
  for (double e : expiries) labels.push_back(StrFormat("%.1fh", e));
  const SweepResult syn = RunParameterSweep(
      "Fig 10 SYN", "e", labels,
      [&](size_t p) {
        SynConfig config = SynDefault();
        config.expiry = expiries[p];
        return GenerateSyn(config);
      },
      PaperSeries(SynOptions()));
  std::printf("%s\n", syn.ToText().c_str());
}

}  // namespace
}  // namespace bench
}  // namespace fta

int main() { fta::bench::Main(); }
