// Correct use of the annotated primitives: compiles warning-free under
// -Werror=thread-safety. The mirror fixture annotated_bad.cc breaks one
// rule per FTA_TS_CASE and must fail.
#include "util/mutex.h"

namespace {

class Account {
 public:
  void Deposit(long amount) FTA_EXCLUDES(mu_) {
    fta::MutexLock lock(&mu_);
    balance_ += amount;
  }

  long Read() const FTA_EXCLUDES(mu_) {
    fta::MutexLock lock(&mu_);
    return balance_;
  }

  void DepositLocked(long amount) FTA_REQUIRES(mu_) { balance_ += amount; }

  void DepositTwice(long amount) FTA_EXCLUDES(mu_) {
    fta::MutexLock lock(&mu_);
    DepositLocked(amount);
    DepositLocked(amount);
  }

  void WaitNonZero() FTA_EXCLUDES(mu_) {
    fta::MutexLock lock(&mu_);
    while (balance_ == 0) cv_.Wait(mu_);
  }

  void Signal() FTA_EXCLUDES(mu_) {
    {
      fta::MutexLock lock(&mu_);
      balance_ = 1;
    }
    cv_.NotifyAll();
  }

 private:
  mutable fta::Mutex mu_;
  fta::CondVar cv_;
  long balance_ FTA_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  account.DepositTwice(2);
  account.Signal();
  return account.Read() == 0;
}
