// Deliberately broken locking, one violation per FTA_TS_CASE. Every case
// must FAIL to compile under -Werror=thread-safety; a case that compiles
// means the annotation wall has degraded to a no-op (see
// check_thread_safety.py).
#include "util/mutex.h"

#if !defined(FTA_TS_CASE)
#error "compile with -DFTA_TS_CASE=1..4"
#endif

namespace {

class Account {
 public:
#if FTA_TS_CASE == 1
  // Reads the guarded balance without acquiring the lock.
  long Read() const { return balance_; }
#elif FTA_TS_CASE == 2
  // Writes the guarded balance without acquiring the lock.
  void Deposit(long amount) { balance_ += amount; }
#elif FTA_TS_CASE == 3
  // Calls an FTA_REQUIRES(mu_) function without holding mu_.
  void Deposit(long amount) { DepositLocked(amount); }
#elif FTA_TS_CASE == 4
  // Acquires the non-reentrant mutex twice on one thread.
  void Deposit(long amount) FTA_EXCLUDES(mu_) {
    fta::MutexLock outer(&mu_);
    fta::MutexLock inner(&mu_);
    balance_ += amount;
  }
#endif

  void DepositLocked(long amount) FTA_REQUIRES(mu_) { balance_ += amount; }

 private:
  mutable fta::Mutex mu_;
  long balance_ FTA_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
#if FTA_TS_CASE == 1
  return account.Read() == 0;
#else
  account.Deposit(1);
  return 0;
#endif
}
