#!/usr/bin/env python3
"""Thread-safety annotation fixture check.

Proves the FTA_GUARDED_BY wall actually bites: compiles a correct
annotated fixture (annotated_ok.cc) with Clang's -Wthread-safety promoted
to an error and expects success, then compiles four deliberately broken
variants of annotated_bad.cc (selected with -DFTA_TS_CASE=N) and expects
each to FAIL:

  1  reads a guarded field without holding the lock
  2  writes a guarded field without holding the lock
  3  calls an FTA_REQUIRES(mu) function without holding the lock
  4  double-acquires a non-reentrant fta::Mutex

A passing "bad" compile means the annotations degraded to no-ops — the
exact regression this check exists to catch (e.g. someone weakens the
FTA_THREAD_ANNOTATION_ATTRIBUTE__ shim or strips an attribute from
util/mutex.h).

Requires clang++; exits 77 (the ctest SKIP_RETURN_CODE) when no clang++
is on PATH so the default GCC-only environment skips rather than fails.
CI runs this for real in the thread-safety matrix job.

Exit codes: 0 all cases behave, 1 a case misbehaves, 77 no clang++.
"""

import os
import shutil
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(os.path.dirname(HERE))
BAD_CASES = {
    1: "read of guarded field without the lock",
    2: "write of guarded field without the lock",
    3: "call of an FTA_REQUIRES function without the lock",
    4: "double-acquire of a non-reentrant mutex",
}


def compile_fixture(clang, source, extra_defines=()):
    cmd = [
        clang,
        "-std=c++20",
        "-fsyntax-only",
        "-Wthread-safety",
        "-Wthread-safety-beta",
        "-Werror",
        f"-I{os.path.join(ROOT, 'src')}",
    ]
    cmd += [f"-D{d}" for d in extra_defines]
    cmd.append(source)
    return subprocess.run(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True
    )


def main() -> int:
    clang = os.environ.get("FTA_CLANGXX") or shutil.which("clang++")
    if clang is None:
        print("check_thread_safety: no clang++ on PATH; skipping "
              "(set FTA_CLANGXX to override)")
        return 77

    failures = []

    ok = compile_fixture(clang, os.path.join(HERE, "testdata",
                                             "annotated_ok.cc"))
    if ok.returncode != 0:
        failures.append(
            "annotated_ok.cc should compile cleanly under "
            f"-Werror=thread-safety but failed:\n{ok.stdout}"
        )
    else:
        print("check_thread_safety: annotated_ok.cc compiles clean")

    bad = os.path.join(HERE, "testdata", "annotated_bad.cc")
    for case, what in sorted(BAD_CASES.items()):
        result = compile_fixture(clang, bad, [f"FTA_TS_CASE={case}"])
        if result.returncode == 0:
            failures.append(
                f"annotated_bad.cc case {case} ({what}) compiled cleanly — "
                "the thread-safety annotations are not being enforced"
            )
        elif "thread-safety" not in result.stdout:
            failures.append(
                f"annotated_bad.cc case {case} ({what}) failed for a "
                f"non-thread-safety reason:\n{result.stdout}"
            )
        else:
            print(f"check_thread_safety: case {case} rejected as expected "
                  f"({what})")

    if failures:
        for f in failures:
            print(f"check_thread_safety: FAIL: {f}", file=sys.stderr)
        return 1
    print("check_thread_safety: all fixtures behave")
    return 0


if __name__ == "__main__":
    sys.exit(main())
