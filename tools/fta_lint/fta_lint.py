#!/usr/bin/env python3
"""fta_lint: determinism + concurrency lint for the FTA codebase.

The reproduction's headline claim is that assignments and catalogs are
bit-identical at any thread count. This lint statically rejects the
hazard patterns that have historically threatened that claim. Each rule
is a Rule subclass registered in RULES; per-rule fixtures live under
tools/fta_lint/testdata/ and pin every diagnostic exactly.

  banned-token
      Nondeterminism/timing sources that must never appear in src/:
      libc rand(), std::random_device, wall-clock seeding via
      time(nullptr)/time(NULL)/time(0), and std::this_thread::sleep
      (scheduling-dependent timing baked into library code).

  unordered-iteration
      A range-for over a std::unordered_map/std::unordered_set (or an
      alias / struct field of such a type) whose body appends into another
      container. Bucket order is implementation- and seed-defined, so the
      fed container inherits nondeterministic order unless it is sorted
      afterwards. The lint accepts the pattern when a sort(...) call
      follows within SORT_LOOKAHEAD lines of the loop's closing brace
      (the "enumerate then normalize" idiom), otherwise it reports.

  parallel-float-reduce
      A `+=` / `-=` on a float-typed lvalue inside a lambda passed to
      ThreadPool::RunBatch / RunChunked / ParallelFor. Floating-point
      addition is not associative, so scheduling order would leak into
      the sum. Integer accumulators are exempt (associative +
      commutative); the approved merge helpers (the best_response
      deterministic reduce and the obs snapshot merge) are allowlisted
      by file.

  sorted-metric-rebuild
      A call to the copy-and-sort metric wrappers
      MeanAbsolutePairwiseDifference(...) / Gini(...) from src/game/,
      where the engine's payoff ledger (game/payoff_ledger.h) already
      maintains the sorted payoffs those wrappers would re-sort. Game
      code should read PayoffLedger::PayoffDifference()/Gini() or pass
      an existing sorted view to a *Sorted overload (DESIGN.md §9).
      Declarations (`double Gini() const;`) and qualified definitions
      (`PayoffLedger::Gini`) are not calls and are skipped; code outside
      src/game/ has no ledger in scope and is out of this rule's reach.

  wall-clock-read
      A direct clock read (std::chrono::*_clock::now, clock_gettime,
      gettimeofday, localtime/gmtime) inside src/obs/ or src/stream/
      outside the sanctioned trace clock (src/obs/trace.cc). Those layers
      are replay-deterministic by contract: rolling-window epochs advance
      on caller-driven ticks and durations arrive as values the caller
      measured (util/stopwatch.h), so a replayed run reproduces window
      contents and snapshots bit-identically. A clock read buried in
      either layer would silently break that. Code elsewhere (util,
      bench, examples) is out of this rule's scope.

  raw-simd-intrinsics
      A raw vector intrinsic (`_mm256_*` and friends) or an intrinsic
      header include (`<immintrin.h>`) outside the sanctioned kernel TUs
      (src/util/simd_avx2.cc, src/game/iau_kernels_avx2.cc). Only those
      TUs are compiled with -mavx2 and -ffp-contract=off; an intrinsic
      anywhere else either fails to compile in the portable default build
      or — worse — compiles into a TU whose contraction settings break the
      scalar/AVX2 bit-identity contract (DESIGN.md §11). Route new vector
      code through util/simd.h / game/iau_kernels.h dispatch instead.

  raw-mutex
      A raw standard-library locking primitive (std::mutex and variants,
      std::lock_guard/unique_lock/scoped_lock/shared_lock,
      std::condition_variable) or the matching header include outside
      src/util/mutex.h. Every lock in src/ must be an fta::Mutex /
      fta::MutexLock / fta::CondVar so Clang's -Wthread-safety analysis
      sees the acquisition and checks it against FTA_GUARDED_BY fields
      at compile time (DESIGN.md §13). A raw std::mutex is invisible to
      that analysis — the whole point of the wall is that there are
      exactly zero such sites.

  hot-path-allocation
      An allocation (`new`, make_unique/make_shared) or a growth call
      (push_back/emplace_back on a container with no `.reserve(` in the
      same file) inside a marked steady-state region of
      src/game/best_response* or src/game/payoff_ledger*. Regions are
      delimited by `// FTA_HOT_BEGIN(name)` / `// FTA_HOT_END(name)`
      comments; these are the per-round inner loops the paper's
      complexity claims are measured on, and a hidden realloc there
      shows up as a latency spike the bench trajectory cannot explain.
      Escape with `// NOLINT(fta-alloc)` plus a reason when the
      allocation is amortized by design (e.g. a caller-owned buffer).

Escapes, in order of preference:
  1. Restructure the code (sort the result, fold in fixed shard order,
     accumulate in integers, hoist the allocation out of the region).
  2. `// NOLINT(<tag>)` on the offending line, or
     `// NOLINTNEXTLINE(<tag>)` on the line above, with a reason in the
     surrounding comment. The tag is `fta-det` for every rule except
     hot-path-allocation, which uses `fta-alloc`.
  3. An entry in tools/fta_lint/allowlist.txt (rule:path-suffix:needle).
     Unused allowlist entries are reported as errors so the file cannot
     accumulate stale exemptions.

Exit codes: 0 clean, 1 violations found, 2 usage/configuration error.
Diagnostics are `path:line: [rule] message`, one per line, sorted.
With --format=json the same findings are emitted as one JSON object
(schema "fta-lint-v1": {"schema", "violations": [{file, line, rule,
message}...], "files_scanned"}) for CI artifact upload.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

SOURCE_EXTENSIONS = (".h", ".cc", ".cpp", ".hpp")
SORT_LOOKAHEAD = 15

BANNED_TOKENS = [
    (re.compile(r"(?<![\w:])rand\s*\("), "libc rand() is nondeterministic across runs; use fta::Rng"),
    (re.compile(r"std::random_device"), "std::random_device is nondeterministic; seed fta::Rng explicitly"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(?:nullptr|NULL|0)\s*\)"), "wall-clock seeding breaks reproducibility; thread timestamps in explicitly"),
    (re.compile(r"this_thread::sleep"), "sleeps encode scheduling assumptions; use condition variables"),
]

PARALLEL_ENTRYPOINTS = re.compile(r"\b(?:RunBatch|RunChunked|ParallelFor)\s*\(")
RANGE_FOR = re.compile(r"\bfor\s*\(([^;]*?):([^;]*?)\)\s*(\{?)\s*$")
APPEND_CALL = re.compile(r"\.(?:push_back|emplace_back|emplace|insert)\s*\(")
SORT_CALL = re.compile(r"\b(?:sort|stable_sort)\s*\(")
COMPOUND_FLOAT = re.compile(r"([A-Za-z_][\w\.\->\[\]\(\)]*?)\s*[+\-]=(?!=)")

SORTED_METRIC = re.compile(
    r"(?<![\w:.>])(MeanAbsolutePairwiseDifference|Gini)(?=\s*\()"
)

# Intrinsic calls (`_mm_`, `_mm256_`, `_mm512_`, ...) and intrinsic-header
# includes. Type names like __m256d do not match (no `_mm<digits>_` run).
SIMD_INTRINSIC = re.compile(r"#\s*include\s*<\w*intrin\.h>|\b_mm\d*_\w+")
# The only TUs allowed to hold raw intrinsics: the per-TU -mavx2 kernels
# behind the util/simd.h dispatch layer.
SIMD_SANCTIONED = (
    "src/util/simd_avx2.cc",
    "src/game/iau_kernels_avx2.cc",
)

# Direct clock reads banned from the replay-deterministic layers. The
# chrono alternative covers every std clock; the libc alternatives cover
# the POSIX reads (including the _r variants via the optional suffix).
WALL_CLOCK_READ = re.compile(
    r"std::chrono::(?:system_clock|steady_clock|high_resolution_clock)::now"
    r"|\b(?:clock_gettime|gettimeofday|localtime(?:_r)?|gmtime(?:_r)?)\s*\("
)
# Path fragments the wall-clock-read rule applies to.
WALL_CLOCK_SCOPES = ("src/obs/", "src/stream/", "src/serve/")
# The one sanctioned clock: the trace recorder's span timestamps, which
# are wall-time-valued by design and never feed the determinism contract.
WALL_CLOCK_SANCTIONED = ("src/obs/trace.cc",)

# Raw locking primitives and their headers. Includes and type/RAII names
# are both matched so a file cannot smuggle in a lock via `using`.
RAW_MUTEX = re.compile(
    r"#\s*include\s*<(?:mutex|shared_mutex|condition_variable)>"
    r"|std::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex"
    r"|shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock"
    r"|shared_lock|condition_variable|condition_variable_any)\b"
)
# The one file allowed to touch std locking: the annotated wrapper layer.
MUTEX_SANCTIONED = ("src/util/mutex.h",)

# Steady-state hot regions: the per-round inner loops of the game engine.
# Markers are comments, so they are read from the RAW lines (scrub blanks
# comments); region bodies are checked on the scrubbed lines.
HOT_REGION_FILES = ("src/game/best_response", "src/game/payoff_ledger")
HOT_BEGIN = re.compile(r"//\s*FTA_HOT_BEGIN\(([\w.-]+)\)")
HOT_END = re.compile(r"//\s*FTA_HOT_END\(([\w.-]+)\)")
HOT_ALLOC = re.compile(
    r"(?<![\w:])new\b|\b(?:std::)?make_(?:unique|shared)\b(?=\s*<)"
)
HOT_APPEND = re.compile(
    r"([A-Za-z_]\w*(?:\[[^\]]*\])?(?:\s*(?:\.|->)\s*[A-Za-z_]\w*)*)"
    r"\s*(?:\.|->)\s*(push_back|emplace_back)\s*\("
)

NOLINT_HERE = re.compile(r"NOLINT\((fta-[\w-]+)\)")
NOLINT_NEXT = re.compile(r"NOLINTNEXTLINE\((fta-[\w-]+)\)")


class Violation:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_json(self) -> dict:
        return {
            "file": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }


def scrub(text: str) -> str:
    """Blanks comments and string/char literals, preserving line structure
    and NOLINT markers (which live in comments but are re-read from the
    raw text)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif ch == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif ch == "R" and text[i : i + 2] == 'R"':
            end = text.find(')"', i + 2)
            stop = n if end == -1 else end + 2
            out.extend("\n" for c in text[i:stop] if c == "\n")
            i = stop
        elif ch in "\"'":
            quote = ch
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                i += 1
            i += 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def brace_match(lines: list[str], start_line: int, start_col: int):
    """Returns the (line, col) just past the matching '}' for the '{' at
    (start_line, start_col), or None if unbalanced. 0-based lines."""
    depth = 0
    for li in range(start_line, len(lines)):
        line = lines[li]
        ci = start_col if li == start_line else 0
        while ci < len(line):
            c = line[ci]
            if c == "{":
                depth += 1
            elif c == "}":
                depth -= 1
                if depth == 0:
                    return li, ci
            ci += 1
    return None


class TypeTables:
    """File-spanning name → type-class lookups, built from every scanned
    file so struct fields resolve across headers."""

    def __init__(self):
        self.float_members: set[str] = set()
        self.unordered_members: set[str] = set()
        self.unordered_aliases: set[str] = set()

    def collect(self, scrubbed_lines: list[str]) -> None:
        for line in scrubbed_lines:
            m = re.search(r"\busing\s+(\w+)\s*=\s*(?:std::)?unordered_", line)
            if m:
                self.unordered_aliases.add(m.group(1))
        alias_pattern = (
            "|".join(re.escape(a) for a in sorted(self.unordered_aliases))
            or r"$^"
        )
        member_decl = re.compile(
            r"^\s*(?:mutable\s+)?(?:std::)?(unordered_map|unordered_set|"
            + alias_pattern
            + r")\b[^;=()]*?\s(\w+)\s*(?:;|=|\{)"
        )
        float_decl = re.compile(
            r"^\s*(?:mutable\s+|const\s+|constexpr\s+|static\s+)*"
            r"(?:double|float)\s+(\w+)\s*(?:;|=|\{)"
        )
        for line in scrubbed_lines:
            m = member_decl.search(line)
            if m:
                self.unordered_members.add(m.group(2))
            m = float_decl.search(line)
            if m:
                self.float_members.add(m.group(1))


class FileScan:
    def __init__(self, path: str, display_path: str):
        self.path = path
        self.display = display_path
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            self.raw = f.read()
        self.raw_lines = self.raw.split("\n")
        self.scrubbed_lines = scrub(self.raw).split("\n")
        # 0-based line index -> set of suppressed NOLINT tags on that line.
        self.suppressed: dict[int, set[str]] = {}
        for i, line in enumerate(self.raw_lines):
            for m in NOLINT_NEXT.finditer(line):
                self.suppressed.setdefault(i + 1, set()).add(m.group(1))
            for m in NOLINT_HERE.finditer(line):
                self.suppressed.setdefault(i, set()).add(m.group(1))

    def is_suppressed(self, line_idx: int, tag: str) -> bool:
        return tag in self.suppressed.get(line_idx, set())

    def local_unordered_names(self) -> set[str]:
        names = set()
        for line in self.scrubbed_lines:
            m = re.search(
                r"\b(?:std::)?unordered_(?:map|set)\s*<[^;]*>[\s&*]+(\w+)\s*[;({=,)]",
                line,
            )
            if m:
                names.add(m.group(1))
        return names

    def local_float_names(self) -> set[str]:
        names = set()
        for line in self.scrubbed_lines:
            m = re.search(
                r"\b(?:double|float)\s+(\w+)\s*[;({=,]", line
            )
            if m:
                names.add(m.group(1))
        return names


def lhs_terminal(expr: str) -> str:
    """Final identifier component of an lvalue expression:
    counters.wall_ms -> wall_ms, out[i] -> out, shard->total -> total."""
    expr = expr.strip()
    expr = re.sub(r"\[[^\]]*\]$", "", expr)
    parts = re.split(r"\.|->", expr)
    last = parts[-1] if parts else expr
    m = re.search(r"([A-Za-z_]\w*)\s*$", last)
    if m:
        return m.group(1)
    m2 = re.search(r"([A-Za-z_]\w*)", last)
    return m2.group(1) if m2 else last


class Rule:
    """One lint rule. Subclasses set `name`, optionally `nolint_tag`
    (which NOLINT(tag) suppresses the rule; None means the rule ignores
    NOLINT entirely), and implement check()."""

    name = ""
    nolint_tag: str | None = "fta-det"

    def check(self, scan: FileScan, tables: TypeTables,
              out: list[Violation]) -> None:
        raise NotImplementedError

    def report(self, scan: FileScan, line_idx: int, message: str,
               out: list[Violation]) -> bool:
        """Appends a violation at 0-based line_idx unless suppressed.
        Returns True when a violation was recorded."""
        if self.nolint_tag is not None and scan.is_suppressed(
            line_idx, self.nolint_tag
        ):
            return False
        out.append(Violation(scan.display, line_idx + 1, self.name, message))
        return True


class BannedTokenRule(Rule):
    # banned-token ignores NOLINT: there is no sanctioned use of those
    # tokens in src/, so an escape hatch would only hide problems.
    name = "banned-token"
    nolint_tag = None

    def check(self, scan, tables, out):
        for i, line in enumerate(scan.scrubbed_lines):
            for pattern, why in BANNED_TOKENS:
                m = pattern.search(line)
                if m:
                    self.report(
                        scan, i, f"'{m.group(0).strip()}' — {why}", out
                    )


class UnorderedIterationRule(Rule):
    name = "unordered-iteration"

    def is_unordered_target(self, expr, scan, tables, local_unordered):
        expr = expr.strip()
        if "unordered_" in expr:
            return True
        terminal = lhs_terminal(expr)
        if (terminal in local_unordered
                or terminal in tables.unordered_members):
            return True
        # Bare names declared via an unordered alias (e.g. `SetStore sets;`
        # where `using SetStore = std::unordered_map<...>`).
        for alias in tables.unordered_aliases:
            if re.search(
                rf"\b{re.escape(alias)}\b[^;={{}}]*?[\s&*]{re.escape(terminal)}\s*[;({{=,)]",
                "\n".join(scan.scrubbed_lines),
            ):
                return True
        return False

    def check(self, scan, tables, out):
        local_unordered = scan.local_unordered_names()
        lines = scan.scrubbed_lines
        for i, line in enumerate(lines):
            m = RANGE_FOR.search(line)
            if not m:
                continue
            if not self.is_unordered_target(
                m.group(2), scan, tables, local_unordered
            ):
                continue
            # Locate the loop body's opening brace (same line or later).
            open_line, open_col = i, line.rfind("{")
            if open_col == -1:
                for j in range(i + 1, min(i + 3, len(lines))):
                    col = lines[j].find("{")
                    if col != -1:
                        open_line, open_col = j, col
                        break
                else:
                    continue  # single-statement body: nothing to append into
            end = brace_match(lines, open_line, open_col)
            if end is None:
                continue
            end_line, _ = end
            body = "\n".join(lines[open_line : end_line + 1])
            feeds = APPEND_CALL.search(body) or re.search(r"[+\-]=(?!=)", body)
            if not feeds:
                continue
            # Look for a normalizing sort between the loop and the end of
            # the enclosing function (a column-0 '}'); a sort in a
            # *different* function must not absolve this loop.
            ahead = []
            for j in range(end_line + 1, min(end_line + 1 + SORT_LOOKAHEAD,
                                             len(lines))):
                if lines[j].startswith("}"):
                    break
                ahead.append(lines[j])
            lookahead = "\n".join(ahead)
            if SORT_CALL.search(lookahead) or SORT_CALL.search(body):
                continue  # order normalized after (or during) the fold
            self.report(
                scan, i,
                "range-for over an unordered container feeds a result "
                "container without a subsequent sort or an order-invariant "
                "fold; bucket order will leak into the output",
                out,
            )


class ParallelFloatReduceRule(Rule):
    name = "parallel-float-reduce"

    def check(self, scan, tables, out):
        local_floats = scan.local_float_names()
        lines = scan.scrubbed_lines
        for i, line in enumerate(lines):
            entry = PARALLEL_ENTRYPOINTS.search(line)
            if not entry:
                continue
            # Only call sites that pass a lambda matter: find the lambda
            # intro '[' after the call, then the lambda body's first '{'
            # after it. Declarations and function-pointer call sites have
            # no '[' and are skipped (nothing to accumulate into).
            intro_line, intro_col = -1, -1
            for j in range(i, min(i + 4, len(lines))):
                col = lines[j].find("[", entry.end() if j == i else 0)
                if col != -1:
                    intro_line, intro_col = j, col
                    break
            if intro_line == -1:
                continue
            open_line, open_col = -1, -1
            for j in range(intro_line, min(intro_line + 4, len(lines))):
                col = lines[j].find(
                    "{", intro_col + 1 if j == intro_line else 0
                )
                if col != -1:
                    open_line, open_col = j, col
                    break
            if open_line == -1:
                continue
            end = brace_match(lines, open_line, open_col)
            if end is None:
                continue
            end_line, _ = end
            for k in range(open_line, end_line + 1):
                for m in COMPOUND_FLOAT.finditer(lines[k]):
                    target = lhs_terminal(m.group(1))
                    if (target in local_floats
                            or target in tables.float_members):
                        self.report(
                            scan, k,
                            f"float accumulation '{m.group(0).strip()}' "
                            "inside a ThreadPool fan-out lambda; "
                            "scheduling order would change the sum — fold "
                            "per-shard results in a fixed order instead",
                            out,
                        )


class SortedMetricRebuildRule(Rule):
    name = "sorted-metric-rebuild"

    def check(self, scan, tables, out):
        if "src/game/" not in scan.display.replace(os.sep, "/"):
            return
        for i, line in enumerate(scan.scrubbed_lines):
            for m in SORTED_METRIC.finditer(line):
                # `double Gini() const;` and friends declare the wrapper,
                # they do not call it. (Qualified definitions like
                # PayoffLedger::Gini are excluded by the lookbehind.)
                if re.search(
                    r"\b(?:double|float|auto)\s+$", line[: m.start()]
                ):
                    continue
                self.report(
                    scan, i,
                    f"'{m.group(1)}(' copies and re-sorts payoffs the "
                    "engine's ledger already keeps sorted; read "
                    "PayoffLedger::PayoffDifference()/Gini() or pass a "
                    "sorted view to a *Sorted overload (DESIGN.md §9)",
                    out,
                )


class RawSimdIntrinsicsRule(Rule):
    name = "raw-simd-intrinsics"

    def check(self, scan, tables, out):
        display = scan.display.replace(os.sep, "/")
        if display.endswith(SIMD_SANCTIONED):
            return
        for i, line in enumerate(scan.scrubbed_lines):
            for m in SIMD_INTRINSIC.finditer(line):
                self.report(
                    scan, i,
                    f"'{m.group(0).strip()}' outside a sanctioned kernel "
                    "TU; raw SIMD belongs in src/util/simd_avx2.cc / "
                    "src/game/iau_kernels_avx2.cc behind the util/simd.h "
                    "dispatch layer (DESIGN.md §11)",
                    out,
                )


class WallClockReadRule(Rule):
    name = "wall-clock-read"

    def check(self, scan, tables, out):
        display = scan.display.replace(os.sep, "/")
        if not any(scope in display for scope in WALL_CLOCK_SCOPES):
            return
        if display.endswith(WALL_CLOCK_SANCTIONED):
            return
        for i, line in enumerate(scan.scrubbed_lines):
            for m in WALL_CLOCK_READ.finditer(line):
                self.report(
                    scan, i,
                    f"'{m.group(0).strip()}' — direct clock read in the "
                    "replay-deterministic obs/stream layers; take durations "
                    "as caller-measured values (util/stopwatch.h at the "
                    "call site) and advance windows on caller-driven ticks; "
                    "the only sanctioned clock is src/obs/trace.cc",
                    out,
                )


class RawMutexRule(Rule):
    name = "raw-mutex"

    def check(self, scan, tables, out):
        display = scan.display.replace(os.sep, "/")
        if display.endswith(MUTEX_SANCTIONED):
            return
        for i, line in enumerate(scan.scrubbed_lines):
            for m in RAW_MUTEX.finditer(line):
                self.report(
                    scan, i,
                    f"'{m.group(0).strip()}' — raw standard-library "
                    "locking outside src/util/mutex.h; use fta::Mutex / "
                    "fta::MutexLock / fta::CondVar (util/mutex.h) so "
                    "Clang thread-safety analysis can check the lock "
                    "against FTA_GUARDED_BY state (DESIGN.md §13)",
                    out,
                )


class HotPathAllocationRule(Rule):
    name = "hot-path-allocation"
    nolint_tag = "fta-alloc"

    @staticmethod
    def applies_to(display: str) -> bool:
        display = display.replace(os.sep, "/")
        return any(
            display.startswith(prefix) or f"/{prefix}" in display
            for prefix in HOT_REGION_FILES
        )

    @staticmethod
    def regions(raw_lines: list[str]):
        """Yields (line_idx, region_name) for every line strictly inside
        a FTA_HOT_BEGIN/FTA_HOT_END pair. Unterminated regions extend to
        end-of-file (better to over-check than silently stop)."""
        current: str | None = None
        for i, line in enumerate(raw_lines):
            begin = HOT_BEGIN.search(line)
            end = HOT_END.search(line)
            if begin is not None:
                current = begin.group(1)
                continue
            if end is not None:
                current = None
                continue
            if current is not None:
                yield i, current

    def check(self, scan, tables, out):
        if not self.applies_to(scan.display):
            return
        # Containers that reserve anywhere in this file are exempt from
        # the push_back check: growth is amortized by an explicit sizing
        # call the reader can find.
        reserved = set(
            re.findall(r"\b([A-Za-z_]\w*)\s*(?:\.|->)\s*reserve\s*\(",
                       "\n".join(scan.scrubbed_lines))
        )
        for i, region in self.regions(scan.raw_lines):
            line = scan.scrubbed_lines[i] if i < len(scan.scrubbed_lines) else ""
            m = HOT_ALLOC.search(line)
            if m:
                self.report(
                    scan, i,
                    f"'{m.group(0).strip()}' allocates inside steady-state "
                    f"hot region '{region}'; hoist the allocation out of "
                    "the region or reuse a pre-sized buffer "
                    "(// NOLINT(fta-alloc) with a reason if amortized by "
                    "design)",
                    out,
                )
                continue
            for am in HOT_APPEND.finditer(line):
                recv = lhs_terminal(am.group(1))
                if recv in reserved:
                    continue
                self.report(
                    scan, i,
                    f"'{recv}.{am.group(2)}' in hot region '{region}' may "
                    f"reallocate — no '{recv}.reserve(' anywhere in this "
                    "file; size the container up front or reuse a "
                    "caller-owned buffer (// NOLINT(fta-alloc) with a "
                    "reason if amortized by design)",
                    out,
                )


RULES: list[Rule] = [
    BannedTokenRule(),
    UnorderedIterationRule(),
    ParallelFloatReduceRule(),
    SortedMetricRebuildRule(),
    RawSimdIntrinsicsRule(),
    WallClockReadRule(),
    RawMutexRule(),
    HotPathAllocationRule(),
]


def load_allowlist(path: str):
    entries = []
    if not os.path.exists(path):
        return entries
    with open(path, "r", encoding="utf-8") as f:
        for lineno, raw in enumerate(f, 1):
            stripped = raw.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split(":", 2)
            if len(parts) != 3:
                print(
                    f"fta_lint: malformed allowlist entry at "
                    f"{path}:{lineno}: {stripped!r}",
                    file=sys.stderr,
                )
                sys.exit(2)
            entries.append(
                {"rule": parts[0], "path": parts[1], "needle": parts[2],
                 "line": lineno, "used": False}
            )
    return entries


def apply_allowlist(violations, entries, raw_lines_by_path):
    kept = []
    for v in violations:
        suppressed = False
        for e in entries:
            if e["rule"] != v.rule:
                continue
            if not v.path.endswith(e["path"]):
                continue
            line_text = raw_lines_by_path[v.path][v.line - 1]
            if e["needle"] in line_text:
                e["used"] = True
                suppressed = True
                break
        if not suppressed:
            kept.append(v)
    return kept


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--root", default=".",
                        help="repository root; scan dirs are relative to it")
    parser.add_argument("--allowlist", default=None,
                        help="allowlist file (default <root>/tools/fta_lint/allowlist.txt)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="diagnostic format (json: one fta-lint-v1 "
                             "object on stdout, for CI artifacts)")
    parser.add_argument("dirs", nargs="*", default=None,
                        help="directories under root to scan (default: src)")
    args = parser.parse_args(argv)

    root = os.path.abspath(args.root)
    scan_dirs = args.dirs or ["src"]
    allowlist_path = args.allowlist or os.path.join(
        root, "tools", "fta_lint", "allowlist.txt"
    )

    files = []
    for d in scan_dirs:
        base = os.path.join(root, d)
        if not os.path.isdir(base):
            print(f"fta_lint: no such directory: {base}", file=sys.stderr)
            return 2
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTENSIONS):
                    full = os.path.join(dirpath, name)
                    files.append((full, os.path.relpath(full, root)))
    if not files:
        print("fta_lint: nothing to scan", file=sys.stderr)
        return 2

    scans = [FileScan(full, rel) for full, rel in sorted(files)]
    tables = TypeTables()
    for scan in scans:
        tables.collect(scan.scrubbed_lines)

    violations: list[Violation] = []
    for scan in scans:
        for rule in RULES:
            rule.check(scan, tables, violations)

    entries = load_allowlist(allowlist_path)
    raw_by_path = {scan.display: scan.raw_lines for scan in scans}
    violations = apply_allowlist(violations, entries, raw_by_path)

    for e in entries:
        if not e["used"]:
            violations.append(
                Violation(
                    os.path.relpath(allowlist_path, root),
                    e["line"],
                    "stale-allowlist",
                    f"allowlist entry '{e['rule']}:{e['path']}:{e['needle']}' "
                    "matched nothing; delete it",
                )
            )

    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    if args.format == "json":
        print(json.dumps(
            {
                "schema": "fta-lint-v1",
                "violations": [v.to_json() for v in violations],
                "files_scanned": len(scans),
            },
            indent=2,
        ))
        return 1 if violations else 0
    for v in violations:
        print(v.render())
    if violations:
        print(
            f"fta_lint: {len(violations)} violation(s). See "
            "tools/fta_lint/fta_lint.py for the rules and escape policy.",
            file=sys.stderr,
        )
        return 1
    print(f"fta_lint: {len(scans)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
