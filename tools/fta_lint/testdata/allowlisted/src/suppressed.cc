// Fixture: a genuine violation whose suppression lives in the allowlist
// file rather than an inline NOLINT.
#include <unordered_map>
#include <vector>

std::vector<int> ApprovedLeak(const std::unordered_map<int, int>& m) {
  std::vector<int> out;
  for (const auto& [k, v] : m) {
    out.push_back(k + v);
  }
  return out;
}
