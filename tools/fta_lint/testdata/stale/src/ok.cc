// Fixture: clean file; the sibling allowlist entry matches nothing and
// must itself be reported as stale.
int Answer() { return 42; }
