// Fixture: unordered-iteration rule — one leak, plus sanctioned shapes.
#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using IdSet = std::unordered_set<int>;

struct Shard {
  std::unordered_map<int, double> sums;
};

// VIOLATION: bucket order reaches `out` and is never normalized.
std::vector<int> LeakBucketOrder(const std::unordered_map<int, int>& m) {
  std::vector<int> out;
  for (const auto& [k, v] : m) {
    out.push_back(k + v);
  }
  return out;
}

// Clean: the fed container is sorted right after the loop.
std::vector<int> SortedAfter(const std::unordered_map<int, int>& m) {
  std::vector<int> out;
  for (const auto& [k, v] : m) {
    out.push_back(k + v);
  }
  std::sort(out.begin(), out.end());
  return out;
}

// Clean: explicitly marked order-invariant (max is commutative).
int MarkedInvariant(const IdSet& ids) {
  int best = 0;
  // NOLINTNEXTLINE(fta-det)
  for (int id : ids) {
    best += id > best ? id - best : 0;
  }
  return best;
}

// VIOLATION through an alias-typed struct member.
std::vector<double> LeakThroughMember(const Shard& shard) {
  std::vector<double> out;
  for (const auto& [k, v] : shard.sums) {
    out.push_back(v);
  }
  return out;
}

// Clean: reading without feeding any container.
double SumLookups(const std::unordered_map<int, double>& m, int key) {
  const auto it = m.find(key);
  return it == m.end() ? 0.0 : it->second;
}
