// Fixture: raw SIMD intrinsics outside the sanctioned kernel TUs.
#include <immintrin.h>

namespace fta {

double SumLanes(const double* v) {
  const __m256d x = _mm256_loadu_pd(v);
  double lanes[4];
  _mm256_storeu_pd(lanes, x);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

double Suppressed(const double* v) {
  // NOLINTNEXTLINE(fta-det)
  const __m256d x = _mm256_loadu_pd(v);
  double lanes[4];
  _mm256_storeu_pd(lanes, x);  // NOLINT(fta-det)
  return lanes[0];
}

// Near misses: an intrinsic named in a comment (_mm256_add_pd) and in a
// string literal are scrubbed before matching; the __m256d type name alone
// carries no _mm<digits>_ run.
const char* kDoc = "_mm256_add_pd";

}  // namespace fta
