// Fixture: parallel-float-reduce rule — an unapproved float accumulation
// inside a ThreadPool fan-out, next to sanctioned integer and marked ones.
#include <cstdint>
#include <vector>

struct Totals {
  double wall_ms = 0.0;
  uint64_t items = 0;
};

struct ThreadPool {
  void RunBatch(size_t n, void (*fn)(size_t));
  template <typename F>
  void RunBatch(size_t n, F&& fn);
};

void Accumulate(ThreadPool& pool, const std::vector<double>& xs, Totals& t) {
  double total = 0.0;
  pool.RunBatch(xs.size(), [&](size_t i) {
    total += xs[i];      // VIOLATION: scheduling-ordered float sum
    t.wall_ms += xs[i];  // VIOLATION: float member accumulation
    t.items += 1;        // clean: integer accumulator is order-invariant
  });
  // Clean: float += outside any fan-out lambda.
  total += 1.0;
  (void)total;
}

void MarkedReduce(ThreadPool& pool, const std::vector<double>& xs, Totals& t) {
  pool.RunBatch(xs.size(), [&](size_t i) {
    t.wall_ms += xs[i];  // NOLINT(fta-det) — fixture-approved merge helper
  });
}
