// Fixture for sorted-metric-rebuild: copy-and-sort metric wrappers
// called from game code, where the payoff ledger already holds the
// sorted array those wrappers would rebuild.
#include <vector>

// Wrapper declarations are not calls: skipped by the `double ` prefix.
double MeanAbsolutePairwiseDifference(const std::vector<double>& values);
double Gini(const std::vector<double>& values);
double GiniSorted(const std::vector<double>& sorted);

double RoundPdif(const std::vector<double>& payoffs) {
  return MeanAbsolutePairwiseDifference(payoffs);  // fires
}

double RoundGini(const std::vector<double>& payoffs) {
  const double g = Gini(payoffs);  // fires
  return g;
}

double SortedOverloadIsTheFix(const std::vector<double>& sorted) {
  return GiniSorted(sorted);  // *Sorted overload: clean
}

double SanctionedRebuild(const std::vector<double>& payoffs) {
  // The one sanctioned copy-and-sort site in this fixture:
  // NOLINTNEXTLINE(fta-det)
  return Gini(payoffs);
}
