// hot-path-allocation fixture: allocations inside FTA_HOT_BEGIN/END
// regions of the game engine's hot files are reported; reserve-backed
// growth, NOLINT(fta-alloc) lines, and code outside regions stay clean.
#include <memory>
#include <vector>

namespace fta {

struct Engine {
  std::vector<double> scratch;
  std::vector<int> winners;
};

inline void Setup(Engine& e) {
  e.scratch.reserve(64);     // sanctioned sizing point
  e.scratch.push_back(0.0);  // outside any region: clean
}

// FTA_HOT_BEGIN(scan)
inline void Scan(Engine& e, std::vector<double>& out) {
  auto tmp = std::make_unique<double[]>(8);
  double* leak = new double[4];
  e.winners.push_back(1);
  e.scratch.push_back(tmp[0] + leak[0]);
  e.winners.emplace_back(2);  // NOLINT(fta-det) — wrong tag, still fires
  // Caller-owned buffer, reused across rounds.
  out.push_back(e.scratch.back());  // NOLINT(fta-alloc)
  delete[] leak;
}
// FTA_HOT_END(scan)

inline void Teardown(Engine& e) { e.winners.push_back(0); }

}  // namespace fta
