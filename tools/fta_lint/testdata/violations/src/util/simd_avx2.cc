// Fixture: a sanctioned kernel TU (path suffix src/util/simd_avx2.cc) —
// intrinsics and the intrinsic header are allowed here, no diagnostics.
#include <immintrin.h>

namespace fta {

__m256d DoubleLanes(__m256d x) { return _mm256_add_pd(x, x); }

}  // namespace fta
