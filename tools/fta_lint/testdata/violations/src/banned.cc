// Fixture: every banned token fires exactly once; near-misses stay clean.
#include <cstdlib>
#include <ctime>

int SeedFromClock() {
  return static_cast<int>(time(nullptr));  // banned: wall-clock seeding
}

int SeedFromClockNull() { return static_cast<int>(time(NULL)); }

int LibcRand() { return rand(); }

unsigned HardwareEntropy() {
  std::random_device rd;
  return rd();
}

void NapBriefly() {
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

// Near-misses that must NOT be reported:
// a comment mentioning time(nullptr) and rand() is fine.
void Strand() {
  srand(42);            // srand is a different token than rand(
  int operand(3);       // identifier ending in "rand" + parenthesis
  (void)operand;
  const char* s = "call time(nullptr) and rand() please";  // string literal
  (void)s;
}
