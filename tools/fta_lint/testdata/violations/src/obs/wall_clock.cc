// Fixture: direct wall-clock reads inside the replay-deterministic
// obs/stream layers. Every read below must be flagged unless NOLINT'd.
#include <chrono>
#include <ctime>
#include <sys/time.h>

namespace fta {

double TickLatencySeconds() {
  const auto begin = std::chrono::steady_clock::now();
  (void)begin;
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  struct timeval tv;
  gettimeofday(&tv, nullptr);
  struct tm parts;
  time_t stamp = ts.tv_sec;
  gmtime_r(&stamp, &parts);
  return static_cast<double>(ts.tv_nsec) * 1e-9;
}

double SuppressedProbes() {
  // A "std::chrono::system_clock::now()" inside a string or comment is
  // scrubbed before matching and must stay silent.
  const char* label = "std::chrono::system_clock::now()";
  (void)label;
  // NOLINTNEXTLINE(fta-det): fixture-sanctioned replay-exempt probe.
  const auto wall = std::chrono::system_clock::now();
  (void)wall;
  const auto hi = std::chrono::high_resolution_clock::now();  // NOLINT(fta-det)
  (void)hi;
  return 0.0;
}

}  // namespace fta
