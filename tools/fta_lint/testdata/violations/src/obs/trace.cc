// Fixture: the sanctioned trace clock. This path (src/obs/trace.cc) is
// the one place in the obs/stream layers allowed to read wall time, so
// the read below must produce no wall-clock-read diagnostic.
#include <chrono>

namespace fta {

long TraceEpochNanos() {
  const auto now = std::chrono::steady_clock::now();
  return now.time_since_epoch().count();
}

}  // namespace fta
