// raw-mutex fixture: std locking primitives outside src/util/mutex.h are
// reported; names in comments (std::mutex) and strings stay clean.
#include <mutex>
#include <shared_mutex>

namespace fta {

struct Registry {
  std::mutex mu;
  std::condition_variable cv;
  int guarded = 0;
};

inline void Touch(Registry& r) {
  std::unique_lock lock(r.mu);
  ++r.guarded;
  r.cv.notify_one();
}

// NOLINTNEXTLINE(fta-det) — migration shim, tracked in DESIGN.md §13.
inline std::mutex& Sanctioned();

inline const char* Hint() { return "use fta::Mutex, not std::mutex"; }

}  // namespace fta
