// Fixture: a file with no determinism hazards at all.
#include <map>
#include <vector>

std::vector<int> OrderedIteration(const std::map<int, int>& m) {
  std::vector<int> out;
  for (const auto& [k, v] : m) {  // std::map iterates in key order
    out.push_back(k + v);
  }
  return out;
}
