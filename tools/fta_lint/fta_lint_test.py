#!/usr/bin/env python3
"""Fixture tests for fta_lint: every rule fires with the exact diagnostic,
escapes (NOLINT, allowlist) suppress, and stale allowlist entries fail."""

import io
import os
import sys
import unittest
from contextlib import redirect_stderr, redirect_stdout

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import fta_lint  # noqa: E402

TESTDATA = os.path.join(os.path.dirname(os.path.abspath(__file__)), "testdata")


def run_lint(root, extra_args=None):
    argv = ["--root", os.path.join(TESTDATA, root)] + (extra_args or []) + ["src"]
    out, err = io.StringIO(), io.StringIO()
    with redirect_stdout(out), redirect_stderr(err):
        code = fta_lint.main(argv)
    return code, out.getvalue().splitlines(), err.getvalue()


class ViolationFixtures(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.code, cls.lines, cls.err = run_lint("violations")

    def test_exit_code_signals_violations(self):
        self.assertEqual(self.code, 1)

    def test_exact_diagnostics(self):
        expected = [
            "src/banned.cc:6: [banned-token] 'time(nullptr)' — wall-clock "
            "seeding breaks reproducibility; thread timestamps in explicitly",
            "src/banned.cc:9: [banned-token] 'time(NULL)' — wall-clock "
            "seeding breaks reproducibility; thread timestamps in explicitly",
            "src/banned.cc:11: [banned-token] 'rand(' — libc rand() is "
            "nondeterministic across runs; use fta::Rng",
            "src/banned.cc:14: [banned-token] 'std::random_device' — "
            "std::random_device is nondeterministic; seed fta::Rng explicitly",
            "src/banned.cc:19: [banned-token] 'this_thread::sleep' — sleeps "
            "encode scheduling assumptions; use condition variables",
            "src/game/best_response_hot.cc:21: [hot-path-allocation] "
            "'std::make_unique' allocates inside steady-state hot region "
            "'scan'; hoist the allocation out of the region or reuse a "
            "pre-sized buffer (// NOLINT(fta-alloc) with a reason if "
            "amortized by design)",
            "src/game/best_response_hot.cc:22: [hot-path-allocation] "
            "'new' allocates inside steady-state hot region "
            "'scan'; hoist the allocation out of the region or reuse a "
            "pre-sized buffer (// NOLINT(fta-alloc) with a reason if "
            "amortized by design)",
            "src/game/best_response_hot.cc:23: [hot-path-allocation] "
            "'winners.push_back' in hot region 'scan' may reallocate — no "
            "'winners.reserve(' anywhere in this file; size the container "
            "up front or reuse a caller-owned buffer (// NOLINT(fta-alloc) "
            "with a reason if amortized by design)",
            "src/game/best_response_hot.cc:25: [hot-path-allocation] "
            "'winners.emplace_back' in hot region 'scan' may reallocate — no "
            "'winners.reserve(' anywhere in this file; size the container "
            "up front or reuse a caller-owned buffer (// NOLINT(fta-alloc) "
            "with a reason if amortized by design)",
            "src/game/metric_rebuild.cc:12: [sorted-metric-rebuild] "
            "'MeanAbsolutePairwiseDifference(' copies and re-sorts payoffs "
            "the engine's ledger already keeps sorted; read "
            "PayoffLedger::PayoffDifference()/Gini() or pass a sorted view "
            "to a *Sorted overload (DESIGN.md §9)",
            "src/game/metric_rebuild.cc:16: [sorted-metric-rebuild] "
            "'Gini(' copies and re-sorts payoffs "
            "the engine's ledger already keeps sorted; read "
            "PayoffLedger::PayoffDifference()/Gini() or pass a sorted view "
            "to a *Sorted overload (DESIGN.md §9)",
            "src/obs/wall_clock.cc:10: [wall-clock-read] "
            "'std::chrono::steady_clock::now' — direct clock read in the "
            "replay-deterministic obs/stream layers; take durations as "
            "caller-measured values (util/stopwatch.h at the call site) "
            "and advance windows on caller-driven ticks; the only "
            "sanctioned clock is src/obs/trace.cc",
            "src/obs/wall_clock.cc:13: [wall-clock-read] "
            "'clock_gettime(' — direct clock read in the "
            "replay-deterministic obs/stream layers; take durations as "
            "caller-measured values (util/stopwatch.h at the call site) "
            "and advance windows on caller-driven ticks; the only "
            "sanctioned clock is src/obs/trace.cc",
            "src/obs/wall_clock.cc:15: [wall-clock-read] "
            "'gettimeofday(' — direct clock read in the "
            "replay-deterministic obs/stream layers; take durations as "
            "caller-measured values (util/stopwatch.h at the call site) "
            "and advance windows on caller-driven ticks; the only "
            "sanctioned clock is src/obs/trace.cc",
            "src/obs/wall_clock.cc:18: [wall-clock-read] "
            "'gmtime_r(' — direct clock read in the "
            "replay-deterministic obs/stream layers; take durations as "
            "caller-measured values (util/stopwatch.h at the call site) "
            "and advance windows on caller-driven ticks; the only "
            "sanctioned clock is src/obs/trace.cc",
            "src/parallel_reduce.cc:20: [parallel-float-reduce] float "
            "accumulation 'total +=' inside a ThreadPool fan-out lambda; "
            "scheduling order would change the sum — fold per-shard results "
            "in a fixed order instead",
            "src/parallel_reduce.cc:21: [parallel-float-reduce] float "
            "accumulation 't.wall_ms +=' inside a ThreadPool fan-out lambda; "
            "scheduling order would change the sum — fold per-shard results "
            "in a fixed order instead",
            "src/raw_mutex.cc:3: [raw-mutex] '#include <mutex>' — raw "
            "standard-library locking outside src/util/mutex.h; use "
            "fta::Mutex / fta::MutexLock / fta::CondVar (util/mutex.h) so "
            "Clang thread-safety analysis can check the lock against "
            "FTA_GUARDED_BY state (DESIGN.md §13)",
            "src/raw_mutex.cc:4: [raw-mutex] '#include <shared_mutex>' — raw "
            "standard-library locking outside src/util/mutex.h; use "
            "fta::Mutex / fta::MutexLock / fta::CondVar (util/mutex.h) so "
            "Clang thread-safety analysis can check the lock against "
            "FTA_GUARDED_BY state (DESIGN.md §13)",
            "src/raw_mutex.cc:9: [raw-mutex] 'std::mutex' — raw "
            "standard-library locking outside src/util/mutex.h; use "
            "fta::Mutex / fta::MutexLock / fta::CondVar (util/mutex.h) so "
            "Clang thread-safety analysis can check the lock against "
            "FTA_GUARDED_BY state (DESIGN.md §13)",
            "src/raw_mutex.cc:10: [raw-mutex] 'std::condition_variable' — "
            "raw standard-library locking outside src/util/mutex.h; use "
            "fta::Mutex / fta::MutexLock / fta::CondVar (util/mutex.h) so "
            "Clang thread-safety analysis can check the lock against "
            "FTA_GUARDED_BY state (DESIGN.md §13)",
            "src/raw_mutex.cc:15: [raw-mutex] 'std::unique_lock' — raw "
            "standard-library locking outside src/util/mutex.h; use "
            "fta::Mutex / fta::MutexLock / fta::CondVar (util/mutex.h) so "
            "Clang thread-safety analysis can check the lock against "
            "FTA_GUARDED_BY state (DESIGN.md §13)",
            "src/simd_leak.cc:2: [raw-simd-intrinsics] "
            "'#include <immintrin.h>' outside a sanctioned kernel TU; raw "
            "SIMD belongs in src/util/simd_avx2.cc / "
            "src/game/iau_kernels_avx2.cc behind the util/simd.h dispatch "
            "layer (DESIGN.md §11)",
            "src/simd_leak.cc:7: [raw-simd-intrinsics] '_mm256_loadu_pd' "
            "outside a sanctioned kernel TU; raw SIMD belongs in "
            "src/util/simd_avx2.cc / src/game/iau_kernels_avx2.cc behind "
            "the util/simd.h dispatch layer (DESIGN.md §11)",
            "src/simd_leak.cc:9: [raw-simd-intrinsics] '_mm256_storeu_pd' "
            "outside a sanctioned kernel TU; raw SIMD belongs in "
            "src/util/simd_avx2.cc / src/game/iau_kernels_avx2.cc behind "
            "the util/simd.h dispatch layer (DESIGN.md §11)",
            "src/unordered_leak.cc:16: [unordered-iteration] range-for over "
            "an unordered container feeds a result container without a "
            "subsequent sort or an order-invariant fold; bucket order will "
            "leak into the output",
            "src/unordered_leak.cc:45: [unordered-iteration] range-for over "
            "an unordered container feeds a result container without a "
            "subsequent sort or an order-invariant fold; bucket order will "
            "leak into the output",
        ]
        self.assertEqual(self.lines, expected)

    def test_near_misses_stay_clean(self):
        text = "\n".join(self.lines)
        # srand(, operand(, string literals, comments: not reported.
        for line in (24, 25, 27):
            self.assertNotIn(f"src/banned.cc:{line}:", text)
        # Integer accumulator, outside-lambda +=, NOLINT'd reduce: clean.
        for line in (22, 25, 32):
            self.assertNotIn(f"src/parallel_reduce.cc:{line}:", text)
        # Sorted-after loop and NOLINTNEXTLINE'd loop: clean.
        for line in (25, 36):
            self.assertNotIn(f"src/unordered_leak.cc:{line}:", text)
        # Wrapper declarations, the *Sorted overload, and the
        # NOLINTNEXTLINE'd sanctioned rebuild: clean.
        for line in (7, 8, 9, 21, 27):
            self.assertNotIn(f"src/game/metric_rebuild.cc:{line}:", text)
        # NOLINT'd intrinsics, commented/string-literal intrinsic names:
        # clean; the sanctioned kernel-TU path produces no diagnostics at
        # all.
        for line in (15, 17, 24):
            self.assertNotIn(f"src/simd_leak.cc:{line}:", text)
        self.assertNotIn("src/util/simd_avx2.cc:", text)
        # Clock names in strings/comments and NOLINT'd reads: clean; the
        # sanctioned trace clock produces no diagnostics at all.
        for line in (25, 28, 30):
            self.assertNotIn(f"src/obs/wall_clock.cc:{line}:", text)
        self.assertNotIn("src/obs/trace.cc:", text)
        # Comment/string mentions of std::mutex and the NOLINTNEXTLINE'd
        # migration shim: clean.
        for line in (2, 21, 23):
            self.assertNotIn(f"src/raw_mutex.cc:{line}:", text)
        # Outside-region growth, reserve-backed push_back inside the
        # region, and the NOLINT(fta-alloc) escape: clean.
        for line in (16, 24, 27):
            self.assertNotIn(f"src/game/best_response_hot.cc:{line}:", text)


class JsonFormat(unittest.TestCase):
    def test_json_matches_text_findings(self):
        import json as json_mod
        code, lines, _ = run_lint("violations", ["--format", "json"])
        self.assertEqual(code, 1)
        doc = json_mod.loads("\n".join(lines))
        self.assertEqual(doc["schema"], "fta-lint-v1")
        self.assertGreater(doc["files_scanned"], 0)
        text_code, text_lines, _ = run_lint("violations")
        self.assertEqual(len(doc["violations"]), len(text_lines))
        for v, rendered in zip(doc["violations"], text_lines):
            self.assertEqual(
                f"{v['file']}:{v['line']}: [{v['rule']}] {v['message']}",
                rendered)
        del text_code

    def test_json_clean_tree_is_empty_and_exit_zero(self):
        import json as json_mod
        code, lines, _ = run_lint("clean", ["--format", "json"])
        self.assertEqual(code, 0)
        doc = json_mod.loads("\n".join(lines))
        self.assertEqual(doc["violations"], [])
        self.assertEqual(doc["files_scanned"], 1)


class CleanFixture(unittest.TestCase):
    def test_clean_tree_passes(self):
        code, lines, _ = run_lint("clean")
        self.assertEqual(code, 0)
        self.assertEqual(lines, ["fta_lint: 1 files clean"])


class AllowlistFixtures(unittest.TestCase):
    def test_allowlist_suppresses_matching_violation(self):
        allow = os.path.join(TESTDATA, "allowlisted", "allow.txt")
        code, lines, _ = run_lint("allowlisted", ["--allowlist", allow])
        self.assertEqual(code, 0, msg=lines)

    def test_without_allowlist_the_violation_fires(self):
        code, lines, _ = run_lint("allowlisted")
        self.assertEqual(code, 1)
        self.assertTrue(
            any("src/suppressed.cc:8: [unordered-iteration]" in l
                for l in lines),
            msg=lines)

    def test_stale_entry_fails_the_lint(self):
        allow = os.path.join(TESTDATA, "stale", "allow.txt")
        code, lines, _ = run_lint("stale", ["--allowlist", allow])
        self.assertEqual(code, 1)
        self.assertTrue(
            any("[stale-allowlist]" in l and "banned-token:src/ok.cc:rand("
                in l for l in lines),
            msg=lines)


class RepoTree(unittest.TestCase):
    def test_repo_src_is_clean(self):
        repo_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        out, err = io.StringIO(), io.StringIO()
        with redirect_stdout(out), redirect_stderr(err):
            code = fta_lint.main(["--root", repo_root, "src"])
        self.assertEqual(code, 0, msg=out.getvalue())


if __name__ == "__main__":
    unittest.main()
