#!/usr/bin/env python3
"""bench_track — the bench-trajectory regression tracker.

Folds the repo's BENCH_*.json gate outputs (each stamped with git SHA,
CPU model, build flags, and date by bench/common.h's BenchMeta) into an
append-only history file, BENCH_history.jsonl, one JSON object per line:

    {"schema": "fta-bench-history-v1", "sha": "...", "date": "...",
     "cpu": "...", "threads": N, "build": "release",
     "benches": {"obs": {...full BENCH_obs.json...}, "game": {...}, ...}}

Subcommands:

    collect --bench-dir DIR --history FILE
        Fold every BENCH_*.json under DIR into one history entry and
        append it (an entry with the same SHA as the current last line is
        replaced, so re-runs do not duplicate).

    report --history FILE [--window N]
        Print the tracked metrics' trajectories and deltas vs the
        previous entry.

    check --history FILE [--bench-dir DIR] [--threshold F] [--window N]
          [--report-only]
        Compare the current BENCH_*.json values (or, without --bench-dir,
        the newest history entry) against the median of up to N previous
        history entries and fail on regressions beyond the threshold.

Exit codes: 0 clean, 1 regression detected (suppressed by --report-only),
2 malformed history or bench files. Dependency-free by design, like
tools/fta_lint: standard library only.
"""

import argparse
import glob
import json
import os
import statistics
import sys

SCHEMA = "fta-bench-history-v1"

# Tracked metrics: (bench stem, dotted path, direction). Direction says
# which way is better; a change beyond the threshold in the *worse*
# direction is a regression. Benches absent from a run are skipped, so the
# tracker keeps working as gates come and go.
TRACKED = [
    ("obs", "disabled_span_ns", "lower"),
    ("obs", "overhead_fraction", "lower"),
    ("obs", "stream_telemetry.overhead_fraction", "lower"),
    ("obs", "stream_telemetry.ontick_ns", "lower"),
    ("game", "ledger.ns_per_evaluate", "lower"),
    ("game", "speedup", "higher"),
    ("simd", "speedup", "higher"),
    ("stream", "warm_cold_ratio", "lower"),
    ("serve", "serve8.throughput_assignments_per_s", "higher"),
    ("serve", "serve8.p99_latency_ms", "lower"),
]


def fail(message):
    print("bench_track: error: %s" % message, file=sys.stderr)
    return 2


def lookup(obj, dotted):
    """Resolves a dotted path into nested dicts; None when absent."""
    node = obj
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node if isinstance(node, (int, float)) else None


def load_benches(bench_dir):
    """{stem: parsed json} for every BENCH_*.json in bench_dir."""
    benches = {}
    for path in sorted(glob.glob(os.path.join(bench_dir, "BENCH_*.json"))):
        stem = os.path.basename(path)[len("BENCH_"):-len(".json")]
        if stem == "history":
            continue
        with open(path, "r", encoding="utf-8") as f:
            try:
                benches[stem] = json.load(f)
            except json.JSONDecodeError as e:
                raise ValueError("%s: %s" % (path, e))
    return benches


def build_entry(benches):
    """One history line from the collected bench documents. Provenance
    comes from the first bench carrying a BenchMeta stamp."""
    meta = {}
    for stem in sorted(benches):
        if isinstance(benches[stem].get("meta"), dict):
            meta = benches[stem]["meta"]
            break
    return {
        "schema": SCHEMA,
        "sha": meta.get("git_sha", "unknown"),
        "date": meta.get("date", "unknown"),
        "cpu": meta.get("cpu", "unknown"),
        "threads": meta.get("threads", 0),
        "build": meta.get("build", "unknown"),
        "benches": benches,
    }


def load_history(path):
    """Parses the history file; raises ValueError on any malformed or
    wrong-schema line (a corrupt trajectory must fail loudly, not skew
    the baseline silently)."""
    entries = []
    if not os.path.exists(path):
        return entries
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as e:
                raise ValueError("%s:%d: %s" % (path, lineno, e))
            if entry.get("schema") != SCHEMA:
                raise ValueError(
                    "%s:%d: schema %r, want %r"
                    % (path, lineno, entry.get("schema"), SCHEMA))
            if not isinstance(entry.get("benches"), dict):
                raise ValueError("%s:%d: missing benches object"
                                 % (path, lineno))
            entries.append(entry)
    return entries


def write_history(path, entries):
    with open(path, "w", encoding="utf-8") as f:
        for entry in entries:
            f.write(json.dumps(entry, sort_keys=True) + "\n")


def cmd_collect(args):
    try:
        benches = load_benches(args.bench_dir)
        entries = load_history(args.history)
    except ValueError as e:
        return fail(str(e))
    if not benches:
        return fail("no BENCH_*.json files under %s" % args.bench_dir)
    entry = build_entry(benches)
    action = "appended"
    if entries and entries[-1]["sha"] == entry["sha"] != "unknown":
        entries[-1] = entry
        action = "replaced"
    else:
        entries.append(entry)
    write_history(args.history, entries)
    print("bench_track: %s entry sha=%s date=%s benches=[%s] -> %s (%d entries)"
          % (action, entry["sha"], entry["date"],
             " ".join(sorted(benches)), args.history, len(entries)))
    return 0


def metric_series(entries, bench, path):
    """[(sha, value)] over the entries holding this metric."""
    series = []
    for entry in entries:
        value = lookup(entry["benches"].get(bench, {}), path)
        if value is not None:
            series.append((entry["sha"], float(value)))
    return series


def cmd_report(args):
    try:
        entries = load_history(args.history)
    except ValueError as e:
        return fail(str(e))
    if not entries:
        print("bench_track: empty history %s" % args.history)
        return 0
    window = entries[-args.window:] if args.window > 0 else entries
    print("bench_track report: %d entries (showing %d), newest sha=%s"
          % (len(entries), len(window), entries[-1]["sha"]))
    for bench, path, direction in TRACKED:
        series = metric_series(window, bench, path)
        if not series:
            continue
        sha, value = series[-1]
        delta = ""
        if len(series) > 1:
            prev = series[-2][1]
            if prev != 0:
                pct = (value - prev) / prev * 100.0
                delta = " (%+.1f%% vs prev)" % pct
        trail = " ".join("%.6g" % v for _, v in series)
        print("  %s.%s [%s-is-better]: %.6g%s | trail: %s"
              % (bench, path, direction, value, delta, trail))
    return 0


def cmd_check(args):
    try:
        entries = load_history(args.history)
        if args.bench_dir:
            benches = load_benches(args.bench_dir)
            if not benches:
                return fail("no BENCH_*.json files under %s" % args.bench_dir)
            candidate = build_entry(benches)
            baseline_entries = entries
        else:
            if not entries:
                return fail("empty history %s and no --bench-dir"
                            % args.history)
            candidate = entries[-1]
            baseline_entries = entries[:-1]
    except ValueError as e:
        return fail(str(e))
    if not baseline_entries:
        print("bench_track check: no baseline entries yet; nothing to "
              "compare (sha=%s)" % candidate["sha"])
        return 0

    regressions = []
    compared = 0
    for bench, path, direction in TRACKED:
        value = lookup(candidate["benches"].get(bench, {}), path)
        if value is None:
            continue
        history_values = [
            v for _, v in
            metric_series(baseline_entries[-args.window:], bench, path)
        ]
        if not history_values:
            continue
        baseline = statistics.median(history_values)
        compared += 1
        if baseline == 0:
            continue
        change = (float(value) - baseline) / abs(baseline)
        worse = change > args.threshold if direction == "lower" \
            else change < -args.threshold
        marker = "REGRESSION" if worse else "ok"
        print("  %s.%s: %.6g vs median %.6g (%+.1f%%, %s-is-better) %s"
              % (bench, path, value, baseline, change * 100.0, direction,
                 marker))
        if worse:
            regressions.append((bench, path, value, baseline))

    print("bench_track check: sha=%s, %d metrics compared against up to %d "
          "previous entries, threshold %.0f%%: %d regression(s)"
          % (candidate["sha"], compared, args.window,
             args.threshold * 100.0, len(regressions)))
    if regressions and not args.report_only:
        return 1
    if regressions:
        print("bench_track check: report-only mode, not failing")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(prog="bench_track",
                                     description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("collect", help="fold BENCH_*.json into the history")
    p.add_argument("--bench-dir", default=".",
                   help="directory holding BENCH_*.json (default .)")
    p.add_argument("--history", default="BENCH_history.jsonl")

    p = sub.add_parser("report", help="print tracked-metric trajectories")
    p.add_argument("--history", default="BENCH_history.jsonl")
    p.add_argument("--window", type=int, default=10,
                   help="entries to show (0 = all)")

    p = sub.add_parser("check", help="flag regressions vs the history")
    p.add_argument("--history", default="BENCH_history.jsonl")
    p.add_argument("--bench-dir", default="",
                   help="compare these BENCH_*.json files; without it the "
                        "newest history entry is the candidate")
    p.add_argument("--threshold", type=float, default=0.15,
                   help="relative regression threshold (default 0.15)")
    p.add_argument("--window", type=int, default=5,
                   help="previous entries in the baseline median")
    p.add_argument("--report-only", action="store_true",
                   help="print regressions but exit 0")

    args = parser.parse_args(argv)
    if args.command == "collect":
        return cmd_collect(args)
    if args.command == "report":
        return cmd_report(args)
    return cmd_check(args)


if __name__ == "__main__":
    sys.exit(main())
