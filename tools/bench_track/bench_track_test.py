#!/usr/bin/env python3
"""Self-test for bench_track: history folding, replacement semantics,
regression detection (including an injected synthetic regression),
report-only mode, and malformed-history failure."""

import copy
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_track  # noqa: E402


def meta(sha):
    return {"git_sha": sha, "cpu": "test-cpu", "date": "2026-08-08",
            "compiler": "g++", "build": "release", "threads": 4}


def obs_bench(sha, overhead=0.002, stream_overhead=0.004):
    return {
        "bench": "obs_overhead", "meta": meta(sha),
        "disabled_span_ns": 2.0, "overhead_fraction": overhead,
        "stream_telemetry": {"overhead_fraction": stream_overhead,
                             "ontick_ns": 400.0, "digest_match": True},
        "pass": True,
    }


def game_bench(sha, ns_per_evaluate=200.0, speedup=6.0):
    return {
        "bench": "game_ledger", "meta": meta(sha),
        "ledger": {"ns_per_evaluate": ns_per_evaluate},
        "speedup": speedup, "pass": True,
    }


def serve_bench(sha, throughput=33000.0, p99=60.0):
    return {
        "bench": "serve", "meta": meta(sha),
        "serve8": {"throughput_assignments_per_s": throughput,
                   "p99_latency_ms": p99, "speedup_vs_sequential": 3.2},
        "digest_identity": True, "pass": True,
    }


class BenchTrackTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.dir = self.tmp.name
        self.history = os.path.join(self.dir, "BENCH_history.jsonl")

    def tearDown(self):
        self.tmp.cleanup()

    def write_benches(self, sha, **overrides):
        docs = {"obs": obs_bench(sha), "game": game_bench(sha),
                "serve": serve_bench(sha)}
        for stem, patch in overrides.items():
            docs[stem] = patch
        for stem, doc in docs.items():
            path = os.path.join(self.dir, "BENCH_%s.json" % stem)
            with open(path, "w", encoding="utf-8") as f:
                json.dump(doc, f)

    def collect(self, sha, **overrides):
        self.write_benches(sha, **overrides)
        return bench_track.main(
            ["collect", "--bench-dir", self.dir, "--history", self.history])

    def check(self, extra=()):
        return bench_track.main(
            ["check", "--history", self.history, "--bench-dir", self.dir]
            + list(extra))

    def test_collect_builds_consistent_history(self):
        self.assertEqual(self.collect("aaa111"), 0)
        self.assertEqual(self.collect("bbb222"), 0)
        entries = bench_track.load_history(self.history)
        self.assertEqual(len(entries), 2)
        self.assertEqual([e["sha"] for e in entries], ["aaa111", "bbb222"])
        for entry in entries:
            self.assertEqual(entry["schema"], bench_track.SCHEMA)
            self.assertEqual(entry["cpu"], "test-cpu")
            self.assertEqual(entry["build"], "release")
            self.assertEqual(sorted(entry["benches"]),
                             ["game", "obs", "serve"])
        # Every tracked obs/game/serve metric is resolvable in every entry.
        for bench, path, _ in bench_track.TRACKED:
            if bench in ("obs", "game", "serve"):
                for entry in entries:
                    self.assertIsNotNone(
                        bench_track.lookup(entry["benches"][bench], path),
                        "%s.%s" % (bench, path))

    def test_collect_replaces_same_sha(self):
        self.assertEqual(self.collect("aaa111"), 0)
        self.assertEqual(self.collect("aaa111"), 0)
        self.assertEqual(len(bench_track.load_history(self.history)), 1)

    def test_collect_unknown_sha_appends_never_replaces(self):
        # Outside a git checkout GetBenchMeta stamps "unknown"; two such
        # runs are distinct measurements, not a re-run of one commit, so
        # same-sha replacement must not collapse them.
        self.assertEqual(self.collect("unknown"), 0)
        self.assertEqual(self.collect("unknown"), 0)
        entries = bench_track.load_history(self.history)
        self.assertEqual([e["sha"] for e in entries], ["unknown", "unknown"])

    def test_build_entry_without_meta_degrades_to_unknown(self):
        entry = bench_track.build_entry({"obs": {"bench": "obs_overhead"}})
        self.assertEqual(entry["sha"], "unknown")
        self.assertEqual(entry["date"], "unknown")
        self.assertEqual(entry["cpu"], "unknown")
        self.assertEqual(entry["build"], "unknown")
        self.assertEqual(entry["threads"], 0)

    def test_check_clean_run_passes(self):
        for sha in ("s1", "s2", "s3"):
            self.assertEqual(self.collect(sha), 0)
        self.write_benches("s4")
        self.assertEqual(self.check(), 0)

    def test_check_flags_injected_regression(self):
        for sha in ("s1", "s2", "s3"):
            self.assertEqual(self.collect(sha), 0)
        # Synthetic regression: Evaluate gets 50% slower (lower-is-better
        # metric rises well beyond the 15% default threshold).
        self.write_benches(
            "s4", game=game_bench("s4", ns_per_evaluate=300.0))
        self.assertEqual(self.check(), 1)
        # Report-only mode surfaces it but exits 0 (the CI default).
        self.assertEqual(self.check(["--report-only"]), 0)

    def test_check_flags_higher_is_better_drop(self):
        for sha in ("s1", "s2", "s3"):
            self.assertEqual(self.collect(sha), 0)
        self.write_benches("s4", game=game_bench("s4", speedup=3.0))
        self.assertEqual(self.check(), 1)

    def test_check_flags_serve_throughput_drop(self):
        for sha in ("s1", "s2", "s3"):
            self.assertEqual(self.collect(sha), 0)
        # Throughput (higher-is-better) collapses by 40%.
        self.write_benches(
            "s4", serve=serve_bench("s4", throughput=20000.0))
        self.assertEqual(self.check(), 1)
        # p99 (lower-is-better) doubling is likewise a regression.
        self.write_benches("s4", serve=serve_bench("s4", p99=120.0))
        self.assertEqual(self.check(), 1)

    def test_check_within_threshold_passes(self):
        for sha in ("s1", "s2"):
            self.assertEqual(self.collect(sha), 0)
        self.write_benches(
            "s3", game=game_bench("s3", ns_per_evaluate=220.0))  # +10%
        self.assertEqual(self.check(), 0)

    def test_check_newest_history_entry_without_bench_dir(self):
        for sha in ("s1", "s2"):
            self.assertEqual(self.collect(sha), 0)
        self.assertEqual(self.collect(
            "s3", game=game_bench("s3", ns_per_evaluate=300.0)), 0)
        self.assertEqual(bench_track.main(
            ["check", "--history", self.history]), 1)

    def test_malformed_history_exits_2(self):
        with open(self.history, "w", encoding="utf-8") as f:
            f.write('{"schema": "fta-bench-history-v1"\n')  # truncated
        self.write_benches("s1")
        self.assertEqual(self.check(), 2)
        self.assertEqual(bench_track.main(
            ["report", "--history", self.history]), 2)

    def test_wrong_schema_exits_2(self):
        with open(self.history, "w", encoding="utf-8") as f:
            f.write(json.dumps({"schema": "v0", "benches": {}}) + "\n")
        self.write_benches("s1")
        self.assertEqual(self.check(), 2)

    def test_report_runs_on_real_shapes(self):
        for sha in ("s1", "s2"):
            self.assertEqual(self.collect(sha), 0)
        self.assertEqual(bench_track.main(
            ["report", "--history", self.history]), 0)

    def test_first_entry_has_no_baseline(self):
        self.write_benches("s1")
        self.assertEqual(self.check(), 0)

    def test_repo_history_is_consistent(self):
        """The committed BENCH_history.jsonl (when present) parses and
        passes a report-only check against the committed BENCH files."""
        repo = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
        history = os.path.join(repo, "BENCH_history.jsonl")
        if not os.path.exists(history):
            self.skipTest("no committed BENCH_history.jsonl")
        entries = bench_track.load_history(history)
        self.assertGreaterEqual(len(entries), 1)
        self.assertEqual(bench_track.main(
            ["check", "--history", history, "--report-only"]), 0)


if __name__ == "__main__":
    unittest.main()
