#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exp/run_report.h"
#include "exp/runner.h"
#include "game/fgt.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/sketch.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "util/logging.h"
#include "util/rng.h"
#include "vdps/catalog.h"

namespace fta {
namespace {

Instance RandomInstance(uint64_t seed, size_t num_dps, size_t num_workers,
                        double area = 10.0) {
  Rng rng(seed);
  std::vector<DeliveryPoint> dps;
  for (uint32_t d = 0; d < num_dps; ++d) {
    std::vector<SpatialTask> tasks;
    const size_t n = 1 + rng.Index(4);
    for (size_t t = 0; t < n; ++t) {
      tasks.push_back(SpatialTask{d, rng.Uniform(1.0, 4.0), 1.0});
    }
    dps.emplace_back(Point{rng.Uniform(0, area), rng.Uniform(0, area)},
                     std::move(tasks));
  }
  std::vector<Worker> workers;
  for (size_t w = 0; w < num_workers; ++w) {
    workers.push_back(
        Worker{{rng.Uniform(0, area), rng.Uniform(0, area)}, 3});
  }
  return Instance(Point{area / 2, area / 2}, std::move(dps),
                  std::move(workers), TravelModel(5.0));
}

// ------------------------------------------------------------------ JSON --

TEST(JsonTest, WriterEscapesAndRoundTrips) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("text");
  w.String("line1\nline2\t\"quoted\" \\slash");
  w.Key("count");
  w.UInt(18446744073709551615ull);
  w.Key("neg");
  w.Int(-42);
  w.Key("pi");
  w.Double(3.25);
  w.Key("flag");
  w.Bool(true);
  w.Key("nothing");
  w.Null();
  w.Key("list");
  w.BeginArray();
  w.Int(1);
  w.Int(2);
  w.EndArray();
  w.EndObject();

  StatusOr<obs::JsonValue> parsed = obs::ParseJson(w.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::JsonValue& v = *parsed;
  EXPECT_EQ(v.StringOr("text", ""), "line1\nline2\t\"quoted\" \\slash");
  EXPECT_DOUBLE_EQ(v.NumberOr("neg", 0), -42.0);
  EXPECT_DOUBLE_EQ(v.NumberOr("pi", 0), 3.25);
  EXPECT_TRUE(v.BoolOr("flag", false));
  ASSERT_NE(v.Find("list"), nullptr);
  EXPECT_EQ(v.Find("list")->array.size(), 2u);
}

TEST(JsonTest, ParserRejectsMalformed) {
  EXPECT_FALSE(obs::ParseJson("{\"a\": 1} trailing").ok());
  EXPECT_FALSE(obs::ParseJson("{\"a\": }").ok());
  EXPECT_FALSE(obs::ParseJson("[1, 2").ok());
  EXPECT_FALSE(obs::ParseJson("\"bad\\escape\"").ok());
}

// --------------------------------------------------------------- metrics --

TEST(MetricsTest, HistogramBucketBoundaries) {
  auto& h = obs::MetricsRegistry::Global().GetHistogram(
      "obs_test/boundaries", {1.0, 2.0, 4.0});
  h.Reset();
  // Bucket i counts value <= bounds[i] (first match); beyond the last
  // bound goes to the overflow bucket.
  h.Observe(0.5);  // bucket 0
  h.Observe(1.0);  // bucket 0: exactly on a bound lands in that bucket
  h.Observe(1.5);  // bucket 1
  h.Observe(2.0);  // bucket 1
  h.Observe(4.0);  // bucket 2
  h.Observe(5.0);  // overflow
  const std::vector<uint64_t> counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.TotalCount(), 6u);
  EXPECT_DOUBLE_EQ(h.Sum(), 14.0);
}

TEST(MetricsTest, ExponentialBoundsShape) {
  const std::vector<double> b = obs::ExponentialBounds(0.5, 2.0, 4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b[0], 0.5);
  EXPECT_DOUBLE_EQ(b[3], 4.0);
}

/// Runs a fixed integral workload split over `num_threads` threads and
/// returns the resulting registry snapshot. The workload is identical in
/// total regardless of the split, so every snapshot must be bit-identical.
obs::MetricsSnapshot RunShardedWorkload(size_t num_threads) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.Reset();
  auto& counter = reg.GetCounter("obs_test/work_items");
  auto& hist = reg.GetHistogram("obs_test/work_sizes",
                                obs::ExponentialBounds(1.0, 2.0, 6));
  constexpr size_t kItems = 1200;
  std::vector<std::thread> threads;
  std::atomic<size_t> next{0};
  for (size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&] {
      for (size_t i = next.fetch_add(1); i < kItems;
           i = next.fetch_add(1)) {
        counter.Add(i % 7);
        // Integral values: the micro-unit sum is exact, so the merged
        // reading cannot depend on which thread observed what.
        hist.Observe(static_cast<double>(i % 40));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  return reg.Snapshot();
}

TEST(MetricsTest, SnapshotMergeIsOrderInvariantAcrossThreadCounts) {
  const obs::MetricsSnapshot serial = RunShardedWorkload(1);
  const obs::MetricsSnapshot two = RunShardedWorkload(2);
  const obs::MetricsSnapshot eight = RunShardedWorkload(8);
  ASSERT_FALSE(serial.metrics.empty());
  EXPECT_EQ(serial.metrics, two.metrics);
  EXPECT_EQ(serial.metrics, eight.metrics);
  const obs::MetricReading* c = serial.Find("obs_test/work_items");
  ASSERT_NE(c, nullptr);
  uint64_t expected = 0;
  for (size_t i = 0; i < 1200; ++i) expected += i % 7;
  EXPECT_EQ(c->counter, expected);
}

TEST(MetricsTest, SnapshotJsonSortedAndParseable) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.Reset();
  reg.GetCounter("obs_test/zeta").Add(3);
  reg.GetCounter("obs_test/alpha").Add(1);
  reg.GetGauge("obs_test/gauge").Set(2.5);
  const obs::MetricsSnapshot snap = reg.Snapshot();
  // Name-sorted regardless of registration order.
  for (size_t i = 1; i < snap.metrics.size(); ++i) {
    EXPECT_LT(snap.metrics[i - 1].name, snap.metrics[i].name);
  }
  StatusOr<obs::JsonValue> parsed = obs::ParseJson(snap.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::JsonValue* zeta = parsed->Find("obs_test/zeta");
  ASSERT_NE(zeta, nullptr);
  EXPECT_DOUBLE_EQ(zeta->NumberOr("value", 0), 3.0);
  EXPECT_EQ(zeta->StringOr("kind", ""), "counter");
}

TEST(MetricsTest, HistogramReRegistrationKeepsFirstBounds) {
  auto& reg = obs::MetricsRegistry::Global();
  auto& first = reg.GetHistogram("obs_test/rereg_hist", {1.0, 2.0, 4.0});
  auto& second = reg.GetHistogram("obs_test/rereg_hist", {10.0, 20.0});
  // Same object, first bounds win: re-registration with different bounds
  // must not create a second histogram or rebucket the first.
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(second.bounds(), (std::vector<double>{1.0, 2.0, 4.0}));
  first.Reset();
  second.Observe(3.0);  // bucket 2 under the FIRST bounds
  const std::vector<uint64_t> counts = first.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[2], 1u);
}

TEST(MetricsTest, SketchReRegistrationKeepsFirstAccuracy) {
  auto& reg = obs::MetricsRegistry::Global();
  auto& first = reg.GetSketch("obs_test/rereg_sketch", 0.01);
  auto& second = reg.GetSketch("obs_test/rereg_sketch", 0.2);
  EXPECT_EQ(&first, &second);
  EXPECT_DOUBLE_EQ(second.layout().relative_accuracy, 0.01);
}

TEST(MetricsTest, SnapshotJsonIncludesSketch) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.Reset();
  auto& sketch = reg.GetSketch("obs_test/json_sketch");
  for (int i = 1; i <= 100; ++i) sketch.Observe(static_cast<double>(i));
  const obs::MetricsSnapshot snap = reg.Snapshot();
  const obs::MetricReading* m = snap.Find("obs_test/json_sketch");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, obs::MetricReading::Kind::kSketch);
  EXPECT_EQ(m->count, 100u);
  EXPECT_DOUBLE_EQ(m->sum, 5050.0);

  StatusOr<obs::JsonValue> parsed = obs::ParseJson(snap.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::JsonValue* j = parsed->Find("obs_test/json_sketch");
  ASSERT_NE(j, nullptr);
  EXPECT_EQ(j->StringOr("kind", ""), "sketch");
  EXPECT_DOUBLE_EQ(j->NumberOr("count", 0), 100.0);
  // The readout quantile carries the sketch's relative-accuracy bound.
  EXPECT_NEAR(j->NumberOr("p50", 0), 50.0, 50.0 * 0.0101);
}

// ---------------------------------------------------------------- sketch --

TEST(SketchTest, QuantilesCarryTheRelativeAccuracyBound) {
  obs::SketchData s(0.01);
  std::vector<double> values;
  Rng rng(99);
  for (int i = 0; i < 5000; ++i) {
    // Log-uniform over six decades: exactly the no-pre-chosen-bounds
    // regime fixed-boundary histograms cannot cover.
    const double v = std::exp(rng.Uniform(std::log(1e-3), std::log(1e3)));
    values.push_back(v);
    s.Observe(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.01, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    const size_t rank = std::max<size_t>(
        1, static_cast<size_t>(
               std::ceil(q * static_cast<double>(values.size()))));
    const double exact = values[std::min(rank, values.size()) - 1];
    EXPECT_NEAR(s.ValueAtQuantile(q), exact, exact * 0.0101) << "q=" << q;
  }
}

TEST(SketchTest, DeterministicRankRule) {
  const obs::SketchLayout layout(0.01);
  obs::SketchData s(layout);
  EXPECT_DOUBLE_EQ(s.ValueAtQuantile(0.5), 0.0);  // empty reads 0
  s.Observe(1.0);
  s.Observe(2.0);
  s.Observe(3.0);
  // rank = max(1, ceil(q*count)): q=0 reads observation #1, q=0.5 reads
  // #2, q=1 reads #3; out-of-range q clamps.
  EXPECT_DOUBLE_EQ(s.ValueAtQuantile(0.0),
                   layout.ValueFor(layout.IndexFor(1.0)));
  EXPECT_DOUBLE_EQ(s.ValueAtQuantile(0.5),
                   layout.ValueFor(layout.IndexFor(2.0)));
  EXPECT_DOUBLE_EQ(s.ValueAtQuantile(1.0),
                   layout.ValueFor(layout.IndexFor(3.0)));
  EXPECT_DOUBLE_EQ(s.ValueAtQuantile(2.0), s.ValueAtQuantile(1.0));
  EXPECT_DOUBLE_EQ(s.ValueAtQuantile(-1.0), s.ValueAtQuantile(0.0));

  // Non-positive and NaN observations land in the zero bucket; ranks that
  // fall inside it read exactly 0.
  obs::SketchData z(layout);
  z.Observe(0.0);
  z.Observe(-5.0);
  z.Observe(std::nan(""));
  z.Observe(10.0);
  EXPECT_EQ(z.zero_count(), 3u);
  EXPECT_EQ(z.count(), 4u);
  EXPECT_DOUBLE_EQ(z.ValueAtQuantile(0.5), 0.0);  // rank 2 <= zero count
  EXPECT_DOUBLE_EQ(z.ValueAtQuantile(1.0),
                   layout.ValueFor(layout.IndexFor(10.0)));
}

TEST(SketchTest, MergeIsOrderInvariant) {
  // Three shards with overlapping buckets, zero-bucket traffic, and
  // range-clamped extremes, merged in every order — plus a single sketch
  // ingesting the union in a different interleaving. All bit-identical.
  const std::vector<std::vector<double>> shards = {
      {0.5, 1.5, 0.5, 800.0},
      {1.5, 22.0, 1e-12},
      {0.0, 3.14, 0.5},
  };
  std::vector<obs::SketchData> parts;
  for (const std::vector<double>& shard : shards) {
    obs::SketchData s;
    for (double v : shard) s.Observe(v);
    parts.push_back(s);
  }
  std::vector<size_t> order = {0, 1, 2};
  obs::SketchData reference;
  bool have_reference = false;
  do {
    obs::SketchData merged;
    for (size_t i : order) merged.Merge(parts[i]);
    if (!have_reference) {
      reference = merged;
      have_reference = true;
    }
    EXPECT_EQ(merged, reference);
  } while (std::next_permutation(order.begin(), order.end()));
  EXPECT_EQ(reference.count(), 10u);

  obs::SketchData interleaved;
  for (double v :
       {0.5, 1.5, 0.0, 22.0, 3.14, 0.5, 1e-12, 800.0, 1.5, 0.5}) {
    interleaved.Observe(v);
  }
  EXPECT_EQ(interleaved, reference);
}

/// Observes a fixed workload into the registry-resident atomic sketch from
/// `num_threads` threads; the snapshot must not depend on the split.
obs::SketchData RunShardedSketchWorkload(size_t num_threads) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.Reset();
  auto& sketch = reg.GetSketch("obs_test/latency_sketch");
  constexpr size_t kItems = 4000;
  std::atomic<size_t> next{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&] {
      for (size_t i = next.fetch_add(1); i < kItems;
           i = next.fetch_add(1)) {
        // i % 97 == 0 exercises the zero bucket concurrently too.
        sketch.Observe(0.05 * static_cast<double>(i % 97));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  return sketch.Snapshot();
}

TEST(SketchTest, AtomicSnapshotIsThreadCountInvariant) {
  const obs::SketchData serial = RunShardedSketchWorkload(1);
  EXPECT_EQ(serial.count(), 4000u);
  EXPECT_GT(serial.zero_count(), 0u);
  EXPECT_EQ(serial, RunShardedSketchWorkload(2));
  EXPECT_EQ(serial, RunShardedSketchWorkload(8));
}

// ---------------------------------------------------------------- window --

TEST(WindowTest, EpochBoundariesAreExactAndOldEpochsEvict) {
  obs::RollingWindow window(2);
  window.Observe(1.0);
  const obs::WindowStats s0 = window.Stats();
  EXPECT_EQ(s0.count(), 1u);  // the in-progress epoch is included
  EXPECT_EQ(s0.epochs, 0u);
  EXPECT_DOUBLE_EQ(s0.RatePerEpoch(), 1.0);  // denominator clamps to 1

  window.Advance();  // seal {1}
  window.Observe(2.0);
  window.Observe(2.0);
  window.Advance();    // seal {2,2}
  window.Observe(4.0);  // in-progress
  const obs::WindowStats s1 = window.Stats();
  EXPECT_EQ(s1.epochs, 2u);
  EXPECT_EQ(s1.capacity, 2u);
  EXPECT_EQ(s1.count(), 4u);  // {1} + {2,2} + {4}
  EXPECT_DOUBLE_EQ(s1.sum(), 9.0);
  EXPECT_DOUBLE_EQ(s1.RatePerEpoch(), 2.0);

  window.Advance();  // seal {4}; the ring evicts {1}
  const obs::WindowStats s2 = window.Stats();
  EXPECT_EQ(window.epochs_sealed(), 2u);
  EXPECT_EQ(s2.count(), 3u);  // exactly {2,2} + {4}: the 1.0 left
  EXPECT_DOUBLE_EQ(s2.sum(), 8.0);
  const obs::SketchLayout layout(0.01);
  EXPECT_DOUBLE_EQ(s2.Quantile(0.5),
                   layout.ValueFor(layout.IndexFor(2.0)));
  EXPECT_DOUBLE_EQ(s2.Quantile(1.0),
                   layout.ValueFor(layout.IndexFor(4.0)));

  window.Reset();
  EXPECT_EQ(window.Stats().count(), 0u);
  EXPECT_EQ(window.epochs_sealed(), 0u);
}

/// Same fixed workload into one window epoch from `num_threads` threads.
obs::SketchData RunShardedWindowWorkload(size_t num_threads) {
  obs::RollingWindow window(4);
  constexpr size_t kItems = 2000;
  std::atomic<size_t> next{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&] {
      for (size_t i = next.fetch_add(1); i < kItems;
           i = next.fetch_add(1)) {
        window.Observe(0.25 * static_cast<double>(i % 53));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  window.Advance();  // seal the epoch the whole workload landed in
  return window.Stats().merged;
}

TEST(WindowTest, MergedStatsAreThreadCountInvariant) {
  const obs::SketchData serial = RunShardedWindowWorkload(1);
  EXPECT_EQ(serial.count(), 2000u);
  EXPECT_EQ(serial, RunShardedWindowWorkload(2));
  EXPECT_EQ(serial, RunShardedWindowWorkload(8));
}

// ------------------------------------------------------------ prometheus --

TEST(PrometheusTest, NameSanitization) {
  EXPECT_EQ(obs::PrometheusName("stream/tick_ms"), "fta_stream_tick_ms");
  EXPECT_EQ(obs::PrometheusName("a-b.c:d9"), "fta_a_b_c:d9");
}

TEST(PrometheusTest, TextPageCoversEveryMetricKind) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.Reset();
  reg.GetCounter("obs_test/prom_counter").Add(3);
  reg.GetGauge("obs_test/prom_gauge").Set(2.5);
  auto& h = reg.GetHistogram("obs_test/prom_hist", {1.0, 2.0});
  h.Observe(0.5);
  h.Observe(1.5);
  h.Observe(9.0);
  auto& sk = reg.GetSketch("obs_test/prom_sketch");
  for (int i = 0; i < 10; ++i) sk.Observe(7.0);

  const std::string text = obs::ToPrometheusText(reg.Snapshot());
  EXPECT_NE(text.find("# TYPE fta_obs_test_prom_counter_total counter\n"
                      "fta_obs_test_prom_counter_total 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE fta_obs_test_prom_gauge gauge\n"
                      "fta_obs_test_prom_gauge 2.5\n"),
            std::string::npos);
  // Histogram buckets are cumulative and +Inf equals the total count.
  EXPECT_NE(text.find("fta_obs_test_prom_hist_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("fta_obs_test_prom_hist_bucket{le=\"2\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("fta_obs_test_prom_hist_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("fta_obs_test_prom_hist_sum 11\n"),
            std::string::npos);
  EXPECT_NE(text.find("fta_obs_test_prom_hist_count 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE fta_obs_test_prom_sketch summary\n"),
            std::string::npos);
  EXPECT_NE(text.find("fta_obs_test_prom_sketch{quantile=\"0.5\"} "),
            std::string::npos);
  EXPECT_NE(text.find("fta_obs_test_prom_sketch_count 10\n"),
            std::string::npos);
}

TEST(PrometheusTest, WindowSummaryAndAtomicPublish) {
  obs::RollingWindow window(3);
  window.Observe(1.0);
  window.Observe(5.0);
  window.Advance();
  window.Observe(9.0);
  std::string out;
  obs::AppendWindowSummary("tick_ms", window.Stats(), out);
  EXPECT_NE(out.find("# TYPE fta_window_tick_ms gauge\n"),
            std::string::npos);
  EXPECT_NE(out.find("fta_window_tick_ms{stat=\"count\"} 3\n"),
            std::string::npos);
  EXPECT_NE(out.find("fta_window_tick_ms{stat=\"epochs\"} 1\n"),
            std::string::npos);
  EXPECT_NE(out.find("fta_window_tick_ms{stat=\"rate_per_epoch\"} 3\n"),
            std::string::npos);
  EXPECT_NE(out.find("fta_window_tick_ms{stat=\"p50\"} "),
            std::string::npos);

  const std::string path = ::testing::TempDir() + "fta_obs_prom_test.prom";
  ASSERT_TRUE(obs::WriteTextFileAtomic(path, out));
  std::ifstream f(path, std::ios::binary);
  std::stringstream buf;
  buf << f.rdbuf();
  EXPECT_EQ(buf.str(), out);
  // The temp name never survives a successful publish.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

// ----------------------------------------------------------------- spans --

TEST(TraceTest, DisabledRecordsNothing) {
  obs::SetTracingEnabled(false);
  obs::TraceRecorder::Global().Clear();
  {
    FTA_SPAN("obs_test/should_not_appear");
  }
  EXPECT_EQ(obs::TraceRecorder::Global().num_events(), 0u);
}

TEST(TraceTest, SpanNestingAndThreadAttribution) {
  obs::TraceRecorder::Global().Clear();
  obs::SetTracingEnabled(true);
  {
    FTA_SPAN("obs_test/outer");
    {
      FTA_SPAN("obs_test/inner");
    }
    std::vector<std::thread> workers;
    for (int t = 0; t < 2; ++t) {
      workers.emplace_back([] { FTA_SPAN("obs_test/worker"); });
    }
    for (std::thread& th : workers) th.join();
  }
  obs::SetTracingEnabled(false);

  const std::vector<obs::SpanEvent> spans =
      obs::TraceRecorder::Global().Snapshot();
  const obs::SpanEvent* outer = nullptr;
  const obs::SpanEvent* inner = nullptr;
  std::vector<const obs::SpanEvent*> worker_spans;
  for (const obs::SpanEvent& s : spans) {
    if (s.name == "obs_test/outer") outer = &s;
    if (s.name == "obs_test/inner") inner = &s;
    if (s.name == "obs_test/worker") worker_spans.push_back(&s);
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_EQ(worker_spans.size(), 2u);
  // Nesting: the inner span is one level deeper, on the same thread, and
  // contained in the outer span's time range.
  EXPECT_EQ(inner->depth, outer->depth + 1);
  EXPECT_EQ(inner->tid, outer->tid);
  EXPECT_GE(inner->start_us, outer->start_us);
  EXPECT_LE(inner->start_us + inner->dur_us,
            outer->start_us + outer->dur_us);
  // Thread attribution: each worker records under its own tid, not the
  // main thread's, and starts at depth 0 on its thread.
  EXPECT_NE(worker_spans[0]->tid, outer->tid);
  EXPECT_NE(worker_spans[1]->tid, outer->tid);
  EXPECT_NE(worker_spans[0]->tid, worker_spans[1]->tid);
  EXPECT_EQ(worker_spans[0]->depth, 0u);
}

TEST(TraceTest, ChromeJsonParsesAndCoversSpans) {
  obs::TraceRecorder::Global().Clear();
  obs::SetTracingEnabled(true);
  {
    FTA_SPAN("obs_test/chrome");
  }
  obs::SetTracingEnabled(false);
  const std::string json = obs::TraceRecorder::Global().ToChromeJson();
  StatusOr<obs::JsonValue> parsed = obs::ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->StringOr("displayTimeUnit", ""), "ms");
  const obs::JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool found = false;
  bool has_thread_name = false;
  for (const obs::JsonValue& e : events->array) {
    if (e.StringOr("ph", "") == "X" &&
        e.StringOr("name", "") == "obs_test/chrome") {
      found = true;
    }
    if (e.StringOr("ph", "") == "M") has_thread_name = true;
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(has_thread_name);
}

// ------------------------------------------------------------ run report --

TEST(RunReportTest, JsonRoundTrip) {
  const Instance inst = RandomInstance(41, 10, 4);
  SolverOptions options;
  options.fgt.record_trace = true;
  options.fgt.max_rounds = 20;
  obs::MetricsRegistry::Global().Reset();
  const RunMetrics m = RunOnInstance(Algorithm::kFgt, inst, options);
  ASSERT_FALSE(m.trace.empty());

  const RunReport report =
      BuildRunReport("obs_test", "FGT", "random-41", m);
  StatusOr<obs::JsonValue> parsed = obs::ParseJson(report.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::JsonValue& v = *parsed;
  EXPECT_EQ(v.StringOr("schema", ""), "fta-run-report-v1");
  EXPECT_EQ(v.StringOr("tool", ""), "obs_test");
  EXPECT_EQ(v.StringOr("algorithm", ""), "FGT");
  EXPECT_EQ(v.StringOr("dataset", ""), "random-41");

  const obs::JsonValue* metrics = v.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_DOUBLE_EQ(metrics->NumberOr("num_workers", 0), 4.0);
  EXPECT_DOUBLE_EQ(metrics->NumberOr("payoff_difference", -1),
                   m.payoff_difference);
  EXPECT_DOUBLE_EQ(metrics->NumberOr("rounds", -1),
                   static_cast<double>(m.rounds));

  const obs::JsonValue* iterations = v.Find("iterations");
  ASSERT_NE(iterations, nullptr);
  EXPECT_EQ(iterations->array.size(), m.trace.size());

  const obs::JsonValue* generation = v.Find("generation");
  ASSERT_NE(generation, nullptr);
  EXPECT_DOUBLE_EQ(generation->NumberOr("entries", -1),
                   static_cast<double>(m.generation.entries));

  const obs::JsonValue* registry = v.Find("metrics_registry");
  ASSERT_NE(registry, nullptr);
  const obs::JsonValue* fgt_runs = registry->Find("game/fgt/runs");
  ASSERT_NE(fgt_runs, nullptr);
  EXPECT_DOUBLE_EQ(fgt_runs->NumberOr("value", 0), 1.0);

  ASSERT_NE(v.Find("spans"), nullptr);
}

TEST(RunReportTest, WindowsSectionRoundTrips) {
  const Instance inst = RandomInstance(43, 8, 4);
  SolverOptions options;
  obs::MetricsRegistry::Global().Reset();
  const RunMetrics m = RunOnInstance(Algorithm::kFgt, inst, options);
  RunReport report = BuildRunReport("obs_test", "FGT", "random-43", m);
  obs::RollingWindow window(4);
  window.Observe(1.0);
  window.Observe(3.0);
  window.Advance();
  report.windows.emplace_back("tick_ms", window.Stats());

  StatusOr<obs::JsonValue> parsed = obs::ParseJson(report.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::JsonValue* windows = parsed->Find("windows");
  ASSERT_NE(windows, nullptr);
  const obs::JsonValue* tick = windows->Find("tick_ms");
  ASSERT_NE(tick, nullptr);
  EXPECT_DOUBLE_EQ(tick->NumberOr("count", 0), 2.0);
  EXPECT_DOUBLE_EQ(tick->NumberOr("sum", 0), 4.0);
  EXPECT_DOUBLE_EQ(tick->NumberOr("epochs", 0), 1.0);
  EXPECT_DOUBLE_EQ(tick->NumberOr("capacity", 0), 4.0);
  EXPECT_DOUBLE_EQ(tick->NumberOr("rate_per_epoch", 0), 2.0);
  EXPECT_GT(tick->NumberOr("p99", 0), 0.0);
}

// ----------------------------------------------------------- determinism --

/// Counter-kind registry readings, minus the batch-shaped counters
/// (parallel_batches, simd/batches, simd/avx2_batches) — the ones that
/// legitimately depend on the thread count: they count fan-outs and
/// per-shard kernel calls, not algorithmic work. game/simd/lanes stays:
/// the total candidate count is partition-invariant.
std::vector<obs::MetricReading> DeterministicCounters(
    const obs::MetricsSnapshot& snap) {
  std::vector<obs::MetricReading> out;
  for (const obs::MetricReading& m : snap.Counters()) {
    if (m.name.find("batches") != std::string::npos) continue;
    out.push_back(m);
  }
  return out;
}

TEST(DeterminismTest, ObsModesAndThreadCountsAreBitIdentical) {
  const Instance inst = RandomInstance(77, 12, 6);
  VdpsConfig vdps;
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, vdps);

  struct RunResult {
    std::vector<Route> routes;
    std::vector<obs::MetricReading> counters;
  };
  const auto run = [&](bool tracing, size_t threads) {
    obs::MetricsRegistry::Global().Reset();
    obs::TraceRecorder::Global().Clear();
    obs::SetTracingEnabled(tracing);
    FgtConfig cfg;
    cfg.max_rounds = 50;
    cfg.engine.num_threads = threads;
    cfg.engine.min_parallel_candidates = 1;  // force the parallel path
    const GameResult r = SolveFgt(inst, catalog, cfg);
    obs::SetTracingEnabled(false);
    return RunResult{
        r.assignment.routes(),
        DeterministicCounters(obs::MetricsRegistry::Global().Snapshot())};
  };

  const RunResult base = run(/*tracing=*/false, /*threads=*/1);
  const RunResult traced = run(/*tracing=*/true, /*threads=*/1);
  const RunResult parallel = run(/*tracing=*/false, /*threads=*/4);
  const RunResult traced_parallel = run(/*tracing=*/true, /*threads=*/4);

  // Tracing is observational: identical assignment AND identical metrics.
  EXPECT_EQ(base.routes, traced.routes);
  EXPECT_EQ(base.counters, traced.counters);
  // Thread count changes neither the assignment nor any counter other than
  // the excluded fan-out count.
  EXPECT_EQ(base.routes, parallel.routes);
  EXPECT_EQ(base.counters, parallel.counters);
  EXPECT_EQ(base.routes, traced_parallel.routes);
  EXPECT_EQ(base.counters, traced_parallel.counters);
}

// --------------------------------------------------------------- logging --

TEST(LogSinkTest, CaptureSinkReceivesWholeLinesUnderConcurrency) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  CaptureLogSink sink;
  LogSink* previous = SetLogSink(&sink);
  constexpr int kThreads = 4;
  constexpr int kLines = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        FTA_LOG(kInfo) << "thread " << t << " line " << i << " tail";
      }
    });
  }
  for (std::thread& th : threads) th.join();
  SetLogSink(previous);
  SetLogLevel(before);

  const std::vector<std::string> lines = sink.lines();
  ASSERT_EQ(lines.size(), static_cast<size_t>(kThreads * kLines));
  // Every line arrives whole: prefix, full message, no interleaving and no
  // trailing newline.
  const std::regex pattern(
      R"(\[INFO obs_test\.cc:\d+\] thread \d+ line \d+ tail)");
  for (const std::string& line : lines) {
    EXPECT_TRUE(std::regex_match(line, pattern)) << "malformed: " << line;
  }
}

}  // namespace
}  // namespace fta
