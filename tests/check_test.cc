// Contract-macro semantics with validation ENABLED. This target compiles
// with FTA_VALIDATE defined (see tests/CMakeLists.txt) regardless of the
// build-wide setting, so the death tests fire even in a default build.
// The disabled-mode counterpart lives in check_disabled_test.cc.

#include "util/check.h"

#include <gtest/gtest.h>

#include "util/status.h"

namespace fta {
namespace {

static_assert(kValidateEnabled,
              "check_test must be compiled with FTA_VALIDATE; see the "
              "target_compile_definitions in tests/CMakeLists.txt");

TEST(CheckValidateTest, DcheckPassesOnTrue) {
  FTA_DCHECK(1 + 1 == 2);
  FTA_DCHECK_MSG(true, "never printed");
}

TEST(CheckValidateDeathTest, DcheckAbortsOnFalse) {
  EXPECT_DEATH(FTA_DCHECK(2 + 2 == 5), "check failed: 2 \\+ 2 == 5");
}

TEST(CheckValidateDeathTest, DcheckMsgIncludesStreamedMessage) {
  const int frontier = 7;
  EXPECT_DEATH(FTA_DCHECK_MSG(frontier < 0, "frontier=" << frontier),
               "check failed: frontier < 0.*frontier=7");
}

TEST(CheckValidateTest, DcheckEvaluatesItsArgument) {
  int calls = 0;
  auto observed = [&calls] {
    ++calls;
    return true;
  };
  FTA_DCHECK(observed());
  EXPECT_EQ(calls, 1);
}

TEST(CheckValidateTest, DcheckOkPassesOnOkStatus) {
  FTA_DCHECK_OK(Status::Ok());
}

TEST(CheckValidateDeathTest, DcheckOkAbortsWithStatusMessage) {
  EXPECT_DEATH(FTA_DCHECK_OK(Status::Internal("frontier unsorted")),
               "is OK.*INTERNAL: frontier unsorted");
}

TEST(CheckAlwaysOnTest, CheckOkEvaluatesExactlyOnce) {
  int calls = 0;
  auto make_ok = [&calls] {
    ++calls;
    return Status::Ok();
  };
  FTA_CHECK_OK(make_ok());
  EXPECT_EQ(calls, 1);
}

TEST(CheckAlwaysOnDeathTest, CheckOkAbortsOnError) {
  EXPECT_DEATH(FTA_CHECK_OK(Status::InvalidArgument("bad dp index")),
               "is OK.*INVALID_ARGUMENT: bad dp index");
}

}  // namespace
}  // namespace fta
