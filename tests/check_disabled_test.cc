// Contract-macro semantics with validation DISABLED. FTA_VALIDATE is
// undefined below before any include so this TU exercises the zero-cost
// path even when the build tree was configured with -DFTA_VALIDATE=ON.
// Per-TU divergence is safe: kValidateEnabled has internal linkage by
// design (see util/check.h).

#ifdef FTA_VALIDATE
#undef FTA_VALIDATE
#endif

#include "util/check.h"

#include <gtest/gtest.h>

#include "util/status.h"

namespace fta {
namespace {

static_assert(!kValidateEnabled,
              "check_disabled_test must see FTA_VALIDATE undefined");

TEST(CheckDisabledTest, DcheckNeverFiresOnFalse) {
  FTA_DCHECK(false);
  FTA_DCHECK_MSG(false, "never printed");
}

TEST(CheckDisabledTest, DcheckDoesNotEvaluateItsArgument) {
  int calls = 0;
  auto expensive = [&calls] {
    ++calls;
    return false;
  };
  FTA_DCHECK(expensive());
  FTA_DCHECK_MSG(expensive(), "never printed");
  EXPECT_EQ(calls, 0);
}

TEST(CheckDisabledTest, DcheckOkDoesNotEvaluateItsArgument) {
  int calls = 0;
  auto expensive_status = [&calls] {
    ++calls;
    return Status::Internal("never materialized");
  };
  FTA_DCHECK_OK(expensive_status());
  EXPECT_EQ(calls, 0);
}

// The always-on Status check must not be silenced by disabling validation.
TEST(CheckDisabledDeathTest, CheckOkStillAbortsOnError) {
  EXPECT_DEATH(FTA_CHECK_OK(Status::Internal("still fatal")),
               "is OK.*INTERNAL: still fatal");
}

}  // namespace
}  // namespace fta
