#include "exp/simulation.h"

#include <gtest/gtest.h>

#include <numeric>

#include "util/math_util.h"

namespace fta {
namespace {

SimulationConfig SmallSim(Algorithm algorithm = Algorithm::kIegt,
                          uint64_t seed = 5) {
  SimulationConfig config;
  config.num_waves = 6;
  config.num_zones = 20;
  config.num_workers = 8;
  config.tasks_per_wave = 25;
  config.algorithm = algorithm;
  config.options.vdps.epsilon = 3.0;
  config.seed = seed;
  return config;
}

TEST(SimulationTest, TaskConservation) {
  const SimulationResult r = RunDispatchSimulation(SmallSim());
  EXPECT_EQ(r.tasks_arrived,
            r.tasks_served + r.tasks_expired + r.tasks_leftover);
  EXPECT_GT(r.tasks_served, 0u);
}

TEST(SimulationTest, EarningsMatchServedTasks) {
  // Unit rewards: total earnings across couriers == tasks served.
  const SimulationResult r = RunDispatchSimulation(SmallSim());
  const double total = std::accumulate(r.worker_earnings.begin(),
                                       r.worker_earnings.end(), 0.0);
  EXPECT_NEAR(total, static_cast<double>(r.tasks_served), 1e-9);
}

TEST(SimulationTest, WaveAccountingIsSane) {
  const SimulationResult r = RunDispatchSimulation(SmallSim());
  ASSERT_EQ(r.waves.size(), 6u);
  for (const WaveStats& w : r.waves) {
    EXPECT_LE(w.dispatched_workers, w.idle_workers);
    EXPECT_LE(w.assigned_tasks, w.pending_tasks);
    EXPECT_GE(w.average_payoff, 0.0);
    EXPECT_GE(w.payoff_difference, 0.0);
  }
  // First wave: nobody is busy yet.
  EXPECT_EQ(r.waves[0].idle_workers, 8u);
  EXPECT_EQ(r.waves[0].expired_tasks, 0u);
}

TEST(SimulationTest, DeterministicGivenSeed) {
  const SimulationResult a = RunDispatchSimulation(SmallSim());
  const SimulationResult b = RunDispatchSimulation(SmallSim());
  EXPECT_EQ(a.worker_earnings, b.worker_earnings);
  EXPECT_EQ(a.tasks_served, b.tasks_served);
}

TEST(SimulationTest, DifferentSeedsDiffer) {
  const SimulationResult a = RunDispatchSimulation(SmallSim());
  const SimulationResult b =
      RunDispatchSimulation(SmallSim(Algorithm::kIegt, 6));
  EXPECT_NE(a.worker_earnings, b.worker_earnings);
}

TEST(SimulationTest, FairnessMetricsConsistent) {
  const SimulationResult r = RunDispatchSimulation(SmallSim());
  EXPECT_NEAR(r.earnings_payoff_difference,
              MeanAbsolutePairwiseDifference(r.worker_earnings), 1e-9);
  EXPECT_NEAR(r.earnings_gini, Gini(r.worker_earnings), 1e-9);
  EXPECT_GT(r.earnings_jain, 0.0);
  EXPECT_LE(r.earnings_jain, 1.0 + 1e-9);
}

TEST(SimulationTest, AllAlgorithmsRun) {
  for (Algorithm a : PaperAlgorithms()) {
    const SimulationResult r = RunDispatchSimulation(SmallSim(a));
    EXPECT_EQ(r.tasks_arrived,
              r.tasks_served + r.tasks_expired + r.tasks_leftover)
        << AlgorithmName(a);
  }
}

TEST(SimulationTest, ShortLifetimeExpiresEverything) {
  SimulationConfig config = SmallSim();
  config.task_lifetime = 1e-6;  // expires before the next wave
  config.wave_interval = 1.0;
  const SimulationResult r = RunDispatchSimulation(config);
  // Tasks still get one dispatch chance in their arrival wave, but their
  // deadlines (1e-6 h) are unreachable, so nothing is served.
  EXPECT_EQ(r.tasks_served, 0u);
  EXPECT_EQ(r.tasks_expired + r.tasks_leftover, r.tasks_arrived);
}

TEST(SimulationTest, BusyCouriersSitOutFollowingWaves) {
  // Long routes + short intervals: after wave 0, some couriers are busy,
  // so later waves see fewer idle workers.
  SimulationConfig config = SmallSim();
  config.wave_interval = 0.05;
  const SimulationResult r = RunDispatchSimulation(config);
  ASSERT_GE(r.waves.size(), 2u);
  if (r.waves[0].dispatched_workers > 0) {
    EXPECT_LT(r.waves[1].idle_workers, config.num_workers);
  }
}

TEST(SimulationTest, BoundaryExpiry) {
  // Half-open live interval [arrival, expires_at): a task whose lifetime is
  // exactly two wave intervals is gone AT the wave landing on its deadline,
  // not one wave later. 0.5 is an exact double, so wave*0.5 + 1.0 ==
  // (wave+2)*0.5 with no rounding — the comparison is exact equality.
  SimulationConfig config;
  config.num_waves = 4;
  config.wave_interval = 0.5;
  config.task_lifetime = 1.0;
  config.num_zones = 4;
  config.num_workers = 0;  // nothing is ever served
  config.tasks_per_wave = 5;
  const SimulationResult r = RunDispatchSimulation(config);
  ASSERT_EQ(r.waves.size(), 4u);
  EXPECT_EQ(r.waves[0].expired_tasks, 0u);
  EXPECT_EQ(r.waves[1].expired_tasks, 0u);
  EXPECT_EQ(r.waves[2].expired_tasks, 5u);  // wave-0 arrivals, on deadline
  EXPECT_EQ(r.waves[3].expired_tasks, 5u);
  EXPECT_EQ(r.tasks_served, 0u);
}

TEST(SimulationTest, DeadlineEpsilonPastWaveBoundarySurvives) {
  // Regression: the expiry predicate used `expires_at <= now + kEps`, which
  // expired a task whose deadline lands a hair AFTER the wave boundary one
  // full wave early. A deadline strictly greater than `now` must survive
  // that wave, however small the margin.
  SimulationConfig config;
  config.num_waves = 4;
  config.wave_interval = 0.5;
  config.task_lifetime = 1.0 + 5e-10;  // within the old kEps slop
  config.num_zones = 4;
  config.num_workers = 0;
  config.tasks_per_wave = 5;
  const SimulationResult r = RunDispatchSimulation(config);
  ASSERT_EQ(r.waves.size(), 4u);
  EXPECT_EQ(r.waves[2].expired_tasks, 0u);  // still alive at the boundary
  EXPECT_EQ(r.waves[2].pending_tasks, 15u);
  EXPECT_EQ(r.waves[3].expired_tasks, 5u);  // gone one wave later
}

TEST(SimulationTest, ZeroTasksPerWave) {
  SimulationConfig config = SmallSim();
  config.tasks_per_wave = 0;
  const SimulationResult r = RunDispatchSimulation(config);
  EXPECT_EQ(r.tasks_arrived, 0u);
  EXPECT_EQ(r.tasks_served, 0u);
  for (double e : r.worker_earnings) EXPECT_DOUBLE_EQ(e, 0.0);
}

}  // namespace
}  // namespace fta
