#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "stream/dispatcher.h"
#include "stream/events.h"
#include "util/math_util.h"
#include "util/rng.h"
#include "util/status.h"

// Property / fuzz battery for the streaming dispatcher: seeded random event
// sequences with adversarial shapes — bursty arrivals, mass expirations
// (many elements sharing one deadline), empty ticks, workers departing
// while holding an assignment — stepped tick by tick with catalog and
// assignment invariants checked at every boundary.

namespace fta {
namespace {

StreamConfig FuzzStream(uint64_t seed) {
  StreamConfig config;
  config.center = Point{5.0, 5.0};
  config.tick_period = 1.0;
  config.max_ticks = 12;
  config.policy = ResolvePolicy::kWarm;
  config.vdps.epsilon = 3.0;
  config.vdps.max_set_size = 3;
  config.seed = seed;
  return config;
}

StreamEvent TaskAt(double time, Point location, double queue_expiry,
                   double service_window = 1.5, double reward = 1.0) {
  StreamEvent ev;
  ev.time = time;
  ev.kind = StreamEventKind::kTaskArrival;
  ev.location = location;
  ev.reward = reward;
  ev.queue_expiry = queue_expiry;
  ev.service_window = service_window;
  return ev;
}

StreamEvent WorkerAt(double time, Point location, double departure,
                     uint32_t max_dp = 3) {
  StreamEvent ev;
  ev.time = time;
  ev.kind = StreamEventKind::kWorkerArrival;
  ev.worker = Worker{location, max_dp};
  ev.departure = departure;
  return ev;
}

/// Seeded adversarial sequence: quiet stretches, bursts, and mass expiry
/// cliffs where a whole burst shares one deadline.
std::vector<StreamEvent> FuzzEvents(uint64_t seed, size_t max_ticks) {
  Rng rng(seed);
  std::vector<StreamEvent> events;
  const double horizon = static_cast<double>(max_ticks);
  for (double t = 0.0; t < horizon; t += 1.0) {
    if (rng.Bernoulli(0.25)) continue;  // empty tick: no arrivals at all
    const bool burst = rng.Bernoulli(0.3);
    const bool cliff = burst && rng.Bernoulli(0.5);
    const double cliff_expiry =
        t + 1.0 + static_cast<double>(rng.Index(3));  // shared deadline
    const size_t n_tasks = burst ? 6 + rng.Index(6) : rng.Index(3);
    for (size_t i = 0; i < n_tasks; ++i) {
      const double expiry =
          cliff ? cliff_expiry : t + 0.5 + 3.0 * rng.NextDouble();
      events.push_back(TaskAt(t + rng.NextDouble(),
                              Point{rng.Uniform(0.0, 10.0),
                                    rng.Uniform(0.0, 10.0)},
                              expiry, 0.5 + rng.NextDouble(),
                              1.0 + 4.0 * rng.NextDouble()));
    }
    const size_t n_workers = rng.Index(3);
    for (size_t i = 0; i < n_workers; ++i) {
      // Short dwells: workers routinely depart while holding a route.
      events.push_back(WorkerAt(t + rng.NextDouble(),
                                Point{rng.Uniform(0.0, 10.0),
                                      rng.Uniform(0.0, 10.0)},
                                t + 1.0 + 4.0 * rng.NextDouble(),
                                2 + static_cast<uint32_t>(rng.Index(3))));
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const StreamEvent& a, const StreamEvent& b) {
                     return a.time < b.time;
                   });
  return events;
}

/// Steps the full run, asserting tick-boundary invariants: the instance,
/// the (possibly delta-patched) catalog, and the standing assignment all
/// validate against each other after every tick.
void StepAndCheck(StreamDispatcher& dispatcher) {
  while (!dispatcher.Done()) {
    const Status s = dispatcher.Step();
    ASSERT_TRUE(s.ok()) << s.message();
    ASSERT_TRUE(dispatcher.instance().Validate().ok());
    const Status catalog_ok =
        dispatcher.catalog().ValidateInvariants(dispatcher.instance());
    ASSERT_TRUE(catalog_ok.ok()) << catalog_ok.message();
    const Status assignment_ok =
        dispatcher.last_assignment().Validate(dispatcher.instance());
    ASSERT_TRUE(assignment_ok.ok()) << assignment_ok.message();
    const TickStats& ts = dispatcher.last_tick();
    EXPECT_EQ(ts.num_workers, dispatcher.instance().num_workers());
    EXPECT_EQ(ts.num_dps, dispatcher.instance().num_delivery_points());
  }
}

TEST(StreamChurnTest, FuzzedEventSequencesKeepInvariants) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    StreamConfig config = FuzzStream(seed);
    StreamDispatcher dispatcher(config, FuzzEvents(seed * 77, config.max_ticks));
    StepAndCheck(dispatcher);
    const StreamCounters& c = dispatcher.counters();
    EXPECT_EQ(c.ticks, config.max_ticks);
    EXPECT_EQ(c.regens + c.deltas, c.ticks);
    // Conservation: everything that arrived either left or is still live.
    EXPECT_EQ(c.tasks_arrived - c.tasks_expired,
              dispatcher.instance().num_delivery_points());
    EXPECT_EQ(c.workers_arrived - c.workers_departed,
              dispatcher.instance().num_workers());
  }
}

TEST(StreamChurnTest, EmptyStreamRunsAllTicks) {
  StreamConfig config = FuzzStream(1);
  StreamDispatcher dispatcher(config, {});
  StepAndCheck(dispatcher);
  EXPECT_EQ(dispatcher.counters().ticks, config.max_ticks);
  EXPECT_EQ(dispatcher.instance().num_workers(), 0u);
  EXPECT_EQ(dispatcher.instance().num_delivery_points(), 0u);
}

TEST(StreamChurnTest, MassExpiryCliffEmptiesTheQueue) {
  // A burst of tasks and workers all share deadline 3.0: tick 3 must see
  // the whole population leave at once and keep a valid (empty) state.
  std::vector<StreamEvent> events;
  for (int i = 0; i < 8; ++i) {
    events.push_back(
        TaskAt(0.25, Point{1.0 + 0.5 * i, 2.0}, /*queue_expiry=*/3.0));
  }
  for (int i = 0; i < 3; ++i) {
    events.push_back(
        WorkerAt(0.5, Point{2.0 + i, 3.0}, /*departure=*/3.0));
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const StreamEvent& a, const StreamEvent& b) {
                     return a.time < b.time;
                   });
  StreamConfig config = FuzzStream(2);
  config.max_ticks = 5;
  StreamDispatcher dispatcher(config, std::move(events));
  StepAndCheck(dispatcher);
  const StreamCounters& c = dispatcher.counters();
  EXPECT_EQ(c.tasks_expired, 8u);
  EXPECT_EQ(c.workers_departed, 3u);
  EXPECT_EQ(dispatcher.instance().num_workers(), 0u);
  EXPECT_EQ(dispatcher.instance().num_delivery_points(), 0u);
}

TEST(StreamChurnTest, ExpiryExactlyOnTickBoundaryIsGone) {
  // Half-open [arrival, expiry): a task with queue_expiry == 2.0 is NOT
  // live at tick time 2.0 — exact comparison, no epsilon.
  std::vector<StreamEvent> events = {
      TaskAt(0.1, Point{4.0, 5.0}, /*queue_expiry=*/2.0),
      TaskAt(0.1, Point{5.0, 4.0}, /*queue_expiry=*/2.0 + 1e-9),
      WorkerAt(0.1, Point{5.0, 5.0}, /*departure=*/kInfinity),
  };
  StreamConfig config = FuzzStream(3);
  config.max_ticks = 3;
  StreamDispatcher dispatcher(config, std::move(events));
  // Ticks 0, 1: both tasks live.
  ASSERT_TRUE(dispatcher.Step().ok());
  ASSERT_TRUE(dispatcher.Step().ok());
  EXPECT_EQ(dispatcher.instance().num_delivery_points(), 2u);
  // Tick 2 (time 2.0): the on-boundary task is gone, the 1e-9-later one
  // survives.
  ASSERT_TRUE(dispatcher.Step().ok());
  EXPECT_EQ(dispatcher.instance().num_delivery_points(), 1u);
  EXPECT_EQ(dispatcher.counters().tasks_expired, 1u);
}

TEST(StreamChurnTest, WorkerRemovedMidEquilibrationReleasesItsSet) {
  // One worker equilibrates onto tasks, then departs while the tasks stay:
  // the next tick must re-solve without it and the survivor must pick the
  // set up (it is the only remaining worker).
  std::vector<StreamEvent> events = {
      WorkerAt(0.0, Point{5.0, 5.0}, /*departure=*/2.0),
      WorkerAt(0.0, Point{6.0, 5.0}, /*departure=*/kInfinity),
      TaskAt(0.0, Point{5.0, 6.0}, /*queue_expiry=*/kInfinity,
             /*service_window=*/4.0),
  };
  StreamConfig config = FuzzStream(4);
  config.max_ticks = 4;
  StreamDispatcher dispatcher(config, std::move(events));
  StepAndCheck(dispatcher);
  EXPECT_EQ(dispatcher.counters().workers_departed, 1u);
  EXPECT_EQ(dispatcher.instance().num_workers(), 1u);
  // The task outlives the departed worker and stays assignable.
  EXPECT_EQ(dispatcher.instance().num_delivery_points(), 1u);
  EXPECT_EQ(dispatcher.last_assignment().num_covered_delivery_points(), 1u);
}

TEST(StreamChurnTest, DeadOnArrivalElementsNeverEnterTheInstance) {
  // Deadline at or before the first tick that would ingest them.
  std::vector<StreamEvent> events = {
      TaskAt(0.2, Point{4.0, 4.0}, /*queue_expiry=*/0.7),   // dies before t=1
      TaskAt(0.2, Point{6.0, 6.0}, /*queue_expiry=*/kInfinity),
      WorkerAt(0.3, Point{5.0, 5.0}, /*departure=*/1.0),    // dies AT t=1
  };
  StreamConfig config = FuzzStream(5);
  config.max_ticks = 3;
  StreamDispatcher dispatcher(config, std::move(events));
  // Tick 0 at time 0.0 ingests nothing (all arrivals are after 0.0).
  ASSERT_TRUE(dispatcher.Step().ok());
  EXPECT_EQ(dispatcher.instance().num_workers(), 0u);
  // Tick 1 at time 1.0: the short-lived task and the departure-at-1.0
  // worker are already dead on ingest.
  ASSERT_TRUE(dispatcher.Step().ok());
  EXPECT_EQ(dispatcher.instance().num_workers(), 0u);
  EXPECT_EQ(dispatcher.instance().num_delivery_points(), 1u);
  const StreamCounters& c = dispatcher.counters();
  EXPECT_EQ(c.tasks_arrived, 2u);
  EXPECT_EQ(c.tasks_expired, 1u);
  EXPECT_EQ(c.workers_arrived, 1u);
  EXPECT_EQ(c.workers_departed, 1u);
}

}  // namespace
}  // namespace fta
