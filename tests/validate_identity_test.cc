// Pins a golden digest of the full pipeline (catalog → FGT → IEGT) so that
// a build with -DFTA_VALIDATE=ON provably produces bit-identical results
// to the default build: the validators may observe state but must never
// perturb it. The digest folds the exact IEEE-754 bit patterns of every
// payoff and travel time — any drift, even in the last ulp, changes it.
//
// If this test fails after an intentional algorithm change, re-pin the
// constants from the printed values — in a DEFAULT build first, then
// confirm the FTA_VALIDATE build reproduces them.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "game/fgt.h"
#include "game/iegt.h"
#include "model/assignment.h"
#include "util/check.h"
#include "util/rng.h"
#include "vdps/catalog.h"

namespace fta {
namespace {

// FNV-1a over explicit 64-bit words; doubles enter via their bit patterns.
class Digest {
 public:
  void Fold(uint64_t word) {
    hash_ ^= word;
    hash_ *= 1099511628211ull;
  }
  void Fold(double value) { Fold(std::bit_cast<uint64_t>(value)); }
  uint64_t value() const { return hash_; }

 private:
  uint64_t hash_ = 14695981039346656037ull;
};

Instance PipelineInstance() {
  Rng rng(20210406);  // arbitrary fixed seed; changing it re-pins the hash
  const double area = 10.0;
  std::vector<DeliveryPoint> dps;
  for (uint32_t d = 0; d < 24; ++d) {
    std::vector<SpatialTask> tasks;
    const size_t n = 1 + rng.Index(3);
    for (size_t t = 0; t < n; ++t) {
      tasks.push_back(SpatialTask{d, rng.Uniform(1.5, 4.0), 1.0});
    }
    dps.emplace_back(Point{rng.Uniform(0, area), rng.Uniform(0, area)},
                     std::move(tasks));
  }
  std::vector<Worker> workers;
  for (size_t w = 0; w < 6; ++w) {
    workers.push_back(Worker{{rng.Uniform(0, area), rng.Uniform(0, area)}, 3});
  }
  return Instance(Point{area / 2, area / 2}, std::move(dps),
                  std::move(workers), TravelModel(5.0));
}

uint64_t DigestCatalog(const VdpsCatalog& catalog) {
  Digest d;
  d.Fold(static_cast<uint64_t>(catalog.num_entries()));
  for (size_t w = 0; w < catalog.num_workers(); ++w) {
    for (const WorkerStrategy& st : catalog.strategies(w)) {
      d.Fold(static_cast<uint64_t>(st.entry_id));
      d.Fold(st.total_time);
      d.Fold(st.payoff);
    }
  }
  return d.value();
}

uint64_t DigestResult(const Instance& instance, const GameResult& result) {
  Digest d;
  d.Fold(static_cast<uint64_t>(result.rounds));
  d.Fold(static_cast<uint64_t>(result.converged));
  for (const Route& route : result.assignment.routes()) {
    d.Fold(static_cast<uint64_t>(route.size()));
    for (uint32_t dp : route) d.Fold(static_cast<uint64_t>(dp));
  }
  for (double p : result.assignment.Payoffs(instance)) d.Fold(p);
  d.Fold(result.assignment.PayoffDifference(instance));
  return d.value();
}

// Golden digests, pinned from a default (validate-off) build.
constexpr uint64_t kCatalogDigest = 0x4171ae3bff66fc5bull;
constexpr uint64_t kFgtDigest = 0x70de3f1e0dc38591ull;
constexpr uint64_t kIegtDigest = 0xbd84a237d3930ab1ull;

TEST(ValidateIdentityTest, PipelineDigestsMatchGolden) {
  const Instance instance = PipelineInstance();
  VdpsConfig vcfg;
  vcfg.num_threads = 2;  // exercise the sharded paths under validation too
  const VdpsCatalog catalog = VdpsCatalog::Generate(instance, vcfg);

  FgtConfig fcfg;
  const GameResult fgt = SolveFgt(instance, catalog, fcfg);
  IegtConfig icfg;
  const GameResult iegt = SolveIegt(instance, catalog, icfg);

  const uint64_t catalog_digest = DigestCatalog(catalog);
  const uint64_t fgt_digest = DigestResult(instance, fgt);
  const uint64_t iegt_digest = DigestResult(instance, iegt);

  SCOPED_TRACE(::testing::Message()
               << "validate mode: " << (kValidateEnabled ? "ON" : "OFF")
               << "\n  catalog: 0x" << std::hex << catalog_digest
               << "\n  fgt:     0x" << std::hex << fgt_digest
               << "\n  iegt:    0x" << std::hex << iegt_digest);

  EXPECT_EQ(catalog_digest, kCatalogDigest);
  EXPECT_EQ(fgt_digest, kFgtDigest);
  EXPECT_EQ(iegt_digest, kIegtDigest);
}

}  // namespace
}  // namespace fta
