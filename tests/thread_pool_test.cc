#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace fta {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedJobs) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsIdempotent) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran);
}

TEST(ThreadPoolTest, JobsCanSubmitFollowUps) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  pool.Submit([&] {
    counter.fetch_add(1);
    pool.Submit([&] { counter.fetch_add(10); });
  });
  pool.Wait();
  EXPECT_EQ(counter.load(), 11);
}

TEST(ThreadPoolTest, RunBatchCoversTenThousandNoOps) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10'000);
  pool.RunBatch(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, RunBatchZeroItemsReturnsImmediately) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.RunBatch(0, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  pool.RunChunked(0, 8, [&](size_t, size_t, size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  // The pool is still fully operational afterwards.
  pool.RunBatch(10, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 10);
}

TEST(ThreadPoolTest, ConsecutiveThrowingBatchesEachRethrow) {
  ThreadPool pool(4);
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(
        pool.RunBatch(1'000,
                      [](size_t i) {
                        if (i == 500) throw std::runtime_error("again");
                      }),
        std::runtime_error);
  }
  // A clean batch after repeated failures still covers every index.
  std::atomic<int> after{0};
  pool.RunBatch(1'000, [&](size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 1'000);
}

TEST(ThreadPoolTest, RunBatchRethrowsFirstErrorAfterAttemptingEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> attempted{0};
  EXPECT_THROW(
      pool.RunBatch(10'000,
                    [&](size_t i) {
                      attempted.fetch_add(1);
                      if (i % 3 == 0) throw std::runtime_error("task failed");
                    }),
      std::runtime_error);
  // Throwing tasks don't starve the rest of the batch.
  EXPECT_EQ(attempted.load(), 10'000);
  // The pool survives a throwing batch and still runs new work.
  std::atomic<int> after{0};
  pool.RunBatch(100, [&](size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 100);
}

TEST(ThreadPoolTest, SubmittedThrowingJobDoesNotKillPool) {
  ThreadPool pool(2);
  for (int i = 0; i < 100; ++i) {
    pool.Submit([] { throw std::runtime_error("boom"); });
  }
  pool.Wait();
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, NestedSubmitChainFromWorkerThreads) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  // Each job enqueues the next from inside a worker thread, 1000 deep.
  std::function<void(int)> chain = [&](int depth) {
    counter.fetch_add(1);
    if (depth > 0) pool.Submit([&chain, depth] { chain(depth - 1); });
  };
  pool.Submit([&chain] { chain(999); });
  // Each link submits its successor while still in flight, so Wait() can
  // only return once the whole chain has unrolled.
  pool.Wait();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, ShutdownWhileBusyDrainsTheQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        counter.fetch_add(1);
      });
    }
    // Destructor fires with most jobs still queued.
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, DestructionDrainsFollowUpsQueuedByFinishedJobs) {
  std::atomic<int> parents{0};
  std::atomic<int> total{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] {
        pool.Submit([&total] {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
          total.fetch_add(1);
        });
        parents.fetch_add(1);
      });
    }
    // Every parent has submitted its follow-up (so no Submit can race the
    // shutdown flag), but the slow follow-ups are still queued behind two
    // workers when the destructor fires: shutdown must drain them, not
    // abandon them.
    while (parents.load() < 50) std::this_thread::yield();
  }
  EXPECT_EQ(total.load(), 50);
}

TEST(ThreadPoolTest, ConcurrentBatchesFromSeparatePoolsDoNotInterfere) {
  ThreadPool a(2);
  ThreadPool b(2);
  std::atomic<int> total{0};
  std::thread t([&] {
    a.RunBatch(5'000, [&](size_t) { total.fetch_add(1); });
  });
  b.RunBatch(5'000, [&](size_t) { total.fetch_add(1); });
  t.join();
  EXPECT_EQ(total.load(), 10'000);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(257);
  ThreadPool::ParallelFor(hits.size(), 4,
                          [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, SingleThreadFallback) {
  std::vector<int> order;
  ThreadPool::ParallelFor(5, 1, [&](size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, EmptyRange) {
  bool called = false;
  ThreadPool::ParallelFor(0, 4, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

}  // namespace
}  // namespace fta
