#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace fta {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedJobs) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsIdempotent) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran);
}

TEST(ThreadPoolTest, JobsCanSubmitFollowUps) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  pool.Submit([&] {
    counter.fetch_add(1);
    pool.Submit([&] { counter.fetch_add(10); });
  });
  pool.Wait();
  EXPECT_EQ(counter.load(), 11);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(257);
  ThreadPool::ParallelFor(hits.size(), 4,
                          [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, SingleThreadFallback) {
  std::vector<int> order;
  ThreadPool::ParallelFor(5, 1, [&](size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, EmptyRange) {
  bool called = false;
  ThreadPool::ParallelFor(0, 4, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

}  // namespace
}  // namespace fta
