// Adversarial bit-identity suite of the SIMD kernel layer (util/simd.h,
// game/iau_kernels.h): the scalar and AVX2 implementations must agree bit
// for bit on every input — including exact ties, signed zeros, denormals,
// and infinities — and the batched IAU kernel must reproduce the single
// SortedIau bit for bit at every batch size. The AVX2 halves skip
// gracefully on hosts without AVX2 (or FTA_SIMD=OFF builds), where the
// dispatch layer has only one path to agree with itself.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "game/iau.h"
#include "game/iau_kernels.h"
#include "util/math_util.h"
#include "util/rng.h"
#include "util/simd.h"

namespace fta {
namespace {

// The adversarial size ladder: empty, sub-block, exact block, block+tail,
// and the |W| ≈ 256 regime the bench gate measures (255/256/257 cover the
// full-blocks, exact-multiple, and trailing-lane cases).
const size_t kSizes[] = {0, 1, 3, 4, 5, 255, 256, 257};

/// Forces a dispatch mode for one scope, restoring the previous mode on
/// exit (the mode is process-global; tests must not leak a forced mode).
class ScopedSimdMode {
 public:
  explicit ScopedSimdMode(simd::SimdMode mode)
      : previous_(simd::ActiveSimdMode()), ok_(simd::SetSimdMode(mode)) {}
  ~ScopedSimdMode() { simd::SetSimdMode(previous_); }
  ScopedSimdMode(const ScopedSimdMode&) = delete;
  ScopedSimdMode& operator=(const ScopedSimdMode&) = delete;
  bool ok() const { return ok_; }

 private:
  simd::SimdMode previous_;
  bool ok_;
};

/// Ascending sequence with long tie runs, both zero signs, and denormals —
/// every hazard the compare/accumulate kernels must handle exactly.
std::vector<double> AdversarialSorted(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<double> v;
  v.reserve(n);
  while (v.size() < n) {
    const double x = rng.Uniform(-4.0, 4.0);
    v.push_back(x);
    for (size_t r = rng.Index(3); r > 0 && v.size() < n; --r) {
      v.push_back(x);  // tie runs
    }
  }
  if (n >= 6) {
    v[rng.Index(n)] = 0.0;
    v[rng.Index(n)] = -0.0;
    v[rng.Index(n)] = std::numeric_limits<double>::denorm_min();
    v[rng.Index(n)] = -std::numeric_limits<double>::denorm_min();
  }
  std::sort(v.begin(), v.end());
  return v;
}

uint64_t Bits(double x) { return std::bit_cast<uint64_t>(x); }

// ------------------------------------------------- blocked prefix sums --

TEST(BlockedPrefixSumTest, ShortInputsKeepSerialSemantics) {
  // n < 4 has no full block, so the canonical order IS the plain serial
  // left-to-right pass — the pre-kernel semantics.
  const std::vector<double> v = {0.5, -1.25, 3.75};
  for (size_t n = 0; n <= v.size(); ++n) {
    std::vector<double> prefix(n + 1, -7.0);
    simd::internal::BlockedPrefixSumScalar(v.data(), n, prefix.data());
    double carry = 0.0;
    EXPECT_EQ(Bits(prefix[0]), Bits(0.0));
    for (size_t i = 0; i < n; ++i) {
      carry = carry + v[i];
      EXPECT_EQ(Bits(prefix[i + 1]), Bits(carry)) << "n=" << n << " i=" << i;
    }
  }
}

TEST(BlockedPrefixSumTest, PrefixesMatchPlainSumToTolerance) {
  for (size_t n : kSizes) {
    const std::vector<double> v = AdversarialSorted(11 + n, n);
    std::vector<double> prefix(n + 1, 0.0);
    simd::internal::BlockedPrefixSumScalar(v.data(), n, prefix.data());
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      sum += v[i];
      EXPECT_NEAR(prefix[i + 1], sum, 1e-9 * (1.0 + std::abs(sum)))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(BlockedPrefixSumTest, ScalarAndAvx2AreBitIdentical) {
  if (!simd::CpuSupportsAvx2()) GTEST_SKIP() << "AVX2 unavailable";
#ifdef FTA_SIMD_AVX2
  for (size_t n : kSizes) {
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      const std::vector<double> v = AdversarialSorted(seed * 131 + n, n);
      std::vector<double> scalar(n + 1, 0.0);
      std::vector<double> avx2(n + 1, 0.0);
      simd::internal::BlockedPrefixSumScalar(v.data(), n, scalar.data());
      simd::internal::BlockedPrefixSumAvx2(v.data(), n, avx2.data());
      for (size_t i = 0; i <= n; ++i) {
        ASSERT_EQ(Bits(scalar[i]), Bits(avx2[i]))
            << "n=" << n << " seed=" << seed << " i=" << i;
      }
    }
  }
#endif
}

// ------------------------------------------------ pairwise-diff totals --

TEST(PairwiseDiffTest, MatchesQuadraticOracleToTolerance) {
  for (size_t n : kSizes) {
    if (n > 300) continue;  // the oracle is O(n²); every size here is fine
    const std::vector<double> v = AdversarialSorted(23 + n, n);
    double oracle = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) oracle += v[j] - v[i];
    }
    const double got =
        simd::internal::PairwiseDiffTotalSortedScalar(v.data(), n);
    EXPECT_NEAR(got, oracle, 1e-9 * (1.0 + std::abs(oracle))) << "n=" << n;
  }
}

TEST(PairwiseDiffTest, ScalarAndAvx2AreBitIdentical) {
  if (!simd::CpuSupportsAvx2()) GTEST_SKIP() << "AVX2 unavailable";
#ifdef FTA_SIMD_AVX2
  for (size_t n : kSizes) {
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      const std::vector<double> v = AdversarialSorted(seed * 17 + n, n);
      const double scalar =
          simd::internal::PairwiseDiffTotalSortedScalar(v.data(), n);
      const double avx2 =
          simd::internal::PairwiseDiffTotalSortedAvx2(v.data(), n);
      ASSERT_EQ(Bits(scalar), Bits(avx2)) << "n=" << n << " seed=" << seed;
    }
  }
#endif
}

TEST(PairwiseDiffTest, NegativeZeroCarryAgreesAcrossPaths) {
  if (!simd::CpuSupportsAvx2()) GTEST_SKIP() << "AVX2 unavailable";
#ifdef FTA_SIMD_AVX2
  // A -0.0 carry is the one place the naive scalar form (p0 = carry) would
  // diverge from the vector form (p0 = carry + 0.0): -0.0 + 0.0 = +0.0.
  const std::vector<double> v = {-0.0, -0.0, -0.0, -0.0, -0.0,
                                 -0.0, -0.0, -0.0, 1.0};
  const double scalar =
      simd::internal::PairwiseDiffTotalSortedScalar(v.data(), v.size());
  const double avx2 =
      simd::internal::PairwiseDiffTotalSortedAvx2(v.data(), v.size());
  EXPECT_EQ(Bits(scalar), Bits(avx2));
#endif
}

TEST(PairwiseDiffTest, MeanAbsolutePairwiseDifferenceIsModeInvariant) {
  std::vector<double> v = AdversarialSorted(99, 257);
  double scalar_result = 0.0;
  {
    ScopedSimdMode scoped(simd::SimdMode::kScalar);
    scalar_result = MeanAbsolutePairwiseDifferenceSorted(v);
  }
  if (!simd::CpuSupportsAvx2()) GTEST_SKIP() << "AVX2 unavailable";
  ScopedSimdMode scoped(simd::SimdMode::kAvx2);
  ASSERT_TRUE(scoped.ok());
  EXPECT_EQ(Bits(scalar_result), Bits(MeanAbsolutePairwiseDifferenceSorted(v)));
}

// ------------------------------------------------------- batched ranks --

TEST(CountLessBatchTest, ScalarEqualsLowerBoundOnTiesAndSpecials) {
  std::vector<double> values = AdversarialSorted(7, 64);
  values.push_back(std::numeric_limits<double>::infinity());
  values.insert(values.begin(), -std::numeric_limits<double>::infinity());
  std::vector<double> owns = values;  // every tie, both infinities
  owns.push_back(0.0);
  owns.push_back(-0.0);
  owns.push_back(std::numeric_limits<double>::denorm_min());
  std::vector<uint32_t> counts(owns.size(), 0);
  iau_internal::CountLessBatchScalar(values.data(), values.size(),
                                     owns.data(), owns.size(), counts.data());
  for (size_t j = 0; j < owns.size(); ++j) {
    const auto expect = static_cast<uint32_t>(
        std::lower_bound(values.begin(), values.end(), owns[j]) -
        values.begin());
    EXPECT_EQ(counts[j], expect) << "own=" << owns[j];
  }
}

TEST(CountLessBatchTest, ScalarAndAvx2AgreeExactly) {
  if (!simd::CpuSupportsAvx2()) GTEST_SKIP() << "AVX2 unavailable";
#ifdef FTA_SIMD_AVX2
  for (size_t n : kSizes) {
    std::vector<double> values = AdversarialSorted(41 + n, n);
    if (n >= 6) {
      values.front() = -std::numeric_limits<double>::infinity();
      values.back() = std::numeric_limits<double>::infinity();
    }
    for (size_t count : kSizes) {
      Rng rng(n * 1000 + count);
      std::vector<double> owns(count);
      for (size_t j = 0; j < count; ++j) {
        // Half exact ties against the value array, half fresh draws.
        owns[j] = (n > 0 && rng.Index(2) == 0) ? values[rng.Index(n)]
                                               : rng.Uniform(-5.0, 5.0);
      }
      std::vector<uint32_t> scalar(count + 1, 0);
      std::vector<uint32_t> avx2(count + 1, 0);
      iau_internal::CountLessBatchScalar(values.data(), values.size(),
                                         owns.data(), count, scalar.data());
      iau_internal::CountLessBatchAvx2(values.data(), values.size(),
                                       owns.data(), count, avx2.data());
      for (size_t j = 0; j < count; ++j) {
        ASSERT_EQ(scalar[j], avx2[j])
            << "n=" << n << " count=" << count << " j=" << j;
      }
    }
  }
#endif
}

TEST(CountLessBatchSortedDescTest, MergeEqualsLowerBoundOnBothPaths) {
  for (size_t n : kSizes) {
    std::vector<double> values = AdversarialSorted(61 + n, n);
    if (n >= 6) {
      values.front() = -std::numeric_limits<double>::infinity();
      values.back() = std::numeric_limits<double>::infinity();
    }
    for (size_t count : kSizes) {
      if (count == 0) continue;
      Rng rng(n * 4001 + count);
      std::vector<double> owns(count);
      for (size_t j = 0; j < count; ++j) {
        // Half exact ties against the value array (tie runs included), half
        // fresh draws; sorted descending to satisfy the precondition.
        owns[j] = (n > 0 && rng.Index(2) == 0) ? values[rng.Index(n)]
                                               : rng.Uniform(-5.0, 5.0);
      }
      if (count >= 4) {
        owns[rng.Index(count)] = 0.0;
        owns[rng.Index(count)] = -0.0;
      }
      std::sort(owns.begin(), owns.end(), std::greater<double>());
      ASSERT_TRUE(iau_internal::IsNonIncreasing(owns.data(), count));
      std::vector<uint32_t> merged(count, 0);
      iau_internal::CountLessBatchSortedDescScalar(
          values.data(), n, owns.data(), count, merged.data());
      for (size_t j = 0; j < count; ++j) {
        const auto expect = static_cast<uint32_t>(
            std::lower_bound(values.begin(), values.end(), owns[j]) -
            values.begin());
        ASSERT_EQ(merged[j], expect)
            << "scalar merge n=" << n << " count=" << count << " j=" << j;
      }
#ifdef FTA_SIMD_AVX2
      if (simd::CpuSupportsAvx2()) {
        std::vector<uint32_t> avx2(count, 0);
        iau_internal::CountLessBatchSortedDescAvx2(
            values.data(), n, owns.data(), count, avx2.data());
        for (size_t j = 0; j < count; ++j) {
          ASSERT_EQ(avx2[j], merged[j])
              << "avx2 merge n=" << n << " count=" << count << " j=" << j;
        }
      }
#endif
    }
  }
}

TEST(CountLessBatchSortedDescTest, ConstantOwnsAndAllTiesStopExactly) {
  // Every own equal, and equal to a long tie run in the values: the shared
  // pointer must stop at the FIRST tie (lower_bound), not inside the run.
  const std::vector<double> values = {-1.0, 2.0, 2.0, 2.0, 2.0, 2.0, 3.0};
  const std::vector<double> owns(9, 2.0);
  std::vector<uint32_t> counts(owns.size(), 77);
  CountLessBatchSortedDesc(values.data(), values.size(), owns.data(),
                           owns.size(), counts.data());
  for (uint32_t c : counts) EXPECT_EQ(c, 1u);
}

// -------------------------------------------------------- batched IAUs --

TEST(SortedIauBatchTest, MatchesSingleSortedIauBitwiseInBothModes) {
  IauParams params;
  params.alpha = 0.4;
  params.beta = 0.25;
  std::vector<simd::SimdMode> modes = {simd::SimdMode::kScalar};
  if (simd::CpuSupportsAvx2()) modes.push_back(simd::SimdMode::kAvx2);
  for (simd::SimdMode mode : modes) {
    ScopedSimdMode scoped(mode);
    ASSERT_TRUE(scoped.ok());
    for (size_t n : kSizes) {
      const std::vector<double> values = AdversarialSorted(3 + n, n);
      std::vector<double> prefix(n + 1, 0.0);
      simd::BlockedPrefixSum(values.data(), n, prefix.data());
      for (size_t count : kSizes) {
        Rng rng(n * 31 + count);
        std::vector<double> owns(count);
        for (size_t j = 0; j < count; ++j) {
          owns[j] = (n > 0 && rng.Index(2) == 0) ? values[rng.Index(n)]
                                                 : rng.Uniform(-5.0, 5.0);
        }
        std::vector<double> out(count, 0.0);
        SortedIauBatch(values.data(), n, prefix.data(), params, owns.data(),
                       count, out.data());
        for (size_t j = 0; j < count; ++j) {
          ASSERT_EQ(Bits(out[j]),
                    Bits(SortedIau(values.data(), n, prefix.data(), owns[j],
                                   params)))
              << simd::SimdModeName(mode) << " n=" << n << " count=" << count
              << " j=" << j;
        }
      }
    }
  }
}

TEST(SortedIauBatchTest, AgreesWithNaiveIauOracle) {
  IauParams params;  // defaults
  const std::vector<double> values = AdversarialSorted(13, 100);
  std::vector<double> prefix(values.size() + 1, 0.0);
  simd::BlockedPrefixSum(values.data(), values.size(), prefix.data());
  Rng rng(99);
  std::vector<double> owns(37);
  for (double& o : owns) o = rng.Uniform(-5.0, 5.0);
  std::vector<double> out(owns.size(), 0.0);
  SortedIauBatch(values.data(), values.size(), prefix.data(), params,
                 owns.data(), owns.size(), out.data());
  const std::vector<double> others(values.begin(), values.end());
  for (size_t j = 0; j < owns.size(); ++j) {
    EXPECT_NEAR(out[j], Iau(owns[j], others, params), 1e-12) << "j=" << j;
  }
}

// ------------------------------------------------------- fused argmax --

/// The engine's pre-fusion semantics: per-lane SortedIau, folded in
/// ascending position with strictly-greater replacement (earliest max).
size_t ArgmaxOracle(const double* values, size_t n, const double* prefix,
                    const IauParams& params, const double* owns, size_t count,
                    double* best_u) {
  size_t best = 0;
  *best_u = SortedIau(values, n, prefix, owns[0], params);
  for (size_t j = 1; j < count; ++j) {
    const double u = SortedIau(values, n, prefix, owns[j], params);
    if (u > *best_u) {
      *best_u = u;
      best = j;
    }
  }
  return best;
}

TEST(SortedIauBatchArgmaxTest, MatchesSequentialFoldBitwiseInBothModes) {
  IauParams params;
  params.alpha = 0.3;
  params.beta = 0.2;
  std::vector<simd::SimdMode> modes = {simd::SimdMode::kScalar};
  if (simd::CpuSupportsAvx2()) modes.push_back(simd::SimdMode::kAvx2);
  // Counts straddle the internal 128-lane chunking (127/128/129/300) as
  // well as the vector-width edges; descending owns exercise the merge
  // ranks, shuffled owns the generic fallback.
  const size_t kCounts[] = {1, 2, 3, 4, 5, 8, 127, 128, 129, 300};
  for (simd::SimdMode mode : modes) {
    ScopedSimdMode scoped(mode);
    ASSERT_TRUE(scoped.ok());
    for (size_t n : kSizes) {
      const std::vector<double> values = AdversarialSorted(17 + n, n);
      std::vector<double> prefix(n + 1, 0.0);
      simd::BlockedPrefixSum(values.data(), n, prefix.data());
      for (size_t count : kCounts) {
        Rng rng(n * 77 + count);
        std::vector<double> owns(count);
        for (size_t j = 0; j < count; ++j) {
          // Exact ties between lanes (Index(8) buckets) force the
          // earliest-position tie-break; ties against values hit rank edges.
          const double tie_pool = -3.0 + static_cast<double>(rng.Index(8));
          owns[j] = rng.Index(2) == 0
                        ? tie_pool
                        : (n > 0 && rng.Index(2) == 0 ? values[rng.Index(n)]
                                                      : rng.Uniform(-5.0, 5.0));
        }
        for (int variant = 0; variant < 2; ++variant) {
          if (variant == 0) {
            std::sort(owns.begin(), owns.end(), std::greater<double>());
          }  // variant 1 keeps the shuffled (generic-rank) order
          double expect_u = 0.0;
          const size_t expect_pos =
              ArgmaxOracle(values.data(), n, prefix.data(), params,
                           owns.data(), count, &expect_u);
          double got_u = 0.0;
          const size_t got_pos =
              SortedIauBatchArgmax(values.data(), n, prefix.data(), params,
                                   owns.data(), count, &got_u);
          ASSERT_EQ(got_pos, expect_pos)
              << simd::SimdModeName(mode) << " n=" << n << " count=" << count
              << " variant=" << variant;
          ASSERT_EQ(Bits(got_u), Bits(expect_u))
              << simd::SimdModeName(mode) << " n=" << n << " count=" << count
              << " variant=" << variant;
        }
      }
    }
  }
}

TEST(SortedIauBatchArgmaxTest, AllTiedLanesPickPositionZero) {
  IauParams params;
  const std::vector<double> values = AdversarialSorted(5, 64);
  std::vector<double> prefix(values.size() + 1, 0.0);
  simd::BlockedPrefixSum(values.data(), values.size(), prefix.data());
  std::vector<simd::SimdMode> modes = {simd::SimdMode::kScalar};
  if (simd::CpuSupportsAvx2()) modes.push_back(simd::SimdMode::kAvx2);
  for (simd::SimdMode mode : modes) {
    ScopedSimdMode scoped(mode);
    ASSERT_TRUE(scoped.ok());
    for (size_t count : {size_t{1}, size_t{4}, size_t{9}, size_t{130}}) {
      const std::vector<double> owns(count, 1.5);
      double u = 0.0;
      EXPECT_EQ(SortedIauBatchArgmax(values.data(), values.size(),
                                     prefix.data(), params, owns.data(), count,
                                     &u),
                size_t{0})
          << simd::SimdModeName(mode) << " count=" << count;
    }
  }
}

TEST(SortedIauBatchArgmaxTest, EmptyOthersReducesToEarliestMaxPayoff) {
  IauParams params;
  const double prefix0 = 0.0;
  const std::vector<double> owns = {1.0, 3.5, 3.5, 2.0};
  double u = 0.0;
  EXPECT_EQ(SortedIauBatchArgmax(nullptr, 0, &prefix0, params, owns.data(),
                                 owns.size(), &u),
            size_t{1});
  EXPECT_EQ(Bits(u), Bits(3.5));
}

// ------------------------------------------------------------ dispatch --

TEST(SimdDispatchTest, SetSimdModeRoundTripsAndFailsGracefully) {
  const simd::SimdMode before = simd::ActiveSimdMode();
  ASSERT_TRUE(simd::SetSimdMode(simd::SimdMode::kScalar));
  EXPECT_EQ(simd::ActiveSimdMode(), simd::SimdMode::kScalar);
  if (simd::CpuSupportsAvx2()) {
    ASSERT_TRUE(simd::SetSimdMode(simd::SimdMode::kAvx2));
    EXPECT_EQ(simd::ActiveSimdMode(), simd::SimdMode::kAvx2);
  } else {
    // Unavailable mode: refused, and the active mode is untouched.
    EXPECT_FALSE(simd::SetSimdMode(simd::SimdMode::kAvx2));
    EXPECT_EQ(simd::ActiveSimdMode(), simd::SimdMode::kScalar);
  }
  simd::SetSimdMode(before);
}

TEST(SimdDispatchTest, ModeNamesAreStable) {
  EXPECT_STREQ(simd::SimdModeName(simd::SimdMode::kScalar), "scalar");
  EXPECT_STREQ(simd::SimdModeName(simd::SimdMode::kAvx2), "avx2");
}

}  // namespace
}  // namespace fta
