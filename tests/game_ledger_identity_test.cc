// Pins the payoff ledger's bit-identity contract: with the ledger serving
// Evaluate's exclude-one views (use_payoff_ledger = true, the default) and
// with the legacy OthersView rebuild (false, the A/B switch), FGT and IEGT
// must produce byte-for-byte the same runs — same routes, same rounds, and
// the same IEEE-754 bit patterns in every traced P_dif / payoff / potential.
//
// The comparison digests the *whole run* (assignment, convergence flags,
// and the full per-round trace) with FNV-1a over 64-bit words, across 12
// seeds and {1, 2, 8} threads, so a single-ulp divergence anywhere in any
// round of any configuration fails the test. There are no golden constants
// here on purpose: the contract is rebuild == ledger, not a frozen value —
// tests/validate_identity_test.cc pins the absolute bits.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "game/best_response.h"
#include "game/fgt.h"
#include "game/iegt.h"
#include "model/builder.h"
#include "util/rng.h"
#include "util/simd.h"
#include "vdps/catalog.h"

namespace fta {
namespace {

// FNV-1a over explicit 64-bit words; doubles enter via their bit patterns.
class Digest {
 public:
  void Fold(uint64_t word) {
    hash_ ^= word;
    hash_ *= 1099511628211ull;
  }
  void Fold(double value) { Fold(std::bit_cast<uint64_t>(value)); }
  uint64_t value() const { return hash_; }

 private:
  uint64_t hash_ = 14695981039346656037ull;
};

Instance RandomInstance(uint64_t seed, size_t num_dps, size_t num_workers) {
  Rng rng(seed);
  InstanceBuilder builder(Point{4, 4});
  builder.Speed(5.0);
  for (size_t d = 0; d < num_dps; ++d) {
    builder.DeliveryPoint({rng.Uniform(0, 8), rng.Uniform(0, 8)},
                          1 + rng.Index(4), rng.Uniform(1.0, 4.0));
  }
  for (size_t w = 0; w < num_workers; ++w) {
    builder.Worker({rng.Uniform(0, 8), rng.Uniform(0, 8)});
  }
  return builder.Build();
}

uint64_t DigestRun(const Instance& instance, const GameResult& result) {
  Digest d;
  d.Fold(static_cast<uint64_t>(result.rounds));
  d.Fold(static_cast<uint64_t>(result.converged));
  d.Fold(static_cast<uint64_t>(result.early_stopped));
  for (const Route& route : result.assignment.routes()) {
    d.Fold(static_cast<uint64_t>(route.size()));
    for (uint32_t dp : route) d.Fold(static_cast<uint64_t>(dp));
  }
  for (double p : result.assignment.Payoffs(instance)) d.Fold(p);
  for (const IterationStats& it : result.trace) {
    d.Fold(static_cast<uint64_t>(it.iteration));
    d.Fold(it.payoff_difference);
    d.Fold(it.average_payoff);
    d.Fold(it.potential);
    d.Fold(static_cast<uint64_t>(it.num_changes));
  }
  return d.value();
}

class LedgerIdentitySeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LedgerIdentitySeeds, FgtLedgerAndRebuildRunsAreBitIdentical) {
  const uint64_t seed = GetParam();
  const Instance inst = RandomInstance(seed, 14, 6);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    FgtConfig config;
    config.record_trace = true;
    config.seed = seed * 31 + 7;
    config.engine.num_threads = threads;
    config.engine.min_parallel_candidates = 1;
    config.early_stop.patience = 3;  // exercise the shared-P_dif path too
    const GameResult ledger_run = SolveFgt(inst, catalog, config);

    FgtConfig rebuild = config;
    rebuild.engine.use_payoff_ledger = false;
    const GameResult rebuild_run = SolveFgt(inst, catalog, rebuild);

    EXPECT_EQ(DigestRun(inst, ledger_run), DigestRun(inst, rebuild_run))
        << "seed " << seed << " threads " << threads;
    // The ledger path never rebuilds a view: every Evaluate is a sort it
    // did not run, and the rebuild path reports no such savings.
    EXPECT_GT(ledger_run.engine.ledger.sorts_eliminated, 0u);
    EXPECT_EQ(rebuild_run.engine.ledger.scratch_reuses, 0u);
  }
}

TEST_P(LedgerIdentitySeeds, IegtLedgerAndRebuildRunsAreBitIdentical) {
  const uint64_t seed = GetParam() + 4000;
  const Instance inst = RandomInstance(seed, 14, 6);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    IegtConfig config;
    config.record_trace = true;
    config.seed = seed * 17 + 3;
    config.engine.num_threads = threads;
    config.engine.min_parallel_candidates = 1;
    config.early_stop.patience = 3;
    const GameResult ledger_run = SolveIegt(inst, catalog, config);

    IegtConfig rebuild = config;
    rebuild.engine.use_payoff_ledger = false;
    const GameResult rebuild_run = SolveIegt(inst, catalog, rebuild);

    EXPECT_EQ(DigestRun(inst, ledger_run), DigestRun(inst, rebuild_run))
        << "seed " << seed << " threads " << threads;
  }
}

// SIMD dispatch is the third axis of the identity contract: forcing the
// scalar and AVX2 kernel paths (util/simd.h) must leave every whole-run
// digest untouched at every thread count, for both solvers. Skips on hosts
// without AVX2 (or FTA_SIMD=OFF builds), where only one path exists.
TEST_P(LedgerIdentitySeeds, DispatchModesProduceBitIdenticalRuns) {
  if (!simd::CpuSupportsAvx2()) {
    GTEST_SKIP() << "AVX2 unavailable; single dispatch mode";
  }
  const simd::SimdMode before = simd::ActiveSimdMode();
  const uint64_t seed = GetParam() + 8000;
  const Instance inst = RandomInstance(seed, 14, 6);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    FgtConfig fgt;
    fgt.record_trace = true;
    fgt.seed = seed * 13 + 5;
    fgt.engine.num_threads = threads;
    fgt.engine.min_parallel_candidates = 1;
    IegtConfig iegt;
    iegt.record_trace = true;
    iegt.seed = seed * 13 + 5;
    iegt.engine.num_threads = threads;
    iegt.engine.min_parallel_candidates = 1;

    ASSERT_TRUE(simd::SetSimdMode(simd::SimdMode::kScalar));
    const uint64_t fgt_scalar = DigestRun(inst, SolveFgt(inst, catalog, fgt));
    const uint64_t iegt_scalar =
        DigestRun(inst, SolveIegt(inst, catalog, iegt));

    ASSERT_TRUE(simd::SetSimdMode(simd::SimdMode::kAvx2));
    const GameResult fgt_avx2 = SolveFgt(inst, catalog, fgt);
    const GameResult iegt_avx2 = SolveIegt(inst, catalog, iegt);

    EXPECT_EQ(fgt_scalar, DigestRun(inst, fgt_avx2))
        << "FGT seed " << seed << " threads " << threads;
    EXPECT_EQ(iegt_scalar, DigestRun(inst, iegt_avx2))
        << "IEGT seed " << seed << " threads " << threads;
    // The AVX2 runs must actually have exercised the AVX2 kernels.
    EXPECT_EQ(fgt_avx2.engine.simd_avx2_batches,
              fgt_avx2.engine.simd_batches);
    EXPECT_GT(fgt_avx2.engine.simd_batches, 0u);
  }
  simd::SetSimdMode(before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LedgerIdentitySeeds,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12));

}  // namespace
}  // namespace fta
