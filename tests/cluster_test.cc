#include "cluster/kmeans.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/math_util.h"
#include "util/rng.h"

namespace fta {
namespace {

std::vector<Point> ThreeBlobs(Rng& rng, size_t per_blob = 50) {
  const std::vector<Point> centers{{0, 0}, {20, 0}, {0, 20}};
  std::vector<Point> pts;
  for (const Point& c : centers) {
    for (size_t i = 0; i < per_blob; ++i) {
      pts.push_back({rng.Gaussian(c.x, 1.0), rng.Gaussian(c.y, 1.0)});
    }
  }
  return pts;
}

TEST(KMeansTest, EmptyInput) {
  Rng rng(1);
  const KMeansResult r = KMeans({}, 3, rng);
  EXPECT_TRUE(r.centroids.empty());
  EXPECT_TRUE(r.labels.empty());
}

TEST(KMeansTest, KZero) {
  Rng rng(2);
  const KMeansResult r = KMeans({{1, 1}}, 0, rng);
  EXPECT_TRUE(r.centroids.empty());
}

TEST(KMeansTest, KClampedToPointCount) {
  Rng rng(3);
  const KMeansResult r = KMeans({{1, 1}, {2, 2}}, 10, rng);
  EXPECT_EQ(r.centroids.size(), 2u);
}

TEST(KMeansTest, SingleClusterCentroidIsMean) {
  Rng rng(4);
  const std::vector<Point> pts{{0, 0}, {2, 0}, {0, 2}, {2, 2}};
  const KMeansResult r = KMeans(pts, 1, rng);
  ASSERT_EQ(r.centroids.size(), 1u);
  EXPECT_NEAR(r.centroids[0].x, 1.0, 1e-9);
  EXPECT_NEAR(r.centroids[0].y, 1.0, 1e-9);
}

TEST(KMeansTest, RecoversWellSeparatedBlobs) {
  Rng data_rng(5);
  const std::vector<Point> pts = ThreeBlobs(data_rng);
  Rng rng(6);
  const KMeansResult r = KMeans(pts, 3, rng);
  ASSERT_EQ(r.centroids.size(), 3u);
  EXPECT_TRUE(r.converged);
  // Each centroid should land near one of the true blob centers.
  const std::vector<Point> truth{{0, 0}, {20, 0}, {0, 20}};
  for (const Point& t : truth) {
    double best = kInfinity;
    for (const Point& c : r.centroids) best = std::min(best, Distance(c, t));
    EXPECT_LT(best, 1.0);
  }
}

TEST(KMeansTest, LabelsConsistentWithNearestCentroid) {
  Rng data_rng(7);
  const std::vector<Point> pts = ThreeBlobs(data_rng, 30);
  Rng rng(8);
  const KMeansResult r = KMeans(pts, 3, rng);
  for (size_t i = 0; i < pts.size(); ++i) {
    double assigned = Distance(pts[i], r.centroids[r.labels[i]]);
    for (const Point& c : r.centroids) {
      EXPECT_LE(assigned, Distance(pts[i], c) + 1e-9);
    }
  }
}

TEST(KMeansTest, InertiaDecreasesWithMoreClusters) {
  Rng data_rng(9);
  const std::vector<Point> pts = ThreeBlobs(data_rng, 40);
  double prev = kInfinity;
  for (size_t k : {1u, 2u, 4u, 8u}) {
    Rng rng(10);
    const KMeansResult r = KMeans(pts, k, rng);
    EXPECT_LE(r.inertia, prev + 1e-9);
    prev = r.inertia;
  }
}

TEST(KMeansTest, DeterministicGivenRngState) {
  Rng data_rng(11);
  const std::vector<Point> pts = ThreeBlobs(data_rng, 20);
  Rng rng_a(12), rng_b(12);
  const KMeansResult a = KMeans(pts, 4, rng_a);
  const KMeansResult b = KMeans(pts, 4, rng_b);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KMeansTest, UniformSeedingAlsoWorks) {
  Rng data_rng(13);
  const std::vector<Point> pts = ThreeBlobs(data_rng, 30);
  Rng rng(14);
  KMeansConfig config;
  config.plus_plus = false;
  const KMeansResult r = KMeans(pts, 3, rng, config);
  EXPECT_EQ(r.centroids.size(), 3u);
  std::set<uint32_t> used(r.labels.begin(), r.labels.end());
  EXPECT_GE(used.size(), 2u);
}

TEST(KMeansTest, DuplicatePointsDoNotCrash) {
  Rng rng(15);
  const std::vector<Point> pts(10, Point{3, 3});
  const KMeansResult r = KMeans(pts, 3, rng);
  EXPECT_EQ(r.labels.size(), 10u);
  EXPECT_NEAR(r.inertia, 0.0, 1e-12);
}

TEST(KMeansTest, AllLabelsInRange) {
  Rng data_rng(16);
  const std::vector<Point> pts = ThreeBlobs(data_rng, 25);
  Rng rng(17);
  const KMeansResult r = KMeans(pts, 5, rng);
  for (uint32_t label : r.labels) EXPECT_LT(label, r.centroids.size());
}

}  // namespace
}  // namespace fta
