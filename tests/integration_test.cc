#include <gtest/gtest.h>

#include <vector>

#include "baseline/exhaustive.h"
#include "baseline/gta.h"
#include "baseline/mpta.h"
#include "baseline/random_assignment.h"
#include "datagen/gmission.h"
#include "datagen/synthetic.h"
#include "exp/runner.h"
#include "game/fgt.h"
#include "game/iegt.h"
#include "io/dataset_io.h"
#include "util/math_util.h"
#include "util/rng.h"
#include "vdps/catalog.h"

namespace fta {
namespace {

/// End-to-end pipeline checks across datasets, algorithms and seeds: the
/// cross-module invariants that the paper's evaluation relies on.

Instance GmInstance(uint64_t seed) {
  GMissionConfig config;
  config.num_tasks = 150;
  config.num_workers = 12;
  config.seed = seed;
  GMissionPrepConfig prep;
  prep.num_delivery_points = 30;
  prep.seed = seed + 1;
  return GenerateGMissionLike(config, prep);
}

VdpsConfig GmVdps() {
  VdpsConfig config;
  config.epsilon = 2.5;
  config.max_set_size = 3;
  return config;
}

class PipelineTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelineTest, AllAlgorithmsProduceValidAssignments) {
  const Instance inst = GmInstance(GetParam());
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, GmVdps());
  Rng rng(GetParam());

  const Assignment gta = SolveGta(inst, catalog);
  const MptaResult mpta = SolveMpta(inst, catalog);
  const GameResult fgt = SolveFgt(inst, catalog);
  const GameResult iegt = SolveIegt(inst, catalog);
  const Assignment random = SolveRandom(inst, catalog, rng);

  EXPECT_TRUE(gta.Validate(inst).ok());
  EXPECT_TRUE(mpta.assignment.Validate(inst).ok());
  EXPECT_TRUE(fgt.assignment.Validate(inst).ok());
  EXPECT_TRUE(iegt.assignment.Validate(inst).ok());
  EXPECT_TRUE(random.Validate(inst).ok());
  EXPECT_TRUE(fgt.converged);
  EXPECT_TRUE(iegt.converged);
}

TEST_P(PipelineTest, MptaTotalPayoffAtLeastGreedyAndRandom) {
  const Instance inst = GmInstance(GetParam() + 50);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, GmVdps());
  MptaConfig config;
  config.candidates_per_worker = 0;
  config.max_width = 18;
  const MptaResult mpta = SolveMpta(inst, catalog, config);
  if (!mpta.exact) GTEST_SKIP() << "width fallback; no optimality claim";
  const Assignment gta = SolveGta(inst, catalog);
  Rng rng(GetParam());
  const Assignment random = SolveRandom(inst, catalog, rng);
  EXPECT_GE(mpta.assignment.TotalPayoff(inst),
            gta.TotalPayoff(inst) - 1e-9);
  EXPECT_GE(mpta.assignment.TotalPayoff(inst),
            random.TotalPayoff(inst) - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineTest, ::testing::Values(1, 2, 3, 4));

/// The paper's headline effectiveness ordering, averaged over seeds: IEGT
/// achieves the lowest payoff difference, and the game-theoretic methods
/// are fairer than the fairness-oblivious baselines (Figures 4-9).
TEST(HeadlineTest, IegtIsFairestOnAverage) {
  double pdif_gta = 0.0, pdif_mpta = 0.0, pdif_fgt = 0.0, pdif_iegt = 0.0;
  const int kSeeds = 6;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    const Instance inst = GmInstance(static_cast<uint64_t>(seed) * 113);
    const VdpsCatalog catalog = VdpsCatalog::Generate(inst, GmVdps());
    pdif_gta += SolveGta(inst, catalog).PayoffDifference(inst);
    pdif_mpta += SolveMpta(inst, catalog).assignment.PayoffDifference(inst);
    FgtConfig fgt_config;
    fgt_config.seed = static_cast<uint64_t>(seed);
    pdif_fgt +=
        SolveFgt(inst, catalog, fgt_config).assignment.PayoffDifference(inst);
    IegtConfig iegt_config;
    iegt_config.seed = static_cast<uint64_t>(seed);
    pdif_iegt += SolveIegt(inst, catalog, iegt_config)
                     .assignment.PayoffDifference(inst);
  }
  EXPECT_LT(pdif_iegt, pdif_gta);
  EXPECT_LT(pdif_iegt, pdif_mpta);
  EXPECT_LT(pdif_iegt, pdif_fgt);
  EXPECT_LT(pdif_fgt, pdif_mpta);
}

/// MPTA has the highest average payoff of the four (it optimizes for it).
TEST(HeadlineTest, MptaHasHighestAveragePayoffOnAverage) {
  double avg_mpta = 0.0, avg_fgt = 0.0, avg_iegt = 0.0;
  const int kSeeds = 5;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    const Instance inst = GmInstance(static_cast<uint64_t>(seed) * 211);
    const VdpsCatalog catalog = VdpsCatalog::Generate(inst, GmVdps());
    avg_mpta += SolveMpta(inst, catalog).assignment.AveragePayoff(inst);
    avg_fgt += SolveFgt(inst, catalog).assignment.AveragePayoff(inst);
    avg_iegt += SolveIegt(inst, catalog).assignment.AveragePayoff(inst);
  }
  EXPECT_GE(avg_mpta, avg_fgt - 1e-9);
  EXPECT_GE(avg_mpta, avg_iegt - 1e-9);
}

/// The games optimize (inequity-penalized) payoffs, so their average
/// payoff must beat blind random assignment on average. (Note: random can
/// look *fair* — everyone equally poor — so fairness-vs-random is not a
/// sound invariant; payoff-vs-random is.)
TEST(HeadlineTest, GamesBeatRandomOnAveragePayoff) {
  double avg_fgt = 0.0, avg_iegt = 0.0, avg_rand = 0.0;
  const int kSeeds = 6;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    const Instance inst = GmInstance(static_cast<uint64_t>(seed) * 307);
    const VdpsCatalog catalog = VdpsCatalog::Generate(inst, GmVdps());
    Rng rng(static_cast<uint64_t>(seed));
    avg_rand += SolveRandom(inst, catalog, rng).AveragePayoff(inst);
    avg_fgt += SolveFgt(inst, catalog).assignment.AveragePayoff(inst);
    avg_iegt += SolveIegt(inst, catalog).assignment.AveragePayoff(inst);
  }
  EXPECT_GT(avg_fgt, avg_rand);
  EXPECT_GT(avg_iegt, avg_rand);
}

/// Serialization round-trip composed with solving: identical results.
TEST(IntegrationTest, SolveAfterRoundTripMatches) {
  SynConfig config;
  config.num_centers = 2;
  config.num_workers = 8;
  config.num_delivery_points = 14;
  config.num_tasks = 70;
  config.area = 10.0;
  config.seed = 17;
  const MultiCenterInstance multi = GenerateSyn(config);
  const auto back = DeserializeInstances(SerializeInstances(multi));
  ASSERT_TRUE(back.ok());

  SolverOptions options;
  options.vdps.epsilon = 3.0;
  for (Algorithm a : PaperAlgorithms()) {
    const RunMetrics m1 = RunOnMulti(a, multi, options);
    const RunMetrics m2 = RunOnMulti(a, *back, options);
    EXPECT_NEAR(m1.payoff_difference, m2.payoff_difference, 1e-9)
        << AlgorithmName(a);
    EXPECT_NEAR(m1.average_payoff, m2.average_payoff, 1e-9)
        << AlgorithmName(a);
  }
}

/// ε-pruning at a generous threshold reproduces the unpruned effectiveness
/// (the knee behavior of Figures 2-3) on a small GM-style instance.
TEST(IntegrationTest, GenerousEpsilonMatchesUnprunedEffectiveness) {
  const Instance inst = GmInstance(999);
  VdpsConfig pruned = GmVdps();
  pruned.epsilon = 6.0;  // generous: beyond the knee
  VdpsConfig unpruned = GmVdps();
  unpruned.epsilon = kInfinity;
  const VdpsCatalog cat_pruned = VdpsCatalog::Generate(inst, pruned);
  const VdpsCatalog cat_unpruned = VdpsCatalog::Generate(inst, unpruned);
  FgtConfig config;
  const GameResult a = SolveFgt(inst, cat_pruned, config);
  const GameResult b = SolveFgt(inst, cat_unpruned, config);
  EXPECT_NEAR(a.assignment.PayoffDifference(inst),
              b.assignment.PayoffDifference(inst), 0.05);
}

/// Workers with maxDP = 1 can only ever hold singleton sets, end to end.
TEST(IntegrationTest, MaxDpOneLimitsRoutesEverywhere) {
  GMissionConfig config;
  config.num_tasks = 100;
  config.num_workers = 10;
  config.seed = 5;
  GMissionPrepConfig prep;
  prep.num_delivery_points = 20;
  prep.max_dp = 1;
  const Instance inst = GenerateGMissionLike(config, prep);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, GmVdps());
  for (Algorithm a : PaperAlgorithms()) {
    SolverOptions options;
    const RunMetrics m = RunWithCatalog(a, inst, catalog, options);
    (void)m;
  }
  const Assignment gta = SolveGta(inst, catalog);
  for (size_t w = 0; w < inst.num_workers(); ++w) {
    EXPECT_LE(gta.route(w).size(), 1u);
  }
}

}  // namespace
}  // namespace fta
