#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "datagen/gmission.h"
#include "model/route.h"
#include "util/math_util.h"
#include "util/rng.h"
#include "vdps/catalog.h"
#include "vdps/generators.h"
#include "vdps/pareto.h"

namespace fta {
namespace {

/// Small random instance builder for property sweeps.
Instance RandomInstance(uint64_t seed, size_t num_dps, size_t num_workers,
                        double area = 10.0, double expiry_lo = 1.0,
                        double expiry_hi = 4.0) {
  Rng rng(seed);
  std::vector<DeliveryPoint> dps;
  for (uint32_t d = 0; d < num_dps; ++d) {
    std::vector<SpatialTask> tasks;
    const size_t n = 1 + rng.Index(4);
    for (size_t t = 0; t < n; ++t) {
      tasks.push_back(SpatialTask{d, rng.Uniform(expiry_lo, expiry_hi), 1.0});
    }
    dps.emplace_back(Point{rng.Uniform(0, area), rng.Uniform(0, area)},
                     std::move(tasks));
  }
  std::vector<Worker> workers;
  for (size_t w = 0; w < num_workers; ++w) {
    workers.push_back(
        Worker{{rng.Uniform(0, area), rng.Uniform(0, area)}, 3});
  }
  return Instance(Point{area / 2, area / 2}, std::move(dps),
                  std::move(workers), TravelModel(5.0));
}

/// Canonical form of a generation result for engine-equivalence checks:
/// set -> (reward, best center_time, best slack).
std::map<std::vector<uint32_t>, std::tuple<double, double, double>>
Canonical(const GenerationResult& gen) {
  std::map<std::vector<uint32_t>, std::tuple<double, double, double>> out;
  for (const CVdpsEntry& e : gen.entries) {
    double best_time = kInfinity, best_slack = -kInfinity;
    for (const SequenceOption& o : e.options) {
      best_time = std::min(best_time, o.center_time);
      best_slack = std::max(best_slack, o.slack);
    }
    out[e.dps] = {e.total_reward, best_time, best_slack};
  }
  return out;
}

// ---------------------------------------------------------------- Pareto --

TEST(ParetoTest, KeepsNonDominated) {
  std::vector<SequenceOption> f;
  EXPECT_TRUE(InsertParetoOption(f, {{0}, 1.0, 1.0}, 4));
  EXPECT_TRUE(InsertParetoOption(f, {{1}, 2.0, 3.0}, 4));  // slower, slackier
  EXPECT_EQ(f.size(), 2u);
  EXPECT_DOUBLE_EQ(f[0].center_time, 1.0);
  EXPECT_DOUBLE_EQ(f[1].center_time, 2.0);
}

TEST(ParetoTest, RejectsDominated) {
  std::vector<SequenceOption> f;
  InsertParetoOption(f, {{0}, 1.0, 2.0}, 4);
  EXPECT_FALSE(InsertParetoOption(f, {{1}, 1.5, 1.5}, 4));  // worse both ways
  EXPECT_EQ(f.size(), 1u);
}

TEST(ParetoTest, RemovesNewlyDominated) {
  std::vector<SequenceOption> f;
  InsertParetoOption(f, {{0}, 2.0, 1.0}, 4);
  EXPECT_TRUE(InsertParetoOption(f, {{1}, 1.0, 2.0}, 4));  // dominates
  EXPECT_EQ(f.size(), 1u);
  EXPECT_DOUBLE_EQ(f[0].center_time, 1.0);
}

TEST(ParetoTest, CapKeepsExtremes) {
  std::vector<SequenceOption> f;
  for (int i = 0; i < 10; ++i) {
    InsertParetoOption(
        f, {{static_cast<uint32_t>(i)}, 1.0 + i, 1.0 + i}, 3);
  }
  EXPECT_LE(f.size(), 3u);
  EXPECT_DOUBLE_EQ(f.front().center_time, 1.0);   // fastest retained
  EXPECT_DOUBLE_EQ(f.back().slack, 10.0);         // slackiest retained
}

// ------------------------------------------------------------ ExactDp ----

TEST(ExactDpTest, SingleDeliveryPointFeasible) {
  std::vector<DeliveryPoint> dps;
  dps.emplace_back(Point{1, 0},
                   std::vector<SpatialTask>{SpatialTask{0, 2.0, 1.0}});
  Instance inst(Point{0, 0}, std::move(dps), {}, TravelModel(1.0));
  const GenerationResult gen = GenerateCVdpsExact(inst, VdpsConfig{});
  ASSERT_EQ(gen.entries.size(), 1u);
  EXPECT_EQ(gen.entries[0].dps, (std::vector<uint32_t>{0}));
  ASSERT_EQ(gen.entries[0].options.size(), 1u);
  EXPECT_DOUBLE_EQ(gen.entries[0].options[0].center_time, 1.0);
  EXPECT_DOUBLE_EQ(gen.entries[0].options[0].slack, 1.0);
}

TEST(ExactDpTest, InfeasibleDeliveryPointExcluded) {
  std::vector<DeliveryPoint> dps;
  dps.emplace_back(Point{10, 0},
                   std::vector<SpatialTask>{SpatialTask{0, 2.0, 1.0}});
  Instance inst(Point{0, 0}, std::move(dps), {}, TravelModel(1.0));
  const GenerationResult gen = GenerateCVdpsExact(inst, VdpsConfig{});
  EXPECT_TRUE(gen.entries.empty());
}

TEST(ExactDpTest, PairOrderingMatters) {
  // dp0 expires early and must be visited first; {dp0, dp1} is a C-VDPS
  // only via the (dp0, dp1) ordering.
  std::vector<DeliveryPoint> dps;
  dps.emplace_back(Point{1, 0},
                   std::vector<SpatialTask>{SpatialTask{0, 1.2, 1.0}});
  dps.emplace_back(Point{2, 0},
                   std::vector<SpatialTask>{SpatialTask{1, 10.0, 1.0}});
  Instance inst(Point{0, 0}, std::move(dps), {}, TravelModel(1.0));
  const GenerationResult gen = GenerateCVdpsExact(inst, VdpsConfig{});
  ASSERT_EQ(gen.entries.size(), 3u);  // {0}, {1}, {0,1}
  const CVdpsEntry& pair = gen.entries[2];
  ASSERT_EQ(pair.dps, (std::vector<uint32_t>{0, 1}));
  for (const SequenceOption& o : pair.options) {
    EXPECT_EQ(o.route, (Route{0, 1}));
  }
}

TEST(ExactDpTest, MaxSetSizeCapsEnumeration) {
  const Instance inst = RandomInstance(5, 8, 0, 5.0, 3.0, 6.0);
  VdpsConfig config;
  config.max_set_size = 2;
  const GenerationResult gen = GenerateCVdpsExact(inst, config);
  for (const CVdpsEntry& e : gen.entries) {
    EXPECT_LE(e.dps.size(), 2u);
  }
}

TEST(ExactDpTest, MinTravelSequenceRetained) {
  // Two symmetric points: both orderings feasible; the min-travel option
  // must equal the optimal tour time.
  std::vector<DeliveryPoint> dps;
  dps.emplace_back(Point{1, 0},
                   std::vector<SpatialTask>{SpatialTask{0, 100.0, 1.0}});
  dps.emplace_back(Point{5, 0},
                   std::vector<SpatialTask>{SpatialTask{1, 100.0, 1.0}});
  Instance inst(Point{0, 0}, std::move(dps), {}, TravelModel(1.0));
  const GenerationResult gen = GenerateCVdpsExact(inst, VdpsConfig{});
  const CVdpsEntry* pair = nullptr;
  for (const CVdpsEntry& e : gen.entries) {
    if (e.dps.size() == 2) pair = &e;
  }
  ASSERT_NE(pair, nullptr);
  // Best: 0 -> dp0 (1) -> dp1 (4 more) = 5; the other order costs 5+4=9.
  EXPECT_DOUBLE_EQ(pair->options.front().center_time, 5.0);
  EXPECT_EQ(pair->options.front().route, (Route{0, 1}));
}

// ------------------------------------------- Engine equivalence property --

class EngineEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineEquivalenceTest, SequencesMatchExactDp) {
  const Instance inst = RandomInstance(GetParam(), 9, 3);
  for (double epsilon : {kInfinity, 3.0, 1.5}) {
    VdpsConfig config;
    config.epsilon = epsilon;
    config.max_set_size = 3;
    config.max_pareto = 8;
    const auto exact = Canonical(GenerateCVdpsExact(inst, config));
    const auto sequences = Canonical(GenerateCVdpsSequences(inst, config));
    ASSERT_EQ(exact.size(), sequences.size()) << "epsilon=" << epsilon;
    for (const auto& [dps, vals] : exact) {
      auto it = sequences.find(dps);
      ASSERT_NE(it, sequences.end());
      EXPECT_NEAR(std::get<0>(vals), std::get<0>(it->second), 1e-9);
      EXPECT_NEAR(std::get<1>(vals), std::get<1>(it->second), 1e-9);
      EXPECT_NEAR(std::get<2>(vals), std::get<2>(it->second), 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineEquivalenceTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ------------------------------------------------------- Pruning effects --

TEST(PruningTest, SmallerEpsilonNeverAddsEntries) {
  const Instance inst = RandomInstance(42, 10, 2);
  size_t prev = std::numeric_limits<size_t>::max();
  for (double epsilon : {kInfinity, 4.0, 2.0, 1.0, 0.5}) {
    VdpsConfig config;
    config.epsilon = epsilon;
    config.max_set_size = 3;
    const GenerationResult gen = GenerateCVdpsSequences(inst, config);
    EXPECT_LE(gen.entries.size(), prev);
    prev = gen.entries.size();
  }
}

TEST(PruningTest, EpsilonPrunedIsSubsetOfUnpruned) {
  const Instance inst = RandomInstance(43, 10, 2);
  VdpsConfig unpruned;
  unpruned.max_set_size = 3;
  VdpsConfig pruned = unpruned;
  pruned.epsilon = 2.0;
  const auto all = Canonical(GenerateCVdpsSequences(inst, unpruned));
  const auto sub = Canonical(GenerateCVdpsSequences(inst, pruned));
  for (const auto& [dps, vals] : sub) {
    auto it = all.find(dps);
    ASSERT_NE(it, all.end());
    // The pruned search explores a subset of orderings, so its best time
    // cannot beat the unpruned one, and its slack cannot exceed it.
    EXPECT_GE(std::get<1>(vals), std::get<1>(it->second) - 1e-9);
    EXPECT_LE(std::get<2>(vals), std::get<2>(it->second) + 1e-9);
  }
}

TEST(PruningTest, FirstHopNotPruned) {
  // Two far-apart delivery points: with a tiny epsilon both singletons
  // survive (center->dp is never pruned) but the pair does not.
  std::vector<DeliveryPoint> dps;
  dps.emplace_back(Point{5, 0},
                   std::vector<SpatialTask>{SpatialTask{0, 100.0, 1.0}});
  dps.emplace_back(Point{-5, 0},
                   std::vector<SpatialTask>{SpatialTask{1, 100.0, 1.0}});
  Instance inst(Point{0, 0}, std::move(dps), {}, TravelModel(1.0));
  VdpsConfig config;
  config.epsilon = 1.0;
  const GenerationResult gen = GenerateCVdpsSequences(inst, config);
  ASSERT_EQ(gen.entries.size(), 2u);
  EXPECT_EQ(gen.entries[0].dps.size(), 1u);
  EXPECT_EQ(gen.entries[1].dps.size(), 1u);
}

TEST(PruningTest, MaxEntriesTruncates) {
  const Instance inst = RandomInstance(44, 12, 0, 4.0, 4.0, 8.0);
  VdpsConfig config;
  config.max_set_size = 3;
  config.max_entries = 5;
  const GenerationResult gen = GenerateCVdpsSequences(inst, config);
  EXPECT_LE(gen.entries.size(), 5u);
  EXPECT_TRUE(gen.truncated);
}

// ------------------------------------------------------------------ Beam --

TEST(BeamTest, HugeBeamMatchesExhaustiveEnumerator) {
  const Instance inst = RandomInstance(90, 9, 2);
  VdpsConfig config;
  config.epsilon = 3.0;
  config.max_set_size = 3;
  const auto full = Canonical(GenerateCVdpsSequences(inst, config));
  const auto beam = Canonical(GenerateCVdpsBeam(inst, config, 1u << 20));
  ASSERT_EQ(full.size(), beam.size());
  for (const auto& [dps, vals] : full) {
    auto it = beam.find(dps);
    ASSERT_NE(it, beam.end());
    EXPECT_NEAR(std::get<1>(vals), std::get<1>(it->second), 1e-9);
  }
}

TEST(BeamTest, NarrowBeamIsSoundSubset) {
  const Instance inst = RandomInstance(91, 10, 2);
  VdpsConfig config;
  config.max_set_size = 3;
  const auto full = Canonical(GenerateCVdpsSequences(inst, config));
  const GenerationResult narrow = GenerateCVdpsBeam(inst, config, 5);
  EXPECT_LE(narrow.entries.size(), full.size());
  EXPECT_TRUE(narrow.truncated);
  for (const CVdpsEntry& e : narrow.entries) {
    // Soundness: every produced entry exists in the exhaustive catalog and
    // its sequences are genuinely feasible center-origin.
    EXPECT_TRUE(full.count(e.dps)) << "beam invented a set";
    for (const SequenceOption& opt : e.options) {
      const RouteEvaluation eval =
          EvaluateRouteFromCenter(inst, opt.route, 0.0);
      EXPECT_TRUE(eval.feasible);
      EXPECT_NEAR(eval.total_time, opt.center_time, 1e-9);
    }
  }
}

TEST(BeamTest, ScalesToLargeMaxDp) {
  // max_set_size = 6 would explode the exhaustive enumerator on a dense
  // instance; the beam handles it in bounded work.
  const Instance inst = RandomInstance(92, 30, 4, 6.0, 4.0, 9.0);
  VdpsConfig config;
  config.max_set_size = 6;
  const GenerationResult r = GenerateCVdpsBeam(inst, config, 200);
  EXPECT_GT(r.entries.size(), 0u);
  size_t longest = 0;
  for (const CVdpsEntry& e : r.entries) {
    longest = std::max(longest, e.dps.size());
  }
  EXPECT_GE(longest, 4u);  // the beam actually reaches deep levels
}

TEST(BeamTest, PlumbedThroughCatalogGenerate) {
  const Instance inst = RandomInstance(93, 12, 3);
  VdpsConfig config;
  config.max_set_size = 3;
  config.beam_width = 10;
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, config);
  EXPECT_GT(catalog.num_entries(), 0u);
  // Strategies still verify against the instance.
  for (size_t w = 0; w < catalog.num_workers(); ++w) {
    for (const WorkerStrategy& st : catalog.strategies(w)) {
      EXPECT_TRUE(EvaluateRoute(inst, w, st.route).feasible);
    }
  }
}

// --------------------------------------------------------------- Catalog --

TEST(CatalogTest, StrategiesRespectMaxDp) {
  Instance inst = RandomInstance(50, 8, 4);
  VdpsConfig config;
  config.max_set_size = 4;
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, config);
  for (size_t w = 0; w < catalog.num_workers(); ++w) {
    for (const WorkerStrategy& st : catalog.strategies(w)) {
      EXPECT_LE(catalog.entry(st.entry_id).dps.size(),
                inst.worker(w).max_delivery_points);
    }
  }
}

TEST(CatalogTest, StrategiesSortedByPayoffDesc) {
  const Instance inst = RandomInstance(51, 8, 4);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  for (size_t w = 0; w < catalog.num_workers(); ++w) {
    const auto& s = catalog.strategies(w);
    for (size_t i = 1; i < s.size(); ++i) {
      EXPECT_GE(s[i - 1].payoff, s[i].payoff - 1e-12);
    }
  }
}

TEST(CatalogTest, StrategyRoutesAreFeasibleForWorker) {
  const Instance inst = RandomInstance(52, 9, 5);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  for (size_t w = 0; w < catalog.num_workers(); ++w) {
    for (const WorkerStrategy& st : catalog.strategies(w)) {
      const RouteEvaluation eval = EvaluateRoute(inst, w, st.route);
      EXPECT_TRUE(eval.feasible)
          << "worker " << w << " route infeasible";
      EXPECT_NEAR(eval.total_time, st.total_time, 1e-9);
      EXPECT_NEAR(eval.payoff, st.payoff, 1e-9);
      EXPECT_NEAR(eval.total_reward, st.total_reward, 1e-9);
    }
  }
}

TEST(CatalogTest, FarWorkerHasFewerStrategies) {
  // A worker far from the center tolerates less slack, so its strategy set
  // is a subset of a co-located worker's.
  Rng rng(53);
  std::vector<DeliveryPoint> dps;
  for (uint32_t d = 0; d < 6; ++d) {
    dps.emplace_back(Point{rng.Uniform(0, 4), rng.Uniform(0, 4)},
                     std::vector<SpatialTask>{SpatialTask{d, 1.2, 1.0}});
  }
  std::vector<Worker> workers{{{2, 2}, 3}, {{40, 40}, 3}};
  Instance inst(Point{2, 2}, std::move(dps), std::move(workers),
                TravelModel(5.0));
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  EXPECT_GE(catalog.strategies(0).size(), catalog.strategies(1).size());
  EXPECT_EQ(catalog.strategies(1).size(), 0u);  // 53+ km away, 1.2h expiry
}

TEST(CatalogTest, BestOptionForPicksFastestAdmissible) {
  CVdpsEntry entry;
  entry.options = {{{0}, 1.0, 0.5}, {{0}, 2.0, 2.0}};
  EXPECT_DOUBLE_EQ(entry.BestOptionFor(0.0)->center_time, 1.0);
  EXPECT_DOUBLE_EQ(entry.BestOptionFor(1.0)->center_time, 2.0);
  EXPECT_EQ(entry.BestOptionFor(3.0), nullptr);
}

TEST(CatalogTest, BestOptionForEmptyFrontier) {
  CVdpsEntry entry;
  EXPECT_EQ(entry.BestOptionFor(0.0), nullptr);
}

TEST(CatalogTest, BestOptionForOffsetOnSlackBoundary) {
  CVdpsEntry entry;
  entry.options = {{{0}, 1.0, 0.5}, {{0}, 2.0, 2.0}};
  // An offset exactly equal to an option's slack still admits it (the
  // binary search is kEps-tolerant), and the fastest admissible wins.
  EXPECT_DOUBLE_EQ(entry.BestOptionFor(0.5)->center_time, 1.0);
  EXPECT_DOUBLE_EQ(entry.BestOptionFor(2.0)->center_time, 2.0);
  EXPECT_DOUBLE_EQ(entry.BestOptionFor(0.5 + 1e-12)->center_time, 1.0);
  EXPECT_EQ(entry.BestOptionFor(2.0 + 1e-6), nullptr);
}

TEST(CatalogTest, BestOptionForScansLongFrontier) {
  // A long ascending (center_time, slack) frontier: for every offset the
  // binary search must agree with a linear scan.
  CVdpsEntry entry;
  for (uint32_t i = 0; i < 9; ++i) {
    entry.options.push_back({{i}, 1.0 + i, 0.25 * i});
  }
  for (double offset = 0.0; offset < 2.6; offset += 0.05) {
    const SequenceOption* linear = nullptr;
    for (const SequenceOption& o : entry.options) {
      if (o.slack + kEps >= offset) {
        linear = &o;
        break;
      }
    }
    EXPECT_EQ(entry.BestOptionFor(offset), linear) << "offset=" << offset;
  }
}

TEST(CatalogTest, SummaryMentionsCounts) {
  const Instance inst = RandomInstance(54, 6, 2);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  const std::string s = catalog.Summary();
  EXPECT_NE(s.find("entries="), std::string::npos);
  EXPECT_NE(s.find("workers=2"), std::string::npos);
}

TEST(CatalogTest, GMissionPipelineProducesStrategies) {
  GMissionConfig config;
  config.num_tasks = 80;
  config.num_workers = 10;
  GMissionPrepConfig prep;
  prep.num_delivery_points = 20;
  const Instance inst = GenerateGMissionLike(config, prep);
  ASSERT_TRUE(inst.Validate().ok());
  VdpsConfig vdps;
  vdps.epsilon = 2.0;
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, vdps);
  EXPECT_GT(catalog.num_entries(), 0u);
  EXPECT_GT(catalog.MaxStrategiesPerWorker(), 0u);
}

}  // namespace
}  // namespace fta
