#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "datagen/gmission.h"
#include "datagen/synthetic.h"
#include "io/assignment_io.h"
#include "io/csv.h"
#include "io/dataset_io.h"
#include "io/svg.h"
#include "io/trace_io.h"
#include "model/route.h"
#include "util/string_util.h"

namespace fta {
namespace {

// ------------------------------------------------------------------- CSV --

TEST(CsvTest, BasicRows) {
  const auto doc = ParseCsv("a,b,c\n1,2,3\n");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 2u);
  EXPECT_EQ(doc->rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(doc->rows[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(CsvTest, QuotedFieldsWithDelimiters) {
  const auto doc = ParseCsv("\"a,b\",c\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows[0], (std::vector<std::string>{"a,b", "c"}));
}

TEST(CsvTest, DoubledQuoteEscape) {
  const auto doc = ParseCsv("\"say \"\"hi\"\"\",x\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows[0][0], "say \"hi\"");
}

TEST(CsvTest, CrLfLineEndings) {
  const auto doc = ParseCsv("a,b\r\nc,d\r\n");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 2u);
  EXPECT_EQ(doc->rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvTest, SkipsEmptyLinesAndComments) {
  const auto doc = ParseCsv("# header comment\n\na,b\n\n# tail\n");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 1u);
  EXPECT_EQ(doc->rows[0], (std::vector<std::string>{"a", "b"}));
}

TEST(CsvTest, MissingFinalNewline) {
  const auto doc = ParseCsv("a,b");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 1u);
}

TEST(CsvTest, UnterminatedQuoteIsError) {
  EXPECT_FALSE(ParseCsv("\"abc\n").ok());
}

TEST(CsvTest, RoundTripWithQuoting) {
  const std::vector<std::vector<std::string>> rows{
      {"plain", "with,comma", "with\"quote", "multi\nline"},
      {"", "x", "#hash", "y"}};
  const auto doc = ParseCsv(ToCsv(rows));
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows, rows);
}

TEST(CsvTest, CustomDelimiter) {
  const auto doc = ParseCsv("a;b;c\n", ';');
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows[0].size(), 3u);
}

TEST(CsvTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/fta_csv_test.csv";
  const std::vector<std::vector<std::string>> rows{{"x", "1"}, {"y", "2"}};
  ASSERT_TRUE(WriteCsvFile(path, rows).ok());
  const auto doc = ReadCsvFile(path);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows, rows);
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileFails) {
  EXPECT_FALSE(ReadCsvFile("/nonexistent/dir/f.csv").ok());
}

// ------------------------------------------------------------ DatasetIo --

MultiCenterInstance SmallMulti() {
  SynConfig config;
  config.num_centers = 3;
  config.num_workers = 12;
  config.num_delivery_points = 18;
  config.num_tasks = 100;
  config.seed = 21;
  return GenerateSyn(config);
}

TEST(DatasetIoTest, SerializeDeserializeRoundTrip) {
  const MultiCenterInstance multi = SmallMulti();
  const auto back = DeserializeInstances(SerializeInstances(multi));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->centers.size(), multi.centers.size());
  for (size_t c = 0; c < multi.centers.size(); ++c) {
    const Instance& a = multi.centers[c];
    const Instance& b = back->centers[c];
    EXPECT_EQ(a.center(), b.center());
    EXPECT_EQ(a.num_delivery_points(), b.num_delivery_points());
    EXPECT_EQ(a.num_workers(), b.num_workers());
    EXPECT_EQ(a.num_tasks(), b.num_tasks());
    EXPECT_DOUBLE_EQ(a.travel().speed(), b.travel().speed());
    for (size_t d = 0; d < a.num_delivery_points(); ++d) {
      EXPECT_EQ(a.delivery_point(d).location(),
                b.delivery_point(d).location());
      EXPECT_EQ(a.delivery_point(d).tasks(), b.delivery_point(d).tasks());
    }
    EXPECT_EQ(a.workers(), b.workers());
  }
}

TEST(DatasetIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/fta_dataset_test.csv";
  const MultiCenterInstance multi = SmallMulti();
  ASSERT_TRUE(SaveInstances(path, multi).ok());
  const auto back = LoadInstances(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->centers.size(), multi.centers.size());
  EXPECT_EQ(back->num_tasks(), multi.num_tasks());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, RejectsRowsBeforeCenter) {
  EXPECT_FALSE(DeserializeInstances("D,1,2\n").ok());
  EXPECT_FALSE(DeserializeInstances("W,1,2,3\n").ok());
  EXPECT_FALSE(DeserializeInstances("T,0,1,1\n").ok());
}

TEST(DatasetIoTest, RejectsUnknownTag) {
  EXPECT_FALSE(DeserializeInstances("C,0,0,5\nZ,1,2\n").ok());
}

TEST(DatasetIoTest, RejectsTaskToUnknownDeliveryPoint) {
  EXPECT_FALSE(DeserializeInstances("C,0,0,5\nD,1,1\nT,5,1,1\n").ok());
}

TEST(DatasetIoTest, RejectsMalformedNumbers) {
  EXPECT_FALSE(DeserializeInstances("C,zero,0,5\n").ok());
  EXPECT_FALSE(DeserializeInstances("C,0,0,5\nD,1\n").ok());
  EXPECT_FALSE(DeserializeInstances("C,0,0,-5\n").ok());
  EXPECT_FALSE(DeserializeInstances("C,0,0,5\nW,1,1,0\n").ok());
}

TEST(DatasetIoTest, RejectsInvalidTaskExpiry) {
  // Validation runs on each parsed center: non-positive expiry is invalid.
  EXPECT_FALSE(
      DeserializeInstances("C,0,0,5\nD,1,1\nT,0,-2,1\n").ok());
}

TEST(DatasetIoTest, EmptyTextGivesEmptyMulti) {
  const auto multi = DeserializeInstances("");
  ASSERT_TRUE(multi.ok());
  EXPECT_TRUE(multi->centers.empty());
}

TEST(DatasetIoTest, LoadMissingFileFails) {
  EXPECT_FALSE(LoadInstances("/no/such/file.csv").ok());
}

// --------------------------------------------------------------- TraceIo --

RawCrowdData SmallRaw() {
  GMissionConfig config;
  config.num_tasks = 50;
  config.num_workers = 8;
  config.seed = 33;
  return GenerateGMissionRaw(config);
}

TEST(TraceIoTest, RoundTrip) {
  const RawCrowdData raw = SmallRaw();
  const auto back = DeserializeRawTrace(SerializeRawTrace(raw));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->task_locations, raw.task_locations);
  EXPECT_EQ(back->task_expiries, raw.task_expiries);
  EXPECT_EQ(back->task_rewards, raw.task_rewards);
  EXPECT_EQ(back->worker_locations, raw.worker_locations);
}

TEST(TraceIoTest, FileRoundTripFeedsPrepPipeline) {
  const std::string path = ::testing::TempDir() + "/fta_trace.csv";
  const RawCrowdData raw = SmallRaw();
  ASSERT_TRUE(SaveRawTrace(path, raw).ok());
  const auto back = LoadRawTrace(path);
  ASSERT_TRUE(back.ok());
  // The reloaded trace must run through the paper's preparation.
  GMissionPrepConfig prep;
  prep.num_delivery_points = 10;
  const Instance inst = PrepareGMissionInstance(*back, prep);
  EXPECT_TRUE(inst.Validate().ok());
  EXPECT_EQ(inst.num_tasks(), raw.task_locations.size());
  std::remove(path.c_str());
}

TEST(TraceIoTest, RejectsMalformedRows) {
  EXPECT_FALSE(DeserializeRawTrace("task,1,2,3\n").ok());      // missing reward
  EXPECT_FALSE(DeserializeRawTrace("task,1,2,0,1\n").ok());    // expiry <= 0
  EXPECT_FALSE(DeserializeRawTrace("task,1,2,3,-1\n").ok());   // reward < 0
  EXPECT_FALSE(DeserializeRawTrace("worker,1\n").ok());        // missing y
  EXPECT_FALSE(DeserializeRawTrace("courier,1,2\n").ok());     // unknown tag
}

TEST(TraceIoTest, EmptyTraceIsEmptyData) {
  const auto raw = DeserializeRawTrace("# nothing here\n");
  ASSERT_TRUE(raw.ok());
  EXPECT_TRUE(raw->task_locations.empty());
  EXPECT_TRUE(raw->worker_locations.empty());
}

// ---------------------------------------------------------- AssignmentIo --

TEST(AssignmentIoTest, RoundTrip) {
  const MultiCenterInstance multi = SmallMulti();
  const Instance& inst = multi.centers[0];
  // Build a simple valid assignment by hand: distinct singletons.
  Assignment a(inst.num_workers());
  size_t dp = 0;
  for (size_t w = 0; w < inst.num_workers() &&
                     dp < inst.num_delivery_points();
       ++w, ++dp) {
    const Route route{static_cast<uint32_t>(dp)};
    if (EvaluateRoute(inst, w, route).feasible) a.SetRoute(w, route);
  }
  const auto back = DeserializeAssignment(SerializeAssignment(a), inst);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->routes(), a.routes());
}

TEST(AssignmentIoTest, FileRoundTrip) {
  const MultiCenterInstance multi = SmallMulti();
  const Instance& inst = multi.centers[0];
  Assignment a(inst.num_workers());  // all-null is valid too
  const std::string path = ::testing::TempDir() + "/fta_assignment.csv";
  ASSERT_TRUE(SaveAssignment(path, a).ok());
  const auto back = LoadAssignment(path, inst);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_assigned_workers(), 0u);
  std::remove(path.c_str());
}

TEST(AssignmentIoTest, RejectsWorkerCountMismatch) {
  const MultiCenterInstance multi = SmallMulti();
  const Instance& inst = multi.centers[0];
  const std::string off_by_one =
      StrFormat("N,%zu\n", inst.num_workers() + 1);
  EXPECT_FALSE(DeserializeAssignment(off_by_one, inst).ok());
}

TEST(AssignmentIoTest, RejectsBadRows) {
  const MultiCenterInstance multi = SmallMulti();
  const Instance& inst = multi.centers[0];
  const std::string n = StrFormat("N,%zu\n", inst.num_workers());
  EXPECT_FALSE(DeserializeAssignment(n + "A,0\n", inst).ok());   // no stops
  EXPECT_FALSE(DeserializeAssignment(n + "A,9999,0\n", inst).ok());
  EXPECT_FALSE(DeserializeAssignment(n + "A,0,99999\n", inst).ok());
  EXPECT_FALSE(DeserializeAssignment(n + "A,0,0\nA,0,1\n", inst).ok());
  EXPECT_FALSE(DeserializeAssignment("A,0,0\n", inst).ok());  // missing N
  EXPECT_FALSE(DeserializeAssignment(n + "Z,1\n", inst).ok());
}

TEST(AssignmentIoTest, RejectsInvalidAssignments) {
  const MultiCenterInstance multi = SmallMulti();
  const Instance& inst = multi.centers[0];
  const std::string n = StrFormat("N,%zu\n", inst.num_workers());
  // Two workers claiming the same delivery point fails Validate().
  EXPECT_FALSE(
      DeserializeAssignment(n + "A,0,0\nA,1,0\n", inst).ok());
}

// ------------------------------------------------------------------- SVG --

Instance SvgInstance() {
  std::vector<DeliveryPoint> dps;
  dps.emplace_back(Point{1, 1},
                   std::vector<SpatialTask>(3, SpatialTask{0, 10.0, 1.0}));
  dps.emplace_back(Point{4, 2},
                   std::vector<SpatialTask>(1, SpatialTask{1, 10.0, 1.0}));
  std::vector<Worker> workers{{{0, 0}, 2}, {{5, 5}, 2}};
  return Instance(Point{2.5, 2.5}, std::move(dps), std::move(workers),
                  TravelModel(1.0));
}

TEST(SvgTest, BareInstanceHasAllMarkers) {
  const std::string svg = RenderInstanceSvg(SvgInstance());
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // 2 delivery points, 2 workers, 1 center.
  size_t circles = 0, polygons = 0, rects = 0;
  for (size_t pos = 0; (pos = svg.find("<circle", pos)) != std::string::npos;
       ++pos)
    ++circles;
  for (size_t pos = 0; (pos = svg.find("<polygon", pos)) != std::string::npos;
       ++pos)
    ++polygons;
  for (size_t pos = 0; (pos = svg.find("<rect", pos)) != std::string::npos;
       ++pos)
    ++rects;
  EXPECT_EQ(circles, 2u);
  EXPECT_EQ(polygons, 2u);
  EXPECT_EQ(rects, 2u);  // background + center
  EXPECT_EQ(svg.find("<polyline"), std::string::npos);  // no routes drawn
}

TEST(SvgTest, AssignmentDrawsRoutes) {
  const Instance inst = SvgInstance();
  Assignment a(2);
  a.SetRoute(0, {0, 1});
  const std::string svg = RenderInstanceSvg(inst, &a);
  EXPECT_NE(svg.find("<polyline"), std::string::npos);
}

TEST(SvgTest, LabelsOptIn) {
  const Instance inst = SvgInstance();
  SvgOptions options;
  options.label_task_counts = true;
  const std::string svg = RenderInstanceSvg(inst, nullptr, options);
  EXPECT_NE(svg.find("<text"), std::string::npos);
  EXPECT_NE(svg.find(">3</text>"), std::string::npos);
}

TEST(SvgTest, WritesFile) {
  const std::string path = ::testing::TempDir() + "/fta_test.svg";
  ASSERT_TRUE(WriteInstanceSvg(path, SvgInstance()).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_NE(first_line.find("<svg"), std::string::npos);
  in.close();
  std::remove(path.c_str());
}

TEST(SvgTest, DegenerateSinglePointInstance) {
  // Everything at one location: the projector must not divide by zero.
  std::vector<DeliveryPoint> dps;
  dps.emplace_back(Point{1, 1},
                   std::vector<SpatialTask>(1, SpatialTask{0, 5.0, 1.0}));
  Instance inst(Point{1, 1}, std::move(dps), {Worker{{1, 1}, 1}});
  const std::string svg = RenderInstanceSvg(inst);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_EQ(svg.find("nan"), std::string::npos);
  EXPECT_EQ(svg.find("inf"), std::string::npos);
}

}  // namespace
}  // namespace fta
