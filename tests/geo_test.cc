#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "geo/bounding_box.h"
#include "geo/distance_matrix.h"
#include "geo/grid_index.h"
#include "geo/kdtree.h"
#include "geo/point.h"
#include "geo/travel.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace fta {
namespace {

std::vector<Point> RandomPoints(size_t n, Rng& rng, double area = 100.0) {
  std::vector<Point> pts(n);
  for (Point& p : pts) p = {rng.Uniform(0, area), rng.Uniform(0, area)};
  return pts;
}

std::vector<uint32_t> BruteRadius(const std::vector<Point>& pts,
                                  const Point& center, double radius) {
  std::vector<uint32_t> out;
  for (uint32_t i = 0; i < pts.size(); ++i) {
    if (Distance(pts[i], center) <= radius) out.push_back(i);
  }
  return out;
}

// ----------------------------------------------------------------- Point --

TEST(PointTest, Distance) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Distance({1, 1}, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(SquaredDistance({0, 0}, {3, 4}), 25.0);
}

TEST(PointTest, Equality) {
  EXPECT_EQ((Point{1, 2}), (Point{1, 2}));
  EXPECT_NE((Point{1, 2}), (Point{2, 1}));
}

// ----------------------------------------------------------- BoundingBox --

TEST(BoundingBoxTest, EmptyByDefault) {
  BoundingBox box;
  EXPECT_TRUE(box.empty());
  EXPECT_FALSE(box.Contains({0, 0}));
  EXPECT_DOUBLE_EQ(box.width(), 0.0);
}

TEST(BoundingBoxTest, ExtendAndContains) {
  BoundingBox box;
  box.Extend({1, 1});
  box.Extend({3, 5});
  EXPECT_FALSE(box.empty());
  EXPECT_TRUE(box.Contains({2, 3}));
  EXPECT_TRUE(box.Contains({1, 1}));
  EXPECT_FALSE(box.Contains({0.9, 3}));
  EXPECT_DOUBLE_EQ(box.width(), 2.0);
  EXPECT_DOUBLE_EQ(box.height(), 4.0);
}

TEST(BoundingBoxTest, CornersInAnyOrder) {
  BoundingBox box({5, 6}, {1, 2});
  EXPECT_EQ(box.min(), (Point{1, 2}));
  EXPECT_EQ(box.max(), (Point{5, 6}));
}

TEST(BoundingBoxTest, DistanceToPoint) {
  BoundingBox box({0, 0}, {2, 2});
  EXPECT_DOUBLE_EQ(box.Distance({1, 1}), 0.0);   // inside
  EXPECT_DOUBLE_EQ(box.Distance({5, 2}), 3.0);   // right of box
  EXPECT_DOUBLE_EQ(box.Distance({5, 6}), 5.0);   // corner: 3-4-5
}

TEST(BoundingBoxTest, Inflate) {
  BoundingBox box({1, 1}, {2, 2});
  box.Inflate(0.5);
  EXPECT_TRUE(box.Contains({0.6, 0.6}));
  EXPECT_FALSE(box.Contains({0.4, 0.4}));
}

// ------------------------------------------------------------- GridIndex --

TEST(GridIndexTest, EmptyIndex) {
  GridIndex index({});
  EXPECT_EQ(index.size(), 0u);
  EXPECT_TRUE(index.RadiusQuery({0, 0}, 10).empty());
  EXPECT_EQ(index.Nearest({0, 0}), -1);
}

TEST(GridIndexTest, RadiusMatchesBruteForce) {
  Rng rng(31);
  const std::vector<Point> pts = RandomPoints(500, rng);
  GridIndex index(pts, 5.0);
  for (int q = 0; q < 50; ++q) {
    const Point c{rng.Uniform(0, 100), rng.Uniform(0, 100)};
    const double r = rng.Uniform(0, 20);
    EXPECT_EQ(index.RadiusQuery(c, r), BruteRadius(pts, c, r));
  }
}

TEST(GridIndexTest, RadiusIsInclusive) {
  GridIndex index({{0, 0}, {3, 4}});
  EXPECT_EQ(index.RadiusQuery({0, 0}, 5.0).size(), 2u);
  EXPECT_EQ(index.RadiusQuery({0, 0}, 4.999).size(), 1u);
}

TEST(GridIndexTest, NegativeRadiusIsEmpty) {
  GridIndex index({{0, 0}});
  EXPECT_TRUE(index.RadiusQuery({0, 0}, -1.0).empty());
}

TEST(GridIndexTest, NearestMatchesBruteForce) {
  Rng rng(32);
  const std::vector<Point> pts = RandomPoints(300, rng);
  GridIndex index(pts, 3.0);
  for (int q = 0; q < 100; ++q) {
    const Point c{rng.Uniform(-10, 110), rng.Uniform(-10, 110)};
    const int64_t got = index.Nearest(c);
    ASSERT_GE(got, 0);
    double best = kInfinity;
    for (const Point& p : pts) best = std::min(best, Distance(p, c));
    EXPECT_NEAR(Distance(pts[static_cast<size_t>(got)], c), best, 1e-9);
  }
}

TEST(GridIndexTest, SinglePoint) {
  GridIndex index({{7, 7}});
  EXPECT_EQ(index.Nearest({0, 0}), 0);
  EXPECT_EQ(index.RadiusQuery({7, 7}, 0.0),
            (std::vector<uint32_t>{0}));
}

TEST(GridIndexTest, CoincidentPoints) {
  GridIndex index({{1, 1}, {1, 1}, {1, 1}});
  EXPECT_EQ(index.RadiusQuery({1, 1}, 0.1).size(), 3u);
}

// ---------------------------------------------------------------- KdTree --

TEST(KdTreeTest, EmptyTree) {
  KdTree tree({});
  EXPECT_EQ(tree.Nearest({0, 0}), -1);
  EXPECT_TRUE(tree.KNearest({0, 0}, 3).empty());
  EXPECT_TRUE(tree.RadiusQuery({0, 0}, 5).empty());
}

TEST(KdTreeTest, NearestMatchesBruteForce) {
  Rng rng(33);
  const std::vector<Point> pts = RandomPoints(400, rng);
  KdTree tree(pts);
  for (int q = 0; q < 100; ++q) {
    const Point c{rng.Uniform(0, 100), rng.Uniform(0, 100)};
    const int64_t got = tree.Nearest(c);
    ASSERT_GE(got, 0);
    double best = kInfinity;
    for (const Point& p : pts) best = std::min(best, Distance(p, c));
    EXPECT_NEAR(Distance(pts[static_cast<size_t>(got)], c), best, 1e-9);
  }
}

TEST(KdTreeTest, KNearestSortedAndCorrect) {
  Rng rng(34);
  const std::vector<Point> pts = RandomPoints(200, rng);
  KdTree tree(pts);
  const Point c{50, 50};
  const auto knn = tree.KNearest(c, 10);
  ASSERT_EQ(knn.size(), 10u);
  // Sorted by distance.
  for (size_t i = 1; i < knn.size(); ++i) {
    EXPECT_LE(Distance(pts[knn[i - 1]], c), Distance(pts[knn[i]], c) + 1e-12);
  }
  // Matches a brute-force top-10.
  std::vector<double> dists;
  for (const Point& p : pts) dists.push_back(Distance(p, c));
  std::sort(dists.begin(), dists.end());
  EXPECT_NEAR(Distance(pts[knn.back()], c), dists[9], 1e-9);
}

TEST(KdTreeTest, KNearestClampedToTreeSize) {
  KdTree tree({{0, 0}, {1, 1}});
  EXPECT_EQ(tree.KNearest({0, 0}, 5).size(), 2u);
}

TEST(KdTreeTest, RadiusMatchesBruteForce) {
  Rng rng(35);
  const std::vector<Point> pts = RandomPoints(300, rng);
  KdTree tree(pts);
  for (int q = 0; q < 30; ++q) {
    const Point c{rng.Uniform(0, 100), rng.Uniform(0, 100)};
    const double r = rng.Uniform(0, 25);
    EXPECT_EQ(tree.RadiusQuery(c, r), BruteRadius(pts, c, r));
  }
}

// ----------------------------------------------------------- TravelModel --

TEST(TravelModelTest, TravelTimeScalesWithSpeed) {
  const TravelModel walk(5.0);
  EXPECT_DOUBLE_EQ(walk.TravelTime({0, 0}, {0, 10}), 2.0);
  EXPECT_DOUBLE_EQ(walk.TimeForDistance(2.5), 0.5);
  const TravelModel unit(1.0);
  EXPECT_DOUBLE_EQ(unit.TravelTime({0, 0}, {3, 4}), 5.0);
}

// -------------------------------------------------------- DistanceMatrix --

TEST(DistanceMatrixTest, MatchesDirectComputation) {
  const Point origin{0, 0};
  const std::vector<Point> pts{{1, 0}, {0, 2}, {3, 4}};
  const TravelModel travel(2.0);
  DistanceMatrix dm(origin, pts, travel);
  ASSERT_EQ(dm.size(), 3u);
  EXPECT_DOUBLE_EQ(dm.FromOrigin(0), 0.5);
  EXPECT_DOUBLE_EQ(dm.FromOrigin(2), 2.5);
  EXPECT_DOUBLE_EQ(dm.Between(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(dm.Between(0, 1), dm.Between(1, 0));
  EXPECT_DOUBLE_EQ(dm.DistanceBetween(0, 1), Distance(pts[0], pts[1]));
  EXPECT_DOUBLE_EQ(dm.Between(0, 1),
                   travel.TimeForDistance(Distance(pts[0], pts[1])));
}

}  // namespace
}  // namespace fta
