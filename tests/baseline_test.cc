#include <gtest/gtest.h>

#include <vector>

#include "baseline/exhaustive.h"
#include "baseline/gta.h"
#include "baseline/mpta.h"
#include "baseline/random_assignment.h"
#include "util/math_util.h"
#include "util/rng.h"
#include "vdps/catalog.h"

namespace fta {
namespace {

Instance RandomInstance(uint64_t seed, size_t num_dps, size_t num_workers,
                        double area = 8.0) {
  Rng rng(seed);
  std::vector<DeliveryPoint> dps;
  for (uint32_t d = 0; d < num_dps; ++d) {
    std::vector<SpatialTask> tasks;
    const size_t n = 1 + rng.Index(4);
    for (size_t t = 0; t < n; ++t) {
      tasks.push_back(SpatialTask{d, rng.Uniform(1.0, 4.0), 1.0});
    }
    dps.emplace_back(Point{rng.Uniform(0, area), rng.Uniform(0, area)},
                     std::move(tasks));
  }
  std::vector<Worker> workers;
  for (size_t w = 0; w < num_workers; ++w) {
    workers.push_back(
        Worker{{rng.Uniform(0, area), rng.Uniform(0, area)}, 3});
  }
  return Instance(Point{area / 2, area / 2}, std::move(dps),
                  std::move(workers), TravelModel(5.0));
}

// ------------------------------------------------------------------- GTA --

TEST(GtaTest, ProducesValidAssignment) {
  const Instance inst = RandomInstance(1, 10, 5);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  const Assignment a = SolveGta(inst, catalog);
  EXPECT_TRUE(a.Validate(inst).ok());
}

TEST(GtaTest, FirstPickIsGlobalMaxPayoff) {
  const Instance inst = RandomInstance(2, 10, 4);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  double global_best = 0.0;
  for (size_t w = 0; w < inst.num_workers(); ++w) {
    if (!catalog.strategies(w).empty()) {
      global_best = std::max(global_best, catalog.strategies(w)[0].payoff);
    }
  }
  const Assignment a = SolveGta(inst, catalog);
  const std::vector<double> payoffs = a.Payoffs(inst);
  EXPECT_NEAR(Max(payoffs), global_best, 1e-9);
}

TEST(GtaTest, AssignsEveryWorkerWithDisjointOptions) {
  // Plenty of delivery points: greedily everyone should get something.
  const Instance inst = RandomInstance(3, 20, 3);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  bool all_have = true;
  for (size_t w = 0; w < inst.num_workers(); ++w) {
    all_have = all_have && !catalog.strategies(w).empty();
  }
  ASSERT_TRUE(all_have);
  const Assignment a = SolveGta(inst, catalog);
  EXPECT_EQ(a.num_assigned_workers(), inst.num_workers());
}

TEST(GtaTest, EmptyCatalogGivesNullAssignment) {
  Instance inst(Point{0, 0}, {}, {Worker{{1, 1}, 3}});
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  const Assignment a = SolveGta(inst, catalog);
  EXPECT_EQ(a.num_assigned_workers(), 0u);
}

// ------------------------------------------------------------------ MPTA --

class MptaPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MptaPropertyTest, ValidAndBeatsGta) {
  const Instance inst = RandomInstance(GetParam() + 10, 9, 4);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  const MptaResult mpta = SolveMpta(inst, catalog);
  EXPECT_TRUE(mpta.assignment.Validate(inst).ok());
  const Assignment gta = SolveGta(inst, catalog);
  // MPTA maximizes total payoff over a candidate superset of the greedy's
  // reachable outcomes when exact; allow equality.
  if (mpta.exact) {
    EXPECT_GE(mpta.assignment.TotalPayoff(inst),
              gta.TotalPayoff(inst) - 1e-9);
  }
}

TEST_P(MptaPropertyTest, MatchesExhaustiveTotalOnTinyInstances) {
  // Tiny on purpose: with all candidates retained, the same-worker cliques
  // alone give treewidth ~(#strategies per worker), so keep catalogs small
  // enough for the exact DP to accept.
  const Instance inst = RandomInstance(GetParam() + 40, 4, 2);
  VdpsConfig vdps;
  vdps.max_set_size = 2;
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, vdps);
  MptaConfig config;
  config.candidates_per_worker = 0;  // keep all candidates: exact search
  config.max_width = 20;  // worst case: all 2x10 candidates in one clique
  const MptaResult mpta = SolveMpta(inst, catalog, config);
  ASSERT_TRUE(mpta.exact);
  const ExhaustiveResult truth = SolveExhaustive(inst, catalog);
  ASSERT_TRUE(truth.complete);
  EXPECT_NEAR(mpta.assignment.TotalPayoff(inst), truth.max_total_payoff,
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MptaPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(MptaTest, CandidateCapBoundsGraph) {
  const Instance inst = RandomInstance(60, 10, 4);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  MptaConfig config;
  config.candidates_per_worker = 2;
  const MptaResult r = SolveMpta(inst, catalog, config);
  EXPECT_LE(r.num_candidates, 2u * inst.num_workers());
  EXPECT_TRUE(r.assignment.Validate(inst).ok());
}

TEST(MptaTest, GreedyFallbackOnTinyWidthCap) {
  const Instance inst = RandomInstance(61, 10, 5);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  MptaConfig config;
  config.max_width = 0;  // force fallback
  const MptaResult r = SolveMpta(inst, catalog, config);
  EXPECT_FALSE(r.exact);
  EXPECT_TRUE(r.assignment.Validate(inst).ok());
}

TEST(MptaTest, EmptyInstance) {
  Instance inst(Point{0, 0}, {}, {});
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  const MptaResult r = SolveMpta(inst, catalog);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.num_candidates, 0u);
}

// ---------------------------------------------------------------- Random --

TEST(RandomAssignmentTest, ValidAndDeterministicPerSeed) {
  const Instance inst = RandomInstance(70, 10, 5);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  Rng rng1(5), rng2(5), rng3(6);
  const Assignment a = SolveRandom(inst, catalog, rng1);
  const Assignment b = SolveRandom(inst, catalog, rng2);
  const Assignment c = SolveRandom(inst, catalog, rng3);
  EXPECT_TRUE(a.Validate(inst).ok());
  EXPECT_EQ(a.routes(), b.routes());
  (void)c;  // different seed may or may not differ; validity is what counts
  EXPECT_TRUE(c.Validate(inst).ok());
}

// ------------------------------------------------------------ Exhaustive --

TEST(ExhaustiveTest, FindsFairestOnHandBuiltInstance) {
  // Two symmetric workers, two symmetric singleton delivery points: the
  // fairest complete assignment gives one to each (P_dif = 0).
  std::vector<DeliveryPoint> dps;
  dps.emplace_back(Point{1, 0},
                   std::vector<SpatialTask>{SpatialTask{0, 10.0, 1.0}});
  dps.emplace_back(Point{-1, 0},
                   std::vector<SpatialTask>{SpatialTask{1, 10.0, 1.0}});
  std::vector<Worker> workers{{{0, 1}, 1}, {{0, -1}, 1}};
  Instance inst(Point{0, 0}, std::move(dps), std::move(workers),
                TravelModel(1.0));
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  const ExhaustiveResult r = SolveExhaustive(inst, catalog);
  ASSERT_TRUE(r.complete);
  EXPECT_NEAR(r.fairest_pdif, 0.0, 1e-9);
  EXPECT_GT(r.fairest_avg, 0.0);
  EXPECT_EQ(r.fairest.num_assigned_workers(), 2u);
}

TEST(ExhaustiveTest, SecondaryObjectiveBreaksTies) {
  // All-null is perfectly fair (P_dif = 0) but the symmetric full
  // assignment is also fair with a higher average payoff; the lexicographic
  // objective must pick the latter.
  std::vector<DeliveryPoint> dps;
  dps.emplace_back(Point{2, 0},
                   std::vector<SpatialTask>{SpatialTask{0, 10.0, 1.0}});
  dps.emplace_back(Point{-2, 0},
                   std::vector<SpatialTask>{SpatialTask{1, 10.0, 1.0}});
  std::vector<Worker> workers{{{0, 0}, 1}, {{0, 0}, 1}};
  Instance inst(Point{0, 0}, std::move(dps), std::move(workers),
                TravelModel(1.0));
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  const ExhaustiveResult r = SolveExhaustive(inst, catalog);
  ASSERT_TRUE(r.complete);
  EXPECT_NEAR(r.fairest_pdif, 0.0, 1e-9);
  EXPECT_EQ(r.fairest.num_assigned_workers(), 2u);
}

TEST(ExhaustiveTest, StateCapMarksIncomplete) {
  const Instance inst = RandomInstance(80, 8, 4);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  const ExhaustiveResult r = SolveExhaustive(inst, catalog, 10);
  EXPECT_FALSE(r.complete);
  EXPECT_GE(r.states_explored, 10u);
}

TEST(ExhaustiveTest, ResultsAreValidAssignments) {
  const Instance inst = RandomInstance(81, 6, 3);
  VdpsConfig vdps;
  vdps.max_set_size = 2;
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, vdps);
  const ExhaustiveResult r = SolveExhaustive(inst, catalog);
  ASSERT_TRUE(r.complete);
  EXPECT_TRUE(r.fairest.Validate(inst).ok());
  EXPECT_TRUE(r.max_total.Validate(inst).ok());
  EXPECT_GE(r.max_total_payoff,
            r.fairest_avg * static_cast<double>(inst.num_workers()) - 1e-9);
}

}  // namespace
}  // namespace fta
