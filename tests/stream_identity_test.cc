#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "datagen/workload.h"
#include "obs/window.h"
#include "stream/dispatcher.h"
#include "util/status.h"

// Cold ≡ warm differential battery for the streaming dispatcher.
//
// kColdSeeded regenerates the catalog from scratch every tick and seeds the
// solver from the projected previous equilibrium; kWarm delta-patches the
// catalog (VdpsCatalog::ApplyDelta) and uses the same seed. Both fold every
// tick's full catalog (entries, strategies, inverted index, ε-adjacency)
// and assignment into one FNV-1a whole-run digest, so a single EXPECT_EQ
// pins, bit for bit, across seeds × thread counts × solvers:
//   * delta-patched catalog ≡ regenerated catalog, and
//   * warm-started convergence ≡ cold(-seeded) convergence — same final
//     assignment, Definition-8 valid (validated each tick inside Step()).

namespace fta {
namespace {

ChurnWorkloadConfig SmallChurn() {
  ChurnWorkloadConfig churn;
  churn.horizon_hours = 1.0;
  churn.tasks.base_rate_per_hour = 40.0;
  churn.tasks.peak_hours = {0.5};
  churn.worker_rate_per_hour = 15.0;
  churn.area_size = 6.0;
  churn.mean_worker_dwell_hours = 0.5;
  churn.mean_task_patience_hours = 0.4;
  return churn;
}

StreamConfig SmallStream(uint64_t seed, size_t threads, StreamSolver solver) {
  StreamConfig config;
  config.center = Point{3.0, 3.0};
  config.tick_period = 0.1;
  config.max_ticks = 10;
  config.solver = solver;
  config.vdps.epsilon = 2.0;
  config.vdps.max_set_size = 3;
  config.vdps.num_threads = threads;
  config.fgt.engine.num_threads = threads;
  config.iegt.engine.num_threads = threads;
  config.seed = seed;
  config.digest_catalog = true;
  return config;
}

uint64_t RunDigest(const StreamConfig& config,
                   const std::vector<StreamEvent>& events) {
  StreamDispatcher dispatcher(config, events);
  StatusOr<StreamResult> result = dispatcher.Run();
  EXPECT_TRUE(result.ok()) << result.status().message();
  return result->digest;
}

TEST(StreamIdentityTest, WarmEqualsColdSeededAcrossSeedsThreadsSolvers) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    const std::vector<StreamEvent> events =
        GenerateChurnEvents(SmallChurn(), seed * 1000);
    for (const StreamSolver solver : {StreamSolver::kFgt, StreamSolver::kIegt}) {
      uint64_t reference = 0;
      bool have_reference = false;
      for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
        StreamConfig cold = SmallStream(seed, threads, solver);
        cold.policy = ResolvePolicy::kColdSeeded;
        StreamConfig warm = SmallStream(seed, threads, solver);
        warm.policy = ResolvePolicy::kWarm;
        const uint64_t cold_digest = RunDigest(cold, events);
        const uint64_t warm_digest = RunDigest(warm, events);
        EXPECT_EQ(warm_digest, cold_digest)
            << "seed=" << seed << " threads=" << threads
            << " solver=" << StreamSolverName(solver);
        // Thread count must not change the stream either (catalogs and
        // best responses are bit-identical at any parallelism).
        if (!have_reference) {
          reference = cold_digest;
          have_reference = true;
        }
        EXPECT_EQ(cold_digest, reference)
            << "seed=" << seed << " threads=" << threads
            << " solver=" << StreamSolverName(solver);
      }
    }
  }
}

TEST(StreamIdentityTest, WarmTicksActuallyUseDeltas) {
  const std::vector<StreamEvent> events =
      GenerateChurnEvents(SmallChurn(), 7);
  StreamConfig config = SmallStream(7, 1, StreamSolver::kFgt);
  config.policy = ResolvePolicy::kWarm;
  StreamDispatcher dispatcher(config, events);
  StatusOr<StreamResult> result = dispatcher.Run();
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result->counters.regens, 1u);  // tick 0 only
  EXPECT_EQ(result->counters.deltas, result->counters.ticks - 1);
  EXPECT_GT(result->counters.delta.deltas_applied, 0u);
}

TEST(StreamIdentityTest, ColdSeededTicksAlwaysRegenerate) {
  const std::vector<StreamEvent> events =
      GenerateChurnEvents(SmallChurn(), 7);
  StreamConfig config = SmallStream(7, 1, StreamSolver::kFgt);
  config.policy = ResolvePolicy::kColdSeeded;
  StreamDispatcher dispatcher(config, events);
  StatusOr<StreamResult> result = dispatcher.Run();
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result->counters.regens, result->counters.ticks);
  EXPECT_EQ(result->counters.deltas, 0u);
}

TEST(StreamIdentityTest, TelemetryOnOffAssignmentsAreBitIdentical) {
  // Telemetry is strictly an observer (dispatcher phase 7, after the
  // digest fold): with it on (the default) and off, a full stream run must
  // fold bit-identical whole-run digests — while the telemetry side really
  // does observe every tick into its rolling windows.
  const std::vector<StreamEvent> events =
      GenerateChurnEvents(SmallChurn(), 31);
  for (const StreamSolver solver :
       {StreamSolver::kFgt, StreamSolver::kIegt}) {
    StreamConfig on = SmallStream(5, 2, solver);
    on.policy = ResolvePolicy::kWarm;
    StreamConfig off = on;
    off.telemetry.enabled = false;

    StreamDispatcher instrumented(on, events);
    StatusOr<StreamResult> with = instrumented.Run();
    ASSERT_TRUE(with.ok()) << with.status().message();
    ASSERT_NE(instrumented.telemetry(), nullptr);
    const obs::WindowStats tick_stats =
        instrumented.telemetry()->tick_window().Stats();
    EXPECT_EQ(tick_stats.count(), with->counters.ticks);

    StreamDispatcher bare(off, events);
    StatusOr<StreamResult> without = bare.Run();
    ASSERT_TRUE(without.ok()) << without.status().message();
    EXPECT_EQ(bare.telemetry(), nullptr);
    EXPECT_EQ(with->digest, without->digest)
        << "solver=" << StreamSolverName(solver);
  }
}

TEST(StreamIdentityTest, DifferentSeedsProduceDifferentStreams) {
  const StreamConfig config = SmallStream(1, 1, StreamSolver::kFgt);
  const uint64_t a =
      RunDigest(config, GenerateChurnEvents(SmallChurn(), 1000));
  const uint64_t b =
      RunDigest(config, GenerateChurnEvents(SmallChurn(), 2000));
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace fta
