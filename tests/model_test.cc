#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "model/assignment.h"
#include "model/instance.h"
#include "model/route.h"

namespace fta {
namespace {

/// An instance in the spirit of Figure 1: a center, two workers, and five
/// delivery points with unit-reward task bundles. Unit speed so travel
/// time == distance.
Instance Figure1Style() {
  std::vector<DeliveryPoint> dps;
  // dp0 near the center with 6 tasks, then a chain of further points.
  dps.emplace_back(Point{3, 3},
                   std::vector<SpatialTask>(6, SpatialTask{0, 8.0, 1.0}));
  dps.emplace_back(Point{4, 3.5},
                   std::vector<SpatialTask>(3, SpatialTask{1, 8.0, 1.0}));
  dps.emplace_back(Point{4.5, 2.5},
                   std::vector<SpatialTask>(4, SpatialTask{2, 8.0, 1.0}));
  dps.emplace_back(Point{1, 3},
                   std::vector<SpatialTask>(5, SpatialTask{3, 8.0, 1.0}));
  dps.emplace_back(Point{0.5, 1},
                   std::vector<SpatialTask>(2, SpatialTask{4, 8.0, 1.0}));
  std::vector<Worker> workers{{{1, 2}, 3}, {{3, 1}, 3}};
  return Instance(Point{2, 2}, std::move(dps), std::move(workers),
                  TravelModel(1.0));
}

// -------------------------------------------------------- DeliveryPoint --

TEST(DeliveryPointTest, AggregatesFromConstruction) {
  DeliveryPoint dp(Point{1, 1}, {SpatialTask{0, 2.5, 1.0},
                                 SpatialTask{0, 1.5, 2.0}});
  EXPECT_EQ(dp.task_count(), 2u);
  EXPECT_DOUBLE_EQ(dp.earliest_expiry(), 1.5);
  EXPECT_DOUBLE_EQ(dp.total_reward(), 3.0);
}

TEST(DeliveryPointTest, EmptyHasInfiniteExpiry) {
  DeliveryPoint dp(Point{0, 0}, {});
  EXPECT_TRUE(std::isinf(dp.earliest_expiry()));
  EXPECT_DOUBLE_EQ(dp.total_reward(), 0.0);
}

TEST(DeliveryPointTest, AddTaskUpdatesAggregates) {
  DeliveryPoint dp(Point{0, 0}, {SpatialTask{0, 3.0, 1.0}});
  dp.AddTask(SpatialTask{0, 2.0, 0.5});
  EXPECT_DOUBLE_EQ(dp.earliest_expiry(), 2.0);
  EXPECT_DOUBLE_EQ(dp.total_reward(), 1.5);
  EXPECT_EQ(dp.task_count(), 2u);
}

// -------------------------------------------------------------- Instance --

TEST(InstanceTest, Counts) {
  const Instance inst = Figure1Style();
  EXPECT_EQ(inst.num_delivery_points(), 5u);
  EXPECT_EQ(inst.num_workers(), 2u);
  EXPECT_EQ(inst.num_tasks(), 20u);
  EXPECT_DOUBLE_EQ(inst.total_reward(), 20.0);
}

TEST(InstanceTest, WorkerToCenterTime) {
  const Instance inst = Figure1Style();
  EXPECT_DOUBLE_EQ(inst.WorkerToCenterTime(0), 1.0);  // (1,2) -> (2,2)
  EXPECT_DOUBLE_EQ(inst.WorkerToCenterTime(1), std::sqrt(2.0));
}

TEST(InstanceTest, ValidateAcceptsGoodInstance) {
  EXPECT_TRUE(Figure1Style().Validate().ok());
}

TEST(InstanceTest, ValidateRejectsWrongDestination) {
  std::vector<DeliveryPoint> dps;
  dps.emplace_back(Point{1, 1},
                   std::vector<SpatialTask>{SpatialTask{1, 2.0, 1.0}});
  Instance inst(Point{0, 0}, std::move(dps), {});
  EXPECT_FALSE(inst.Validate().ok());
}

TEST(InstanceTest, ValidateRejectsNonPositiveExpiry) {
  std::vector<DeliveryPoint> dps;
  dps.emplace_back(Point{1, 1},
                   std::vector<SpatialTask>{SpatialTask{0, 0.0, 1.0}});
  Instance inst(Point{0, 0}, std::move(dps), {});
  EXPECT_FALSE(inst.Validate().ok());
}

TEST(InstanceTest, ValidateRejectsNegativeReward) {
  std::vector<DeliveryPoint> dps;
  dps.emplace_back(Point{1, 1},
                   std::vector<SpatialTask>{SpatialTask{0, 2.0, -1.0}});
  Instance inst(Point{0, 0}, std::move(dps), {});
  EXPECT_FALSE(inst.Validate().ok());
}

TEST(InstanceTest, ValidateRejectsZeroMaxDp) {
  Instance inst(Point{0, 0}, {}, {Worker{{1, 1}, 0}});
  EXPECT_FALSE(inst.Validate().ok());
}

TEST(MultiCenterInstanceTest, AggregatesAcrossCenters) {
  MultiCenterInstance multi;
  multi.centers.push_back(Figure1Style());
  multi.centers.push_back(Figure1Style());
  EXPECT_EQ(multi.num_workers(), 4u);
  EXPECT_EQ(multi.num_tasks(), 40u);
  EXPECT_EQ(multi.num_delivery_points(), 10u);
}

// ----------------------------------------------------------------- Route --

TEST(RouteTest, EmptyRouteIsNullStrategy) {
  const Instance inst = Figure1Style();
  const RouteEvaluation eval = EvaluateRoute(inst, 0, {});
  EXPECT_TRUE(eval.feasible);
  EXPECT_DOUBLE_EQ(eval.payoff, 0.0);
  EXPECT_DOUBLE_EQ(eval.total_reward, 0.0);
  EXPECT_DOUBLE_EQ(eval.total_time, 0.0);
}

TEST(RouteTest, SingleHopArrivalAndPayoff) {
  const Instance inst = Figure1Style();
  // Worker 0 at (1,2): 1.0 to center (2,2), then sqrt(2) to dp0 (3,3).
  const RouteEvaluation eval = EvaluateRoute(inst, 0, {0});
  const double expected_time = 1.0 + std::sqrt(2.0);
  ASSERT_EQ(eval.arrivals.size(), 1u);
  EXPECT_NEAR(eval.arrivals[0], expected_time, 1e-12);
  EXPECT_NEAR(eval.total_time, expected_time, 1e-12);
  EXPECT_DOUBLE_EQ(eval.total_reward, 6.0);
  EXPECT_NEAR(eval.payoff, 6.0 / expected_time, 1e-12);
  EXPECT_TRUE(eval.feasible);
}

TEST(RouteTest, MultiHopAccumulatesArrivals) {
  const Instance inst = Figure1Style();
  const RouteEvaluation eval = EvaluateRoute(inst, 0, {0, 1, 2});
  ASSERT_EQ(eval.arrivals.size(), 3u);
  const double leg1 = 1.0 + std::sqrt(2.0);
  const double leg2 = Distance({3, 3}, {4, 3.5});
  const double leg3 = Distance({4, 3.5}, {4.5, 2.5});
  EXPECT_NEAR(eval.arrivals[2], leg1 + leg2 + leg3, 1e-12);
  EXPECT_DOUBLE_EQ(eval.total_reward, 13.0);
  EXPECT_NEAR(eval.payoff, 13.0 / (leg1 + leg2 + leg3), 1e-12);
}

TEST(RouteTest, DeadlineViolationDetected) {
  std::vector<DeliveryPoint> dps;
  dps.emplace_back(Point{10, 0},
                   std::vector<SpatialTask>{SpatialTask{0, 5.0, 1.0}});
  Instance inst(Point{0, 0}, std::move(dps), {Worker{{0, 0}, 3}},
                TravelModel(1.0));
  const RouteEvaluation eval = EvaluateRoute(inst, 0, {0});
  EXPECT_FALSE(eval.feasible);  // arrives at t=10 > expiry 5
  EXPECT_LT(eval.slack, 0.0);
}

TEST(RouteTest, SlackMeasuresStartDelayTolerance) {
  std::vector<DeliveryPoint> dps;
  dps.emplace_back(Point{3, 0},
                   std::vector<SpatialTask>{SpatialTask{0, 5.0, 1.0}});
  Instance inst(Point{0, 0}, std::move(dps), {}, TravelModel(1.0));
  const RouteEvaluation eval = EvaluateRouteFromCenter(inst, {0}, 0.0);
  EXPECT_TRUE(eval.feasible);
  EXPECT_NEAR(eval.slack, 2.0, 1e-12);  // arrives at 3, expires at 5
  // Starting exactly `slack` late is still feasible; any later is not.
  EXPECT_TRUE(EvaluateRouteFromCenter(inst, {0}, 2.0).feasible);
  EXPECT_FALSE(EvaluateRouteFromCenter(inst, {0}, 2.1).feasible);
}

TEST(RouteTest, ValidRouteShape) {
  const Instance inst = Figure1Style();
  EXPECT_TRUE(IsValidRouteShape(inst, {}));
  EXPECT_TRUE(IsValidRouteShape(inst, {0, 2, 4}));
  EXPECT_FALSE(IsValidRouteShape(inst, {0, 0}));  // duplicate
  EXPECT_FALSE(IsValidRouteShape(inst, {5}));     // out of range
}

// ------------------------------------------------------------ Assignment --

TEST(AssignmentTest, PayoffsAndMetrics) {
  const Instance inst = Figure1Style();
  Assignment a(2);
  a.SetRoute(0, {0, 1});
  a.SetRoute(1, {2});
  const std::vector<double> payoffs = a.Payoffs(inst);
  ASSERT_EQ(payoffs.size(), 2u);
  EXPECT_GT(payoffs[0], 0.0);
  EXPECT_GT(payoffs[1], 0.0);
  EXPECT_NEAR(a.PayoffDifference(inst), std::fabs(payoffs[0] - payoffs[1]),
              1e-12);
  EXPECT_NEAR(a.AveragePayoff(inst), (payoffs[0] + payoffs[1]) / 2, 1e-12);
  EXPECT_NEAR(a.TotalPayoff(inst), payoffs[0] + payoffs[1], 1e-12);
  EXPECT_EQ(a.num_assigned_workers(), 2u);
  EXPECT_EQ(a.num_covered_delivery_points(), 3u);
  EXPECT_EQ(a.num_covered_tasks(inst), 6u + 3u + 4u);
}

TEST(AssignmentTest, NullWorkersHaveZeroPayoff) {
  const Instance inst = Figure1Style();
  Assignment a(2);
  a.SetRoute(0, {0});
  const std::vector<double> payoffs = a.Payoffs(inst);
  EXPECT_GT(payoffs[0], 0.0);
  EXPECT_DOUBLE_EQ(payoffs[1], 0.0);
  EXPECT_EQ(a.num_assigned_workers(), 1u);
}

TEST(AssignmentTest, ValidateAcceptsDisjointFeasible) {
  const Instance inst = Figure1Style();
  Assignment a(2);
  a.SetRoute(0, {0, 1});
  a.SetRoute(1, {3, 4});
  EXPECT_TRUE(a.Validate(inst).ok());
}

TEST(AssignmentTest, ValidateRejectsOverlap) {
  const Instance inst = Figure1Style();
  Assignment a(2);
  a.SetRoute(0, {0, 1});
  a.SetRoute(1, {1});
  EXPECT_FALSE(a.Validate(inst).ok());
}

TEST(AssignmentTest, ValidateRejectsMaxDpViolation) {
  const Instance inst = Figure1Style();
  Assignment a(2);
  a.SetRoute(0, {0, 1, 2, 3});  // maxDP is 3
  EXPECT_FALSE(a.Validate(inst).ok());
}

TEST(AssignmentTest, ValidateRejectsWorkerCountMismatch) {
  const Instance inst = Figure1Style();
  Assignment a(3);
  EXPECT_FALSE(a.Validate(inst).ok());
}

TEST(AssignmentTest, ValidateRejectsDeadlineMiss) {
  std::vector<DeliveryPoint> dps;
  dps.emplace_back(Point{10, 0},
                   std::vector<SpatialTask>{SpatialTask{0, 5.0, 1.0}});
  Instance inst(Point{0, 0}, std::move(dps), {Worker{{0, 0}, 3}},
                TravelModel(1.0));
  Assignment a(1);
  a.SetRoute(0, {0});
  EXPECT_FALSE(a.Validate(inst).ok());
}

TEST(AssignmentTest, ToStringMentionsAssignedWorkers) {
  const Instance inst = Figure1Style();
  Assignment a(2);
  a.SetRoute(0, {0});
  const std::string s = a.ToString(inst);
  EXPECT_NE(s.find("w0"), std::string::npos);
  EXPECT_EQ(s.find("w1"), std::string::npos);
}

/// The paper's motivating comparison (Section I): a fairness-aware split
/// has a much smaller payoff difference than a greedy assignment where one
/// worker grabs everything. Symmetric two-point geometry makes the fair
/// split perfectly equal.
TEST(AssignmentTest, FairSplitBeatsGreedyOnFairness) {
  std::vector<DeliveryPoint> dps;
  dps.emplace_back(Point{1, 0},
                   std::vector<SpatialTask>(4, SpatialTask{0, 10.0, 1.0}));
  dps.emplace_back(Point{-1, 0},
                   std::vector<SpatialTask>(4, SpatialTask{1, 10.0, 1.0}));
  std::vector<Worker> workers{{{0, 0}, 2}, {{0, 0}, 2}};
  Instance inst(Point{0, 0}, std::move(dps), std::move(workers),
                TravelModel(1.0));
  Assignment greedy(2);  // w0 grabs both delivery points
  greedy.SetRoute(0, {0, 1});
  Assignment fair(2);  // one each: identical payoffs
  fair.SetRoute(0, {0});
  fair.SetRoute(1, {1});
  EXPECT_DOUBLE_EQ(fair.PayoffDifference(inst), 0.0);
  EXPECT_GT(greedy.PayoffDifference(inst), 0.0);
  EXPECT_LT(fair.PayoffDifference(inst), greedy.PayoffDifference(inst));
  // And the fair split even has the better average payoff here (no long
  // cross-town leg).
  EXPECT_GT(fair.AveragePayoff(inst), greedy.AveragePayoff(inst));
}

}  // namespace
}  // namespace fta
