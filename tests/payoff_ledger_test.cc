// Correctness battery for the incremental sorted payoff ledger: randomized
// churn against the OthersView rebuild oracle with exact (bit-level)
// comparisons, edge cases (empty, single worker, ties, signed zeros,
// extreme moves), sort-free metric agreement, counter accounting, and the
// Validate() contract.

#include "game/payoff_ledger.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "game/iau.h"
#include "game/potential.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace fta {
namespace {

std::vector<double> OthersOf(const std::vector<double>& payoffs, size_t w) {
  std::vector<double> others;
  others.reserve(payoffs.empty() ? 0 : payoffs.size() - 1);
  for (size_t j = 0; j < payoffs.size(); ++j) {
    if (j != w) others.push_back(payoffs[j]);
  }
  return others;
}

/// Every worker's exclude-one view must match a freshly built OthersView
/// bit for bit — EXPECT_EQ on doubles, no tolerance. This is the whole
/// point of the ledger: not approximately the same, the same.
void ExpectMatchesOracle(PayoffLedger& ledger,
                         const std::vector<double>& payoffs,
                         const IauParams& params) {
  ASSERT_TRUE(ledger.Validate(payoffs).ok());
  for (size_t w = 0; w < payoffs.size(); ++w) {
    const OthersView oracle(OthersOf(payoffs, w));
    const LedgerView& view = ledger.Exclude(w);
    ASSERT_EQ(view.size(), payoffs.size() - 1);
    // Probe own-payoff values around and inside the others' range,
    // including the worker's actual payoff and zero (the null strategy).
    const std::vector<double> probes = {payoffs[w], 0.0,  -1.0, 0.5,
                                        1.0,        3.25, 100.0};
    for (double own : probes) {
      EXPECT_EQ(view.Mp(own), oracle.Mp(own)) << "w=" << w << " own=" << own;
      EXPECT_EQ(view.Lp(own), oracle.Lp(own)) << "w=" << w << " own=" << own;
      EXPECT_EQ(view.Iau(own, params), oracle.Iau(own, params))
          << "w=" << w << " own=" << own;
    }
  }
}

TEST(PayoffLedgerTest, RandomChurnMatchesOthersViewOracle) {
  const IauParams params;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    const size_t n = 2 + rng.Index(12);
    std::vector<double> payoffs(n);
    for (double& p : payoffs) p = rng.Uniform(0.0, 5.0);
    PayoffLedger ledger(payoffs);
    ExpectMatchesOracle(ledger, payoffs, params);
    for (int step = 0; step < 100; ++step) {
      const size_t w = rng.Index(n);
      // Mix fresh values, exact duplicates of other workers (ties), zeros
      // (null strategy), and no-op rewrites of the current payoff.
      double next;
      switch (rng.Index(4)) {
        case 0:
          next = rng.Uniform(0.0, 5.0);
          break;
        case 1:
          next = payoffs[rng.Index(n)];
          break;
        case 2:
          next = 0.0;
          break;
        default:
          next = payoffs[w];
          break;
      }
      payoffs[w] = next;
      ledger.Update(w, next);
      ExpectMatchesOracle(ledger, payoffs, params);
    }
  }
}

TEST(PayoffLedgerTest, ExtremeMovesSlideAcrossTheWholeArray) {
  const IauParams params;
  std::vector<double> payoffs = {1.0, 2.0, 3.0, 4.0, 5.0};
  PayoffLedger ledger(payoffs);
  // Smallest worker jumps above everyone, then back below everyone.
  payoffs[0] = 10.0;
  ledger.Update(0, 10.0);
  ExpectMatchesOracle(ledger, payoffs, params);
  EXPECT_EQ(ledger.counters().memmove_elements, 4u);
  payoffs[0] = -1.0;
  ledger.Update(0, -1.0);
  ExpectMatchesOracle(ledger, payoffs, params);
  EXPECT_EQ(ledger.counters().memmove_elements, 8u);
}

TEST(PayoffLedgerTest, SignedZeroUpdateKeepsSumsExact) {
  const IauParams params;
  std::vector<double> payoffs = {0.0, 1.0, 0.0};
  PayoffLedger ledger(payoffs);
  // -0.0 == 0.0, so this is the equal-value branch: position holds, the
  // stored bit pattern tracks the live payoff (Validate compares bits).
  payoffs[2] = -0.0;
  ledger.Update(2, -0.0);
  ExpectMatchesOracle(ledger, payoffs, params);
  EXPECT_EQ(ledger.PayoffDifference(),
            MeanAbsolutePairwiseDifference(payoffs));
}

TEST(PayoffLedgerTest, EmptyAndSingleWorkerEdgeCases) {
  const IauParams params;
  PayoffLedger empty(std::vector<double>{});
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty.PayoffDifference(), 0.0);
  EXPECT_EQ(empty.Gini(), 0.0);
  EXPECT_TRUE(empty.Validate({}).ok());

  std::vector<double> one = {2.5};
  PayoffLedger ledger(one);
  const LedgerView& view = ledger.Exclude(0);
  EXPECT_EQ(view.size(), 0u);
  // No others: IAU degenerates to the own payoff (Equation 7 with m = 0).
  EXPECT_EQ(view.Iau(2.5, params), 2.5);
  EXPECT_EQ(ledger.PayoffDifference(), 0.0);
  one[0] = 7.0;
  ledger.Update(0, 7.0);
  EXPECT_TRUE(ledger.Validate(one).ok());
  EXPECT_EQ(ledger.value_of(0), 7.0);
}

TEST(PayoffLedgerTest, SortFreeMetricsMatchSortingKernels) {
  Rng rng(42);
  std::vector<double> payoffs(31);
  for (double& p : payoffs) p = rng.Uniform(0.0, 9.0);
  PayoffLedger ledger(payoffs);
  // P_dif is bit-identical to the copy-and-sort wrapper (same kernel, same
  // ascending sequence). Gini matches GiniSorted exactly; against the
  // unsorted Gini only up to the mean's accumulation order.
  EXPECT_EQ(ledger.PayoffDifference(),
            MeanAbsolutePairwiseDifference(payoffs));
  std::vector<double> sorted = payoffs;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(ledger.Gini(), GiniSorted(sorted));
  EXPECT_NEAR(ledger.Gini(), Gini(payoffs), 1e-12);
  EXPECT_EQ(ledger.ExactPotential(payoffs, 0.3),
            ExactPotential(payoffs, 0.3));
  EXPECT_EQ(ledger.sorted(), sorted);
}

TEST(PayoffLedgerTest, CountersAccountForEliminatedWork) {
  std::vector<double> payoffs = {3.0, 1.0, 2.0, 4.0};
  PayoffLedger ledger(payoffs);
  EXPECT_EQ(ledger.counters().sorts_eliminated, 0u);
  ledger.Exclude(0);
  ledger.Exclude(1);
  const LedgerCounters& c = ledger.counters();
  EXPECT_EQ(c.sorts_eliminated, 2u);
  EXPECT_EQ(c.scratch_reuses, 2u);
  // Each rebuild would have allocated a 3-element others vector plus a
  // 4-element prefix array.
  EXPECT_EQ(c.bytes_not_allocated, 2u * 7u * sizeof(double));
  ledger.PayoffDifference();
  EXPECT_EQ(ledger.counters().sorts_eliminated, 3u);
}

TEST(PayoffLedgerTest, ValidateCatchesStaleAndMissizedState) {
  std::vector<double> payoffs = {1.0, 2.0, 3.0};
  PayoffLedger ledger(payoffs);
  EXPECT_TRUE(ledger.Validate(payoffs).ok());
  // Stale: the live payoff moved but the ledger was not told.
  std::vector<double> moved = payoffs;
  moved[1] = 9.0;
  EXPECT_FALSE(ledger.Validate(moved).ok());
  // Bit-level staleness: -0.0 vs 0.0 compare equal as doubles but are
  // different bit patterns, and Validate compares bits.
  std::vector<double> zeros = {0.0, 0.0};
  PayoffLedger zled(zeros);
  std::vector<double> signed_zeros = {0.0, -0.0};
  EXPECT_FALSE(zled.Validate(signed_zeros).ok());
  // Missized.
  EXPECT_FALSE(ledger.Validate({1.0, 2.0}).ok());
}

TEST(PayoffLedgerTest, ResetResizesScratchAndKeepsCounters) {
  std::vector<double> payoffs = {5.0, 1.0};
  PayoffLedger ledger(payoffs);
  ledger.Exclude(0);
  const uint64_t before = ledger.counters().sorts_eliminated;
  std::vector<double> bigger = {4.0, 2.0, 6.0, 1.0, 3.0};
  ledger.Reset(bigger);
  EXPECT_TRUE(ledger.Validate(bigger).ok());
  EXPECT_EQ(ledger.counters().sorts_eliminated, before);
  const IauParams params;
  ExpectMatchesOracle(ledger, bigger, params);
}

}  // namespace
}  // namespace fta
