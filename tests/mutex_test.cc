#include "util/mutex.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace fta {
namespace {

TEST(MutexTest, LockUnlockProtectsACounter) {
  Mutex mu;
  long counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10'000; ++i) {
        mu.Lock();
        ++counter;
        mu.Unlock();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 40'000);
}

TEST(MutexTest, MutexLockReleasesOnScopeExit) {
  Mutex mu;
  int guarded = 0;
  {
    MutexLock lock(&mu);
    guarded = 1;
  }
  // If the scoped lock leaked, this would deadlock.
  MutexLock lock(&mu);
  EXPECT_EQ(guarded, 1);
}

TEST(MutexTest, MutexLockExcludesConcurrentCriticalSections) {
  Mutex mu;
  long counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10'000; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 40'000);
}

TEST(MutexTest, AssertHeldCompilesInsideCriticalSection) {
  Mutex mu;
  MutexLock lock(&mu);
  // Purely an annotation for the static analysis (a no-op at runtime);
  // this pins that it stays callable.
  mu.AssertHeld();
}

TEST(CondVarTest, WaitReleasesTheMutexWhileBlocked) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(mu);
  });
  // If Wait held the mutex while blocked, this lock would deadlock.
  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
}

TEST(CondVarTest, ProducerConsumerHandsOffEveryItem) {
  Mutex mu;
  CondVar item_ready;
  CondVar item_taken;
  int slot = 0;        // 0 = empty
  long consumed = 0;   // sum on the consumer side
  bool done = false;
  constexpr int kItems = 1'000;

  std::thread consumer([&] {
    for (;;) {
      MutexLock lock(&mu);
      while (slot == 0 && !done) item_ready.Wait(mu);
      if (slot == 0 && done) return;
      consumed += slot;
      slot = 0;
      item_taken.NotifyOne();
    }
  });

  long produced = 0;
  for (int i = 1; i <= kItems; ++i) {
    MutexLock lock(&mu);
    while (slot != 0) item_taken.Wait(mu);
    slot = i;
    produced += i;
    item_ready.NotifyOne();
  }
  {
    MutexLock lock(&mu);
    while (slot != 0) item_taken.Wait(mu);
    done = true;
  }
  item_ready.NotifyAll();
  consumer.join();
  EXPECT_EQ(consumed, produced);
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  int awake = 0;
  std::vector<std::thread> waiters;
  for (int t = 0; t < 8; ++t) {
    waiters.emplace_back([&] {
      MutexLock lock(&mu);
      while (!go) cv.Wait(mu);
      ++awake;
    });
  }
  {
    MutexLock lock(&mu);
    go = true;
  }
  cv.NotifyAll();
  for (auto& t : waiters) t.join();
  EXPECT_EQ(awake, 8);
}

}  // namespace
}  // namespace fta
