#include "baseline/hungarian.h"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "baseline/exhaustive.h"
#include "baseline/gta.h"
#include "util/rng.h"
#include "vdps/catalog.h"

namespace fta {
namespace {

/// Brute-force max-weight matching for cross-checking (rows <= ~10).
double BruteForceMatching(const std::vector<std::vector<double>>& weights) {
  const size_t rows = weights.size();
  const size_t cols = rows == 0 ? 0 : weights[0].size();
  double best = 0.0;
  std::vector<int32_t> match(rows, -1);
  std::vector<bool> used(cols, false);
  const std::function<void(size_t, double)> rec = [&](size_t r, double acc) {
    if (r == rows) {
      best = std::max(best, acc);
      return;
    }
    rec(r + 1, acc);  // leave row r unmatched
    for (size_t c = 0; c < cols; ++c) {
      if (used[c] || weights[r][c] < 0.0) continue;
      used[c] = true;
      rec(r + 1, acc + weights[r][c]);
      used[c] = false;
    }
  };
  rec(0, 0.0);
  return best;
}

TEST(HungarianTest, EmptyMatrix) {
  const MatchingResult r = MaxWeightBipartiteMatching({});
  EXPECT_TRUE(r.match.empty());
  EXPECT_DOUBLE_EQ(r.weight, 0.0);
}

TEST(HungarianTest, SimpleDiagonalOptimum) {
  const MatchingResult r = MaxWeightBipartiteMatching({{5.0, 1.0},
                                                       {1.0, 5.0}});
  EXPECT_EQ(r.match, (std::vector<int32_t>{0, 1}));
  EXPECT_DOUBLE_EQ(r.weight, 10.0);
}

TEST(HungarianTest, CrossAssignmentWhenBetter) {
  const MatchingResult r = MaxWeightBipartiteMatching({{1.0, 5.0},
                                                       {5.0, 1.0}});
  EXPECT_EQ(r.match, (std::vector<int32_t>{1, 0}));
  EXPECT_DOUBLE_EQ(r.weight, 10.0);
}

TEST(HungarianTest, ForbiddenPairsRespected) {
  // Each row has exactly one allowed column (anti-diagonal).
  const MatchingResult r = MaxWeightBipartiteMatching({{-1.0, 3.0},
                                                       {4.0, -1.0}});
  EXPECT_EQ(r.match, (std::vector<int32_t>{1, 0}));
  EXPECT_DOUBLE_EQ(r.weight, 7.0);
}

TEST(HungarianTest, UnmatchedBeatsForcedCheapPair) {
  // Taking the 9 leaves row 1 with nothing: 9 beats 1 + 2.
  const MatchingResult r = MaxWeightBipartiteMatching({{1.0, 9.0},
                                                       {-1.0, 2.0}});
  EXPECT_EQ(r.match, (std::vector<int32_t>{1, -1}));
  EXPECT_DOUBLE_EQ(r.weight, 9.0);
}

TEST(HungarianTest, RowsCanStayUnmatched) {
  // One column, two rows: only the better row matches.
  const MatchingResult r = MaxWeightBipartiteMatching({{2.0}, {7.0}});
  EXPECT_EQ(r.match[0], -1);
  EXPECT_EQ(r.match[1], 0);
  EXPECT_DOUBLE_EQ(r.weight, 7.0);
}

TEST(HungarianTest, AllForbiddenGivesEmptyMatching) {
  const MatchingResult r = MaxWeightBipartiteMatching({{-1.0, -1.0},
                                                       {-1.0, -1.0}});
  EXPECT_EQ(r.match, (std::vector<int32_t>{-1, -1}));
  EXPECT_DOUBLE_EQ(r.weight, 0.0);
}

TEST(HungarianTest, MatchingIsInjective) {
  Rng rng(8);
  std::vector<std::vector<double>> w(6, std::vector<double>(4));
  for (auto& row : w) {
    for (double& x : row) x = rng.Uniform(0, 10);
  }
  const MatchingResult r = MaxWeightBipartiteMatching(w);
  std::vector<bool> used(4, false);
  for (int32_t c : r.match) {
    if (c < 0) continue;
    EXPECT_FALSE(used[static_cast<size_t>(c)]);
    used[static_cast<size_t>(c)] = true;
  }
}

class HungarianPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HungarianPropertyTest, MatchesBruteForce) {
  Rng rng(GetParam() * 17 + 3);
  for (int trial = 0; trial < 10; ++trial) {
    const size_t rows = 1 + rng.Index(6);
    const size_t cols = 1 + rng.Index(6);
    std::vector<std::vector<double>> w(rows, std::vector<double>(cols));
    for (auto& row : w) {
      for (double& x : row) {
        x = rng.Bernoulli(0.2) ? -1.0 : rng.Uniform(0, 10);  // some forbidden
      }
    }
    const MatchingResult r = MaxWeightBipartiteMatching(w);
    EXPECT_NEAR(r.weight, BruteForceMatching(w), 1e-6);
    // Reported weight equals the sum over the match vector.
    double sum = 0.0;
    for (size_t i = 0; i < rows; ++i) {
      if (r.match[i] >= 0) sum += w[i][static_cast<size_t>(r.match[i])];
    }
    EXPECT_NEAR(sum, r.weight, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HungarianPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ------------------------------------------------ Singleton-optimal FTA --

Instance SingletonInstance(uint64_t seed, size_t num_dps,
                           size_t num_workers) {
  Rng rng(seed);
  std::vector<DeliveryPoint> dps;
  for (uint32_t d = 0; d < num_dps; ++d) {
    std::vector<SpatialTask> tasks(1 + rng.Index(4),
                                   SpatialTask{d, rng.Uniform(1.0, 4.0), 1.0});
    dps.emplace_back(Point{rng.Uniform(0, 8), rng.Uniform(0, 8)},
                     std::move(tasks));
  }
  std::vector<Worker> workers;
  for (size_t w = 0; w < num_workers; ++w) {
    workers.push_back(Worker{{rng.Uniform(0, 8), rng.Uniform(0, 8)}, 1});
  }
  return Instance(Point{4, 4}, std::move(dps), std::move(workers),
                  TravelModel(5.0));
}

class SingletonOptimalTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SingletonOptimalTest, MatchesExhaustiveMaxTotal) {
  const Instance inst = SingletonInstance(GetParam(), 6, 4);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  const Assignment hungarian = SolveSingletonOptimal(inst, catalog);
  EXPECT_TRUE(hungarian.Validate(inst).ok());
  const ExhaustiveResult truth = SolveExhaustive(inst, catalog);
  ASSERT_TRUE(truth.complete);
  EXPECT_NEAR(hungarian.TotalPayoff(inst), truth.max_total_payoff, 1e-9);
}

TEST_P(SingletonOptimalTest, AtLeastGreedy) {
  const Instance inst = SingletonInstance(GetParam() + 30, 10, 6);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  const Assignment hungarian = SolveSingletonOptimal(inst, catalog);
  const Assignment gta = SolveGta(inst, catalog);
  EXPECT_GE(hungarian.TotalPayoff(inst), gta.TotalPayoff(inst) - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SingletonOptimalTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(SingletonOptimalTest, RoutesAreSingletons) {
  const Instance inst = SingletonInstance(9, 8, 5);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  const Assignment a = SolveSingletonOptimal(inst, catalog);
  for (size_t w = 0; w < a.num_workers(); ++w) {
    EXPECT_LE(a.route(w).size(), 1u);
  }
}

}  // namespace
}  // namespace fta
