#include "game/priority.h"

#include <gtest/gtest.h>

#include <vector>

#include "game/fgt.h"
#include "game/iegt.h"
#include "util/math_util.h"
#include "util/rng.h"
#include "vdps/catalog.h"

namespace fta {
namespace {

Instance RandomInstance(uint64_t seed, size_t num_dps, size_t num_workers,
                        double area = 10.0) {
  Rng rng(seed);
  std::vector<DeliveryPoint> dps;
  for (uint32_t d = 0; d < num_dps; ++d) {
    std::vector<SpatialTask> tasks;
    const size_t n = 1 + rng.Index(4);
    for (size_t t = 0; t < n; ++t) {
      tasks.push_back(SpatialTask{d, rng.Uniform(1.0, 4.0), 1.0});
    }
    dps.emplace_back(Point{rng.Uniform(0, area), rng.Uniform(0, area)},
                     std::move(tasks));
  }
  std::vector<Worker> workers;
  for (size_t w = 0; w < num_workers; ++w) {
    workers.push_back(
        Worker{{rng.Uniform(0, area), rng.Uniform(0, area)}, 3});
  }
  return Instance(Point{area / 2, area / 2}, std::move(dps),
                  std::move(workers), TravelModel(5.0));
}

TEST(PriorityValidationTest, AcceptsPositiveWeights) {
  EXPECT_TRUE(ValidPriorities({1.0, 2.5, 0.1}, 3));
}

TEST(PriorityValidationTest, RejectsBadWeights) {
  EXPECT_FALSE(ValidPriorities({1.0, 2.0}, 3));       // wrong count
  EXPECT_FALSE(ValidPriorities({1.0, 0.0, 1.0}, 3));  // zero
  EXPECT_FALSE(ValidPriorities({1.0, -1.0, 1.0}, 3)); // negative
  EXPECT_FALSE(ValidPriorities({1.0, kInfinity, 1.0}, 3));
}

TEST(PriorityPayoffDifferenceTest, AllOnesReducesToPdif) {
  const std::vector<double> payoffs{1.0, 3.0, 2.0};
  EXPECT_NEAR(PriorityPayoffDifference(payoffs, {1.0, 1.0, 1.0}),
              MeanAbsolutePairwiseDifference(payoffs), 1e-12);
}

TEST(PriorityPayoffDifferenceTest, ProportionalPayoffsArePerfectlyFair) {
  // Payoffs exactly proportional to priorities -> zero weighted P_dif.
  const std::vector<double> priorities{1.0, 2.0, 4.0};
  const std::vector<double> payoffs{3.0, 6.0, 12.0};
  EXPECT_NEAR(PriorityPayoffDifference(payoffs, priorities), 0.0, 1e-12);
}

TEST(PriorityPayoffDifferenceTest, EqualPayoffsUnfairUnderSkewedPriorities) {
  const std::vector<double> priorities{1.0, 4.0};
  const std::vector<double> payoffs{2.0, 2.0};
  EXPECT_GT(PriorityPayoffDifference(payoffs, priorities), 0.0);
}

TEST(PriorityIauTest, UnitPriorityReducesToIau) {
  const std::vector<double> others{1.0, 4.0};
  const std::vector<double> unit{1.0, 1.0};
  const IauParams params{0.5, 0.5};
  EXPECT_NEAR(PriorityIau(2.0, 1.0, others, unit, params),
              Iau(2.0, others, params), 1e-12);
}

TEST(PriorityIauTest, HighPriorityWorkerToleratesHigherPayoff) {
  // A worker earning 4 among others earning 2: under equal priorities the
  // LP penalty bites; if the worker's priority is 2 the outcome is exactly
  // proportional and the penalty vanishes.
  const std::vector<double> others{2.0, 2.0};
  const std::vector<double> other_prios{1.0, 1.0};
  const IauParams params{0.5, 0.5};
  const double equal_prio = PriorityIau(4.0, 1.0, others, other_prios, params);
  const double high_prio = PriorityIau(4.0, 2.0, others, other_prios, params);
  EXPECT_LT(equal_prio, 4.0);                // penalized
  EXPECT_NEAR(high_prio, 4.0, 1e-12);        // 4/2 == 2 == others: no penalty
}

class PriorityFgtTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PriorityFgtTest, AllOnesMatchesPlainFgt) {
  const Instance inst = RandomInstance(GetParam(), 10, 5);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  FgtConfig plain;
  plain.seed = GetParam() + 1;
  PriorityFgtConfig prio;
  prio.priorities.assign(inst.num_workers(), 1.0);
  prio.seed = GetParam() + 1;
  const GameResult a = SolveFgt(inst, catalog, plain);
  const GameResult b = SolvePriorityFgt(inst, catalog, prio);
  EXPECT_EQ(a.assignment.routes(), b.assignment.routes());
}

TEST_P(PriorityFgtTest, ConvergesToValidAssignment) {
  const Instance inst = RandomInstance(GetParam() + 20, 10, 5);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  Rng rng(GetParam());
  PriorityFgtConfig config;
  for (size_t w = 0; w < inst.num_workers(); ++w) {
    config.priorities.push_back(rng.Uniform(0.5, 3.0));
  }
  const GameResult result = SolvePriorityFgt(inst, catalog, config);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.assignment.Validate(inst).ok());
}

/// Reproduction finding: for beta < 1 the IAU is strictly increasing in
/// the worker's own payoff, so a per-worker monotone rescaling (priority)
/// cannot change any best response — priority-FGT *provably* coincides
/// with plain FGT under the paper's alpha = beta = 0.5. This test pins the
/// finding down (a) analytically on the Iau function and (b) end to end.
TEST_P(PriorityFgtTest, CoincidesWithPlainFgtForBetaBelowOne) {
  // (a) Monotonicity of IAU in own payoff for beta < 1.
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> others(1 + rng.Index(10));
    for (double& p : others) p = rng.Uniform(0, 5);
    const IauParams params{rng.Uniform(0, 2.0), rng.Uniform(0, 0.99)};
    const double lo = rng.Uniform(0, 5);
    const double hi = lo + rng.Uniform(0.01, 2.0);
    EXPECT_LT(Iau(lo, others, params), Iau(hi, others, params));
  }
  // (b) End to end with skewed priorities.
  const Instance inst = RandomInstance(GetParam() * 100 + 9, 12, 6);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  PriorityFgtConfig config;
  for (size_t w = 0; w < inst.num_workers(); ++w) {
    config.priorities.push_back(w % 2 == 0 ? 1.0 : 3.0);
  }
  config.seed = GetParam();
  FgtConfig plain;
  plain.seed = GetParam();
  EXPECT_EQ(SolvePriorityFgt(inst, catalog, config).assignment.routes(),
            SolveFgt(inst, catalog, plain).assignment.routes());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PriorityFgtTest,
                         ::testing::Values(1, 2, 3, 4));

// --------------------------------------------------------- Priority IEGT --

class PriorityIegtTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PriorityIegtTest, AllOnesMatchesPlainIegt) {
  const Instance inst = RandomInstance(GetParam() + 70, 10, 5);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  IegtConfig plain;
  plain.seed = GetParam() + 2;
  PriorityIegtConfig prio;
  prio.priorities.assign(inst.num_workers(), 1.0);
  prio.seed = GetParam() + 2;
  EXPECT_EQ(SolveIegt(inst, catalog, plain).assignment.routes(),
            SolvePriorityIegt(inst, catalog, prio).assignment.routes());
}

TEST_P(PriorityIegtTest, ConvergesToValidAssignment) {
  const Instance inst = RandomInstance(GetParam() + 80, 12, 6);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  PriorityIegtConfig config;
  Rng rng(GetParam());
  for (size_t w = 0; w < inst.num_workers(); ++w) {
    config.priorities.push_back(rng.Uniform(0.5, 3.0));
  }
  config.seed = GetParam();
  const GameResult result = SolvePriorityIegt(inst, catalog, config);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.assignment.Validate(inst).ok());
}

TEST_P(PriorityIegtTest, ReducesWeightedUnfairnessVsPlainIegt) {
  // Skewed priorities: the priority-aware evolution should produce a lower
  // priority-weighted P_dif than priority-blind IEGT, summed over seeds
  // (individual seeds may tie).
  double weighted_prio = 0.0, weighted_plain = 0.0;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const Instance inst = RandomInstance(GetParam() * 131 + seed, 14, 7);
    const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
    std::vector<double> priorities;
    for (size_t w = 0; w < inst.num_workers(); ++w) {
      priorities.push_back(w % 2 == 0 ? 1.0 : 3.0);
    }
    PriorityIegtConfig config;
    config.priorities = priorities;
    config.seed = seed;
    const GameResult prio = SolvePriorityIegt(inst, catalog, config);
    IegtConfig plain;
    plain.seed = seed;
    const GameResult base = SolveIegt(inst, catalog, plain);
    weighted_prio += PriorityPayoffDifference(
        prio.assignment.Payoffs(inst), priorities);
    weighted_plain += PriorityPayoffDifference(
        base.assignment.Payoffs(inst), priorities);
  }
  EXPECT_LE(weighted_prio, weighted_plain + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PriorityIegtTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(PriorityFgtTest, TraceReportsWeightedPdif) {
  const Instance inst = RandomInstance(55, 8, 4);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  PriorityFgtConfig config;
  config.priorities = {1.0, 2.0, 1.0, 2.0};
  config.record_trace = true;
  const GameResult result = SolvePriorityFgt(inst, catalog, config);
  ASSERT_FALSE(result.trace.empty());
  EXPECT_NEAR(result.trace.back().payoff_difference,
              PriorityPayoffDifference(result.assignment.Payoffs(inst),
                                       config.priorities),
              1e-9);
}

TEST(PriorityFgtTest, PotentialMonotoneInNormalizedSpace) {
  const Instance inst = RandomInstance(56, 10, 5);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  PriorityFgtConfig config;
  Rng rng(3);
  for (size_t w = 0; w < inst.num_workers(); ++w) {
    config.priorities.push_back(rng.Uniform(0.5, 2.0));
  }
  config.record_trace = true;
  const GameResult result = SolvePriorityFgt(inst, catalog, config);
  for (size_t i = 1; i < result.trace.size(); ++i) {
    EXPECT_GE(result.trace[i].potential,
              result.trace[i - 1].potential - 1e-9);
  }
}

}  // namespace
}  // namespace fta
