#include "game/equilibrium.h"

#include <gtest/gtest.h>

#include "baseline/gta.h"
#include "game/fgt.h"
#include "model/builder.h"
#include "util/math_util.h"
#include "util/rng.h"
#include "vdps/catalog.h"

namespace fta {
namespace {

Instance RandomInstance(uint64_t seed, size_t num_dps, size_t num_workers) {
  Rng rng(seed);
  InstanceBuilder builder(Point{4, 4});
  builder.Speed(5.0);
  for (size_t d = 0; d < num_dps; ++d) {
    builder.DeliveryPoint({rng.Uniform(0, 8), rng.Uniform(0, 8)},
                          1 + rng.Index(4), rng.Uniform(1.0, 4.0));
  }
  for (size_t w = 0; w < num_workers; ++w) {
    builder.Worker({rng.Uniform(0, 8), rng.Uniform(0, 8)});
  }
  return builder.Build();
}

class EquilibriumSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EquilibriumSeeds, FgtOutputHasZeroRegret) {
  const Instance inst = RandomInstance(GetParam(), 10, 5);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  const GameResult fgt = SolveFgt(inst, catalog);
  ASSERT_TRUE(fgt.converged);
  const EquilibriumReport report =
      AnalyzeEquilibrium(inst, catalog, fgt.assignment);
  EXPECT_TRUE(report.is_nash);
  EXPECT_NEAR(report.max_regret, 0.0, 1e-6);
  EXPECT_EQ(report.deviating_workers, 0u);
}

TEST_P(EquilibriumSeeds, FgtEquilibriumIsInEnumeratedSet) {
  // Tiny instance: enumerate all pure NE, verify FGT lands on one.
  const Instance inst = RandomInstance(GetParam() + 10, 4, 2);
  VdpsConfig vdps;
  vdps.max_set_size = 2;
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, vdps);
  const NashEnumeration nash = EnumeratePureNash(inst, catalog);
  ASSERT_TRUE(nash.complete);
  ASSERT_FALSE(nash.equilibria.empty());  // EPG: at least one pure NE
  const GameResult fgt = SolveFgt(inst, catalog);
  bool found = false;
  for (const Assignment& eq : nash.equilibria) {
    found = found || eq.routes() == fgt.assignment.routes();
  }
  EXPECT_TRUE(found);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquilibriumSeeds,
                         ::testing::Values(1, 2, 3, 4));

TEST(EquilibriumTest, RegretsNonNegative) {
  const Instance inst = RandomInstance(50, 10, 5);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  const Assignment gta = SolveGta(inst, catalog);
  const EquilibriumReport report = AnalyzeEquilibrium(inst, catalog, gta);
  for (const WorkerRegret& r : report.regrets) {
    EXPECT_GE(r.regret, -1e-9);
    EXPECT_GE(r.best_response_utility, r.utility - 1e-9);
  }
}

TEST(EquilibriumTest, AllNullAssignmentRegretIsBestStrategyUtility) {
  const Instance inst = RandomInstance(51, 8, 2);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  const Assignment null_assignment(inst.num_workers());
  const EquilibriumReport report =
      AnalyzeEquilibrium(inst, catalog, null_assignment);
  // With everyone idle, any worker with strategies has positive regret.
  bool any_strategy = false;
  for (size_t w = 0; w < inst.num_workers(); ++w) {
    any_strategy = any_strategy || !catalog.strategies(w).empty();
  }
  if (any_strategy) {
    EXPECT_FALSE(report.is_nash);
    EXPECT_GT(report.max_regret, 0.0);
  }
}

TEST(EquilibriumTest, EnumerationCapMarksIncomplete) {
  const Instance inst = RandomInstance(52, 8, 4);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  const NashEnumeration nash =
      EnumeratePureNash(inst, catalog, IauParams(), 5);
  EXPECT_FALSE(nash.complete);
}

}  // namespace
}  // namespace fta
