// RouteArena unit tests: prefix sharing, on-demand materialization against
// golden routes, and the O(depth) queries the enumerators rely on.

#include <gtest/gtest.h>

#include "model/route.h"
#include "vdps/route_arena.h"

namespace fta {
namespace {

TEST(RouteArenaTest, GoldenRoutesMaterialize) {
  RouteArena arena;
  // Build the route tree
  //   3            (root a)
  //   3 -> 7
  //   3 -> 7 -> 1
  //   3 -> 5       (shares the root with the 3->7 branch)
  //   9            (root b)
  const uint32_t a = arena.Push(RouteArena::kNone, 3);
  const uint32_t a7 = arena.Push(a, 7);
  const uint32_t a71 = arena.Push(a7, 1);
  const uint32_t a5 = arena.Push(a, 5);
  const uint32_t b = arena.Push(RouteArena::kNone, 9);

  EXPECT_EQ(arena.Materialize(a), (Route{3}));
  EXPECT_EQ(arena.Materialize(a7), (Route{3, 7}));
  EXPECT_EQ(arena.Materialize(a71), (Route{3, 7, 1}));
  EXPECT_EQ(arena.Materialize(a5), (Route{3, 5}));
  EXPECT_EQ(arena.Materialize(b), (Route{9}));
  // Five routes, five nodes — the shared prefixes are stored once.
  EXPECT_EQ(arena.num_nodes(), 5u);
}

TEST(RouteArenaTest, MaterializeIntoReplacesContents) {
  RouteArena arena;
  const uint32_t r = arena.Push(RouteArena::kNone, 2);
  const uint32_t r4 = arena.Push(r, 4);
  Route out{100, 101, 102, 103};
  arena.Materialize(r4, out);
  EXPECT_EQ(out, (Route{2, 4}));
  arena.Materialize(r, out);
  EXPECT_EQ(out, (Route{2}));
}

TEST(RouteArenaTest, DepthCountsRouteLength) {
  RouteArena arena;
  uint32_t node = arena.Push(RouteArena::kNone, 0);
  EXPECT_EQ(arena.Depth(node), 1u);
  for (uint32_t d = 1; d < 6; ++d) {
    node = arena.Push(node, d);
    EXPECT_EQ(arena.Depth(node), d + 1);
  }
}

TEST(RouteArenaTest, ContainsWalksOnlyOwnChain) {
  RouteArena arena;
  const uint32_t a = arena.Push(RouteArena::kNone, 3);
  const uint32_t a7 = arena.Push(a, 7);
  const uint32_t a5 = arena.Push(a, 5);
  EXPECT_TRUE(arena.Contains(a7, 3));
  EXPECT_TRUE(arena.Contains(a7, 7));
  EXPECT_FALSE(arena.Contains(a7, 5));  // sibling branch, not this chain
  EXPECT_TRUE(arena.Contains(a5, 5));
  EXPECT_FALSE(arena.Contains(a5, 7));
  EXPECT_FALSE(arena.Contains(a, 7));
}

TEST(RouteArenaTest, ParentAndDpAccessors) {
  RouteArena arena;
  const uint32_t a = arena.Push(RouteArena::kNone, 12);
  const uint32_t a9 = arena.Push(a, 9);
  EXPECT_EQ(arena.parent(a), RouteArena::kNone);
  EXPECT_EQ(arena.dp(a), 12u);
  EXPECT_EQ(arena.parent(a9), a);
  EXPECT_EQ(arena.dp(a9), 9u);
}

TEST(RouteArenaTest, BytesTracksNodeStorage) {
  RouteArena arena;
  EXPECT_EQ(arena.bytes(), 0u);
  arena.Reserve(64);
  EXPECT_EQ(arena.bytes(), 64u * 8u);  // 8-byte (parent, dp) nodes
  for (uint32_t i = 0; i < 64; ++i) arena.Push(RouteArena::kNone, i);
  EXPECT_EQ(arena.bytes(), 64u * 8u);  // no regrowth within the reserve
  EXPECT_EQ(arena.num_nodes(), 64u);
}

}  // namespace
}  // namespace fta
