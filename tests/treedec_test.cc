#include <gtest/gtest.h>

#include <vector>

#include "treedec/graph.h"
#include "treedec/mwis.h"
#include "treedec/tree_decomposition.h"
#include "util/rng.h"

namespace fta {
namespace {

Graph RandomGraph(size_t n, double edge_prob, Rng& rng) {
  Graph g(n);
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t v = u + 1; v < n; ++v) {
      if (rng.Bernoulli(edge_prob)) g.AddEdge(u, v);
    }
  }
  return g;
}

std::vector<double> RandomWeights(size_t n, Rng& rng) {
  std::vector<double> w(n);
  for (double& x : w) x = rng.Uniform(0.1, 10.0);
  return w;
}

// ----------------------------------------------------------------- Graph --

TEST(GraphTest, AddAndQueryEdges) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.Degree(0), 1u);
}

TEST(GraphTest, IgnoresSelfLoopsAndDuplicates) {
  Graph g(3);
  g.AddEdge(1, 1);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphTest, NeighborsSorted) {
  Graph g(5);
  g.AddEdge(2, 4);
  g.AddEdge(2, 0);
  g.AddEdge(2, 3);
  EXPECT_EQ(g.Neighbors(2), (std::vector<uint32_t>{0, 3, 4}));
}

// ----------------------------------------------------- TreeDecomposition --

TEST(TreeDecompositionTest, PathGraphHasWidthOne) {
  Graph g(5);
  for (uint32_t i = 0; i + 1 < 5; ++i) g.AddEdge(i, i + 1);
  const TreeDecomposition td = TreeDecomposition::Build(g);
  EXPECT_EQ(td.width(), 1);
  EXPECT_TRUE(td.Validate(g).ok());
}

TEST(TreeDecompositionTest, CliqueHasFullWidth) {
  Graph g(5);
  for (uint32_t u = 0; u < 5; ++u) {
    for (uint32_t v = u + 1; v < 5; ++v) g.AddEdge(u, v);
  }
  const TreeDecomposition td = TreeDecomposition::Build(g);
  EXPECT_EQ(td.width(), 4);
  EXPECT_TRUE(td.Validate(g).ok());
}

TEST(TreeDecompositionTest, EmptyAndIsolatedVertices) {
  Graph g(3);  // no edges
  const TreeDecomposition td = TreeDecomposition::Build(g);
  EXPECT_EQ(td.width(), 0);
  EXPECT_EQ(td.roots().size(), 3u);
  EXPECT_TRUE(td.Validate(g).ok());
}

class TreeDecompositionPropertyTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TreeDecompositionPropertyTest, RandomGraphsValidate) {
  Rng rng(GetParam());
  for (double p : {0.05, 0.15, 0.35}) {
    const Graph g = RandomGraph(5 + rng.Index(20), p, rng);
    for (auto heuristic : {EliminationHeuristic::kMinDegree,
                           EliminationHeuristic::kMinFill}) {
      const TreeDecomposition td = TreeDecomposition::Build(g, heuristic);
      EXPECT_TRUE(td.Validate(g).ok());
      EXPECT_EQ(td.num_bags(), g.num_vertices());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeDecompositionPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(TreeDecompositionTest, MinFillNoWorseOnGrid) {
  // 3x4 grid graph: treewidth 3; both heuristics should find small widths.
  const int rows = 3, cols = 4;
  Graph g(rows * cols);
  const auto id = [&](int r, int c) {
    return static_cast<uint32_t>(r * cols + c);
  };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.AddEdge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.AddEdge(id(r, c), id(r + 1, c));
    }
  }
  const int w_deg =
      TreeDecomposition::Build(g, EliminationHeuristic::kMinDegree).width();
  const int w_fill =
      TreeDecomposition::Build(g, EliminationHeuristic::kMinFill).width();
  EXPECT_GE(w_deg, 3);
  EXPECT_LE(w_fill, w_deg);
  EXPECT_LE(w_fill, 4);
}

TEST(TreeDecompositionTest, CycleHasWidthTwo) {
  Graph g(6);
  for (uint32_t i = 0; i < 6; ++i) g.AddEdge(i, (i + 1) % 6);
  const TreeDecomposition td = TreeDecomposition::Build(g);
  EXPECT_EQ(td.width(), 2);
  EXPECT_TRUE(td.Validate(g).ok());
}

TEST(TreeDecompositionTest, StarHasWidthOne) {
  Graph g(8);
  for (uint32_t i = 1; i < 8; ++i) g.AddEdge(0, i);
  const TreeDecomposition td = TreeDecomposition::Build(g);
  EXPECT_EQ(td.width(), 1);
  EXPECT_TRUE(td.Validate(g).ok());
}

TEST(TreeDecompositionTest, CompleteBipartiteK33) {
  // treewidth(K_{3,3}) = 3.
  Graph g(6);
  for (uint32_t u = 0; u < 3; ++u) {
    for (uint32_t v = 3; v < 6; ++v) g.AddEdge(u, v);
  }
  const TreeDecomposition td =
      TreeDecomposition::Build(g, EliminationHeuristic::kMinFill);
  EXPECT_GE(td.width(), 3);
  EXPECT_LE(td.width(), 4);  // heuristic may be off by a little
  EXPECT_TRUE(td.Validate(g).ok());
}

TEST(TreeDecompositionTest, ForestHasRootPerComponent) {
  Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);  // two edges + two isolated vertices = 4 components
  const TreeDecomposition td = TreeDecomposition::Build(g);
  EXPECT_EQ(td.roots().size(), 4u);
  EXPECT_TRUE(td.Validate(g).ok());
}

// ------------------------------------------------------------------ MWIS --

TEST(MwisTest, BruteForceSimple) {
  // Triangle with weights 1, 2, 3: best independent set is {2} alone.
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  const MwisResult r = MwisBruteForce(g, {1.0, 2.0, 3.0});
  EXPECT_EQ(r.selected, (std::vector<uint32_t>{2}));
  EXPECT_DOUBLE_EQ(r.weight, 3.0);
}

TEST(MwisTest, BruteForcePath) {
  // Path 0-1-2 with weights 2, 3, 2: {0, 2} beats {1}.
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  const MwisResult r = MwisBruteForce(g, {2.0, 3.0, 2.0});
  EXPECT_EQ(r.selected, (std::vector<uint32_t>{0, 2}));
  EXPECT_DOUBLE_EQ(r.weight, 4.0);
}

class MwisPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MwisPropertyTest, TreeDpMatchesBruteForce) {
  Rng rng(GetParam() * 31 + 7);
  for (double p : {0.1, 0.25, 0.5}) {
    const size_t n = 4 + rng.Index(12);
    const Graph g = RandomGraph(n, p, rng);
    const std::vector<double> w = RandomWeights(n, rng);
    const TreeDecomposition td = TreeDecomposition::Build(g);
    const auto dp = MwisOverTreeDecomposition(g, w, td, 20);
    ASSERT_TRUE(dp.ok()) << dp.status().ToString();
    const MwisResult brute = MwisBruteForce(g, w);
    EXPECT_NEAR(dp->weight, brute.weight, 1e-9);
    // Verify the DP's selection is genuinely independent and sums right.
    double sum = 0.0;
    for (uint32_t v : dp->selected) sum += w[v];
    EXPECT_NEAR(sum, dp->weight, 1e-9);
    for (size_t i = 0; i < dp->selected.size(); ++i) {
      for (size_t j = i + 1; j < dp->selected.size(); ++j) {
        EXPECT_FALSE(g.HasEdge(dp->selected[i], dp->selected[j]));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MwisPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(MwisTest, WidthCapRefuses) {
  Rng rng(99);
  const Graph g = RandomGraph(12, 0.8, rng);  // dense => wide
  const std::vector<double> w = RandomWeights(12, rng);
  const TreeDecomposition td = TreeDecomposition::Build(g);
  const auto r = MwisOverTreeDecomposition(g, w, td, 2);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(MwisTest, GreedyIsIndependentAndNoWorseThanHalfOnPaths) {
  Rng rng(100);
  for (int trial = 0; trial < 10; ++trial) {
    const size_t n = 5 + rng.Index(15);
    const Graph g = RandomGraph(n, 0.2, rng);
    const std::vector<double> w = RandomWeights(n, rng);
    const MwisResult greedy = MwisGreedy(g, w);
    for (size_t i = 0; i < greedy.selected.size(); ++i) {
      for (size_t j = i + 1; j < greedy.selected.size(); ++j) {
        EXPECT_FALSE(g.HasEdge(greedy.selected[i], greedy.selected[j]));
      }
    }
    const MwisResult brute = MwisBruteForce(g, w);
    EXPECT_LE(greedy.weight, brute.weight + 1e-9);
    EXPECT_GT(greedy.weight, 0.0);
  }
}

TEST(MwisTest, EmptyGraph) {
  Graph g(0);
  const TreeDecomposition td = TreeDecomposition::Build(g);
  const auto r = MwisOverTreeDecomposition(g, {}, td);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->selected.empty());
  EXPECT_DOUBLE_EQ(r->weight, 0.0);
}

TEST(MwisTest, DisconnectedComponentsSummed) {
  // Two disjoint edges: take the heavier endpoint of each.
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  const TreeDecomposition td = TreeDecomposition::Build(g);
  const auto r = MwisOverTreeDecomposition(g, {1.0, 5.0, 7.0, 2.0}, td);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->weight, 12.0);
  EXPECT_EQ(r->selected, (std::vector<uint32_t>{1, 2}));
}

}  // namespace
}  // namespace fta
