#include "util/flags.h"

#include <gtest/gtest.h>

#include <vector>

namespace fta {
namespace {

/// argv helper: builds a const char* array from literals.
class Args {
 public:
  explicit Args(std::vector<std::string> args) : store_(std::move(args)) {
    ptrs_.push_back("prog");
    for (const std::string& s : store_) ptrs_.push_back(s.c_str());
  }
  int argc() const { return static_cast<int>(ptrs_.size()); }
  const char* const* argv() const { return ptrs_.data(); }

 private:
  std::vector<std::string> store_;
  std::vector<const char*> ptrs_;
};

TEST(FlagsTest, ParsesEqualsForm) {
  FlagParser parser;
  std::string s = "x";
  int64_t i = 0;
  double d = 0.0;
  parser.AddString("name", &s, "a string");
  parser.AddInt("count", &i, "an int");
  parser.AddDouble("ratio", &d, "a double");
  Args args({"--name=abc", "--count=42", "--ratio=2.5"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(s, "abc");
  EXPECT_EQ(i, 42);
  EXPECT_DOUBLE_EQ(d, 2.5);
}

TEST(FlagsTest, ParsesSpaceForm) {
  FlagParser parser;
  int64_t i = 0;
  parser.AddInt("count", &i, "");
  Args args({"--count", "7"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(i, 7);
}

TEST(FlagsTest, BareBoolFlag) {
  FlagParser parser;
  bool verbose = false;
  parser.AddBool("verbose", &verbose, "");
  Args args({"--verbose"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_TRUE(verbose);
}

TEST(FlagsTest, ExplicitBoolValues) {
  FlagParser parser;
  bool a = false, b = true;
  parser.AddBool("a", &a, "");
  parser.AddBool("b", &b, "");
  Args args({"--a=true", "--b=false"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_TRUE(a);
  EXPECT_FALSE(b);
}

TEST(FlagsTest, PositionalArgsPreserved) {
  FlagParser parser;
  int64_t i = 0;
  parser.AddInt("n", &i, "");
  Args args({"cmd", "--n=3", "file.csv"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(parser.positional(),
            (std::vector<std::string>{"cmd", "file.csv"}));
}

TEST(FlagsTest, DoubleDashEndsFlagParsing) {
  FlagParser parser;
  bool v = false;
  parser.AddBool("v", &v, "");
  Args args({"--", "--v"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_FALSE(v);
  EXPECT_EQ(parser.positional(), (std::vector<std::string>{"--v"}));
}

TEST(FlagsTest, UnknownFlagFails) {
  FlagParser parser;
  Args args({"--nope=1"});
  EXPECT_FALSE(parser.Parse(args.argc(), args.argv()).ok());
}

TEST(FlagsTest, MissingValueFails) {
  FlagParser parser;
  int64_t i = 0;
  parser.AddInt("n", &i, "");
  Args args({"--n"});
  EXPECT_FALSE(parser.Parse(args.argc(), args.argv()).ok());
}

TEST(FlagsTest, BadValueFails) {
  FlagParser parser;
  int64_t i = 0;
  double d = 0.0;
  bool b = false;
  size_t z = 0;
  parser.AddInt("i", &i, "");
  parser.AddDouble("d", &d, "");
  parser.AddBool("b", &b, "");
  parser.AddSizeT("z", &z, "");
  EXPECT_FALSE(parser.Parse(Args({"--i=abc"}).argc(),
                            Args({"--i=abc"}).argv())
                   .ok());
  {
    Args args({"--d=xyz"});
    EXPECT_FALSE(parser.Parse(args.argc(), args.argv()).ok());
  }
  {
    Args args({"--b=maybe"});
    EXPECT_FALSE(parser.Parse(args.argc(), args.argv()).ok());
  }
  {
    Args args({"--z=-3"});
    EXPECT_FALSE(parser.Parse(args.argc(), args.argv()).ok());
  }
}

TEST(FlagsTest, SizeTFlag) {
  FlagParser parser;
  size_t z = 0;
  parser.AddSizeT("z", &z, "");
  Args args({"--z=123"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(z, 123u);
}

TEST(FlagsTest, UsageMentionsFlagsAndDefaults) {
  FlagParser parser;
  int64_t n = 5;
  parser.AddInt("workers", &n, "number of workers");
  const std::string usage = parser.Usage();
  EXPECT_NE(usage.find("--workers"), std::string::npos);
  EXPECT_NE(usage.find("number of workers"), std::string::npos);
  EXPECT_NE(usage.find("default: 5"), std::string::npos);
}

TEST(FlagsTest, DefaultsSurviveWhenUnset) {
  FlagParser parser;
  int64_t n = 5;
  std::string s = "keep";
  parser.AddInt("n", &n, "");
  parser.AddString("s", &s, "");
  Args args({});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(n, 5);
  EXPECT_EQ(s, "keep");
}

}  // namespace
}  // namespace fta
