#include "baseline/single_task.h"

#include <gtest/gtest.h>

#include "baseline/gta.h"
#include "model/builder.h"
#include "util/rng.h"
#include "vdps/catalog.h"

namespace fta {
namespace {

Instance RandomInstance(uint64_t seed, size_t num_dps, size_t num_workers) {
  Rng rng(seed);
  InstanceBuilder builder(Point{4, 4});
  builder.Speed(5.0);
  for (size_t d = 0; d < num_dps; ++d) {
    builder.DeliveryPoint({rng.Uniform(0, 8), rng.Uniform(0, 8)},
                          1 + rng.Index(4), rng.Uniform(1.0, 4.0));
  }
  for (size_t w = 0; w < num_workers; ++w) {
    builder.Worker({rng.Uniform(0, 8), rng.Uniform(0, 8)});
  }
  return builder.Build();
}

class SingleTaskModeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SingleTaskModeTest, ProducesValidAssignments) {
  const Instance inst = RandomInstance(GetParam(), 12, 5);
  for (auto policy : {SingleTaskPolicy::kMinAddedTime,
                      SingleTaskPolicy::kMaxMarginalPayoff}) {
    const Assignment a = SolveSingleTaskMode(inst, policy);
    EXPECT_TRUE(a.Validate(inst).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SingleTaskModeTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(SingleTaskModeTest, UrgentBundleDispatchedFirst) {
  // One worker, two bundles; the tight-deadline bundle must be first on
  // the route even though the other is closer.
  const Instance inst = InstanceBuilder(Point{0, 0})
                            .Speed(1.0)
                            .DeliveryPoint({3, 0}, 1, 3.5)   // urgent, far
                            .DeliveryPoint({1, 0}, 1, 100.0)  // easy, near
                            .Worker({0, 0}, 2)
                            .Build();
  const Assignment a = SolveSingleTaskMode(inst);
  ASSERT_EQ(a.route(0).size(), 2u);
  EXPECT_EQ(a.route(0)[0], 0u);
}

TEST(SingleTaskModeTest, RespectsMaxDp) {
  const Instance inst = InstanceBuilder(Point{0, 0})
                            .Speed(1.0)
                            .DeliveryPoint({1, 0}, 1, 100.0)
                            .DeliveryPoint({2, 0}, 1, 100.0)
                            .DeliveryPoint({3, 0}, 1, 100.0)
                            .Worker({0, 0}, 2)
                            .Build();
  const Assignment a = SolveSingleTaskMode(inst);
  EXPECT_EQ(a.route(0).size(), 2u);
}

TEST(SingleTaskModeTest, UnreachableBundlesSkipped) {
  const Instance inst = InstanceBuilder(Point{0, 0})
                            .Speed(1.0)
                            .DeliveryPoint({50, 0}, 1, 2.0)  // hopeless
                            .DeliveryPoint({1, 0}, 1, 100.0)
                            .Worker({0, 0}, 3)
                            .Build();
  const Assignment a = SolveSingleTaskMode(inst);
  ASSERT_EQ(a.route(0).size(), 1u);
  EXPECT_EQ(a.route(0)[0], 1u);
}

TEST(SingleTaskModeTest, EmptyDeliveryPointsIgnored) {
  const Instance inst = InstanceBuilder(Point{0, 0})
                            .DeliveryPointWithTasks({1, 1}, {})
                            .Worker({0, 0})
                            .Build();
  const Assignment a = SolveSingleTaskMode(inst);
  EXPECT_EQ(a.num_assigned_workers(), 0u);
}

TEST(SingleTaskModeTest, NoWorkersNoCrash) {
  const Instance inst = InstanceBuilder(Point{0, 0})
                            .DeliveryPoint({1, 1}, 2, 5.0)
                            .Build();
  const Assignment a = SolveSingleTaskMode(inst);
  EXPECT_EQ(a.num_workers(), 0u);
}

TEST(SingleTaskModeTest, MinTimeSpreadsMoreThanMaxPayoff) {
  // Statistical smoke check over seeds: cheapest-insertion tends to cover
  // at least as many bundles as the payoff-chaser (which front-loads rich
  // bundles onto few workers). Weak, but catches swapped policies.
  size_t covered_time = 0, covered_payoff = 0;
  for (uint64_t seed = 10; seed < 20; ++seed) {
    const Instance inst = RandomInstance(seed, 14, 4);
    covered_time += SolveSingleTaskMode(inst, SingleTaskPolicy::kMinAddedTime)
                        .num_covered_delivery_points();
    covered_payoff +=
        SolveSingleTaskMode(inst, SingleTaskPolicy::kMaxMarginalPayoff)
            .num_covered_delivery_points();
  }
  EXPECT_GE(covered_time + 3, covered_payoff);  // loose sanity margin
}

}  // namespace
}  // namespace fta
