#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "serve/queue.h"
#include "serve/request.h"
#include "serve/server.h"
#include "util/thread_pool.h"

// Lifecycle and admission-control semantics of the assignment server:
// typed rejections (full queue, unknown center, protocol violations,
// shutdown), drain-on-shutdown answering every admitted request —
// including force-sealing batches whose tick never saw final_in_tick —
// and the paused-server path tests use to fill the queue
// deterministically.

namespace fta {
namespace {

ServerConfig TinyServer(size_t queue_capacity, bool start_paused) {
  ServerConfig config;
  config.num_threads = 2;
  config.queue_capacity = queue_capacity;
  config.tick_period = 0.1;
  config.engine.policy = ResolvePolicy::kWarm;
  config.engine.solver = StreamSolver::kFgt;
  config.engine.vdps.epsilon = 2.0;
  config.engine.vdps.max_set_size = 3;
  config.engine.seed = 11;
  config.start_paused = start_paused;
  return config;
}

std::vector<CenterSpec> TwoCenters() {
  return {{Point{1.0, 1.0}}, {Point{9.0, 9.0}}};
}

ServeRequest TaskRequest(uint32_t center, uint64_t tick, bool final_in_tick) {
  ServeRequest req;
  req.center = center;
  req.tick = tick;
  req.final_in_tick = final_in_tick;
  StreamEvent ev;
  ev.kind = StreamEventKind::kTaskArrival;
  ev.time = static_cast<double>(tick) * 0.1;
  ev.location = Point{1.5, 1.5};
  ev.service_window = 1.0;
  StreamEvent worker;
  worker.kind = StreamEventKind::kWorkerArrival;
  worker.time = ev.time;
  worker.worker.location = Point{1.2, 1.2};
  req.events = {worker, ev};
  return req;
}

TEST(ServeLifecycleTest, QueueFullShedsAndDrainAnswersTheAdmitted) {
  ThreadPool pool(2);
  AssignmentServer server(TinyServer(/*queue_capacity=*/2, true), TwoCenters(),
                          &pool);
  // Paused server: admitted requests pile up against the bound.
  EXPECT_EQ(server.Submit(TaskRequest(0, 0, true)), AdmissionCode::kAdmitted);
  EXPECT_EQ(server.Submit(TaskRequest(1, 0, true)), AdmissionCode::kAdmitted);
  EXPECT_EQ(server.Submit(TaskRequest(0, 1, true)), AdmissionCode::kQueueFull);
  EXPECT_EQ(server.in_flight(), 2u);
  server.Drain();
  EXPECT_EQ(server.in_flight(), 0u);
  EXPECT_EQ(server.counters().admitted, 2u);
  EXPECT_EQ(server.counters().answered, 2u);
  EXPECT_EQ(server.counters().rejected_full, 1u);
  EXPECT_EQ(server.counters().batches, 2u);
  EXPECT_EQ(server.responses(0).size(), 1u);
  EXPECT_EQ(server.responses(1).size(), 1u);
}

TEST(ServeLifecycleTest, DrainForceSealsOpenBatches) {
  ThreadPool pool(2);
  AssignmentServer server(TinyServer(16, false), TwoCenters(), &pool);
  // Never sealed: final_in_tick is false on every request.
  EXPECT_EQ(server.Submit(TaskRequest(0, 0, false)), AdmissionCode::kAdmitted);
  EXPECT_EQ(server.Submit(TaskRequest(0, 0, false)), AdmissionCode::kAdmitted);
  server.Drain();
  EXPECT_EQ(server.counters().answered, 2u);
  ASSERT_EQ(server.responses(0).size(), 1u);
  EXPECT_EQ(server.responses(0)[0].coalesced_requests, 2u);
  EXPECT_EQ(server.responses(0)[0].tick, 0u);
}

TEST(ServeLifecycleTest, TypedRejections) {
  ThreadPool pool(2);
  AssignmentServer server(TinyServer(16, true), TwoCenters(), &pool);
  EXPECT_EQ(server.Submit(TaskRequest(7, 0, true)),
            AdmissionCode::kUnknownCenter);
  // Open batch at tick 2; a different tick while open is out of order.
  EXPECT_EQ(server.Submit(TaskRequest(0, 2, false)), AdmissionCode::kAdmitted);
  EXPECT_EQ(server.Submit(TaskRequest(0, 3, true)),
            AdmissionCode::kOutOfOrder);
  EXPECT_EQ(server.Submit(TaskRequest(0, 2, true)), AdmissionCode::kAdmitted);
  // Sealed: the tick cannot be reopened, and the past is closed.
  EXPECT_EQ(server.Submit(TaskRequest(0, 2, true)),
            AdmissionCode::kOutOfOrder);
  EXPECT_EQ(server.Submit(TaskRequest(0, 1, true)),
            AdmissionCode::kOutOfOrder);
  // Skipping forward is legal: ticks are sparse per center.
  EXPECT_EQ(server.Submit(TaskRequest(0, 9, true)), AdmissionCode::kAdmitted);
  server.Drain();
  EXPECT_EQ(server.Submit(TaskRequest(0, 10, true)),
            AdmissionCode::kShuttingDown);
  EXPECT_EQ(server.counters().rejected_unknown, 1u);
  EXPECT_EQ(server.counters().rejected_order, 3u);
  EXPECT_EQ(server.counters().rejected_shutdown, 1u);
  EXPECT_EQ(server.counters().answered, 3u);
}

TEST(ServeLifecycleTest, CallbackSeesEveryBatchInShardOrder) {
  ThreadPool pool(2);
  AssignmentServer server(TinyServer(16, true), TwoCenters(), &pool);
  Mutex mu;
  std::vector<uint64_t> seqs[2];
  server.set_response_callback([&](const ServeResponse& r) {
    MutexLock lock(&mu);
    seqs[r.center].push_back(r.shard_seq);
  });
  for (uint64_t t = 0; t < 4; ++t) {
    EXPECT_EQ(server.Submit(TaskRequest(0, t, true)), AdmissionCode::kAdmitted);
    EXPECT_EQ(server.Submit(TaskRequest(1, t, true)), AdmissionCode::kAdmitted);
  }
  server.Resume();
  server.Drain();
  for (int c = 0; c < 2; ++c) {
    ASSERT_EQ(seqs[c].size(), 4u);
    for (uint64_t i = 0; i < 4; ++i) EXPECT_EQ(seqs[c][i], i);
  }
}

TEST(ServeLifecycleTest, DrainIsIdempotentAndImpliedByDestruction) {
  ThreadPool pool(2);
  AssignmentServer server(TinyServer(16, false), TwoCenters(), &pool);
  EXPECT_EQ(server.Submit(TaskRequest(0, 0, true)), AdmissionCode::kAdmitted);
  server.Drain();
  server.Drain();
  EXPECT_EQ(server.counters().answered, 1u);
  // Destructor drains again — must be a no-op, not a hang or double count.
}

TEST(ServeLifecycleTest, BoundedQueueCloseWakesPoppers) {
  BoundedQueue<int> q(2);
  EXPECT_EQ(q.TryPush(1), QueuePush::kOk);
  EXPECT_EQ(q.TryPush(2), QueuePush::kOk);
  EXPECT_EQ(q.TryPush(3), QueuePush::kFull);
  q.Close();
  EXPECT_EQ(q.TryPush(4), QueuePush::kClosed);
  int v = 0;
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(q.Pop(&v));  // closed and drained: no block, no value
}

TEST(ServeLifecycleTest, PrometheusPageContainsShardWindows) {
  ThreadPool pool(2);
  AssignmentServer server(TinyServer(16, false), TwoCenters(), &pool);
  EXPECT_EQ(server.Submit(TaskRequest(0, 0, true)), AdmissionCode::kAdmitted);
  server.Drain();
  const std::string page = server.PrometheusText();
  EXPECT_NE(page.find("serve_shard0_solve_ms"), std::string::npos);
  EXPECT_NE(page.find("serve_shard1_solve_ms"), std::string::npos);
  EXPECT_NE(page.find("fta_serve_admitted_total"), std::string::npos);
}

}  // namespace
}  // namespace fta
