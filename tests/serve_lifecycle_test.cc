#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/queue.h"
#include "serve/request.h"
#include "serve/server.h"
#include "util/thread_pool.h"

// Lifecycle and admission-control semantics of the assignment server:
// typed rejections (full queue, unknown center, protocol violations,
// shutdown), drain-on-shutdown answering every admitted request —
// including force-sealing batches whose tick never saw final_in_tick —
// and the paused-server path tests use to fill the queue
// deterministically.

namespace fta {
namespace {

ServerConfig TinyServer(size_t queue_capacity, bool start_paused) {
  ServerConfig config;
  config.num_threads = 2;
  config.queue_capacity = queue_capacity;
  config.tick_period = 0.1;
  config.engine.policy = ResolvePolicy::kWarm;
  config.engine.solver = StreamSolver::kFgt;
  config.engine.vdps.epsilon = 2.0;
  config.engine.vdps.max_set_size = 3;
  config.engine.seed = 11;
  config.start_paused = start_paused;
  return config;
}

std::vector<CenterSpec> TwoCenters() {
  return {{Point{1.0, 1.0}}, {Point{9.0, 9.0}}};
}

ServeRequest TaskRequest(uint32_t center, uint64_t tick, bool final_in_tick) {
  ServeRequest req;
  req.center = center;
  req.tick = tick;
  req.final_in_tick = final_in_tick;
  StreamEvent ev;
  ev.kind = StreamEventKind::kTaskArrival;
  ev.time = static_cast<double>(tick) * 0.1;
  ev.location = Point{1.5, 1.5};
  ev.service_window = 1.0;
  StreamEvent worker;
  worker.kind = StreamEventKind::kWorkerArrival;
  worker.time = ev.time;
  worker.worker.location = Point{1.2, 1.2};
  req.events = {worker, ev};
  return req;
}

TEST(ServeLifecycleTest, QueueFullShedsAndDrainAnswersTheAdmitted) {
  ThreadPool pool(2);
  AssignmentServer server(TinyServer(/*queue_capacity=*/2, true), TwoCenters(),
                          &pool);
  // Paused server: admitted requests pile up against the bound.
  EXPECT_EQ(server.Submit(TaskRequest(0, 0, true)), AdmissionCode::kAdmitted);
  EXPECT_EQ(server.Submit(TaskRequest(1, 0, true)), AdmissionCode::kAdmitted);
  EXPECT_EQ(server.Submit(TaskRequest(0, 1, true)), AdmissionCode::kQueueFull);
  EXPECT_EQ(server.in_flight(), 2u);
  server.Drain();
  EXPECT_EQ(server.in_flight(), 0u);
  EXPECT_EQ(server.counters().admitted, 2u);
  EXPECT_EQ(server.counters().answered, 2u);
  EXPECT_EQ(server.counters().rejected_full, 1u);
  EXPECT_EQ(server.counters().batches, 2u);
  EXPECT_EQ(server.responses(0).size(), 1u);
  EXPECT_EQ(server.responses(1).size(), 1u);
}

TEST(ServeLifecycleTest, DrainForceSealsOpenBatches) {
  ThreadPool pool(2);
  AssignmentServer server(TinyServer(16, false), TwoCenters(), &pool);
  // Never sealed: final_in_tick is false on every request.
  EXPECT_EQ(server.Submit(TaskRequest(0, 0, false)), AdmissionCode::kAdmitted);
  EXPECT_EQ(server.Submit(TaskRequest(0, 0, false)), AdmissionCode::kAdmitted);
  server.Drain();
  EXPECT_EQ(server.counters().answered, 2u);
  ASSERT_EQ(server.responses(0).size(), 1u);
  EXPECT_EQ(server.responses(0)[0].coalesced_requests, 2u);
  EXPECT_EQ(server.responses(0)[0].tick, 0u);
}

TEST(ServeLifecycleTest, TypedRejections) {
  ThreadPool pool(2);
  AssignmentServer server(TinyServer(16, true), TwoCenters(), &pool);
  EXPECT_EQ(server.Submit(TaskRequest(7, 0, true)),
            AdmissionCode::kUnknownCenter);
  // Open batch at tick 2; a different tick while open is out of order.
  EXPECT_EQ(server.Submit(TaskRequest(0, 2, false)), AdmissionCode::kAdmitted);
  EXPECT_EQ(server.Submit(TaskRequest(0, 3, true)),
            AdmissionCode::kOutOfOrder);
  EXPECT_EQ(server.Submit(TaskRequest(0, 2, true)), AdmissionCode::kAdmitted);
  // Sealed: the tick cannot be reopened, and the past is closed.
  EXPECT_EQ(server.Submit(TaskRequest(0, 2, true)),
            AdmissionCode::kOutOfOrder);
  EXPECT_EQ(server.Submit(TaskRequest(0, 1, true)),
            AdmissionCode::kOutOfOrder);
  // Skipping forward is legal: ticks are sparse per center.
  EXPECT_EQ(server.Submit(TaskRequest(0, 9, true)), AdmissionCode::kAdmitted);
  server.Drain();
  EXPECT_EQ(server.Submit(TaskRequest(0, 10, true)),
            AdmissionCode::kShuttingDown);
  EXPECT_EQ(server.counters().rejected_unknown, 1u);
  EXPECT_EQ(server.counters().rejected_order, 3u);
  EXPECT_EQ(server.counters().rejected_shutdown, 1u);
  EXPECT_EQ(server.counters().answered, 3u);
}

TEST(ServeLifecycleTest, CallbackSeesEveryBatchInShardOrder) {
  ThreadPool pool(2);
  AssignmentServer server(TinyServer(16, true), TwoCenters(), &pool);
  Mutex mu;
  std::vector<uint64_t> seqs[2];
  server.set_response_callback([&](const ServeResponse& r) {
    MutexLock lock(&mu);
    seqs[r.center].push_back(r.shard_seq);
  });
  for (uint64_t t = 0; t < 4; ++t) {
    EXPECT_EQ(server.Submit(TaskRequest(0, t, true)), AdmissionCode::kAdmitted);
    EXPECT_EQ(server.Submit(TaskRequest(1, t, true)), AdmissionCode::kAdmitted);
  }
  server.Resume();
  server.Drain();
  for (int c = 0; c < 2; ++c) {
    ASSERT_EQ(seqs[c].size(), 4u);
    for (uint64_t i = 0; i < 4; ++i) EXPECT_EQ(seqs[c][i], i);
  }
}

TEST(ServeLifecycleTest, DrainIsIdempotentAndImpliedByDestruction) {
  ThreadPool pool(2);
  AssignmentServer server(TinyServer(16, false), TwoCenters(), &pool);
  EXPECT_EQ(server.Submit(TaskRequest(0, 0, true)), AdmissionCode::kAdmitted);
  server.Drain();
  server.Drain();
  EXPECT_EQ(server.counters().answered, 1u);
  // Destructor drains again — must be a no-op, not a hang or double count.
}

TEST(ServeLifecycleTest, BoundedQueueCloseWakesPoppers) {
  BoundedQueue<int> q(2);
  EXPECT_EQ(q.TryPush(1), QueuePush::kOk);
  EXPECT_EQ(q.TryPush(2), QueuePush::kOk);
  EXPECT_EQ(q.TryPush(3), QueuePush::kFull);
  q.Close();
  EXPECT_EQ(q.TryPush(4), QueuePush::kClosed);
  int v = 0;
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(q.Pop(&v));  // closed and drained: no block, no value
}

TEST(ServeLifecycleTest, UnboundedQueueNeverReportsFull) {
  BoundedQueue<int> q(BoundedQueue<int>::kUnbounded);
  EXPECT_EQ(q.capacity(), BoundedQueue<int>::kUnbounded);
  for (int i = 0; i < 4096; ++i) ASSERT_EQ(q.TryPush(i), QueuePush::kOk);
  int v = -1;
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 0);
  q.Close();
  EXPECT_EQ(q.TryPush(0), QueuePush::kClosed);
}

// Regression for the stale-token overflow: a runner drains every ready
// batch of its shard under the FIRST token it pops, so the sibling
// batches' tokens stay queued after those requests already left
// in_flight_. When the token queue's capacity was tied to
// queue_capacity, the admissions those freed slots allow would overflow
// it and abort the process. Hammer that exact pattern — one runner, a
// tiny admission bound, one hot center, retry-on-full — and require
// every admitted request answered.
TEST(ServeLifecycleTest, StaleTokensDoNotBreakAdmissionAccounting) {
  ThreadPool pool(1);
  ServerConfig config = TinyServer(/*queue_capacity=*/2, false);
  config.num_threads = 1;
  AssignmentServer server(config, TwoCenters(), &pool);
  uint64_t admitted = 0;
  // 32 ticks: enough drain-all rounds to pile up stale tokens many times
  // over, while the shard's accumulating instance stays cheap to solve.
  for (uint64_t tick = 0; tick < 32; ++tick) {
    AdmissionCode code;
    while ((code = server.Submit(TaskRequest(0, tick, true))) ==
           AdmissionCode::kQueueFull) {
      // Yield, or this retry loop re-acquires admit_mu_ so hot that the
      // lone runner starves and in_flight_ never comes down.
      std::this_thread::yield();
    }
    ASSERT_EQ(code, AdmissionCode::kAdmitted);
    ++admitted;
  }
  server.Drain();
  EXPECT_EQ(server.counters().admitted, admitted);
  EXPECT_EQ(server.counters().answered, admitted);
  EXPECT_EQ(server.responses(0).size(), admitted);  // one sealed batch each
}

// Submit racing Drain is a supported interleaving (kShuttingDown is a
// legal answer): an admitted Submit pushes its token under admit_mu_, so
// it can never observe the drain's queue Close(), and its request must
// be answered.
TEST(ServeLifecycleTest, SubmitDuringDrainIsAnsweredOrShed) {
  ThreadPool pool(2);
  AssignmentServer server(TinyServer(8, false), TwoCenters(), &pool);
  std::atomic<uint64_t> admitted{0};
  std::thread producer([&] {
    for (uint64_t tick = 0; tick < 400; ++tick) {
      const AdmissionCode code = server.Submit(TaskRequest(0, tick, true));
      if (code == AdmissionCode::kShuttingDown) return;
      if (code == AdmissionCode::kAdmitted) ++admitted;
      // kQueueFull: skip to the next tick (rejections leave no state, so
      // the tick numbers stay admissible).
    }
  });
  server.Drain();
  producer.join();
  EXPECT_EQ(server.counters().admitted, admitted.load());
  EXPECT_EQ(server.counters().answered, admitted.load());
}

// Concurrent Drain calls (e.g. an explicit Drain racing the
// destructor's) must run the drain sequence exactly once: one owner
// runs it, the other waits for completion, and the final counters
// publish to the registry once.
TEST(ServeLifecycleTest, ConcurrentDrainRunsTheSequenceOnce) {
  obs::Counter& drains =
      obs::MetricsRegistry::Global().GetCounter("serve/drains");
  const uint64_t before = drains.Value();
  {
    ThreadPool pool(2);
    AssignmentServer server(TinyServer(16, false), TwoCenters(), &pool);
    EXPECT_EQ(server.Submit(TaskRequest(0, 0, true)),
              AdmissionCode::kAdmitted);
    std::thread other([&] { server.Drain(); });
    server.Drain();
    other.join();
    EXPECT_EQ(server.counters().answered, 1u);
    // The destructor drains a third time — a waiter-side no-op by then.
  }
  EXPECT_EQ(drains.Value() - before, 1u);
}

TEST(ServeLifecycleTest, PrometheusPageContainsShardWindows) {
  ThreadPool pool(2);
  AssignmentServer server(TinyServer(16, false), TwoCenters(), &pool);
  EXPECT_EQ(server.Submit(TaskRequest(0, 0, true)), AdmissionCode::kAdmitted);
  server.Drain();
  const std::string page = server.PrometheusText();
  EXPECT_NE(page.find("serve_shard0_solve_ms"), std::string::npos);
  EXPECT_NE(page.find("serve_shard1_solve_ms"), std::string::npos);
  EXPECT_NE(page.find("fta_serve_admitted_total"), std::string::npos);
}

}  // namespace
}  // namespace fta
