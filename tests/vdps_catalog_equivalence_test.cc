// Catalog-equivalence battery for the C-VDPS generation engines.
//
// The determinism contract under test (see DESIGN.md, generation pipeline):
//  - the sharded sequence enumerator produces a catalog BIT-IDENTICAL to
//    its serial run at any thread count — shards record raw uncapped
//    options and the finalize step replays them in root order, so thread
//    scheduling cannot influence anything;
//  - the exact bitmask DP (Algorithm 1) and the sequence enumerator agree
//    exactly — same ε-adjacency predicate, same arithmetic order along a
//    route, same Pareto replay — so entries, options, and the per-worker
//    strategies built on top compare with operator== on doubles, not
//    EXPECT_NEAR.
//
// Labeled `tsan` as well: under FTA_SANITIZE=thread this battery drives
// the sharded enumeration, the chunked beam extension, and the parallel
// strategy/inverted-index builds across 2/4/8-thread pools.

#include <gtest/gtest.h>

#include <vector>

#include "model/route.h"
#include "util/math_util.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "vdps/catalog.h"
#include "vdps/generators.h"

namespace fta {
namespace {

/// Random instance small enough for the exact DP (n <= 24) but dense
/// enough that sets of size 4 exist and Pareto frontiers carry several
/// orderings.
Instance RandomInstance(uint64_t seed, size_t num_dps = 11,
                        size_t num_workers = 4) {
  Rng rng(seed);
  const double area = 8.0;
  std::vector<DeliveryPoint> dps;
  for (uint32_t d = 0; d < num_dps; ++d) {
    std::vector<SpatialTask> tasks;
    const size_t n = 1 + rng.Index(3);
    for (size_t t = 0; t < n; ++t) {
      tasks.push_back(SpatialTask{d, rng.Uniform(1.5, 5.0), 1.0});
    }
    dps.emplace_back(Point{rng.Uniform(0, area), rng.Uniform(0, area)},
                     std::move(tasks));
  }
  std::vector<Worker> workers;
  for (size_t w = 0; w < num_workers; ++w) {
    workers.push_back(
        Worker{{rng.Uniform(0, area), rng.Uniform(0, area)}, 4});
  }
  return Instance(Point{area / 2, area / 2}, std::move(dps),
                  std::move(workers), TravelModel(5.0));
}

/// Asserts exact structural equality of two generation results: same
/// entries in the same order, same Pareto options with identical routes,
/// and doubles compared bit-for-bit.
void ExpectEntriesIdentical(const std::vector<CVdpsEntry>& a,
                            const std::vector<CVdpsEntry>& b,
                            const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t e = 0; e < a.size(); ++e) {
    SCOPED_TRACE(what + ", entry " + std::to_string(e));
    EXPECT_EQ(a[e].dps, b[e].dps);
    EXPECT_EQ(a[e].total_reward, b[e].total_reward);
    ASSERT_EQ(a[e].options.size(), b[e].options.size());
    for (size_t o = 0; o < a[e].options.size(); ++o) {
      EXPECT_EQ(a[e].options[o].route, b[e].options[o].route);
      EXPECT_EQ(a[e].options[o].center_time, b[e].options[o].center_time);
      EXPECT_EQ(a[e].options[o].slack, b[e].options[o].slack);
    }
  }
}

/// Full-catalog equality: entries plus per-worker strategies plus the
/// delivery-point -> strategies inverted index.
void ExpectCatalogsIdentical(const VdpsCatalog& a, const VdpsCatalog& b,
                             const std::string& what) {
  ASSERT_EQ(a.num_entries(), b.num_entries()) << what;
  for (size_t e = 0; e < a.num_entries(); ++e) {
    SCOPED_TRACE(what + ", entry " + std::to_string(e));
    EXPECT_EQ(a.entry(e).dps, b.entry(e).dps);
    EXPECT_EQ(a.entry(e).total_reward, b.entry(e).total_reward);
    ASSERT_EQ(a.entry(e).options.size(), b.entry(e).options.size());
    for (size_t o = 0; o < a.entry(e).options.size(); ++o) {
      EXPECT_EQ(a.entry(e).options[o].route, b.entry(e).options[o].route);
      EXPECT_EQ(a.entry(e).options[o].center_time,
                b.entry(e).options[o].center_time);
      EXPECT_EQ(a.entry(e).options[o].slack, b.entry(e).options[o].slack);
    }
  }
  ASSERT_EQ(a.num_workers(), b.num_workers()) << what;
  for (size_t w = 0; w < a.num_workers(); ++w) {
    SCOPED_TRACE(what + ", worker " + std::to_string(w));
    const auto& sa = a.strategies(w);
    const auto& sb = b.strategies(w);
    ASSERT_EQ(sa.size(), sb.size());
    for (size_t i = 0; i < sa.size(); ++i) {
      EXPECT_EQ(sa[i].entry_id, sb[i].entry_id);
      EXPECT_EQ(sa[i].route, sb[i].route);
      EXPECT_EQ(sa[i].total_time, sb[i].total_time);
      EXPECT_EQ(sa[i].total_reward, sb[i].total_reward);
      EXPECT_EQ(sa[i].payoff, sb[i].payoff);
    }
  }
  ASSERT_EQ(a.num_indexed_delivery_points(), b.num_indexed_delivery_points())
      << what;
  for (uint32_t dp = 0; dp < a.num_indexed_delivery_points(); ++dp) {
    SCOPED_TRACE(what + ", dp " + std::to_string(dp));
    const auto& ta = a.strategies_touching(dp);
    const auto& tb = b.strategies_touching(dp);
    ASSERT_EQ(ta.size(), tb.size());
    for (size_t i = 0; i < ta.size(); ++i) {
      EXPECT_EQ(ta[i].worker, tb[i].worker);
      EXPECT_EQ(ta[i].strategy, tb[i].strategy);
    }
  }
}

class CatalogEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

// The core battery: for every (ε, max_set_size) cell, the exact DP, the
// serial sequence enumerator, and the parallel sequence enumerator at 2,
// 4, and 8 threads must produce the same catalog, exactly.
TEST_P(CatalogEquivalenceTest, ExactEqualsSerialEqualsParallel) {
  const Instance inst = RandomInstance(GetParam());
  for (const double epsilon : {kInfinity, 2.5}) {
    for (const uint32_t max_dp : {2u, 3u, 4u}) {
      SCOPED_TRACE("epsilon=" + std::to_string(epsilon) +
                   " max_set_size=" + std::to_string(max_dp));
      VdpsConfig config;
      config.epsilon = epsilon;
      config.max_set_size = max_dp;
      // Uncapped frontier (no set has anywhere near 64 Pareto-optimal
      // orderings here): the max_pareto cap evicts by insertion order, and
      // the DP and the DFS legitimately insert in different orders, so
      // only the (unique) uncapped Pareto set is an engine-independent
      // contract. Capped determinism is per-engine and covered by the
      // sharding tests below, which run at the default cap.
      config.max_pareto = 64;
      const VdpsCatalog serial = VdpsCatalog::Generate(inst, config);

      VdpsConfig exact_config = config;
      exact_config.use_exact_dp = true;
      const VdpsCatalog exact = VdpsCatalog::Generate(inst, exact_config);
      ExpectCatalogsIdentical(serial, exact, "exact vs serial");

      for (const size_t threads : {2u, 4u, 8u}) {
        VdpsConfig parallel_config = config;
        parallel_config.num_threads = threads;
        const VdpsCatalog parallel =
            VdpsCatalog::Generate(inst, parallel_config);
        ExpectCatalogsIdentical(
            serial, parallel,
            "serial vs " + std::to_string(threads) + " threads");
      }
    }
  }
}

// The beam engine's parallel level extension must also be scheduling-proof.
TEST_P(CatalogEquivalenceTest, BeamParallelMatchesBeamSerial) {
  const Instance inst = RandomInstance(GetParam());
  for (const size_t beam_width : {6u, 64u}) {
    VdpsConfig config;
    config.epsilon = 2.5;
    config.max_set_size = 4;
    config.beam_width = beam_width;
    SCOPED_TRACE("beam_width=" + std::to_string(beam_width));
    const VdpsCatalog serial = VdpsCatalog::Generate(inst, config);
    for (const size_t threads : {2u, 4u, 8u}) {
      VdpsConfig parallel_config = config;
      parallel_config.num_threads = threads;
      const VdpsCatalog parallel =
          VdpsCatalog::Generate(inst, parallel_config);
      ExpectCatalogsIdentical(
          serial, parallel,
          "beam serial vs " + std::to_string(threads) + " threads");
    }
  }
}

// Raw generator-level check (below the catalog): sharded enumeration with
// an explicit pool equals the pool-less run, including counters that must
// be scheduling-invariant.
TEST_P(CatalogEquivalenceTest, GeneratorShardingIsOrderInvariant) {
  const Instance inst = RandomInstance(GetParam());
  VdpsConfig config;
  config.epsilon = 2.5;
  config.max_set_size = 3;
  const GenerationResult serial = GenerateCVdpsSequences(inst, config);
  ThreadPool pool(4);
  const GenerationResult parallel =
      GenerateCVdpsSequences(inst, config, &pool);
  ExpectEntriesIdentical(serial.entries, parallel.entries,
                         "generator serial vs pool");
  EXPECT_EQ(serial.truncated, parallel.truncated);
  // Work counters are sums over the same state space, so they match even
  // though the parallel run splits them across shards.
  EXPECT_EQ(serial.counters.states_expanded,
            parallel.counters.states_expanded);
  EXPECT_EQ(serial.counters.options_recorded,
            parallel.counters.options_recorded);
  EXPECT_EQ(serial.counters.pareto_inserts, parallel.counters.pareto_inserts);
  EXPECT_EQ(serial.counters.pareto_evictions,
            parallel.counters.pareto_evictions);
  EXPECT_EQ(serial.counters.entries, parallel.counters.entries);
  EXPECT_GT(parallel.counters.shards, 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CatalogEquivalenceTest,
                         ::testing::Range<uint64_t>(1, 13));

// max_entries truncation is path-dependent, so the enumerator must ignore
// the pool and keep the serial truncation point.
TEST(CatalogEquivalenceEdgeTest, TruncatedRunStaysSerial) {
  const Instance inst = RandomInstance(99, 14, 2);
  VdpsConfig config;
  config.max_set_size = 3;
  config.max_entries = 6;
  const GenerationResult serial = GenerateCVdpsSequences(inst, config);
  ThreadPool pool(4);
  const GenerationResult parallel =
      GenerateCVdpsSequences(inst, config, &pool);
  ExpectEntriesIdentical(serial.entries, parallel.entries,
                         "truncated serial vs pool");
  EXPECT_TRUE(parallel.truncated);
  EXPECT_EQ(parallel.counters.shards, 1u);
}

// An externally injected pool (VdpsConfig::pool — what the replay benches
// and the assignment server's callers use to amortize thread spawn) must
// produce the same catalog as an owned pool at the same width, a 1-thread
// injected pool must take the serial path, and the stored config must not
// retain the caller's pointer past Generate().
TEST(CatalogEquivalenceEdgeTest, InjectedPoolMatchesOwnedPool) {
  const Instance inst = RandomInstance(11);
  VdpsConfig config;
  config.epsilon = 2.5;
  config.max_set_size = 3;
  const VdpsCatalog serial = VdpsCatalog::Generate(inst, config);

  ThreadPool pool(4);
  VdpsConfig injected = config;
  injected.pool = &pool;
  const VdpsCatalog shared = VdpsCatalog::Generate(inst, injected);
  ExpectCatalogsIdentical(serial, shared, "serial vs injected 4-thread pool");
  EXPECT_EQ(shared.config().pool, nullptr)
      << "Generate() must scrub the injected pool from the stored config";

  VdpsConfig owned = config;
  owned.num_threads = 4;
  const VdpsCatalog spawned = VdpsCatalog::Generate(inst, owned);
  ExpectCatalogsIdentical(spawned, shared, "owned pool vs injected pool");

  ThreadPool single(1);
  VdpsConfig one = config;
  one.pool = &single;
  const VdpsCatalog serial_injected = VdpsCatalog::Generate(inst, one);
  ExpectCatalogsIdentical(serial, serial_injected,
                          "serial vs injected 1-thread pool");
}

// Thread counts beyond the root count (more shards than work) must not
// disturb anything either.
TEST(CatalogEquivalenceEdgeTest, MoreThreadsThanRoots) {
  const Instance inst = RandomInstance(7, 3, 2);
  VdpsConfig config;
  config.max_set_size = 3;
  const VdpsCatalog serial = VdpsCatalog::Generate(inst, config);
  VdpsConfig wide = config;
  wide.num_threads = 16;
  const VdpsCatalog parallel = VdpsCatalog::Generate(inst, wide);
  ExpectCatalogsIdentical(serial, parallel, "3 roots vs 16 threads");
}

}  // namespace
}  // namespace fta
