#include "datagen/workload.h"

#include <gtest/gtest.h>

#include "exp/simulation.h"
#include "util/rng.h"

namespace fta {
namespace {

TEST(WorkloadTest, BaseRateAwayFromPeaks) {
  WorkloadConfig config;
  config.base_rate_per_hour = 100.0;
  config.peak_hours = {5.0};
  config.peak_sigma = 0.5;
  // 10 sigma away: boost negligible.
  EXPECT_NEAR(ArrivalRate(config, 0.0), 100.0, 1e-6);
}

TEST(WorkloadTest, PeakBoostsRate) {
  WorkloadConfig config;
  config.base_rate_per_hour = 100.0;
  config.peak_hours = {5.0};
  config.peak_boost = 2.0;
  EXPECT_NEAR(ArrivalRate(config, 5.0), 300.0, 1e-6);
  // Symmetric falloff.
  EXPECT_NEAR(ArrivalRate(config, 4.0), ArrivalRate(config, 6.0), 1e-9);
  EXPECT_GT(ArrivalRate(config, 5.0), ArrivalRate(config, 4.0));
}

TEST(WorkloadTest, OverlappingPeaksAdd) {
  WorkloadConfig config;
  config.base_rate_per_hour = 10.0;
  config.peak_hours = {5.0, 5.0};
  config.peak_boost = 1.0;
  EXPECT_NEAR(ArrivalRate(config, 5.0), 30.0, 1e-6);
}

TEST(PoissonTest, ZeroLambda) {
  Rng rng(1);
  EXPECT_EQ(PoissonSample(0.0, rng), 0u);
}

TEST(PoissonTest, SmallLambdaMoments) {
  Rng rng(2);
  const double lambda = 3.5;
  const int n = 50000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = static_cast<double>(PoissonSample(lambda, rng));
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, lambda, 0.05);
  EXPECT_NEAR(var, lambda, 0.15);  // Poisson: variance == mean
}

TEST(PoissonTest, LargeLambdaNormalApprox) {
  Rng rng(3);
  const double lambda = 400.0;
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(PoissonSample(lambda, rng));
  }
  EXPECT_NEAR(sum / n, lambda, 1.0);
}

TEST(WorkloadTest, DrawArrivalsScalesWithInterval) {
  WorkloadConfig config;
  config.base_rate_per_hour = 120.0;
  config.peak_hours = {};
  Rng rng(4);
  double total_short = 0.0, total_long = 0.0;
  for (int i = 0; i < 2000; ++i) {
    total_short += static_cast<double>(DrawArrivals(config, 0.0, 0.25, rng));
    total_long += static_cast<double>(DrawArrivals(config, 0.0, 0.5, rng));
  }
  EXPECT_NEAR(total_short / 2000, 30.0, 1.5);
  EXPECT_NEAR(total_long / 2000, 60.0, 2.5);
}

TEST(WorkloadTest, SimulatorIntegration) {
  SimulationConfig config;
  config.num_waves = 8;
  config.num_zones = 20;
  config.num_workers = 8;
  config.use_workload = true;
  config.workload.base_rate_per_hour = 40.0;
  config.workload.peak_hours = {2.0};
  config.options.vdps.epsilon = 3.0;
  config.seed = 9;
  const SimulationResult r = RunDispatchSimulation(config);
  EXPECT_GT(r.tasks_arrived, 0u);
  EXPECT_EQ(r.tasks_arrived,
            r.tasks_served + r.tasks_expired + r.tasks_leftover);
  // The wave nearest the peak should see more pending work than the first.
  // (Statistical, but with boost 2x over 8 waves this is robust.)
  const SimulationResult again = RunDispatchSimulation(config);
  EXPECT_EQ(r.tasks_arrived, again.tasks_arrived);  // deterministic
}

}  // namespace
}  // namespace fta
