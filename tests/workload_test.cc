#include "datagen/workload.h"

#include <gtest/gtest.h>

#include "exp/simulation.h"
#include "util/rng.h"

namespace fta {
namespace {

TEST(WorkloadTest, BaseRateAwayFromPeaks) {
  WorkloadConfig config;
  config.base_rate_per_hour = 100.0;
  config.peak_hours = {5.0};
  config.peak_sigma = 0.5;
  // 10 sigma away: boost negligible.
  EXPECT_NEAR(ArrivalRate(config, 0.0), 100.0, 1e-6);
}

TEST(WorkloadTest, PeakBoostsRate) {
  WorkloadConfig config;
  config.base_rate_per_hour = 100.0;
  config.peak_hours = {5.0};
  config.peak_boost = 2.0;
  EXPECT_NEAR(ArrivalRate(config, 5.0), 300.0, 1e-6);
  // Symmetric falloff.
  EXPECT_NEAR(ArrivalRate(config, 4.0), ArrivalRate(config, 6.0), 1e-9);
  EXPECT_GT(ArrivalRate(config, 5.0), ArrivalRate(config, 4.0));
}

TEST(WorkloadTest, OverlappingPeaksAdd) {
  WorkloadConfig config;
  config.base_rate_per_hour = 10.0;
  config.peak_hours = {5.0, 5.0};
  config.peak_boost = 1.0;
  EXPECT_NEAR(ArrivalRate(config, 5.0), 30.0, 1e-6);
}

TEST(PoissonTest, ZeroLambda) {
  Rng rng(1);
  EXPECT_EQ(PoissonSample(0.0, rng), 0u);
}

TEST(PoissonTest, SmallLambdaMoments) {
  Rng rng(2);
  const double lambda = 3.5;
  const int n = 50000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = static_cast<double>(PoissonSample(lambda, rng));
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, lambda, 0.05);
  EXPECT_NEAR(var, lambda, 0.15);  // Poisson: variance == mean
}

TEST(PoissonTest, LargeLambdaNormalApprox) {
  Rng rng(3);
  const double lambda = 400.0;
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(PoissonSample(lambda, rng));
  }
  EXPECT_NEAR(sum / n, lambda, 1.0);
}

TEST(WorkloadTest, DrawArrivalsScalesWithInterval) {
  WorkloadConfig config;
  config.base_rate_per_hour = 120.0;
  config.peak_hours = {};
  Rng rng(4);
  double total_short = 0.0, total_long = 0.0;
  for (int i = 0; i < 2000; ++i) {
    total_short += static_cast<double>(DrawArrivals(config, 0.0, 0.25, rng));
    total_long += static_cast<double>(DrawArrivals(config, 0.0, 0.5, rng));
  }
  EXPECT_NEAR(total_short / 2000, 30.0, 1.5);
  EXPECT_NEAR(total_long / 2000, 60.0, 2.5);
}

TEST(WorkloadTest, SimulatorIntegration) {
  SimulationConfig config;
  config.num_waves = 8;
  config.num_zones = 20;
  config.num_workers = 8;
  config.use_workload = true;
  config.workload.base_rate_per_hour = 40.0;
  config.workload.peak_hours = {2.0};
  config.options.vdps.epsilon = 3.0;
  config.seed = 9;
  const SimulationResult r = RunDispatchSimulation(config);
  EXPECT_GT(r.tasks_arrived, 0u);
  EXPECT_EQ(r.tasks_arrived,
            r.tasks_served + r.tasks_expired + r.tasks_leftover);
  // The wave nearest the peak should see more pending work than the first.
  // (Statistical, but with boost 2x over 8 waves this is robust.)
  const SimulationResult again = RunDispatchSimulation(config);
  EXPECT_EQ(r.tasks_arrived, again.tasks_arrived);  // deterministic
}

TEST(ChurnWorkloadTest, EventsAreSortedAndDeterministic) {
  ChurnWorkloadConfig config;
  config.horizon_hours = 1.5;
  const std::vector<StreamEvent> a = GenerateChurnEvents(config, 42);
  const std::vector<StreamEvent> b = GenerateChurnEvents(config, 42);
  ASSERT_GT(a.size(), 0u);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].queue_expiry, b[i].queue_expiry);
    EXPECT_EQ(a[i].departure, b[i].departure);
    if (i > 0) {
      EXPECT_LE(a[i - 1].time, a[i].time);
    }
  }
  const std::vector<StreamEvent> c = GenerateChurnEvents(config, 43);
  EXPECT_NE(a.size(), 0u);
  EXPECT_TRUE(c.size() != a.size() || c[0].time != a[0].time);
}

TEST(ChurnWorkloadTest, EventFieldsRespectConfigBounds) {
  ChurnWorkloadConfig config;
  config.horizon_hours = 1.0;
  config.area_size = 4.0;
  config.min_service_window = 0.25;
  config.max_service_window = 0.75;
  config.min_reward = 2.0;
  config.max_reward = 3.0;
  config.min_max_dp = 2;
  config.max_max_dp = 5;
  size_t workers = 0;
  size_t tasks = 0;
  for (const StreamEvent& ev : GenerateChurnEvents(config, 11)) {
    EXPECT_GE(ev.time, 0.0);
    EXPECT_LT(ev.time, config.horizon_hours);
    if (ev.kind == StreamEventKind::kWorkerArrival) {
      ++workers;
      EXPECT_GE(ev.worker.max_delivery_points, 2u);
      EXPECT_LE(ev.worker.max_delivery_points, 5u);
      EXPECT_GT(ev.departure, ev.time);  // exponential dwell is positive
      EXPECT_LT(ev.worker.location.x, config.area_size);
      EXPECT_LT(ev.worker.location.y, config.area_size);
    } else {
      ++tasks;
      EXPECT_GE(ev.reward, 2.0);
      EXPECT_LE(ev.reward, 3.0);
      EXPECT_GE(ev.service_window, 0.25);
      EXPECT_LE(ev.service_window, 0.75);
      EXPECT_GT(ev.queue_expiry, ev.time);
      EXPECT_LT(ev.location.x, config.area_size);
    }
  }
  EXPECT_GT(workers, 0u);
  EXPECT_GT(tasks, 0u);
}

}  // namespace
}  // namespace fta
