#include "baseline/branch_and_bound.h"

#include <gtest/gtest.h>

#include "baseline/exhaustive.h"
#include "baseline/gta.h"
#include "baseline/mpta.h"
#include "model/builder.h"
#include "util/rng.h"
#include "vdps/catalog.h"

namespace fta {
namespace {

Instance RandomInstance(uint64_t seed, size_t num_dps, size_t num_workers) {
  Rng rng(seed);
  InstanceBuilder builder(Point{4, 4});
  builder.Speed(5.0);
  for (size_t d = 0; d < num_dps; ++d) {
    builder.DeliveryPoint({rng.Uniform(0, 8), rng.Uniform(0, 8)},
                          1 + rng.Index(4), rng.Uniform(1.0, 4.0));
  }
  for (size_t w = 0; w < num_workers; ++w) {
    builder.Worker({rng.Uniform(0, 8), rng.Uniform(0, 8)});
  }
  return builder.Build();
}

class BnbPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BnbPropertyTest, MatchesExhaustiveOptimum) {
  const Instance inst = RandomInstance(GetParam(), 6, 3);
  VdpsConfig vdps;
  vdps.max_set_size = 2;
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, vdps);
  const BnbResult bnb = SolveMaxTotalBnB(inst, catalog);
  ASSERT_TRUE(bnb.complete);
  EXPECT_TRUE(bnb.assignment.Validate(inst).ok());
  const ExhaustiveResult truth = SolveExhaustive(inst, catalog);
  ASSERT_TRUE(truth.complete);
  EXPECT_NEAR(bnb.total_payoff, truth.max_total_payoff, 1e-9);
  EXPECT_NEAR(bnb.assignment.TotalPayoff(inst), bnb.total_payoff, 1e-9);
}

TEST_P(BnbPropertyTest, PrunesAgainstExhaustive) {
  const Instance inst = RandomInstance(GetParam() + 20, 7, 3);
  VdpsConfig vdps;
  vdps.max_set_size = 2;
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, vdps);
  const BnbResult bnb = SolveMaxTotalBnB(inst, catalog);
  const ExhaustiveResult truth = SolveExhaustive(inst, catalog);
  ASSERT_TRUE(bnb.complete);
  ASSERT_TRUE(truth.complete);
  EXPECT_LT(bnb.nodes_explored, truth.states_explored);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BnbPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(BnbTest, DominatesGreedyAndMpta) {
  const Instance inst = RandomInstance(50, 10, 4);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  const BnbResult bnb = SolveMaxTotalBnB(inst, catalog);
  ASSERT_TRUE(bnb.complete);
  EXPECT_GE(bnb.total_payoff,
            SolveGta(inst, catalog).TotalPayoff(inst) - 1e-9);
  EXPECT_GE(bnb.total_payoff,
            SolveMpta(inst, catalog).assignment.TotalPayoff(inst) - 1e-9);
}

TEST(BnbTest, NodeLimitReturnsIncumbent) {
  const Instance inst = RandomInstance(51, 12, 6);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  const BnbResult bnb = SolveMaxTotalBnB(inst, catalog, 100);
  EXPECT_FALSE(bnb.complete);
  EXPECT_LE(bnb.nodes_explored, 100u);
  EXPECT_TRUE(bnb.assignment.Validate(inst).ok());
}

TEST(BnbTest, EmptyInstance) {
  const Instance inst = InstanceBuilder(Point{0, 0}).Build();
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  const BnbResult bnb = SolveMaxTotalBnB(inst, catalog);
  EXPECT_TRUE(bnb.complete);
  EXPECT_DOUBLE_EQ(bnb.total_payoff, 0.0);
}

TEST(BnbTest, SingleWorkerPicksBestStrategy) {
  const Instance inst = RandomInstance(52, 8, 1);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  ASSERT_FALSE(catalog.strategies(0).empty());
  const BnbResult bnb = SolveMaxTotalBnB(inst, catalog);
  EXPECT_NEAR(bnb.total_payoff, catalog.strategies(0)[0].payoff, 1e-9);
}

}  // namespace
}  // namespace fta
