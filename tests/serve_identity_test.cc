#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "datagen/city.h"
#include "serve/replay.h"
#include "serve/request.h"
#include "serve/server.h"
#include "util/status.h"
#include "util/thread_pool.h"

// Sharded ≡ sequential differential battery for the assignment server.
//
// The server's contract (serve/server.h §determinism): per-center digests
// and response streams are bit-identical to the sequential reference loop
// at any runner-thread count. The battery replays the same synthesized
// city through servers at 1, 2, and 8 runners and through
// RunSequentialReference, across seeds × solvers, comparing every
// response field the reference defines (tick, shard_seq, coalesced
// requests, first_global_seq, running digest) — not just the final
// digest, so a transient divergence that later re-converges still fails.

namespace fta {
namespace {

CityWorkloadConfig SmallCity() {
  CityWorkloadConfig city;
  city.num_centers = 3;
  city.center_spacing = 8.0;
  city.rate_sigma = 0.5;
  city.tick_period = 0.1;
  city.ticks = 5;
  city.base.tasks.base_rate_per_hour = 40.0;
  city.base.tasks.peak_hours = {0.25};
  city.base.worker_rate_per_hour = 15.0;
  city.base.area_size = 6.0;
  city.base.mean_worker_dwell_hours = 0.5;
  city.base.mean_task_patience_hours = 0.4;
  return city;
}

ServerConfig SmallServer(uint64_t seed, size_t threads, StreamSolver solver) {
  ServerConfig config;
  config.num_threads = threads;
  config.queue_capacity = 64;
  config.tick_period = 0.1;
  config.engine.policy = ResolvePolicy::kWarm;
  config.engine.solver = solver;
  config.engine.vdps.epsilon = 2.0;
  config.engine.vdps.max_set_size = 3;
  config.engine.seed = seed;
  config.engine.digest_catalog = true;
  return config;
}

void ExpectMatchesReference(const AssignmentServer& server,
                            const ReferenceResult& ref, uint64_t seed,
                            size_t threads, StreamSolver solver) {
  for (uint32_t c = 0; c < server.num_shards(); ++c) {
    SCOPED_TRACE(::testing::Message()
                 << "center=" << c << " seed=" << seed
                 << " threads=" << threads
                 << " solver=" << StreamSolverName(solver));
    EXPECT_EQ(server.shard_digest(c), ref.digests[c]);
    const std::vector<ServeResponse>& got = server.responses(c);
    const std::vector<ServeResponse>& want = ref.responses[c];
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].tick, want[i].tick);
      EXPECT_EQ(got[i].shard_seq, want[i].shard_seq);
      EXPECT_EQ(got[i].first_global_seq, want[i].first_global_seq);
      EXPECT_EQ(got[i].coalesced_requests, want[i].coalesced_requests);
      EXPECT_EQ(got[i].shard_digest, want[i].shard_digest);
    }
  }
}

TEST(ServeIdentityTest, ShardedEqualsSequentialAcrossSeedsThreadsSolvers) {
  ThreadPool pool(8);
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    const CityWorkload city = GenerateCityWorkload(SmallCity(), seed * 1000);
    const ServeTrace trace = BuildServeTrace(city, /*max_requests_per_tick=*/3,
                                             /*seed=*/seed);
    for (const StreamSolver solver :
         {StreamSolver::kFgt, StreamSolver::kIegt}) {
      const ReferenceResult ref =
          RunSequentialReference(SmallServer(seed, 1, solver), trace);
      ASSERT_EQ(ref.responses.size(), city.centers.size());
      for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
        std::vector<CenterSpec> centers;
        for (const Point& p : city.centers) centers.push_back({p});
        AssignmentServer server(SmallServer(seed, threads, solver),
                                std::move(centers), &pool);
        StatusOr<uint64_t> retries = ReplayTrace(server, trace);
        ASSERT_TRUE(retries.ok()) << retries.status().message();
        server.Drain();
        EXPECT_EQ(server.counters().answered, server.counters().admitted);
        EXPECT_EQ(server.counters().batches, ref.batches);
        ExpectMatchesReference(server, ref, seed, threads, solver);
      }
    }
  }
}

TEST(ServeIdentityTest, TraceRoundTripsThroughCsv) {
  const CityWorkload city = GenerateCityWorkload(SmallCity(), 77);
  const ServeTrace trace = BuildServeTrace(city, 3, 7);
  StatusOr<ServeTrace> loaded =
      DeserializeServeTrace(SerializeServeTrace(trace));
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  ASSERT_EQ(loaded->centers.size(), trace.centers.size());
  ASSERT_EQ(loaded->requests.size(), trace.requests.size());
  // Round-tripped traffic must solve to the same digests (bitwise doubles
  // survive the %.17g round-trip).
  const ServerConfig config = SmallServer(3, 1, StreamSolver::kFgt);
  const ReferenceResult a = RunSequentialReference(config, trace);
  const ReferenceResult b = RunSequentialReference(config, *loaded);
  EXPECT_EQ(a.digests, b.digests);
  EXPECT_EQ(a.batches, b.batches);
}

TEST(ServeIdentityTest, ShardSeedsAreDecorrelated) {
  const ServerConfig config = SmallServer(9, 1, StreamSolver::kFgt);
  const TickEngineConfig a = ShardEngineConfig(config, 0, Point{0.0, 0.0});
  const TickEngineConfig b = ShardEngineConfig(config, 1, Point{0.0, 0.0});
  EXPECT_NE(a.seed, b.seed);
  // And deterministic: the reference loop must derive the same seeds.
  const TickEngineConfig a2 = ShardEngineConfig(config, 0, Point{0.0, 0.0});
  EXPECT_EQ(a.seed, a2.seed);
}

}  // namespace
}  // namespace fta
