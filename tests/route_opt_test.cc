#include "model/route_opt.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/math_util.h"
#include "util/rng.h"
#include "vdps/generators.h"

namespace fta {
namespace {

Instance LineInstance(double expiry = 100.0) {
  // Delivery points along a line at x = 1, 2, 3, 4; center at origin.
  std::vector<DeliveryPoint> dps;
  for (uint32_t d = 0; d < 4; ++d) {
    dps.emplace_back(
        Point{static_cast<double>(d + 1), 0.0},
        std::vector<SpatialTask>{SpatialTask{d, expiry, 1.0}});
  }
  return Instance(Point{0, 0}, std::move(dps), {}, TravelModel(1.0));
}

Instance RandomInstance(uint64_t seed, size_t num_dps, double expiry_lo,
                        double expiry_hi) {
  Rng rng(seed);
  std::vector<DeliveryPoint> dps;
  for (uint32_t d = 0; d < num_dps; ++d) {
    dps.emplace_back(
        Point{rng.Uniform(0, 6), rng.Uniform(0, 6)},
        std::vector<SpatialTask>{
            SpatialTask{d, rng.Uniform(expiry_lo, expiry_hi), 1.0}});
  }
  return Instance(Point{3, 3}, std::move(dps), {}, TravelModel(5.0));
}

TEST(RouteOptTest, EmptyAndSingletonAreFixedPoints) {
  const Instance inst = LineInstance();
  EXPECT_EQ(ImproveRoute(inst, {}).moves, 0);
  const RouteOptResult r = ImproveRoute(inst, {2});
  EXPECT_EQ(r.moves, 0);
  EXPECT_EQ(r.route, (Route{2}));
}

TEST(RouteOptTest, UnscramblesAReversedLine) {
  // Visiting 4, 3, 2, 1 (x = 4 first) wastes 4 + 3 = 7; the optimal order
  // 1, 2, 3, 4 costs 4.
  const Instance inst = LineInstance();
  const RouteOptResult r = ImproveRoute(inst, {3, 2, 1, 0});
  EXPECT_EQ(r.route, (Route{0, 1, 2, 3}));
  EXPECT_NEAR(r.eval.total_time, 4.0, 1e-9);
  EXPECT_GT(r.moves, 0);
}

TEST(RouteOptTest, NeverWorsensAndStaysFeasible) {
  Rng rng(5);
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const Instance inst = RandomInstance(seed, 6, 2.0, 5.0);
    // Random feasible starting route from the exact generator's entries.
    VdpsConfig config;
    config.max_set_size = 4;
    const GenerationResult gen = GenerateCVdpsExact(inst, config);
    if (gen.entries.empty()) continue;
    const CVdpsEntry& entry = gen.entries[rng.Index(gen.entries.size())];
    Route start = entry.options.front().route;
    rng.Shuffle(start);
    const RouteEvaluation before = EvaluateRouteFromCenter(inst, start, 0.0);
    if (!before.feasible) continue;  // shuffling may break deadlines
    const RouteOptResult r = ImproveRoute(inst, start);
    EXPECT_TRUE(r.eval.feasible);
    EXPECT_LE(r.eval.total_time, before.total_time + 1e-9);
    // Same set of stops, possibly reordered.
    Route sorted_in = start, sorted_out = r.route;
    std::sort(sorted_in.begin(), sorted_in.end());
    std::sort(sorted_out.begin(), sorted_out.end());
    EXPECT_EQ(sorted_in, sorted_out);
  }
}

TEST(RouteOptTest, AgreesWithExactDpOnSmallSets) {
  // The DP already returns min-travel orderings; 2-opt/Or-opt from any
  // feasible permutation of the same set must reach the same total time
  // for sets of size <= 3 (where these moves span all permutations).
  for (uint64_t seed = 20; seed < 26; ++seed) {
    const Instance inst = RandomInstance(seed, 6, 3.0, 8.0);
    VdpsConfig config;
    config.max_set_size = 3;
    const GenerationResult gen = GenerateCVdpsExact(inst, config);
    for (const CVdpsEntry& entry : gen.entries) {
      if (entry.dps.size() < 2) continue;
      const double dp_best = entry.options.front().center_time;
      Route start = entry.dps;  // ascending-id order, often suboptimal
      const RouteEvaluation eval = EvaluateRouteFromCenter(inst, start, 0.0);
      if (!eval.feasible) continue;
      const RouteOptResult r = ImproveRoute(inst, start);
      EXPECT_LE(r.eval.total_time, dp_best + 1e-9)
          << "local search missed the DP optimum";
    }
  }
}

TEST(RouteOptTest, RespectsDeadlinesOverDistance) {
  // dp1 sits in the opposite direction; visiting it first is shorter
  // overall (5 < 7) but makes dp0 miss its deadline (arrive 5 > 3.5), so
  // the optimizer must keep dp0 first despite the longer total.
  std::vector<DeliveryPoint> dps;
  dps.emplace_back(Point{3, 0},
                   std::vector<SpatialTask>{SpatialTask{0, 3.5, 1.0}});
  dps.emplace_back(Point{-1, 0},
                   std::vector<SpatialTask>{SpatialTask{1, 100.0, 1.0}});
  Instance inst(Point{0, 0}, std::move(dps), {}, TravelModel(1.0));
  const RouteOptResult r = ImproveRoute(inst, {0, 1});
  EXPECT_EQ(r.route, (Route{0, 1}));
  EXPECT_TRUE(r.eval.feasible);
  EXPECT_NEAR(r.eval.total_time, 7.0, 1e-9);
}

TEST(RouteOptTest, StartOffsetChangesFeasibleSet) {
  // With a large start offset, reordering that is fine at offset 0 breaks
  // a deadline; the optimizer must account for it.
  std::vector<DeliveryPoint> dps;
  dps.emplace_back(Point{1, 0},
                   std::vector<SpatialTask>{SpatialTask{0, 3.0, 1.0}});
  dps.emplace_back(Point{2, 0},
                   std::vector<SpatialTask>{SpatialTask{1, 10.0, 1.0}});
  Instance inst(Point{0, 0}, std::move(dps), {}, TravelModel(1.0));
  const RouteOptResult near = ImproveRoute(inst, {1, 0}, 0.0);
  EXPECT_EQ(near.route, (Route{0, 1}));  // reorder: arrive dp0 at t=1
  // Offset 1.9: order {0,1} arrives dp0 at 2.9 <= 3: still best.
  const RouteOptResult shifted = ImproveRoute(inst, {0, 1}, 1.9);
  EXPECT_TRUE(shifted.eval.feasible);
}

}  // namespace
}  // namespace fta
