#include <gtest/gtest.h>

#include <string>

#include "datagen/synthetic.h"
#include "exp/report.h"
#include "exp/runner.h"
#include "exp/stats.h"
#include "exp/sweep.h"

namespace fta {
namespace {

MultiCenterInstance TinySyn(uint64_t seed = 31) {
  SynConfig config;
  config.num_centers = 2;
  config.num_workers = 10;
  config.num_delivery_points = 16;
  config.num_tasks = 80;
  config.area = 10.0;
  config.seed = seed;
  return GenerateSyn(config);
}

SolverOptions FastOptions() {
  SolverOptions options;
  options.vdps.epsilon = 3.0;
  options.vdps.max_set_size = 3;
  return options;
}

// ------------------------------------------------------------ ResultTable --

TEST(ResultTableTest, TextRenderingContainsCells) {
  ResultTable t("demo", {"alg", "x=1", "x=2"});
  t.AddNumericRow("GTA", {1.5, 2.25});
  t.AddRow({"FGT", "a", "b"});
  const std::string text = t.ToText();
  EXPECT_NE(text.find("demo"), std::string::npos);
  EXPECT_NE(text.find("GTA"), std::string::npos);
  EXPECT_NE(text.find("2.25"), std::string::npos);
  EXPECT_NE(text.find("x=2"), std::string::npos);
}

TEST(ResultTableTest, CsvRendering) {
  ResultTable t("demo", {"alg", "v"});
  t.AddNumericRow("GTA", {1.0});
  const std::string csv = t.ToCsvText();
  EXPECT_NE(csv.find("alg,v"), std::string::npos);
  EXPECT_NE(csv.find("GTA,1"), std::string::npos);
}

TEST(ResultTableTest, WriteCsvFile) {
  const std::string path = ::testing::TempDir() + "/fta_table.csv";
  ResultTable t("demo", {"a"});
  t.AddRow({"1"});
  EXPECT_TRUE(t.WriteCsv(path).ok());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------- Runner --

TEST(RunnerTest, AlgorithmNames) {
  EXPECT_STREQ(AlgorithmName(Algorithm::kMpta), "MPTA");
  EXPECT_STREQ(AlgorithmName(Algorithm::kGta), "GTA");
  EXPECT_STREQ(AlgorithmName(Algorithm::kFgt), "FGT");
  EXPECT_STREQ(AlgorithmName(Algorithm::kIegt), "IEGT");
  EXPECT_EQ(PaperAlgorithms().size(), 4u);
}

TEST(RunnerTest, RunOnInstanceProducesSaneMetrics) {
  const MultiCenterInstance multi = TinySyn();
  const SolverOptions options = FastOptions();
  for (Algorithm a : PaperAlgorithms()) {
    const RunMetrics m = RunOnInstance(a, multi.centers[0], options);
    EXPECT_EQ(m.num_workers, multi.centers[0].num_workers());
    EXPECT_GE(m.average_payoff, 0.0);
    EXPECT_GE(m.payoff_difference, 0.0);
    EXPECT_GE(m.cpu_seconds, 0.0);
    EXPECT_LE(m.assigned_workers, m.num_workers);
    EXPECT_TRUE(m.converged) << AlgorithmName(a);
  }
}

TEST(RunnerTest, RunOnMultiPoolsWorkers) {
  const MultiCenterInstance multi = TinySyn();
  const RunMetrics m =
      RunOnMulti(Algorithm::kGta, multi, FastOptions());
  EXPECT_EQ(m.num_workers, multi.num_workers());
}

TEST(RunnerTest, ParallelMatchesSerialMetrics) {
  const MultiCenterInstance multi = TinySyn();
  const SolverOptions options = FastOptions();
  const RunMetrics serial = RunOnMulti(Algorithm::kFgt, multi, options, 1);
  const RunMetrics parallel = RunOnMulti(Algorithm::kFgt, multi, options, 4);
  EXPECT_NEAR(serial.payoff_difference, parallel.payoff_difference, 1e-9);
  EXPECT_NEAR(serial.average_payoff, parallel.average_payoff, 1e-9);
  EXPECT_EQ(serial.assigned_workers, parallel.assigned_workers);
}

TEST(RunnerTest, RunWithCatalogExcludesGeneration) {
  const MultiCenterInstance multi = TinySyn();
  const SolverOptions options = FastOptions();
  const VdpsCatalog catalog =
      VdpsCatalog::Generate(multi.centers[0], options.vdps);
  const RunMetrics m =
      RunWithCatalog(Algorithm::kIegt, multi.centers[0], catalog, options);
  EXPECT_EQ(m.num_workers, multi.centers[0].num_workers());
  EXPECT_TRUE(m.converged);
}

// ----------------------------------------------------------------- Stats --

TEST(StatsTest, SummarizeBasics) {
  const MetricSummary s = Summarize({2.0, 4.0, 6.0});
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
  EXPECT_EQ(s.n, 3u);
  EXPECT_GT(s.ci95, 0.0);
}

TEST(StatsTest, SummarizeEdgeCases) {
  const MetricSummary empty = Summarize({});
  EXPECT_EQ(empty.n, 0u);
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
  const MetricSummary single = Summarize({5.0});
  EXPECT_DOUBLE_EQ(single.mean, 5.0);
  EXPECT_DOUBLE_EQ(single.ci95, 0.0);
  const MetricSummary constant = Summarize({3.0, 3.0, 3.0});
  EXPECT_DOUBLE_EQ(constant.stddev, 0.0);
  EXPECT_DOUBLE_EQ(constant.ci95, 0.0);
}

TEST(StatsTest, ToStringMentionsMeanAndCi) {
  const MetricSummary s = Summarize({1.0, 2.0, 3.0});
  const std::string str = s.ToString();
  EXPECT_NE(str.find("2"), std::string::npos);
  EXPECT_NE(str.find("+-"), std::string::npos);
}

TEST(StatsTest, RunRepeatedAggregates) {
  const RepeatedRunSummary summary = RunRepeated(
      Algorithm::kGta,
      [](uint64_t seed) {
        SynConfig config;
        config.num_centers = 1;
        config.num_workers = 8;
        config.num_delivery_points = 12;
        config.num_tasks = 60;
        config.area = 8.0;
        config.seed = seed;
        return GenerateSyn(config);
      },
      FastOptions(), 4);
  EXPECT_EQ(summary.payoff_difference.n, 4u);
  EXPECT_GE(summary.average_payoff.mean, 0.0);
  EXPECT_GE(summary.cpu_seconds.mean, 0.0);
  // Distinct seeds produce distinct instances, so some variance exists.
  EXPECT_GT(summary.payoff_difference.max,
            summary.payoff_difference.min - 1e-12);
}

// ----------------------------------------------------------------- Sweep --

TEST(SweepTest, ProducesOneRowPerSeriesAndColumnPerPoint) {
  const SolverOptions options = FastOptions();
  const SweepResult result = RunParameterSweep(
      "Fig-test", "|W|", {"5", "10"},
      [](size_t p) {
        SynConfig config;
        config.num_centers = 1;
        config.num_workers = p == 0 ? 5 : 10;
        config.num_delivery_points = 12;
        config.num_tasks = 60;
        config.area = 8.0;
        config.seed = 3;
        return GenerateSyn(config);
      },
      {{"GTA", Algorithm::kGta, options},
       {"FGT", Algorithm::kFgt, options}});
  EXPECT_EQ(result.payoff_difference.num_rows(), 2u);
  EXPECT_EQ(result.average_payoff.num_rows(), 2u);
  EXPECT_EQ(result.cpu_time.num_rows(), 2u);
  const std::string text = result.ToText();
  EXPECT_NE(text.find("payoff difference"), std::string::npos);
  EXPECT_NE(text.find("GTA"), std::string::npos);
}

}  // namespace
}  // namespace fta
