#include "util/logging.h"

#include <gtest/gtest.h>

#include <thread>

#include "util/stopwatch.h"

namespace fta {
namespace {

TEST(LoggingTest, LevelFiltering) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Below-threshold messages are dropped (no crash, no output assertion
  // possible without capturing stderr; this exercises the path).
  FTA_LOG(kDebug) << "dropped";
  FTA_LOG(kInfo) << "dropped";
  SetLogLevel(before);
}

TEST(LoggingTest, StreamFormatting) {
  // Smoke: streaming heterogeneous values must compile and run.
  FTA_LOG(kDebug) << "x=" << 42 << " y=" << 1.5 << " s=" << std::string("ok");
}

TEST(CheckTest, PassingCheckIsNoop) {
  FTA_CHECK(1 + 1 == 2);
  FTA_CHECK_MSG(true, "never shown " << 123);
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(FTA_CHECK(false), "check failed");
  EXPECT_DEATH(FTA_CHECK_MSG(2 < 1, "custom context " << 7),
               "custom context 7");
}

TEST(StopwatchTest, MeasuresElapsedWallTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double elapsed = sw.ElapsedSeconds();
  EXPECT_GE(elapsed, 0.015);
  EXPECT_LT(elapsed, 5.0);
  EXPECT_NEAR(sw.ElapsedMillis(), sw.ElapsedSeconds() * 1e3,
              sw.ElapsedMillis() * 0.5);
}

TEST(StopwatchTest, RestartResets) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  sw.Restart();
  EXPECT_LT(sw.ElapsedSeconds(), 0.015);
}

TEST(CpuTimerTest, CountsCpuWorkNotSleep) {
  CpuTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // Sleeping burns (almost) no CPU.
  EXPECT_LT(timer.ElapsedSeconds(), 0.02);
  timer.Restart();
  volatile double acc = 0.0;
  for (int i = 0; i < 20000000; ++i) {
    acc = acc + static_cast<double>(i) * 1e-9;
  }
  EXPECT_GT(timer.ElapsedSeconds(), 0.0);
}

}  // namespace
}  // namespace fta
