#include <gtest/gtest.h>

#include <set>

#include "datagen/gmission.h"
#include "datagen/synthetic.h"

namespace fta {
namespace {

// ------------------------------------------------------------------- SYN --

SynConfig SmallSyn() {
  SynConfig config;
  config.num_centers = 5;
  config.num_workers = 40;
  config.num_delivery_points = 60;
  config.num_tasks = 500;
  config.seed = 77;
  return config;
}

TEST(SynTest, PopulationCountsMatchConfig) {
  const SynConfig config = SmallSyn();
  const MultiCenterInstance multi = GenerateSyn(config);
  EXPECT_EQ(multi.centers.size(), config.num_centers);
  EXPECT_EQ(multi.num_workers(), config.num_workers);
  EXPECT_EQ(multi.num_delivery_points(), config.num_delivery_points);
  EXPECT_EQ(multi.num_tasks(), config.num_tasks);
}

TEST(SynTest, AllCentersValidate) {
  const MultiCenterInstance multi = GenerateSyn(SmallSyn());
  for (const Instance& inst : multi.centers) {
    EXPECT_TRUE(inst.Validate().ok());
  }
}

TEST(SynTest, LocationsInsideArea) {
  const SynConfig config = SmallSyn();
  const MultiCenterInstance multi = GenerateSyn(config);
  for (const Instance& inst : multi.centers) {
    EXPECT_GE(inst.center().x, 0.0);
    EXPECT_LE(inst.center().x, config.area);
    for (const DeliveryPoint& dp : inst.delivery_points()) {
      EXPECT_GE(dp.location().x, 0.0);
      EXPECT_LE(dp.location().x, config.area);
      EXPECT_GE(dp.location().y, 0.0);
      EXPECT_LE(dp.location().y, config.area);
    }
    for (const Worker& w : inst.workers()) {
      EXPECT_GE(w.location.x, 0.0);
      EXPECT_LE(w.location.y, config.area);
      EXPECT_EQ(w.max_delivery_points, config.max_dp);
    }
  }
}

TEST(SynTest, FixedExpiryWithoutJitter) {
  const MultiCenterInstance multi = GenerateSyn(SmallSyn());
  for (const Instance& inst : multi.centers) {
    for (const DeliveryPoint& dp : inst.delivery_points()) {
      for (const SpatialTask& t : dp.tasks()) {
        EXPECT_DOUBLE_EQ(t.expiry, 2.0);
        EXPECT_DOUBLE_EQ(t.reward, 1.0);
      }
    }
  }
}

TEST(SynTest, JitterVariesExpiry) {
  SynConfig config = SmallSyn();
  config.expiry_jitter = 0.5;
  const MultiCenterInstance multi = GenerateSyn(config);
  std::set<double> expiries;
  for (const Instance& inst : multi.centers) {
    for (const DeliveryPoint& dp : inst.delivery_points()) {
      for (const SpatialTask& t : dp.tasks()) expiries.insert(t.expiry);
    }
  }
  EXPECT_GT(expiries.size(), 10u);
}

TEST(SynTest, DeterministicGivenSeed) {
  const MultiCenterInstance a = GenerateSyn(SmallSyn());
  const MultiCenterInstance b = GenerateSyn(SmallSyn());
  ASSERT_EQ(a.centers.size(), b.centers.size());
  for (size_t c = 0; c < a.centers.size(); ++c) {
    EXPECT_EQ(a.centers[c].center(), b.centers[c].center());
    EXPECT_EQ(a.centers[c].num_tasks(), b.centers[c].num_tasks());
    EXPECT_EQ(a.centers[c].workers(), b.centers[c].workers());
  }
}

TEST(SynTest, DifferentSeedsDiffer) {
  SynConfig other = SmallSyn();
  other.seed = 78;
  const MultiCenterInstance a = GenerateSyn(SmallSyn());
  const MultiCenterInstance b = GenerateSyn(other);
  EXPECT_NE(a.centers[0].center(), b.centers[0].center());
}

TEST(SynTest, ScaleSynPreservesRatiosAndDensity) {
  SynConfig config;  // paper defaults: 50 / 2000 / 5000 / 100000
  const SynConfig scaled = ScaleSyn(config, 0.01);
  EXPECT_EQ(scaled.num_centers, 1u);  // rounds up to at least 1
  EXPECT_EQ(scaled.num_workers, 20u);
  EXPECT_EQ(scaled.num_delivery_points, 50u);
  EXPECT_EQ(scaled.num_tasks, 1000u);
  EXPECT_DOUBLE_EQ(scaled.expiry, config.expiry);
  // Area shrinks with sqrt(factor) so spatial densities are preserved.
  EXPECT_NEAR(scaled.area, 10.0, 1e-9);
}

TEST(SynTest, NearestAssociationBindsToClosestCenter) {
  SynConfig config = SmallSyn();
  config.association = CenterAssociation::kNearest;
  const MultiCenterInstance multi = GenerateSyn(config);
  std::vector<Point> centers;
  for (const Instance& inst : multi.centers) centers.push_back(inst.center());
  for (size_t c = 0; c < multi.centers.size(); ++c) {
    for (const Worker& w : multi.centers[c].workers()) {
      const double own = Distance(w.location, centers[c]);
      for (const Point& other : centers) {
        EXPECT_LE(own, Distance(w.location, other) + 1e-9);
      }
    }
  }
}

TEST(SynTest, UniformAssociationSpreadsAcrossCenters) {
  SynConfig config = SmallSyn();
  config.association = CenterAssociation::kUniform;
  config.num_workers = 200;
  const MultiCenterInstance multi = GenerateSyn(config);
  // Every center should get some workers with high probability.
  for (const Instance& inst : multi.centers) {
    EXPECT_GT(inst.num_workers(), 0u);
  }
}

// -------------------------------------------------------------- gMission --

GMissionConfig SmallGm() {
  GMissionConfig config;
  config.num_tasks = 120;
  config.num_workers = 15;
  config.seed = 5;
  return config;
}

TEST(GMissionTest, RawCountsMatch) {
  const RawCrowdData raw = GenerateGMissionRaw(SmallGm());
  EXPECT_EQ(raw.task_locations.size(), 120u);
  EXPECT_EQ(raw.task_expiries.size(), 120u);
  EXPECT_EQ(raw.task_rewards.size(), 120u);
  EXPECT_EQ(raw.worker_locations.size(), 15u);
}

TEST(GMissionTest, RawFieldsInRange) {
  const GMissionConfig config = SmallGm();
  const RawCrowdData raw = GenerateGMissionRaw(config);
  for (const Point& p : raw.task_locations) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, config.area);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, config.area);
  }
  for (double e : raw.task_expiries) {
    EXPECT_GE(e, config.expiry_min);
    EXPECT_LE(e, config.expiry_max);
  }
  for (double r : raw.task_rewards) EXPECT_DOUBLE_EQ(r, config.reward);
}

TEST(GMissionTest, PreparedInstanceValidates) {
  GMissionPrepConfig prep;
  prep.num_delivery_points = 25;
  const Instance inst = PrepareGMissionInstance(
      GenerateGMissionRaw(SmallGm()), prep);
  EXPECT_TRUE(inst.Validate().ok());
  EXPECT_EQ(inst.num_tasks(), 120u);
  EXPECT_EQ(inst.num_workers(), 15u);
  EXPECT_LE(inst.num_delivery_points(), 25u);
  EXPECT_GT(inst.num_delivery_points(), 0u);
}

TEST(GMissionTest, CenterIsTaskCentroid) {
  const RawCrowdData raw = GenerateGMissionRaw(SmallGm());
  GMissionPrepConfig prep;
  const Instance inst = PrepareGMissionInstance(raw, prep);
  Point centroid{0, 0};
  for (const Point& p : raw.task_locations) {
    centroid.x += p.x;
    centroid.y += p.y;
  }
  centroid.x /= static_cast<double>(raw.task_locations.size());
  centroid.y /= static_cast<double>(raw.task_locations.size());
  EXPECT_NEAR(inst.center().x, centroid.x, 1e-9);
  EXPECT_NEAR(inst.center().y, centroid.y, 1e-9);
}

TEST(GMissionTest, EveryTaskLandsInSomeDeliveryPoint) {
  GMissionPrepConfig prep;
  prep.num_delivery_points = 10;
  const Instance inst = PrepareGMissionInstance(
      GenerateGMissionRaw(SmallGm()), prep);
  size_t total = 0;
  for (const DeliveryPoint& dp : inst.delivery_points()) {
    total += dp.task_count();
  }
  EXPECT_EQ(total, 120u);
}

TEST(GMissionTest, DeterministicGivenSeeds) {
  GMissionPrepConfig prep;
  const Instance a = GenerateGMissionLike(SmallGm(), prep);
  const Instance b = GenerateGMissionLike(SmallGm(), prep);
  EXPECT_EQ(a.center(), b.center());
  EXPECT_EQ(a.num_delivery_points(), b.num_delivery_points());
  EXPECT_EQ(a.workers(), b.workers());
}

TEST(GMissionTest, EmptyTasksHandled) {
  GMissionConfig config = SmallGm();
  config.num_tasks = 0;
  GMissionPrepConfig prep;
  const Instance inst = GenerateGMissionLike(config, prep);
  EXPECT_EQ(inst.num_tasks(), 0u);
  EXPECT_EQ(inst.num_delivery_points(), 0u);
  EXPECT_EQ(inst.num_workers(), 15u);
  EXPECT_TRUE(inst.Validate().ok());
}

}  // namespace
}  // namespace fta
