#include "cluster/dbscan.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/rng.h"

namespace fta {
namespace {

std::vector<Point> Blob(Rng& rng, Point center, size_t n, double sigma) {
  std::vector<Point> pts;
  for (size_t i = 0; i < n; ++i) {
    pts.push_back({rng.Gaussian(center.x, sigma),
                   rng.Gaussian(center.y, sigma)});
  }
  return pts;
}

TEST(DbscanTest, EmptyInput) {
  const DbscanResult r = Dbscan({}, DbscanConfig{});
  EXPECT_EQ(r.num_clusters, 0u);
  EXPECT_EQ(r.num_noise, 0u);
  EXPECT_TRUE(r.labels.empty());
}

TEST(DbscanTest, SinglePointIsNoiseUnlessMinPointsOne) {
  DbscanConfig config;
  config.min_points = 2;
  const DbscanResult noise = Dbscan({{1, 1}}, config);
  EXPECT_EQ(noise.num_clusters, 0u);
  EXPECT_EQ(noise.num_noise, 1u);
  config.min_points = 1;
  const DbscanResult cluster = Dbscan({{1, 1}}, config);
  EXPECT_EQ(cluster.num_clusters, 1u);
  EXPECT_EQ(cluster.num_noise, 0u);
}

TEST(DbscanTest, RecoversSeparatedBlobsAndNoise) {
  Rng rng(41);
  std::vector<Point> pts = Blob(rng, {0, 0}, 60, 0.3);
  const std::vector<Point> blob2 = Blob(rng, {20, 20}, 60, 0.3);
  pts.insert(pts.end(), blob2.begin(), blob2.end());
  pts.push_back({10, 10});  // isolated noise point
  DbscanConfig config;
  config.epsilon = 1.0;
  config.min_points = 4;
  const DbscanResult r = Dbscan(pts, config);
  EXPECT_EQ(r.num_clusters, 2u);
  EXPECT_GE(r.num_noise, 1u);
  EXPECT_EQ(r.labels.back(), kDbscanNoise);
  // The two blobs get distinct labels.
  EXPECT_NE(r.labels[0], r.labels[60]);
}

TEST(DbscanTest, AllPointsSameClusterWhenDense) {
  Rng rng(42);
  const std::vector<Point> pts = Blob(rng, {5, 5}, 100, 0.2);
  DbscanConfig config;
  config.epsilon = 2.0;
  config.min_points = 3;
  const DbscanResult r = Dbscan(pts, config);
  EXPECT_EQ(r.num_clusters, 1u);
  EXPECT_EQ(r.num_noise, 0u);
}

TEST(DbscanTest, LabelsInRange) {
  Rng rng(43);
  std::vector<Point> pts = Blob(rng, {0, 0}, 40, 0.5);
  const std::vector<Point> blob2 = Blob(rng, {8, 8}, 40, 0.5);
  pts.insert(pts.end(), blob2.begin(), blob2.end());
  const DbscanResult r = Dbscan(pts, {1.0, 4});
  for (int32_t label : r.labels) {
    EXPECT_GE(label, kDbscanNoise);
    EXPECT_LT(label, static_cast<int32_t>(r.num_clusters));
  }
}

TEST(DbscanTest, ClusterSizesSumPlusNoiseIsTotal) {
  Rng rng(44);
  std::vector<Point> pts = Blob(rng, {0, 0}, 50, 0.4);
  const std::vector<Point> blob2 = Blob(rng, {15, 0}, 30, 0.4);
  pts.insert(pts.end(), blob2.begin(), blob2.end());
  pts.push_back({7, 30});
  const DbscanResult r = Dbscan(pts, {1.2, 4});
  size_t total = r.num_noise;
  for (size_t s : r.ClusterSizes()) total += s;
  EXPECT_EQ(total, pts.size());
}

TEST(DbscanTest, CentroidsLandNearBlobCenters) {
  Rng rng(45);
  std::vector<Point> pts = Blob(rng, {0, 0}, 80, 0.3);
  const std::vector<Point> blob2 = Blob(rng, {12, -4}, 80, 0.3);
  pts.insert(pts.end(), blob2.begin(), blob2.end());
  const DbscanResult r = Dbscan(pts, {1.0, 4});
  ASSERT_EQ(r.num_clusters, 2u);
  const std::vector<Point> centroids = r.Centroids(pts);
  for (const Point& truth : {Point{0, 0}, Point{12, -4}}) {
    double best = 1e18;
    for (const Point& c : centroids) best = std::min(best, Distance(c, truth));
    EXPECT_LT(best, 0.5);
  }
}

TEST(DbscanTest, ChainOfCorePointsFormsOneCluster) {
  // Points spaced 0.9 apart with epsilon 1.0 and min_points 2: every point
  // is core, the chain is density-connected end to end.
  std::vector<Point> pts;
  for (int i = 0; i < 20; ++i) pts.push_back({0.9 * i, 0.0});
  const DbscanResult r = Dbscan(pts, {1.0, 2});
  EXPECT_EQ(r.num_clusters, 1u);
  EXPECT_EQ(r.num_noise, 0u);
}

TEST(DbscanTest, BorderPointJoinsFirstClaimingCluster) {
  // A sparse point within epsilon of a dense blob joins it as a border
  // point instead of staying noise.
  Rng rng(46);
  std::vector<Point> pts = Blob(rng, {0, 0}, 30, 0.2);
  pts.push_back({0.7, 0.0});  // near the blob but itself not core
  const DbscanResult r = Dbscan(pts, {0.8, 10});
  EXPECT_EQ(r.num_clusters, 1u);
  EXPECT_NE(r.labels.back(), kDbscanNoise);
}

TEST(DbscanTest, DeterministicLabels) {
  Rng rng(47);
  const std::vector<Point> pts = Blob(rng, {3, 3}, 100, 1.0);
  const DbscanResult a = Dbscan(pts, {0.7, 4});
  const DbscanResult b = Dbscan(pts, {0.7, 4});
  EXPECT_EQ(a.labels, b.labels);
}

}  // namespace
}  // namespace fta
