#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "util/math_util.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"

namespace fta {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad x");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad x");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad x");
}

TEST(StatusTest, OkCodeWithMessageNormalizes) {
  Status s(StatusCode::kOk, "ignored");
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(7), 7);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::vector<int>> v = std::vector<int>{1, 2, 3};
  std::vector<int> taken = std::move(v).value();
  EXPECT_EQ(taken.size(), 3u);
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(-2.5, 7.5);
    EXPECT_GE(x, -2.5);
    EXPECT_LT(x, 7.5);
  }
}

TEST(RngTest, NextBoundedCoversRangeUniformly) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(10)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / 10 * 0.9);
    EXPECT_LT(c, kDraws / 10 * 1.1);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(12);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(-3, 3));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), -3);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gaussian();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, GaussianMeanStddev) {
  Rng rng(14);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(15);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkIndependentStreams) {
  Rng base(77);
  Rng a = base.Fork(0);
  Rng b = base.Fork(1);
  EXPECT_NE(a.Next(), b.Next());
  // Forks are stable: same (seed, stream) gives the same stream.
  Rng a2 = Rng(77).Fork(0);
  a2.Next();  // align with `a` having consumed one value
  EXPECT_EQ(a.Next(), a2.Next());
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(16);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

// ------------------------------------------------------------- MathUtil --

TEST(MathUtilTest, MeanAndStdDev) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(StdDev({1.0}), 0.0);
  EXPECT_NEAR(StdDev({2.0, 4.0}), 1.0, 1e-12);
}

TEST(MathUtilTest, MinMax) {
  EXPECT_DOUBLE_EQ(Min({3.0, -1.0, 2.0}), -1.0);
  EXPECT_DOUBLE_EQ(Max({3.0, -1.0, 2.0}), 3.0);
  EXPECT_TRUE(std::isinf(Min({})));
}

TEST(MathUtilTest, PairwiseDifferenceMatchesNaive) {
  const std::vector<double> v{0.5, 2.0, 1.0, 3.25, 3.25};
  double naive = 0.0;
  for (double a : v) {
    for (double b : v) naive += std::fabs(a - b);
  }
  naive /= static_cast<double>(v.size() * (v.size() - 1));
  EXPECT_NEAR(MeanAbsolutePairwiseDifference(v), naive, 1e-12);
}

TEST(MathUtilTest, PairwiseDifferenceEdgeCases) {
  EXPECT_DOUBLE_EQ(MeanAbsolutePairwiseDifference({}), 0.0);
  EXPECT_DOUBLE_EQ(MeanAbsolutePairwiseDifference({5.0}), 0.0);
  EXPECT_DOUBLE_EQ(MeanAbsolutePairwiseDifference({1.0, 1.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(MeanAbsolutePairwiseDifference({0.0, 2.0}), 2.0);
}

TEST(MathUtilTest, PairwiseDifferenceRandomAgainstNaive) {
  Rng rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> v(2 + rng.Index(30));
    for (double& x : v) x = rng.Uniform(0.0, 10.0);
    double naive = 0.0;
    for (double a : v) {
      for (double b : v) naive += std::fabs(a - b);
    }
    naive /= static_cast<double>(v.size() * (v.size() - 1));
    EXPECT_NEAR(MeanAbsolutePairwiseDifference(v), naive, 1e-9);
  }
}

TEST(MathUtilTest, GiniBounds) {
  EXPECT_DOUBLE_EQ(Gini({1.0, 1.0, 1.0}), 0.0);
  // Maximal inequality approaches 1 as n grows.
  EXPECT_GT(Gini({0.0, 0.0, 0.0, 0.0, 10.0}), 0.7);
  EXPECT_DOUBLE_EQ(Gini({}), 0.0);
  EXPECT_DOUBLE_EQ(Gini({0.0, 0.0}), 0.0);
}

TEST(MathUtilTest, JainFairnessIndex) {
  EXPECT_DOUBLE_EQ(JainFairnessIndex({}), 1.0);
  EXPECT_DOUBLE_EQ(JainFairnessIndex({0.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(JainFairnessIndex({3.0, 3.0, 3.0}), 1.0);
  // One worker takes everything among n=4: index = 1/4.
  EXPECT_NEAR(JainFairnessIndex({8.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
  // Monotone under equalization.
  EXPECT_GT(JainFairnessIndex({2.0, 2.0, 3.0}),
            JainFairnessIndex({1.0, 1.0, 5.0}));
}

TEST(MathUtilTest, MinMaxRatio) {
  EXPECT_DOUBLE_EQ(MinMaxRatio({}), 1.0);
  EXPECT_DOUBLE_EQ(MinMaxRatio({0.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(MinMaxRatio({2.0, 4.0}), 0.5);
  EXPECT_DOUBLE_EQ(MinMaxRatio({3.0}), 1.0);
}

TEST(MathUtilTest, ApproxComparisons) {
  EXPECT_TRUE(ApproxEq(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(ApproxEq(1.0, 1.001));
  EXPECT_TRUE(DefinitelyGreater(1.001, 1.0));
  EXPECT_FALSE(DefinitelyGreater(1.0 + 1e-12, 1.0));
}

// ------------------------------------------------------------ StringUtil --

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x", ','), (std::vector<std::string>{"x"}));
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, ParseDoubleAcceptsValid) {
  auto v = ParseDouble(" 3.5 ");
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(*v, 3.5);
  EXPECT_TRUE(ParseDouble("-1e3").ok());
}

TEST(StringUtilTest, ParseDoubleRejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("3.5x").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
}

TEST(StringUtilTest, ParseIntAcceptsValid) {
  auto v = ParseInt("-42");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, -42);
}

TEST(StringUtilTest, ParseIntRejectsGarbage) {
  EXPECT_FALSE(ParseInt("4.2").ok());
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("12!").ok());
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.239), "1.24");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("he", "hello"));
  EXPECT_TRUE(StartsWith("x", ""));
}

}  // namespace
}  // namespace fta
