// Correctness battery for the shared BestResponseEngine: bit-identical
// solver output at any thread count and with the incremental availability
// index on or off, cache coherence under random strategy churn, counter
// accounting, and agreement with the one-shot BestResponse wrapper.

#include "game/best_response.h"

#include <gtest/gtest.h>

#include <vector>

#include "game/equilibrium.h"
#include "game/fgt.h"
#include "game/iegt.h"
#include "game/init.h"
#include "model/builder.h"
#include "util/rng.h"
#include "vdps/catalog.h"

namespace fta {
namespace {

Instance RandomInstance(uint64_t seed, size_t num_dps, size_t num_workers) {
  Rng rng(seed);
  InstanceBuilder builder(Point{4, 4});
  builder.Speed(5.0);
  for (size_t d = 0; d < num_dps; ++d) {
    builder.DeliveryPoint({rng.Uniform(0, 8), rng.Uniform(0, 8)},
                          1 + rng.Index(4), rng.Uniform(1.0, 4.0));
  }
  for (size_t w = 0; w < num_workers; ++w) {
    builder.Worker({rng.Uniform(0, 8), rng.Uniform(0, 8)});
  }
  return builder.Build();
}

/// The solver-visible dynamics of a run: everything except the engine's
/// observational work counters (which legitimately differ between engine
/// configurations) must be bit-identical.
void ExpectSameDynamics(const GameResult& a, const GameResult& b) {
  EXPECT_EQ(a.assignment.routes(), b.assignment.routes());
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.early_stopped, b.early_stopped);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].iteration, b.trace[i].iteration);
    // Bit-identical, not approximately equal: the parallel reduce must
    // reproduce the serial path exactly.
    EXPECT_EQ(a.trace[i].payoff_difference, b.trace[i].payoff_difference);
    EXPECT_EQ(a.trace[i].average_payoff, b.trace[i].average_payoff);
    EXPECT_EQ(a.trace[i].potential, b.trace[i].potential);
    EXPECT_EQ(a.trace[i].num_changes, b.trace[i].num_changes);
  }
}

std::vector<BestResponseConfig> EngineVariants() {
  std::vector<BestResponseConfig> variants;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    for (bool incremental : {true, false}) {
      BestResponseConfig config;
      config.num_threads = threads;
      config.use_incremental_index = incremental;
      config.min_parallel_candidates = 1;  // force fan-out on tiny catalogs
      variants.push_back(config);
    }
  }
  return variants;
}

class EngineSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineSeeds, FgtDeterministicAcrossThreadsAndIndexModes) {
  const Instance inst = RandomInstance(GetParam(), 12, 5);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  FgtConfig config;
  config.record_trace = true;
  config.seed = GetParam() * 31 + 7;
  const GameResult reference = SolveFgt(inst, catalog, config);
  for (const BestResponseConfig& engine : EngineVariants()) {
    FgtConfig variant = config;
    variant.engine = engine;
    const GameResult run = SolveFgt(inst, catalog, variant);
    ExpectSameDynamics(reference, run);
    EXPECT_EQ(reference.assignment.PayoffDifference(inst),
              run.assignment.PayoffDifference(inst));
  }
}

TEST_P(EngineSeeds, IegtDeterministicAcrossThreadsAndIndexModes) {
  const Instance inst = RandomInstance(GetParam() + 500, 12, 5);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  IegtConfig config;
  config.record_trace = true;
  config.seed = GetParam() * 17 + 3;
  const GameResult reference = SolveIegt(inst, catalog, config);
  for (const BestResponseConfig& engine : EngineVariants()) {
    IegtConfig variant = config;
    variant.engine = engine;
    const GameResult run = SolveIegt(inst, catalog, variant);
    ExpectSameDynamics(reference, run);
    EXPECT_EQ(reference.assignment.PayoffDifference(inst),
              run.assignment.PayoffDifference(inst));
  }
}

TEST_P(EngineSeeds, EvaluateMatchesFreeFunctionBestResponse) {
  const Instance inst = RandomInstance(GetParam() + 1000, 10, 4);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  const IauParams params;
  JointState state(inst, catalog);
  Rng rng(GetParam());
  RandomSingletonInit(state, rng);
  BestResponseConfig config;
  config.num_threads = 2;
  config.min_parallel_candidates = 1;
  BestResponseEngine engine(state, params, config);
  // Interleave random churn with comparisons so the cache sees real dirt.
  for (int step = 0; step < 50; ++step) {
    for (size_t w = 0; w < inst.num_workers(); ++w) {
      EXPECT_EQ(engine.BestResponse(w), BestResponse(state, w, params));
    }
    const size_t w = rng.Index(inst.num_workers());
    const auto& strategies = catalog.strategies(w);
    if (strategies.empty()) continue;
    const int32_t idx = rng.Bernoulli(0.2)
                            ? kNullStrategy
                            : static_cast<int32_t>(rng.Index(strategies.size()));
    if (state.IsAvailable(w, idx)) engine.Apply(w, idx);
  }
}

TEST_P(EngineSeeds, AvailabilityCacheMatchesGroundTruthUnderChurn) {
  const Instance inst = RandomInstance(GetParam() + 2000, 10, 4);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  JointState state(inst, catalog);
  BestResponseEngine engine(state, IauParams(), BestResponseConfig());
  Rng rng(GetParam() * 3 + 1);
  for (int step = 0; step < 200; ++step) {
    const size_t w = rng.Index(inst.num_workers());
    const auto& strategies = catalog.strategies(w);
    if (!strategies.empty()) {
      const int32_t idx =
          rng.Bernoulli(0.25)
              ? kNullStrategy
              : static_cast<int32_t>(rng.Index(strategies.size()));
      if (state.IsAvailable(w, idx)) engine.Apply(w, idx);
    }
    // Every cached availability bit must agree with a fresh DP walk.
    for (size_t v = 0; v < inst.num_workers(); ++v) {
      for (size_t i = 0; i < catalog.strategies(v).size(); ++i) {
        const int32_t idx = static_cast<int32_t>(i);
        EXPECT_EQ(engine.IsAvailableCached(v, idx), state.IsAvailable(v, idx))
            << "worker " << v << " strategy " << i << " step " << step;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineSeeds,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16, 17, 18, 19,
                                           20));

TEST(BestResponseEngineTest, CacheSkipsGrowAndScansShrinkAfterWarmup) {
  const Instance inst = RandomInstance(99, 14, 6);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  FgtConfig with_index;
  with_index.record_trace = true;
  FgtConfig without_index = with_index;
  without_index.engine.use_incremental_index = false;
  const GameResult warm = SolveFgt(inst, catalog, with_index);
  const GameResult cold = SolveFgt(inst, catalog, without_index);
  ExpectSameDynamics(warm, cold);
  EXPECT_EQ(cold.engine.cache_skips, 0u);
  EXPECT_GT(warm.engine.cache_skips, 0u);
  // The incremental index must do strictly less availability work overall,
  // and the per-round scan counts after round 1 must drop versus cold.
  EXPECT_LT(warm.engine.strategies_scanned, cold.engine.strategies_scanned);
  ASSERT_GE(warm.trace.size(), 3u);
  for (size_t i = 2; i < warm.trace.size(); ++i) {
    EXPECT_LE(warm.trace[i].engine.strategies_scanned,
              cold.trace[i].engine.strategies_scanned);
  }
}

TEST(BestResponseEngineTest, ParallelBatchCounterTracksFanOuts) {
  const Instance inst = RandomInstance(7, 12, 5);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  FgtConfig serial;
  FgtConfig parallel = serial;
  parallel.engine.num_threads = 4;
  parallel.engine.min_parallel_candidates = 1;
  const GameResult a = SolveFgt(inst, catalog, serial);
  const GameResult b = SolveFgt(inst, catalog, parallel);
  EXPECT_EQ(a.engine.parallel_batches, 0u);
  EXPECT_GT(b.engine.parallel_batches, 0u);
  EXPECT_EQ(a.assignment.routes(), b.assignment.routes());
  // The set of candidates examined is thread-count invariant.
  EXPECT_EQ(a.engine.strategies_scanned + a.engine.cache_skips,
            b.engine.strategies_scanned + b.engine.cache_skips);
}

TEST(BestResponseEngineTest, EquilibriumConsumersAgreeAcrossEngineConfigs) {
  const Instance inst = RandomInstance(21, 5, 2);
  VdpsConfig vdps;
  vdps.max_set_size = 2;
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, vdps);
  const GameResult fgt = SolveFgt(inst, catalog);
  for (const BestResponseConfig& engine : EngineVariants()) {
    const EquilibriumReport report = AnalyzeEquilibrium(
        inst, catalog, fgt.assignment, IauParams(), engine);
    EXPECT_TRUE(report.is_nash);
    const NashEnumeration nash =
        EnumeratePureNash(inst, catalog, IauParams(), 2'000'000, engine);
    ASSERT_TRUE(nash.complete);
    bool found = false;
    for (const Assignment& eq : nash.equilibria) {
      found = found || eq.routes() == fgt.assignment.routes();
    }
    EXPECT_TRUE(found);
  }
}

TEST(BestResponseEngineTest, EmptyCatalogWorkerKeepsNullStrategy) {
  // A worker that cannot reach anything must best-respond with null.
  std::vector<DeliveryPoint> dps;
  dps.emplace_back(Point{100, 100},
                   std::vector<SpatialTask>{SpatialTask{0, 0.1, 1.0}});
  Instance inst(Point{0, 0}, std::move(dps), {Worker{{0, 0}, 3}},
                TravelModel(1.0));
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  JointState state(inst, catalog);
  BestResponseEngine engine(state, IauParams(), BestResponseConfig());
  EXPECT_EQ(engine.BestResponse(0), kNullStrategy);
  EXPECT_FALSE(engine.Step(0));
  EXPECT_TRUE(engine.IsNash());
}

}  // namespace
}  // namespace fta
