#include "model/builder.h"

#include <gtest/gtest.h>

namespace fta {
namespace {

TEST(InstanceBuilderTest, FluentConstruction) {
  const Instance inst = InstanceBuilder(Point{2, 2})
                            .Speed(1.0)
                            .DeliveryPoint({3, 3}, 6, 8.0)
                            .DeliveryPoint({1, 3}, 5, 8.0)
                            .Worker({1, 2})
                            .Worker({3, 1}, 2)
                            .Build();
  EXPECT_EQ(inst.num_delivery_points(), 2u);
  EXPECT_EQ(inst.num_workers(), 2u);
  EXPECT_EQ(inst.num_tasks(), 11u);
  EXPECT_DOUBLE_EQ(inst.travel().speed(), 1.0);
  EXPECT_EQ(inst.worker(1).max_delivery_points, 2u);
  EXPECT_DOUBLE_EQ(inst.delivery_point(0).total_reward(), 6.0);
}

TEST(InstanceBuilderTest, ExplicitTasksGetRetargeted) {
  const Instance inst =
      InstanceBuilder(Point{0, 0})
          .DeliveryPointWithTasks({1, 1}, {SpatialTask{99, 2.0, 3.0},
                                           SpatialTask{42, 1.0, 1.0}})
          .Build();
  // delivery_point fields are rewritten to the actual index.
  for (const SpatialTask& t : inst.delivery_point(0).tasks()) {
    EXPECT_EQ(t.delivery_point, 0u);
  }
  EXPECT_DOUBLE_EQ(inst.delivery_point(0).total_reward(), 4.0);
  EXPECT_DOUBLE_EQ(inst.delivery_point(0).earliest_expiry(), 1.0);
}

TEST(InstanceBuilderTest, TaskAppendsToExistingPoint) {
  const Instance inst = InstanceBuilder(Point{0, 0})
                            .DeliveryPoint({1, 0}, 1, 5.0)
                            .Task(0, 2.0, 0.5)
                            .Build();
  EXPECT_EQ(inst.delivery_point(0).task_count(), 2u);
  EXPECT_DOUBLE_EQ(inst.delivery_point(0).earliest_expiry(), 2.0);
}

TEST(InstanceBuilderTest, TryBuildRejectsBadData) {
  EXPECT_FALSE(InstanceBuilder(Point{0, 0})
                   .DeliveryPoint({1, 1}, 1, -2.0)  // negative expiry
                   .TryBuild()
                   .ok());
  EXPECT_FALSE(
      InstanceBuilder(Point{0, 0}).Speed(0.0).TryBuild().ok());
}

TEST(InstanceBuilderTest, EmptyInstanceIsValid) {
  const StatusOr<Instance> inst = InstanceBuilder(Point{5, 5}).TryBuild();
  ASSERT_TRUE(inst.ok());
  EXPECT_EQ(inst->num_workers(), 0u);
  EXPECT_EQ(inst->num_delivery_points(), 0u);
}

}  // namespace
}  // namespace fta
