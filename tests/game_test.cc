#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "game/fgt.h"
#include "game/iau.h"
#include "game/iegt.h"
#include "game/init.h"
#include "game/joint_state.h"
#include "game/potential.h"
#include "util/math_util.h"
#include "util/rng.h"
#include "vdps/catalog.h"

namespace fta {
namespace {

Instance RandomInstance(uint64_t seed, size_t num_dps, size_t num_workers,
                        double area = 10.0) {
  Rng rng(seed);
  std::vector<DeliveryPoint> dps;
  for (uint32_t d = 0; d < num_dps; ++d) {
    std::vector<SpatialTask> tasks;
    const size_t n = 1 + rng.Index(4);
    for (size_t t = 0; t < n; ++t) {
      tasks.push_back(SpatialTask{d, rng.Uniform(1.0, 4.0), 1.0});
    }
    dps.emplace_back(Point{rng.Uniform(0, area), rng.Uniform(0, area)},
                     std::move(tasks));
  }
  std::vector<Worker> workers;
  for (size_t w = 0; w < num_workers; ++w) {
    workers.push_back(
        Worker{{rng.Uniform(0, area), rng.Uniform(0, area)}, 3});
  }
  return Instance(Point{area / 2, area / 2}, std::move(dps),
                  std::move(workers), TravelModel(5.0));
}

// ------------------------------------------------------------------- IAU --

TEST(IauTest, NoOthersIsOwnPayoff) {
  EXPECT_DOUBLE_EQ(Iau(3.0, {}, IauParams{}), 3.0);
}

TEST(IauTest, ClosedFormSmallExample) {
  // own=2, others={1, 4}; MP = (4-2) = 2, LP = (2-1) = 1, m = 2.
  // IAU = 2 - 0.5/2*2 - 0.5/2*1 = 2 - 0.5 - 0.25 = 1.25.
  EXPECT_NEAR(Iau(2.0, {1.0, 4.0}, IauParams{0.5, 0.5}), 1.25, 1e-12);
}

TEST(IauTest, AsymmetricWeights) {
  // alpha penalizes others-above; beta penalizes own-above.
  const double only_mp = Iau(1.0, {5.0}, IauParams{1.0, 0.0});
  EXPECT_NEAR(only_mp, 1.0 - 4.0, 1e-12);
  const double only_lp = Iau(5.0, {1.0}, IauParams{0.0, 1.0});
  EXPECT_NEAR(only_lp, 5.0 - 4.0, 1e-12);
}

TEST(IauTest, EqualPayoffsNoPenalty) {
  EXPECT_DOUBLE_EQ(Iau(2.0, {2.0, 2.0, 2.0}, IauParams{}), 2.0);
}

TEST(OthersViewTest, MatchesNaiveIau) {
  Rng rng(61);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<double> others(1 + rng.Index(20));
    for (double& p : others) p = rng.Uniform(0, 5);
    OthersView view(others);
    for (int probe = 0; probe < 10; ++probe) {
      const double own = rng.Uniform(-1, 6);
      const IauParams params{rng.Uniform(0, 1), rng.Uniform(0, 1)};
      EXPECT_NEAR(view.Iau(own, params), Iau(own, others, params), 1e-9);
    }
  }
}

TEST(OthersViewTest, MpLpDecomposition) {
  OthersView view({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(view.Mp(2.0), 1.0);
  EXPECT_DOUBLE_EQ(view.Lp(2.0), 1.0);
  EXPECT_DOUBLE_EQ(view.Mp(0.0), 6.0);
  EXPECT_DOUBLE_EQ(view.Lp(0.0), 0.0);
  EXPECT_DOUBLE_EQ(view.Mp(5.0), 0.0);
  EXPECT_DOUBLE_EQ(view.Lp(5.0), 9.0);
}

TEST(OthersViewTest, TiesContributeNothing) {
  OthersView view({2.0, 2.0});
  EXPECT_DOUBLE_EQ(view.Mp(2.0), 0.0);
  EXPECT_DOUBLE_EQ(view.Lp(2.0), 0.0);
}

// ------------------------------------------------------------- Potential --

TEST(PotentialTest, ExactPotentialClosedForm) {
  // Φ = ΣP − a/(n−1) Σ_{k<l}|P_k−P_l| with a=0.5, n=2:
  // {1, 3}: 4 − 0.5·2 = 3.
  EXPECT_NEAR(ExactPotential({1.0, 3.0}, 0.5), 3.0, 1e-12);
  EXPECT_NEAR(ExactPotential({2.0}, 0.5), 2.0, 1e-12);
  EXPECT_NEAR(ExactPotential({}, 0.5), 0.0, 1e-12);
}

/// The exact-potential property (refined Lemma 2): a unilateral payoff
/// change shifts Φ by exactly the deviator's IAU change when alpha == beta.
TEST(PotentialTest, UnilateralDeviationProperty) {
  Rng rng(62);
  const double alpha = 0.5;
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 2 + rng.Index(10);
    std::vector<double> payoffs(n);
    for (double& p : payoffs) p = rng.Uniform(0, 5);
    const size_t i = rng.Index(n);
    const double new_payoff = rng.Uniform(0, 5);

    std::vector<double> others;
    for (size_t j = 0; j < n; ++j) {
      if (j != i) others.push_back(payoffs[j]);
    }
    const IauParams params{alpha, alpha};
    const double u_before = Iau(payoffs[i], others, params);
    const double u_after = Iau(new_payoff, others, params);
    const double phi_before = ExactPotential(payoffs, alpha);
    std::vector<double> payoffs_after = payoffs;
    payoffs_after[i] = new_payoff;
    const double phi_after = ExactPotential(payoffs_after, alpha);
    EXPECT_NEAR(phi_after - phi_before, u_after - u_before, 1e-9);
  }
}

TEST(PotentialTest, PaperPotentialIsSumOfIaus) {
  const std::vector<double> payoffs{1.0, 2.0, 4.0};
  const IauParams params{0.5, 0.5};
  double expected = 0.0;
  expected += Iau(1.0, {2.0, 4.0}, params);
  expected += Iau(2.0, {1.0, 4.0}, params);
  expected += Iau(4.0, {1.0, 2.0}, params);
  EXPECT_NEAR(PaperPotential(payoffs, params), expected, 1e-12);
}

// ------------------------------------------------------------ JointState --

TEST(JointStateTest, StartsAllNull) {
  const Instance inst = RandomInstance(63, 6, 3);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  JointState state(inst, catalog);
  for (size_t w = 0; w < 3; ++w) {
    EXPECT_EQ(state.strategy_of(w), kNullStrategy);
    EXPECT_DOUBLE_EQ(state.payoff_of(w), 0.0);
  }
  for (uint32_t d = 0; d < inst.num_delivery_points(); ++d) {
    EXPECT_EQ(state.owner_of(d), -1);
  }
}

TEST(JointStateTest, ApplyClaimsAndReleases) {
  const Instance inst = RandomInstance(64, 8, 2);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  ASSERT_GT(catalog.strategies(0).size(), 1u);
  JointState state(inst, catalog);
  state.Apply(0, 0);
  const auto& dps0 = catalog.entry(catalog.strategies(0)[0].entry_id).dps;
  for (uint32_t d : dps0) EXPECT_EQ(state.owner_of(d), 0);
  EXPECT_GT(state.payoff_of(0), 0.0);
  state.Apply(0, kNullStrategy);
  for (uint32_t d : dps0) EXPECT_EQ(state.owner_of(d), -1);
  EXPECT_DOUBLE_EQ(state.payoff_of(0), 0.0);
}

TEST(JointStateTest, AvailabilityBlocksOverlap) {
  const Instance inst = RandomInstance(65, 8, 2);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  JointState state(inst, catalog);
  ASSERT_FALSE(catalog.strategies(0).empty());
  state.Apply(0, 0);
  const auto& held = catalog.entry(catalog.strategies(0)[0].entry_id).dps;
  // Any of worker 1's strategies overlapping `held` must be unavailable.
  for (size_t i = 0; i < catalog.strategies(1).size(); ++i) {
    const auto& dps =
        catalog.entry(catalog.strategies(1)[i].entry_id).dps;
    bool overlaps = false;
    for (uint32_t d : dps) {
      for (uint32_t h : held) overlaps = overlaps || d == h;
    }
    EXPECT_EQ(state.IsAvailable(1, static_cast<int32_t>(i)), !overlaps);
  }
}

TEST(JointStateTest, OwnStrategyOverlapAllowed) {
  const Instance inst = RandomInstance(66, 8, 1);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  JointState state(inst, catalog);
  // Every strategy is available to the holder itself even when it overlaps
  // what the holder already owns.
  ASSERT_FALSE(catalog.strategies(0).empty());
  state.Apply(0, 0);
  for (size_t i = 0; i < catalog.strategies(0).size(); ++i) {
    EXPECT_TRUE(state.IsAvailable(0, static_cast<int32_t>(i)));
  }
}

TEST(JointStateTest, ToAssignmentIsValid) {
  const Instance inst = RandomInstance(67, 10, 4);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  JointState state(inst, catalog);
  Rng rng(5);
  RandomSingletonInit(state, rng);
  EXPECT_TRUE(state.ToAssignment().Validate(inst).ok());
}

TEST(RandomSingletonInitTest, OnlySingletons) {
  const Instance inst = RandomInstance(68, 10, 5);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  JointState state(inst, catalog);
  Rng rng(6);
  RandomSingletonInit(state, rng);
  for (size_t w = 0; w < inst.num_workers(); ++w) {
    if (state.strategy_of(w) == kNullStrategy) continue;
    const auto& st =
        catalog.strategies(w)[static_cast<size_t>(state.strategy_of(w))];
    EXPECT_EQ(catalog.entry(st.entry_id).dps.size(), 1u);
  }
}

// ------------------------------------------------------------------- FGT --

class FgtPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FgtPropertyTest, ConvergesToVerifiedNash) {
  const Instance inst = RandomInstance(GetParam(), 10, 5);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  FgtConfig config;
  config.seed = GetParam() * 7 + 1;
  const GameResult result = SolveFgt(inst, catalog, config);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.assignment.Validate(inst).ok());

  // Rebuild the final joint state and verify the Nash property directly.
  JointState state(inst, catalog);
  for (size_t w = 0; w < inst.num_workers(); ++w) {
    const Route& route = result.assignment.route(w);
    if (route.empty()) continue;
    int32_t idx = kNullStrategy;
    for (size_t i = 0; i < catalog.strategies(w).size(); ++i) {
      if (catalog.strategies(w)[i].route == route) {
        idx = static_cast<int32_t>(i);
        break;
      }
    }
    ASSERT_NE(idx, kNullStrategy) << "assignment route not in catalog";
    state.Apply(w, idx);
  }
  EXPECT_TRUE(IsPureNashEquilibrium(state, config.iau));
}

TEST_P(FgtPropertyTest, PotentialIsMonotoneAlongTrace) {
  const Instance inst = RandomInstance(GetParam() + 100, 10, 5);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  FgtConfig config;
  config.record_trace = true;
  const GameResult result = SolveFgt(inst, catalog, config);
  ASSERT_GE(result.trace.size(), 2u);
  for (size_t i = 1; i < result.trace.size(); ++i) {
    EXPECT_GE(result.trace[i].potential,
              result.trace[i - 1].potential - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FgtPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(FgtTest, EmptyInstance) {
  Instance inst(Point{0, 0}, {}, {});
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  const GameResult result = SolveFgt(inst, catalog);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.assignment.num_workers(), 0u);
}

TEST(FgtTest, WorkerWithNoStrategiesStaysNull) {
  std::vector<DeliveryPoint> dps;
  dps.emplace_back(Point{100, 100},
                   std::vector<SpatialTask>{SpatialTask{0, 0.1, 1.0}});
  Instance inst(Point{0, 0}, std::move(dps), {Worker{{0, 0}, 3}},
                TravelModel(1.0));
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  const GameResult result = SolveFgt(inst, catalog);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.assignment.route(0).empty());
}

TEST(FgtTest, SingleWorkerTakesBestStrategy) {
  const Instance inst = RandomInstance(70, 8, 1);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  ASSERT_FALSE(catalog.strategies(0).empty());
  const GameResult result = SolveFgt(inst, catalog);
  // With |W| = 1 there is no inequity penalty: IAU = payoff, so the best
  // response is the max-payoff strategy.
  const RouteEvaluation eval =
      EvaluateRoute(inst, 0, result.assignment.route(0));
  EXPECT_NEAR(eval.payoff, catalog.strategies(0)[0].payoff, 1e-9);
}

TEST(FgtTest, TraceRecordsInitialAndFinal) {
  const Instance inst = RandomInstance(71, 8, 3);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  FgtConfig config;
  config.record_trace = true;
  const GameResult result = SolveFgt(inst, catalog, config);
  ASSERT_FALSE(result.trace.empty());
  EXPECT_EQ(result.trace.front().iteration, 0);
  EXPECT_EQ(result.trace.back().num_changes, 0u);  // converged round
}

TEST(FgtTest, DeterministicGivenSeed) {
  const Instance inst = RandomInstance(72, 9, 4);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  FgtConfig config;
  config.seed = 99;
  const GameResult a = SolveFgt(inst, catalog, config);
  const GameResult b = SolveFgt(inst, catalog, config);
  EXPECT_EQ(a.assignment.routes(), b.assignment.routes());
}

// ------------------------------------------------------------------ IEGT --

TEST(ReplicatorDynamicsTest, SignMatchesPayoffVsAverage) {
  const Instance inst = RandomInstance(73, 10, 4);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  JointState state(inst, catalog);
  Rng rng(8);
  RandomSingletonInit(state, rng);
  const std::vector<double> dyn = ReplicatorDynamics(state);
  const double avg = Mean(state.payoffs());
  for (size_t w = 0; w < inst.num_workers(); ++w) {
    if (state.strategy_of(w) == kNullStrategy) {
      EXPECT_DOUBLE_EQ(dyn[w], 0.0);
    } else if (state.payoff_of(w) > avg) {
      EXPECT_GT(dyn[w], 0.0);
    } else if (state.payoff_of(w) < avg) {
      EXPECT_LT(dyn[w], 0.0);
    }
  }
}

TEST(ReplicatorDynamicsTest, SumIsNonNegativeMeanDeviation) {
  // Σ σ(U−Ū) over in-use strategies equals -(share)·Σ_null (0−Ū) ≥ 0 when
  // some workers are null; with all workers in use it is exactly 0.
  const Instance inst = RandomInstance(74, 12, 3);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  JointState state(inst, catalog);
  Rng rng(9);
  RandomSingletonInit(state, rng);
  bool all_assigned = true;
  for (size_t w = 0; w < inst.num_workers(); ++w) {
    all_assigned = all_assigned && state.strategy_of(w) != kNullStrategy;
  }
  const std::vector<double> dyn = ReplicatorDynamics(state);
  double sum = 0.0;
  for (double d : dyn) sum += d;
  if (all_assigned) {
    EXPECT_NEAR(sum, 0.0, 1e-9);
  } else {
    EXPECT_GE(sum, -1e-9);
  }
}

class IegtPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IegtPropertyTest, ConvergesToValidAssignment) {
  const Instance inst = RandomInstance(GetParam() + 200, 10, 5);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  IegtConfig config;
  config.seed = GetParam();
  const GameResult result = SolveIegt(inst, catalog, config);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.assignment.Validate(inst).ok());
}

TEST_P(IegtPropertyTest, AveragePayoffNeverDecreases) {
  // Every IEGT move strictly raises the mover's payoff and leaves others
  // unchanged, so the population average is monotone along the trace.
  const Instance inst = RandomInstance(GetParam() + 300, 10, 5);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  IegtConfig config;
  config.record_trace = true;
  config.seed = GetParam();
  const GameResult result = SolveIegt(inst, catalog, config);
  for (size_t i = 1; i < result.trace.size(); ++i) {
    EXPECT_GE(result.trace[i].average_payoff,
              result.trace[i - 1].average_payoff - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IegtPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(IegtTest, EmptyInstance) {
  Instance inst(Point{0, 0}, {}, {});
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  const GameResult result = SolveIegt(inst, catalog);
  EXPECT_TRUE(result.converged);
}

TEST(IegtTest, DeterministicGivenSeed) {
  const Instance inst = RandomInstance(75, 9, 4);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  IegtConfig config;
  config.seed = 123;
  const GameResult a = SolveIegt(inst, catalog, config);
  const GameResult b = SolveIegt(inst, catalog, config);
  EXPECT_EQ(a.assignment.routes(), b.assignment.routes());
}

// ---------------------------------------------------------- Update orders --

class UpdateOrderTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UpdateOrderTest, AllOrdersReachVerifiedNash) {
  const Instance inst = RandomInstance(GetParam() + 400, 10, 5);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  for (UpdateOrder order : {UpdateOrder::kSequential,
                            UpdateOrder::kRandomPermutation,
                            UpdateOrder::kLowestPayoffFirst}) {
    FgtConfig config;
    config.order = order;
    config.seed = GetParam();
    const GameResult result = SolveFgt(inst, catalog, config);
    EXPECT_TRUE(result.converged);
    EXPECT_TRUE(result.assignment.Validate(inst).ok());
    // Verify Nash directly by rebuilding the state.
    JointState state(inst, catalog);
    for (size_t w = 0; w < inst.num_workers(); ++w) {
      const Route& route = result.assignment.route(w);
      if (route.empty()) continue;
      for (size_t i = 0; i < catalog.strategies(w).size(); ++i) {
        if (catalog.strategies(w)[i].route == route) {
          state.Apply(w, static_cast<int32_t>(i));
          break;
        }
      }
    }
    EXPECT_TRUE(IsPureNashEquilibrium(state, config.iau))
        << "order " << static_cast<int>(order);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpdateOrderTest, ::testing::Values(1, 2, 3));

TEST(UpdateOrderTest, RandomOrderIsSeedDeterministic) {
  const Instance inst = RandomInstance(410, 10, 5);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  FgtConfig config;
  config.order = UpdateOrder::kRandomPermutation;
  config.seed = 77;
  const GameResult a = SolveFgt(inst, catalog, config);
  const GameResult b = SolveFgt(inst, catalog, config);
  EXPECT_EQ(a.assignment.routes(), b.assignment.routes());
}

// --------------------------------------------------------- Early stopping --

TEST(EarlyStopMonitorTest, DisabledNeverStops) {
  EarlyStopMonitor monitor(EarlyStopRule{});  // patience 0
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(monitor.ShouldStop(1.0));
}

TEST(EarlyStopMonitorTest, StopsAfterPatienceStaleRounds) {
  EarlyStopMonitor monitor(EarlyStopRule{0.01, 3});
  EXPECT_FALSE(monitor.ShouldStop(1.0));   // first value: improvement
  EXPECT_FALSE(monitor.ShouldStop(0.999)); // < tolerance: stale 1
  EXPECT_FALSE(monitor.ShouldStop(1.0));   // stale 2
  EXPECT_TRUE(monitor.ShouldStop(1.0));    // stale 3 -> stop
}

TEST(EarlyStopMonitorTest, RealImprovementResetsPatience) {
  EarlyStopMonitor monitor(EarlyStopRule{0.01, 2});
  EXPECT_FALSE(monitor.ShouldStop(1.0));
  EXPECT_FALSE(monitor.ShouldStop(1.0));  // stale 1
  EXPECT_FALSE(monitor.ShouldStop(0.5));  // big improvement: reset
  EXPECT_FALSE(monitor.ShouldStop(0.5));  // stale 1
  EXPECT_TRUE(monitor.ShouldStop(0.5));   // stale 2 -> stop
}

TEST(EarlyStopTest, AggressiveRuleCutsFgtShort) {
  const Instance inst = RandomInstance(95, 12, 6);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  FgtConfig full;
  const GameResult reference = SolveFgt(inst, catalog, full);
  FgtConfig eager = full;
  eager.early_stop = EarlyStopRule{1e9, 1};  // everything counts as stale
  const GameResult stopped = SolveFgt(inst, catalog, eager);
  if (!stopped.converged) {
    EXPECT_TRUE(stopped.early_stopped);
    EXPECT_LE(stopped.rounds, reference.rounds);
  }
  EXPECT_TRUE(stopped.assignment.Validate(inst).ok());
}

TEST(EarlyStopTest, AggressiveRuleCutsIegtShort) {
  const Instance inst = RandomInstance(96, 12, 6);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  IegtConfig eager;
  eager.early_stop = EarlyStopRule{1e9, 1};
  const GameResult stopped = SolveIegt(inst, catalog, eager);
  EXPECT_TRUE(stopped.converged || stopped.early_stopped);
  EXPECT_TRUE(stopped.assignment.Validate(inst).ok());
}

TEST(EarlyStopTest, LooseRuleDoesNotChangeConvergedResult) {
  const Instance inst = RandomInstance(97, 10, 5);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  FgtConfig plain;
  FgtConfig patient = plain;
  patient.early_stop = EarlyStopRule{1e-12, 1000};  // never triggers
  const GameResult a = SolveFgt(inst, catalog, plain);
  const GameResult b = SolveFgt(inst, catalog, patient);
  EXPECT_EQ(a.assignment.routes(), b.assignment.routes());
  EXPECT_FALSE(b.early_stopped);
}

TEST(IegtTest, TerminalStateHasNoPressuredImprover) {
  // At the improved evolutionary equilibrium, no below-average worker has
  // an available strictly better strategy.
  const Instance inst = RandomInstance(76, 12, 5);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  IegtConfig config;
  config.seed = 4;
  const GameResult result = SolveIegt(inst, catalog, config);
  ASSERT_TRUE(result.converged);

  JointState state(inst, catalog);
  for (size_t w = 0; w < inst.num_workers(); ++w) {
    const Route& route = result.assignment.route(w);
    if (route.empty()) continue;
    for (size_t i = 0; i < catalog.strategies(w).size(); ++i) {
      if (catalog.strategies(w)[i].route == route) {
        state.Apply(w, static_cast<int32_t>(i));
        break;
      }
    }
  }
  const double avg = Mean(state.payoffs());
  for (size_t w = 0; w < inst.num_workers(); ++w) {
    if (state.payoff_of(w) >= avg - kEps) continue;
    for (size_t i = 0; i < catalog.strategies(w).size(); ++i) {
      const int32_t idx = static_cast<int32_t>(i);
      if (idx == state.strategy_of(w)) continue;
      if (catalog.strategies(w)[i].payoff > state.payoff_of(w) + kEps) {
        EXPECT_FALSE(state.IsAvailable(w, idx))
            << "worker " << w << " still has a better available strategy";
      }
    }
  }
}

}  // namespace
}  // namespace fta
