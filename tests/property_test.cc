// Cross-module property tests: randomized invariants that tie the pieces
// together (metric identities, scale/translation laws, global optimality
// sanity, index equivalences).

#include <gtest/gtest.h>

#include <vector>

#include "baseline/exhaustive.h"
#include "baseline/gta.h"
#include "baseline/mpta.h"
#include "game/equilibrium.h"
#include "game/fgt.h"
#include "game/iau.h"
#include "game/iegt.h"
#include "geo/distance_matrix.h"
#include "geo/grid_index.h"
#include "geo/kdtree.h"
#include "model/builder.h"
#include "model/route.h"
#include "util/math_util.h"
#include "util/rng.h"
#include "vdps/catalog.h"

namespace fta {
namespace {

Instance RandomInstance(uint64_t seed, size_t num_dps, size_t num_workers,
                        double speed = 5.0) {
  Rng rng(seed);
  InstanceBuilder builder(Point{4, 4});
  builder.Speed(speed);
  for (size_t d = 0; d < num_dps; ++d) {
    builder.DeliveryPoint({rng.Uniform(0, 8), rng.Uniform(0, 8)},
                          1 + rng.Index(4), rng.Uniform(1.0, 4.0));
  }
  for (size_t w = 0; w < num_workers; ++w) {
    builder.Worker({rng.Uniform(0, 8), rng.Uniform(0, 8)});
  }
  return builder.Build();
}

class PropertySeeds : public ::testing::TestWithParam<uint64_t> {};

/// Arrival times are equivariant under start offsets: starting o later
/// shifts every arrival by exactly o.
TEST_P(PropertySeeds, RouteOffsetShiftEquivariance) {
  Rng rng(GetParam());
  const Instance inst = RandomInstance(GetParam(), 8, 0);
  for (int trial = 0; trial < 20; ++trial) {
    // Random route over distinct delivery points.
    std::vector<uint32_t> ids(inst.num_delivery_points());
    for (uint32_t i = 0; i < ids.size(); ++i) ids[i] = i;
    rng.Shuffle(ids);
    const Route route(ids.begin(),
                      ids.begin() + 1 + static_cast<ptrdiff_t>(rng.Index(4)));
    const double offset = rng.Uniform(0.0, 2.0);
    const RouteEvaluation base = EvaluateRouteFromCenter(inst, route, 0.0);
    const RouteEvaluation shifted =
        EvaluateRouteFromCenter(inst, route, offset);
    ASSERT_EQ(base.arrivals.size(), shifted.arrivals.size());
    for (size_t i = 0; i < base.arrivals.size(); ++i) {
      EXPECT_NEAR(shifted.arrivals[i], base.arrivals[i] + offset, 1e-9);
    }
    EXPECT_NEAR(shifted.slack, base.slack - offset, 1e-9);
  }
}

/// Doubling the speed halves travel times and doubles payoffs.
TEST_P(PropertySeeds, PayoffScalesWithSpeed) {
  const Instance slow = RandomInstance(GetParam(), 8, 3, 5.0);
  const Instance fast = RandomInstance(GetParam(), 8, 3, 10.0);
  const Route route{0, 3, 5};
  const RouteEvaluation a = EvaluateRoute(slow, 0, route);
  const RouteEvaluation b = EvaluateRoute(fast, 0, route);
  EXPECT_NEAR(b.total_time, a.total_time / 2.0, 1e-9);
  EXPECT_NEAR(b.payoff, a.payoff * 2.0, 1e-9);
}

/// P_dif is translation-invariant and positively homogeneous; Gini and
/// Jain are scale-invariant.
TEST_P(PropertySeeds, FairnessMetricLaws) {
  Rng rng(GetParam() * 7 + 1);
  std::vector<double> v(3 + rng.Index(20));
  for (double& x : v) x = rng.Uniform(0.1, 10.0);
  std::vector<double> shifted = v, scaled = v;
  const double c = rng.Uniform(0.5, 5.0);
  for (double& x : shifted) x += c;
  for (double& x : scaled) x *= c;
  EXPECT_NEAR(MeanAbsolutePairwiseDifference(shifted),
              MeanAbsolutePairwiseDifference(v), 1e-9);
  EXPECT_NEAR(MeanAbsolutePairwiseDifference(scaled),
              c * MeanAbsolutePairwiseDifference(v), 1e-9);
  EXPECT_NEAR(Gini(scaled), Gini(v), 1e-9);
  EXPECT_NEAR(JainFairnessIndex(scaled), JainFairnessIndex(v), 1e-9);
  EXPECT_NEAR(MinMaxRatio(scaled), MinMaxRatio(v), 1e-9);
}

/// IAU is translation-equivariant: shifting everyone's payoff by c shifts
/// every utility by exactly c (inequity terms depend on differences only).
TEST_P(PropertySeeds, IauTranslationEquivariance) {
  Rng rng(GetParam() * 13 + 5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> others(1 + rng.Index(10));
    for (double& p : others) p = rng.Uniform(0, 5);
    const double own = rng.Uniform(0, 5);
    const double c = rng.Uniform(-2, 2);
    const IauParams params{rng.Uniform(0, 1), rng.Uniform(0, 1)};
    std::vector<double> shifted = others;
    for (double& p : shifted) p += c;
    EXPECT_NEAR(Iau(own + c, shifted, params), Iau(own, others, params) + c,
                1e-9);
  }
}

/// Global sanity: no algorithm beats the exhaustive fairest P_dif, and
/// none beats the exhaustive max-total total payoff (tiny instances).
TEST_P(PropertySeeds, ExhaustiveBoundsEveryAlgorithm) {
  const Instance inst = RandomInstance(GetParam() + 60, 5, 3);
  VdpsConfig vdps;
  vdps.max_set_size = 2;
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, vdps);
  const ExhaustiveResult truth = SolveExhaustive(inst, catalog);
  ASSERT_TRUE(truth.complete);

  std::vector<Assignment> outcomes;
  outcomes.push_back(SolveGta(inst, catalog));
  outcomes.push_back(SolveMpta(inst, catalog).assignment);
  outcomes.push_back(SolveFgt(inst, catalog).assignment);
  outcomes.push_back(SolveIegt(inst, catalog).assignment);
  for (const Assignment& a : outcomes) {
    EXPECT_GE(a.PayoffDifference(inst), truth.fairest_pdif - 1e-9);
    EXPECT_LE(a.TotalPayoff(inst), truth.max_total_payoff + 1e-9);
  }
}

/// Every converged FGT run is a measurable equilibrium: the analysis built
/// on the shared best-response engine reports (near-)zero max regret and
/// certifies the Nash property. The regret tolerance is the engine's
/// strict-improvement tolerance (kEps, relative — see DefinitelyGreater):
/// a deviation inside that window is by definition not an improvement.
TEST_P(PropertySeeds, ConvergedFgtHasZeroRegretAndIsNash) {
  const Instance inst = RandomInstance(GetParam() + 40, 10, 5);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  FgtConfig config;
  config.seed = GetParam() * 3 + 11;
  const GameResult fgt = SolveFgt(inst, catalog, config);
  ASSERT_TRUE(fgt.converged);
  const EquilibriumReport report =
      AnalyzeEquilibrium(inst, catalog, fgt.assignment, config.iau);
  EXPECT_TRUE(report.is_nash);
  EXPECT_EQ(report.deviating_workers, 0u);
  double scale = 1.0;
  for (const WorkerRegret& r : report.regrets) {
    scale = std::max({scale, std::fabs(r.utility),
                      std::fabs(r.best_response_utility)});
  }
  EXPECT_LE(report.max_regret, 1e-9 * scale);
}

/// On tiny instances the exhaustive pure-NE enumeration must contain the
/// FGT fixed point — the solvers and the enumerator share one engine, so
/// they cannot disagree about what an equilibrium is.
TEST_P(PropertySeeds, EnumeratedPureNashContainsFgtFixedPoint) {
  const Instance inst = RandomInstance(GetParam() + 50, 4, 2);
  VdpsConfig vdps;
  vdps.max_set_size = 2;
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, vdps);
  const NashEnumeration nash = EnumeratePureNash(inst, catalog);
  ASSERT_TRUE(nash.complete);
  ASSERT_FALSE(nash.equilibria.empty());  // EPG: a pure NE always exists
  const GameResult fgt = SolveFgt(inst, catalog);
  ASSERT_TRUE(fgt.converged);
  bool found = false;
  for (const Assignment& eq : nash.equilibria) {
    found = found || eq.routes() == fgt.assignment.routes();
  }
  EXPECT_TRUE(found);
}

/// Collected reward equals the summed reward of covered delivery points.
TEST_P(PropertySeeds, RewardConservation) {
  const Instance inst = RandomInstance(GetParam() + 70, 10, 4);
  const VdpsCatalog catalog = VdpsCatalog::Generate(inst, VdpsConfig{});
  const Assignment a = SolveGta(inst, catalog);
  double covered_reward = 0.0;
  for (size_t w = 0; w < a.num_workers(); ++w) {
    for (uint32_t dp : a.route(w)) {
      covered_reward += inst.delivery_point(dp).total_reward();
    }
  }
  double earned = 0.0;
  for (size_t w = 0; w < a.num_workers(); ++w) {
    if (!a.route(w).empty()) {
      earned += EvaluateRoute(inst, w, a.route(w)).total_reward;
    }
  }
  EXPECT_NEAR(covered_reward, earned, 1e-9);
}

/// Grid index and k-d tree agree on radius queries.
TEST_P(PropertySeeds, GridAndKdTreeAgree) {
  Rng rng(GetParam() * 29 + 11);
  std::vector<Point> pts(200);
  for (Point& p : pts) p = {rng.Uniform(0, 50), rng.Uniform(0, 50)};
  const GridIndex grid(pts, 4.0);
  const KdTree tree(pts);
  for (int q = 0; q < 25; ++q) {
    const Point c{rng.Uniform(0, 50), rng.Uniform(0, 50)};
    const double r = rng.Uniform(0, 12);
    EXPECT_EQ(grid.RadiusQuery(c, r), tree.RadiusQuery(c, r));
  }
}

/// Stricter VDPS configs (smaller ε, smaller set cap) can only shrink each
/// worker's strategy set.
TEST_P(PropertySeeds, StrategySetsMonotoneInConfig) {
  const Instance inst = RandomInstance(GetParam() + 80, 10, 4);
  VdpsConfig loose;
  loose.epsilon = 6.0;
  loose.max_set_size = 3;
  VdpsConfig tight = loose;
  tight.epsilon = 2.0;
  VdpsConfig tighter = tight;
  tighter.max_set_size = 2;
  const VdpsCatalog a = VdpsCatalog::Generate(inst, loose);
  const VdpsCatalog b = VdpsCatalog::Generate(inst, tight);
  const VdpsCatalog c = VdpsCatalog::Generate(inst, tighter);
  for (size_t w = 0; w < inst.num_workers(); ++w) {
    EXPECT_GE(a.strategies(w).size(), b.strategies(w).size());
    EXPECT_GE(b.strategies(w).size(), c.strategies(w).size());
  }
}

/// Distance matrices are symmetric with zero diagonal and obey the
/// triangle inequality (Euclidean travel times).
TEST_P(PropertySeeds, DistanceMatrixMetricAxioms) {
  const Instance inst = RandomInstance(GetParam() + 90, 12, 0);
  const DistanceMatrix dm(inst.center(), inst.DeliveryPointLocations(),
                          inst.travel());
  const size_t n = dm.size();
  for (size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(dm.Between(i, i), 0.0);
    for (size_t j = 0; j < n; ++j) {
      EXPECT_DOUBLE_EQ(dm.Between(i, j), dm.Between(j, i));
      for (size_t k = 0; k < n; ++k) {
        EXPECT_LE(dm.Between(i, j),
                  dm.Between(i, k) + dm.Between(k, j) + 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySeeds,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace fta
