// Trace pipeline: the full data path a real deployment would use —
// export a raw crowdsourcing trace (the gMission schema), reload it, run
// the paper's k-means preparation, solve, persist the assignment, and
// render the dispatch picture as SVG. Every artifact is a plain file, so
// any step can be swapped for real data.
//
// Usage:   ./build/examples/trace_pipeline [out_dir]
//
// Artifacts land in examples/output/ by default (created on demand and
// gitignored) so repeated runs never litter the repository root.

#include <cstdio>
#include <filesystem>
#include <string>

#include "fta/fta.h"

int main(int argc, char** argv) {
  using namespace fta;
  const std::string dir = argc > 1 ? argv[1] : "examples/output";
  std::error_code dir_ec;
  std::filesystem::create_directories(dir, dir_ec);
  if (dir_ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", dir.c_str(),
                 dir_ec.message().c_str());
    return 1;
  }
  const std::string trace_path = dir + "/trace.csv";
  const std::string assignment_path = dir + "/assignment.csv";
  const std::string svg_path = dir + "/dispatch.svg";

  // 1. A raw trace — here synthesized; swap in a real gMission export.
  GMissionConfig config;
  config.num_tasks = 250;
  config.num_workers = 15;
  config.seed = 404;
  const RawCrowdData raw = GenerateGMissionRaw(config);
  if (Status s = SaveRawTrace(trace_path, raw); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("1. raw trace:   %s (%zu tasks, %zu workers)\n",
              trace_path.c_str(), raw.task_locations.size(),
              raw.worker_locations.size());

  // 2. Reload + the paper's preparation (centroid center, k-means zones).
  const StatusOr<RawCrowdData> reloaded = LoadRawTrace(trace_path);
  if (!reloaded.ok()) {
    std::fprintf(stderr, "%s\n", reloaded.status().ToString().c_str());
    return 1;
  }
  GMissionPrepConfig prep;
  prep.num_delivery_points = 45;
  const Instance instance = PrepareGMissionInstance(*reloaded, prep);
  std::printf("2. prepared:    %zu zones around center (%.2f, %.2f)\n",
              instance.num_delivery_points(), instance.center().x,
              instance.center().y);

  // 3. Solve.
  VdpsConfig vdps;
  vdps.epsilon = 2.0;
  const VdpsCatalog catalog = VdpsCatalog::Generate(instance, vdps);
  const GameResult result = SolveIegt(instance, catalog);
  std::printf("3. solved:      IEGT, %d rounds, P_dif %.3f, avg %.3f\n",
              result.rounds,
              result.assignment.PayoffDifference(instance),
              result.assignment.AveragePayoff(instance));

  // 4. Persist the assignment and verify it reloads against the instance.
  if (Status s = SaveAssignment(assignment_path, result.assignment);
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  const StatusOr<Assignment> back =
      LoadAssignment(assignment_path, instance);
  std::printf("4. assignment:  %s (reload %s)\n", assignment_path.c_str(),
              back.ok() ? "ok" : back.status().ToString().c_str());

  // 5. Picture.
  if (Status s = WriteInstanceSvg(svg_path, instance, &result.assignment);
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("5. rendering:   %s\n", svg_path.c_str());
  return 0;
}
