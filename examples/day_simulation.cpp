// Day simulation: runs the multi-wave dispatch simulator (see
// src/exp/simulation.h) for a full working day under each assignment
// algorithm and compares the *long-run* fairness of courier earnings —
// does one-shot fairness compound across repeated assignment instants?
//
// Usage:   ./build/examples/day_simulation [seed]

#include <cstdio>
#include <cstdlib>

#include "fta/fta.h"

int main(int argc, char** argv) {
  using namespace fta;
  const uint64_t seed =
      argc > 1 ? static_cast<uint64_t>(std::atoll(argv[1])) : 12;

  SimulationConfig base;
  base.num_waves = 16;          // an 8-hour day, one wave per half hour
  base.wave_interval = 0.5;
  base.num_zones = 30;
  base.num_workers = 12;
  base.tasks_per_wave = 50;
  base.task_lifetime = 1.5;
  base.options.vdps.epsilon = 2.5;
  base.seed = seed;

  std::printf(
      "day: %d waves x %.1fh, %zu zones, %zu couriers, %zu orders/wave\n\n",
      base.num_waves, base.wave_interval, base.num_zones, base.num_workers,
      base.tasks_per_wave);

  ResultTable table("long-run courier earnings after one day",
                    {"algorithm", "served", "expired", "earn P_dif",
                     "earn Gini", "earn Jain", "min/max"});
  for (Algorithm a : PaperAlgorithms()) {
    SimulationConfig config = base;
    config.algorithm = a;
    const SimulationResult r = RunDispatchSimulation(config);
    table.AddRow(
        {AlgorithmName(a), StrFormat("%zu", r.tasks_served),
         StrFormat("%zu", r.tasks_expired),
         StrFormat("%.3f", r.earnings_payoff_difference),
         StrFormat("%.3f", r.earnings_gini),
         StrFormat("%.3f", r.earnings_jain),
         StrFormat("%.3f", MinMaxRatio(r.worker_earnings))});
  }
  std::printf("%s\n", table.ToText().c_str());

  // Wave-by-wave view for the evolutionary game.
  SimulationConfig config = base;
  config.algorithm = Algorithm::kIegt;
  const SimulationResult r = RunDispatchSimulation(config);
  std::printf("IEGT wave by wave:\n");
  std::printf("  wave  pending  assigned  expired  idle  dispatched  P_dif\n");
  for (const WaveStats& w : r.waves) {
    std::printf("  %4d  %7zu  %8zu  %7zu  %4zu  %10zu  %.3f\n", w.wave,
                w.pending_tasks, w.assigned_tasks, w.expired_tasks,
                w.idle_workers, w.dispatched_workers, w.payoff_difference);
  }
  std::printf("\ncourier earnings (IEGT): ");
  for (double e : r.worker_earnings) std::printf("%.0f ", e);
  std::printf("\n");
  return 0;
}
