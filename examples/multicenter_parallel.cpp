// Multi-center parallel dispatch: the paper's SYN setting — many
// distribution centers whose assignments are independent and therefore
// parallelizable (Section VII-A). Generates a scaled SYN dataset, solves
// every center with IEGT on a thread pool, and reports pooled fairness
// metrics plus serialization of the dataset for reuse.
//
// Usage:   ./build/examples/multicenter_parallel [threads] [scale]

#include <cstdio>
#include <cstdlib>
#include <thread>

#include "fta/fta.h"

int main(int argc, char** argv) {
  using namespace fta;
  const size_t threads =
      argc > 1 ? static_cast<size_t>(std::atoll(argv[1]))
               : std::max(1u, std::thread::hardware_concurrency());
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.01;

  // The paper's SYN defaults (50 centers, 2K workers, 5K delivery points,
  // 100K tasks) scaled down by `scale` with ratios preserved.
  const SynConfig config = ScaleSyn(SynConfig{}, scale);
  std::printf(
      "SYN x%.3g: %zu centers, %zu workers, %zu delivery points, %zu tasks\n",
      scale, config.num_centers, config.num_workers,
      config.num_delivery_points, config.num_tasks);
  const MultiCenterInstance multi = GenerateSyn(config);

  // Persist the dataset so a later run (or another tool) can reload it.
  const std::string path = "syn_dataset.csv";
  if (Status s = SaveInstances(path, multi); s.ok()) {
    std::printf("dataset saved to %s\n", path.c_str());
  }

  SolverOptions options;
  options.vdps.epsilon = 2.0;  // the paper's SYN default threshold

  Stopwatch wall;
  const RunMetrics m = RunOnMulti(Algorithm::kIegt, multi, options, threads);
  std::printf(
      "\nIEGT over %zu centers on %zu threads:\n"
      "  wall time:         %.2f s\n"
      "  total CPU time:    %.2f s\n"
      "  payoff difference: %.4f\n"
      "  average payoff:    %.4f\n"
      "  assigned workers:  %zu / %zu\n"
      "  covered tasks:     %zu / %zu\n",
      multi.centers.size(), threads, wall.ElapsedSeconds(), m.cpu_seconds,
      m.payoff_difference, m.average_payoff, m.assigned_workers,
      m.num_workers, m.covered_tasks, multi.num_tasks());

  // Round-trip check: reload and re-solve one center deterministically.
  const auto reloaded = LoadInstances(path);
  if (reloaded.ok() && !reloaded->centers.empty()) {
    const RunMetrics again =
        RunOnMulti(Algorithm::kIegt, *reloaded, options, threads);
    std::printf("\nreloaded dataset re-solve: P_dif %.4f (matches: %s)\n",
                again.payoff_difference,
                ApproxEq(again.payoff_difference, m.payoff_difference)
                    ? "yes"
                    : "no");
  }
  std::remove(path.c_str());
  return 0;
}
