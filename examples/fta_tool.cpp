// fta_tool — command-line front end for the library. Subcommands:
//
//   generate   synthesize a dataset and write it to a CSV instance file
//     ./fta_tool generate --family=syn --scale=0.05 --out=syn.csv
//     ./fta_tool generate --family=gm --tasks=200 --workers=40 --out=gm.csv
//
//   solve      load an instance file, run an algorithm, print metrics
//     ./fta_tool solve --algorithm=iegt --epsilon=2 --svg=out.svg syn.csv
//
//   repeat     multi-seed statistical comparison of all four algorithms
//     ./fta_tool repeat --family=gm --seeds=5
//
//   simulate   multi-wave day simulation
//     ./fta_tool simulate --algorithm=iegt --waves=12
//
//   stream     online streaming dispatch over a Poisson churn workload
//     ./fta_tool stream --policy=warm --solver=fgt --ticks=40
//     ./fta_tool stream --prom-out=metrics.prom --prom-every=1 ...
//
//   serve      sharded multi-center assignment server over a replayed
//              city workload (synthesized or loaded from --workload)
//     ./fta_tool serve --centers=16 --ticks=20 --threads=8 --validate
//     ./fta_tool serve --save-workload=city.csv
//     ./fta_tool serve --workload=city.csv --prom-out=metrics.prom
//
//   metrics-serve   tiny HTTP exporter over a published metrics text file
//     ./fta_tool metrics-serve --file=metrics.prom --port=9184
//
// Every knob has a sane default; run a subcommand with --help for flags.

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "fta/fta.h"

namespace fta {
namespace {

StatusOr<Algorithm> ParseAlgorithm(const std::string& name) {
  if (name == "mpta") return Algorithm::kMpta;
  if (name == "gta") return Algorithm::kGta;
  if (name == "fgt") return Algorithm::kFgt;
  if (name == "iegt") return Algorithm::kIegt;
  if (name == "random") return Algorithm::kRandom;
  return Status::InvalidArgument(
      "unknown algorithm '" + name + "' (mpta|gta|fgt|iegt|random)");
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int CmdGenerate(int argc, const char* const* argv) {
  std::string family = "syn";
  std::string out = "dataset.csv";
  double scale = 0.05;
  size_t tasks = 200, workers = 40, dps = 100;
  int64_t seed = 7;
  bool help = false;
  FlagParser flags;
  flags.AddString("family", &family, "dataset family: syn | gm");
  flags.AddString("out", &out, "output instance file");
  flags.AddDouble("scale", &scale, "SYN population scale vs. the paper");
  flags.AddSizeT("tasks", &tasks, "GM task count");
  flags.AddSizeT("workers", &workers, "GM worker count");
  flags.AddSizeT("dps", &dps, "GM delivery point count (k-means k)");
  flags.AddInt("seed", &seed, "generator seed");
  flags.AddBool("help", &help, "show flags");
  if (Status s = flags.Parse(argc, argv); !s.ok()) return Fail(s);
  if (help) {
    std::printf("generate flags:\n%s", flags.Usage().c_str());
    return 0;
  }

  MultiCenterInstance multi;
  if (family == "syn") {
    SynConfig config = ScaleSyn(SynConfig{}, scale);
    config.seed = static_cast<uint64_t>(seed);
    multi = GenerateSyn(config);
  } else if (family == "gm") {
    GMissionConfig config;
    config.num_tasks = tasks;
    config.num_workers = workers;
    config.seed = static_cast<uint64_t>(seed);
    GMissionPrepConfig prep;
    prep.num_delivery_points = dps;
    prep.seed = static_cast<uint64_t>(seed) + 1;
    multi.centers.push_back(GenerateGMissionLike(config, prep));
  } else {
    return Fail(Status::InvalidArgument("--family must be syn or gm"));
  }
  if (Status s = SaveInstances(out, multi); !s.ok()) return Fail(s);
  std::printf("wrote %s: %zu centers, %zu workers, %zu delivery points, "
              "%zu tasks\n",
              out.c_str(), multi.centers.size(), multi.num_workers(),
              multi.num_delivery_points(), multi.num_tasks());
  return 0;
}

int CmdSolve(int argc, const char* const* argv) {
  std::string algorithm_name = "iegt";
  std::string svg;
  std::string trace_json;
  std::string metrics_json;
  double epsilon = 2.0;
  size_t max_set = 3;
  size_t threads = 1;
  int64_t seed = 1;
  bool help = false;
  FlagParser flags;
  flags.AddString("algorithm", &algorithm_name,
                  "mpta | gta | fgt | iegt | random");
  flags.AddDouble("epsilon", &epsilon, "pruning threshold (km; 0 = off)");
  flags.AddSizeT("max_set", &max_set, "max delivery points per VDPS");
  flags.AddSizeT("threads", &threads, "threads across centers");
  flags.AddInt("seed", &seed, "solver seed");
  flags.AddString("svg", &svg,
                  "write the first center's assignment as SVG here");
  flags.AddString("trace-json", &trace_json,
                  "record spans and write a Chrome/Perfetto trace here");
  flags.AddString("metrics-json", &metrics_json,
                  "write the structured run report (fta-run-report-v1) here");
  flags.AddBool("help", &help, "show flags");
  if (Status s = flags.Parse(argc, argv); !s.ok()) return Fail(s);
  if (help || flags.positional().size() != 2) {
    std::printf("usage: fta_tool solve [flags] <instance.csv>\n%s",
                flags.Usage().c_str());
    return help ? 0 : 1;
  }

  StatusOr<Algorithm> algorithm = ParseAlgorithm(algorithm_name);
  if (!algorithm.ok()) return Fail(algorithm.status());
  StatusOr<MultiCenterInstance> multi = LoadInstances(flags.positional()[1]);
  if (!multi.ok()) return Fail(multi.status());

  if (!trace_json.empty()) {
    obs::TraceRecorder::Global().Clear();
    obs::SetTracingEnabled(true);
  }
  SolverOptions options;
  options.vdps.epsilon = epsilon > 0 ? epsilon : kInfinity;
  options.vdps.max_set_size = static_cast<uint32_t>(max_set);
  options.seed = static_cast<uint64_t>(seed);
  if (!metrics_json.empty()) {
    // The report's per-iteration section needs the solver trace.
    options.fgt.record_trace = true;
    options.iegt.record_trace = true;
  }
  const RunMetrics m = RunOnMulti(*algorithm, *multi, options, threads);
  if (!trace_json.empty()) obs::SetTracingEnabled(false);
  std::printf(
      "%s on %zu centers: P_dif %.4f | avg payoff %.4f | total %.2f | "
      "assigned %zu/%zu | covered tasks %zu | CPU %.3fs\n",
      AlgorithmName(*algorithm), multi->centers.size(), m.payoff_difference,
      m.average_payoff, m.total_payoff, m.assigned_workers, m.num_workers,
      m.covered_tasks, m.cpu_seconds);

  if (!trace_json.empty()) {
    if (Status s = obs::TraceRecorder::Global().WriteChromeJson(trace_json);
        !s.ok()) {
      return Fail(s);
    }
    std::printf("wrote %s (%zu spans)\n", trace_json.c_str(),
                obs::TraceRecorder::Global().num_events());
  }
  if (!metrics_json.empty()) {
    const RunReport report =
        BuildRunReport("fta_tool", AlgorithmName(*algorithm),
                       flags.positional()[1], m);
    if (Status s = report.WriteJson(metrics_json); !s.ok()) return Fail(s);
    std::printf("wrote %s (%zu registry metrics)\n", metrics_json.c_str(),
                report.registry.metrics.size());
  }

  if (!svg.empty() && !multi->centers.empty()) {
    // Re-solve the first center alone for the picture.
    const Instance& first = multi->centers[0];
    const VdpsCatalog catalog = VdpsCatalog::Generate(first, options.vdps);
    Assignment assignment;
    switch (*algorithm) {
      case Algorithm::kMpta:
        assignment = SolveMpta(first, catalog).assignment;
        break;
      case Algorithm::kGta:
        assignment = SolveGta(first, catalog);
        break;
      case Algorithm::kFgt:
        assignment = SolveFgt(first, catalog).assignment;
        break;
      case Algorithm::kIegt:
        assignment = SolveIegt(first, catalog).assignment;
        break;
      case Algorithm::kRandom: {
        Rng rng(static_cast<uint64_t>(seed));
        assignment = SolveRandom(first, catalog, rng);
        break;
      }
    }
    if (Status s = WriteInstanceSvg(svg, first, &assignment); !s.ok()) {
      return Fail(s);
    }
    std::printf("wrote %s\n", svg.c_str());
  }
  return 0;
}

int CmdRepeat(int argc, const char* const* argv) {
  std::string family = "gm";
  size_t seeds = 5;
  double epsilon = 2.0;
  bool help = false;
  FlagParser flags;
  flags.AddString("family", &family, "dataset family: syn | gm");
  flags.AddSizeT("seeds", &seeds, "number of seeds");
  flags.AddDouble("epsilon", &epsilon, "pruning threshold");
  flags.AddBool("help", &help, "show flags");
  if (Status s = flags.Parse(argc, argv); !s.ok()) return Fail(s);
  if (help) {
    std::printf("repeat flags:\n%s", flags.Usage().c_str());
    return 0;
  }

  const auto instance_for = [&](uint64_t seed) {
    if (family == "syn") {
      SynConfig config = ScaleSyn(SynConfig{}, 0.02);
      config.seed = seed;
      return GenerateSyn(config);
    }
    GMissionConfig config;
    config.seed = seed;
    GMissionPrepConfig prep;
    prep.seed = seed + 1;
    MultiCenterInstance multi;
    multi.centers.push_back(GenerateGMissionLike(config, prep));
    return multi;
  };
  SolverOptions options;
  options.vdps.epsilon = epsilon;

  ResultTable table(
      StrFormat("%s over %zu seeds (mean ± 95%% CI)", family.c_str(), seeds),
      {"algorithm", "P_dif", "avg payoff", "CPU (s)"});
  for (Algorithm a : PaperAlgorithms()) {
    const RepeatedRunSummary s =
        RunRepeated(a, instance_for, options, seeds);
    table.AddRow({AlgorithmName(a), s.payoff_difference.ToString(),
                  s.average_payoff.ToString(), s.cpu_seconds.ToString()});
  }
  std::printf("%s", table.ToText().c_str());
  return 0;
}

int CmdSimulate(int argc, const char* const* argv) {
  std::string algorithm_name = "iegt";
  int64_t waves = 12;
  size_t workers = 12;
  size_t tasks = 50;
  int64_t seed = 99;
  bool help = false;
  FlagParser flags;
  flags.AddString("algorithm", &algorithm_name,
                  "mpta | gta | fgt | iegt | random");
  flags.AddInt("waves", &waves, "assignment waves to simulate");
  flags.AddSizeT("workers", &workers, "courier fleet size");
  flags.AddSizeT("tasks", &tasks, "order arrivals per wave");
  flags.AddInt("seed", &seed, "simulation seed");
  flags.AddBool("help", &help, "show flags");
  if (Status s = flags.Parse(argc, argv); !s.ok()) return Fail(s);
  if (help) {
    std::printf("simulate flags:\n%s", flags.Usage().c_str());
    return 0;
  }

  StatusOr<Algorithm> algorithm = ParseAlgorithm(algorithm_name);
  if (!algorithm.ok()) return Fail(algorithm.status());
  SimulationConfig config;
  config.algorithm = *algorithm;
  config.num_waves = static_cast<int>(waves);
  config.num_workers = workers;
  config.tasks_per_wave = tasks;
  config.options.vdps.epsilon = 2.5;
  config.seed = static_cast<uint64_t>(seed);
  const SimulationResult r = RunDispatchSimulation(config);
  std::printf(
      "%s, %d waves: served %zu, expired %zu, leftover %zu | earnings "
      "P_dif %.3f, Gini %.3f, Jain %.3f\n",
      AlgorithmName(*algorithm), config.num_waves, r.tasks_served,
      r.tasks_expired, r.tasks_leftover, r.earnings_payoff_difference,
      r.earnings_gini, r.earnings_jain);
  return 0;
}

int CmdStream(int argc, const char* const* argv) {
  std::string policy_name = "warm";
  std::string solver_name = "fgt";
  std::string metrics_json;
  std::string trace_json;
  std::string prom_out;
  size_t prom_every = 1;
  size_t window = 32;
  int64_t ticks = 40;
  double tick_period = 0.05;
  double epsilon = 2.5;
  size_t max_set = 3;
  size_t threads = 1;
  double task_rate = 120.0;
  double worker_rate = 30.0;
  double dwell = 1.0;
  double patience = 1.0;
  int64_t seed = 42;
  bool help = false;
  FlagParser flags;
  flags.AddString("policy", &policy_name,
                  "per-tick re-solve policy: cold | cold-seeded | warm");
  flags.AddString("solver", &solver_name, "fgt | iegt");
  flags.AddInt("ticks", &ticks, "ticks to run");
  flags.AddDouble("tick-period", &tick_period, "hours per tick");
  flags.AddDouble("epsilon", &epsilon, "pruning threshold (km; 0 = off)");
  flags.AddSizeT("max_set", &max_set, "max delivery points per VDPS");
  flags.AddSizeT("threads", &threads, "catalog/best-response threads");
  flags.AddDouble("task-rate", &task_rate, "mean order arrivals per hour");
  flags.AddDouble("worker-rate", &worker_rate,
                  "mean worker arrivals per hour");
  flags.AddDouble("dwell", &dwell, "mean worker dwell (hours)");
  flags.AddDouble("patience", &patience,
                  "mean undispatched-order patience (hours)");
  flags.AddInt("seed", &seed, "stream seed (events and solver)");
  flags.AddString("metrics-json", &metrics_json,
                  "write the structured run report (fta-run-report-v1) here");
  flags.AddString("trace-json", &trace_json,
                  "record spans and write a Chrome/Perfetto trace here");
  flags.AddString("prom-out", &prom_out,
                  "publish a Prometheus text page here while running "
                  "(atomic rename; scrape with metrics-serve or tail)");
  flags.AddSizeT("prom-every", &prom_every,
                 "publish cadence in ticks (0 = only at run end)");
  flags.AddSizeT("window", &window, "rolling-window length in ticks");
  flags.AddBool("help", &help, "show flags");
  if (Status s = flags.Parse(argc, argv); !s.ok()) return Fail(s);
  if (help) {
    std::printf("stream flags:\n%s", flags.Usage().c_str());
    return 0;
  }

  StreamConfig config;
  if (policy_name == "cold") {
    config.policy = ResolvePolicy::kColdRestart;
  } else if (policy_name == "cold-seeded") {
    config.policy = ResolvePolicy::kColdSeeded;
  } else if (policy_name == "warm") {
    config.policy = ResolvePolicy::kWarm;
  } else {
    return Fail(Status::InvalidArgument(
        "--policy must be cold, cold-seeded, or warm"));
  }
  if (solver_name == "fgt") {
    config.solver = StreamSolver::kFgt;
  } else if (solver_name == "iegt") {
    config.solver = StreamSolver::kIegt;
  } else {
    return Fail(Status::InvalidArgument("--solver must be fgt or iegt"));
  }
  ChurnWorkloadConfig churn;
  churn.horizon_hours = tick_period * static_cast<double>(ticks);
  churn.tasks.base_rate_per_hour = task_rate;
  churn.tasks.peak_hours = {churn.horizon_hours / 2.0};
  churn.worker_rate_per_hour = worker_rate;
  churn.mean_worker_dwell_hours = dwell;
  churn.mean_task_patience_hours = patience;
  config.center = Point{churn.area_size / 2.0, churn.area_size / 2.0};
  config.tick_period = tick_period;
  config.max_ticks = static_cast<size_t>(ticks);
  config.vdps.epsilon = epsilon > 0 ? epsilon : kInfinity;
  config.vdps.max_set_size = static_cast<uint32_t>(max_set);
  config.vdps.num_threads = threads;
  config.fgt.engine.num_threads = threads;
  config.iegt.engine.num_threads = threads;
  config.seed = static_cast<uint64_t>(seed);
  config.telemetry.window_ticks = window > 0 ? window : 1;
  config.telemetry.publish_path = prom_out;
  config.telemetry.publish_every_ticks = prom_every;

  if (!trace_json.empty()) {
    obs::TraceRecorder::Global().Clear();
    obs::SetTracingEnabled(true);
  }
  StreamDispatcher dispatcher(
      config, GenerateChurnEvents(churn, static_cast<uint64_t>(seed)));
  StatusOr<StreamResult> result = dispatcher.Run();
  if (!trace_json.empty()) obs::SetTracingEnabled(false);
  if (!result.ok()) return Fail(result.status());
  const StreamCounters& c = result->counters;
  std::printf(
      "%s/%s over %llu ticks: events %llu | tasks %llu in / %llu expired | "
      "workers %llu in / %llu out | regens %llu, deltas %llu | rounds %llu "
      "(converged %llu) | catalog %.1fms, solve %.1fms | digest %016llx\n",
      ResolvePolicyName(config.policy), StreamSolverName(config.solver),
      static_cast<unsigned long long>(c.ticks),
      static_cast<unsigned long long>(c.events_ingested),
      static_cast<unsigned long long>(c.tasks_arrived),
      static_cast<unsigned long long>(c.tasks_expired),
      static_cast<unsigned long long>(c.workers_arrived),
      static_cast<unsigned long long>(c.workers_departed),
      static_cast<unsigned long long>(c.regens),
      static_cast<unsigned long long>(c.deltas),
      static_cast<unsigned long long>(c.solver_rounds),
      static_cast<unsigned long long>(c.converged_ticks), c.catalog_ms,
      c.solve_ms, static_cast<unsigned long long>(result->digest));
  if (!result->ticks.empty()) {
    const TickStats& last = result->ticks.back();
    std::printf(
        "last tick: %zu workers, %zu dps, %zu assigned, %zu covered | "
        "P_dif %.4f | avg payoff %.4f\n",
        last.num_workers, last.num_dps, last.assigned_workers,
        last.covered_dps, last.payoff_difference, last.average_payoff);
  }
  if (!trace_json.empty()) {
    if (Status s = obs::TraceRecorder::Global().WriteChromeJson(trace_json);
        !s.ok()) {
      return Fail(s);
    }
    std::printf("wrote %s (%zu spans)\n", trace_json.c_str(),
                obs::TraceRecorder::Global().num_events());
  }
  if (!prom_out.empty()) {
    std::printf("published %s (windowed tick p50 %.3fms / p99 %.3fms)\n",
                prom_out.c_str(),
                dispatcher.telemetry()->tick_window().Stats().Quantile(0.5),
                dispatcher.telemetry()->tick_window().Stats().Quantile(0.99));
  }
  if (!metrics_json.empty()) {
    RunMetrics m;
    m.num_workers = result->ticks.empty() ? 0 : result->ticks.back().num_workers;
    m.payoff_difference =
        result->ticks.empty() ? 0.0 : result->ticks.back().payoff_difference;
    m.average_payoff =
        result->ticks.empty() ? 0.0 : result->ticks.back().average_payoff;
    m.assigned_workers =
        result->ticks.empty() ? 0 : result->ticks.back().assigned_workers;
    m.cpu_seconds = (c.catalog_ms + c.solve_ms) / 1e3;
    RunReport report = BuildRunReport(
        "fta_tool", StrFormat("stream-%s-%s", policy_name.c_str(),
                              solver_name.c_str()),
        "churn-workload", m);
    if (dispatcher.telemetry() != nullptr) {
      report.windows = dispatcher.telemetry()->WindowReadings();
    }
    if (Status s = report.WriteJson(metrics_json); !s.ok()) return Fail(s);
    std::printf("wrote %s (%zu registry metrics, %zu windows)\n",
                metrics_json.c_str(), report.registry.metrics.size(),
                report.windows.size());
  }
  return 0;
}

int CmdServe(int argc, const char* const* argv) {
  std::string policy_name = "warm";
  std::string solver_name = "fgt";
  std::string workload;
  std::string save_workload;
  std::string prom_out;
  int64_t centers = 8;
  int64_t ticks = 16;
  double tick_period = 0.05;
  double epsilon = 0.6;
  size_t max_set = 3;
  size_t threads = 8;
  size_t queue_capacity = 256;
  size_t max_requests_per_tick = 3;
  double task_rate = 240.0;
  double worker_rate = 40.0;
  double rate_sigma = 0.6;
  int64_t seed = 42;
  bool validate = false;
  bool help = false;
  FlagParser flags;
  flags.AddString("policy", &policy_name,
                  "per-tick re-solve policy: cold | cold-seeded | warm");
  flags.AddString("solver", &solver_name, "fgt | iegt");
  flags.AddInt("centers", &centers, "distribution centers (= shards)");
  flags.AddInt("ticks", &ticks, "replay ticks");
  flags.AddDouble("tick-period", &tick_period, "hours per tick");
  flags.AddDouble("epsilon", &epsilon, "pruning threshold (km; 0 = off)");
  flags.AddSizeT("max_set", &max_set, "max delivery points per VDPS");
  flags.AddSizeT("threads", &threads, "shard-runner threads");
  flags.AddSizeT("queue-capacity", &queue_capacity,
                 "admission bound (requests in flight before shedding)");
  flags.AddSizeT("max-requests-per-tick", &max_requests_per_tick,
                 "per (center, tick) coalescing split when synthesizing");
  flags.AddDouble("task-rate", &task_rate,
                  "mean order arrivals per center per hour");
  flags.AddDouble("worker-rate", &worker_rate,
                  "mean worker arrivals per center per hour");
  flags.AddDouble("rate-sigma", &rate_sigma,
                  "log-normal per-center rate heterogeneity (0 = uniform)");
  flags.AddInt("seed", &seed, "city + trace + solver seed");
  flags.AddString("workload", &workload,
                  "replay this saved trace instead of synthesizing");
  flags.AddString("save-workload", &save_workload,
                  "write the replayed trace here (fta serve trace CSV)");
  flags.AddBool("validate", &validate,
                "run the sequential reference and compare every shard "
                "digest (exits non-zero on divergence)");
  flags.AddString("prom-out", &prom_out,
                  "write the post-drain Prometheus page here");
  flags.AddBool("help", &help, "show flags");
  if (Status s = flags.Parse(argc, argv); !s.ok()) return Fail(s);
  if (help) {
    std::printf("serve flags:\n%s", flags.Usage().c_str());
    return 0;
  }

  ServerConfig config;
  config.num_threads = threads > 0 ? threads : 1;
  config.queue_capacity = queue_capacity;
  config.tick_period = tick_period;
  if (policy_name == "cold") {
    config.engine.policy = ResolvePolicy::kColdRestart;
  } else if (policy_name == "cold-seeded") {
    config.engine.policy = ResolvePolicy::kColdSeeded;
  } else if (policy_name == "warm") {
    config.engine.policy = ResolvePolicy::kWarm;
  } else {
    return Fail(Status::InvalidArgument(
        "--policy must be cold, cold-seeded, or warm"));
  }
  if (solver_name == "fgt") {
    config.engine.solver = StreamSolver::kFgt;
  } else if (solver_name == "iegt") {
    config.engine.solver = StreamSolver::kIegt;
  } else {
    return Fail(Status::InvalidArgument("--solver must be fgt or iegt"));
  }
  config.engine.vdps.epsilon = epsilon > 0 ? epsilon : kInfinity;
  config.engine.vdps.max_set_size = static_cast<uint32_t>(max_set);
  config.engine.seed = static_cast<uint64_t>(seed);

  ServeTrace trace;
  if (!workload.empty()) {
    StatusOr<ServeTrace> loaded = LoadServeTrace(workload);
    if (!loaded.ok()) return Fail(loaded.status());
    trace = std::move(*loaded);
    config.tick_period = trace.tick_period;
  } else {
    CityWorkloadConfig city;
    city.num_centers = static_cast<size_t>(centers);
    city.rate_sigma = rate_sigma;
    city.tick_period = tick_period;
    city.ticks = static_cast<uint64_t>(ticks);
    city.base.tasks.base_rate_per_hour = task_rate;
    city.base.tasks.peak_hours = {};
    city.base.worker_rate_per_hour = worker_rate;
    trace = BuildServeTrace(GenerateCityWorkload(city,
                                                 static_cast<uint64_t>(seed)),
                            max_requests_per_tick,
                            static_cast<uint64_t>(seed));
  }
  if (!save_workload.empty()) {
    if (Status s = SaveServeTrace(save_workload, trace); !s.ok()) {
      return Fail(s);
    }
    std::printf("wrote %s (%zu centers, %zu requests)\n",
                save_workload.c_str(), trace.centers.size(),
                trace.requests.size());
  }

  std::vector<CenterSpec> specs;
  for (const Point& p : trace.centers) specs.push_back({p});
  ThreadPool pool(config.num_threads);
  Stopwatch sw;
  AssignmentServer server(config, std::move(specs), &pool);
  StatusOr<uint64_t> retries = ReplayTrace(server, trace);
  if (!retries.ok()) return Fail(retries.status());
  server.Drain();
  const double wall_ms = sw.ElapsedMillis();

  const ServeCounters counters = server.counters();
  obs::SketchData latency(0.01);
  for (uint32_t c = 0; c < server.num_shards(); ++c) {
    for (const ServeResponse& r : server.responses(c)) {
      latency.Observe(r.latency_ms);
    }
  }
  std::printf(
      "%s/%s: %zu shards x %llu requests over %.1f ms | batches %llu | "
      "assignments %llu | shed %llu (retries %llu) | rounds %llu | "
      "latency p50 %.2fms p99 %.2fms | %.0f assignments/s\n",
      policy_name.c_str(), solver_name.c_str(), server.num_shards(),
      static_cast<unsigned long long>(counters.admitted), wall_ms,
      static_cast<unsigned long long>(counters.batches),
      static_cast<unsigned long long>(counters.assignments),
      static_cast<unsigned long long>(counters.rejected_full),
      static_cast<unsigned long long>(*retries),
      static_cast<unsigned long long>(counters.solver_rounds),
      latency.ValueAtQuantile(0.5), latency.ValueAtQuantile(0.99),
      wall_ms > 0.0 ? static_cast<double>(counters.assignments) /
                          (wall_ms / 1000.0)
                    : 0.0);
  const std::vector<uint64_t> batches = server.shard_batch_counts();
  uint64_t bmin = batches.empty() ? 0 : batches[0];
  uint64_t bmax = 0;
  for (const uint64_t b : batches) {
    bmin = b < bmin ? b : bmin;
    bmax = b > bmax ? b : bmax;
  }
  std::printf("shard balance: %llu..%llu batches/shard\n",
              static_cast<unsigned long long>(bmin),
              static_cast<unsigned long long>(bmax));

  if (validate) {
    const ReferenceResult ref = RunSequentialReference(config, trace);
    for (uint32_t c = 0; c < server.num_shards(); ++c) {
      if (server.shard_digest(c) != ref.digests[c]) {
        return Fail(Status::Internal(StrFormat(
            "shard %u digest %016llx != sequential reference %016llx", c,
            static_cast<unsigned long long>(server.shard_digest(c)),
            static_cast<unsigned long long>(ref.digests[c]))));
      }
    }
    std::printf("validate: all %zu shard digests match the sequential "
                "reference\n",
                server.num_shards());
  }
  if (!prom_out.empty()) {
    if (!obs::WriteTextFileAtomic(prom_out, server.PrometheusText())) {
      return Fail(Status::IoError("cannot publish " + prom_out));
    }
    std::printf("published %s\n", prom_out.c_str());
  }
  return 0;
}

// Minimal single-threaded HTTP/1.0 exporter over a published text file —
// the node_exporter textfile pattern: the dispatcher atomically renames
// fresh pages into place and this loop re-reads the file per scrape, so
// the serving side never touches dispatcher state.
int CmdMetricsServe(int argc, const char* const* argv) {
  std::string file;
  size_t port = 9184;
  size_t max_requests = 0;
  bool help = false;
  FlagParser flags;
  flags.AddString("file", &file, "metrics text file to serve (required)");
  flags.AddSizeT("port", &port, "TCP port to listen on");
  flags.AddSizeT("max-requests", &max_requests,
                 "exit after this many requests (0 = serve forever)");
  flags.AddBool("help", &help, "show flags");
  if (Status s = flags.Parse(argc, argv); !s.ok()) return Fail(s);
  if (help || file.empty()) {
    std::printf("metrics-serve flags:\n%s", flags.Usage().c_str());
    return help ? 0 : 1;
  }

  const int server = socket(AF_INET, SOCK_STREAM, 0);
  if (server < 0) return Fail(Status::IoError("socket() failed"));
  const int one = 1;
  setsockopt(server, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (bind(server, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    close(server);
    return Fail(Status::IoError(
        StrFormat("bind() failed on port %zu", port)));
  }
  if (listen(server, 16) < 0) {
    close(server);
    return Fail(Status::IoError("listen() failed"));
  }
  std::printf("serving %s on http://0.0.0.0:%zu/metrics\n", file.c_str(),
              port);
  std::fflush(stdout);

  size_t served = 0;
  while (max_requests == 0 || served < max_requests) {
    const int conn = accept(server, nullptr, nullptr);
    if (conn < 0) continue;
    char request[1024];
    // One read is enough for a scrape's GET line; content is ignored.
    (void)read(conn, request, sizeof(request));

    std::ifstream in(file, std::ios::binary);
    std::string response;
    if (in) {
      std::ostringstream body;
      body << in.rdbuf();
      const std::string text = body.str();
      response = StrFormat(
          "HTTP/1.0 200 OK\r\n"
          "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
          "Content-Length: %zu\r\n\r\n",
          text.size());
      response += text;
    } else {
      const std::string text = "metrics file not available\n";
      response = StrFormat(
          "HTTP/1.0 503 Service Unavailable\r\n"
          "Content-Type: text/plain\r\nContent-Length: %zu\r\n\r\n",
          text.size());
      response += text;
    }
    size_t off = 0;
    while (off < response.size()) {
      const ssize_t n =
          write(conn, response.data() + off, response.size() - off);
      if (n <= 0) break;
      off += static_cast<size_t>(n);
    }
    close(conn);
    ++served;
  }
  close(server);
  std::printf("served %zu requests\n", served);
  return 0;
}

int Main(int argc, const char* const* argv) {
  const std::string command = argc > 1 ? argv[1] : "";
  if (command == "generate") return CmdGenerate(argc, argv);
  if (command == "solve") return CmdSolve(argc, argv);
  if (command == "repeat") return CmdRepeat(argc, argv);
  if (command == "simulate") return CmdSimulate(argc, argv);
  if (command == "stream") return CmdStream(argc, argv);
  if (command == "serve") return CmdServe(argc, argv);
  if (command == "metrics-serve") return CmdMetricsServe(argc, argv);
  std::printf(
      "usage: fta_tool "
      "<generate|solve|repeat|simulate|stream|serve|metrics-serve> [flags]\n"
      "run a subcommand with --help for its flags\n");
  return command.empty() ? 1 : (command == "--help" ? 0 : 1);
}

}  // namespace
}  // namespace fta

int main(int argc, char** argv) { return fta::Main(argc, argv); }
