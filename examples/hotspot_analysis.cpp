// Hotspot analysis: compares the paper's k-means data preparation with a
// density-based alternative (DBSCAN). k-means forces exactly x delivery
// points; DBSCAN discovers the actual task hotspots and leaves isolated
// tasks as noise. The example preps the same raw task stream both ways and
// dispatches with IEGT on each, showing how the prep choice moves the
// fairness/coverage trade-off.
//
// Usage:   ./build/examples/hotspot_analysis [seed]

#include <cstdio>
#include <cstdlib>

#include "fta/fta.h"

namespace {

/// Builds an instance from explicit delivery-point centroids + labels,
/// mirroring PrepareGMissionInstance but with a caller-chosen clustering.
fta::Instance InstanceFromClusters(const fta::RawCrowdData& raw,
                                   const std::vector<fta::Point>& centroids,
                                   const std::vector<int32_t>& labels,
                                   uint32_t max_dp, double speed) {
  using namespace fta;
  Point center{0, 0};
  for (const Point& p : raw.task_locations) {
    center.x += p.x;
    center.y += p.y;
  }
  center.x /= static_cast<double>(raw.task_locations.size());
  center.y /= static_cast<double>(raw.task_locations.size());

  std::vector<std::vector<SpatialTask>> tasks(centroids.size());
  for (size_t t = 0; t < raw.task_locations.size(); ++t) {
    if (labels[t] < 0) continue;  // noise task: not aggregated
    const uint32_t c = static_cast<uint32_t>(labels[t]);
    tasks[c].push_back(
        SpatialTask{c, raw.task_expiries[t], raw.task_rewards[t]});
  }
  std::vector<DeliveryPoint> dps;
  for (size_t c = 0; c < centroids.size(); ++c) {
    dps.emplace_back(centroids[c], std::move(tasks[c]));
  }
  std::vector<Worker> workers;
  for (const Point& p : raw.worker_locations) {
    workers.push_back(Worker{p, max_dp});
  }
  return Instance(center, std::move(dps), std::move(workers),
                  TravelModel(speed));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fta;
  const uint64_t seed =
      argc > 1 ? static_cast<uint64_t>(std::atoll(argv[1])) : 77;

  GMissionConfig config;
  config.num_tasks = 300;
  config.num_workers = 16;
  config.num_hotspots = 6;
  config.seed = seed;
  const RawCrowdData raw = GenerateGMissionRaw(config);

  // --- DBSCAN hotspot detection on the raw task stream.
  DbscanConfig dbscan_config;
  dbscan_config.epsilon = 0.6;
  dbscan_config.min_points = 5;
  const DbscanResult hotspots = Dbscan(raw.task_locations, dbscan_config);
  std::printf("DBSCAN found %zu hotspots, %zu noise tasks out of %zu\n",
              hotspots.num_clusters, hotspots.num_noise,
              raw.task_locations.size());
  const std::vector<size_t> sizes = hotspots.ClusterSizes();
  for (size_t c = 0; c < sizes.size(); ++c) {
    const Point centroid = hotspots.Centroids(raw.task_locations)[c];
    std::printf("  hotspot %zu: %3zu tasks around (%.1f, %.1f)\n", c,
                sizes[c], centroid.x, centroid.y);
  }

  // --- Two preparations of the same raw data.
  GMissionPrepConfig prep;
  prep.num_delivery_points = 40;
  prep.seed = seed + 1;
  const Instance kmeans_inst = PrepareGMissionInstance(raw, prep);
  const Instance dbscan_inst = InstanceFromClusters(
      raw, hotspots.Centroids(raw.task_locations), hotspots.labels,
      prep.max_dp, prep.speed);

  VdpsConfig vdps;
  vdps.epsilon = 2.0;
  ResultTable table("prep comparison (IEGT dispatch)",
                    {"prep", "zones", "tasks in zones", "P_dif",
                     "avg payoff", "covered tasks"});
  for (const auto& [name, inst] :
       {std::pair<const char*, const Instance*>{"k-means x=40", &kmeans_inst},
        std::pair<const char*, const Instance*>{"DBSCAN hotspots",
                                                &dbscan_inst}}) {
    const VdpsCatalog catalog = VdpsCatalog::Generate(*inst, vdps);
    const GameResult r = SolveIegt(*inst, catalog);
    table.AddRow({name, StrFormat("%zu", inst->num_delivery_points()),
                  StrFormat("%zu", inst->num_tasks()),
                  StrFormat("%.3f", r.assignment.PayoffDifference(*inst)),
                  StrFormat("%.3f", r.assignment.AveragePayoff(*inst)),
                  StrFormat("%zu/%zu",
                            r.assignment.num_covered_tasks(*inst),
                            inst->num_tasks())});
  }
  std::printf("\n%s\n", table.ToText().c_str());
  std::printf(
      "k-means covers every task (noise included, possibly far away);\n"
      "DBSCAN concentrates work at true hotspots at the cost of leaving\n"
      "noise tasks for ad-hoc handling.\n");
  return 0;
}
