// Quickstart: build a tiny delivery instance by hand, generate the workers'
// Valid Delivery Point Sets, run the IEGT fairness-aware assignment, and
// print the result. Mirrors the paper's Figure 1 setting: one distribution
// center, two couriers, five drop-off points.
//
// Build & run:   ./build/examples/quickstart

#include <cstdio>

#include "fta/fta.h"

int main() {
  using namespace fta;

  // A distribution center at (2, 2); couriers move at unit speed, so travel
  // time equals distance. Every task pays reward 1.
  std::vector<DeliveryPoint> dps;
  dps.emplace_back(Point{3.0, 3.0},
                   std::vector<SpatialTask>(6, SpatialTask{0, 8.0, 1.0}));
  dps.emplace_back(Point{4.0, 3.5},
                   std::vector<SpatialTask>(3, SpatialTask{1, 8.0, 1.0}));
  dps.emplace_back(Point{4.5, 2.5},
                   std::vector<SpatialTask>(4, SpatialTask{2, 8.0, 1.0}));
  dps.emplace_back(Point{1.0, 3.0},
                   std::vector<SpatialTask>(5, SpatialTask{3, 8.0, 1.0}));
  dps.emplace_back(Point{0.5, 1.0},
                   std::vector<SpatialTask>(2, SpatialTask{4, 8.0, 1.0}));
  std::vector<Worker> workers{{{1.0, 2.0}, 3}, {{3.0, 1.0}, 3}};
  Instance instance(Point{2.0, 2.0}, std::move(dps), std::move(workers),
                    TravelModel(1.0));
  if (Status s = instance.Validate(); !s.ok()) {
    std::fprintf(stderr, "bad instance: %s\n", s.ToString().c_str());
    return 1;
  }

  // Step 1 — VDPS generation (Section IV): all deadline-feasible delivery
  // point sets, pruned to neighbors within epsilon of each other.
  VdpsConfig vdps;
  vdps.epsilon = 4.0;
  vdps.max_set_size = 3;
  const VdpsCatalog catalog = VdpsCatalog::Generate(instance, vdps);
  std::printf("%s\n\n", catalog.Summary().c_str());

  // Step 2 — fairness-aware assignment via the evolutionary game.
  const GameResult result = SolveIegt(instance, catalog);
  std::printf("IEGT converged after %d iterations\n", result.rounds);
  std::printf("%s\n", result.assignment.ToString(instance).c_str());
  std::printf("payoff difference: %.3f\naverage payoff:    %.3f\n",
              result.assignment.PayoffDifference(instance),
              result.assignment.AveragePayoff(instance));
  return 0;
}
