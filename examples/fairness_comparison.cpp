// Fairness comparison: runs all four task-assignment algorithms of the
// paper's evaluation (MPTA, GTA, FGT, IEGT) on the same instance and prints
// the paper's three metrics side by side — the one-instance version of
// Figures 4-9.
//
// Usage:   ./build/examples/fairness_comparison [seed]

#include <cstdio>
#include <cstdlib>

#include "fta/fta.h"

int main(int argc, char** argv) {
  using namespace fta;
  const uint64_t seed =
      argc > 1 ? static_cast<uint64_t>(std::atoll(argv[1])) : 7;

  GMissionConfig config;
  config.num_tasks = 200;
  config.num_workers = 20;
  config.seed = seed;
  GMissionPrepConfig prep;
  prep.num_delivery_points = 40;
  prep.seed = seed + 1;
  const Instance instance = GenerateGMissionLike(config, prep);
  std::printf("instance: %zu tasks, %zu delivery points, %zu workers\n\n",
              instance.num_tasks(), instance.num_delivery_points(),
              instance.num_workers());

  SolverOptions options;
  options.vdps.epsilon = 2.0;
  options.seed = seed;

  ResultTable table("algorithm comparison",
                    {"algorithm", "P_dif", "avg payoff", "total payoff",
                     "assigned", "CPU ms", "rounds"});
  for (Algorithm a : PaperAlgorithms()) {
    const RunMetrics m = RunOnInstance(a, instance, options);
    table.AddRow({AlgorithmName(a), StrFormat("%.4f", m.payoff_difference),
                  StrFormat("%.4f", m.average_payoff),
                  StrFormat("%.2f", m.total_payoff),
                  StrFormat("%zu/%zu", m.assigned_workers, m.num_workers),
                  StrFormat("%.1f", m.cpu_seconds * 1e3),
                  StrFormat("%d", m.rounds)});
  }
  std::printf("%s\n", table.ToText().c_str());

  std::printf(
      "reading guide: MPTA maximizes total payoff but is unfair; GTA is\n"
      "fast and greedy; FGT reaches a pure Nash equilibrium of the\n"
      "inequity-aversion game; IEGT's evolutionary dynamics give the\n"
      "smallest payoff difference (the paper's headline result).\n");
  return 0;
}
