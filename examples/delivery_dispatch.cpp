// Delivery dispatch: the paper's motivating use case (Section I) — a local
// food-and-package hub dispatching couriers at one point in time. Generates
// a realistic clustered city (gMission-like), prepares it with the paper's
// k-means pipeline, dispatches with IEGT, and prints a human-readable
// dispatch sheet plus fairness diagnostics.
//
// Usage:   ./build/examples/delivery_dispatch [seed]

#include <cstdio>
#include <cstdlib>

#include "fta/fta.h"

int main(int argc, char** argv) {
  using namespace fta;
  const uint64_t seed =
      argc > 1 ? static_cast<uint64_t>(std::atoll(argv[1])) : 2024;

  // A lunch-rush snapshot: 180 pending orders across 8 restaurant hotspots
  // in a 10 km x 10 km city, 14 couriers online, drop-offs aggregated into
  // 36 delivery zones.
  GMissionConfig city;
  city.num_tasks = 180;
  city.num_workers = 14;
  city.num_hotspots = 8;
  city.area = 10.0;
  city.expiry_min = 1.0;
  city.expiry_max = 2.5;
  city.seed = seed;
  GMissionPrepConfig prep;
  prep.num_delivery_points = 36;
  prep.max_dp = 3;       // couriers accept at most 3 stops per run
  prep.speed = 15.0;     // e-bikes, km/h
  prep.seed = seed + 1;
  const Instance hub = GenerateGMissionLike(city, prep);

  std::printf("dispatch snapshot: %zu orders, %zu zones, %zu couriers\n",
              hub.num_tasks(), hub.num_delivery_points(), hub.num_workers());

  VdpsConfig vdps;
  vdps.epsilon = 2.0;  // only chain zones within 2 km of each other
  vdps.max_set_size = 3;
  Stopwatch wall;
  const VdpsCatalog catalog = VdpsCatalog::Generate(hub, vdps);
  std::printf("%s  (%.0f ms)\n\n", catalog.Summary().c_str(),
              wall.ElapsedMillis());

  IegtConfig config;
  config.seed = seed;
  config.record_trace = true;
  const GameResult result = SolveIegt(hub, catalog, config);

  std::printf("--- dispatch sheet (IEGT, %d evolution rounds) ---\n",
              result.rounds);
  const std::vector<double> payoffs = result.assignment.Payoffs(hub);
  for (size_t w = 0; w < hub.num_workers(); ++w) {
    const Route& route = result.assignment.route(w);
    if (route.empty()) {
      std::printf("courier %2zu: standby\n", w);
      continue;
    }
    const RouteEvaluation eval = EvaluateRoute(hub, w, route);
    std::printf("courier %2zu: ", w);
    for (size_t i = 0; i < route.size(); ++i) {
      std::printf(i == 0 ? "zone%-3u" : "-> zone%-3u", route[i]);
    }
    std::printf("  (%2.0f orders, %.2fh, payoff %.2f)\n", eval.total_reward,
                eval.total_time, eval.payoff);
  }
  std::printf("\norders covered:    %zu / %zu\n",
              result.assignment.num_covered_tasks(hub), hub.num_tasks());
  std::printf("payoff difference: %.3f   (fairness, lower is better)\n",
              result.assignment.PayoffDifference(hub));
  std::printf("average payoff:    %.3f\n",
              result.assignment.AveragePayoff(hub));
  std::printf("payoff Gini:       %.3f\n", Gini(payoffs));

  std::printf("\nconvergence (payoff difference per round):\n  ");
  for (const IterationStats& s : result.trace) {
    std::printf("%.2f ", s.payoff_difference);
  }
  std::printf("\n");
  return 0;
}
