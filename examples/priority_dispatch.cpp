// Priority dispatch: the paper's future-work direction "priority-aware
// fairness" in action. Senior couriers (priority 2.0) should earn roughly
// twice what junior couriers (priority 1.0) earn; plain FGT equalizes raw
// payoffs and gets this wrong, priority-aware FGT equalizes *normalized*
// payoffs and gets it right.
//
// Usage:   ./build/examples/priority_dispatch [seed]

#include <cstdio>
#include <cstdlib>

#include "fta/fta.h"

int main(int argc, char** argv) {
  using namespace fta;
  const uint64_t seed =
      argc > 1 ? static_cast<uint64_t>(std::atoll(argv[1])) : 31;

  // Strategy-rich setting (many zones per courier): evolutionary pressure
  // can only express priorities when better strategies remain available.
  GMissionConfig config;
  config.num_tasks = 300;
  config.num_workers = 10;
  config.seed = seed;
  GMissionPrepConfig prep;
  prep.num_delivery_points = 60;
  prep.seed = seed + 1;
  const Instance instance = GenerateGMissionLike(config, prep);

  // Half the fleet are seniors with double priority.
  std::vector<double> priorities(instance.num_workers());
  for (size_t w = 0; w < priorities.size(); ++w) {
    priorities[w] = (w % 2 == 0) ? 2.0 : 1.0;
  }

  VdpsConfig vdps;
  vdps.epsilon = 2.0;
  const VdpsCatalog catalog = VdpsCatalog::Generate(instance, vdps);

  // Note: the best-response game cannot see priorities — IAU is monotone
  // in own payoff for beta < 1, so priority-FGT coincides with plain FGT
  // (see src/game/priority.h). The evolutionary game's selection pressure
  // does depend on normalized payoffs, so that's where priorities bite.
  IegtConfig plain_config;
  plain_config.seed = seed;
  const GameResult plain = SolveIegt(instance, catalog, plain_config);

  PriorityIegtConfig prio_config;
  prio_config.priorities = priorities;
  prio_config.seed = seed;
  const GameResult prio = SolvePriorityIegt(instance, catalog, prio_config);

  const auto report = [&](const char* name, const GameResult& result) {
    const std::vector<double> payoffs = result.assignment.Payoffs(instance);
    double senior = 0.0, junior = 0.0;
    size_t n_senior = 0, n_junior = 0;
    for (size_t w = 0; w < payoffs.size(); ++w) {
      if (priorities[w] > 1.5) {
        senior += payoffs[w];
        ++n_senior;
      } else {
        junior += payoffs[w];
        ++n_junior;
      }
    }
    senior /= static_cast<double>(n_senior);
    junior /= static_cast<double>(n_junior);
    std::printf(
        "%-14s raw P_dif %.3f | weighted P_dif %.3f | senior avg %.2f | "
        "junior avg %.2f | senior/junior %.2fx (target 2x)\n",
        name, MeanAbsolutePairwiseDifference(payoffs),
        PriorityPayoffDifference(payoffs, priorities), senior, junior,
        junior > 0 ? senior / junior : 0.0);
  };

  std::printf("fleet: %zu couriers, every other one senior (priority 2)\n\n",
              instance.num_workers());
  report("IEGT (plain)", plain);
  report("priority-IEGT", prio);

  // Single seeds are noisy — evolution only moves workers *upwards*, so
  // priorities express themselves exactly when better strategies remain
  // available. Average over many days for the robust picture.
  const int kDays = 10;
  double wdiff_plain = 0.0, wdiff_prio = 0.0;
  double ratio_plain = 0.0, ratio_prio = 0.0;
  for (int day = 0; day < kDays; ++day) {
    GMissionConfig day_config = config;
    day_config.seed = seed + 1000 + static_cast<uint64_t>(day);
    GMissionPrepConfig day_prep = prep;
    day_prep.seed = day_config.seed + 1;
    const Instance day_inst = GenerateGMissionLike(day_config, day_prep);
    const VdpsCatalog day_catalog = VdpsCatalog::Generate(day_inst, vdps);
    IegtConfig p;
    p.seed = day_config.seed;
    PriorityIegtConfig q;
    q.priorities = priorities;
    q.seed = day_config.seed;
    const auto a = SolveIegt(day_inst, day_catalog, p);
    const auto b = SolvePriorityIegt(day_inst, day_catalog, q);
    const auto ratio = [&](const GameResult& r) {
      const std::vector<double> payoffs = r.assignment.Payoffs(day_inst);
      double s = 0.0, j = 0.0;
      for (size_t w = 0; w < payoffs.size(); ++w) {
        (priorities[w] > 1.5 ? s : j) += payoffs[w];
      }
      return j > 0 ? s / j : 0.0;
    };
    wdiff_plain += PriorityPayoffDifference(a.assignment.Payoffs(day_inst),
                                            priorities);
    wdiff_prio += PriorityPayoffDifference(b.assignment.Payoffs(day_inst),
                                           priorities);
    ratio_plain += ratio(a);
    ratio_prio += ratio(b);
  }
  std::printf(
      "\naveraged over %d days:\n"
      "  IEGT (plain)   weighted P_dif %.3f, senior/junior %.2fx\n"
      "  priority-IEGT  weighted P_dif %.3f, senior/junior %.2fx\n"
      "priority-aware evolution moves payoffs toward proportionality with\n"
      "priority whenever strategy availability allows.\n",
      kDays, wdiff_plain / kDays, ratio_plain / kDays, wdiff_prio / kDays,
      ratio_prio / kDays);
  return 0;
}
