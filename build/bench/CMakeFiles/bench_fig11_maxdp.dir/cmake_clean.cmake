file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_maxdp.dir/bench_fig11_maxdp.cc.o"
  "CMakeFiles/bench_fig11_maxdp.dir/bench_fig11_maxdp.cc.o.d"
  "bench_fig11_maxdp"
  "bench_fig11_maxdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_maxdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
