file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_9_delivery_points.dir/bench_fig8_9_delivery_points.cc.o"
  "CMakeFiles/bench_fig8_9_delivery_points.dir/bench_fig8_9_delivery_points.cc.o.d"
  "bench_fig8_9_delivery_points"
  "bench_fig8_9_delivery_points.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_9_delivery_points.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
