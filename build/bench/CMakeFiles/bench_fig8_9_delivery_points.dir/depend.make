# Empty dependencies file for bench_fig8_9_delivery_points.
# This may be replaced when dependencies are built.
