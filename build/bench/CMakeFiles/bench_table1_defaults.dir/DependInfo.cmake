
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1_defaults.cc" "bench/CMakeFiles/bench_table1_defaults.dir/bench_table1_defaults.cc.o" "gcc" "bench/CMakeFiles/bench_table1_defaults.dir/bench_table1_defaults.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/fta_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/fta_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/treedec/CMakeFiles/fta_treedec.dir/DependInfo.cmake"
  "/root/repo/build/src/game/CMakeFiles/fta_game.dir/DependInfo.cmake"
  "/root/repo/build/src/vdps/CMakeFiles/fta_vdps.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/fta_io.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/fta_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/fta_model.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/fta_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/fta_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fta_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
