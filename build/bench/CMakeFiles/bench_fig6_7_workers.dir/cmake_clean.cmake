file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_7_workers.dir/bench_fig6_7_workers.cc.o"
  "CMakeFiles/bench_fig6_7_workers.dir/bench_fig6_7_workers.cc.o.d"
  "bench_fig6_7_workers"
  "bench_fig6_7_workers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_7_workers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
