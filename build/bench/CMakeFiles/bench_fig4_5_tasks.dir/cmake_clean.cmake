file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_5_tasks.dir/bench_fig4_5_tasks.cc.o"
  "CMakeFiles/bench_fig4_5_tasks.dir/bench_fig4_5_tasks.cc.o.d"
  "bench_fig4_5_tasks"
  "bench_fig4_5_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_5_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
