# Empty compiler generated dependencies file for bench_fig4_5_tasks.
# This may be replaced when dependencies are built.
