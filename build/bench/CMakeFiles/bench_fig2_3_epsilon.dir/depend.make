# Empty dependencies file for bench_fig2_3_epsilon.
# This may be replaced when dependencies are built.
