file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_expiration.dir/bench_fig10_expiration.cc.o"
  "CMakeFiles/bench_fig10_expiration.dir/bench_fig10_expiration.cc.o.d"
  "bench_fig10_expiration"
  "bench_fig10_expiration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_expiration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
