# Empty compiler generated dependencies file for treedec_test.
# This may be replaced when dependencies are built.
