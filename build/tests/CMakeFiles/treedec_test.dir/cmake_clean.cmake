file(REMOVE_RECURSE
  "CMakeFiles/treedec_test.dir/treedec_test.cc.o"
  "CMakeFiles/treedec_test.dir/treedec_test.cc.o.d"
  "treedec_test"
  "treedec_test.pdb"
  "treedec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treedec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
