file(REMOVE_RECURSE
  "CMakeFiles/single_task_test.dir/single_task_test.cc.o"
  "CMakeFiles/single_task_test.dir/single_task_test.cc.o.d"
  "single_task_test"
  "single_task_test.pdb"
  "single_task_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/single_task_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
