# Empty compiler generated dependencies file for single_task_test.
# This may be replaced when dependencies are built.
