# Empty dependencies file for route_opt_test.
# This may be replaced when dependencies are built.
