file(REMOVE_RECURSE
  "CMakeFiles/route_opt_test.dir/route_opt_test.cc.o"
  "CMakeFiles/route_opt_test.dir/route_opt_test.cc.o.d"
  "route_opt_test"
  "route_opt_test.pdb"
  "route_opt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_opt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
