file(REMOVE_RECURSE
  "CMakeFiles/vdps_test.dir/vdps_test.cc.o"
  "CMakeFiles/vdps_test.dir/vdps_test.cc.o.d"
  "vdps_test"
  "vdps_test.pdb"
  "vdps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
