# Empty compiler generated dependencies file for vdps_test.
# This may be replaced when dependencies are built.
