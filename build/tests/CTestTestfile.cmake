# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/thread_pool_test[1]_include.cmake")
include("/root/repo/build/tests/geo_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/vdps_test[1]_include.cmake")
include("/root/repo/build/tests/game_test[1]_include.cmake")
include("/root/repo/build/tests/treedec_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/exp_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/priority_test[1]_include.cmake")
include("/root/repo/build/tests/dbscan_test[1]_include.cmake")
include("/root/repo/build/tests/simulation_test[1]_include.cmake")
include("/root/repo/build/tests/hungarian_test[1]_include.cmake")
include("/root/repo/build/tests/flags_test[1]_include.cmake")
include("/root/repo/build/tests/route_opt_test[1]_include.cmake")
include("/root/repo/build/tests/builder_test[1]_include.cmake")
include("/root/repo/build/tests/single_task_test[1]_include.cmake")
include("/root/repo/build/tests/bnb_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/equilibrium_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/logging_test[1]_include.cmake")
