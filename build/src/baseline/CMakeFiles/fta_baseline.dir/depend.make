# Empty dependencies file for fta_baseline.
# This may be replaced when dependencies are built.
