file(REMOVE_RECURSE
  "libfta_baseline.a"
)
