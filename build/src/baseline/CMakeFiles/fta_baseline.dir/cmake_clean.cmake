file(REMOVE_RECURSE
  "CMakeFiles/fta_baseline.dir/branch_and_bound.cc.o"
  "CMakeFiles/fta_baseline.dir/branch_and_bound.cc.o.d"
  "CMakeFiles/fta_baseline.dir/exhaustive.cc.o"
  "CMakeFiles/fta_baseline.dir/exhaustive.cc.o.d"
  "CMakeFiles/fta_baseline.dir/gta.cc.o"
  "CMakeFiles/fta_baseline.dir/gta.cc.o.d"
  "CMakeFiles/fta_baseline.dir/hungarian.cc.o"
  "CMakeFiles/fta_baseline.dir/hungarian.cc.o.d"
  "CMakeFiles/fta_baseline.dir/mpta.cc.o"
  "CMakeFiles/fta_baseline.dir/mpta.cc.o.d"
  "CMakeFiles/fta_baseline.dir/random_assignment.cc.o"
  "CMakeFiles/fta_baseline.dir/random_assignment.cc.o.d"
  "CMakeFiles/fta_baseline.dir/single_task.cc.o"
  "CMakeFiles/fta_baseline.dir/single_task.cc.o.d"
  "libfta_baseline.a"
  "libfta_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fta_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
