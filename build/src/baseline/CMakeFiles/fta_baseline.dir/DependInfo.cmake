
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/branch_and_bound.cc" "src/baseline/CMakeFiles/fta_baseline.dir/branch_and_bound.cc.o" "gcc" "src/baseline/CMakeFiles/fta_baseline.dir/branch_and_bound.cc.o.d"
  "/root/repo/src/baseline/exhaustive.cc" "src/baseline/CMakeFiles/fta_baseline.dir/exhaustive.cc.o" "gcc" "src/baseline/CMakeFiles/fta_baseline.dir/exhaustive.cc.o.d"
  "/root/repo/src/baseline/gta.cc" "src/baseline/CMakeFiles/fta_baseline.dir/gta.cc.o" "gcc" "src/baseline/CMakeFiles/fta_baseline.dir/gta.cc.o.d"
  "/root/repo/src/baseline/hungarian.cc" "src/baseline/CMakeFiles/fta_baseline.dir/hungarian.cc.o" "gcc" "src/baseline/CMakeFiles/fta_baseline.dir/hungarian.cc.o.d"
  "/root/repo/src/baseline/mpta.cc" "src/baseline/CMakeFiles/fta_baseline.dir/mpta.cc.o" "gcc" "src/baseline/CMakeFiles/fta_baseline.dir/mpta.cc.o.d"
  "/root/repo/src/baseline/random_assignment.cc" "src/baseline/CMakeFiles/fta_baseline.dir/random_assignment.cc.o" "gcc" "src/baseline/CMakeFiles/fta_baseline.dir/random_assignment.cc.o.d"
  "/root/repo/src/baseline/single_task.cc" "src/baseline/CMakeFiles/fta_baseline.dir/single_task.cc.o" "gcc" "src/baseline/CMakeFiles/fta_baseline.dir/single_task.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/game/CMakeFiles/fta_game.dir/DependInfo.cmake"
  "/root/repo/build/src/treedec/CMakeFiles/fta_treedec.dir/DependInfo.cmake"
  "/root/repo/build/src/vdps/CMakeFiles/fta_vdps.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/fta_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fta_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/fta_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
