
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/treedec/graph.cc" "src/treedec/CMakeFiles/fta_treedec.dir/graph.cc.o" "gcc" "src/treedec/CMakeFiles/fta_treedec.dir/graph.cc.o.d"
  "/root/repo/src/treedec/mwis.cc" "src/treedec/CMakeFiles/fta_treedec.dir/mwis.cc.o" "gcc" "src/treedec/CMakeFiles/fta_treedec.dir/mwis.cc.o.d"
  "/root/repo/src/treedec/tree_decomposition.cc" "src/treedec/CMakeFiles/fta_treedec.dir/tree_decomposition.cc.o" "gcc" "src/treedec/CMakeFiles/fta_treedec.dir/tree_decomposition.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fta_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
