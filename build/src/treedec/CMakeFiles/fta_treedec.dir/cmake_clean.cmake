file(REMOVE_RECURSE
  "CMakeFiles/fta_treedec.dir/graph.cc.o"
  "CMakeFiles/fta_treedec.dir/graph.cc.o.d"
  "CMakeFiles/fta_treedec.dir/mwis.cc.o"
  "CMakeFiles/fta_treedec.dir/mwis.cc.o.d"
  "CMakeFiles/fta_treedec.dir/tree_decomposition.cc.o"
  "CMakeFiles/fta_treedec.dir/tree_decomposition.cc.o.d"
  "libfta_treedec.a"
  "libfta_treedec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fta_treedec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
