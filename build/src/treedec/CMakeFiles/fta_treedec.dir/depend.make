# Empty dependencies file for fta_treedec.
# This may be replaced when dependencies are built.
