file(REMOVE_RECURSE
  "libfta_treedec.a"
)
