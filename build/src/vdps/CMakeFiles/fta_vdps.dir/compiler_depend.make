# Empty compiler generated dependencies file for fta_vdps.
# This may be replaced when dependencies are built.
