file(REMOVE_RECURSE
  "CMakeFiles/fta_vdps.dir/beam_enumerator.cc.o"
  "CMakeFiles/fta_vdps.dir/beam_enumerator.cc.o.d"
  "CMakeFiles/fta_vdps.dir/catalog.cc.o"
  "CMakeFiles/fta_vdps.dir/catalog.cc.o.d"
  "CMakeFiles/fta_vdps.dir/exact_dp.cc.o"
  "CMakeFiles/fta_vdps.dir/exact_dp.cc.o.d"
  "CMakeFiles/fta_vdps.dir/pareto.cc.o"
  "CMakeFiles/fta_vdps.dir/pareto.cc.o.d"
  "CMakeFiles/fta_vdps.dir/sequence_enumerator.cc.o"
  "CMakeFiles/fta_vdps.dir/sequence_enumerator.cc.o.d"
  "libfta_vdps.a"
  "libfta_vdps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fta_vdps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
