file(REMOVE_RECURSE
  "libfta_vdps.a"
)
