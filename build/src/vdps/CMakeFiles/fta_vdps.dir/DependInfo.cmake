
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vdps/beam_enumerator.cc" "src/vdps/CMakeFiles/fta_vdps.dir/beam_enumerator.cc.o" "gcc" "src/vdps/CMakeFiles/fta_vdps.dir/beam_enumerator.cc.o.d"
  "/root/repo/src/vdps/catalog.cc" "src/vdps/CMakeFiles/fta_vdps.dir/catalog.cc.o" "gcc" "src/vdps/CMakeFiles/fta_vdps.dir/catalog.cc.o.d"
  "/root/repo/src/vdps/exact_dp.cc" "src/vdps/CMakeFiles/fta_vdps.dir/exact_dp.cc.o" "gcc" "src/vdps/CMakeFiles/fta_vdps.dir/exact_dp.cc.o.d"
  "/root/repo/src/vdps/pareto.cc" "src/vdps/CMakeFiles/fta_vdps.dir/pareto.cc.o" "gcc" "src/vdps/CMakeFiles/fta_vdps.dir/pareto.cc.o.d"
  "/root/repo/src/vdps/sequence_enumerator.cc" "src/vdps/CMakeFiles/fta_vdps.dir/sequence_enumerator.cc.o" "gcc" "src/vdps/CMakeFiles/fta_vdps.dir/sequence_enumerator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/fta_model.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/fta_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fta_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
