file(REMOVE_RECURSE
  "CMakeFiles/fta_io.dir/assignment_io.cc.o"
  "CMakeFiles/fta_io.dir/assignment_io.cc.o.d"
  "CMakeFiles/fta_io.dir/csv.cc.o"
  "CMakeFiles/fta_io.dir/csv.cc.o.d"
  "CMakeFiles/fta_io.dir/dataset_io.cc.o"
  "CMakeFiles/fta_io.dir/dataset_io.cc.o.d"
  "CMakeFiles/fta_io.dir/svg.cc.o"
  "CMakeFiles/fta_io.dir/svg.cc.o.d"
  "CMakeFiles/fta_io.dir/trace_io.cc.o"
  "CMakeFiles/fta_io.dir/trace_io.cc.o.d"
  "libfta_io.a"
  "libfta_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fta_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
