# Empty compiler generated dependencies file for fta_io.
# This may be replaced when dependencies are built.
