file(REMOVE_RECURSE
  "libfta_io.a"
)
