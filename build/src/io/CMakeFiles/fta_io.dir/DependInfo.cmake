
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/assignment_io.cc" "src/io/CMakeFiles/fta_io.dir/assignment_io.cc.o" "gcc" "src/io/CMakeFiles/fta_io.dir/assignment_io.cc.o.d"
  "/root/repo/src/io/csv.cc" "src/io/CMakeFiles/fta_io.dir/csv.cc.o" "gcc" "src/io/CMakeFiles/fta_io.dir/csv.cc.o.d"
  "/root/repo/src/io/dataset_io.cc" "src/io/CMakeFiles/fta_io.dir/dataset_io.cc.o" "gcc" "src/io/CMakeFiles/fta_io.dir/dataset_io.cc.o.d"
  "/root/repo/src/io/svg.cc" "src/io/CMakeFiles/fta_io.dir/svg.cc.o" "gcc" "src/io/CMakeFiles/fta_io.dir/svg.cc.o.d"
  "/root/repo/src/io/trace_io.cc" "src/io/CMakeFiles/fta_io.dir/trace_io.cc.o" "gcc" "src/io/CMakeFiles/fta_io.dir/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datagen/CMakeFiles/fta_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/fta_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fta_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/fta_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/fta_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
