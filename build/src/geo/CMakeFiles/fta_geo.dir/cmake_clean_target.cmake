file(REMOVE_RECURSE
  "libfta_geo.a"
)
