# Empty dependencies file for fta_geo.
# This may be replaced when dependencies are built.
