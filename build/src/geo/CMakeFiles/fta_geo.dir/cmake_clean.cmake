file(REMOVE_RECURSE
  "CMakeFiles/fta_geo.dir/distance_matrix.cc.o"
  "CMakeFiles/fta_geo.dir/distance_matrix.cc.o.d"
  "CMakeFiles/fta_geo.dir/grid_index.cc.o"
  "CMakeFiles/fta_geo.dir/grid_index.cc.o.d"
  "CMakeFiles/fta_geo.dir/kdtree.cc.o"
  "CMakeFiles/fta_geo.dir/kdtree.cc.o.d"
  "libfta_geo.a"
  "libfta_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fta_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
