file(REMOVE_RECURSE
  "libfta_util.a"
)
