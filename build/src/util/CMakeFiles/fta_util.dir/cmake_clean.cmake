file(REMOVE_RECURSE
  "CMakeFiles/fta_util.dir/flags.cc.o"
  "CMakeFiles/fta_util.dir/flags.cc.o.d"
  "CMakeFiles/fta_util.dir/logging.cc.o"
  "CMakeFiles/fta_util.dir/logging.cc.o.d"
  "CMakeFiles/fta_util.dir/math_util.cc.o"
  "CMakeFiles/fta_util.dir/math_util.cc.o.d"
  "CMakeFiles/fta_util.dir/rng.cc.o"
  "CMakeFiles/fta_util.dir/rng.cc.o.d"
  "CMakeFiles/fta_util.dir/status.cc.o"
  "CMakeFiles/fta_util.dir/status.cc.o.d"
  "CMakeFiles/fta_util.dir/string_util.cc.o"
  "CMakeFiles/fta_util.dir/string_util.cc.o.d"
  "CMakeFiles/fta_util.dir/thread_pool.cc.o"
  "CMakeFiles/fta_util.dir/thread_pool.cc.o.d"
  "libfta_util.a"
  "libfta_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fta_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
