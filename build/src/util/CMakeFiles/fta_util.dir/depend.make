# Empty dependencies file for fta_util.
# This may be replaced when dependencies are built.
