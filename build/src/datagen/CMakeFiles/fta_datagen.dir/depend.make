# Empty dependencies file for fta_datagen.
# This may be replaced when dependencies are built.
