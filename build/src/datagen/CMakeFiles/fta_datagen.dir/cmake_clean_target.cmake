file(REMOVE_RECURSE
  "libfta_datagen.a"
)
