file(REMOVE_RECURSE
  "CMakeFiles/fta_datagen.dir/gmission.cc.o"
  "CMakeFiles/fta_datagen.dir/gmission.cc.o.d"
  "CMakeFiles/fta_datagen.dir/synthetic.cc.o"
  "CMakeFiles/fta_datagen.dir/synthetic.cc.o.d"
  "CMakeFiles/fta_datagen.dir/workload.cc.o"
  "CMakeFiles/fta_datagen.dir/workload.cc.o.d"
  "libfta_datagen.a"
  "libfta_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fta_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
