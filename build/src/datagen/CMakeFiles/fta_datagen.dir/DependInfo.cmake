
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/gmission.cc" "src/datagen/CMakeFiles/fta_datagen.dir/gmission.cc.o" "gcc" "src/datagen/CMakeFiles/fta_datagen.dir/gmission.cc.o.d"
  "/root/repo/src/datagen/synthetic.cc" "src/datagen/CMakeFiles/fta_datagen.dir/synthetic.cc.o" "gcc" "src/datagen/CMakeFiles/fta_datagen.dir/synthetic.cc.o.d"
  "/root/repo/src/datagen/workload.cc" "src/datagen/CMakeFiles/fta_datagen.dir/workload.cc.o" "gcc" "src/datagen/CMakeFiles/fta_datagen.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/fta_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/fta_model.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/fta_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fta_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
