file(REMOVE_RECURSE
  "CMakeFiles/fta_model.dir/assignment.cc.o"
  "CMakeFiles/fta_model.dir/assignment.cc.o.d"
  "CMakeFiles/fta_model.dir/builder.cc.o"
  "CMakeFiles/fta_model.dir/builder.cc.o.d"
  "CMakeFiles/fta_model.dir/instance.cc.o"
  "CMakeFiles/fta_model.dir/instance.cc.o.d"
  "CMakeFiles/fta_model.dir/route.cc.o"
  "CMakeFiles/fta_model.dir/route.cc.o.d"
  "CMakeFiles/fta_model.dir/route_opt.cc.o"
  "CMakeFiles/fta_model.dir/route_opt.cc.o.d"
  "libfta_model.a"
  "libfta_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fta_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
