
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/assignment.cc" "src/model/CMakeFiles/fta_model.dir/assignment.cc.o" "gcc" "src/model/CMakeFiles/fta_model.dir/assignment.cc.o.d"
  "/root/repo/src/model/builder.cc" "src/model/CMakeFiles/fta_model.dir/builder.cc.o" "gcc" "src/model/CMakeFiles/fta_model.dir/builder.cc.o.d"
  "/root/repo/src/model/instance.cc" "src/model/CMakeFiles/fta_model.dir/instance.cc.o" "gcc" "src/model/CMakeFiles/fta_model.dir/instance.cc.o.d"
  "/root/repo/src/model/route.cc" "src/model/CMakeFiles/fta_model.dir/route.cc.o" "gcc" "src/model/CMakeFiles/fta_model.dir/route.cc.o.d"
  "/root/repo/src/model/route_opt.cc" "src/model/CMakeFiles/fta_model.dir/route_opt.cc.o" "gcc" "src/model/CMakeFiles/fta_model.dir/route_opt.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/fta_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fta_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
