# Empty dependencies file for fta_model.
# This may be replaced when dependencies are built.
