file(REMOVE_RECURSE
  "libfta_model.a"
)
