file(REMOVE_RECURSE
  "libfta_exp.a"
)
