# Empty dependencies file for fta_exp.
# This may be replaced when dependencies are built.
