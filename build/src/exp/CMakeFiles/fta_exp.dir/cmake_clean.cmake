file(REMOVE_RECURSE
  "CMakeFiles/fta_exp.dir/report.cc.o"
  "CMakeFiles/fta_exp.dir/report.cc.o.d"
  "CMakeFiles/fta_exp.dir/runner.cc.o"
  "CMakeFiles/fta_exp.dir/runner.cc.o.d"
  "CMakeFiles/fta_exp.dir/simulation.cc.o"
  "CMakeFiles/fta_exp.dir/simulation.cc.o.d"
  "CMakeFiles/fta_exp.dir/stats.cc.o"
  "CMakeFiles/fta_exp.dir/stats.cc.o.d"
  "CMakeFiles/fta_exp.dir/sweep.cc.o"
  "CMakeFiles/fta_exp.dir/sweep.cc.o.d"
  "libfta_exp.a"
  "libfta_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fta_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
