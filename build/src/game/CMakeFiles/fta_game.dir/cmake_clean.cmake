file(REMOVE_RECURSE
  "CMakeFiles/fta_game.dir/equilibrium.cc.o"
  "CMakeFiles/fta_game.dir/equilibrium.cc.o.d"
  "CMakeFiles/fta_game.dir/fgt.cc.o"
  "CMakeFiles/fta_game.dir/fgt.cc.o.d"
  "CMakeFiles/fta_game.dir/iau.cc.o"
  "CMakeFiles/fta_game.dir/iau.cc.o.d"
  "CMakeFiles/fta_game.dir/iegt.cc.o"
  "CMakeFiles/fta_game.dir/iegt.cc.o.d"
  "CMakeFiles/fta_game.dir/init.cc.o"
  "CMakeFiles/fta_game.dir/init.cc.o.d"
  "CMakeFiles/fta_game.dir/joint_state.cc.o"
  "CMakeFiles/fta_game.dir/joint_state.cc.o.d"
  "CMakeFiles/fta_game.dir/potential.cc.o"
  "CMakeFiles/fta_game.dir/potential.cc.o.d"
  "CMakeFiles/fta_game.dir/priority.cc.o"
  "CMakeFiles/fta_game.dir/priority.cc.o.d"
  "libfta_game.a"
  "libfta_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fta_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
