file(REMOVE_RECURSE
  "libfta_game.a"
)
