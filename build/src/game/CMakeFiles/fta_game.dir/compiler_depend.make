# Empty compiler generated dependencies file for fta_game.
# This may be replaced when dependencies are built.
