
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/game/equilibrium.cc" "src/game/CMakeFiles/fta_game.dir/equilibrium.cc.o" "gcc" "src/game/CMakeFiles/fta_game.dir/equilibrium.cc.o.d"
  "/root/repo/src/game/fgt.cc" "src/game/CMakeFiles/fta_game.dir/fgt.cc.o" "gcc" "src/game/CMakeFiles/fta_game.dir/fgt.cc.o.d"
  "/root/repo/src/game/iau.cc" "src/game/CMakeFiles/fta_game.dir/iau.cc.o" "gcc" "src/game/CMakeFiles/fta_game.dir/iau.cc.o.d"
  "/root/repo/src/game/iegt.cc" "src/game/CMakeFiles/fta_game.dir/iegt.cc.o" "gcc" "src/game/CMakeFiles/fta_game.dir/iegt.cc.o.d"
  "/root/repo/src/game/init.cc" "src/game/CMakeFiles/fta_game.dir/init.cc.o" "gcc" "src/game/CMakeFiles/fta_game.dir/init.cc.o.d"
  "/root/repo/src/game/joint_state.cc" "src/game/CMakeFiles/fta_game.dir/joint_state.cc.o" "gcc" "src/game/CMakeFiles/fta_game.dir/joint_state.cc.o.d"
  "/root/repo/src/game/potential.cc" "src/game/CMakeFiles/fta_game.dir/potential.cc.o" "gcc" "src/game/CMakeFiles/fta_game.dir/potential.cc.o.d"
  "/root/repo/src/game/priority.cc" "src/game/CMakeFiles/fta_game.dir/priority.cc.o" "gcc" "src/game/CMakeFiles/fta_game.dir/priority.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vdps/CMakeFiles/fta_vdps.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/fta_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fta_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/fta_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
