# Empty compiler generated dependencies file for fta_cluster.
# This may be replaced when dependencies are built.
