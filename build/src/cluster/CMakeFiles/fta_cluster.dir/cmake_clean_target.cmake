file(REMOVE_RECURSE
  "libfta_cluster.a"
)
