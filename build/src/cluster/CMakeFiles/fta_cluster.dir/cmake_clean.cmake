file(REMOVE_RECURSE
  "CMakeFiles/fta_cluster.dir/dbscan.cc.o"
  "CMakeFiles/fta_cluster.dir/dbscan.cc.o.d"
  "CMakeFiles/fta_cluster.dir/kmeans.cc.o"
  "CMakeFiles/fta_cluster.dir/kmeans.cc.o.d"
  "libfta_cluster.a"
  "libfta_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fta_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
