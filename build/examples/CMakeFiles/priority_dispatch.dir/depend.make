# Empty dependencies file for priority_dispatch.
# This may be replaced when dependencies are built.
