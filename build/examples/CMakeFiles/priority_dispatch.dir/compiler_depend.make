# Empty compiler generated dependencies file for priority_dispatch.
# This may be replaced when dependencies are built.
