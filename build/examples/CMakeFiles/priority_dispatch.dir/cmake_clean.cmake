file(REMOVE_RECURSE
  "CMakeFiles/priority_dispatch.dir/priority_dispatch.cpp.o"
  "CMakeFiles/priority_dispatch.dir/priority_dispatch.cpp.o.d"
  "priority_dispatch"
  "priority_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priority_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
