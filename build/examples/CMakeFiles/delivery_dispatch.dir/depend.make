# Empty dependencies file for delivery_dispatch.
# This may be replaced when dependencies are built.
