file(REMOVE_RECURSE
  "CMakeFiles/delivery_dispatch.dir/delivery_dispatch.cpp.o"
  "CMakeFiles/delivery_dispatch.dir/delivery_dispatch.cpp.o.d"
  "delivery_dispatch"
  "delivery_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delivery_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
