file(REMOVE_RECURSE
  "CMakeFiles/fta_tool.dir/fta_tool.cpp.o"
  "CMakeFiles/fta_tool.dir/fta_tool.cpp.o.d"
  "fta_tool"
  "fta_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fta_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
