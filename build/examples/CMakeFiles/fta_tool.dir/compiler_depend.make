# Empty compiler generated dependencies file for fta_tool.
# This may be replaced when dependencies are built.
