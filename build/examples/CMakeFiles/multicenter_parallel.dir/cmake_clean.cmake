file(REMOVE_RECURSE
  "CMakeFiles/multicenter_parallel.dir/multicenter_parallel.cpp.o"
  "CMakeFiles/multicenter_parallel.dir/multicenter_parallel.cpp.o.d"
  "multicenter_parallel"
  "multicenter_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicenter_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
