# Empty dependencies file for multicenter_parallel.
# This may be replaced when dependencies are built.
