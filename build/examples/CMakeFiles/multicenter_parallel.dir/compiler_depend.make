# Empty compiler generated dependencies file for multicenter_parallel.
# This may be replaced when dependencies are built.
