file(REMOVE_RECURSE
  "CMakeFiles/fairness_comparison.dir/fairness_comparison.cpp.o"
  "CMakeFiles/fairness_comparison.dir/fairness_comparison.cpp.o.d"
  "fairness_comparison"
  "fairness_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairness_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
