# Empty compiler generated dependencies file for fairness_comparison.
# This may be replaced when dependencies are built.
