#include "treedec/mwis.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "util/logging.h"
#include "util/math_util.h"
#include "util/string_util.h"

namespace fta {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Per-bag DP table: value of the best selection in the subtree rooted at
/// the bag, for each independent subset (bitmask over the bag's vertices).
struct BagTable {
  std::vector<double> value;  // 2^|bag| entries; -inf for dependent subsets
};

/// Bit positions of `verts` (a sorted subset of `bag`) within `bag`.
uint32_t ProjectMask(const std::vector<uint32_t>& bag, uint32_t mask,
                     const std::vector<uint32_t>& subset) {
  // Returns the bits of `mask` (over bag) restricted to the positions of
  // `subset`'s vertices, re-packed in subset order.
  uint32_t out = 0;
  for (size_t s = 0; s < subset.size(); ++s) {
    const auto it = std::lower_bound(bag.begin(), bag.end(), subset[s]);
    const size_t pos = static_cast<size_t>(it - bag.begin());
    if (mask & (1u << pos)) out |= (1u << s);
  }
  return out;
}

/// Independence marks for all subsets of `bag`: valid[S] iff no edge of
/// `graph` joins two selected members.
std::vector<bool> IndependentSubsets(const Graph& graph,
                                     const std::vector<uint32_t>& bag) {
  const size_t k = bag.size();
  // adj_mask[i] = bag positions adjacent to bag[i].
  std::vector<uint32_t> adj_mask(k, 0);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      if (i != j && graph.HasEdge(bag[i], bag[j])) {
        adj_mask[i] |= (1u << j);
      }
    }
  }
  std::vector<bool> valid(1u << k, false);
  valid[0] = true;
  for (uint32_t s = 1; s < (1u << k); ++s) {
    const uint32_t low = static_cast<uint32_t>(__builtin_ctz(s));
    const uint32_t rest = s & (s - 1);
    valid[s] = valid[rest] && (adj_mask[low] & rest) == 0;
  }
  return valid;
}

double SubsetWeight(const std::vector<uint32_t>& bag, uint32_t mask,
                    const std::vector<double>& weights) {
  double w = 0.0;
  for (size_t i = 0; i < bag.size(); ++i) {
    if (mask & (1u << i)) w += weights[bag[i]];
  }
  return w;
}

}  // namespace

StatusOr<MwisResult> MwisOverTreeDecomposition(
    const Graph& graph, const std::vector<double>& weights,
    const TreeDecomposition& td, int max_width) {
  FTA_CHECK(weights.size() == graph.num_vertices());
  if (td.width() > max_width) {
    return Status::FailedPrecondition(
        StrFormat("tree decomposition width %d exceeds cap %d", td.width(),
                  max_width));
  }
  const size_t num_bags = td.num_bags();
  if (num_bags == 0) return MwisResult{};

  std::vector<BagTable> tables(num_bags);
  std::vector<std::vector<bool>> valid(num_bags);

  // Bags are indexed in elimination order: children precede parents, so a
  // single ascending pass is a bottom-up traversal.
  for (size_t b = 0; b < num_bags; ++b) {
    const std::vector<uint32_t>& bag = td.bag(b);
    const size_t k = bag.size();
    valid[b] = IndependentSubsets(graph, bag);
    tables[b].value.assign(1u << k, kNegInf);
    // Local weight of each independent subset.
    for (uint32_t s = 0; s < (1u << k); ++s) {
      if (valid[b][s]) tables[b].value[s] = SubsetWeight(bag, s, weights);
    }
    // Fold children in: for child c with intersection I = bag(c) ∩ bag(b),
    // g_c(P) = max over child subsets agreeing with P on I of
    // (child value - w(P)); then value[b][S] += g_c(S ∩ I).
    for (uint32_t c : td.children(b)) {
      const std::vector<uint32_t>& cbag = td.bag(c);
      std::vector<uint32_t> inter;
      std::set_intersection(bag.begin(), bag.end(), cbag.begin(), cbag.end(),
                            std::back_inserter(inter));
      std::unordered_map<uint32_t, double> g;
      for (uint32_t sc = 0; sc < tables[c].value.size(); ++sc) {
        if (tables[c].value[sc] == kNegInf) continue;
        const uint32_t p = ProjectMask(cbag, sc, inter);
        const double v =
            tables[c].value[sc] - SubsetWeight(inter, p, weights);
        auto [it, inserted] = g.emplace(p, v);
        if (!inserted && v > it->second) it->second = v;
      }
      for (uint32_t s = 0; s < (1u << k); ++s) {
        if (tables[b].value[s] == kNegInf) continue;
        const uint32_t p = ProjectMask(bag, s, inter);
        const auto it = g.find(p);
        if (it == g.end()) {
          tables[b].value[s] = kNegInf;  // no compatible child selection
        } else {
          tables[b].value[s] += it->second;
        }
      }
    }
  }

  // Extract: choose the best subset at each root, then walk down re-deriving
  // each child's argmax under its parent's interface constraint.
  MwisResult result;
  std::vector<std::pair<uint32_t, uint32_t>> stack;  // (bag, chosen mask)
  for (uint32_t r : td.roots()) {
    uint32_t best_mask = 0;
    double best = kNegInf;
    for (uint32_t s = 0; s < tables[r].value.size(); ++s) {
      if (tables[r].value[s] > best) {
        best = tables[r].value[s];
        best_mask = s;
      }
    }
    if (best == kNegInf) continue;
    result.weight += best;
    stack.emplace_back(r, best_mask);
  }
  std::vector<bool> chosen(graph.num_vertices(), false);
  while (!stack.empty()) {
    const auto [b, mask] = stack.back();
    stack.pop_back();
    const std::vector<uint32_t>& bag = td.bag(b);
    for (size_t i = 0; i < bag.size(); ++i) {
      if (mask & (1u << i)) chosen[bag[i]] = true;
    }
    for (uint32_t c : td.children(b)) {
      const std::vector<uint32_t>& cbag = td.bag(c);
      std::vector<uint32_t> inter;
      std::set_intersection(bag.begin(), bag.end(), cbag.begin(), cbag.end(),
                            std::back_inserter(inter));
      const uint32_t parent_p = ProjectMask(bag, mask, inter);
      uint32_t best_mask = 0;
      double best = kNegInf;
      for (uint32_t sc = 0; sc < tables[c].value.size(); ++sc) {
        if (tables[c].value[sc] == kNegInf) continue;
        if (ProjectMask(cbag, sc, inter) != parent_p) continue;
        const double v = tables[c].value[sc] -
                         SubsetWeight(inter, parent_p, weights);
        if (v > best) {
          best = v;
          best_mask = sc;
        }
      }
      FTA_CHECK_MSG(best != kNegInf, "inconsistent MWIS reconstruction");
      stack.emplace_back(c, best_mask);
    }
  }
  for (uint32_t v = 0; v < graph.num_vertices(); ++v) {
    if (chosen[v]) result.selected.push_back(v);
  }
  return result;
}

MwisResult MwisBruteForce(const Graph& graph,
                          const std::vector<double>& weights) {
  const size_t n = graph.num_vertices();
  FTA_CHECK_MSG(n <= 30, "brute force MWIS limited to 30 vertices");
  std::vector<uint32_t> adj_mask(n, 0);
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t v : graph.Neighbors(u)) adj_mask[u] |= (1u << v);
  }
  MwisResult best;
  for (uint32_t s = 0; s < (1u << n); ++s) {
    double w = 0.0;
    bool ok = true;
    for (uint32_t u = 0; u < n && ok; ++u) {
      if ((s & (1u << u)) == 0) continue;
      if (adj_mask[u] & s) ok = false;
      w += weights[u];
    }
    if (ok && w > best.weight) {
      best.weight = w;
      best.selected.clear();
      for (uint32_t u = 0; u < n; ++u) {
        if (s & (1u << u)) best.selected.push_back(u);
      }
    }
  }
  return best;
}

MwisResult MwisGreedy(const Graph& graph, const std::vector<double>& weights) {
  const size_t n = graph.num_vertices();
  std::vector<uint32_t> order(n);
  for (uint32_t v = 0; v < n; ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (weights[a] != weights[b]) return weights[a] > weights[b];
    return a < b;
  });
  std::vector<bool> blocked(n, false);
  MwisResult result;
  for (uint32_t v : order) {
    if (blocked[v] || weights[v] <= 0.0) continue;
    result.selected.push_back(v);
    result.weight += weights[v];
    blocked[v] = true;
    for (uint32_t u : graph.Neighbors(v)) blocked[u] = true;
  }
  std::sort(result.selected.begin(), result.selected.end());
  return result;
}

}  // namespace fta
