#include "treedec/tree_decomposition.h"

#include <algorithm>
#include <limits>
#include <set>

#include "util/logging.h"
#include "util/string_util.h"

namespace fta {
namespace {

/// Mutable adjacency (as sets) for elimination simulations.
std::vector<std::set<uint32_t>> MutableAdjacency(const Graph& graph) {
  std::vector<std::set<uint32_t>> adj(graph.num_vertices());
  for (uint32_t u = 0; u < graph.num_vertices(); ++u) {
    adj[u].insert(graph.Neighbors(u).begin(), graph.Neighbors(u).end());
  }
  return adj;
}

/// Eliminates v: pairwise-connects its remaining neighbors (fill-in) and
/// removes v from the adjacency structure.
void Eliminate(std::vector<std::set<uint32_t>>& adj, uint32_t v) {
  const std::vector<uint32_t> nbrs(adj[v].begin(), adj[v].end());
  for (size_t i = 0; i < nbrs.size(); ++i) {
    for (size_t j = i + 1; j < nbrs.size(); ++j) {
      adj[nbrs[i]].insert(nbrs[j]);
      adj[nbrs[j]].insert(nbrs[i]);
    }
  }
  for (uint32_t u : nbrs) adj[u].erase(v);
  adj[v].clear();
}

/// Number of missing edges among the neighbors of v (min-fill score).
size_t FillCost(const std::vector<std::set<uint32_t>>& adj, uint32_t v) {
  const std::vector<uint32_t> nbrs(adj[v].begin(), adj[v].end());
  size_t missing = 0;
  for (size_t i = 0; i < nbrs.size(); ++i) {
    for (size_t j = i + 1; j < nbrs.size(); ++j) {
      if (adj[nbrs[i]].count(nbrs[j]) == 0) ++missing;
    }
  }
  return missing;
}

}  // namespace

std::vector<uint32_t> ComputeEliminationOrder(
    const Graph& graph, EliminationHeuristic heuristic) {
  const size_t n = graph.num_vertices();
  std::vector<std::set<uint32_t>> adj = MutableAdjacency(graph);
  std::vector<bool> removed(n, false);
  std::vector<uint32_t> order;
  order.reserve(n);
  for (size_t step = 0; step < n; ++step) {
    uint32_t best = 0;
    size_t best_score = std::numeric_limits<size_t>::max();
    for (uint32_t v = 0; v < n; ++v) {
      if (removed[v]) continue;
      const size_t score = heuristic == EliminationHeuristic::kMinDegree
                               ? adj[v].size()
                               : FillCost(adj, v);
      if (score < best_score) {
        best_score = score;
        best = v;
      }
    }
    order.push_back(best);
    removed[best] = true;
    Eliminate(adj, best);
  }
  return order;
}

TreeDecomposition TreeDecomposition::FromEliminationOrder(
    const Graph& graph, const std::vector<uint32_t>& order) {
  const size_t n = graph.num_vertices();
  FTA_CHECK_MSG(order.size() == n, "elimination order must cover all vertices");
  std::vector<std::set<uint32_t>> adj = MutableAdjacency(graph);
  std::vector<uint32_t> position(n);
  for (uint32_t i = 0; i < n; ++i) position[order[i]] = i;

  TreeDecomposition td;
  td.bags_.resize(n);
  td.parent_.assign(n, -1);
  td.children_.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t v = order[i];
    // Bag_i = {v} ∪ current (fill-in) neighbors of v.
    std::vector<uint32_t>& bag = td.bags_[i];
    bag.assign(adj[v].begin(), adj[v].end());
    bag.push_back(v);
    std::sort(bag.begin(), bag.end());
    // Parent: the bag of the earliest-eliminated remaining neighbor.
    if (!adj[v].empty()) {
      uint32_t parent_pos = std::numeric_limits<uint32_t>::max();
      for (uint32_t u : adj[v]) parent_pos = std::min(parent_pos, position[u]);
      td.parent_[i] = static_cast<int32_t>(parent_pos);
      td.children_[parent_pos].push_back(i);
    } else {
      td.roots_.push_back(i);
    }
    Eliminate(adj, v);
  }
  return td;
}

TreeDecomposition TreeDecomposition::Build(const Graph& graph,
                                           EliminationHeuristic heuristic) {
  return FromEliminationOrder(graph,
                              ComputeEliminationOrder(graph, heuristic));
}

int TreeDecomposition::width() const {
  int w = -1;
  for (const auto& bag : bags_) {
    w = std::max(w, static_cast<int>(bag.size()) - 1);
  }
  return w;
}

Status TreeDecomposition::Validate(const Graph& graph) const {
  const size_t n = graph.num_vertices();
  // Bags containing each vertex.
  std::vector<std::vector<uint32_t>> bags_of(n);
  for (uint32_t b = 0; b < bags_.size(); ++b) {
    for (uint32_t v : bags_[b]) {
      if (v >= n) {
        return Status::Internal(StrFormat("bag %u holds unknown vertex %u",
                                          b, v));
      }
      bags_of[v].push_back(b);
    }
  }
  // Property 1: vertex coverage.
  for (uint32_t v = 0; v < n; ++v) {
    if (bags_of[v].empty()) {
      return Status::Internal(StrFormat("vertex %u is in no bag", v));
    }
  }
  // Property 2: edge coverage.
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t v : graph.Neighbors(u)) {
      if (v < u) continue;
      bool covered = false;
      for (uint32_t b : bags_of[u]) {
        if (std::binary_search(bags_[b].begin(), bags_[b].end(), v)) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        return Status::Internal(
            StrFormat("edge {%u, %u} is inside no bag", u, v));
      }
    }
  }
  // Property 3: connected subtrees. For each vertex, the number of bags
  // containing it minus the number of (bag, parent-bag) links where both
  // contain it must be exactly 1.
  for (uint32_t v = 0; v < n; ++v) {
    size_t links = 0;
    for (uint32_t b : bags_of[v]) {
      const int32_t p = parent_[b];
      if (p >= 0 && std::binary_search(bags_[static_cast<size_t>(p)].begin(),
                                       bags_[static_cast<size_t>(p)].end(),
                                       v)) {
        ++links;
      }
    }
    if (bags_of[v].size() - links != 1) {
      return Status::Internal(
          StrFormat("vertex %u induces a disconnected subtree", v));
    }
  }
  return Status::Ok();
}

}  // namespace fta
