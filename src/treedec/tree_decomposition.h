#ifndef FTA_TREEDEC_TREE_DECOMPOSITION_H_
#define FTA_TREEDEC_TREE_DECOMPOSITION_H_

#include <cstdint>
#include <vector>

#include "treedec/graph.h"
#include "util/status.h"

namespace fta {

/// Heuristic for ordering vertex eliminations when building a tree
/// decomposition.
enum class EliminationHeuristic {
  /// Repeatedly eliminate a vertex of minimum current degree. Fast, good
  /// widths on sparse conflict graphs.
  kMinDegree,
  /// Repeatedly eliminate the vertex introducing the fewest fill-in edges.
  /// Slower, usually lower width.
  kMinFill,
};

/// Computes an elimination order of `graph` under the chosen heuristic.
std::vector<uint32_t> ComputeEliminationOrder(const Graph& graph,
                                              EliminationHeuristic heuristic);

/// A tree decomposition: bags of vertices arranged in a rooted tree such
/// that (1) every vertex appears in a bag, (2) every edge is inside some
/// bag, (3) the bags containing any vertex form a connected subtree.
class TreeDecomposition {
 public:
  /// Builds a decomposition from an elimination order (the standard
  /// fill-in construction). The result is rooted at the last bag created.
  static TreeDecomposition FromEliminationOrder(
      const Graph& graph, const std::vector<uint32_t>& order);

  /// Convenience: order + build in one step.
  static TreeDecomposition Build(
      const Graph& graph,
      EliminationHeuristic heuristic = EliminationHeuristic::kMinDegree);

  size_t num_bags() const { return bags_.size(); }
  /// Bag b's vertices, sorted ascending.
  const std::vector<uint32_t>& bag(size_t b) const { return bags_[b]; }
  /// Parent bag of b; -1 for the root (and for isolated roots of a forest).
  int32_t parent(size_t b) const { return parent_[b]; }
  /// Children bags of b.
  const std::vector<uint32_t>& children(size_t b) const {
    return children_[b];
  }
  /// Roots of the decomposition forest (one per connected component).
  const std::vector<uint32_t>& roots() const { return roots_; }

  /// Width = max bag size - 1; -1 for an empty decomposition.
  int width() const;

  /// Verifies the three tree-decomposition properties against `graph`.
  Status Validate(const Graph& graph) const;

 private:
  std::vector<std::vector<uint32_t>> bags_;
  std::vector<int32_t> parent_;
  std::vector<std::vector<uint32_t>> children_;
  std::vector<uint32_t> roots_;
};

}  // namespace fta

#endif  // FTA_TREEDEC_TREE_DECOMPOSITION_H_
