#ifndef FTA_TREEDEC_MWIS_H_
#define FTA_TREEDEC_MWIS_H_

#include <cstdint>
#include <vector>

#include "treedec/graph.h"
#include "treedec/tree_decomposition.h"
#include "util/status.h"

namespace fta {

/// A (max-weight) independent set.
struct MwisResult {
  /// Selected vertices, sorted ascending.
  std::vector<uint32_t> selected;
  /// Total weight of the selection.
  double weight = 0.0;
};

/// Exact max-weight independent set via dynamic programming over a tree
/// decomposition. Runs in O(2^(width+1)) per bag; refuses decompositions
/// wider than `max_width` (callers fall back to the greedy).
/// `weights` must have one non-negative entry per vertex.
StatusOr<MwisResult> MwisOverTreeDecomposition(
    const Graph& graph, const std::vector<double>& weights,
    const TreeDecomposition& td, int max_width = 20);

/// Exact max-weight independent set by exhaustive search; requires
/// num_vertices <= 30. Ground truth for tests.
MwisResult MwisBruteForce(const Graph& graph,
                          const std::vector<double>& weights);

/// Weighted greedy independent set: repeatedly takes the heaviest
/// remaining vertex and discards its neighbors. The fallback used by MPTA
/// when the conflict graph's treewidth is too large.
MwisResult MwisGreedy(const Graph& graph, const std::vector<double>& weights);

}  // namespace fta

#endif  // FTA_TREEDEC_MWIS_H_
