#ifndef FTA_TREEDEC_GRAPH_H_
#define FTA_TREEDEC_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fta {

/// Simple undirected graph with adjacency lists, used as the conflict graph
/// of (worker, VDPS) candidates in MPTA and by the tree-decomposition
/// machinery. Vertices are 0..n-1; self-loops and duplicate edges are
/// ignored.
class Graph {
 public:
  /// Creates a graph with n isolated vertices.
  explicit Graph(size_t n) : adj_(n) {}

  size_t num_vertices() const { return adj_.size(); }
  size_t num_edges() const { return num_edges_; }

  /// Adds the undirected edge {u, v}; no-op for self-loops and duplicates.
  void AddEdge(uint32_t u, uint32_t v);

  /// True if {u, v} is an edge.
  bool HasEdge(uint32_t u, uint32_t v) const;

  /// Neighbors of u, sorted ascending.
  const std::vector<uint32_t>& Neighbors(uint32_t u) const { return adj_[u]; }

  size_t Degree(uint32_t u) const { return adj_[u].size(); }

 private:
  std::vector<std::vector<uint32_t>> adj_;  // each sorted ascending
  size_t num_edges_ = 0;
};

}  // namespace fta

#endif  // FTA_TREEDEC_GRAPH_H_
