#include "treedec/graph.h"

#include <algorithm>

#include "util/logging.h"

namespace fta {

void Graph::AddEdge(uint32_t u, uint32_t v) {
  FTA_CHECK(u < adj_.size() && v < adj_.size());
  if (u == v) return;
  auto it = std::lower_bound(adj_[u].begin(), adj_[u].end(), v);
  if (it != adj_[u].end() && *it == v) return;  // duplicate
  adj_[u].insert(it, v);
  adj_[v].insert(std::lower_bound(adj_[v].begin(), adj_[v].end(), u), u);
  ++num_edges_;
}

bool Graph::HasEdge(uint32_t u, uint32_t v) const {
  if (u >= adj_.size() || v >= adj_.size()) return false;
  const auto& a = adj_[u].size() <= adj_[v].size() ? adj_[u] : adj_[v];
  const uint32_t needle = adj_[u].size() <= adj_[v].size() ? v : u;
  return std::binary_search(a.begin(), a.end(), needle);
}

}  // namespace fta
