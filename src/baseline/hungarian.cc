#include "baseline/hungarian.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace fta {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

MatchingResult MaxWeightBipartiteMatching(
    const std::vector<std::vector<double>>& weights) {
  MatchingResult result;
  const size_t rows = weights.size();
  if (rows == 0) return result;
  const size_t cols = weights[0].size();
  for (const auto& row : weights) {
    FTA_CHECK_MSG(row.size() == cols, "ragged weight matrix");
  }

  // Min-cost rectangular assignment with R dummy columns so every row can
  // stay "unmatched" at cost 0; real pairs cost -w (so min-cost == max
  // weight); forbidden pairs cost a finite big-M that no optimal solution
  // touches while keeping the potentials numerically tame.
  double max_w = 0.0;
  for (const auto& row : weights) {
    for (double w : row) max_w = std::max(max_w, w);
  }
  const double kForbidden = (max_w + 1.0) * 1e6;
  const size_t m = cols + rows;  // total columns incl. dummies

  const auto cost = [&](size_t r, size_t c) -> double {
    if (c >= cols) return c - cols == r ? 0.0 : kForbidden;  // own dummy
    const double w = weights[r][c];
    return w < 0.0 ? kForbidden : -w;
  };

  // Hungarian algorithm, shortest-augmenting-path formulation with
  // potentials (1-indexed internals).
  std::vector<double> u(rows + 1, 0.0), v(m + 1, 0.0);
  std::vector<size_t> p(m + 1, 0), way(m + 1, 0);
  for (size_t i = 1; i <= rows; ++i) {
    p[0] = i;
    size_t j0 = 0;
    std::vector<double> minv(m + 1, kInf);
    std::vector<bool> used(m + 1, false);
    do {
      used[j0] = true;
      const size_t i0 = p[j0];
      double delta = kInf;
      size_t j1 = 0;
      for (size_t j = 1; j <= m; ++j) {
        if (used[j]) continue;
        const double cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (size_t j = 0; j <= m; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  result.match.assign(rows, -1);
  for (size_t j = 1; j <= cols; ++j) {
    if (p[j] == 0) continue;
    const size_t r = p[j] - 1;
    const double w = weights[r][j - 1];
    if (w >= 0.0) {
      result.match[r] = static_cast<int32_t>(j - 1);
      result.weight += w;
    }
  }
  return result;
}

Assignment SolveSingletonOptimal(const Instance& instance,
                                 const VdpsCatalog& catalog) {
  const size_t rows = instance.num_workers();
  const size_t cols = instance.num_delivery_points();
  std::vector<std::vector<double>> weights(rows,
                                           std::vector<double>(cols, -1.0));
  for (size_t w = 0; w < rows; ++w) {
    for (const WorkerStrategy& st : catalog.strategies(w)) {
      const auto& dps = catalog.entry(st.entry_id).dps;
      if (dps.size() != 1) continue;
      weights[w][dps[0]] = std::max(weights[w][dps[0]], st.payoff);
    }
  }
  const MatchingResult matching = MaxWeightBipartiteMatching(weights);
  Assignment assignment(rows);
  for (size_t w = 0; w < rows; ++w) {
    if (matching.match[w] >= 0) {
      assignment.SetRoute(w, {static_cast<uint32_t>(matching.match[w])});
    }
  }
  return assignment;
}

}  // namespace fta
