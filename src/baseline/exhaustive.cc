#include "baseline/exhaustive.h"

#include <vector>

#include "game/joint_state.h"
#include "util/math_util.h"

namespace fta {
namespace {

struct SearchState {
  const Instance* instance;
  const VdpsCatalog* catalog;
  JointState joint;
  ExhaustiveResult result;
  size_t max_states;
  bool capped = false;

  SearchState(const Instance& inst, const VdpsCatalog& cat, size_t cap)
      : instance(&inst), catalog(&cat), joint(inst, cat), max_states(cap) {}

  void Leaf() {
    ++result.states_explored;
    if (result.states_explored >= max_states) capped = true;
    const std::vector<double>& payoffs = joint.payoffs();
    const double pdif = MeanAbsolutePairwiseDifference(payoffs);
    const double avg = Mean(payoffs);
    double total = 0.0;
    for (double p : payoffs) total += p;
    const bool first = result.states_explored == 1;
    if (first || pdif < result.fairest_pdif - kEps ||
        (ApproxEq(pdif, result.fairest_pdif) &&
         avg > result.fairest_avg + kEps)) {
      result.fairest = joint.ToAssignment();
      result.fairest_pdif = pdif;
      result.fairest_avg = avg;
    }
    if (first || total > result.max_total_payoff + kEps) {
      result.max_total = joint.ToAssignment();
      result.max_total_payoff = total;
    }
  }

  void Recurse(size_t w) {
    if (capped) return;
    if (w == instance->num_workers()) {
      Leaf();
      return;
    }
    // Null strategy branch.
    Recurse(w + 1);
    const auto& strategies = catalog->strategies(w);
    for (size_t i = 0; i < strategies.size() && !capped; ++i) {
      const int32_t idx = static_cast<int32_t>(i);
      if (!joint.IsAvailable(w, idx)) continue;
      joint.Apply(w, idx);
      Recurse(w + 1);
      joint.Apply(w, kNullStrategy);
    }
  }
};

}  // namespace

ExhaustiveResult SolveExhaustive(const Instance& instance,
                                 const VdpsCatalog& catalog,
                                 size_t max_states) {
  SearchState search(instance, catalog, max_states);
  search.result.fairest = Assignment(instance.num_workers());
  search.result.max_total = Assignment(instance.num_workers());
  search.Recurse(0);
  search.result.complete = !search.capped;
  return search.result;
}

}  // namespace fta
