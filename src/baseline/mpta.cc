#include "baseline/mpta.h"

#include <algorithm>
#include <vector>

#include "game/joint_state.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "treedec/mwis.h"
#include "util/logging.h"

namespace fta {
namespace {

/// One MWIS candidate: a worker together with one of its strategies.
struct Candidate {
  uint32_t worker;
  uint32_t strategy;  // index into catalog.strategies(worker)
  double payoff;
};

}  // namespace

MptaResult SolveMpta(const Instance& instance, const VdpsCatalog& catalog,
                     const MptaConfig& config) {
  FTA_SPAN("baseline/mpta/solve");
  // Candidate nodes: top-K strategies per worker (lists are payoff-sorted).
  std::vector<Candidate> candidates;
  for (uint32_t w = 0; w < instance.num_workers(); ++w) {
    const auto& strategies = catalog.strategies(w);
    const size_t k = config.candidates_per_worker == 0
                         ? strategies.size()
                         : std::min(config.candidates_per_worker,
                                    strategies.size());
    for (uint32_t i = 0; i < k; ++i) {
      candidates.push_back({w, i, strategies[i].payoff});
    }
  }
  MptaResult result;
  result.num_candidates = candidates.size();
  result.assignment = Assignment(instance.num_workers());
  // Registry mirror of the result counters, published at every exit.
  const auto publish = [&result] {
    auto& reg = obs::MetricsRegistry::Global();
    reg.GetCounter("baseline/mpta/runs").Increment();
    reg.GetCounter("baseline/mpta/candidates").Add(result.num_candidates);
    reg.GetCounter("baseline/mpta/width_sum")
        .Add(result.width < 0 ? 0 : static_cast<uint64_t>(result.width));
    if (result.exact) reg.GetCounter("baseline/mpta/exact").Increment();
  };
  if (candidates.empty()) {
    result.exact = true;
    publish();
    return result;
  }

  // Conflict graph: same-worker edges + overlapping-delivery-point edges.
  Graph graph(candidates.size());
  {
    FTA_SPAN("baseline/mpta/conflict_graph");
    // Same worker: consecutive runs in `candidates`.
    size_t run_start = 0;
    for (size_t i = 1; i <= candidates.size(); ++i) {
      if (i == candidates.size() ||
          candidates[i].worker != candidates[run_start].worker) {
        for (size_t a = run_start; a < i; ++a) {
          for (size_t b = a + 1; b < i; ++b) {
            graph.AddEdge(static_cast<uint32_t>(a), static_cast<uint32_t>(b));
          }
        }
        run_start = i;
      }
    }
    // Shared delivery points: bucket candidates by delivery point.
    std::vector<std::vector<uint32_t>> by_dp(instance.num_delivery_points());
    for (uint32_t c = 0; c < candidates.size(); ++c) {
      const WorkerStrategy& st =
          catalog.strategies(candidates[c].worker)[candidates[c].strategy];
      for (uint32_t dp : catalog.entry(st.entry_id).dps) {
        by_dp[dp].push_back(c);
      }
    }
    for (const auto& bucket : by_dp) {
      for (size_t a = 0; a < bucket.size(); ++a) {
        for (size_t b = a + 1; b < bucket.size(); ++b) {
          graph.AddEdge(bucket[a], bucket[b]);
        }
      }
    }
  }

  std::vector<double> weights;
  weights.reserve(candidates.size());
  for (const Candidate& c : candidates) weights.push_back(c.payoff);

  FTA_SPAN("baseline/mpta/mwis");
  const TreeDecomposition td = TreeDecomposition::Build(graph,
                                                        config.heuristic);
  result.width = td.width();
  StatusOr<MwisResult> mwis =
      MwisOverTreeDecomposition(graph, weights, td, config.max_width);
  MwisResult selection;
  if (mwis.ok()) {
    selection = std::move(mwis).value();
    result.exact = true;
  } else {
    FTA_LOG(kDebug) << "MPTA falling back to greedy MWIS: "
                    << mwis.status().ToString();
    selection = MwisGreedy(graph, weights);
    result.exact = false;
  }

  JointState state(instance, catalog);
  for (uint32_t node : selection.selected) {
    const Candidate& c = candidates[node];
    state.Apply(c.worker, static_cast<int32_t>(c.strategy));
  }
  // Completion pass: the candidate cap (top-K) can leave workers whose
  // retained candidates all conflict without an assignment even though the
  // full catalog still has compatible VDPSs. Adding any feasible strategy
  // strictly increases the total payoff, so greedily finish with the best
  // available full-catalog strategy per unassigned worker.
  for (uint32_t w = 0; w < instance.num_workers(); ++w) {
    if (state.strategy_of(w) != kNullStrategy) continue;
    const auto& strategies = catalog.strategies(w);
    for (size_t i = 0; i < strategies.size(); ++i) {  // payoff-sorted
      const int32_t idx = static_cast<int32_t>(i);
      if (state.IsAvailable(w, idx)) {
        state.Apply(w, idx);
        break;
      }
    }
  }
  result.assignment = state.ToAssignment();
  publish();
  return result;
}

}  // namespace fta
