#ifndef FTA_BASELINE_SINGLE_TASK_H_
#define FTA_BASELINE_SINGLE_TASK_H_

#include "model/assignment.h"
#include "model/instance.h"

namespace fta {

/// Worker-selection policy for single-task mode.
enum class SingleTaskPolicy {
  /// Give the bundle to the worker whose route grows the least (classic
  /// cheapest-insertion dispatching).
  kMinAddedTime,
  /// Give the bundle to the worker whose payoff increases the most.
  kMaxMarginalPayoff,
};

/// Single-task assignment mode (Definition 3's remark: "the server assigns
/// each task to a worker at a time"): instead of the paper's batch VDPS
/// games, delivery point bundles are dispatched one at a time in ascending
/// deadline order, each appended to the end of some worker's current route
/// if every deadline still holds and the worker's maxDP allows it.
/// Bundles nobody can serve are skipped.
///
/// This is the myopic online-style regime the batch algorithms are
/// implicitly compared against; it needs no VDPS catalog at all.
Assignment SolveSingleTaskMode(
    const Instance& instance,
    SingleTaskPolicy policy = SingleTaskPolicy::kMinAddedTime);

}  // namespace fta

#endif  // FTA_BASELINE_SINGLE_TASK_H_
