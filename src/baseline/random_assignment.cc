#include "baseline/random_assignment.h"

#include <vector>

#include "game/joint_state.h"

namespace fta {

Assignment SolveRandom(const Instance& instance, const VdpsCatalog& catalog,
                       Rng& rng) {
  JointState state(instance, catalog);
  std::vector<int32_t> available;
  for (size_t w = 0; w < instance.num_workers(); ++w) {
    available.clear();
    const auto& strategies = catalog.strategies(w);
    for (size_t i = 0; i < strategies.size(); ++i) {
      const int32_t idx = static_cast<int32_t>(i);
      if (state.IsAvailable(w, idx)) available.push_back(idx);
    }
    if (!available.empty()) {
      state.Apply(w, available[rng.Index(available.size())]);
    }
  }
  return state.ToAssignment();
}

}  // namespace fta
