#ifndef FTA_BASELINE_EXHAUSTIVE_H_
#define FTA_BASELINE_EXHAUSTIVE_H_

#include <cstddef>

#include "model/assignment.h"
#include "model/instance.h"
#include "vdps/catalog.h"

namespace fta {

/// Outcome of an exhaustive search over all joint strategies.
struct ExhaustiveResult {
  /// The FTA optimum: lexicographically (min P_dif, then max average
  /// payoff) over every conflict-free joint strategy.
  Assignment fairest;
  double fairest_pdif = 0.0;
  double fairest_avg = 0.0;
  /// The maximal-total-payoff assignment (MPTA's objective, exactly).
  Assignment max_total;
  double max_total_payoff = 0.0;
  /// False if the state cap stopped the search early (results then cover
  /// only the explored prefix).
  bool complete = false;
  /// Joint strategies examined.
  size_t states_explored = 0;
};

/// Brute-force ground truth for tiny instances: enumerates every
/// conflict-free joint strategy (each worker takes one of its VDPSs or
/// null) up to `max_states` leaves. Exponential — tests only.
ExhaustiveResult SolveExhaustive(const Instance& instance,
                                 const VdpsCatalog& catalog,
                                 size_t max_states = 5'000'000);

}  // namespace fta

#endif  // FTA_BASELINE_EXHAUSTIVE_H_
