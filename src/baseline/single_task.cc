#include "baseline/single_task.h"

#include <algorithm>
#include <numeric>

#include "model/route.h"
#include "util/math_util.h"

namespace fta {

Assignment SolveSingleTaskMode(const Instance& instance,
                               SingleTaskPolicy policy) {
  Assignment assignment(instance.num_workers());

  // Non-empty delivery points in ascending earliest-expiry (urgency) order.
  std::vector<uint32_t> bundles;
  for (uint32_t d = 0; d < instance.num_delivery_points(); ++d) {
    if (instance.delivery_point(d).task_count() > 0) bundles.push_back(d);
  }
  std::sort(bundles.begin(), bundles.end(), [&](uint32_t a, uint32_t b) {
    const double ea = instance.delivery_point(a).earliest_expiry();
    const double eb = instance.delivery_point(b).earliest_expiry();
    if (ea != eb) return ea < eb;
    return a < b;
  });

  // Cache each worker's current route evaluation.
  std::vector<RouteEvaluation> current(instance.num_workers());
  for (size_t w = 0; w < instance.num_workers(); ++w) {
    current[w] = EvaluateRoute(instance, w, {});
  }

  for (uint32_t bundle : bundles) {
    double best_score = -kInfinity;
    int64_t best_worker = -1;
    RouteEvaluation best_eval;
    for (size_t w = 0; w < instance.num_workers(); ++w) {
      const Route& route = assignment.route(w);
      if (route.size() >= instance.worker(w).max_delivery_points) continue;
      Route extended = route;
      extended.push_back(bundle);
      const RouteEvaluation eval = EvaluateRoute(instance, w, extended);
      if (!eval.feasible) continue;
      double score = 0.0;
      switch (policy) {
        case SingleTaskPolicy::kMinAddedTime:
          score = -(eval.total_time - current[w].total_time);
          break;
        case SingleTaskPolicy::kMaxMarginalPayoff:
          score = eval.payoff - current[w].payoff;
          break;
      }
      if (score > best_score) {
        best_score = score;
        best_worker = static_cast<int64_t>(w);
        best_eval = eval;
      }
    }
    if (best_worker >= 0) {
      const size_t w = static_cast<size_t>(best_worker);
      Route route = assignment.route(w);
      route.push_back(bundle);
      assignment.SetRoute(w, std::move(route));
      current[w] = best_eval;
    }
    // else: no worker can serve this bundle in time — skipped.
  }
  return assignment;
}

}  // namespace fta
