#ifndef FTA_BASELINE_GTA_H_
#define FTA_BASELINE_GTA_H_

#include "model/assignment.h"
#include "model/instance.h"
#include "vdps/catalog.h"

namespace fta {

/// Greedy Task Assignment (baseline ii of Section VII-A): repeatedly give
/// the globally highest-payoff still-available VDPS to its (still
/// unassigned) worker, until every worker holds a VDPS or no feasible
/// VDPS remains. Fairness-oblivious.
Assignment SolveGta(const Instance& instance, const VdpsCatalog& catalog);

}  // namespace fta

#endif  // FTA_BASELINE_GTA_H_
