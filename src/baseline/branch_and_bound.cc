#include "baseline/branch_and_bound.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "game/joint_state.h"
#include "util/math_util.h"

namespace fta {
namespace {

struct Search {
  const Instance* instance;
  const VdpsCatalog* catalog;
  JointState state;
  /// Worker ids in branching order (descending best payoff).
  std::vector<size_t> order;
  /// suffix_best[i] = sum over order[i..] of each worker's best payoff;
  /// the conflict-ignoring upper bound for the unassigned suffix.
  std::vector<double> suffix_best;

  double best_total = 0.0;
  std::vector<int32_t> best_choice;
  size_t nodes = 0;
  size_t node_limit = 0;
  bool capped = false;

  Search(const Instance& inst, const VdpsCatalog& cat)
      : instance(&inst), catalog(&cat), state(inst, cat) {}

  void Recurse(size_t depth, double total) {
    if (node_limit > 0 && nodes >= node_limit) {
      capped = true;
      return;
    }
    ++nodes;
    if (depth == order.size()) {
      if (total > best_total + kEps) {
        best_total = total;
        best_choice = state.joint_strategy();
      }
      return;
    }
    // Bound: even granting every remaining worker its personal best.
    if (total + suffix_best[depth] <= best_total + kEps) return;
    const size_t w = order[depth];
    // Try strategies best-first so the incumbent tightens early.
    const auto& strategies = catalog->strategies(w);
    for (size_t i = 0; i < strategies.size(); ++i) {
      const int32_t idx = static_cast<int32_t>(i);
      if (!state.IsAvailable(w, idx)) continue;
      state.Apply(w, idx);
      Recurse(depth + 1, total + strategies[i].payoff);
      state.Apply(w, kNullStrategy);
      if (capped) return;
    }
    Recurse(depth + 1, total);  // null branch last
  }
};

}  // namespace

BnbResult SolveMaxTotalBnB(const Instance& instance,
                           const VdpsCatalog& catalog, size_t node_limit) {
  Search search(instance, catalog);
  search.node_limit = node_limit;
  search.order.resize(instance.num_workers());
  std::iota(search.order.begin(), search.order.end(), 0u);
  const auto best_of = [&](size_t w) {
    const auto& s = catalog.strategies(w);
    return s.empty() ? 0.0 : s[0].payoff;  // payoff-sorted
  };
  std::sort(search.order.begin(), search.order.end(),
            [&](size_t a, size_t b) { return best_of(a) > best_of(b); });
  search.suffix_best.assign(search.order.size() + 1, 0.0);
  for (size_t i = search.order.size(); i-- > 0;) {
    search.suffix_best[i] = search.suffix_best[i + 1] +
                            best_of(search.order[i]);
  }
  search.best_choice.assign(instance.num_workers(), kNullStrategy);
  search.Recurse(0, 0.0);

  BnbResult result;
  result.total_payoff = search.best_total;
  result.complete = !search.capped;
  result.nodes_explored = search.nodes;
  result.assignment = Assignment(instance.num_workers());
  for (size_t w = 0; w < instance.num_workers(); ++w) {
    const int32_t idx = search.best_choice[w];
    if (idx != kNullStrategy) {
      result.assignment.SetRoute(
          w, catalog.strategies(w)[static_cast<size_t>(idx)].route);
    }
  }
  return result;
}

}  // namespace fta
