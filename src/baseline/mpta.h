#ifndef FTA_BASELINE_MPTA_H_
#define FTA_BASELINE_MPTA_H_

#include <cstddef>

#include "model/assignment.h"
#include "model/instance.h"
#include "treedec/tree_decomposition.h"
#include "vdps/catalog.h"

namespace fta {

/// Configuration of the MPTA baseline.
struct MptaConfig {
  /// Top-K (by payoff) strategies kept per worker as MWIS candidates;
  /// bounds the conflict graph's size and treewidth. 0 = keep all.
  size_t candidates_per_worker = 8;
  /// Maximum tree decomposition width the exact DP accepts; beyond it MPTA
  /// falls back to the weighted greedy.
  int max_width = 16;
  EliminationHeuristic heuristic = EliminationHeuristic::kMinDegree;
};

/// Diagnostics alongside the MPTA assignment.
struct MptaResult {
  Assignment assignment;
  /// True if the exact tree-decomposition DP produced the result; false if
  /// the width cap forced the greedy fallback.
  bool exact = false;
  /// Width of the decomposition that was built.
  int width = -1;
  /// Number of (worker, VDPS) candidate nodes in the conflict graph.
  size_t num_candidates = 0;
};

/// Maximal Payoff based Task Assignment (baseline i of Section VII-A):
/// maximizes the *total* worker payoff with a tree-decomposition-based
/// algorithm, fairness-oblivious. Candidates are (worker, VDPS) pairs;
/// conflicts are shared workers or overlapping delivery points; the
/// max-weight independent set of the conflict graph is the assignment.
MptaResult SolveMpta(const Instance& instance, const VdpsCatalog& catalog,
                     const MptaConfig& config = MptaConfig());

}  // namespace fta

#endif  // FTA_BASELINE_MPTA_H_
