#ifndef FTA_BASELINE_HUNGARIAN_H_
#define FTA_BASELINE_HUNGARIAN_H_

#include <cstdint>
#include <vector>

#include "model/assignment.h"
#include "model/instance.h"
#include "vdps/catalog.h"

namespace fta {

/// Result of a rectangular assignment problem.
struct MatchingResult {
  /// match[row] = chosen column, or -1 if the row is unmatched.
  std::vector<int32_t> match;
  /// Total weight of the matching.
  double weight = 0.0;
};

/// Maximum-weight bipartite matching (Kuhn-Munkres / Hungarian algorithm,
/// O(n^2 m) shortest-augmenting-path formulation) on a dense weight
/// matrix: weights[r][c] >= 0 is the gain of matching row r to column c;
/// entries < 0 mark forbidden pairs. Rows may stay unmatched when every
/// compatible column is taken or forbidden (matching more never helps
/// since weights are non-negative, but unmatched rows are allowed).
MatchingResult MaxWeightBipartiteMatching(
    const std::vector<std::vector<double>>& weights);

/// Exact maximal-total-payoff assignment for the singleton special case of
/// FTA: when every worker takes at most ONE delivery point (maxDP = 1, or
/// by simply restricting attention to singleton VDPSs), the conflict
/// structure is a bipartite worker/delivery-point matching, which the
/// Hungarian algorithm solves optimally in polynomial time — unlike the
/// general NP-hard FTA. A useful exact reference for MPTA and the games on
/// maxDP = 1 instances.
Assignment SolveSingletonOptimal(const Instance& instance,
                                 const VdpsCatalog& catalog);

}  // namespace fta

#endif  // FTA_BASELINE_HUNGARIAN_H_
