#include "baseline/gta.h"

#include <queue>
#include <vector>

#include "game/joint_state.h"

namespace fta {

Assignment SolveGta(const Instance& instance, const VdpsCatalog& catalog) {
  JointState state(instance, catalog);

  // (payoff, worker, index into the worker's payoff-sorted strategy list).
  struct Head {
    double payoff;
    size_t worker;
    size_t next;
    bool operator<(const Head& o) const { return payoff < o.payoff; }
  };
  std::priority_queue<Head> heap;
  for (size_t w = 0; w < instance.num_workers(); ++w) {
    const auto& strategies = catalog.strategies(w);
    if (!strategies.empty()) heap.push({strategies[0].payoff, w, 0});
  }
  std::vector<bool> assigned(instance.num_workers(), false);
  while (!heap.empty()) {
    Head head = heap.top();
    heap.pop();
    if (assigned[head.worker]) continue;
    const auto& strategies = catalog.strategies(head.worker);
    const int32_t idx = static_cast<int32_t>(head.next);
    if (state.IsAvailable(head.worker, idx)) {
      state.Apply(head.worker, idx);
      assigned[head.worker] = true;
      continue;
    }
    // Stale head: advance to the worker's next-best strategy (the list is
    // sorted by payoff descending, so the heap stays consistent).
    if (head.next + 1 < strategies.size()) {
      heap.push({strategies[head.next + 1].payoff, head.worker,
                 head.next + 1});
    }
  }
  return state.ToAssignment();
}

}  // namespace fta
