#ifndef FTA_BASELINE_BRANCH_AND_BOUND_H_
#define FTA_BASELINE_BRANCH_AND_BOUND_H_

#include <cstddef>

#include "model/assignment.h"
#include "model/instance.h"
#include "vdps/catalog.h"

namespace fta {

/// Outcome of the exact max-total-payoff search.
struct BnbResult {
  Assignment assignment;
  double total_payoff = 0.0;
  /// True if the search ran to completion (the result is then optimal over
  /// the catalog's strategy space).
  bool complete = false;
  size_t nodes_explored = 0;
};

/// Exact maximal-total-payoff task assignment by depth-first branch and
/// bound over the per-worker strategy space: workers are branched in
/// descending best-payoff order, and a node is pruned when its payoff so
/// far plus the sum of the remaining workers' individual best payoffs (a
/// valid upper bound — it ignores conflicts) cannot beat the incumbent.
///
/// Reaches far larger instances than SolveExhaustive (which enumerates
/// every joint strategy) while computing the same max-total optimum; used
/// as ground truth for MPTA. `node_limit` caps the search (0 = unlimited);
/// when hit, the incumbent is returned with complete = false.
BnbResult SolveMaxTotalBnB(const Instance& instance,
                           const VdpsCatalog& catalog,
                           size_t node_limit = 0);

}  // namespace fta

#endif  // FTA_BASELINE_BRANCH_AND_BOUND_H_
