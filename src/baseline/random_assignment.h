#ifndef FTA_BASELINE_RANDOM_ASSIGNMENT_H_
#define FTA_BASELINE_RANDOM_ASSIGNMENT_H_

#include "model/assignment.h"
#include "model/instance.h"
#include "util/rng.h"
#include "vdps/catalog.h"

namespace fta {

/// Assigns every worker (in order) a uniformly random still-available VDPS
/// from its strategy set, or null when none remains. A sanity baseline for
/// tests and ablations — any serious algorithm must beat it.
Assignment SolveRandom(const Instance& instance, const VdpsCatalog& catalog,
                       Rng& rng);

}  // namespace fta

#endif  // FTA_BASELINE_RANDOM_ASSIGNMENT_H_
