#ifndef FTA_EXP_SWEEP_H_
#define FTA_EXP_SWEEP_H_

#include <functional>
#include <string>
#include <vector>

#include "exp/report.h"
#include "exp/runner.h"

namespace fta {

/// One curve of a paper figure: an algorithm under fixed options.
struct SweepSeries {
  std::string name;
  Algorithm algorithm;
  SolverOptions options;
};

/// The metric tables of one figure (one row per series, one column per
/// x-axis point), mirroring the paper's (a) payoff difference, (b) average
/// payoff, (c/d) CPU time sub-figures, plus the C-VDPS generation wall
/// time — the paper's complexity analysis and our Fig-8/9 runs both show
/// generation dominating as |DP| and maxDP grow, so every sweep reports
/// where that time went.
struct SweepResult {
  ResultTable payoff_difference;
  ResultTable average_payoff;
  ResultTable cpu_time;
  ResultTable generation_time;

  /// Renders all tables.
  std::string ToText() const;
};

/// Runs every series at every x-axis point. `instance_at(i)` materializes
/// the instance for point i (called once per point; shared by all series).
/// `threads` parallelizes across a multi-center instance's centers.
SweepResult RunParameterSweep(
    const std::string& figure, const std::string& param_name,
    const std::vector<std::string>& point_labels,
    const std::function<MultiCenterInstance(size_t)>& instance_at,
    const std::vector<SweepSeries>& series, size_t threads = 1);

}  // namespace fta

#endif  // FTA_EXP_SWEEP_H_
