#ifndef FTA_EXP_RUN_REPORT_H_
#define FTA_EXP_RUN_REPORT_H_

#include <string>
#include <utility>
#include <vector>

#include "exp/runner.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "util/status.h"

namespace fta {

/// One run's unified observability record: the paper-facing RunMetrics
/// (effectiveness + efficiency), the VDPS generation counters, the
/// best-response engine counters, the per-iteration solver trace, a global
/// metrics-registry snapshot, and the span tree — all in one JSON document
/// (schema "fta-run-report-v1").
///
/// The report is assembled at the run boundary from values the run already
/// produced; building it never influences the run itself.
struct RunReport {
  /// Producer, e.g. "fta_tool".
  std::string tool;
  /// AlgorithmName() of the solver that ran.
  std::string algorithm;
  /// Free-form input description (dataset path or generator spec).
  std::string dataset;
  RunMetrics metrics;
  /// Global registry snapshot at report time.
  obs::MetricsSnapshot registry;
  /// Recorded spans at report time (empty when tracing was off).
  std::vector<obs::SpanEvent> spans;
  /// Rolling-window readings at report time (empty outside streaming
  /// runs) — e.g. StreamTelemetry::WindowReadings().
  std::vector<std::pair<std::string, obs::WindowStats>> windows;

  std::string ToJson() const;
  Status WriteJson(const std::string& path) const;
};

/// Assembles a report from a finished run: captures the global metrics
/// registry and the trace recorder alongside the run's own metrics.
RunReport BuildRunReport(std::string tool, std::string algorithm,
                         std::string dataset, RunMetrics metrics);

}  // namespace fta

#endif  // FTA_EXP_RUN_REPORT_H_
