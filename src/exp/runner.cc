#include "exp/runner.h"

#include "baseline/gta.h"
#include "baseline/random_assignment.h"
#include "model/assignment.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/math_util.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace fta {

const char* AlgorithmName(Algorithm a) {
  switch (a) {
    case Algorithm::kMpta:
      return "MPTA";
    case Algorithm::kGta:
      return "GTA";
    case Algorithm::kFgt:
      return "FGT";
    case Algorithm::kIegt:
      return "IEGT";
    case Algorithm::kRandom:
      return "RAND";
  }
  return "?";
}

std::vector<Algorithm> PaperAlgorithms() {
  return {Algorithm::kMpta, Algorithm::kGta, Algorithm::kFgt,
          Algorithm::kIegt};
}

namespace {

/// Solves with a prebuilt catalog; returns the assignment + solver stats.
struct SolveOutcome {
  Assignment assignment;
  int rounds = 0;
  bool converged = true;
  BestResponseCounters engine;
  std::vector<IterationStats> trace;
};

SolveOutcome Solve(Algorithm algorithm, const Instance& instance,
                   const VdpsCatalog& catalog, const SolverOptions& options) {
  // Dynamic span name: one small allocation per solve — fine at run scope.
  const obs::ScopedSpan span(std::string("run/solve/") +
                             AlgorithmName(algorithm));
  SolveOutcome out;
  switch (algorithm) {
    case Algorithm::kMpta: {
      MptaResult r = SolveMpta(instance, catalog, options.mpta);
      out.assignment = std::move(r.assignment);
      break;
    }
    case Algorithm::kGta:
      out.assignment = SolveGta(instance, catalog);
      break;
    case Algorithm::kFgt: {
      FgtConfig cfg = options.fgt;
      cfg.seed ^= options.seed;
      GameResult r = SolveFgt(instance, catalog, cfg);
      out.assignment = std::move(r.assignment);
      out.rounds = r.rounds;
      out.converged = r.converged;
      out.engine = r.engine;
      out.trace = std::move(r.trace);
      break;
    }
    case Algorithm::kIegt: {
      IegtConfig cfg = options.iegt;
      cfg.seed ^= options.seed;
      GameResult r = SolveIegt(instance, catalog, cfg);
      out.assignment = std::move(r.assignment);
      out.rounds = r.rounds;
      out.converged = r.converged;
      out.engine = r.engine;
      out.trace = std::move(r.trace);
      break;
    }
    case Algorithm::kRandom: {
      Rng rng(options.seed);
      out.assignment = SolveRandom(instance, catalog, rng);
      break;
    }
  }
  return out;
}

RunMetrics MetricsFromPayoffs(const std::vector<double>& payoffs) {
  RunMetrics m;
  m.num_workers = payoffs.size();
  m.payoff_difference = MeanAbsolutePairwiseDifference(payoffs);
  m.average_payoff = Mean(payoffs);
  for (double p : payoffs) m.total_payoff += p;
  return m;
}

}  // namespace

RunMetrics RunWithCatalog(Algorithm algorithm, const Instance& instance,
                          const VdpsCatalog& catalog,
                          const SolverOptions& options) {
  FTA_SPAN("run/with_catalog");
  CpuTimer timer;
  SolveOutcome out = Solve(algorithm, instance, catalog, options);
  const double cpu = timer.ElapsedSeconds();

  const std::vector<double> payoffs = out.assignment.Payoffs(instance);
  RunMetrics m = MetricsFromPayoffs(payoffs);
  m.cpu_seconds = cpu;
  m.assigned_workers = out.assignment.num_assigned_workers();
  m.covered_tasks = out.assignment.num_covered_tasks(instance);
  m.rounds = out.rounds;
  m.converged = out.converged;
  m.engine = out.engine;
  m.trace = std::move(out.trace);
  return m;
}

RunMetrics RunOnInstance(Algorithm algorithm, const Instance& instance,
                         const SolverOptions& options) {
  FTA_SPAN("run/instance");
  obs::MetricsRegistry::Global().GetCounter("run/instances").Increment();
  CpuTimer timer;
  const VdpsCatalog catalog = VdpsCatalog::Generate(instance, options.vdps);
  SolveOutcome out = Solve(algorithm, instance, catalog, options);
  const double cpu = timer.ElapsedSeconds();

  const std::vector<double> payoffs = out.assignment.Payoffs(instance);
  RunMetrics m = MetricsFromPayoffs(payoffs);
  m.cpu_seconds = cpu;
  m.assigned_workers = out.assignment.num_assigned_workers();
  m.covered_tasks = out.assignment.num_covered_tasks(instance);
  m.rounds = out.rounds;
  m.converged = out.converged;
  m.generation = catalog.generation();
  m.engine = out.engine;
  m.trace = std::move(out.trace);
  return m;
}

RunMetrics RunOnMulti(Algorithm algorithm, const MultiCenterInstance& multi,
                      const SolverOptions& options, size_t threads) {
  FTA_SPAN("run/multi");
  obs::MetricsRegistry::Global()
      .GetCounter("run/centers")
      .Add(multi.centers.size());
  std::vector<std::vector<double>> payoffs_per_center(multi.centers.size());
  std::vector<RunMetrics> per_center(multi.centers.size());

  ThreadPool::ParallelFor(
      multi.centers.size(), threads, [&](size_t c) {
        const obs::ScopedSpan center_span(StrFormat("run/center_%zu", c));
        const Instance& instance = multi.centers[c];
        SolverOptions center_options = options;
        center_options.seed = options.seed * 1000003 + c;
        CpuTimer timer;
        const VdpsCatalog catalog =
            VdpsCatalog::Generate(instance, options.vdps);
        SolveOutcome out = Solve(algorithm, instance, catalog, center_options);
        per_center[c].cpu_seconds = timer.ElapsedSeconds();
        per_center[c].assigned_workers = out.assignment.num_assigned_workers();
        per_center[c].covered_tasks =
            out.assignment.num_covered_tasks(instance);
        per_center[c].rounds = out.rounds;
        per_center[c].converged = out.converged;
        per_center[c].generation = catalog.generation();
        per_center[c].engine = out.engine;
        per_center[c].trace = std::move(out.trace);
        payoffs_per_center[c] = out.assignment.Payoffs(instance);
      });

  std::vector<double> all_payoffs;
  all_payoffs.reserve(multi.num_workers());
  for (const auto& v : payoffs_per_center) {
    all_payoffs.insert(all_payoffs.end(), v.begin(), v.end());
  }
  RunMetrics m = MetricsFromPayoffs(all_payoffs);
  for (const RunMetrics& c : per_center) {
    m.cpu_seconds += c.cpu_seconds;
    m.assigned_workers += c.assigned_workers;
    m.covered_tasks += c.covered_tasks;
    m.rounds = std::max(m.rounds, c.rounds);
    m.converged = m.converged && c.converged;
    m.generation.Merge(c.generation);
    m.engine += c.engine;
  }
  // Iteration traces from different centers do not concatenate meaningfully
  // (rounds are per-center); keep the trace only in the single-center case.
  if (per_center.size() == 1) m.trace = std::move(per_center[0].trace);
  return m;
}

}  // namespace fta
