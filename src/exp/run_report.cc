#include "exp/run_report.h"

#include <fstream>
#include <utility>

#include "obs/json.h"

namespace fta {
namespace {

void AppendEngine(obs::JsonWriter& w, const BestResponseCounters& e) {
  w.BeginObject();
  w.Key("strategies_scanned");
  w.UInt(e.strategies_scanned);
  w.Key("cache_skips");
  w.UInt(e.cache_skips);
  w.Key("parallel_batches");
  w.UInt(e.parallel_batches);
  w.Key("simd");
  w.BeginObject();
  w.Key("batches");
  w.UInt(e.simd_batches);
  w.Key("lanes");
  w.UInt(e.simd_lanes);
  w.Key("avx2_batches");
  w.UInt(e.simd_avx2_batches);
  w.EndObject();
  w.Key("ledger");
  w.BeginObject();
  w.Key("sorts_eliminated");
  w.UInt(e.ledger.sorts_eliminated);
  w.Key("bytes_not_allocated");
  w.UInt(e.ledger.bytes_not_allocated);
  w.Key("memmove_elements");
  w.UInt(e.ledger.memmove_elements);
  w.Key("scratch_reuses");
  w.UInt(e.ledger.scratch_reuses);
  w.EndObject();
  w.EndObject();
}

void AppendGeneration(obs::JsonWriter& w, const GenerationCounters& g) {
  w.BeginObject();
  w.Key("states_expanded");
  w.UInt(g.states_expanded);
  w.Key("options_recorded");
  w.UInt(g.options_recorded);
  w.Key("pareto_inserts");
  w.UInt(g.pareto_inserts);
  w.Key("pareto_evictions");
  w.UInt(g.pareto_evictions);
  w.Key("entries");
  w.UInt(g.entries);
  w.Key("strategies");
  w.UInt(g.strategies);
  w.Key("arena_nodes");
  w.UInt(g.arena_nodes);
  w.Key("arena_bytes");
  w.UInt(g.arena_bytes);
  w.Key("adjacency_pairs");
  w.UInt(g.adjacency_pairs);
  w.Key("shards");
  w.UInt(g.shards);
  w.Key("max_shard_states");
  w.UInt(g.max_shard_states);
  w.Key("adjacency_ms");
  w.Double(g.adjacency_ms);
  w.Key("enumerate_ms");
  w.Double(g.enumerate_ms);
  w.Key("finalize_ms");
  w.Double(g.finalize_ms);
  w.Key("strategies_ms");
  w.Double(g.strategies_ms);
  w.Key("wall_ms");
  w.Double(g.wall_ms);
  w.EndObject();
}

}  // namespace

std::string RunReport::ToJson() const {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("schema");
  w.String("fta-run-report-v1");
  w.Key("tool");
  w.String(tool);
  w.Key("algorithm");
  w.String(algorithm);
  w.Key("dataset");
  w.String(dataset);

  w.Key("metrics");
  w.BeginObject();
  w.Key("payoff_difference");
  w.Double(metrics.payoff_difference);
  w.Key("average_payoff");
  w.Double(metrics.average_payoff);
  w.Key("total_payoff");
  w.Double(metrics.total_payoff);
  w.Key("cpu_seconds");
  w.Double(metrics.cpu_seconds);
  w.Key("num_workers");
  w.UInt(metrics.num_workers);
  w.Key("assigned_workers");
  w.UInt(metrics.assigned_workers);
  w.Key("covered_tasks");
  w.UInt(metrics.covered_tasks);
  w.Key("rounds");
  w.Int(metrics.rounds);
  w.Key("converged");
  w.Bool(metrics.converged);
  w.EndObject();

  w.Key("generation");
  AppendGeneration(w, metrics.generation);

  w.Key("engine");
  AppendEngine(w, metrics.engine);

  w.Key("iterations");
  w.BeginArray();
  for (const IterationStats& it : metrics.trace) {
    w.BeginObject();
    w.Key("iteration");
    w.Int(it.iteration);
    w.Key("payoff_difference");
    w.Double(it.payoff_difference);
    w.Key("average_payoff");
    w.Double(it.average_payoff);
    w.Key("potential");
    w.Double(it.potential);
    w.Key("num_changes");
    w.UInt(it.num_changes);
    w.Key("engine");
    AppendEngine(w, it.engine);
    w.EndObject();
  }
  w.EndArray();

  w.Key("metrics_registry");
  registry.AppendTo(w);

  w.Key("windows");
  w.BeginObject();
  for (const auto& [name, stats] : windows) {
    w.Key(name);
    w.BeginObject();
    w.Key("epochs");
    w.UInt(stats.epochs);
    w.Key("capacity");
    w.UInt(stats.capacity);
    w.Key("count");
    w.UInt(stats.count());
    w.Key("sum");
    w.Double(stats.sum());
    w.Key("rate_per_epoch");
    w.Double(stats.RatePerEpoch());
    w.Key("p50");
    w.Double(stats.Quantile(0.5));
    w.Key("p90");
    w.Double(stats.Quantile(0.9));
    w.Key("p99");
    w.Double(stats.Quantile(0.99));
    w.EndObject();
  }
  w.EndObject();

  w.Key("spans");
  w.BeginArray();
  for (const obs::SpanEvent& s : spans) {
    w.BeginObject();
    w.Key("name");
    w.String(s.name);
    w.Key("start_us");
    w.UInt(s.start_us);
    w.Key("dur_us");
    w.UInt(s.dur_us);
    w.Key("tid");
    w.UInt(s.tid);
    w.Key("depth");
    w.UInt(s.depth);
    w.EndObject();
  }
  w.EndArray();

  w.EndObject();
  return w.str();
}

Status RunReport::WriteJson(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out << ToJson() << '\n';
  out.close();
  if (!out) return Status::IoError("failed writing '" + path + "'");
  return Status::Ok();
}

RunReport BuildRunReport(std::string tool, std::string algorithm,
                         std::string dataset, RunMetrics metrics) {
  RunReport report;
  report.tool = std::move(tool);
  report.algorithm = std::move(algorithm);
  report.dataset = std::move(dataset);
  report.metrics = std::move(metrics);
  report.registry = obs::MetricsRegistry::Global().Snapshot();
  report.spans = obs::TraceRecorder::Global().Snapshot();
  return report;
}

}  // namespace fta
