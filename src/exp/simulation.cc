#include "exp/simulation.h"

#include <algorithm>

#include "baseline/gta.h"
#include "baseline/mpta.h"
#include "baseline/random_assignment.h"
#include "game/fgt.h"
#include "game/iegt.h"
#include "model/assignment.h"
#include "model/route.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/math_util.h"
#include "util/rng.h"
#include "vdps/catalog.h"

namespace fta {
namespace {

/// A pending delivery at absolute time coordinates.
struct PendingTask {
  uint32_t zone;
  double expires_at;  // absolute hours
};

/// Mutable courier state across waves.
struct CourierState {
  Point location;
  double busy_until = 0.0;  // absolute hours
  double earnings = 0.0;
};

Assignment SolveWave(Algorithm algorithm, const Instance& instance,
                     const VdpsCatalog& catalog, const SolverOptions& options,
                     uint64_t wave_seed) {
  switch (algorithm) {
    case Algorithm::kMpta:
      return SolveMpta(instance, catalog, options.mpta).assignment;
    case Algorithm::kGta:
      return SolveGta(instance, catalog);
    case Algorithm::kFgt: {
      FgtConfig config = options.fgt;
      config.seed ^= wave_seed;
      return SolveFgt(instance, catalog, config).assignment;
    }
    case Algorithm::kIegt: {
      IegtConfig config = options.iegt;
      config.seed ^= wave_seed;
      return SolveIegt(instance, catalog, config).assignment;
    }
    case Algorithm::kRandom: {
      Rng rng(wave_seed);
      return SolveRandom(instance, catalog, rng);
    }
  }
  return Assignment(instance.num_workers());
}

}  // namespace

SimulationResult RunDispatchSimulation(const SimulationConfig& config) {
  FTA_CHECK(config.num_waves > 0 && config.num_zones > 0);
  Rng rng(config.seed);
  const TravelModel travel(config.speed);

  // Fixed geography: zones + the hub at the region center.
  std::vector<Point> zones(config.num_zones);
  for (Point& z : zones) {
    z = {rng.Uniform(0, config.area), rng.Uniform(0, config.area)};
  }
  const Point hub{config.area / 2, config.area / 2};

  std::vector<CourierState> couriers(config.num_workers);
  for (CourierState& c : couriers) {
    c.location = {rng.Uniform(0, config.area), rng.Uniform(0, config.area)};
  }

  std::vector<PendingTask> backlog;
  SimulationResult result;

  for (int wave = 0; wave < config.num_waves; ++wave) {
    const double now = wave * config.wave_interval;

    // New arrivals: constant per wave, or rush-hour Poisson workload.
    const size_t arrivals =
        config.use_workload
            ? DrawArrivals(config.workload, now, config.wave_interval, rng)
            : config.tasks_per_wave;
    for (size_t t = 0; t < arrivals; ++t) {
      backlog.push_back(
          PendingTask{static_cast<uint32_t>(rng.Index(zones.size())),
                      now + config.task_lifetime});
    }
    result.tasks_arrived += arrivals;

    // Expire stale tasks.
    WaveStats stats;
    stats.wave = wave;
    const size_t before = backlog.size();
    // Half-open live interval [arrival, expires_at): a task is gone at the
    // wave starting exactly on its deadline — no epsilon slop, which used
    // to expire tasks a hair early and (with task_lifetime an exact
    // multiple of wave_interval) made the boundary wave's backlog depend on
    // floating-point noise. Pinned by SimulationTest.BoundaryExpiry.
    backlog.erase(std::remove_if(backlog.begin(), backlog.end(),
                                 [&](const PendingTask& t) {
                                   return t.expires_at <= now;
                                 }),
                  backlog.end());
    stats.expired_tasks = before - backlog.size();
    result.tasks_expired += stats.expired_tasks;
    stats.pending_tasks = backlog.size();

    // Snapshot: zones with pending tasks become the instance's delivery
    // points (expiries relative to `now`), idle couriers its workers.
    std::vector<std::vector<PendingTask*>> by_zone(zones.size());
    for (PendingTask& t : backlog) by_zone[t.zone].push_back(&t);

    std::vector<DeliveryPoint> dps;
    std::vector<uint32_t> dp_to_zone;
    for (uint32_t z = 0; z < zones.size(); ++z) {
      if (by_zone[z].empty()) continue;
      std::vector<SpatialTask> tasks;
      tasks.reserve(by_zone[z].size());
      for (const PendingTask* t : by_zone[z]) {
        tasks.push_back(SpatialTask{static_cast<uint32_t>(dp_to_zone.size()),
                                    t->expires_at - now, 1.0});
      }
      dps.emplace_back(zones[z], std::move(tasks));
      dp_to_zone.push_back(z);
    }

    std::vector<Worker> wave_workers;
    std::vector<uint32_t> worker_to_courier;
    for (uint32_t c = 0; c < couriers.size(); ++c) {
      if (couriers[c].busy_until <= now + kEps) {
        wave_workers.push_back(Worker{couriers[c].location, config.max_dp});
        worker_to_courier.push_back(c);
      }
    }
    stats.idle_workers = wave_workers.size();

    if (!dps.empty() && !wave_workers.empty()) {
      Instance instance(hub, std::move(dps), std::move(wave_workers),
                        travel);
      const VdpsCatalog catalog =
          VdpsCatalog::Generate(instance, config.options.vdps);
      const Assignment assignment =
          SolveWave(config.algorithm, instance, catalog, config.options,
                    config.seed * 7919 + static_cast<uint64_t>(wave));
      FTA_DCHECK(assignment.Validate(instance).ok());

      const std::vector<double> payoffs = assignment.Payoffs(instance);
      stats.payoff_difference = MeanAbsolutePairwiseDifference(payoffs);
      stats.average_payoff = Mean(payoffs);

      // Commit: couriers leave, served tasks vanish from the backlog.
      std::vector<bool> zone_served(zones.size(), false);
      for (size_t w = 0; w < assignment.num_workers(); ++w) {
        const Route& route = assignment.route(w);
        if (route.empty()) continue;
        const RouteEvaluation eval = EvaluateRoute(instance, w, route);
        CourierState& courier = couriers[worker_to_courier[w]];
        courier.busy_until = now + eval.total_time;
        courier.location =
            instance.delivery_point(route.back()).location();
        courier.earnings += eval.total_reward;
        stats.dispatched_workers += 1;
        for (uint32_t dp : route) {
          zone_served[dp_to_zone[dp]] = true;
          stats.assigned_tasks += instance.delivery_point(dp).task_count();
        }
      }
      result.tasks_served += stats.assigned_tasks;
      backlog.erase(std::remove_if(backlog.begin(), backlog.end(),
                                   [&](const PendingTask& t) {
                                     return zone_served[t.zone];
                                   }),
                    backlog.end());
    }
    result.waves.push_back(stats);
  }

  result.tasks_leftover = backlog.size();
  result.worker_earnings.reserve(couriers.size());
  for (const CourierState& c : couriers) {
    result.worker_earnings.push_back(c.earnings);
  }
  // Sort the earnings once; the pairwise-difference and Gini kernels both
  // consume the sorted view (each used to copy and sort on its own).
  // GiniSorted's mean runs over the sorted order, so the quotient may move
  // by an ulp versus Gini(unsorted) — fine here, nothing pins these bits.
  std::vector<double> sorted_earnings = result.worker_earnings;
  std::sort(sorted_earnings.begin(), sorted_earnings.end());
  result.earnings_payoff_difference =
      MeanAbsolutePairwiseDifferenceSorted(sorted_earnings);
  result.earnings_gini = GiniSorted(sorted_earnings);
  result.earnings_jain = JainFairnessIndex(result.worker_earnings);
  return result;
}

}  // namespace fta
