#ifndef FTA_EXP_RUNNER_H_
#define FTA_EXP_RUNNER_H_

#include <string>
#include <vector>

#include "baseline/mpta.h"
#include "game/fgt.h"
#include "game/iegt.h"
#include "model/instance.h"
#include "vdps/catalog.h"

namespace fta {

/// The algorithms compared in the paper's evaluation (Section VII-A), plus
/// the random sanity baseline.
enum class Algorithm { kMpta, kGta, kFgt, kIegt, kRandom };

/// Stable display name ("MPTA", "GTA", ...).
const char* AlgorithmName(Algorithm a);

/// All algorithms in the paper's plotting order.
std::vector<Algorithm> PaperAlgorithms();

/// Shared per-run options: the VDPS generation knobs plus each solver's
/// configuration.
struct SolverOptions {
  VdpsConfig vdps;
  FgtConfig fgt;
  IegtConfig iegt;
  MptaConfig mpta;
  uint64_t seed = 1;
};

/// Effectiveness + efficiency metrics of one run: the paper's Payoff
/// Difference, Average Payoff, and CPU Time (which includes VDPS
/// generation, as in the paper's end-to-end measurement).
struct RunMetrics {
  double payoff_difference = 0.0;
  double average_payoff = 0.0;
  double total_payoff = 0.0;
  double cpu_seconds = 0.0;
  size_t num_workers = 0;
  size_t assigned_workers = 0;
  size_t covered_tasks = 0;
  /// Game iterations (0 for one-shot algorithms).
  int rounds = 0;
  bool converged = true;
  /// Catalog-generation counters of the run (summed across centers for
  /// multi-center runs). Zero for RunWithCatalog, which skips generation.
  GenerationCounters generation;
  /// Best-response engine work of the run (summed across centers). Zero
  /// for one-shot algorithms.
  BestResponseCounters engine;
  /// Per-iteration solver snapshots; filled only when the solver config
  /// asks for a trace (record_trace) and the run is single-center.
  std::vector<IterationStats> trace;
};

/// Runs one algorithm end-to-end (VDPS generation + solve) on a
/// single-center instance.
RunMetrics RunOnInstance(Algorithm algorithm, const Instance& instance,
                         const SolverOptions& options);

/// Runs one algorithm over every center of a multi-center instance
/// (optionally in parallel across `threads`), pooling all workers' payoffs
/// into global P_dif / average-payoff metrics. CPU seconds are summed over
/// centers (single-machine CPU cost, independent of threads).
RunMetrics RunOnMulti(Algorithm algorithm, const MultiCenterInstance& multi,
                      const SolverOptions& options, size_t threads = 1);

/// Variant that reuses an existing catalog (excludes generation from the
/// timing); used by micro-benchmarks and ablations.
RunMetrics RunWithCatalog(Algorithm algorithm, const Instance& instance,
                          const VdpsCatalog& catalog,
                          const SolverOptions& options);

}  // namespace fta

#endif  // FTA_EXP_RUNNER_H_
