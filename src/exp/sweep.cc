#include "exp/sweep.h"

#include "obs/trace.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace fta {

std::string SweepResult::ToText() const {
  return payoff_difference.ToText() + "\n" + average_payoff.ToText() + "\n" +
         cpu_time.ToText() + "\n" + generation_time.ToText();
}

SweepResult RunParameterSweep(
    const std::string& figure, const std::string& param_name,
    const std::vector<std::string>& point_labels,
    const std::function<MultiCenterInstance(size_t)>& instance_at,
    const std::vector<SweepSeries>& series, size_t threads) {
  std::vector<std::string> header = {param_name};
  header.insert(header.end(), point_labels.begin(), point_labels.end());

  SweepResult result{
      ResultTable(figure + " — payoff difference", header),
      ResultTable(figure + " — average payoff", header),
      ResultTable(figure + " — CPU time (s)", header),
      ResultTable(figure + " — C-VDPS generation wall (ms)", header),
  };

  std::vector<std::vector<double>> pdif(series.size()), avg(series.size()),
      cpu(series.size()), gen_ms(series.size());
  FTA_SPAN("exp/sweep");
  for (size_t p = 0; p < point_labels.size(); ++p) {
    const obs::ScopedSpan point_span(
        StrFormat("exp/sweep_point/%s=%s", param_name.c_str(),
                  point_labels[p].c_str()));
    const MultiCenterInstance multi = instance_at(p);
    for (size_t s = 0; s < series.size(); ++s) {
      const obs::ScopedSpan series_span(std::string("exp/series/") +
                                        series[s].name);
      const RunMetrics m =
          RunOnMulti(series[s].algorithm, multi, series[s].options, threads);
      pdif[s].push_back(m.payoff_difference);
      avg[s].push_back(m.average_payoff);
      cpu[s].push_back(m.cpu_seconds);
      gen_ms[s].push_back(m.generation.wall_ms);
      FTA_LOG(kDebug) << figure << " " << series[s].name << " "
                      << param_name << "=" << point_labels[p]
                      << StrFormat(": pdif=%.4f avg=%.4f cpu=%.3fs",
                                   m.payoff_difference, m.average_payoff,
                                   m.cpu_seconds)
                      << " gen_states=" << m.generation.states_expanded
                      << " gen_arena_bytes=" << m.generation.arena_bytes;
    }
  }
  for (size_t s = 0; s < series.size(); ++s) {
    result.payoff_difference.AddNumericRow(series[s].name, pdif[s]);
    result.average_payoff.AddNumericRow(series[s].name, avg[s]);
    result.cpu_time.AddNumericRow(series[s].name, cpu[s]);
    result.generation_time.AddNumericRow(series[s].name, gen_ms[s]);
  }
  return result;
}

}  // namespace fta
