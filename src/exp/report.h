#ifndef FTA_EXP_REPORT_H_
#define FTA_EXP_REPORT_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace fta {

/// Accumulates a rectangular results table (the rows/series of one paper
/// figure) and renders it as an aligned text table or CSV. Cells are
/// strings; use AddRow with doubles for formatted numeric rows.
class ResultTable {
 public:
  /// `title` is printed above the table; `header` names the columns.
  ResultTable(std::string title, std::vector<std::string> header);

  /// Appends a row of preformatted cells (must match the header width).
  void AddRow(std::vector<std::string> cells);
  /// Appends a row of a label plus numeric cells formatted as %.4g.
  void AddNumericRow(const std::string& label,
                     const std::vector<double>& values);

  const std::string& title() const { return title_; }
  size_t num_rows() const { return rows_.size(); }

  /// Aligned, human-readable rendering (what the bench binaries print).
  std::string ToText() const;
  /// Machine-readable CSV (header + rows).
  std::string ToCsvText() const;
  /// Writes the CSV rendering to a file.
  Status WriteCsv(const std::string& path) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fta

#endif  // FTA_EXP_REPORT_H_
