#ifndef FTA_EXP_STATS_H_
#define FTA_EXP_STATS_H_

#include <functional>
#include <string>
#include <vector>

#include "exp/runner.h"
#include "model/instance.h"

namespace fta {

/// Summary statistics of one metric across repeated (re-seeded) runs.
struct MetricSummary {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  size_t n = 0;
  /// Half-width of the ~95% normal confidence interval of the mean
  /// (1.96 · stddev / sqrt(n)); 0 for n < 2.
  double ci95 = 0.0;

  /// "mean ± ci95" rendering.
  std::string ToString() const;
};

/// Computes a MetricSummary from raw samples.
MetricSummary Summarize(const std::vector<double>& samples);

/// Aggregated multi-seed metrics of one algorithm on one instance family.
struct RepeatedRunSummary {
  MetricSummary payoff_difference;
  MetricSummary average_payoff;
  MetricSummary cpu_seconds;
  MetricSummary rounds;
};

/// Runs `algorithm` `num_seeds` times against freshly generated instances
/// (instance_for(seed)) and summarizes the paper's three metrics. This is
/// the statistical-rigor layer the paper's single-run plots lack: it shows
/// whether algorithm orderings are stable across random instances and
/// game initializations.
RepeatedRunSummary RunRepeated(
    Algorithm algorithm,
    const std::function<MultiCenterInstance(uint64_t seed)>& instance_for,
    const SolverOptions& base_options, size_t num_seeds,
    uint64_t first_seed = 1);

}  // namespace fta

#endif  // FTA_EXP_STATS_H_
