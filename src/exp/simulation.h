#ifndef FTA_EXP_SIMULATION_H_
#define FTA_EXP_SIMULATION_H_

#include <cstdint>
#include <vector>

#include "datagen/workload.h"
#include "exp/runner.h"
#include "geo/point.h"
#include "model/instance.h"

namespace fta {

/// Multi-wave dispatch simulation — the downstream system around the
/// paper's one-shot assignment primitive. The paper assigns "all the
/// available tasks and workers at a particular time instance"; a real
/// platform repeats that every few minutes as orders arrive and couriers
/// return. This simulator runs such a day: tasks arrive at fixed zones
/// each wave, the chosen algorithm assigns the currently idle workers, and
/// assigned workers go offline for their route duration (Definition 4's
/// online/offline cycle). Long-run per-worker earnings expose whether
/// one-shot fairness compounds into career fairness.
struct SimulationConfig {
  /// Assignment waves to simulate and the time between them (hours).
  int num_waves = 12;
  double wave_interval = 0.5;
  /// Fixed city zones (delivery points) and their square region side (km).
  size_t num_zones = 40;
  double area = 10.0;
  /// Worker fleet size and travel speed (km/h).
  size_t num_workers = 15;
  double speed = 15.0;
  uint32_t max_dp = 3;
  /// New tasks arriving per wave, each expiring `task_lifetime` hours
  /// after arrival. Reward 1 per task. Ignored when use_workload is set.
  size_t tasks_per_wave = 60;
  double task_lifetime = 1.5;
  /// When true, per-wave arrivals are drawn from the rush-hour Poisson
  /// workload model instead of the constant tasks_per_wave.
  bool use_workload = false;
  WorkloadConfig workload;
  /// Assignment algorithm and its options, applied at every wave.
  Algorithm algorithm = Algorithm::kIegt;
  SolverOptions options;
  uint64_t seed = 99;
};

/// Per-wave observation.
struct WaveStats {
  int wave = 0;
  /// Tasks pending (unexpired, unassigned) at the assignment instant.
  size_t pending_tasks = 0;
  /// Tasks whose delivery was assigned in this wave.
  size_t assigned_tasks = 0;
  /// Tasks that expired un-served since the previous wave.
  size_t expired_tasks = 0;
  /// Workers idle (online) at the assignment instant / assigned a route.
  size_t idle_workers = 0;
  size_t dispatched_workers = 0;
  /// Instantaneous fairness over the participating (idle) workers.
  double payoff_difference = 0.0;
  double average_payoff = 0.0;
};

/// End-of-day outcome.
struct SimulationResult {
  std::vector<WaveStats> waves;
  /// Cumulative reward earned by each worker over the whole day.
  std::vector<double> worker_earnings;
  /// Long-run fairness of the cumulative earnings.
  double earnings_payoff_difference = 0.0;
  double earnings_gini = 0.0;
  double earnings_jain = 0.0;
  /// Task accounting across the day (arrived = served + expired + leftover).
  size_t tasks_arrived = 0;
  size_t tasks_served = 0;
  size_t tasks_expired = 0;
  size_t tasks_leftover = 0;
};

/// Runs the simulation. Deterministic in config.seed.
SimulationResult RunDispatchSimulation(const SimulationConfig& config);

}  // namespace fta

#endif  // FTA_EXP_SIMULATION_H_
