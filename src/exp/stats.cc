#include "exp/stats.h"

#include <cmath>

#include "util/math_util.h"
#include "util/string_util.h"

namespace fta {

std::string MetricSummary::ToString() const {
  // ASCII on purpose: multibyte glyphs break the byte-width column
  // alignment of ResultTable.
  return StrFormat("%.4g +- %.2g", mean, ci95);
}

MetricSummary Summarize(const std::vector<double>& samples) {
  MetricSummary s;
  s.n = samples.size();
  if (samples.empty()) return s;
  s.mean = Mean(samples);
  s.stddev = StdDev(samples);
  s.min = Min(samples);
  s.max = Max(samples);
  if (s.n >= 2) {
    s.ci95 = 1.96 * s.stddev / std::sqrt(static_cast<double>(s.n));
  }
  return s;
}

RepeatedRunSummary RunRepeated(
    Algorithm algorithm,
    const std::function<MultiCenterInstance(uint64_t seed)>& instance_for,
    const SolverOptions& base_options, size_t num_seeds,
    uint64_t first_seed) {
  std::vector<double> pdif, avg, cpu, rounds;
  pdif.reserve(num_seeds);
  for (size_t i = 0; i < num_seeds; ++i) {
    const uint64_t seed = first_seed + i;
    const MultiCenterInstance multi = instance_for(seed);
    SolverOptions options = base_options;
    options.seed = seed;
    const RunMetrics m = RunOnMulti(algorithm, multi, options);
    pdif.push_back(m.payoff_difference);
    avg.push_back(m.average_payoff);
    cpu.push_back(m.cpu_seconds);
    rounds.push_back(static_cast<double>(m.rounds));
  }
  RepeatedRunSummary summary;
  summary.payoff_difference = Summarize(pdif);
  summary.average_payoff = Summarize(avg);
  summary.cpu_seconds = Summarize(cpu);
  summary.rounds = Summarize(rounds);
  return summary;
}

}  // namespace fta
