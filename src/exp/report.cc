#include "exp/report.h"

#include <algorithm>

#include "io/csv.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace fta {

ResultTable::ResultTable(std::string title, std::vector<std::string> header)
    : title_(std::move(title)), header_(std::move(header)) {}

void ResultTable::AddRow(std::vector<std::string> cells) {
  FTA_CHECK_MSG(cells.size() == header_.size(),
                "row width does not match header");
  rows_.push_back(std::move(cells));
}

void ResultTable::AddNumericRow(const std::string& label,
                                const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(StrFormat("%.4g", v));
  AddRow(std::move(cells));
}

std::string ResultTable::ToText() const {
  std::vector<size_t> width(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::string out = "== " + title_ + " ==\n";
  const auto render = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += StrFormat("%-*s", static_cast<int>(width[c] + 2), row[c].c_str());
    }
    // Trim trailing spaces for tidy output.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out.push_back('\n');
  };
  render(header_);
  size_t total = header_.size() * 2;
  for (size_t c = 0; c < header_.size(); ++c) total += width[c];
  out += std::string(total - 2, '-');
  out.push_back('\n');
  for (const auto& row : rows_) render(row);
  return out;
}

std::string ResultTable::ToCsvText() const {
  std::vector<std::vector<std::string>> all;
  all.push_back(header_);
  all.insert(all.end(), rows_.begin(), rows_.end());
  return ToCsv(all);
}

Status ResultTable::WriteCsv(const std::string& path) const {
  std::vector<std::vector<std::string>> all;
  all.push_back(header_);
  all.insert(all.end(), rows_.begin(), rows_.end());
  return WriteCsvFile(path, all);
}

}  // namespace fta
