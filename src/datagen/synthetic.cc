#include "datagen/synthetic.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "geo/kdtree.h"
#include "util/logging.h"
#include "util/rng.h"

namespace fta {

MultiCenterInstance GenerateSyn(const SynConfig& config) {
  FTA_CHECK(config.num_centers > 0);
  Rng rng(config.seed);
  const double a = config.area;

  std::vector<Point> center_locs(config.num_centers);
  for (Point& p : center_locs) p = {rng.Uniform(0, a), rng.Uniform(0, a)};
  const KdTree center_tree(center_locs);
  const auto center_of = [&](const Point& p) -> uint32_t {
    if (config.association == CenterAssociation::kNearest) {
      return static_cast<uint32_t>(center_tree.Nearest(p));
    }
    return static_cast<uint32_t>(rng.Index(config.num_centers));
  };

  // Delivery points: uniform location, center affiliation per config.
  struct DpDraft {
    Point loc;
    std::vector<SpatialTask> tasks;
  };
  std::vector<std::vector<DpDraft>> dps_per_center(config.num_centers);
  // Remember (center, local index) of each global delivery point for task
  // association.
  std::vector<std::pair<uint32_t, uint32_t>> dp_slots;
  dp_slots.reserve(config.num_delivery_points);
  for (size_t d = 0; d < config.num_delivery_points; ++d) {
    const Point loc{rng.Uniform(0, a), rng.Uniform(0, a)};
    const uint32_t c = center_of(loc);
    dps_per_center[c].push_back({loc, {}});
    dp_slots.emplace_back(c,
                          static_cast<uint32_t>(dps_per_center[c].size() - 1));
  }

  // Tasks: uniformly random delivery point, fixed (optionally jittered)
  // expiry, unit reward.
  for (size_t t = 0; t < config.num_tasks; ++t) {
    if (dp_slots.empty()) break;
    const auto [c, local] = dp_slots[rng.Index(dp_slots.size())];
    double e = config.expiry;
    if (config.expiry_jitter > 0.0) {
      e *= 1.0 + config.expiry_jitter * (2.0 * rng.NextDouble() - 1.0);
      e = std::max(e, 1e-3);
    }
    dps_per_center[c][local].tasks.push_back(SpatialTask{local, e, 1.0});
  }

  // Workers: uniform location, center affiliation per config.
  std::vector<std::vector<Worker>> workers_per_center(config.num_centers);
  for (size_t w = 0; w < config.num_workers; ++w) {
    const Point loc{rng.Uniform(0, a), rng.Uniform(0, a)};
    workers_per_center[center_of(loc)].push_back(Worker{loc, config.max_dp});
  }

  MultiCenterInstance multi;
  multi.centers.reserve(config.num_centers);
  const TravelModel travel(config.speed);
  for (size_t c = 0; c < config.num_centers; ++c) {
    std::vector<DeliveryPoint> dps;
    dps.reserve(dps_per_center[c].size());
    for (DpDraft& draft : dps_per_center[c]) {
      dps.emplace_back(draft.loc, std::move(draft.tasks));
    }
    multi.centers.emplace_back(center_locs[c], std::move(dps),
                               std::move(workers_per_center[c]), travel);
  }
  return multi;
}

SynConfig ScaleSyn(const SynConfig& config, double factor) {
  FTA_CHECK(factor > 0.0);
  SynConfig scaled = config;
  const auto scale = [factor](size_t n) {
    return std::max<size_t>(
        1, static_cast<size_t>(static_cast<double>(n) * factor + 0.5));
  };
  scaled.num_centers = scale(config.num_centers);
  scaled.num_workers = scale(config.num_workers);
  scaled.num_delivery_points = scale(config.num_delivery_points);
  scaled.num_tasks = scale(config.num_tasks);
  scaled.area = config.area * std::sqrt(factor);
  return scaled;
}

}  // namespace fta
