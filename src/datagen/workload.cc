#include "datagen/workload.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace fta {

double ArrivalRate(const WorkloadConfig& config, double t) {
  double boost = 0.0;
  for (double peak : config.peak_hours) {
    const double z = (t - peak) / config.peak_sigma;
    boost += config.peak_boost * std::exp(-0.5 * z * z);
  }
  return config.base_rate_per_hour * (1.0 + boost);
}

size_t PoissonSample(double lambda, Rng& rng) {
  FTA_CHECK(lambda >= 0.0);
  if (lambda <= 0.0) return 0;
  if (lambda > 64.0) {
    // Normal approximation with continuity correction.
    const double x = rng.Gaussian(lambda, std::sqrt(lambda));
    return static_cast<size_t>(std::max(0.0, std::round(x)));
  }
  // Knuth's method.
  const double limit = std::exp(-lambda);
  size_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng.NextDouble();
  } while (p > limit);
  return k - 1;
}

size_t DrawArrivals(const WorkloadConfig& config, double t, double dt,
                    Rng& rng) {
  FTA_CHECK(dt >= 0.0);
  const double lambda = ArrivalRate(config, t + dt / 2.0) * dt;
  return PoissonSample(lambda, rng);
}

namespace {

/// Exponential variate with the given mean; strictly positive.
double DrawExponential(double mean, Rng& rng) {
  return -mean * std::log1p(-rng.NextDouble());
}

}  // namespace

std::vector<StreamEvent> GenerateChurnEvents(const ChurnWorkloadConfig& config,
                                             uint64_t seed) {
  FTA_CHECK(config.horizon_hours > 0.0);
  FTA_CHECK(config.mean_worker_dwell_hours > 0.0);
  FTA_CHECK(config.mean_task_patience_hours > 0.0);
  FTA_CHECK(config.min_service_window > 0.0);
  FTA_CHECK(config.min_service_window <= config.max_service_window);
  FTA_CHECK(config.min_reward <= config.max_reward);
  FTA_CHECK(config.min_max_dp >= 1);
  FTA_CHECK(config.min_max_dp <= config.max_max_dp);
  Rng rng(seed);
  std::vector<StreamEvent> events;
  // Slice-wise Poisson thinning of both arrival processes; one-minute
  // slices resolve the rush-hour modulation well below its sigma.
  constexpr double kSlice = 1.0 / 60.0;
  const WorkloadConfig worker_rate{config.worker_rate_per_hour, {}, 0.0, 1.0};
  for (double t = 0.0; t < config.horizon_hours; t += kSlice) {
    const double dt = std::min(kSlice, config.horizon_hours - t);
    const size_t n_tasks = DrawArrivals(config.tasks, t, dt, rng);
    for (size_t i = 0; i < n_tasks; ++i) {
      StreamEvent ev;
      ev.time = t + dt * rng.NextDouble();
      ev.kind = StreamEventKind::kTaskArrival;
      ev.location = Point{rng.Uniform(0.0, config.area_size),
                          rng.Uniform(0.0, config.area_size)};
      ev.reward = rng.Uniform(config.min_reward, config.max_reward);
      ev.queue_expiry =
          ev.time + DrawExponential(config.mean_task_patience_hours, rng);
      ev.service_window =
          rng.Uniform(config.min_service_window, config.max_service_window);
      events.push_back(ev);
    }
    const size_t n_workers = DrawArrivals(worker_rate, t, dt, rng);
    for (size_t i = 0; i < n_workers; ++i) {
      StreamEvent ev;
      ev.time = t + dt * rng.NextDouble();
      ev.kind = StreamEventKind::kWorkerArrival;
      ev.worker.location = Point{rng.Uniform(0.0, config.area_size),
                                 rng.Uniform(0.0, config.area_size)};
      ev.worker.max_delivery_points = static_cast<uint32_t>(rng.UniformInt(
          config.min_max_dp, config.max_max_dp));
      ev.departure =
          ev.time + DrawExponential(config.mean_worker_dwell_hours, rng);
      events.push_back(ev);
    }
  }
  // Stable sort: events generated in deterministic order, ties keep it.
  std::stable_sort(events.begin(), events.end(),
                   [](const StreamEvent& a, const StreamEvent& b) {
                     return a.time < b.time;
                   });
  return events;
}

}  // namespace fta
