#include "datagen/workload.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace fta {

double ArrivalRate(const WorkloadConfig& config, double t) {
  double boost = 0.0;
  for (double peak : config.peak_hours) {
    const double z = (t - peak) / config.peak_sigma;
    boost += config.peak_boost * std::exp(-0.5 * z * z);
  }
  return config.base_rate_per_hour * (1.0 + boost);
}

size_t PoissonSample(double lambda, Rng& rng) {
  FTA_CHECK(lambda >= 0.0);
  if (lambda <= 0.0) return 0;
  if (lambda > 64.0) {
    // Normal approximation with continuity correction.
    const double x = rng.Gaussian(lambda, std::sqrt(lambda));
    return static_cast<size_t>(std::max(0.0, std::round(x)));
  }
  // Knuth's method.
  const double limit = std::exp(-lambda);
  size_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng.NextDouble();
  } while (p > limit);
  return k - 1;
}

size_t DrawArrivals(const WorkloadConfig& config, double t, double dt,
                    Rng& rng) {
  FTA_CHECK(dt >= 0.0);
  const double lambda = ArrivalRate(config, t + dt / 2.0) * dt;
  return PoissonSample(lambda, rng);
}

}  // namespace fta
