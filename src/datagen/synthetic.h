#ifndef FTA_DATAGEN_SYNTHETIC_H_
#define FTA_DATAGEN_SYNTHETIC_H_

#include <cstdint>

#include "model/instance.h"

namespace fta {

/// How workers and delivery points are affiliated with a distribution
/// center.
enum class CenterAssociation {
  /// Affiliate with the geographically nearest center. This is the default:
  /// with the paper's parameters (100x100 km, 5 km/h, ~2 h deadlines) a
  /// *uniformly random* affiliation puts ~95% of workers hopelessly out of
  /// range of their center, which contradicts the per-worker payoffs the
  /// paper reports — the stated "associated ... at random" can only
  /// reproduce those numbers under spatial affiliation.
  kNearest,
  /// Literal uniform random affiliation, as the paper's text says.
  kUniform,
};

/// Parameters of the paper's SYN dataset (Section VII-A): uniform worker /
/// delivery point locations in [0, area]^2 km, `num_centers` uniformly
/// placed distribution centers, center affiliation for workers and
/// delivery points, random task-to-delivery-point association, reward 1,
/// speed 5 km/h. Times are hours.
struct SynConfig {
  size_t num_centers = 50;
  size_t num_workers = 2000;
  size_t num_delivery_points = 5000;
  size_t num_tasks = 100000;
  /// Task expiration deadline e (hours); every task expires at e like the
  /// paper's single-valued parameter. expiry_jitter adds +-fraction noise.
  double expiry = 2.0;
  double expiry_jitter = 0.0;
  /// Maximum acceptable delivery points per worker (maxDP).
  uint32_t max_dp = 3;
  double speed = 5.0;
  /// Side length of the square region (km).
  double area = 100.0;
  CenterAssociation association = CenterAssociation::kNearest;
  uint64_t seed = 7;
};

/// Generates a SYN multi-center instance. Deterministic in config.seed.
/// Delivery points with zero tasks are kept (they simply attract nobody),
/// matching the paper's random task association.
MultiCenterInstance GenerateSyn(const SynConfig& config);

/// Scales every SYN population count by `factor` (at least 1 center /
/// worker / delivery point / task survives) and the region side length by
/// sqrt(factor), preserving both the task : delivery-point : worker :
/// center ratios and the spatial densities (hence feasibility geometry).
/// Used by the benches to shrink the paper's 40-core-scale defaults onto
/// this substrate.
SynConfig ScaleSyn(const SynConfig& config, double factor);

}  // namespace fta

#endif  // FTA_DATAGEN_SYNTHETIC_H_
