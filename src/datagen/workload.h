#ifndef FTA_DATAGEN_WORKLOAD_H_
#define FTA_DATAGEN_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace fta {

/// Time-varying order-arrival model for the multi-wave simulator: a base
/// Poisson rate modulated by rush-hour peaks, the standard shape of food
/// and package demand over a day.
struct WorkloadConfig {
  /// Mean orders per hour outside the peaks.
  double base_rate_per_hour = 60.0;
  /// Peak centers in hours from the start of the horizon (e.g. lunch at
  /// 4h, dinner at 10h for a day starting 08:00).
  std::vector<double> peak_hours = {4.0, 10.0};
  /// Peak height as a multiple of the base rate (2.0 = triple flow at the
  /// peak center).
  double peak_boost = 2.0;
  /// Gaussian peak width (hours).
  double peak_sigma = 1.0;
};

/// Instantaneous arrival rate (orders/hour) at time t.
double ArrivalRate(const WorkloadConfig& config, double t);

/// Draws the number of orders arriving within [t, t + dt) — Poisson with
/// the rate integrated by midpoint approximation. Deterministic in `rng`.
size_t DrawArrivals(const WorkloadConfig& config, double t, double dt,
                    Rng& rng);

/// Draws a single Poisson variate with mean `lambda` (Knuth for small
/// lambda, normal approximation above 64). Exposed for testing.
size_t PoissonSample(double lambda, Rng& rng);

}  // namespace fta

#endif  // FTA_DATAGEN_WORKLOAD_H_
