#ifndef FTA_DATAGEN_WORKLOAD_H_
#define FTA_DATAGEN_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "stream/events.h"
#include "util/rng.h"

namespace fta {

/// Time-varying order-arrival model for the multi-wave simulator: a base
/// Poisson rate modulated by rush-hour peaks, the standard shape of food
/// and package demand over a day.
struct WorkloadConfig {
  /// Mean orders per hour outside the peaks.
  double base_rate_per_hour = 60.0;
  /// Peak centers in hours from the start of the horizon (e.g. lunch at
  /// 4h, dinner at 10h for a day starting 08:00).
  std::vector<double> peak_hours = {4.0, 10.0};
  /// Peak height as a multiple of the base rate (2.0 = triple flow at the
  /// peak center).
  double peak_boost = 2.0;
  /// Gaussian peak width (hours).
  double peak_sigma = 1.0;
};

/// Instantaneous arrival rate (orders/hour) at time t.
double ArrivalRate(const WorkloadConfig& config, double t);

/// Draws the number of orders arriving within [t, t + dt) — Poisson with
/// the rate integrated by midpoint approximation. Deterministic in `rng`.
size_t DrawArrivals(const WorkloadConfig& config, double t, double dt,
                    Rng& rng);

/// Draws a single Poisson variate with mean `lambda` (Knuth for small
/// lambda, normal approximation above 64). Exposed for testing.
size_t PoissonSample(double lambda, Rng& rng);

/// Churn workload for the streaming dispatcher: Poisson order arrivals
/// (rush-hour modulated via `tasks`), homogeneous Poisson worker arrivals,
/// uniform locations over a square, and exponential lifetimes. Per-tick
/// churn fraction ≈ tick_period / mean lifetime: a 5%-per-tick stream uses
/// mean lifetimes of 20 ticks.
struct ChurnWorkloadConfig {
  /// Horizon (hours); events are generated on [0, horizon_hours).
  double horizon_hours = 2.0;
  /// Order-arrival model (time-varying Poisson).
  WorkloadConfig tasks;
  /// Mean worker arrivals per hour (homogeneous Poisson).
  double worker_rate_per_hour = 20.0;
  /// Side length of the square [0, area_size)^2 locations are drawn from.
  double area_size = 10.0;
  /// Mean hours a worker stays in the pool (exponential dwell).
  double mean_worker_dwell_hours = 1.0;
  /// Mean hours an undispatched order waits before canceling (exponential
  /// patience).
  double mean_task_patience_hours = 1.0;
  /// Relative delivery window once dispatched, drawn uniformly.
  double min_service_window = 0.5;
  double max_service_window = 2.0;
  /// Order reward, drawn uniformly.
  double min_reward = 1.0;
  double max_reward = 5.0;
  /// Worker capacity w.maxDP, drawn uniformly inclusive.
  uint32_t min_max_dp = 2;
  uint32_t max_max_dp = 4;
};

/// Generates the full event sequence of a churn workload, sorted by
/// non-decreasing arrival time. Deterministic in `seed`.
std::vector<StreamEvent> GenerateChurnEvents(const ChurnWorkloadConfig& config,
                                             uint64_t seed);

}  // namespace fta

#endif  // FTA_DATAGEN_WORKLOAD_H_
