#ifndef FTA_DATAGEN_GMISSION_H_
#define FTA_DATAGEN_GMISSION_H_

#include <cstdint>
#include <vector>

#include "geo/point.h"
#include "model/instance.h"

namespace fta {

/// Raw gMission-style records before the paper's data preparation: tasks
/// with a location / expiration / reward, workers with a location.
struct RawCrowdData {
  std::vector<Point> task_locations;
  std::vector<double> task_expiries;
  std::vector<double> task_rewards;
  std::vector<Point> worker_locations;
};

/// Parameters of the gMission-like generator. The real gMission dump is not
/// redistributable here; this generator synthesizes the same schema with a
/// clustered (Gaussian-mixture) spatial distribution, which is what the
/// paper's pipeline actually consumes (see DESIGN.md §4 substitutions).
struct GMissionConfig {
  size_t num_tasks = 200;
  size_t num_workers = 40;
  /// Gaussian mixture components modeling task hotspots.
  size_t num_hotspots = 8;
  /// Side length of the square region (km); gMission is city-scale.
  double area = 10.0;
  /// Hotspot standard deviation (km).
  double hotspot_sigma = 0.8;
  /// Fraction of tasks drawn uniformly instead of from a hotspot.
  double background_fraction = 0.15;
  /// Task expirations uniform in [expiry_min, expiry_max] hours.
  double expiry_min = 1.0;
  double expiry_max = 3.0;
  double reward = 1.0;
  uint64_t seed = 11;
};

/// Synthesizes raw gMission-style records.
RawCrowdData GenerateGMissionRaw(const GMissionConfig& config);

/// Parameters of the paper's gMission preparation (Section VII-A).
struct GMissionPrepConfig {
  /// x — the k-means cluster count; centroids become delivery points.
  size_t num_delivery_points = 100;
  uint32_t max_dp = 3;
  double speed = 5.0;
  uint64_t seed = 13;
};

/// The paper's preparation pipeline: the distribution center is placed at
/// the tasks' centroid, task locations are k-means clustered into
/// `num_delivery_points` groups whose centroids become delivery points, and
/// each task is delivered to its cluster's delivery point.
Instance PrepareGMissionInstance(const RawCrowdData& raw,
                                 const GMissionPrepConfig& prep);

/// Convenience: generate + prepare in one call.
Instance GenerateGMissionLike(const GMissionConfig& config,
                              const GMissionPrepConfig& prep);

}  // namespace fta

#endif  // FTA_DATAGEN_GMISSION_H_
