#include "datagen/gmission.h"

#include <algorithm>

#include "cluster/kmeans.h"
#include "util/logging.h"
#include "util/rng.h"

namespace fta {
namespace {

Point ClampToArea(Point p, double area) {
  p.x = std::clamp(p.x, 0.0, area);
  p.y = std::clamp(p.y, 0.0, area);
  return p;
}

}  // namespace

RawCrowdData GenerateGMissionRaw(const GMissionConfig& config) {
  FTA_CHECK(config.expiry_min > 0.0 &&
            config.expiry_max >= config.expiry_min);
  Rng rng(config.seed);
  RawCrowdData raw;

  std::vector<Point> hotspots(std::max<size_t>(config.num_hotspots, 1));
  for (Point& h : hotspots) {
    h = {rng.Uniform(0, config.area), rng.Uniform(0, config.area)};
  }

  const auto draw_location = [&]() {
    if (rng.Bernoulli(config.background_fraction)) {
      return Point{rng.Uniform(0, config.area), rng.Uniform(0, config.area)};
    }
    const Point& h = hotspots[rng.Index(hotspots.size())];
    return ClampToArea(Point{rng.Gaussian(h.x, config.hotspot_sigma),
                             rng.Gaussian(h.y, config.hotspot_sigma)},
                       config.area);
  };

  raw.task_locations.reserve(config.num_tasks);
  raw.task_expiries.reserve(config.num_tasks);
  raw.task_rewards.reserve(config.num_tasks);
  for (size_t t = 0; t < config.num_tasks; ++t) {
    raw.task_locations.push_back(draw_location());
    raw.task_expiries.push_back(
        rng.Uniform(config.expiry_min, config.expiry_max));
    raw.task_rewards.push_back(config.reward);
  }
  raw.worker_locations.reserve(config.num_workers);
  for (size_t w = 0; w < config.num_workers; ++w) {
    raw.worker_locations.push_back(draw_location());
  }
  return raw;
}

Instance PrepareGMissionInstance(const RawCrowdData& raw,
                                 const GMissionPrepConfig& prep) {
  FTA_CHECK(raw.task_locations.size() == raw.task_expiries.size());
  FTA_CHECK(raw.task_locations.size() == raw.task_rewards.size());

  // dc.l = centroid of all task locations (Section VII-A).
  Point center{0.0, 0.0};
  if (!raw.task_locations.empty()) {
    for (const Point& p : raw.task_locations) {
      center.x += p.x;
      center.y += p.y;
    }
    center.x /= static_cast<double>(raw.task_locations.size());
    center.y /= static_cast<double>(raw.task_locations.size());
  }

  // k-means clustering of task locations; centroids become delivery points.
  Rng rng(prep.seed);
  const KMeansResult clusters =
      KMeans(raw.task_locations, prep.num_delivery_points, rng);

  std::vector<std::vector<SpatialTask>> tasks_per_cluster(
      clusters.centroids.size());
  for (size_t t = 0; t < raw.task_locations.size(); ++t) {
    const uint32_t c = clusters.labels[t];
    tasks_per_cluster[c].push_back(
        SpatialTask{c, raw.task_expiries[t], raw.task_rewards[t]});
  }
  std::vector<DeliveryPoint> dps;
  dps.reserve(clusters.centroids.size());
  for (size_t c = 0; c < clusters.centroids.size(); ++c) {
    dps.emplace_back(clusters.centroids[c], std::move(tasks_per_cluster[c]));
  }

  std::vector<Worker> workers;
  workers.reserve(raw.worker_locations.size());
  for (const Point& p : raw.worker_locations) {
    workers.push_back(Worker{p, prep.max_dp});
  }
  return Instance(center, std::move(dps), std::move(workers),
                  TravelModel(prep.speed));
}

Instance GenerateGMissionLike(const GMissionConfig& config,
                              const GMissionPrepConfig& prep) {
  return PrepareGMissionInstance(GenerateGMissionRaw(config), prep);
}

}  // namespace fta
