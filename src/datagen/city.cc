#include "datagen/city.h"

#include <cmath>
#include <cstdint>

#include "util/check.h"
#include "util/rng.h"

namespace fta {

CityWorkload GenerateCityWorkload(const CityWorkloadConfig& config,
                                  uint64_t seed) {
  FTA_CHECK_MSG(config.num_centers >= 1, "city needs >= 1 center");
  FTA_CHECK_MSG(config.ticks >= 1, "city needs >= 1 tick");
  FTA_CHECK_MSG(config.tick_period > 0.0, "tick_period must be positive");

  CityWorkload city;
  city.tick_period = config.tick_period;
  city.ticks = config.ticks;
  city.centers.reserve(config.num_centers);
  city.events.reserve(config.num_centers);

  const size_t grid = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(config.num_centers))));
  const double horizon =
      static_cast<double>(config.ticks) * config.tick_period;

  for (size_t c = 0; c < config.num_centers; ++c) {
    // Independent substream per center: the city seed never feeds a
    // center directly, so center sets of different sizes share traffic.
    const uint64_t center_seed =
        SplitMix64(seed ^ (static_cast<uint64_t>(c) + 1)).Next();
    Rng rng(center_seed);

    // Heterogeneous demand: one log-normal draw scales both rates, so a
    // busy center is busy on both sides of the market.
    const double scale =
        config.rate_sigma > 0.0 ? std::exp(config.rate_sigma * rng.Gaussian())
                                : 1.0;

    ChurnWorkloadConfig churn = config.base;
    churn.horizon_hours = horizon;
    churn.tasks.base_rate_per_hour *= scale;
    churn.worker_rate_per_hour *= scale;

    // Cell origin on the city grid; the depot sits at the cell's middle,
    // the same geometry a single-center churn instance uses.
    const double ox =
        static_cast<double>(c % grid) * config.center_spacing;
    const double oy =
        static_cast<double>(c / grid) * config.center_spacing;
    city.centers.push_back(
        Point{ox + churn.area_size / 2.0, oy + churn.area_size / 2.0});

    std::vector<StreamEvent> events =
        GenerateChurnEvents(churn, rng.Next());
    for (StreamEvent& ev : events) {
      if (ev.kind == StreamEventKind::kWorkerArrival) {
        ev.worker.location.x += ox;
        ev.worker.location.y += oy;
      } else {
        ev.location.x += ox;
        ev.location.y += oy;
      }
    }
    city.events.push_back(std::move(events));
  }
  return city;
}

}  // namespace fta
