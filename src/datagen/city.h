#ifndef FTA_DATAGEN_CITY_H_
#define FTA_DATAGEN_CITY_H_

// City-scale traffic synthesis for the multi-center assignment server: a
// grid of distribution centers, each with its own churn-event stream
// drawn from a shared template whose Poisson rates are decorrelated and
// heterogeneous (log-normal multipliers), the textbook shape of demand
// across a city — a few hot downtown centers, a long tail of quiet ones.
//
// The output is datagen-only (center points + per-center sorted event
// vectors); serve/replay.h turns it into the server's request trace.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "datagen/workload.h"
#include "geo/point.h"
#include "stream/events.h"

namespace fta {

struct CityWorkloadConfig {
  /// Distribution centers, laid out on a square grid.
  size_t num_centers = 16;
  /// Grid pitch between neighboring centers. Each center's workers and
  /// orders live in its own `base.area_size` square cell, so spacing >=
  /// area_size keeps the cells disjoint (centers are independent worlds
  /// either way — the paper solves them separately).
  double center_spacing = 20.0;
  /// Per-center churn template. `horizon_hours` is overridden to cover
  /// `ticks * tick_period`.
  ChurnWorkloadConfig base;
  /// Log-normal heterogeneity of the per-center arrival rates: center c
  /// scales the template's task and worker rates by exp(rate_sigma * g_c)
  /// with g_c standard normal. 0 = homogeneous city.
  double rate_sigma = 0.6;
  /// Replay cadence the trace is bucketed at (absolute time per tick).
  double tick_period = 0.25;
  /// Number of replay ticks the horizon covers.
  uint64_t ticks = 16;
};

/// One synthesized city: per-center event streams over a shared clock.
struct CityWorkload {
  /// Center c's location (the shard engine's depot point).
  std::vector<Point> centers;
  double tick_period = 0.25;
  uint64_t ticks = 0;
  /// events[c] is center c's stream, sorted by non-decreasing time, with
  /// all locations in the center's own cell of the city plane.
  std::vector<std::vector<StreamEvent>> events;
};

/// Deterministic in `seed`; center c draws from an independent
/// SplitMix64-derived substream, so adding centers never perturbs the
/// traffic of existing ones.
CityWorkload GenerateCityWorkload(const CityWorkloadConfig& config,
                                  uint64_t seed);

}  // namespace fta

#endif  // FTA_DATAGEN_CITY_H_
