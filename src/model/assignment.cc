#include "model/assignment.h"

#include <numeric>

#include "util/math_util.h"
#include "util/string_util.h"

namespace fta {

std::vector<double> Assignment::Payoffs(const Instance& instance) const {
  std::vector<double> payoffs(routes_.size(), 0.0);
  for (size_t w = 0; w < routes_.size(); ++w) {
    if (routes_[w].empty()) continue;
    payoffs[w] = EvaluateRoute(instance, w, routes_[w]).payoff;
  }
  return payoffs;
}

double Assignment::PayoffDifference(const Instance& instance) const {
  // No sorted view exists here (Payoffs() is computed fresh), so the
  // copy-and-sort wrapper is the right call: it sorts exactly once. Code
  // that already holds sorted payoffs uses the *Sorted overloads or the
  // game engine's payoff ledger instead (DESIGN.md §9).
  return MeanAbsolutePairwiseDifference(Payoffs(instance));
}

double Assignment::AveragePayoff(const Instance& instance) const {
  return Mean(Payoffs(instance));
}

double Assignment::TotalPayoff(const Instance& instance) const {
  const std::vector<double> p = Payoffs(instance);
  return std::accumulate(p.begin(), p.end(), 0.0);
}

size_t Assignment::num_assigned_workers() const {
  size_t n = 0;
  for (const Route& r : routes_) {
    if (!r.empty()) ++n;
  }
  return n;
}

size_t Assignment::num_covered_delivery_points() const {
  size_t n = 0;
  for (const Route& r : routes_) n += r.size();
  return n;  // Validate() guarantees disjointness, so no dedup needed.
}

size_t Assignment::num_covered_tasks(const Instance& instance) const {
  size_t n = 0;
  for (const Route& r : routes_) {
    for (uint32_t dp : r) n += instance.delivery_point(dp).task_count();
  }
  return n;
}

Status Assignment::Validate(const Instance& instance) const {
  if (routes_.size() != instance.num_workers()) {
    return Status::InvalidArgument(
        StrFormat("assignment covers %zu workers, instance has %zu",
                  routes_.size(), instance.num_workers()));
  }
  std::vector<bool> used(instance.num_delivery_points(), false);
  for (size_t w = 0; w < routes_.size(); ++w) {
    const Route& route = routes_[w];
    if (route.empty()) continue;
    if (!IsValidRouteShape(instance, route)) {
      return Status::InvalidArgument(
          StrFormat("worker %zu has a malformed route", w));
    }
    if (route.size() > instance.worker(w).max_delivery_points) {
      return Status::InvalidArgument(
          StrFormat("worker %zu exceeds maxDP (%zu > %u)", w, route.size(),
                    instance.worker(w).max_delivery_points));
    }
    for (uint32_t dp : route) {
      if (used[dp]) {
        return Status::InvalidArgument(StrFormat(
            "delivery point %u assigned to more than one worker", dp));
      }
      used[dp] = true;
    }
    const RouteEvaluation eval = EvaluateRoute(instance, w, route);
    if (!eval.feasible) {
      return Status::FailedPrecondition(
          StrFormat("worker %zu misses a deadline on its route", w));
    }
  }
  return Status::Ok();
}

std::string Assignment::ToString(const Instance& instance) const {
  std::string out;
  for (size_t w = 0; w < routes_.size(); ++w) {
    if (routes_[w].empty()) continue;
    const RouteEvaluation eval = EvaluateRoute(instance, w, routes_[w]);
    out += StrFormat("w%zu: [", w);
    for (size_t i = 0; i < routes_[w].size(); ++i) {
      out += StrFormat(i == 0 ? "dp%u" : " -> dp%u", routes_[w][i]);
    }
    out += StrFormat("] reward=%.2f time=%.2f payoff=%.3f\n",
                     eval.total_reward, eval.total_time, eval.payoff);
  }
  return out;
}

}  // namespace fta
