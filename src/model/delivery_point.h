#ifndef FTA_MODEL_DELIVERY_POINT_H_
#define FTA_MODEL_DELIVERY_POINT_H_

#include <vector>

#include "geo/point.h"
#include "model/task.h"
#include "util/math_util.h"

namespace fta {

/// A delivery point dp = (l, S) (Definition 2): a location plus the set of
/// tasks to be delivered there. The quantities the algorithms consume —
/// earliest expiration among dp.S and the summed reward — are cached.
class DeliveryPoint {
 public:
  DeliveryPoint() = default;
  /// Builds a delivery point at `location` holding `tasks`.
  DeliveryPoint(Point location, std::vector<SpatialTask> tasks)
      : location_(location), tasks_(std::move(tasks)) {
    RecomputeAggregates();
  }

  const Point& location() const { return location_; }
  const std::vector<SpatialTask>& tasks() const { return tasks_; }
  size_t task_count() const { return tasks_.size(); }

  /// dp.e: earliest expiration among the tasks here; +infinity if empty.
  double earliest_expiry() const { return earliest_expiry_; }
  /// Sum of rewards of all tasks here; 0 if empty.
  double total_reward() const { return total_reward_; }

  /// Adds a task (must target this delivery point's index; the instance
  /// enforces that) and refreshes the cached aggregates.
  void AddTask(const SpatialTask& task) {
    tasks_.push_back(task);
    earliest_expiry_ = std::min(earliest_expiry_, task.expiry);
    total_reward_ += task.reward;
  }

 private:
  void RecomputeAggregates() {
    earliest_expiry_ = kInfinity;
    total_reward_ = 0.0;
    for (const SpatialTask& t : tasks_) {
      earliest_expiry_ = std::min(earliest_expiry_, t.expiry);
      total_reward_ += t.reward;
    }
  }

  Point location_;
  std::vector<SpatialTask> tasks_;
  double earliest_expiry_ = kInfinity;
  double total_reward_ = 0.0;
};

}  // namespace fta

#endif  // FTA_MODEL_DELIVERY_POINT_H_
