#ifndef FTA_MODEL_INSTANCE_H_
#define FTA_MODEL_INSTANCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geo/point.h"
#include "geo/travel.h"
#include "model/delivery_point.h"
#include "model/worker.h"
#include "util/status.h"

namespace fta {

/// A single-distribution-center FTA problem instance: the center dc (with
/// location), its delivery points dc.DP (each with tasks dc.S split by
/// destination), and the online workers affiliated with the center.
///
/// Task assignment across centers is independent (Section VII-A), so the
/// multi-center case is simply a vector of these (see MultiCenterInstance).
class Instance {
 public:
  Instance() = default;
  /// Builds an instance; call Validate() afterwards for user-supplied data.
  Instance(Point center, std::vector<DeliveryPoint> delivery_points,
           std::vector<Worker> workers, TravelModel travel = TravelModel())
      : center_(center),
        delivery_points_(std::move(delivery_points)),
        workers_(std::move(workers)),
        travel_(travel) {}

  const Point& center() const { return center_; }
  const std::vector<DeliveryPoint>& delivery_points() const {
    return delivery_points_;
  }
  const std::vector<Worker>& workers() const { return workers_; }
  const TravelModel& travel() const { return travel_; }

  size_t num_delivery_points() const { return delivery_points_.size(); }
  size_t num_workers() const { return workers_.size(); }
  /// Total number of tasks across all delivery points (|dc.S|).
  size_t num_tasks() const;
  /// Total reward across all delivery points.
  double total_reward() const;

  const DeliveryPoint& delivery_point(size_t i) const {
    return delivery_points_[i];
  }
  const Worker& worker(size_t i) const { return workers_[i]; }

  /// Travel time from worker i's location to the center: the offset added
  /// to every arrival time of the worker's route.
  double WorkerToCenterTime(size_t worker_id) const {
    return travel_.TravelTime(workers_[worker_id].location, center_);
  }

  /// Locations of all delivery points (for building spatial indexes).
  std::vector<Point> DeliveryPointLocations() const;

  /// Checks structural invariants: task destinations point at their own
  /// delivery point, expirations are positive and finite, rewards are
  /// non-negative, maxDP >= 1.
  Status Validate() const;

 private:
  Point center_;
  std::vector<DeliveryPoint> delivery_points_;
  std::vector<Worker> workers_;
  TravelModel travel_;
};

/// A set of independent single-center instances (one per distribution
/// center); the experiment runner can solve them in parallel.
struct MultiCenterInstance {
  std::vector<Instance> centers;

  size_t num_workers() const;
  size_t num_tasks() const;
  size_t num_delivery_points() const;
};

}  // namespace fta

#endif  // FTA_MODEL_INSTANCE_H_
