#include "model/route.h"

#include <algorithm>

#include "util/check.h"
#include "util/math_util.h"

namespace fta {

RouteEvaluation EvaluateRouteFromCenter(const Instance& instance,
                                        const Route& route,
                                        double start_offset) {
  RouteEvaluation eval;
  eval.arrivals.reserve(route.size());
  if (route.empty()) {
    // The null strategy: nothing delivered, no travel, payoff 0.
    eval.feasible = true;
    eval.total_time = 0.0;
    eval.slack = kInfinity;
    return eval;
  }
  const TravelModel& travel = instance.travel();
  double t = start_offset;
  Point prev = instance.center();
  eval.feasible = true;
  eval.slack = kInfinity;
  for (uint32_t dp_id : route) {
    const DeliveryPoint& dp = instance.delivery_point(dp_id);
    t += travel.TravelTime(prev, dp.location());
    eval.arrivals.push_back(t);
    eval.slack = std::min(eval.slack, dp.earliest_expiry() - t);
    if (t > dp.earliest_expiry() + kEps) eval.feasible = false;
    eval.total_reward += dp.total_reward();
    prev = dp.location();
  }
  eval.total_time = t;
  if (eval.total_time > 0.0) {
    eval.payoff = eval.total_reward / eval.total_time;
  }
  // Evaluation contracts (Definition 5/6): travel times are nonnegative, so
  // arrival times are monotone along the route, and feasibility is exactly
  // "no deadline overshoots the tolerance", i.e. slack >= -kEps.
  FTA_DCHECK_MSG(eval.arrivals.size() == route.size(),
                 "one arrival per delivery point");
  FTA_DCHECK_MSG(
      std::is_sorted(eval.arrivals.begin(), eval.arrivals.end()),
      "arrival times must be monotone along the route");
  FTA_DCHECK_MSG(eval.arrivals.empty() || eval.arrivals.front() >= start_offset,
                 "first arrival precedes the start offset");
  FTA_DCHECK_MSG(eval.feasible == (eval.slack >= -kEps),
                 "feasibility must agree with the deadline slack");
  return eval;
}

RouteEvaluation EvaluateRoute(const Instance& instance, size_t worker_id,
                              const Route& route) {
  return EvaluateRouteFromCenter(instance, route,
                                 instance.WorkerToCenterTime(worker_id));
}

bool IsValidRouteShape(const Instance& instance, const Route& route) {
  std::vector<uint32_t> seen = route;
  std::sort(seen.begin(), seen.end());
  if (std::adjacent_find(seen.begin(), seen.end()) != seen.end()) return false;
  return seen.empty() || seen.back() < instance.num_delivery_points();
}

}  // namespace fta
