#ifndef FTA_MODEL_ROUTE_H_
#define FTA_MODEL_ROUTE_H_

#include <cstdint>
#include <vector>

#include "model/instance.h"

namespace fta {

/// A delivery point sequence R(DP_w) (Definition 5): the order in which a
/// worker visits the delivery points of a VDPS. Stored as indices into the
/// instance's delivery-point list.
using Route = std::vector<uint32_t>;

/// Everything the algorithms need to know about one worker following one
/// route, computed by EvaluateRoute below.
struct RouteEvaluation {
  /// True iff every delivery point is reached before its earliest task
  /// expiration (Definition 6 applied to this particular ordering).
  bool feasible = false;
  /// Arrival time at the final delivery point — the worker's total travel
  /// time, i.e. the payoff denominator (Definition 7). 0 for an empty route.
  double total_time = 0.0;
  /// Sum of rewards collected along the route.
  double total_reward = 0.0;
  /// Worker payoff P(w, VDPS(w)) = total_reward / total_time; 0 for an
  /// empty route (the null strategy earns nothing).
  double payoff = 0.0;
  /// min_i (e_i - arrival_i) over the route under a *center-origin* start:
  /// how much extra initial delay the route tolerates before some deadline
  /// breaks. Only meaningful when computed center-origin.
  double slack = 0.0;
  /// Arrival time at each route position (same length as the route).
  std::vector<double> arrivals;
};

/// Evaluates `route` for worker `worker_id` of `instance`: arrival times
/// per Definition 5 (worker -> center -> dp_1 -> ...), feasibility against
/// each delivery point's earliest expiry, and the payoff per Definition 7.
/// An empty route is feasible with payoff 0.
RouteEvaluation EvaluateRoute(const Instance& instance, size_t worker_id,
                              const Route& route);

/// Same, but starting at the distribution center with initial time offset
/// `start_offset` (0 gives the C-VDPS view of Section IV; pass the
/// worker-to-center travel time to re-anchor a center-origin route on a
/// worker). `slack` is reported relative to the given offset.
RouteEvaluation EvaluateRouteFromCenter(const Instance& instance,
                                        const Route& route,
                                        double start_offset);

/// True if the route visits pairwise-distinct delivery points that all
/// exist in the instance.
bool IsValidRouteShape(const Instance& instance, const Route& route);

}  // namespace fta

#endif  // FTA_MODEL_ROUTE_H_
