#include "model/builder.h"

#include "util/logging.h"

namespace fta {

InstanceBuilder& InstanceBuilder::Task(uint32_t delivery_point, double expiry,
                                       double reward) {
  FTA_CHECK_MSG(delivery_point < dps_.size(),
                "Task() before its DeliveryPoint()");
  dps_[delivery_point].AddTask(SpatialTask{delivery_point, expiry, reward});
  return *this;
}

Instance InstanceBuilder::Build() {
  StatusOr<Instance> instance = TryBuild();
  FTA_CHECK_MSG(instance.ok(), instance.status().ToString().c_str());
  return std::move(instance).value();
}

StatusOr<Instance> InstanceBuilder::TryBuild() {
  if (speed_ <= 0.0) {
    return Status::InvalidArgument("speed must be positive");
  }
  Instance instance(center_, std::move(dps_), std::move(workers_),
                    TravelModel(speed_));
  Status s = instance.Validate();
  if (!s.ok()) return s;
  return instance;
}

}  // namespace fta
