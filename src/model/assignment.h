#ifndef FTA_MODEL_ASSIGNMENT_H_
#define FTA_MODEL_ASSIGNMENT_H_

#include <string>
#include <vector>

#include "model/instance.h"
#include "model/route.h"
#include "util/status.h"

namespace fta {

/// A spatial task assignment A (Definition 8): one (possibly empty) route
/// per worker, over pairwise-disjoint delivery point sets. An empty route is
/// the null strategy.
class Assignment {
 public:
  Assignment() = default;
  /// Creates an all-null assignment for `num_workers` workers.
  explicit Assignment(size_t num_workers) : routes_(num_workers) {}

  size_t num_workers() const { return routes_.size(); }
  const Route& route(size_t worker_id) const { return routes_[worker_id]; }
  const std::vector<Route>& routes() const { return routes_; }

  /// Replaces worker `worker_id`'s route.
  void SetRoute(size_t worker_id, Route route) {
    routes_[worker_id] = std::move(route);
  }

  /// Payoff of each worker under `instance` (0 for null strategies).
  std::vector<double> Payoffs(const Instance& instance) const;

  /// The paper's three effectiveness metrics for this assignment.
  /// P_dif (Equation 2): mean absolute pairwise payoff difference.
  double PayoffDifference(const Instance& instance) const;
  /// Mean worker payoff (secondary objective).
  double AveragePayoff(const Instance& instance) const;
  /// Sum of worker payoffs (MPTA's objective).
  double TotalPayoff(const Instance& instance) const;

  /// Number of workers with a non-null route.
  size_t num_assigned_workers() const;
  /// Number of distinct delivery points covered.
  size_t num_covered_delivery_points() const;
  /// Number of tasks covered (all tasks of every covered delivery point).
  size_t num_covered_tasks(const Instance& instance) const;

  /// Verifies Definition 8: every route has a valid shape, respects its
  /// worker's maxDP, meets every deadline, and the delivery point sets are
  /// pairwise disjoint.
  Status Validate(const Instance& instance) const;

  /// Human-readable rendering: one line per non-null worker.
  std::string ToString(const Instance& instance) const;

 private:
  std::vector<Route> routes_;
};

}  // namespace fta

#endif  // FTA_MODEL_ASSIGNMENT_H_
