#include "model/route_opt.h"

#include <algorithm>

#include "util/logging.h"
#include "util/math_util.h"

namespace fta {
namespace {

/// Total-time of a candidate ordering if feasible, +inf otherwise.
double FeasibleTime(const Instance& instance, const Route& route,
                    double start_offset) {
  const RouteEvaluation eval =
      EvaluateRouteFromCenter(instance, route, start_offset);
  return eval.feasible ? eval.total_time : kInfinity;
}

}  // namespace

RouteOptResult ImproveRoute(const Instance& instance, const Route& route,
                            double start_offset) {
  FTA_CHECK_MSG(IsValidRouteShape(instance, route), "malformed route");
  RouteOptResult result;
  result.route = route;
  double best_time = FeasibleTime(instance, result.route, start_offset);

  const size_t n = result.route.size();
  if (n >= 2 && best_time < kInfinity) {
    bool improved = true;
    while (improved) {
      improved = false;
      // 2-opt: reverse [i, j].
      for (size_t i = 0; i < n - 1 && !improved; ++i) {
        for (size_t j = i + 1; j < n && !improved; ++j) {
          Route candidate = result.route;
          std::reverse(candidate.begin() + static_cast<ptrdiff_t>(i),
                       candidate.begin() + static_cast<ptrdiff_t>(j) + 1);
          const double t = FeasibleTime(instance, candidate, start_offset);
          if (t < best_time - kEps) {
            result.route = std::move(candidate);
            best_time = t;
            ++result.moves;
            improved = true;
          }
        }
      }
      // Or-opt: relocate one stop to another position.
      for (size_t i = 0; i < n && !improved; ++i) {
        for (size_t j = 0; j < n && !improved; ++j) {
          if (i == j) continue;
          Route candidate = result.route;
          const uint32_t stop = candidate[i];
          candidate.erase(candidate.begin() + static_cast<ptrdiff_t>(i));
          candidate.insert(candidate.begin() + static_cast<ptrdiff_t>(j),
                           stop);
          const double t = FeasibleTime(instance, candidate, start_offset);
          if (t < best_time - kEps) {
            result.route = std::move(candidate);
            best_time = t;
            ++result.moves;
            improved = true;
          }
        }
      }
    }
  }
  result.eval = EvaluateRouteFromCenter(instance, result.route, start_offset);
  return result;
}

}  // namespace fta
