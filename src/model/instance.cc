#include "model/instance.h"

#include <cmath>

#include "util/string_util.h"

namespace fta {

size_t Instance::num_tasks() const {
  size_t n = 0;
  for (const DeliveryPoint& dp : delivery_points_) n += dp.task_count();
  return n;
}

double Instance::total_reward() const {
  double r = 0.0;
  for (const DeliveryPoint& dp : delivery_points_) r += dp.total_reward();
  return r;
}

std::vector<Point> Instance::DeliveryPointLocations() const {
  std::vector<Point> locs;
  locs.reserve(delivery_points_.size());
  for (const DeliveryPoint& dp : delivery_points_) locs.push_back(dp.location());
  return locs;
}

Status Instance::Validate() const {
  for (size_t i = 0; i < delivery_points_.size(); ++i) {
    const DeliveryPoint& dp = delivery_points_[i];
    for (const SpatialTask& t : dp.tasks()) {
      if (t.delivery_point != i) {
        return Status::InvalidArgument(StrFormat(
            "task at delivery point %zu claims destination %u", i,
            t.delivery_point));
      }
      if (!(t.expiry > 0.0) || std::isinf(t.expiry) || std::isnan(t.expiry)) {
        return Status::InvalidArgument(StrFormat(
            "task at delivery point %zu has invalid expiry %f", i, t.expiry));
      }
      if (t.reward < 0.0 || std::isnan(t.reward)) {
        return Status::InvalidArgument(StrFormat(
            "task at delivery point %zu has invalid reward %f", i, t.reward));
      }
    }
  }
  for (size_t i = 0; i < workers_.size(); ++i) {
    if (workers_[i].max_delivery_points == 0) {
      return Status::InvalidArgument(
          StrFormat("worker %zu has maxDP == 0", i));
    }
    if (std::isnan(workers_[i].location.x) ||
        std::isnan(workers_[i].location.y)) {
      return Status::InvalidArgument(
          StrFormat("worker %zu has NaN location", i));
    }
  }
  return Status::Ok();
}

size_t MultiCenterInstance::num_workers() const {
  size_t n = 0;
  for (const Instance& c : centers) n += c.num_workers();
  return n;
}

size_t MultiCenterInstance::num_tasks() const {
  size_t n = 0;
  for (const Instance& c : centers) n += c.num_tasks();
  return n;
}

size_t MultiCenterInstance::num_delivery_points() const {
  size_t n = 0;
  for (const Instance& c : centers) n += c.num_delivery_points();
  return n;
}

}  // namespace fta
