#ifndef FTA_MODEL_BUILDER_H_
#define FTA_MODEL_BUILDER_H_

#include <utility>
#include <vector>

#include "model/instance.h"
#include "util/status.h"

namespace fta {

/// Fluent builder for hand-constructed instances (examples, tests, docs):
///
///   auto instance = InstanceBuilder(Point{2, 2})
///                       .Speed(1.0)
///                       .DeliveryPoint({3, 3}, /*tasks=*/6, /*expiry=*/8.0)
///                       .DeliveryPoint({1, 3}, 5, 8.0)
///                       .Worker({1, 2})
///                       .Worker({3, 1}, /*max_dp=*/2)
///                       .Build();
///
/// Build() validates and aborts on programming errors; TryBuild() returns
/// the Status instead for untrusted inputs.
class InstanceBuilder {
 public:
  /// Starts an instance whose distribution center sits at `center`.
  explicit InstanceBuilder(Point center) : center_(center) {}

  /// Sets the worker speed (distance per time unit).
  InstanceBuilder& Speed(double speed) {
    speed_ = speed;
    return *this;
  }

  /// Adds a delivery point with `num_tasks` unit-reward tasks all expiring
  /// at `expiry`.
  InstanceBuilder& DeliveryPoint(Point location, size_t num_tasks,
                                 double expiry) {
    const uint32_t id = static_cast<uint32_t>(dps_.size());
    std::vector<SpatialTask> tasks(num_tasks, SpatialTask{id, expiry, 1.0});
    dps_.emplace_back(location, std::move(tasks));
    return *this;
  }

  /// Adds a delivery point with explicit tasks; their delivery_point field
  /// is rewritten to this point's index.
  InstanceBuilder& DeliveryPointWithTasks(Point location,
                                          std::vector<SpatialTask> tasks) {
    const uint32_t id = static_cast<uint32_t>(dps_.size());
    for (SpatialTask& t : tasks) t.delivery_point = id;
    dps_.emplace_back(location, std::move(tasks));
    return *this;
  }

  /// Adds a single task to an existing delivery point.
  InstanceBuilder& Task(uint32_t delivery_point, double expiry,
                        double reward = 1.0);

  /// Adds a worker.
  InstanceBuilder& Worker(Point location, uint32_t max_dp = 3) {
    workers_.push_back(fta::Worker{location, max_dp});
    return *this;
  }

  /// Builds and validates; aborts on invalid data (use in tests/examples).
  /// The builder is consumed: its points and workers are moved out.
  Instance Build();
  /// Builds and validates; returns the error instead (untrusted input).
  StatusOr<Instance> TryBuild();

 private:
  Point center_;
  double speed_ = 5.0;
  std::vector<fta::DeliveryPoint> dps_;
  std::vector<fta::Worker> workers_;
};

}  // namespace fta

#endif  // FTA_MODEL_BUILDER_H_
