#ifndef FTA_MODEL_ROUTE_OPT_H_
#define FTA_MODEL_ROUTE_OPT_H_

#include "model/instance.h"
#include "model/route.h"

namespace fta {

/// Outcome of a local-search route refinement.
struct RouteOptResult {
  Route route;
  /// Center-origin evaluation of the refined route (offset 0).
  RouteEvaluation eval;
  /// Number of improving moves applied.
  int moves = 0;
};

/// Deadline-aware local search over delivery-point orderings: repeatedly
/// applies the best improving 2-opt segment reversal or Or-opt single-stop
/// relocation that keeps every deadline satisfied, until a local optimum.
/// The objective is the final arrival time (the payoff denominator of
/// Definition 7).
///
/// The exact subset DP already yields optimal orderings for the small sets
/// the paper's maxDP allows; this refiner exists for the beam-generated
/// long routes (maxDP >= 5), where the beam keeps good-but-not-optimal
/// orderings, and as an independent cross-check of the DP in tests.
/// `start_offset` anchors feasibility at a worker's center-arrival time.
RouteOptResult ImproveRoute(const Instance& instance, const Route& route,
                            double start_offset = 0.0);

}  // namespace fta

#endif  // FTA_MODEL_ROUTE_OPT_H_
