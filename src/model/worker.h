#ifndef FTA_MODEL_WORKER_H_
#define FTA_MODEL_WORKER_H_

#include <cstdint>

#include "geo/point.h"

namespace fta {

/// A worker w = (l, maxDP) (Definition 4): current location plus the
/// maximum number of delivery points the worker will accept in one
/// assignment. Online/offline mode is implicit: instances only contain
/// online workers at the assignment instant.
struct Worker {
  Point location;
  /// w.maxDP — upper bound on |VDPS(w)|.
  uint32_t max_delivery_points = 3;

  friend bool operator==(const Worker& a, const Worker& b) {
    return a.location == b.location &&
           a.max_delivery_points == b.max_delivery_points;
  }
};

}  // namespace fta

#endif  // FTA_MODEL_WORKER_H_
