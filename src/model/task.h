#ifndef FTA_MODEL_TASK_H_
#define FTA_MODEL_TASK_H_

#include <cstdint>

namespace fta {

/// A spatial task s = (dp, e, r) (Definition 3): a delivery from the
/// distribution center to delivery point `dp`, expiring at time `e`
/// (measured from the assignment instant), rewarding `r` on completion.
struct SpatialTask {
  /// Index of the delivery point this task is delivered to, within its
  /// distribution center's delivery-point list.
  uint32_t delivery_point = 0;
  /// Expiration deadline s.e: the worker must arrive at the delivery point
  /// no later than this.
  double expiry = 0.0;
  /// Reward s.r earned by the worker completing the task. The paper's
  /// experiments fix r = 1.
  double reward = 1.0;

  friend bool operator==(const SpatialTask& a, const SpatialTask& b) {
    return a.delivery_point == b.delivery_point && a.expiry == b.expiry &&
           a.reward == b.reward;
  }
};

}  // namespace fta

#endif  // FTA_MODEL_TASK_H_
