#ifndef FTA_OBS_WINDOW_H_
#define FTA_OBS_WINDOW_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/sketch.h"
#include "util/mutex.h"

namespace fta {
namespace obs {

/// Merged reading over a rolling window: the sealed epochs currently in
/// the ring plus the in-progress epoch. A plain value — compute quantiles
/// and rates from it without holding the window's lock.
struct WindowStats {
  /// Order-invariant merge of the covered epochs' sketches.
  SketchData merged;
  /// Sealed epochs covered (excludes the in-progress epoch).
  size_t epochs = 0;
  /// Ring capacity (the window length N).
  size_t capacity = 0;

  uint64_t count() const { return merged.count(); }
  double sum() const { return merged.sum(); }
  double Quantile(double q) const { return merged.ValueAtQuantile(q); }
  /// Mean observations per sealed epoch — the windowed rate. The
  /// in-progress epoch's observations are included in the numerator, so
  /// the first epoch reads a rate before any Advance().
  double RatePerEpoch() const {
    const size_t denom = epochs > 0 ? epochs : 1;
    return static_cast<double>(merged.count()) /
           static_cast<double>(denom);
  }
};

/// Rolling-window aggregator: a ring of the last N epoch sketches.
///
/// Epoch advancement is CALLER-driven — the streaming dispatcher calls
/// Advance() once per tick, a server would call it once per second — so
/// there is no wall clock anywhere in this class and a replayed run
/// produces bit-identical window contents (the determinism contract
/// fta_lint's wall-clock-read rule enforces for src/obs/ and src/stream/).
///
/// Observe() records into the in-progress epoch; Advance() seals it into
/// the ring (evicting the oldest epoch once N are held) and starts a fresh
/// one. Stats() merges the sealed epochs oldest-first plus the in-progress
/// epoch — every cell is a uint64, so the merged reading is independent of
/// the merge order and of how observations were interleaved with reads.
///
/// Thread safety: all three operations take the window's mutex. The lock
/// is uncontended in the streaming loop (one writer, occasional exporter
/// reads) and epoch-granular, never per-observation-hot-path.
class RollingWindow {
 public:
  /// `num_epochs` is the window length N (>= 1, checked);
  /// `relative_accuracy` parameterizes every epoch sketch.
  explicit RollingWindow(size_t num_epochs, double relative_accuracy = 0.01);

  /// Records into the in-progress epoch.
  void Observe(double value) FTA_EXCLUDES(mu_);

  /// Seals the in-progress epoch into the ring and starts a new one.
  /// Epoch boundaries are exact: an observation belongs to precisely the
  /// epoch during which it was recorded.
  void Advance() FTA_EXCLUDES(mu_);

  /// Merged reading over the sealed epochs plus the in-progress epoch.
  WindowStats Stats() const FTA_EXCLUDES(mu_);

  size_t capacity() const { return capacity_; }
  /// Sealed epochs currently held (saturates at capacity()).
  size_t epochs_sealed() const FTA_EXCLUDES(mu_);

  void Reset() FTA_EXCLUDES(mu_);

 private:
  const size_t capacity_;
  const SketchLayout layout_;

  mutable Mutex mu_;
  /// Sealed epochs, ring-ordered. Everything below shares one epoch-
  /// granular lock (see class comment) and is compile-checked against it.
  std::vector<SketchData> ring_ FTA_GUARDED_BY(mu_);
  size_t next_ FTA_GUARDED_BY(mu_) = 0;    // ring slot the next seal writes
  size_t sealed_ FTA_GUARDED_BY(mu_) = 0;  // min(total seals, capacity_)
  SketchData current_ FTA_GUARDED_BY(mu_);  // in-progress epoch
};

}  // namespace obs
}  // namespace fta

#endif  // FTA_OBS_WINDOW_H_
