#ifndef FTA_OBS_METRICS_H_
#define FTA_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/sketch.h"
#include "util/mutex.h"

namespace fta {
namespace obs {

class JsonWriter;

/// Process-wide metrics registry: named counters, gauges, and fixed-bucket
/// histograms.
///
/// Write path: every counter/histogram spreads its updates over a fixed set
/// of cache-line-padded atomic cells; a thread picks its cell once (hash of
/// its id) and then increments lock-free with relaxed ordering. There is no
/// per-update locking and no false sharing between pool workers.
///
/// Read path: Snapshot() folds the cells with unsigned-integer addition —
/// commutative AND associative, so the merged reading is exactly the same
/// no matter how observations were spread over threads or in what order
/// cells are folded. To keep that guarantee, histograms accumulate their
/// value sum in integral micro-units (value * 1e6, rounded per
/// observation) rather than floating point: double addition is not
/// associative, micro-unit addition is. Count-like metrics driven by a
/// deterministic workload therefore snapshot bit-identically at any thread
/// count; wall-time-valued metrics vary run to run but never because of the
/// merge.
///
/// Registration (GetCounter etc.) takes a mutex; hot paths must cache the
/// returned reference (registered metrics are never deleted, only Reset).

/// Cells per sharded metric. A power of two so the thread-hash modulo is
/// cheap; 16 is comfortably above the pool sizes this library uses.
inline constexpr size_t kMetricCells = 16;

/// The cell of the calling thread (stable for the thread's lifetime).
size_t ThisThreadCell();

/// Monotonically increasing event count.
class Counter {
 public:
  void Add(uint64_t delta) {
    cells_[ThisThreadCell()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Order-invariant fold of the cells.
  uint64_t Value() const;
  void Reset();

 private:
  friend class MetricsRegistry;
  Counter() = default;
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  Cell cells_[kMetricCells];
};

/// Last-write-wins instantaneous value. Unsharded: Set is a plain atomic
/// store. Use for configuration-like readings (thread counts, sizes) set
/// from one thread; concurrent setters race by design (last write wins).
class Gauge {
 public:
  void Set(double value) { v_.store(value, std::memory_order_relaxed); }
  double Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<double> v_{0.0};
};

/// Fixed-boundary histogram. Bucket i counts observations with
/// value <= bounds[i] (first matching bucket); one implicit overflow bucket
/// catches everything above the last bound. The value sum is kept in
/// micro-units so merges stay order-invariant (see file comment).
class Histogram {
 public:
  void Observe(double value);

  /// bounds().size() + 1 entries; the last is the overflow bucket.
  std::vector<uint64_t> BucketCounts() const;
  const std::vector<double>& bounds() const { return bounds_; }
  uint64_t TotalCount() const;
  /// Sum of observed values (micro-unit precision).
  double Sum() const;
  void Reset();

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);

  struct alignas(64) Cell {
    std::vector<std::atomic<uint64_t>> buckets;
    std::atomic<uint64_t> count{0};
    std::atomic<int64_t> sum_micros{0};
  };

  std::vector<double> bounds_;  // ascending, strictly increasing
  std::vector<Cell> cells_;     // kMetricCells entries
};

/// Standard exponential bucket boundaries: start, start*factor, ... (count
/// bounds). The usual choice for millisecond timings.
std::vector<double> ExponentialBounds(double start, double factor,
                                      size_t count);

/// Point-in-time reading of one metric.
struct MetricReading {
  enum class Kind { kCounter, kGauge, kHistogram, kSketch };
  std::string name;
  Kind kind = Kind::kCounter;
  uint64_t counter = 0;  // kCounter
  double gauge = 0.0;    // kGauge
  // kHistogram:
  std::vector<double> bounds;
  std::vector<uint64_t> bucket_counts;
  uint64_t count = 0;
  double sum = 0.0;
  // kSketch: the merged sketch (count/sum above mirror it for uniform
  // access; quantiles read via sketch.ValueAtQuantile).
  SketchData sketch;

  bool operator==(const MetricReading&) const = default;
};

/// A full registry snapshot, sorted by metric name (the registry map is
/// ordered, so iteration order never depends on registration order).
struct MetricsSnapshot {
  std::vector<MetricReading> metrics;

  const MetricReading* Find(std::string_view name) const;
  /// {"metric name": {"kind": ..., ...}, ...} — see DESIGN.md §7.
  std::string ToJson() const;
  /// Emits the same object into an in-progress document (after Key()).
  void AppendTo(JsonWriter& w) const;
  /// The counter subset (the deterministic readings; timing-valued gauges
  /// and histograms are excluded). Used by determinism tests.
  std::vector<MetricReading> Counters() const;
};

class MetricsRegistry {
 public:
  /// The process-wide registry.
  static MetricsRegistry& Global();

  /// Finds or creates. The returned reference lives until process exit;
  /// hot paths should cache it. Re-registering an existing histogram name
  /// ignores the new bounds (first registration wins; pinned by
  /// MetricsTest.HistogramReRegistrationKeepsFirstBounds). Sketches follow
  /// the same rule for their relative accuracy.
  Counter& GetCounter(const std::string& name) FTA_EXCLUDES(mu_);
  Gauge& GetGauge(const std::string& name) FTA_EXCLUDES(mu_);
  Histogram& GetHistogram(const std::string& name,
                          const std::vector<double>& bounds)
      FTA_EXCLUDES(mu_);
  QuantileSketch& GetSketch(const std::string& name,
                            double relative_accuracy = 0.01)
      FTA_EXCLUDES(mu_);

  /// Order-invariant merged reading of every registered metric.
  MetricsSnapshot Snapshot() const FTA_EXCLUDES(mu_);

  /// Zeroes every metric (registrations survive). Callers must make sure
  /// no concurrent writers are active (quiesce pools first) — a reset
  /// racing an Add would produce an unspecified but memory-safe reading.
  void Reset() FTA_EXCLUDES(mu_);

 private:
  MetricsRegistry() = default;

  /// Guards the registration maps only. The metric cells themselves stay
  /// lock-free by design (relaxed atomics, order-invariant folds — see the
  /// file comment); a returned Counter& outlives the lock because
  /// registered metrics are never deleted.
  mutable Mutex mu_;
  // std::map: stable pointers + name-ordered snapshots.
  std::map<std::string, std::unique_ptr<Counter>> counters_
      FTA_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ FTA_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      FTA_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<QuantileSketch>> sketches_
      FTA_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace fta

#endif  // FTA_OBS_METRICS_H_
