#ifndef FTA_OBS_PROMETHEUS_H_
#define FTA_OBS_PROMETHEUS_H_

#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "obs/window.h"

namespace fta {
namespace obs {

/// Prometheus text-exposition rendering of the metrics layer.
///
/// Pure functions over snapshot values: rendering never touches the live
/// registry, takes no locks beyond the snapshot the caller already made,
/// and reads no clock — the output is a deterministic function of its
/// inputs, so a replayed run publishes byte-identical pages.
///
/// Mapping:
///  - Counter   -> `# TYPE <name>_total counter` + one sample
///  - Gauge     -> `# TYPE <name> gauge` + one sample
///  - Histogram -> `# TYPE <name> histogram`, cumulative `le` buckets
///                 (one per bound plus `+Inf`), `_sum`, `_count`
///  - Sketch    -> `# TYPE <name> summary`, quantile samples for
///                 0.5 / 0.9 / 0.99 read from the sketch, `_sum`, `_count`

/// Sanitizes a registry metric name ("stream/tick_ms") into a Prometheus
/// metric name ("fta_stream_tick_ms"): prefixes "fta_", maps every
/// character outside [a-zA-Z0-9_:] to '_'.
std::string PrometheusName(std::string_view name);

/// Renders a full snapshot as a Prometheus text-format page (version
/// 0.0.4, the format every Prometheus scraper accepts).
std::string ToPrometheusText(const MetricsSnapshot& snapshot);

/// Appends one rolling window as a gauge family
/// `fta_window_<name>{stat="..."}` with stats p50/p90/p99/count/sum/
/// rate_per_epoch/epochs. Windows live outside the registry, so they are
/// exported separately from ToPrometheusText.
void AppendWindowSummary(std::string_view name, const WindowStats& stats,
                         std::string& out);

/// Publishes `text` at `path` atomically: writes `path`.tmp then renames
/// over `path`, so a concurrent reader (scraper, tail, metrics-serve)
/// never observes a torn page. Returns false on I/O failure.
bool WriteTextFileAtomic(const std::string& path, const std::string& text);

}  // namespace obs
}  // namespace fta

#endif  // FTA_OBS_PROMETHEUS_H_
