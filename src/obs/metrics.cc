#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "obs/json.h"
#include "util/logging.h"

namespace fta {
namespace obs {

size_t ThisThreadCell() {
  thread_local const size_t cell =
      std::hash<std::thread::id>()(std::this_thread::get_id()) %
      kMetricCells;
  return cell;
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Cell& cell : cells_) {
    total += cell.v.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Cell& cell : cells_) cell.v.store(0, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), cells_(kMetricCells) {
  FTA_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                "histogram bounds must be ascending");
  for (Cell& cell : cells_) {
    cell.buckets = std::vector<std::atomic<uint64_t>>(bounds_.size() + 1);
  }
}

void Histogram::Observe(double value) {
  const size_t bucket =
      static_cast<size_t>(std::upper_bound(bounds_.begin(), bounds_.end(),
                                           value) -
                          bounds_.begin());
  // upper_bound gives the first bound > value; a value exactly on a bound
  // must land in that bound's bucket (<= semantics), so step back when the
  // previous bound equals the value.
  const size_t le_bucket =
      (bucket > 0 && bounds_[bucket - 1] == value) ? bucket - 1 : bucket;
  Cell& cell = cells_[ThisThreadCell()];
  cell.buckets[le_bucket].fetch_add(1, std::memory_order_relaxed);
  cell.count.fetch_add(1, std::memory_order_relaxed);
  cell.sum_micros.fetch_add(static_cast<int64_t>(std::llround(value * 1e6)),
                            std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(bounds_.size() + 1, 0);
  for (const Cell& cell : cells_) {
    for (size_t b = 0; b < out.size(); ++b) {
      out[b] += cell.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

uint64_t Histogram::TotalCount() const {
  uint64_t total = 0;
  for (const Cell& cell : cells_) {
    total += cell.count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  int64_t micros = 0;
  for (const Cell& cell : cells_) {
    micros += cell.sum_micros.load(std::memory_order_relaxed);
  }
  return static_cast<double>(micros) * 1e-6;
}

void Histogram::Reset() {
  for (Cell& cell : cells_) {
    for (auto& b : cell.buckets) b.store(0, std::memory_order_relaxed);
    cell.count.store(0, std::memory_order_relaxed);
    cell.sum_micros.store(0, std::memory_order_relaxed);
  }
}

std::vector<double> ExponentialBounds(double start, double factor,
                                      size_t count) {
  FTA_CHECK_MSG(start > 0 && factor > 1.0, "bad exponential bucket spec");
  std::vector<double> bounds;
  bounds.reserve(count);
  double b = start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

const MetricReading* MetricsSnapshot::Find(std::string_view name) const {
  for (const MetricReading& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

std::vector<MetricReading> MetricsSnapshot::Counters() const {
  std::vector<MetricReading> out;
  for (const MetricReading& m : metrics) {
    if (m.kind == MetricReading::Kind::kCounter) out.push_back(m);
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  JsonWriter w;
  AppendTo(w);
  return w.str();
}

void MetricsSnapshot::AppendTo(JsonWriter& w) const {
  w.BeginObject();
  for (const MetricReading& m : metrics) {
    w.Key(m.name);
    w.BeginObject();
    switch (m.kind) {
      case MetricReading::Kind::kCounter:
        w.Key("kind");
        w.String("counter");
        w.Key("value");
        w.UInt(m.counter);
        break;
      case MetricReading::Kind::kGauge:
        w.Key("kind");
        w.String("gauge");
        w.Key("value");
        w.Double(m.gauge);
        break;
      case MetricReading::Kind::kHistogram:
        w.Key("kind");
        w.String("histogram");
        w.Key("bounds");
        w.BeginArray();
        for (double b : m.bounds) w.Double(b);
        w.EndArray();
        w.Key("buckets");
        w.BeginArray();
        for (uint64_t c : m.bucket_counts) w.UInt(c);
        w.EndArray();
        w.Key("count");
        w.UInt(m.count);
        w.Key("sum");
        w.Double(m.sum);
        break;
      case MetricReading::Kind::kSketch:
        w.Key("kind");
        w.String("sketch");
        w.Key("relative_accuracy");
        w.Double(m.sketch.layout().relative_accuracy);
        w.Key("zero_count");
        w.UInt(m.sketch.zero_count());
        w.Key("count");
        w.UInt(m.count);
        w.Key("sum");
        w.Double(m.sum);
        w.Key("buckets");
        w.BeginArray();
        for (size_t i = 0; i < m.sketch.bucket_indices().size(); ++i) {
          w.BeginArray();
          w.Int(m.sketch.bucket_indices()[i]);
          w.UInt(m.sketch.bucket_counts()[i]);
          w.EndArray();
        }
        w.EndArray();
        w.Key("p50");
        w.Double(m.sketch.ValueAtQuantile(0.5));
        w.Key("p90");
        w.Double(m.sketch.ValueAtQuantile(0.9));
        w.Key("p99");
        w.Double(m.sketch.ValueAtQuantile(0.99));
        break;
    }
    w.EndObject();
  }
  w.EndObject();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot.reset(new Counter());
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(&mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot.reset(new Gauge());
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds) {
  MutexLock lock(&mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot.reset(new Histogram(bounds));
  return *slot;
}

QuantileSketch& MetricsRegistry::GetSketch(const std::string& name,
                                           double relative_accuracy) {
  MutexLock lock(&mu_);
  std::unique_ptr<QuantileSketch>& slot = sketches_[name];
  if (slot == nullptr) slot.reset(new QuantileSketch(relative_accuracy));
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(&mu_);
  MetricsSnapshot snapshot;
  snapshot.metrics.reserve(counters_.size() + gauges_.size() +
                           histograms_.size() + sketches_.size());
  // One name-ordered pass per kind, then a final merge by name so the
  // snapshot order is a pure function of the metric names.
  for (const auto& [name, counter] : counters_) {
    MetricReading m;
    m.name = name;
    m.kind = MetricReading::Kind::kCounter;
    m.counter = counter->Value();
    snapshot.metrics.push_back(std::move(m));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricReading m;
    m.name = name;
    m.kind = MetricReading::Kind::kGauge;
    m.gauge = gauge->Value();
    snapshot.metrics.push_back(std::move(m));
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricReading m;
    m.name = name;
    m.kind = MetricReading::Kind::kHistogram;
    m.bounds = histogram->bounds();
    m.bucket_counts = histogram->BucketCounts();
    m.count = histogram->TotalCount();
    m.sum = histogram->Sum();
    snapshot.metrics.push_back(std::move(m));
  }
  for (const auto& [name, sketch] : sketches_) {
    MetricReading m;
    m.name = name;
    m.kind = MetricReading::Kind::kSketch;
    m.sketch = sketch->Snapshot();
    m.count = m.sketch.count();
    m.sum = m.sketch.sum();
    snapshot.metrics.push_back(std::move(m));
  }
  std::sort(snapshot.metrics.begin(), snapshot.metrics.end(),
            [](const MetricReading& a, const MetricReading& b) {
              return a.name < b.name;
            });
  return snapshot;
}

void MetricsRegistry::Reset() {
  MutexLock lock(&mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
  for (auto& [name, sketch] : sketches_) sketch->Reset();
}

}  // namespace obs
}  // namespace fta
