#ifndef FTA_OBS_JSON_H_
#define FTA_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace fta {
namespace obs {

/// Streaming JSON writer with automatic comma placement and string
/// escaping. The observability exporters (Chrome traces, metric snapshots,
/// run reports) all emit through this one writer so the quoting and number
/// formatting rules live in a single place.
///
/// Usage:
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("entries"); w.UInt(catalog.num_entries());
///   w.Key("spans"); w.BeginArray(); ... w.EndArray();
///   w.EndObject();
///   std::string text = w.str();
///
/// Doubles are printed with round-trip precision (%.17g trimmed); NaN and
/// infinities — which JSON cannot represent — are emitted as null.
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Object key; must be followed by exactly one value (or container).
  void Key(std::string_view key);

  void String(std::string_view value);
  void Int(int64_t value);
  void UInt(uint64_t value);
  void Double(double value);
  void Bool(bool value);
  void Null();

  /// The document so far. Valid once every container has been closed.
  const std::string& str() const { return out_; }

  /// Escapes `value` per JSON string rules (without surrounding quotes).
  static std::string Escape(std::string_view value);

 private:
  /// Emits the pending comma/nothing before a value or key.
  void Separate();

  std::string out_;
  /// One entry per open container: the number of values emitted so far.
  std::vector<size_t> counts_;
  bool after_key_ = false;
};

/// Parsed JSON document node. Object member order is preserved.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
  /// Find + numeric coercion helpers for terse test/report code. The
  /// fallback is returned when the key is absent or the wrong type.
  double NumberOr(std::string_view key, double fallback) const;
  std::string StringOr(std::string_view key, std::string fallback) const;
  bool BoolOr(std::string_view key, bool fallback) const;
};

/// Strict recursive-descent parser for the JSON this library emits (and
/// any standard document without \u surrogate pairs beyond the BMP).
/// Rejects trailing garbage, unterminated containers, and bad escapes.
StatusOr<JsonValue> ParseJson(std::string_view text);

}  // namespace obs
}  // namespace fta

#endif  // FTA_OBS_JSON_H_
