#include "obs/window.h"

#include <utility>

#include "util/check.h"

namespace fta {
namespace obs {

RollingWindow::RollingWindow(size_t num_epochs, double relative_accuracy)
    : capacity_(num_epochs),
      layout_(relative_accuracy),
      current_(layout_) {
  FTA_CHECK_MSG(num_epochs >= 1, "rolling window needs >= 1 epoch");
  ring_.reserve(capacity_);
}

void RollingWindow::Observe(double value) {
  MutexLock lock(&mu_);
  current_.Observe(value);
}

void RollingWindow::Advance() {
  MutexLock lock(&mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(current_));
  } else {
    ring_[next_] = std::move(current_);
  }
  next_ = (next_ + 1) % capacity_;
  sealed_ = ring_.size();
  current_ = SketchData(layout_);
}

WindowStats RollingWindow::Stats() const {
  MutexLock lock(&mu_);
  WindowStats stats;
  stats.merged = SketchData(layout_);
  stats.epochs = sealed_;
  stats.capacity = capacity_;
  // Oldest-first over the ring; the merge itself is order-invariant, the
  // fixed order just makes the walk auditable.
  for (size_t i = 0; i < ring_.size(); ++i) {
    const size_t slot = ring_.size() < capacity_
                            ? i
                            : (next_ + i) % capacity_;
    stats.merged.Merge(ring_[slot]);
  }
  stats.merged.Merge(current_);
  return stats;
}

size_t RollingWindow::epochs_sealed() const {
  MutexLock lock(&mu_);
  return sealed_;
}

void RollingWindow::Reset() {
  MutexLock lock(&mu_);
  ring_.clear();
  next_ = 0;
  sealed_ = 0;
  current_ = SketchData(layout_);
}

}  // namespace obs
}  // namespace fta
