#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <fstream>

#include "obs/json.h"

namespace fta {
namespace obs {
namespace {

std::atomic<bool> g_tracing_enabled{false};

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

/// The calling thread's buffer pointer. A shared_ptr so the recorder keeps
/// a thread's spans alive after the thread (e.g. a pool worker) exits.
thread_local std::shared_ptr<TraceRecorder::ThreadBuffer> tls_buffer;  // NOLINT

}  // namespace

bool TracingEnabled() {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

void SetTracingEnabled(bool enabled) {
  // Touch the epoch before the first span can, so span timestamps are
  // measured from (at latest) the moment tracing was first switched on.
  TraceEpoch();
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

uint64_t TraceNowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - TraceEpoch())
          .count());
}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

TraceRecorder::ThreadBuffer& TraceRecorder::LocalBuffer() {
  if (tls_buffer == nullptr) {
    auto buffer = std::make_shared<ThreadBuffer>();
    MutexLock lock(&mu_);
    buffer->tid = static_cast<uint32_t>(buffers_.size());
    buffers_.push_back(buffer);
    tls_buffer = std::move(buffer);
  }
  return *tls_buffer;
}

void TraceRecorder::Record(std::string name, uint64_t start_us,
                           uint64_t dur_us, uint32_t depth) {
  ThreadBuffer& buffer = LocalBuffer();
  SpanEvent event;
  event.name = std::move(name);
  event.start_us = start_us;
  event.dur_us = dur_us;
  event.tid = buffer.tid;
  event.depth = depth;
  MutexLock lock(&buffer.mu);
  buffer.events.push_back(std::move(event));
}

void TraceRecorder::Clear() {
  MutexLock lock(&mu_);
  for (const auto& buffer : buffers_) {
    MutexLock buffer_lock(&buffer->mu);
    buffer->events.clear();
  }
}

std::vector<SpanEvent> TraceRecorder::Snapshot() const {
  std::vector<SpanEvent> out;
  {
    MutexLock lock(&mu_);
    for (const auto& buffer : buffers_) {
      MutexLock buffer_lock(&buffer->mu);
      out.insert(out.end(), buffer->events.begin(), buffer->events.end());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.depth < b.depth;
            });
  return out;
}

size_t TraceRecorder::num_events() const {
  MutexLock lock(&mu_);
  size_t n = 0;
  for (const auto& buffer : buffers_) {
    MutexLock buffer_lock(&buffer->mu);
    n += buffer->events.size();
  }
  return n;
}

uint32_t TraceRecorder::CurrentDepth() {
  return Global().LocalBuffer().depth;
}

std::string TraceRecorder::ToChromeJson() const {
  const std::vector<SpanEvent> events = Snapshot();
  uint32_t max_tid = 0;
  for (const SpanEvent& e : events) max_tid = std::max(max_tid, e.tid);

  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit");
  w.String("ms");
  w.Key("traceEvents");
  w.BeginArray();
  if (!events.empty()) {
    for (uint32_t t = 0; t <= max_tid; ++t) {
      w.BeginObject();
      w.Key("ph");
      w.String("M");
      w.Key("pid");
      w.Int(0);
      w.Key("tid");
      w.UInt(t);
      w.Key("name");
      w.String("thread_name");
      w.Key("args");
      w.BeginObject();
      w.Key("name");
      w.String(t == 0 ? "fta-main" : "fta-worker-" + std::to_string(t));
      w.EndObject();
      w.EndObject();
    }
  }
  for (const SpanEvent& e : events) {
    w.BeginObject();
    w.Key("ph");
    w.String("X");
    w.Key("pid");
    w.Int(0);
    w.Key("tid");
    w.UInt(e.tid);
    w.Key("name");
    w.String(e.name);
    w.Key("cat");
    w.String("fta");
    w.Key("ts");
    w.UInt(e.start_us);
    w.Key("dur");
    w.UInt(e.dur_us);
    w.Key("args");
    w.BeginObject();
    w.Key("depth");
    w.UInt(e.depth);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

Status TraceRecorder::WriteChromeJson(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out << ToChromeJson() << '\n';
  out.close();
  if (!out) return Status::IoError("failed writing '" + path + "'");
  return Status::Ok();
}

void ScopedSpan::Open(std::string name) {
  name_ = std::move(name);
  TraceRecorder::ThreadBuffer& buffer = TraceRecorder::Global().LocalBuffer();
  depth_ = buffer.depth++;
  start_us_ = TraceNowMicros();
  open_ = true;
}

void ScopedSpan::Close() {
  const uint64_t end_us = TraceNowMicros();
  TraceRecorder::ThreadBuffer& buffer = TraceRecorder::Global().LocalBuffer();
  // Balanced even if tracing was toggled mid-span.
  if (buffer.depth > 0) --buffer.depth;
  TraceRecorder::Global().Record(std::move(name_), start_us_,
                                 end_us - start_us_, depth_);
  open_ = false;
}

}  // namespace obs
}  // namespace fta
