#ifndef FTA_OBS_TRACE_H_
#define FTA_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/status.h"

namespace fta {
namespace obs {

/// Hierarchical scoped trace spans.
///
/// `FTA_SPAN("vdps/enumerate");` opens a span that closes at scope exit.
/// Spans nest naturally (a thread-local depth counter records the nesting
/// level) and are thread-aware: every pool worker records into its own
/// buffer, so instrumenting a parallel fan-out attributes work to the
/// thread that did it.
///
/// Cost model:
///  - compile-time off (-DFTA_OBS_NO_TRACE): the macro expands to nothing.
///  - runtime off (default): one relaxed atomic load per span; no clock
///    reads, no allocation, no locking.
///  - runtime on (SetTracingEnabled(true)): two steady-clock reads plus one
///    push into the calling thread's buffer under that buffer's (otherwise
///    uncontended) mutex.
///
/// Tracing is observational only: enabling it never changes assignments,
/// catalogs, or metric counts. Export is Chrome trace-event JSON
/// (chrome://tracing or https://ui.perfetto.dev).

/// One closed span.
struct SpanEvent {
  std::string name;
  /// Microseconds since the process trace epoch (steady clock).
  uint64_t start_us = 0;
  uint64_t dur_us = 0;
  /// Recorder-assigned thread index (0 = first thread that ever traced).
  uint32_t tid = 0;
  /// Nesting depth on its thread at open (0 = outermost).
  uint32_t depth = 0;
};

bool TracingEnabled();
void SetTracingEnabled(bool enabled);

/// Microseconds since the trace epoch (process-wide steady-clock zero).
uint64_t TraceNowMicros();

/// Process-wide span store: per-thread buffers registered on first use.
class TraceRecorder {
 public:
  static TraceRecorder& Global();

  /// Appends one closed span to the calling thread's buffer.
  void Record(std::string name, uint64_t start_us, uint64_t dur_us,
              uint32_t depth);

  /// Drops every recorded span (buffers and thread ids survive).
  void Clear();

  /// All spans so far, sorted by (start, tid, depth) — a stable order for
  /// tests and reports. Safe to call while other threads record.
  std::vector<SpanEvent> Snapshot() const;

  size_t num_events() const;

  /// Chrome trace-event JSON ("X" complete events + thread-name metadata).
  std::string ToChromeJson() const;
  Status WriteChromeJson(const std::string& path) const;

  /// Nesting depth of the calling thread's currently open spans.
  static uint32_t CurrentDepth();

  /// Per-thread span store. Public only so the implementation's
  /// thread_local can name it; not part of the API.
  struct ThreadBuffer {
    Mutex mu;
    std::vector<SpanEvent> events FTA_GUARDED_BY(mu);
    /// Thread index; written once at registration (under the recorder's
    /// mu_), read-only afterwards, so it needs no lock.
    uint32_t tid = 0;
    /// Open-span depth; touched only by the owning thread.
    uint32_t depth = 0;
  };

 private:
  friend class ScopedSpan;

  TraceRecorder() = default;
  /// The calling thread's buffer, registered on first use.
  ThreadBuffer& LocalBuffer();

  mutable Mutex mu_;  // guards buffers_ (registration + snapshot)
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_ FTA_GUARDED_BY(mu_);
};

/// RAII span. Use through FTA_SPAN; direct construction is for the rare
/// dynamic-name case (e.g. one span per sweep point).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (TracingEnabled()) Open(name);
  }
  explicit ScopedSpan(std::string name) {
    if (TracingEnabled()) Open(std::move(name));
  }
  ~ScopedSpan() {
    if (open_) Close();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void Open(std::string name);
  void Close();

  std::string name_;
  uint64_t start_us_ = 0;
  uint32_t depth_ = 0;
  bool open_ = false;
};

}  // namespace obs
}  // namespace fta

#define FTA_OBS_CONCAT_INNER(a, b) a##b
#define FTA_OBS_CONCAT(a, b) FTA_OBS_CONCAT_INNER(a, b)

#if defined(FTA_OBS_NO_TRACE)
/// Compile-time no-op path: spans vanish entirely.
#define FTA_SPAN(name) \
  do {                 \
  } while (false)
#else
/// Opens a span that closes at the end of the enclosing scope.
#define FTA_SPAN(name) \
  ::fta::obs::ScopedSpan FTA_OBS_CONCAT(fta_span_, __LINE__)(name)
#endif

#endif  // FTA_OBS_TRACE_H_
