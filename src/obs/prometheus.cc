#include "obs/prometheus.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace fta {
namespace obs {

namespace {

/// Shortest round-tripping decimal, same rule as JsonWriter::Double, so a
/// value prints identically on the JSON and Prometheus sides.
std::string FormatDouble(double value) {
  if (!std::isfinite(value)) {
    if (std::isnan(value)) return "NaN";
    return value > 0 ? "+Inf" : "-Inf";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  for (int precision = 1; precision < 17; ++precision) {
    char candidate[32];
    std::snprintf(candidate, sizeof(candidate), "%.*g", precision, value);
    if (std::strtod(candidate, nullptr) == value) return candidate;
  }
  return buf;
}

void AppendSample(std::string& out, const std::string& name,
                  std::string_view labels, double value) {
  out += name;
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  out += ' ';
  out += FormatDouble(value);
  out += '\n';
}

void AppendSample(std::string& out, const std::string& name,
                  std::string_view labels, uint64_t value) {
  out += name;
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  out += ' ';
  out += std::to_string(value);
  out += '\n';
}

void AppendType(std::string& out, const std::string& name,
                std::string_view type) {
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

}  // namespace

std::string PrometheusName(std::string_view name) {
  std::string out = "fta_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string ToPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const MetricReading& m : snapshot.metrics) {
    const std::string name = PrometheusName(m.name);
    switch (m.kind) {
      case MetricReading::Kind::kCounter: {
        const std::string total = name + "_total";
        AppendType(out, total, "counter");
        AppendSample(out, total, "", m.counter);
        break;
      }
      case MetricReading::Kind::kGauge: {
        AppendType(out, name, "gauge");
        AppendSample(out, name, "", m.gauge);
        break;
      }
      case MetricReading::Kind::kHistogram: {
        AppendType(out, name, "histogram");
        uint64_t cumulative = 0;
        for (size_t b = 0; b < m.bounds.size(); ++b) {
          cumulative += m.bucket_counts[b];
          AppendSample(out, name + "_bucket",
                       "le=\"" + FormatDouble(m.bounds[b]) + "\"",
                       cumulative);
        }
        AppendSample(out, name + "_bucket", "le=\"+Inf\"", m.count);
        AppendSample(out, name + "_sum", "", m.sum);
        AppendSample(out, name + "_count", "", m.count);
        break;
      }
      case MetricReading::Kind::kSketch: {
        AppendType(out, name, "summary");
        AppendSample(out, name, "quantile=\"0.5\"",
                     m.sketch.ValueAtQuantile(0.5));
        AppendSample(out, name, "quantile=\"0.9\"",
                     m.sketch.ValueAtQuantile(0.9));
        AppendSample(out, name, "quantile=\"0.99\"",
                     m.sketch.ValueAtQuantile(0.99));
        AppendSample(out, name + "_sum", "", m.sum);
        AppendSample(out, name + "_count", "", m.count);
        break;
      }
    }
  }
  return out;
}

void AppendWindowSummary(std::string_view name, const WindowStats& stats,
                         std::string& out) {
  const std::string family = PrometheusName(std::string("window_") +
                                            std::string(name));
  AppendType(out, family, "gauge");
  AppendSample(out, family, "stat=\"p50\"", stats.Quantile(0.5));
  AppendSample(out, family, "stat=\"p90\"", stats.Quantile(0.9));
  AppendSample(out, family, "stat=\"p99\"", stats.Quantile(0.99));
  AppendSample(out, family, "stat=\"count\"", stats.count());
  AppendSample(out, family, "stat=\"sum\"", stats.sum());
  AppendSample(out, family, "stat=\"rate_per_epoch\"", stats.RatePerEpoch());
  AppendSample(out, family, "stat=\"epochs\"",
               static_cast<uint64_t>(stats.epochs));
}

bool WriteTextFileAtomic(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) return false;
    f << text;
    f.flush();
    if (!f) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace obs
}  // namespace fta
