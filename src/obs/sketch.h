#ifndef FTA_OBS_SKETCH_H_
#define FTA_OBS_SKETCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace fta {
namespace obs {

/// Deterministic mergeable quantile sketch (DDSketch-style).
///
/// Values are mapped to logarithmic buckets with a fixed relative accuracy
/// α: bucket i covers (γ^(i-1), γ^i] with γ = (1+α)/(1-α), so the bucket's
/// representative value 2·γ^i/(γ+1) is within a factor (1±α) of every
/// value in the bucket. Quantile readouts therefore carry a guaranteed
/// RELATIVE error bound without pre-chosen bounds — the property fixed-
/// boundary histograms (obs/metrics.h) lack for latency tails.
///
/// Everything a sketch stores is a uint64 count, and every merge is an
/// unsigned integer addition — commutative and associative — so merging
/// per-thread or per-shard sketches yields a bit-identical result in any
/// order, the same contract the metrics registry's snapshot merge keeps
/// (see obs/metrics.h). The bucket index is a pure function of the value;
/// no wall clock, no randomness, no allocation-order dependence.
///
/// Two flavors share the bucket math:
///  - SketchData: a plain value type with sparse storage. Single-writer;
///    used for rolling-window epochs, snapshot readouts, and merging.
///  - QuantileSketch: a registry-resident dense array of relaxed atomics
///    for lock-free cross-thread observation, snapshotted into SketchData.

/// Smallest / largest positive value the bucket range resolves. Values
/// below the minimum land in the lowest bucket (their relative error can
/// exceed α); values above the maximum land in the highest bucket. With
/// millisecond-valued observations this spans sub-nanosecond to ~30 years.
inline constexpr double kSketchMinValue = 1e-9;
inline constexpr double kSketchMaxValue = 1e12;

/// The log-bucket geometry for one relative accuracy. All index math lives
/// here so SketchData and QuantileSketch cannot disagree.
struct SketchLayout {
  /// `relative_accuracy` must be in (0, 0.5]; the default 1% keeps the
  /// whole [kSketchMinValue, kSketchMaxValue] range under ~2500 buckets.
  explicit SketchLayout(double relative_accuracy = 0.01);

  double relative_accuracy = 0.0;
  double gamma = 0.0;          // (1+α)/(1−α)
  double inv_log_gamma = 0.0;  // 1 / ln(γ)
  double log_gamma = 0.0;      // ln(γ)
  int32_t min_index = 0;       // bucket index of kSketchMinValue
  int32_t max_index = 0;       // bucket index of kSketchMaxValue

  size_t num_buckets() const {
    return static_cast<size_t>(max_index - min_index) + 1;
  }
  /// Bucket index for a positive value, clamped to [min_index, max_index].
  /// Pure function of (value, layout) — the determinism anchor.
  int32_t IndexFor(double value) const;
  /// The bucket's representative value: the (1±α)-accurate midpoint.
  double ValueFor(int32_t index) const;

  bool operator==(const SketchLayout&) const = default;
};

/// Plain mergeable sketch value. Sparse: only touched buckets are stored
/// (sorted by index), so per-epoch instances stay tiny. NOT thread-safe;
/// external synchronization is the caller's job (RollingWindow holds one
/// per epoch under its own lock).
class SketchData {
 public:
  explicit SketchData(double relative_accuracy = 0.01)
      : layout_(relative_accuracy) {}
  explicit SketchData(const SketchLayout& layout) : layout_(layout) {}

  /// Records one observation. Values that are not > 0 (including NaN)
  /// count into the zero bucket, whose representative value is 0.
  void Observe(double value);
  /// Adds `count` observations of bucket `index` plus the matching
  /// micro-unit sum — the primitive Merge and snapshots are built from.
  void AddBucket(int32_t index, uint64_t count);

  /// Folds `other` in: cell-wise uint64 addition, so any merge order over
  /// any partition of the observations produces bit-identical state.
  /// Layouts must match (checked).
  void Merge(const SketchData& other);

  uint64_t count() const { return total_; }
  uint64_t zero_count() const { return zero_; }
  /// Sum of observed values, accumulated in integral micro-units exactly
  /// like obs::Histogram (order-invariant by construction).
  double sum() const { return static_cast<double>(sum_micros_) * 1e-6; }
  int64_t sum_micros() const { return sum_micros_; }
  const SketchLayout& layout() const { return layout_; }
  bool empty() const { return total_ == 0; }

  /// Deterministic quantile readout. The rank rule is fixed: the returned
  /// value is the representative of the bucket holding observation number
  /// max(1, ceil(q·count)) in ascending order (zero bucket first). q
  /// outside [0,1] is clamped; an empty sketch reads 0.
  double ValueAtQuantile(double q) const;

  /// Touched buckets, ascending by index (excludes the zero bucket).
  const std::vector<int32_t>& bucket_indices() const { return indices_; }
  const std::vector<uint64_t>& bucket_counts() const { return counts_; }

  void Reset();

  bool operator==(const SketchData&) const = default;

 private:
  friend class QuantileSketch;

  SketchLayout layout_;
  std::vector<int32_t> indices_;   // sorted ascending
  std::vector<uint64_t> counts_;   // parallel to indices_
  uint64_t zero_ = 0;
  uint64_t total_ = 0;
  int64_t sum_micros_ = 0;
};

/// Registry-resident sketch: one dense cache-friendly array of relaxed
/// atomics covering the full bucket range, written lock-free from any
/// thread. Snapshot() folds the cells into a SketchData; because every
/// cell is an unsigned integer, the fold is order-invariant and two
/// snapshots of the same logical observations are bit-identical however
/// the observing work was spread over threads.
class QuantileSketch {
 public:
  void Observe(double value);

  /// Order-invariant merged reading.
  SketchData Snapshot() const;

  uint64_t TotalCount() const {
    return total_.load(std::memory_order_relaxed);
  }
  const SketchLayout& layout() const { return layout_; }

  /// Callers must quiesce writers first (same contract as the registry's
  /// Reset).
  void Reset();

 private:
  friend class MetricsRegistry;
  explicit QuantileSketch(double relative_accuracy);

  SketchLayout layout_;
  std::vector<std::atomic<uint64_t>> buckets_;  // num_buckets() cells
  std::atomic<uint64_t> zero_{0};
  std::atomic<uint64_t> total_{0};
  std::atomic<int64_t> sum_micros_{0};
};

}  // namespace obs
}  // namespace fta

#endif  // FTA_OBS_SKETCH_H_
