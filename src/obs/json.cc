#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/check.h"
#include "util/logging.h"

namespace fta {
namespace obs {

void JsonWriter::Separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!counts_.empty()) {
    if (counts_.back() > 0) out_ += ',';
    ++counts_.back();
  }
}

void JsonWriter::BeginObject() {
  Separate();
  out_ += '{';
  counts_.push_back(0);
}

void JsonWriter::EndObject() {
  FTA_DCHECK(!counts_.empty());
  counts_.pop_back();
  out_ += '}';
}

void JsonWriter::BeginArray() {
  Separate();
  out_ += '[';
  counts_.push_back(0);
}

void JsonWriter::EndArray() {
  FTA_DCHECK(!counts_.empty());
  counts_.pop_back();
  out_ += ']';
}

void JsonWriter::Key(std::string_view key) {
  Separate();
  out_ += '"';
  out_ += Escape(key);
  out_ += "\":";
  after_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  Separate();
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
}

void JsonWriter::Int(int64_t value) {
  Separate();
  out_ += std::to_string(value);
}

void JsonWriter::UInt(uint64_t value) {
  Separate();
  out_ += std::to_string(value);
}

void JsonWriter::Double(double value) {
  Separate();
  if (!std::isfinite(value)) {
    out_ += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  // Prefer the shortest representation that still round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char candidate[32];
    std::snprintf(candidate, sizeof(candidate), "%.*g", precision, value);
    if (std::strtod(candidate, nullptr) == value) {
      out_ += candidate;
      return;
    }
  }
  out_ += buf;
}

void JsonWriter::Bool(bool value) {
  Separate();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  Separate();
  out_ += "null";
}

std::string JsonWriter::Escape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::NumberOr(std::string_view key, double fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->number : fallback;
}

std::string JsonValue::StringOr(std::string_view key,
                                std::string fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->string : std::move(fallback);
}

bool JsonValue::BoolOr(std::string_view key, bool fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->type == Type::kBool) ? v->bool_value : fallback;
}

namespace {

/// Recursive-descent parser state over the input text.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    JsonValue root;
    if (Status s = ParseValue(root, 0); !s.ok()) return s;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return root;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::ParseError("JSON: " + what + " at offset " +
                              std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') {
      out.type = JsonValue::Type::kString;
      return ParseString(out.string);
    }
    if (ConsumeLiteral("true")) {
      out.type = JsonValue::Type::kBool;
      out.bool_value = true;
      return Status::Ok();
    }
    if (ConsumeLiteral("false")) {
      out.type = JsonValue::Type::kBool;
      out.bool_value = false;
      return Status::Ok();
    }
    if (ConsumeLiteral("null")) {
      out.type = JsonValue::Type::kNull;
      return Status::Ok();
    }
    return ParseNumber(out);
  }

  Status ParseObject(JsonValue& out, int depth) {
    out.type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (Consume('}')) return Status::Ok();
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      std::string key;
      if (Status s = ParseString(key); !s.ok()) return s;
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue value;
      if (Status s = ParseValue(value, depth + 1); !s.ok()) return s;
      out.object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::Ok();
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue& out, int depth) {
    out.type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (Consume(']')) return Status::Ok();
    while (true) {
      JsonValue value;
      if (Status s = ParseValue(value, depth + 1); !s.ok()) return s;
      out.array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return Status::Ok();
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string& out) {
    ++pos_;  // '"'
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode (BMP only; surrogate pairs are rejected — the
          // library never emits them).
          if (code >= 0xD800 && code <= 0xDFFF) {
            return Error("surrogate \\u escapes are not supported");
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Error("bad escape character");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue& out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a JSON value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Error("malformed number '" + token + "'");
    }
    out.type = JsonValue::Type::kNumber;
    out.number = v;
    return Status::Ok();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace obs
}  // namespace fta
