#include "obs/sketch.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace fta {
namespace obs {

SketchLayout::SketchLayout(double ra) {
  FTA_CHECK_MSG(ra > 0.0 && ra <= 0.5,
                "sketch relative accuracy must be in (0, 0.5]");
  relative_accuracy = ra;
  gamma = (1.0 + ra) / (1.0 - ra);
  log_gamma = std::log(gamma);
  inv_log_gamma = 1.0 / log_gamma;
  min_index =
      static_cast<int32_t>(std::ceil(std::log(kSketchMinValue) *
                                     inv_log_gamma));
  max_index =
      static_cast<int32_t>(std::ceil(std::log(kSketchMaxValue) *
                                     inv_log_gamma));
}

int32_t SketchLayout::IndexFor(double value) const {
  // Callers route value <= 0 (and NaN) to the zero bucket before asking
  // for an index; infinities and out-of-range magnitudes clamp.
  const double raw = std::ceil(std::log(value) * inv_log_gamma);
  if (!(raw > static_cast<double>(min_index))) return min_index;
  if (!(raw < static_cast<double>(max_index))) return max_index;
  return static_cast<int32_t>(raw);
}

double SketchLayout::ValueFor(int32_t index) const {
  // Midpoint of (γ^(i-1), γ^i] under relative error: 2·γ^i/(γ+1).
  return std::exp(static_cast<double>(index) * log_gamma) * 2.0 /
         (gamma + 1.0);
}

namespace {

/// The one micro-unit rounding rule shared with obs::Histogram: exact for
/// integral and micro-unit-representable values, so sums merge
/// order-invariantly as int64 additions.
int64_t ToMicros(double value) {
  return static_cast<int64_t>(std::llround(value * 1e6));
}

}  // namespace

void SketchData::Observe(double value) {
  ++total_;
  sum_micros_ += ToMicros(value);
  if (!(value > 0.0)) {
    ++zero_;
    return;
  }
  const int32_t index = layout_.IndexFor(value);
  const auto it = std::lower_bound(indices_.begin(), indices_.end(), index);
  const size_t pos = static_cast<size_t>(it - indices_.begin());
  if (it != indices_.end() && *it == index) {
    ++counts_[pos];
  } else {
    indices_.insert(it, index);
    counts_.insert(counts_.begin() + static_cast<ptrdiff_t>(pos), 1);
  }
}

void SketchData::AddBucket(int32_t index, uint64_t count) {
  if (count == 0) return;
  total_ += count;
  const auto it = std::lower_bound(indices_.begin(), indices_.end(), index);
  const size_t pos = static_cast<size_t>(it - indices_.begin());
  if (it != indices_.end() && *it == index) {
    counts_[pos] += count;
  } else {
    indices_.insert(it, index);
    counts_.insert(counts_.begin() + static_cast<ptrdiff_t>(pos), count);
  }
}

void SketchData::Merge(const SketchData& other) {
  FTA_CHECK_MSG(layout_ == other.layout_,
                "merging sketches with different layouts");
  // Sorted two-way merge; every cell combines by uint64 addition.
  std::vector<int32_t> indices;
  std::vector<uint64_t> counts;
  indices.reserve(indices_.size() + other.indices_.size());
  counts.reserve(indices_.size() + other.indices_.size());
  size_t a = 0, b = 0;
  while (a < indices_.size() || b < other.indices_.size()) {
    if (b == other.indices_.size() ||
        (a < indices_.size() && indices_[a] < other.indices_[b])) {
      indices.push_back(indices_[a]);
      counts.push_back(counts_[a]);
      ++a;
    } else if (a == indices_.size() || other.indices_[b] < indices_[a]) {
      indices.push_back(other.indices_[b]);
      counts.push_back(other.counts_[b]);
      ++b;
    } else {
      indices.push_back(indices_[a]);
      counts.push_back(counts_[a] + other.counts_[b]);
      ++a;
      ++b;
    }
  }
  indices_ = std::move(indices);
  counts_ = std::move(counts);
  zero_ += other.zero_;
  total_ += other.total_;
  sum_micros_ += other.sum_micros_;
}

double SketchData::ValueAtQuantile(double q) const {
  if (total_ == 0) return 0.0;
  uint64_t rank;
  if (q <= 0.0) {
    rank = 1;
  } else if (q >= 1.0) {
    rank = total_;
  } else {
    rank = static_cast<uint64_t>(
        std::ceil(q * static_cast<double>(total_)));
    if (rank < 1) rank = 1;
    if (rank > total_) rank = total_;
  }
  if (rank <= zero_) return 0.0;
  uint64_t cumulative = zero_;
  for (size_t i = 0; i < indices_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= rank) return layout_.ValueFor(indices_[i]);
  }
  // Unreachable when the invariants hold (total_ == zero_ + Σ counts_).
  return layout_.ValueFor(layout_.max_index);
}

void SketchData::Reset() {
  indices_.clear();
  counts_.clear();
  zero_ = 0;
  total_ = 0;
  sum_micros_ = 0;
}

QuantileSketch::QuantileSketch(double relative_accuracy)
    : layout_(relative_accuracy), buckets_(layout_.num_buckets()) {}

void QuantileSketch::Observe(double value) {
  total_.fetch_add(1, std::memory_order_relaxed);
  sum_micros_.fetch_add(ToMicros(value), std::memory_order_relaxed);
  if (!(value > 0.0)) {
    zero_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const size_t slot =
      static_cast<size_t>(layout_.IndexFor(value) - layout_.min_index);
  buckets_[slot].fetch_add(1, std::memory_order_relaxed);
}

SketchData QuantileSketch::Snapshot() const {
  SketchData data(layout_);
  for (size_t slot = 0; slot < buckets_.size(); ++slot) {
    const uint64_t count = buckets_[slot].load(std::memory_order_relaxed);
    if (count == 0) continue;
    data.indices_.push_back(layout_.min_index +
                            static_cast<int32_t>(slot));
    data.counts_.push_back(count);
  }
  data.zero_ = zero_.load(std::memory_order_relaxed);
  data.total_ = data.zero_;
  for (uint64_t c : data.counts_) data.total_ += c;
  data.sum_micros_ = sum_micros_.load(std::memory_order_relaxed);
  return data;
}

void QuantileSketch::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  zero_.store(0, std::memory_order_relaxed);
  total_.store(0, std::memory_order_relaxed);
  sum_micros_.store(0, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace fta
