#ifndef FTA_FTA_H_
#define FTA_FTA_H_

/// Umbrella header for the FTA library: Fairness-aware Task Assignment in
/// Spatial Crowdsourcing (Zhao et al., ICDE 2021 reproduction).
///
/// Typical usage:
///
///   fta::Instance instance = fta::GenerateGMissionLike({}, {});
///   fta::VdpsCatalog catalog =
///       fta::VdpsCatalog::Generate(instance, {.epsilon = 0.6});
///   fta::GameResult result = fta::SolveIegt(instance, catalog);
///   std::cout << result.assignment.ToString(instance);

#include "baseline/branch_and_bound.h"
#include "baseline/exhaustive.h"
#include "baseline/gta.h"
#include "baseline/hungarian.h"
#include "baseline/mpta.h"
#include "baseline/random_assignment.h"
#include "baseline/single_task.h"
#include "cluster/dbscan.h"
#include "cluster/kmeans.h"
#include "datagen/gmission.h"
#include "datagen/synthetic.h"
#include "datagen/workload.h"
#include "exp/report.h"
#include "exp/run_report.h"
#include "exp/runner.h"
#include "exp/simulation.h"
#include "exp/stats.h"
#include "exp/sweep.h"
#include "game/best_response.h"
#include "game/equilibrium.h"
#include "game/fgt.h"
#include "game/iau.h"
#include "game/iegt.h"
#include "game/joint_state.h"
#include "game/potential.h"
#include "game/priority.h"
#include "game/trace.h"
#include "geo/bounding_box.h"
#include "geo/distance_matrix.h"
#include "geo/grid_index.h"
#include "geo/kdtree.h"
#include "geo/point.h"
#include "geo/travel.h"
#include "io/assignment_io.h"
#include "io/csv.h"
#include "io/dataset_io.h"
#include "io/svg.h"
#include "io/trace_io.h"
#include "model/assignment.h"
#include "model/builder.h"
#include "model/instance.h"
#include "model/route.h"
#include "model/route_opt.h"
#include "model/task.h"
#include "model/worker.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stream/dispatcher.h"
#include "stream/digest.h"
#include "stream/events.h"
#include "treedec/graph.h"
#include "treedec/mwis.h"
#include "treedec/tree_decomposition.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/math_util.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "vdps/catalog.h"
#include "vdps/generators.h"

#endif  // FTA_FTA_H_
