#include "cluster/dbscan.h"

#include <deque>

#include "geo/grid_index.h"
#include "util/logging.h"

namespace fta {

std::vector<Point> DbscanResult::Centroids(
    const std::vector<Point>& points) const {
  FTA_CHECK(points.size() == labels.size());
  std::vector<Point> sums(num_clusters, Point{0.0, 0.0});
  std::vector<size_t> counts(num_clusters, 0);
  for (size_t i = 0; i < points.size(); ++i) {
    if (labels[i] == kDbscanNoise) continue;
    const size_t c = static_cast<size_t>(labels[i]);
    sums[c].x += points[i].x;
    sums[c].y += points[i].y;
    ++counts[c];
  }
  for (size_t c = 0; c < num_clusters; ++c) {
    if (counts[c] > 0) {
      sums[c].x /= static_cast<double>(counts[c]);
      sums[c].y /= static_cast<double>(counts[c]);
    }
  }
  return sums;
}

std::vector<size_t> DbscanResult::ClusterSizes() const {
  std::vector<size_t> sizes(num_clusters, 0);
  for (int32_t label : labels) {
    if (label != kDbscanNoise) ++sizes[static_cast<size_t>(label)];
  }
  return sizes;
}

DbscanResult Dbscan(const std::vector<Point>& points,
                    const DbscanConfig& config) {
  FTA_CHECK_MSG(config.epsilon >= 0.0, "epsilon must be non-negative");
  FTA_CHECK_MSG(config.min_points >= 1, "min_points must be >= 1");

  DbscanResult result;
  const size_t n = points.size();
  result.labels.assign(n, kDbscanNoise);
  if (n == 0) return result;

  const GridIndex grid(points, config.epsilon > 0 ? config.epsilon : 0.0);
  // kUnvisited < kDbscanNoise: distinguishes "not yet examined" from
  // "examined and found non-core".
  constexpr int32_t kUnvisited = -2;
  std::vector<int32_t>& labels = result.labels;
  std::fill(labels.begin(), labels.end(), kUnvisited);

  int32_t next_cluster = 0;
  std::deque<uint32_t> frontier;
  for (uint32_t seed = 0; seed < n; ++seed) {
    if (labels[seed] != kUnvisited) continue;
    const std::vector<uint32_t> nbrs =
        grid.RadiusQuery(points[seed], config.epsilon);
    if (nbrs.size() < config.min_points) {
      labels[seed] = kDbscanNoise;  // may be claimed as a border point later
      continue;
    }
    // Grow a new cluster from this core point.
    const int32_t cluster = next_cluster++;
    labels[seed] = cluster;
    frontier.assign(nbrs.begin(), nbrs.end());
    while (!frontier.empty()) {
      const uint32_t p = frontier.front();
      frontier.pop_front();
      if (labels[p] == kDbscanNoise) labels[p] = cluster;  // border point
      if (labels[p] != kUnvisited) continue;
      labels[p] = cluster;
      const std::vector<uint32_t> p_nbrs =
          grid.RadiusQuery(points[p], config.epsilon);
      if (p_nbrs.size() >= config.min_points) {
        frontier.insert(frontier.end(), p_nbrs.begin(), p_nbrs.end());
      }
    }
  }
  result.num_clusters = static_cast<size_t>(next_cluster);
  for (int32_t label : labels) {
    if (label == kDbscanNoise) ++result.num_noise;
  }
  return result;
}

}  // namespace fta
