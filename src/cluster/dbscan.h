#ifndef FTA_CLUSTER_DBSCAN_H_
#define FTA_CLUSTER_DBSCAN_H_

#include <cstdint>
#include <vector>

#include "geo/point.h"

namespace fta {

/// Label assigned to points that belong to no cluster.
inline constexpr int32_t kDbscanNoise = -1;

/// Result of a DBSCAN run.
struct DbscanResult {
  /// Cluster id per point (0-based), or kDbscanNoise.
  std::vector<int32_t> labels;
  /// Number of clusters found.
  size_t num_clusters = 0;
  /// Number of noise points.
  size_t num_noise = 0;

  /// Centroid of each cluster (num_clusters entries).
  std::vector<Point> Centroids(const std::vector<Point>& points) const;
  /// Point count per cluster.
  std::vector<size_t> ClusterSizes() const;
};

/// DBSCAN parameters: a point is a core point if at least `min_points`
/// points (itself included) lie within `epsilon`.
struct DbscanConfig {
  double epsilon = 1.0;
  size_t min_points = 4;
};

/// Density-based clustering of 2D points (grid-index accelerated). Used as
/// an alternative data-preparation step to k-means: DBSCAN finds the task
/// *hotspots* of a city without fixing the cluster count up front, and
/// leaves isolated tasks as noise instead of distorting centroids.
DbscanResult Dbscan(const std::vector<Point>& points,
                    const DbscanConfig& config);

}  // namespace fta

#endif  // FTA_CLUSTER_DBSCAN_H_
