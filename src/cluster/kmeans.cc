#include "cluster/kmeans.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"
#include "util/math_util.h"

namespace fta {
namespace {

/// k-means++ seeding: first centroid uniform, then each next centroid drawn
/// with probability proportional to squared distance to the nearest chosen
/// centroid.
std::vector<Point> SeedPlusPlus(const std::vector<Point>& points, size_t k,
                                Rng& rng) {
  std::vector<Point> centroids;
  centroids.reserve(k);
  centroids.push_back(points[rng.Index(points.size())]);
  std::vector<double> d2(points.size(), 0.0);
  while (centroids.size() < k) {
    double total = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      double best = kInfinity;
      for (const Point& c : centroids) {
        best = std::min(best, SquaredDistance(points[i], c));
      }
      d2[i] = best;
      total += best;
    }
    if (total <= 0.0) {
      // All points coincide with existing centroids; fill with copies.
      centroids.push_back(points[rng.Index(points.size())]);
      continue;
    }
    double r = rng.NextDouble() * total;
    size_t pick = points.size() - 1;
    for (size_t i = 0; i < points.size(); ++i) {
      r -= d2[i];
      if (r <= 0.0) {
        pick = i;
        break;
      }
    }
    centroids.push_back(points[pick]);
  }
  return centroids;
}

std::vector<Point> SeedUniform(const std::vector<Point>& points, size_t k,
                               Rng& rng) {
  // Sample k distinct indices (Floyd's algorithm would be fancier; k is
  // small relative to n in our pipelines, rejection is fine).
  std::vector<uint32_t> ids(points.size());
  for (uint32_t i = 0; i < points.size(); ++i) ids[i] = i;
  rng.Shuffle(ids);
  std::vector<Point> centroids;
  centroids.reserve(k);
  for (size_t i = 0; i < k; ++i) centroids.push_back(points[ids[i]]);
  return centroids;
}

}  // namespace

KMeansResult KMeans(const std::vector<Point>& points, size_t k, Rng& rng,
                    const KMeansConfig& config) {
  KMeansResult result;
  if (points.empty() || k == 0) return result;
  k = std::min(k, points.size());
  result.centroids = config.plus_plus ? SeedPlusPlus(points, k, rng)
                                      : SeedUniform(points, k, rng);
  result.labels.assign(points.size(), 0);

  double prev_inertia = kInfinity;
  for (int iter = 1; iter <= config.max_iterations; ++iter) {
    result.iterations = iter;
    // Assignment step.
    bool changed = false;
    double inertia = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      uint32_t best_c = result.labels[i];
      double best_d2 = kInfinity;
      for (uint32_t c = 0; c < k; ++c) {
        const double d2 = SquaredDistance(points[i], result.centroids[c]);
        if (d2 < best_d2) {
          best_d2 = d2;
          best_c = c;
        }
      }
      if (best_c != result.labels[i]) {
        result.labels[i] = best_c;
        changed = true;
      }
      inertia += best_d2;
    }
    result.inertia = inertia;
    // Update step.
    std::vector<Point> sums(k, Point{0.0, 0.0});
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < points.size(); ++i) {
      sums[result.labels[i]].x += points[i].x;
      sums[result.labels[i]].y += points[i].y;
      ++counts[result.labels[i]];
    }
    for (uint32_t c = 0; c < k; ++c) {
      if (counts[c] > 0) {
        result.centroids[c] = {sums[c].x / static_cast<double>(counts[c]),
                               sums[c].y / static_cast<double>(counts[c])};
      } else {
        // Empty cluster: reseed at the point farthest from its centroid.
        size_t far_i = 0;
        double far_d2 = -1.0;
        for (size_t i = 0; i < points.size(); ++i) {
          const double d2 = SquaredDistance(
              points[i], result.centroids[result.labels[i]]);
          if (d2 > far_d2) {
            far_d2 = d2;
            far_i = i;
          }
        }
        result.centroids[c] = points[far_i];
        changed = true;
      }
    }
    if (!changed) {
      result.converged = true;
      break;
    }
    if (prev_inertia < kInfinity &&
        prev_inertia - inertia <= config.tolerance * prev_inertia) {
      result.converged = true;
      break;
    }
    prev_inertia = inertia;
  }
  return result;
}

}  // namespace fta
