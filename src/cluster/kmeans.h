#ifndef FTA_CLUSTER_KMEANS_H_
#define FTA_CLUSTER_KMEANS_H_

#include <cstdint>
#include <vector>

#include "geo/point.h"
#include "util/rng.h"

namespace fta {

/// Result of a k-means run.
struct KMeansResult {
  /// Cluster centroids (k of them, or fewer if there were fewer points).
  std::vector<Point> centroids;
  /// Cluster id of each input point.
  std::vector<uint32_t> labels;
  /// Sum of squared distances from each point to its centroid.
  double inertia = 0.0;
  /// Lloyd iterations executed.
  int iterations = 0;
  /// True if the assignment reached a fixed point before max_iterations.
  bool converged = false;
};

/// k-means options.
struct KMeansConfig {
  int max_iterations = 100;
  /// Stop when the relative inertia improvement drops below this.
  double tolerance = 1e-6;
  /// Use k-means++ seeding (uniform random seeding otherwise).
  bool plus_plus = true;
};

/// Lloyd's k-means over 2D points with k-means++ seeding. This is the data
/// preparation step the paper applies to gMission: cluster task locations
/// into x groups whose centroids become delivery points (Section VII-A).
/// Deterministic given `rng`'s state. k is clamped to the number of points.
KMeansResult KMeans(const std::vector<Point>& points, size_t k, Rng& rng,
                    const KMeansConfig& config = KMeansConfig());

}  // namespace fta

#endif  // FTA_CLUSTER_KMEANS_H_
