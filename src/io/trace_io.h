#ifndef FTA_IO_TRACE_IO_H_
#define FTA_IO_TRACE_IO_H_

#include <string>

#include "datagen/gmission.h"
#include "util/status.h"

namespace fta {

/// (De)serialization of *raw* crowdsourcing traces in the schema the
/// paper's gMission prep consumes — tasks with location / expiration /
/// reward, workers with location:
///
///   task,<x>,<y>,<expiry>,<reward>
///   worker,<x>,<y>
///
/// This is the plug-in point for the real gMission dump (not
/// redistributable here): export it to this trivial CSV schema and the
/// whole pipeline — k-means prep, VDPS generation, all four algorithms —
/// runs on the real data unchanged.
std::string SerializeRawTrace(const RawCrowdData& raw);
Status SaveRawTrace(const std::string& path, const RawCrowdData& raw);

/// Parses the schema above. Rejects malformed rows, non-positive
/// expirations, and negative rewards.
StatusOr<RawCrowdData> DeserializeRawTrace(const std::string& text);
StatusOr<RawCrowdData> LoadRawTrace(const std::string& path);

}  // namespace fta

#endif  // FTA_IO_TRACE_IO_H_
