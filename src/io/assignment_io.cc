#include "io/assignment_io.h"

#include <fstream>
#include <sstream>

#include "io/csv.h"
#include "util/string_util.h"

namespace fta {

std::string SerializeAssignment(const Assignment& assignment) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"#", "FTA assignment v1"});
  rows.push_back({"N", StrFormat("%zu", assignment.num_workers())});
  for (size_t w = 0; w < assignment.num_workers(); ++w) {
    const Route& route = assignment.route(w);
    if (route.empty()) continue;
    std::vector<std::string> row{"A", StrFormat("%zu", w)};
    for (uint32_t dp : route) row.push_back(StrFormat("%u", dp));
    rows.push_back(std::move(row));
  }
  return ToCsv(rows);
}

Status SaveAssignment(const std::string& path,
                      const Assignment& assignment) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << SerializeAssignment(assignment);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

StatusOr<Assignment> DeserializeAssignment(const std::string& text,
                                           const Instance& instance) {
  StatusOr<CsvDocument> doc = ParseCsv(text);
  if (!doc.ok()) return doc.status();
  Assignment assignment(instance.num_workers());
  bool saw_count = false;
  for (const auto& row : doc->rows) {
    if (row.empty() || StartsWith(row[0], "#")) continue;
    if (row[0] == "N") {
      if (row.size() < 2) return Status::ParseError("N row missing count");
      StatusOr<int64_t> n = ParseInt(row[1]);
      if (!n.ok()) return n.status();
      if (*n < 0 || static_cast<size_t>(*n) != instance.num_workers()) {
        return Status::InvalidArgument(StrFormat(
            "assignment is for %lld workers, instance has %zu",
            static_cast<long long>(*n), instance.num_workers()));
      }
      saw_count = true;
    } else if (row[0] == "A") {
      if (row.size() < 3) {
        return Status::ParseError("A row needs a worker and >= 1 stop");
      }
      StatusOr<int64_t> w = ParseInt(row[1]);
      if (!w.ok()) return w.status();
      if (*w < 0 || static_cast<size_t>(*w) >= instance.num_workers()) {
        return Status::OutOfRange(StrFormat(
            "worker %lld out of range", static_cast<long long>(*w)));
      }
      Route route;
      for (size_t i = 2; i < row.size(); ++i) {
        StatusOr<int64_t> dp = ParseInt(row[i]);
        if (!dp.ok()) return dp.status();
        if (*dp < 0 ||
            static_cast<size_t>(*dp) >= instance.num_delivery_points()) {
          return Status::OutOfRange(StrFormat(
              "delivery point %lld out of range",
              static_cast<long long>(*dp)));
        }
        route.push_back(static_cast<uint32_t>(*dp));
      }
      if (!assignment.route(static_cast<size_t>(*w)).empty()) {
        return Status::InvalidArgument(
            StrFormat("duplicate A row for worker %lld",
                      static_cast<long long>(*w)));
      }
      assignment.SetRoute(static_cast<size_t>(*w), std::move(route));
    } else {
      return Status::ParseError("unknown assignment row tag: '" + row[0] +
                                "'");
    }
  }
  if (!saw_count) return Status::ParseError("missing N row");
  Status s = assignment.Validate(instance);
  if (!s.ok()) return s;
  return assignment;
}

StatusOr<Assignment> LoadAssignment(const std::string& path,
                                    const Instance& instance) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return DeserializeAssignment(buf.str(), instance);
}

}  // namespace fta
