#ifndef FTA_IO_ASSIGNMENT_IO_H_
#define FTA_IO_ASSIGNMENT_IO_H_

#include <string>

#include "model/assignment.h"
#include "model/instance.h"
#include "util/status.h"

namespace fta {

/// Assignment (de)serialization: one row per worker with a non-null route,
///   A,<worker>,<dp_1>,<dp_2>,...
/// plus a leading comment row. Null-strategy workers are omitted and
/// restored as null on load (the total worker count is recorded).
std::string SerializeAssignment(const Assignment& assignment);
Status SaveAssignment(const std::string& path, const Assignment& assignment);

/// Parses the format above and validates the result against `instance`
/// (route shapes, maxDP, deadlines, disjointness).
StatusOr<Assignment> DeserializeAssignment(const std::string& text,
                                           const Instance& instance);
StatusOr<Assignment> LoadAssignment(const std::string& path,
                                    const Instance& instance);

}  // namespace fta

#endif  // FTA_IO_ASSIGNMENT_IO_H_
