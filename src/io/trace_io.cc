#include "io/trace_io.h"

#include <fstream>
#include <sstream>

#include "io/csv.h"
#include "util/string_util.h"

namespace fta {

std::string SerializeRawTrace(const RawCrowdData& raw) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"#", "FTA raw trace v1: task,x,y,expiry,reward | worker,x,y"});
  for (size_t t = 0; t < raw.task_locations.size(); ++t) {
    rows.push_back({"task", StrFormat("%.17g", raw.task_locations[t].x),
                    StrFormat("%.17g", raw.task_locations[t].y),
                    StrFormat("%.17g", raw.task_expiries[t]),
                    StrFormat("%.17g", raw.task_rewards[t])});
  }
  for (const Point& w : raw.worker_locations) {
    rows.push_back(
        {"worker", StrFormat("%.17g", w.x), StrFormat("%.17g", w.y)});
  }
  return ToCsv(rows);
}

Status SaveRawTrace(const std::string& path, const RawCrowdData& raw) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << SerializeRawTrace(raw);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

namespace {

StatusOr<double> Field(const std::vector<std::string>& row, size_t i) {
  if (i >= row.size()) {
    return Status::ParseError(
        StrFormat("'%s' row is missing field %zu", row[0].c_str(), i));
  }
  return ParseDouble(row[i]);
}

}  // namespace

StatusOr<RawCrowdData> DeserializeRawTrace(const std::string& text) {
  StatusOr<CsvDocument> doc = ParseCsv(text);
  if (!doc.ok()) return doc.status();
  RawCrowdData raw;
  for (const auto& row : doc->rows) {
    if (row.empty()) continue;
    if (row[0] == "task") {
      auto x = Field(row, 1);
      auto y = Field(row, 2);
      auto expiry = Field(row, 3);
      auto reward = Field(row, 4);
      if (!x.ok()) return x.status();
      if (!y.ok()) return y.status();
      if (!expiry.ok()) return expiry.status();
      if (!reward.ok()) return reward.status();
      if (*expiry <= 0.0) {
        return Status::ParseError("task expiry must be positive");
      }
      if (*reward < 0.0) {
        return Status::ParseError("task reward must be non-negative");
      }
      raw.task_locations.push_back({*x, *y});
      raw.task_expiries.push_back(*expiry);
      raw.task_rewards.push_back(*reward);
    } else if (row[0] == "worker") {
      auto x = Field(row, 1);
      auto y = Field(row, 2);
      if (!x.ok()) return x.status();
      if (!y.ok()) return y.status();
      raw.worker_locations.push_back({*x, *y});
    } else if (StartsWith(row[0], "#")) {
      continue;
    } else {
      return Status::ParseError("unknown trace row tag: '" + row[0] + "'");
    }
  }
  return raw;
}

StatusOr<RawCrowdData> LoadRawTrace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return DeserializeRawTrace(buf.str());
}

}  // namespace fta
