#include "io/csv.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace fta {

StatusOr<CsvDocument> ParseCsv(const std::string& text, char delim) {
  CsvDocument doc;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool row_has_content = false;
  bool line_is_comment = false;

  const auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
  };
  const auto end_row = [&] {
    if (row_has_content && !line_is_comment) {
      end_field();
      doc.rows.push_back(std::move(row));
    }
    row.clear();
    field.clear();
    row_has_content = false;
    line_is_comment = false;
  };

  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;  // doubled quote escape
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      row_has_content = true;
    } else if (c == delim) {
      end_field();
      row_has_content = true;
    } else if (c == '\n') {
      end_row();
    } else if (c == '\r') {
      // swallow; \r\n handled by the following \n, bare \r ends the row
      if (i + 1 >= text.size() || text[i + 1] != '\n') end_row();
    } else {
      if (!row_has_content && c == '#') line_is_comment = true;
      if (!std::isspace(static_cast<unsigned char>(c))) row_has_content = true;
      field.push_back(c);
    }
  }
  if (in_quotes) return Status::ParseError("unterminated quoted field");
  end_row();  // final row without trailing newline
  return doc;
}

StatusOr<CsvDocument> ReadCsvFile(const std::string& path, char delim) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCsv(buf.str(), delim);
}

std::string ToCsv(const std::vector<std::vector<std::string>>& rows,
                  char delim) {
  std::string out;
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(delim);
      const std::string& f = row[i];
      const bool needs_quotes =
          f.find(delim) != std::string::npos ||
          f.find('"') != std::string::npos ||
          f.find('\n') != std::string::npos || StartsWith(f, "#");
      if (needs_quotes) {
        out.push_back('"');
        for (char c : f) {
          if (c == '"') out.push_back('"');
          out.push_back(c);
        }
        out.push_back('"');
      } else {
        out += f;
      }
    }
    out.push_back('\n');
  }
  return out;
}

Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows,
                    char delim) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << ToCsv(rows, delim);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

}  // namespace fta
