#include "io/svg.h"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "geo/bounding_box.h"
#include "util/string_util.h"

namespace fta {
namespace {

/// A qualitative color cycle for worker routes.
constexpr const char* kRouteColors[] = {
    "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd", "#8c564b",
    "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
};
constexpr size_t kNumRouteColors =
    sizeof(kRouteColors) / sizeof(kRouteColors[0]);

/// World -> pixel transform (y flipped: SVG's y grows downward).
class Projector {
 public:
  Projector(const BoundingBox& world, const SvgOptions& options)
      : world_(world), margin_(options.margin_px) {
    const double w = std::max(world.width(), 1e-9);
    const double h = std::max(world.height(), 1e-9);
    scale_ = (options.width_px - 2 * margin_) / w;
    width_ = options.width_px;
    height_ = h * scale_ + 2 * margin_;
  }

  double width() const { return width_; }
  double height() const { return height_; }

  double X(const Point& p) const {
    return margin_ + (p.x - world_.min().x) * scale_;
  }
  double Y(const Point& p) const {
    return height_ - margin_ - (p.y - world_.min().y) * scale_;
  }

 private:
  BoundingBox world_;
  double margin_;
  double scale_ = 1.0;
  double width_ = 0.0;
  double height_ = 0.0;
};

void Circle(std::string& out, double cx, double cy, double r,
            const char* fill, const char* extra = "") {
  out += StrFormat(
      "  <circle cx=\"%.1f\" cy=\"%.1f\" r=\"%.1f\" fill=\"%s\"%s/>\n", cx,
      cy, r, fill, extra);
}

}  // namespace

std::string RenderInstanceSvg(const Instance& instance,
                              const Assignment* assignment,
                              const SvgOptions& options) {
  BoundingBox world;
  world.Extend(instance.center());
  for (const DeliveryPoint& dp : instance.delivery_points()) {
    world.Extend(dp.location());
  }
  for (const Worker& w : instance.workers()) world.Extend(w.location);
  world.Inflate(std::max(world.width(), world.height()) * 0.02 + 1e-9);
  const Projector proj(world, options);

  std::string out = StrFormat(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" "
      "height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\">\n",
      proj.width(), proj.height(), proj.width(), proj.height());
  out += "  <rect width=\"100%\" height=\"100%\" fill=\"#fafafa\"/>\n";

  // Routes beneath the markers.
  if (assignment != nullptr && options.draw_routes) {
    for (size_t w = 0; w < assignment->num_workers(); ++w) {
      const Route& route = assignment->route(w);
      if (route.empty()) continue;
      const char* color = kRouteColors[w % kNumRouteColors];
      std::string points =
          StrFormat("%.1f,%.1f %.1f,%.1f",
                    proj.X(instance.worker(w).location),
                    proj.Y(instance.worker(w).location),
                    proj.X(instance.center()), proj.Y(instance.center()));
      for (uint32_t dp : route) {
        points += StrFormat(" %.1f,%.1f",
                            proj.X(instance.delivery_point(dp).location()),
                            proj.Y(instance.delivery_point(dp).location()));
      }
      out += StrFormat(
          "  <polyline points=\"%s\" fill=\"none\" stroke=\"%s\" "
          "stroke-width=\"1.6\" stroke-opacity=\"0.8\"/>\n",
          points.c_str(), color);
    }
  }

  // Delivery points: circles sized by pending-task count.
  size_t max_tasks = 1;
  for (const DeliveryPoint& dp : instance.delivery_points()) {
    max_tasks = std::max(max_tasks, dp.task_count());
  }
  for (size_t d = 0; d < instance.num_delivery_points(); ++d) {
    const DeliveryPoint& dp = instance.delivery_point(d);
    double r = 4.0;
    if (options.scale_by_tasks) {
      r = 3.0 + 6.0 * std::sqrt(static_cast<double>(dp.task_count()) /
                                static_cast<double>(max_tasks));
    }
    Circle(out, proj.X(dp.location()), proj.Y(dp.location()), r, "#4a90d9",
           " fill-opacity=\"0.7\" stroke=\"#2c5f94\"");
    if (options.label_task_counts) {
      out += StrFormat(
          "  <text x=\"%.1f\" y=\"%.1f\" font-size=\"9\" "
          "text-anchor=\"middle\">%zu</text>\n",
          proj.X(dp.location()), proj.Y(dp.location()) - r - 2,
          dp.task_count());
    }
  }

  // Workers: triangles.
  for (const Worker& w : instance.workers()) {
    const double x = proj.X(w.location);
    const double y = proj.Y(w.location);
    out += StrFormat(
        "  <polygon points=\"%.1f,%.1f %.1f,%.1f %.1f,%.1f\" "
        "fill=\"#d9534f\" stroke=\"#912322\"/>\n",
        x, y - 5.0, x - 4.5, y + 4.0, x + 4.5, y + 4.0);
  }

  // Distribution center: a square on top.
  out += StrFormat(
      "  <rect x=\"%.1f\" y=\"%.1f\" width=\"12\" height=\"12\" "
      "fill=\"#222\" stroke=\"#000\"/>\n",
      proj.X(instance.center()) - 6.0, proj.Y(instance.center()) - 6.0);

  out += "</svg>\n";
  return out;
}

Status WriteInstanceSvg(const std::string& path, const Instance& instance,
                        const Assignment* assignment,
                        const SvgOptions& options) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << RenderInstanceSvg(instance, assignment, options);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

}  // namespace fta
