#ifndef FTA_IO_DATASET_IO_H_
#define FTA_IO_DATASET_IO_H_

#include <string>

#include "model/instance.h"
#include "util/status.h"

namespace fta {

/// Serializes a multi-center instance to a typed-row CSV:
///   C,<x>,<y>,<speed>              — starts a new center block
///   D,<x>,<y>                      — a delivery point of the current center
///   T,<dp_index>,<expiry>,<reward> — a task of the current center
///   W,<x>,<y>,<maxDP>              — a worker of the current center
/// Single-center instances are a one-block file.
std::string SerializeInstances(const MultiCenterInstance& multi);
Status SaveInstances(const std::string& path,
                     const MultiCenterInstance& multi);

/// Parses the format above. Validates every parsed center.
StatusOr<MultiCenterInstance> DeserializeInstances(const std::string& text);
StatusOr<MultiCenterInstance> LoadInstances(const std::string& path);

}  // namespace fta

#endif  // FTA_IO_DATASET_IO_H_
