#include "io/dataset_io.h"

#include <fstream>
#include <sstream>

#include "io/csv.h"
#include "util/string_util.h"

namespace fta {

std::string SerializeInstances(const MultiCenterInstance& multi) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"#", "FTA instance file v1"});
  for (const Instance& inst : multi.centers) {
    rows.push_back({"C", StrFormat("%.17g", inst.center().x),
                    StrFormat("%.17g", inst.center().y),
                    StrFormat("%.17g", inst.travel().speed())});
    for (const DeliveryPoint& dp : inst.delivery_points()) {
      rows.push_back({"D", StrFormat("%.17g", dp.location().x),
                      StrFormat("%.17g", dp.location().y)});
    }
    for (size_t d = 0; d < inst.num_delivery_points(); ++d) {
      for (const SpatialTask& t : inst.delivery_point(d).tasks()) {
        rows.push_back({"T", StrFormat("%u", t.delivery_point),
                        StrFormat("%.17g", t.expiry),
                        StrFormat("%.17g", t.reward)});
      }
    }
    for (const Worker& w : inst.workers()) {
      rows.push_back({"W", StrFormat("%.17g", w.location.x),
                      StrFormat("%.17g", w.location.y),
                      StrFormat("%u", w.max_delivery_points)});
    }
  }
  return ToCsv(rows);
}

Status SaveInstances(const std::string& path,
                     const MultiCenterInstance& multi) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << SerializeInstances(multi);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

namespace {

/// Mutable draft of one center block while parsing.
struct CenterDraft {
  Point center;
  double speed = 5.0;
  std::vector<Point> dp_locations;
  std::vector<std::vector<SpatialTask>> dp_tasks;
  std::vector<Worker> workers;

  StatusOr<Instance> Finish() const {
    std::vector<DeliveryPoint> dps;
    dps.reserve(dp_locations.size());
    for (size_t d = 0; d < dp_locations.size(); ++d) {
      dps.emplace_back(dp_locations[d], dp_tasks[d]);
    }
    Instance inst(center, std::move(dps), workers, TravelModel(speed));
    Status s = inst.Validate();
    if (!s.ok()) return s;
    return inst;
  }
};

StatusOr<double> Field(const std::vector<std::string>& row, size_t i) {
  if (i >= row.size()) {
    return Status::ParseError(
        StrFormat("row '%s' is missing field %zu", row[0].c_str(), i));
  }
  return ParseDouble(row[i]);
}

}  // namespace

StatusOr<MultiCenterInstance> DeserializeInstances(const std::string& text) {
  StatusOr<CsvDocument> doc = ParseCsv(text);
  if (!doc.ok()) return doc.status();

  MultiCenterInstance multi;
  CenterDraft draft;
  bool have_center = false;
  const auto flush = [&]() -> Status {
    if (!have_center) return Status::Ok();
    StatusOr<Instance> inst = draft.Finish();
    if (!inst.ok()) return inst.status();
    multi.centers.push_back(std::move(inst).value());
    draft = CenterDraft{};
    return Status::Ok();
  };

  for (const auto& row : doc->rows) {
    if (row.empty()) continue;
    const std::string& tag = row[0];
    if (tag == "C") {
      Status s = flush();
      if (!s.ok()) return s;
      auto x = Field(row, 1);
      auto y = Field(row, 2);
      auto speed = Field(row, 3);
      if (!x.ok()) return x.status();
      if (!y.ok()) return y.status();
      if (!speed.ok()) return speed.status();
      if (*speed <= 0.0) return Status::ParseError("speed must be > 0");
      draft.center = {*x, *y};
      draft.speed = *speed;
      have_center = true;
    } else if (tag == "D") {
      if (!have_center) return Status::ParseError("D row before any C row");
      auto x = Field(row, 1);
      auto y = Field(row, 2);
      if (!x.ok()) return x.status();
      if (!y.ok()) return y.status();
      draft.dp_locations.push_back({*x, *y});
      draft.dp_tasks.emplace_back();
    } else if (tag == "T") {
      if (!have_center) return Status::ParseError("T row before any C row");
      auto dp = Field(row, 1);
      auto expiry = Field(row, 2);
      auto reward = Field(row, 3);
      if (!dp.ok()) return dp.status();
      if (!expiry.ok()) return expiry.status();
      if (!reward.ok()) return reward.status();
      const size_t d = static_cast<size_t>(*dp);
      if (*dp < 0 || d >= draft.dp_locations.size()) {
        return Status::ParseError(
            StrFormat("task references unknown delivery point %.0f", *dp));
      }
      draft.dp_tasks[d].push_back(
          SpatialTask{static_cast<uint32_t>(d), *expiry, *reward});
    } else if (tag == "W") {
      if (!have_center) return Status::ParseError("W row before any C row");
      auto x = Field(row, 1);
      auto y = Field(row, 2);
      auto maxdp = Field(row, 3);
      if (!x.ok()) return x.status();
      if (!y.ok()) return y.status();
      if (!maxdp.ok()) return maxdp.status();
      if (*maxdp < 1.0) return Status::ParseError("worker maxDP must be >= 1");
      draft.workers.push_back(
          Worker{{*x, *y}, static_cast<uint32_t>(*maxdp)});
    } else if (StartsWith(tag, "#")) {
      continue;  // comment row
    } else {
      return Status::ParseError("unknown row tag: '" + tag + "'");
    }
  }
  Status s = flush();
  if (!s.ok()) return s;
  return multi;
}

StatusOr<MultiCenterInstance> LoadInstances(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return DeserializeInstances(buf.str());
}

}  // namespace fta
