#ifndef FTA_IO_SVG_H_
#define FTA_IO_SVG_H_

#include <string>

#include "model/assignment.h"
#include "model/instance.h"
#include "util/status.h"

namespace fta {

/// Rendering options for RenderInstanceSvg.
struct SvgOptions {
  /// Output canvas width in pixels (height follows the instance's aspect
  /// ratio).
  double width_px = 800.0;
  /// Margin around the drawing, in pixels.
  double margin_px = 30.0;
  /// Scale delivery point circles by their task count.
  bool scale_by_tasks = true;
  /// Draw each assigned worker's route as a polyline (worker -> center ->
  /// stops) in a per-worker color.
  bool draw_routes = true;
  /// Annotate delivery points with their task counts.
  bool label_task_counts = false;
};

/// Renders an instance — and optionally an assignment's routes — as a
/// standalone SVG document: the distribution center as a square, delivery
/// points as circles (sized by pending tasks), workers as triangles, and
/// routes as colored polylines. Handy for eyeballing what the fairness
/// algorithms actually did. Pass nullptr to draw the bare instance.
std::string RenderInstanceSvg(const Instance& instance,
                              const Assignment* assignment = nullptr,
                              const SvgOptions& options = SvgOptions());

/// Renders and writes to a file.
Status WriteInstanceSvg(const std::string& path, const Instance& instance,
                        const Assignment* assignment = nullptr,
                        const SvgOptions& options = SvgOptions());

}  // namespace fta

#endif  // FTA_IO_SVG_H_
