#ifndef FTA_IO_CSV_H_
#define FTA_IO_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace fta {

/// A parsed CSV document: one row per record, one string per field.
struct CsvDocument {
  std::vector<std::vector<std::string>> rows;
};

/// Parses CSV text. Supports quoted fields with embedded delimiters,
/// doubled-quote escapes, and both \n and \r\n line endings. Empty lines
/// are skipped; lines starting with '#' (outside quotes) are comments.
StatusOr<CsvDocument> ParseCsv(const std::string& text, char delim = ',');

/// Reads and parses a CSV file.
StatusOr<CsvDocument> ReadCsvFile(const std::string& path, char delim = ',');

/// Serializes rows to CSV text, quoting fields that need it.
std::string ToCsv(const std::vector<std::vector<std::string>>& rows,
                  char delim = ',');

/// Writes rows to a file as CSV.
Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows,
                    char delim = ',');

}  // namespace fta

#endif  // FTA_IO_CSV_H_
