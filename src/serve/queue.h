#ifndef FTA_SERVE_QUEUE_H_
#define FTA_SERVE_QUEUE_H_

// Bounded MPMC queue on the annotated mutex layer (DESIGN.md §13): the
// hand-off between the server's admission stage (producers) and its shard
// runners (consumers). Push never blocks — a full queue is a typed
// rejection, which is what lets admission control shed load instead of
// stalling the caller. Pop blocks until an item arrives or the queue is
// closed and empty, the shutdown handshake Drain() relies on.
//
// Capacity kUnbounded (0) disables the bound: TryPush never returns
// kFull. The server's token queue uses this — batch tokens are hints
// that can outlive their batch (a runner drains a whole shard FIFO under
// one token), so their count is NOT bounded by the admission accounting
// that bounds requests; see server.h.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>

#include "util/mutex.h"

namespace fta {

enum class QueuePush : uint8_t {
  kOk = 0,
  kFull = 1,
  kClosed = 2,
};

template <typename T>
class BoundedQueue {
 public:
  /// Capacity sentinel: no bound, TryPush never returns kFull.
  static constexpr size_t kUnbounded = 0;

  /// Capacity must be >= 1, or kUnbounded.
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  /// Non-blocking enqueue with a typed outcome.
  QueuePush TryPush(T item) FTA_EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      if (closed_) return QueuePush::kClosed;
      if (capacity_ != kUnbounded && items_.size() >= capacity_) {
        return QueuePush::kFull;
      }
      items_.push_back(std::move(item));
    }
    cv_.NotifyOne();
    return QueuePush::kOk;
  }

  /// Blocks until an item is available (true) or the queue is closed and
  /// drained (false).
  bool Pop(T* out) FTA_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    while (items_.empty() && !closed_) cv_.Wait(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Rejects further pushes and wakes every blocked Pop once the backlog
  /// drains. Idempotent.
  void Close() FTA_EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      closed_ = true;
    }
    cv_.NotifyAll();
  }

  size_t size() const FTA_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return items_.size();
  }

  /// kUnbounded (0) for an unbounded queue.
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  CondVar cv_;
  std::deque<T> items_ FTA_GUARDED_BY(mu_);
  bool closed_ FTA_GUARDED_BY(mu_) = false;
};

}  // namespace fta

#endif  // FTA_SERVE_QUEUE_H_
