#ifndef FTA_SERVE_REQUEST_H_
#define FTA_SERVE_REQUEST_H_

// Wire types of the multi-center assignment server: one request feeds one
// center's tick with arrival events; one response reports the solved tick.
//
// Batching protocol (the determinism contract of serve/server.h): every
// request names its (center, tick) explicitly, and the requests of one
// tick arrive back-to-back per center with the last one carrying
// `final_in_tick`. Admission — a single serialized stage — assigns global
// and per-center sequence numbers and appends the request to the center's
// open batch; the `final_in_tick` marker seals the batch. Batch CONTENT
// and ORDER are therefore fixed entirely at admission time, in Submit
// call order; worker scheduling can only decide WHEN a sealed batch is
// solved, never what is in it. That is why the per-center digests are
// bit-identical to a sequential reference loop at any thread count.

#include <cstdint>
#include <vector>

#include "stream/events.h"
#include "stream/tick_engine.h"

namespace fta {

/// One admission-control decision. Everything except kAdmitted is a typed
/// rejection; a rejected request leaves no trace in the server.
enum class AdmissionCode : uint8_t {
  kAdmitted = 0,
  /// Load shed: the admitted-but-unanswered request count is at the
  /// configured queue capacity. Retry after responses drain.
  kQueueFull = 1,
  /// The server is draining; no new work is accepted.
  kShuttingDown = 2,
  /// `center` does not name a shard.
  kUnknownCenter = 3,
  /// The tick violates the per-center protocol: it is below the next
  /// admissible tick, or a different tick arrived while a batch was still
  /// open (unsealed).
  kOutOfOrder = 4,
};

const char* AdmissionCodeName(AdmissionCode code);

/// One request: arrival events for one center's tick. Events must belong
/// to this tick (their absolute times at or before tick * tick_period,
/// after the previous tick's time) and be in feed order; the server
/// concatenates coalesced requests in admission order without re-sorting.
struct ServeRequest {
  uint32_t center = 0;
  uint64_t tick = 0;
  /// Seals the (center, tick) batch: after this request the batch is
  /// scheduled and the next admissible tick is `tick + 1`.
  bool final_in_tick = true;
  std::vector<StreamEvent> events;
};

/// One solved batch. Delivered through the response callback (from a
/// runner thread) and retained per shard for post-drain inspection.
struct ServeResponse {
  uint32_t center = 0;
  uint64_t tick = 0;
  /// 0-based index of this batch in the shard's solve order — dense, so a
  /// validator can detect dropped or reordered batches.
  uint64_t shard_seq = 0;
  /// Global admission sequence number of the batch's first request.
  uint64_t first_global_seq = 0;
  /// Requests coalesced into this batch (>= 1).
  size_t coalesced_requests = 0;
  /// Full per-tick record (instance shape, churn, solver rounds, delta
  /// counters, phase timings) — identical to the streaming TickStats.
  TickStats stats;
  /// The shard's running FNV-1a digest AFTER folding this tick. Equal to
  /// the sequential reference's digest at the same shard_seq iff behavior
  /// matches bit for bit.
  uint64_t shard_digest = 0;
  /// First-admission -> response-emission wall time. Observational only
  /// (never folded into digests).
  double latency_ms = 0.0;
};

}  // namespace fta

#endif  // FTA_SERVE_REQUEST_H_
