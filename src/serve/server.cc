#include "serve/server.h"

#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace fta {
namespace {

/// Registry-resident batch sketches (process-lifetime, lock-free writes
/// from any runner thread; magic-static init is thread-safe).
void ObserveBatch(const ServeResponse& r) {
  auto& reg = obs::MetricsRegistry::Global();
  static obs::QuantileSketch& latency = reg.GetSketch("serve/latency_ms", 0.01);
  static obs::QuantileSketch& solve = reg.GetSketch("serve/solve_ms", 0.01);
  static obs::QuantileSketch& coalesced =
      reg.GetSketch("serve/batch_requests", 0.01);
  latency.Observe(r.latency_ms);
  solve.Observe(r.stats.solve_ms);
  coalesced.Observe(static_cast<double>(r.coalesced_requests));
}

/// Mirrors a drained server's aggregates into the metrics registry.
void PublishServe(const ServeCounters& c) {
  auto& reg = obs::MetricsRegistry::Global();
  static obs::Counter& drains = reg.GetCounter("serve/drains");
  static obs::Counter& admitted = reg.GetCounter("serve/admitted");
  static obs::Counter& rejected_full = reg.GetCounter("serve/rejected_full");
  static obs::Counter& rejected_shutdown =
      reg.GetCounter("serve/rejected_shutdown");
  static obs::Counter& rejected_unknown =
      reg.GetCounter("serve/rejected_unknown");
  static obs::Counter& rejected_order = reg.GetCounter("serve/rejected_order");
  static obs::Counter& batches = reg.GetCounter("serve/batches");
  static obs::Counter& answered = reg.GetCounter("serve/answered");
  static obs::Counter& assignments = reg.GetCounter("serve/assignments");
  static obs::Counter& rounds = reg.GetCounter("serve/solver_rounds");
  drains.Increment();
  admitted.Add(c.admitted);
  rejected_full.Add(c.rejected_full);
  rejected_shutdown.Add(c.rejected_shutdown);
  rejected_unknown.Add(c.rejected_unknown);
  rejected_order.Add(c.rejected_order);
  batches.Add(c.batches);
  answered.Add(c.answered);
  assignments.Add(c.assignments);
  rounds.Add(c.solver_rounds);
}

}  // namespace

const char* AdmissionCodeName(AdmissionCode code) {
  switch (code) {
    case AdmissionCode::kAdmitted:
      return "admitted";
    case AdmissionCode::kQueueFull:
      return "queue-full";
    case AdmissionCode::kShuttingDown:
      return "shutting-down";
    case AdmissionCode::kUnknownCenter:
      return "unknown-center";
    case AdmissionCode::kOutOfOrder:
      return "out-of-order";
  }
  return "unknown";
}

TickEngineConfig ShardEngineConfig(const ServerConfig& config, uint32_t shard,
                                   const Point& location) {
  TickEngineConfig e = config.engine;
  e.center = location;
  // Decorrelate the shards' per-tick solver seeds (the reference loop
  // derives the identical value, so sharded ≡ sequential holds).
  e.seed =
      SplitMix64(config.engine.seed ^
                 (0x9e3779b97f4a7c15ull * (static_cast<uint64_t>(shard) + 1)))
          .Next();
  // Shard-level concurrency is the server's parallelism axis; the engines
  // themselves stay serial (runners already execute on the pool, and a
  // nested fan-out from a pool worker could deadlock RunBatch).
  e.vdps.num_threads = 1;
  e.vdps.pool = nullptr;
  e.fgt.engine.num_threads = 1;
  e.fgt.engine.pool = nullptr;
  e.iegt.engine.num_threads = 1;
  e.iegt.engine.pool = nullptr;
  return e;
}

/// One center's shard: the open/ready batch state behind `mu`, and the
/// tick engine behind `solve_mu` (held for the duration of a solve; the
/// busy protocol keeps it uncontended — at most one runner per shard).
struct AssignmentServer::Shard {
  Shard(TickEngineConfig cfg, size_t window_batches)
      : engine(std::move(cfg)), solve_window(window_batches) {}

  struct Batch {
    uint64_t tick = 0;
    uint64_t first_global_seq = 0;
    size_t requests = 0;
    std::vector<StreamEvent> events;
    /// Started at first admission; read at response emission (latency).
    Stopwatch admitted;
  };

  Mutex mu;
  /// Sealed batches awaiting a runner, FIFO in seal (= admission) order.
  std::deque<Batch> ready FTA_GUARDED_BY(mu);
  /// The coalescing batch of the center's current tick.
  Batch open FTA_GUARDED_BY(mu);
  bool open_active FTA_GUARDED_BY(mu) = false;
  /// At most one runner drains `ready` at a time — with FIFO pop order
  /// this serializes the shard's timeline however many runner threads the
  /// server has.
  bool busy FTA_GUARDED_BY(mu) = false;
  uint64_t batches_done FTA_GUARDED_BY(mu) = 0;
  uint64_t digest FTA_GUARDED_BY(mu) = 0;
  std::vector<ServeResponse> responses FTA_GUARDED_BY(mu);

  Mutex solve_mu;
  TickEngine engine FTA_GUARDED_BY(solve_mu);
  /// Rolling solve-latency window (internally locked).
  obs::RollingWindow solve_window;
};

AssignmentServer::AssignmentServer(ServerConfig config,
                                   std::vector<CenterSpec> centers,
                                   ThreadPool* pool)
    : config_(std::move(config)),
      pool_(pool),
      // Unbounded on purpose: a runner drains its whole shard FIFO under
      // one token, so sibling tokens go stale and outlive the in-flight
      // accounting that bounds *requests* — tying the token queue's
      // capacity to queue_capacity would overflow on such stale tokens.
      batch_queue_(BoundedQueue<uint32_t>::kUnbounded) {
  if (config_.num_threads == 0) config_.num_threads = 1;
  FTA_CHECK_MSG(pool_ != nullptr, "AssignmentServer requires a ThreadPool");
  FTA_CHECK_MSG(pool_->num_threads() >= config_.num_threads,
                "the injected pool must have >= config.num_threads threads");
  FTA_CHECK_MSG(!centers.empty(), "AssignmentServer requires >= 1 center");
  shards_.reserve(centers.size());
  for (uint32_t c = 0; c < centers.size(); ++c) {
    shards_.push_back(std::make_unique<Shard>(
        ShardEngineConfig(config_, c, centers[c].location),
        config_.window_batches));
  }
  admit_.assign(centers.size(), AdmitState{});
  if (!config_.start_paused) Resume();
}

AssignmentServer::~AssignmentServer() { Drain(); }

AdmissionCode AssignmentServer::Submit(ServeRequest request) {
  const uint32_t center = request.center;
  const bool seal = request.final_in_tick;
  MutexLock lock(&admit_mu_);
  if (draining_) {
    ++counters_.rejected_shutdown;
    return AdmissionCode::kShuttingDown;
  }
  if (center >= shards_.size()) {
    ++counters_.rejected_unknown;
    return AdmissionCode::kUnknownCenter;
  }
  AdmitState& as = admit_[center];
  const bool in_order = as.open ? request.tick == as.open_tick
                                : request.tick >= as.min_tick;
  if (!in_order) {
    ++counters_.rejected_order;
    return AdmissionCode::kOutOfOrder;
  }
  if (in_flight_ >= config_.queue_capacity) {
    ++counters_.rejected_full;
    return AdmissionCode::kQueueFull;
  }
  // Admitted. Sequence and batch membership are fixed here, under the
  // admission mutex, in Submit call order — the determinism linchpin.
  ++in_flight_;
  ++counters_.admitted;
  const uint64_t gseq = global_seq_++;
  if (!as.open) {
    as.open = true;
    as.open_tick = request.tick;
  }
  if (seal) {
    as.open = false;
    as.min_tick = request.tick + 1;
  }
  Shard& s = *shards_[center];
  {
    MutexLock slock(&s.mu);
    if (!s.open_active) {
      s.open = Shard::Batch();
      s.open.tick = request.tick;
      s.open.first_global_seq = gseq;
      s.open_active = true;
    }
    ++s.open.requests;
    for (StreamEvent& ev : request.events) {
      s.open.events.push_back(std::move(ev));
    }
    if (seal) {
      s.ready.push_back(std::move(s.open));
      s.open = Shard::Batch();
      s.open_active = false;
    }
  }
  if (seal) {
    // Pushed while still holding admit_mu_: Drain() flips draining_ under
    // this mutex strictly before it can Close() the queue, and this thread
    // observed draining_ == false above, so kClosed is unreachable; the
    // token queue is unbounded, so kFull is too.
    const QueuePush r = batch_queue_.TryPush(center);
    FTA_CHECK_MSG(r == QueuePush::kOk,
                  "token push failed under the admission lock");
  }
  return AdmissionCode::kAdmitted;
}

void AssignmentServer::Resume() {
  size_t launch = 0;
  {
    MutexLock lock(&admit_mu_);
    if (!started_) {
      started_ = true;
      runners_active_ = config_.num_threads;
      launch = config_.num_threads;
    }
  }
  for (size_t i = 0; i < launch; ++i) {
    pool_->Submit([this] { RunnerLoop(); });
  }
}

void AssignmentServer::RunnerLoop() {
  uint32_t center = 0;
  while (batch_queue_.Pop(&center)) RunShard(center);
  MutexLock lock(&admit_mu_);
  --runners_active_;
  drain_cv_.NotifyAll();
}

void AssignmentServer::RunShard(uint32_t center) {
  Shard& s = *shards_[center];
  {
    MutexLock lock(&s.mu);
    // Another runner owns this shard; it re-checks `ready` before
    // releasing `busy`, so the batch this token announced is covered.
    if (s.busy) return;
    s.busy = true;
  }
  for (;;) {
    Shard::Batch batch;
    {
      MutexLock lock(&s.mu);
      if (s.ready.empty()) {
        s.busy = false;
        return;
      }
      batch = std::move(s.ready.front());
      s.ready.pop_front();
    }

    TickStats ts;
    uint64_t digest = 0;
    {
      MutexLock solve(&s.solve_mu);
      FTA_SPAN("serve/batch");
      const double now =
          static_cast<double>(batch.tick) * config_.tick_period;
      const Status st = s.engine.Tick(batch.tick, now, batch.events, &ts);
      // Tick errors are configuration bugs (non-patchable catalog config
      // on the warm path); the constructor-checked configs cannot hit it.
      FTA_CHECK_MSG(st.ok(), "serve shard tick failed");
      digest = s.engine.digest();
    }

    ServeResponse resp;
    resp.center = center;
    resp.tick = batch.tick;
    resp.first_global_seq = batch.first_global_seq;
    resp.coalesced_requests = batch.requests;
    resp.stats = ts;
    resp.shard_digest = digest;
    resp.latency_ms = batch.admitted.ElapsedMillis();
    {
      MutexLock lock(&s.mu);
      resp.shard_seq = s.batches_done++;
      s.digest = digest;
      s.responses.push_back(resp);
    }
    s.solve_window.Observe(ts.solve_ms);
    s.solve_window.Advance();
    ObserveBatch(resp);
    if (callback_) callback_(resp);
    {
      MutexLock lock(&admit_mu_);
      ++counters_.batches;
      counters_.answered += batch.requests;
      counters_.assignments += ts.assigned_workers;
      counters_.solver_rounds += static_cast<uint64_t>(ts.rounds);
      counters_.catalog_ms += ts.catalog_ms;
      counters_.solve_ms += ts.solve_ms;
      in_flight_ -= batch.requests;
      if (in_flight_ == 0) drain_cv_.NotifyAll();
    }
  }
}

void AssignmentServer::Drain() {
  // 1. Stop admission and force-seal every open batch, so each admitted
  //    request is answered even when its tick never saw final_in_tick.
  //    The thread that flips draining_ owns the drain sequence; any
  //    concurrent caller (an explicit Drain racing the destructor's, say)
  //    waits for the owner to finish rather than running it twice.
  {
    MutexLock lock(&admit_mu_);
    if (draining_) {
      while (!drained_) drain_cv_.Wait(admit_mu_);
      return;
    }
    draining_ = true;
    for (uint32_t c = 0; c < static_cast<uint32_t>(admit_.size()); ++c) {
      if (!admit_[c].open) continue;
      admit_[c].open = false;
      admit_[c].min_tick = admit_[c].open_tick + 1;
      Shard& s = *shards_[c];
      bool force_sealed = false;
      {
        MutexLock slock(&s.mu);
        if (s.open_active) {
          s.ready.push_back(std::move(s.open));
          s.open = Shard::Batch();
          s.open_active = false;
          force_sealed = true;
        }
      }
      // Unbounded queue, not yet closed (only this owner closes it, below):
      // the push cannot fail.
      if (force_sealed) {
        FTA_CHECK_MSG(batch_queue_.TryPush(c) == QueuePush::kOk,
                      "token push failed during drain");
      }
    }
  }
  // 2. Runners must be live to drain the backlog (a paused server drains
  //    too).
  Resume();
  // 3. Every admitted request answered...
  {
    MutexLock lock(&admit_mu_);
    while (in_flight_ > 0) drain_cv_.Wait(admit_mu_);
  }
  // 4. ...then park the runners and mirror the aggregates.
  batch_queue_.Close();
  ServeCounters final_counters;
  {
    MutexLock lock(&admit_mu_);
    while (runners_active_ > 0) drain_cv_.Wait(admit_mu_);
    final_counters = counters_;
  }
  PublishServe(final_counters);
  // 5. Release any waiters from step 1.
  MutexLock lock(&admit_mu_);
  drained_ = true;
  drain_cv_.NotifyAll();
}

ServeCounters AssignmentServer::counters() const {
  MutexLock lock(&admit_mu_);
  return counters_;
}

size_t AssignmentServer::in_flight() const {
  MutexLock lock(&admit_mu_);
  return in_flight_;
}

uint64_t AssignmentServer::shard_digest(uint32_t center) const {
  Shard& s = *shards_[center];
  MutexLock lock(&s.mu);
  return s.digest;
}

const std::vector<ServeResponse>& AssignmentServer::responses(
    uint32_t center) const {
  Shard& s = *shards_[center];
  MutexLock lock(&s.mu);
  return s.responses;  // stable post-Drain: the runners are parked
}

std::vector<uint64_t> AssignmentServer::shard_batch_counts() const {
  std::vector<uint64_t> counts;
  counts.reserve(shards_.size());
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    counts.push_back(shard->batches_done);
  }
  return counts;
}

obs::WindowStats AssignmentServer::shard_solve_window(uint32_t center) const {
  return shards_[center]->solve_window.Stats();
}

std::string AssignmentServer::PrometheusText() const {
  std::string out =
      obs::ToPrometheusText(obs::MetricsRegistry::Global().Snapshot());
  for (size_t c = 0; c < shards_.size(); ++c) {
    obs::AppendWindowSummary(StrFormat("serve/shard%zu/solve_ms", c),
                             shards_[c]->solve_window.Stats(), out);
  }
  return out;
}

}  // namespace fta
