#include "serve/replay.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iterator>
#include <memory>
#include <thread>
#include <utility>

#include "io/csv.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace fta {
namespace {

/// The tick whose `now` first covers an event at time τ — the inverse of
/// the stream dispatcher's drain predicate (time <= tick * period).
uint64_t TickOf(double time, double period) {
  if (time <= 0.0) return 0;
  uint64_t t = static_cast<uint64_t>(std::ceil(time / period));
  // Guard the multiply-rounding edge so time <= t * period always holds.
  while (static_cast<double>(t) * period < time) ++t;
  return t;
}

}  // namespace

ServeTrace BuildServeTrace(const CityWorkload& city,
                           size_t max_requests_per_tick, uint64_t seed) {
  FTA_CHECK_MSG(max_requests_per_tick >= 1,
                "max_requests_per_tick must be >= 1");
  const size_t num_centers = city.centers.size();
  ServeTrace trace;
  trace.centers = city.centers;
  trace.tick_period = city.tick_period;
  trace.ticks = city.ticks;

  // Bucket each center's (sorted) stream by tick; events past the replay
  // horizon are dropped, exactly as a `ticks`-long dispatcher run would
  // never drain them.
  std::vector<std::vector<std::vector<StreamEvent>>> buckets(num_centers);
  for (size_t c = 0; c < num_centers; ++c) {
    buckets[c].resize(city.ticks);
    for (const StreamEvent& ev : city.events[c]) {
      const uint64_t t = TickOf(ev.time, city.tick_period);
      if (t >= city.ticks) continue;
      buckets[c][t].push_back(ev);
    }
  }

  Rng rng(SplitMix64(seed ^ 0xc6a4a7935bd1e995ull).Next());
  for (uint64_t t = 0; t < city.ticks; ++t) {
    // Split every center's bucket into coalescible parts...
    std::vector<std::vector<ServeRequest>> per_center(num_centers);
    for (size_t c = 0; c < num_centers; ++c) {
      std::vector<StreamEvent>& bucket = buckets[c][t];
      size_t parts = 1;
      if (bucket.size() > 1 && max_requests_per_tick > 1) {
        parts = 1 + static_cast<size_t>(rng.NextBounded(static_cast<uint64_t>(
                        std::min(max_requests_per_tick, bucket.size()))));
      }
      const size_t base = bucket.size() / parts;
      const size_t extra = bucket.size() % parts;
      size_t at = 0;
      for (size_t p = 0; p < parts; ++p) {
        ServeRequest req;
        req.center = static_cast<uint32_t>(c);
        req.tick = t;
        req.final_in_tick = (p + 1 == parts);
        const size_t take = base + (p < extra ? 1 : 0);
        req.events.assign(bucket.begin() + static_cast<ptrdiff_t>(at),
                          bucket.begin() + static_cast<ptrdiff_t>(at + take));
        at += take;
        per_center[c].push_back(std::move(req));
      }
    }
    // ...then interleave the centers round-robin, so concurrent admission
    // sees the batching protocol under cross-center traffic, not neatly
    // grouped centers.
    bool emitted = true;
    size_t round = 0;
    while (emitted) {
      emitted = false;
      for (size_t c = 0; c < num_centers; ++c) {
        if (round < per_center[c].size()) {
          trace.requests.push_back(std::move(per_center[c][round]));
          emitted = true;
        }
      }
      ++round;
    }
  }
  return trace;
}

ReferenceResult RunSequentialReference(const ServerConfig& config,
                                       const ServeTrace& trace) {
  const size_t num_centers = trace.centers.size();
  std::vector<std::unique_ptr<TickEngine>> engines;
  engines.reserve(num_centers);
  for (uint32_t c = 0; c < num_centers; ++c) {
    engines.push_back(std::make_unique<TickEngine>(
        ShardEngineConfig(config, c, trace.centers[c])));
  }

  ReferenceResult ref;
  ref.digests.assign(num_centers, 0);
  ref.responses.resize(num_centers);

  struct OpenBatch {
    bool active = false;
    uint64_t tick = 0;
    uint64_t first_global_seq = 0;
    size_t requests = 0;
    std::vector<StreamEvent> events;
  };
  std::vector<OpenBatch> open(num_centers);

  uint64_t gseq = 0;
  for (const ServeRequest& req : trace.requests) {
    FTA_CHECK_MSG(req.center < num_centers, "trace names an unknown center");
    OpenBatch& o = open[req.center];
    if (!o.active) {
      o.active = true;
      o.tick = req.tick;
      o.first_global_seq = gseq;
      o.requests = 0;
      o.events.clear();
    }
    FTA_CHECK_MSG(req.tick == o.tick,
                  "trace interleaves ticks within an open batch");
    ++o.requests;
    o.events.insert(o.events.end(), req.events.begin(), req.events.end());
    ++gseq;
    if (!req.final_in_tick) continue;

    TickStats ts;
    const double now = static_cast<double>(o.tick) * trace.tick_period;
    const Status st =
        engines[req.center]->Tick(o.tick, now, o.events, &ts);
    FTA_CHECK_MSG(st.ok(), "reference tick failed");

    ServeResponse r;
    r.center = req.center;
    r.tick = o.tick;
    r.shard_seq = ref.responses[req.center].size();
    r.first_global_seq = o.first_global_seq;
    r.coalesced_requests = o.requests;
    r.stats = ts;
    r.shard_digest = engines[req.center]->digest();
    ref.digests[req.center] = r.shard_digest;
    ref.responses[req.center].push_back(std::move(r));
    ++ref.batches;
    ref.assignments += ts.assigned_workers;
    o.active = false;
  }
  return ref;
}

StatusOr<uint64_t> ReplayTrace(AssignmentServer& server,
                               const ServeTrace& trace,
                               size_t max_retries_per_request) {
  uint64_t retries = 0;
  for (const ServeRequest& req : trace.requests) {
    size_t attempts = 0;
    for (;;) {
      const AdmissionCode code = server.Submit(req);
      if (code == AdmissionCode::kAdmitted) break;
      if (code != AdmissionCode::kQueueFull) {
        return Status::FailedPrecondition(
            StrFormat("replay rejected: %s (center=%u tick=%llu)",
                      AdmissionCodeName(code), req.center,
                      static_cast<unsigned long long>(req.tick)));
      }
      if (++attempts > max_retries_per_request) {
        return Status::FailedPrecondition(
            "replay gave up: queue stayed full past the retry budget");
      }
      ++retries;
      // Shed: the runners own the backlog; give them the core.
      std::this_thread::yield();
    }
  }
  return retries;
}

std::string SerializeServeTrace(const ServeTrace& trace) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back(
      {"#", "FTA serve trace v1: meta,tick_period,ticks | center,x,y | "
            "req,center,tick,final | w,time,x,y,maxdp,departure | "
            "t,time,x,y,reward,queue_expiry,service_window"});
  rows.push_back({"meta", StrFormat("%.17g", trace.tick_period),
                  StrFormat("%llu",
                            static_cast<unsigned long long>(trace.ticks))});
  for (const Point& p : trace.centers) {
    rows.push_back(
        {"center", StrFormat("%.17g", p.x), StrFormat("%.17g", p.y)});
  }
  for (const ServeRequest& req : trace.requests) {
    rows.push_back({"req", StrFormat("%u", req.center),
                    StrFormat("%llu",
                              static_cast<unsigned long long>(req.tick)),
                    req.final_in_tick ? "1" : "0"});
    for (const StreamEvent& ev : req.events) {
      if (ev.kind == StreamEventKind::kWorkerArrival) {
        rows.push_back({"w", StrFormat("%.17g", ev.time),
                        StrFormat("%.17g", ev.worker.location.x),
                        StrFormat("%.17g", ev.worker.location.y),
                        StrFormat("%u", ev.worker.max_delivery_points),
                        StrFormat("%.17g", ev.departure)});
      } else {
        rows.push_back({"t", StrFormat("%.17g", ev.time),
                        StrFormat("%.17g", ev.location.x),
                        StrFormat("%.17g", ev.location.y),
                        StrFormat("%.17g", ev.reward),
                        StrFormat("%.17g", ev.queue_expiry),
                        StrFormat("%.17g", ev.service_window)});
      }
    }
  }
  return ToCsv(rows);
}

Status SaveServeTrace(const std::string& path, const ServeTrace& trace) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << SerializeServeTrace(trace);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

namespace {

StatusOr<double> Field(const std::vector<std::string>& row, size_t i) {
  if (i >= row.size()) {
    return Status::ParseError(
        StrFormat("'%s' row is missing field %zu", row[0].c_str(), i));
  }
  return ParseDouble(row[i]);
}

}  // namespace

StatusOr<ServeTrace> DeserializeServeTrace(const std::string& text) {
  StatusOr<CsvDocument> doc = ParseCsv(text);
  if (!doc.ok()) return doc.status();
  ServeTrace trace;
  bool have_meta = false;
  for (const auto& row : doc->rows) {
    if (row.empty()) continue;
    if (row[0] == "meta") {
      auto period = Field(row, 1);
      auto ticks = Field(row, 2);
      if (!period.ok()) return period.status();
      if (!ticks.ok()) return ticks.status();
      if (*period <= 0.0) return Status::ParseError("non-positive tick_period");
      trace.tick_period = *period;
      trace.ticks = static_cast<uint64_t>(*ticks);
      have_meta = true;
    } else if (row[0] == "center") {
      auto x = Field(row, 1);
      auto y = Field(row, 2);
      if (!x.ok()) return x.status();
      if (!y.ok()) return y.status();
      trace.centers.push_back(Point{*x, *y});
    } else if (row[0] == "req") {
      auto center = Field(row, 1);
      auto tick = Field(row, 2);
      auto final_in_tick = Field(row, 3);
      if (!center.ok()) return center.status();
      if (!tick.ok()) return tick.status();
      if (!final_in_tick.ok()) return final_in_tick.status();
      ServeRequest req;
      req.center = static_cast<uint32_t>(*center);
      req.tick = static_cast<uint64_t>(*tick);
      req.final_in_tick = *final_in_tick != 0.0;
      if (req.center >= trace.centers.size()) {
        return Status::ParseError("req row names an undeclared center");
      }
      trace.requests.push_back(std::move(req));
    } else if (row[0] == "w" || row[0] == "t") {
      if (trace.requests.empty()) {
        return Status::ParseError("event row before the first req row");
      }
      StreamEvent ev;
      ev.kind = row[0] == "w" ? StreamEventKind::kWorkerArrival
                              : StreamEventKind::kTaskArrival;
      auto time = Field(row, 1);
      auto x = Field(row, 2);
      auto y = Field(row, 3);
      if (!time.ok()) return time.status();
      if (!x.ok()) return x.status();
      if (!y.ok()) return y.status();
      ev.time = *time;
      if (ev.kind == StreamEventKind::kWorkerArrival) {
        auto maxdp = Field(row, 4);
        auto departure = Field(row, 5);
        if (!maxdp.ok()) return maxdp.status();
        if (!departure.ok()) return departure.status();
        ev.worker.location = Point{*x, *y};
        ev.worker.max_delivery_points = static_cast<uint32_t>(*maxdp);
        ev.departure = *departure;
      } else {
        auto reward = Field(row, 4);
        auto queue_expiry = Field(row, 5);
        auto service_window = Field(row, 6);
        if (!reward.ok()) return reward.status();
        if (!queue_expiry.ok()) return queue_expiry.status();
        if (!service_window.ok()) return service_window.status();
        ev.location = Point{*x, *y};
        ev.reward = *reward;
        ev.queue_expiry = *queue_expiry;
        ev.service_window = *service_window;
      }
      trace.requests.back().events.push_back(std::move(ev));
    } else if (StartsWith(row[0], "#")) {
      continue;
    } else {
      return Status::ParseError("unknown row kind: '" + row[0] + "'");
    }
  }
  if (!have_meta) return Status::ParseError("serve trace is missing meta row");
  if (trace.centers.empty()) {
    return Status::ParseError("serve trace declares no centers");
  }
  return trace;
}

StatusOr<ServeTrace> LoadServeTrace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return DeserializeServeTrace(text);
}

}  // namespace fta
