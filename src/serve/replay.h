#ifndef FTA_SERVE_REPLAY_H_
#define FTA_SERVE_REPLAY_H_

// Traffic replay for the assignment server: turns a synthesized city
// (datagen/city.h) into the server's request trace, runs the sequential
// reference loop the determinism contract is stated against, and drives a
// live server through the trace. The trace also round-trips through a
// CSV file so `fta_tool serve` can replay a saved workload.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "datagen/city.h"
#include "geo/point.h"
#include "serve/request.h"
#include "serve/server.h"
#include "util/status.h"

namespace fta {

/// A city workload flattened into submission order.
struct ServeTrace {
  std::vector<Point> centers;
  double tick_period = 0.25;
  uint64_t ticks = 0;
  /// Requests in the exact order the driver submits them: ticks ascend,
  /// and within a tick the centers' requests interleave round-robin; each
  /// (center, tick) run ends with `final_in_tick` (the admission protocol
  /// of serve/request.h).
  std::vector<ServeRequest> requests;
};

/// Buckets each center's events by tick (event at time τ lands in the
/// tick whose `now` first covers it, mirroring the stream dispatcher's
/// drain; events past the horizon are dropped) and splits every non-empty
/// bucket into 1..max_requests_per_tick coalescible requests — the split
/// points are drawn from `seed`, so replays exercise admission batching,
/// not just 1:1 request-per-tick traffic. Every (center, tick) pair emits
/// at least one request, so all shards advance through all ticks.
ServeTrace BuildServeTrace(const CityWorkload& city,
                           size_t max_requests_per_tick, uint64_t seed);

/// The sequential ground truth: one TickEngine per center constructed via
/// ShardEngineConfig (byte-equal to the server's shards), fed the trace in
/// submission order on a single thread. `responses[c]` is what a correct
/// server must emit for shard c, in shard_seq order, digests included.
struct ReferenceResult {
  /// Final running digest per center.
  std::vector<uint64_t> digests;
  /// Per-center responses; latency_ms is 0 (observational field).
  std::vector<std::vector<ServeResponse>> responses;
  uint64_t batches = 0;
  uint64_t assignments = 0;
};

ReferenceResult RunSequentialReference(const ServerConfig& config,
                                       const ServeTrace& trace);

/// Feeds the trace to a live server in submission order. kQueueFull is
/// retried (bounded) after yielding to the runners — the shedding path is
/// load control, not an error; any other rejection aborts the replay.
/// Returns the number of kQueueFull retries performed.
StatusOr<uint64_t> ReplayTrace(AssignmentServer& server,
                               const ServeTrace& trace,
                               size_t max_retries_per_request = 1 << 20);

/// CSV round-trip (schema: meta/center/req/w/t rows; see replay.cc).
std::string SerializeServeTrace(const ServeTrace& trace);
Status SaveServeTrace(const std::string& path, const ServeTrace& trace);
StatusOr<ServeTrace> DeserializeServeTrace(const std::string& text);
StatusOr<ServeTrace> LoadServeTrace(const std::string& path);

}  // namespace fta

#endif  // FTA_SERVE_REPLAY_H_
