#ifndef FTA_SERVE_SERVER_H_
#define FTA_SERVE_SERVER_H_

// Sharded multi-center assignment server (ROADMAP item 2's chassis): a
// bounded admission stage (in-flight request accounting) in front of one
// TickEngine shard per distribution center, solved concurrently on a
// ThreadPool.
//
// Pipeline:  Submit() → admission control (typed reject/shed) → per-center
// batch coalescing (requests of one tick merge into one solve) → sealed
// batches flow through an MPMC token queue to runner threads → each runner
// drains its shard FIFO, runs the shared stream/ tick machinery (delta-
// patched catalog, warm-started solver), and emits a sequence-numbered
// response.
//
// Determinism argument (DESIGN.md §14): the paper solves centers
// independently (Section VII-A), so a center is a closed timeline — the
// only cross-thread hazard is WHICH requests form a tick's batch and in
// WHAT order. Both are fixed at admission, a single mutex-serialized
// stage that assigns sequence numbers and appends to the center's open
// batch in Submit call order; the final_in_tick marker seals the batch
// before it becomes runnable. Runners obey two invariants — at most one
// runner per shard at a time (the busy flag), sealed batches solved in
// FIFO order — so scheduling decides only when a batch runs. Per-center
// digests are therefore bit-identical to a sequential reference loop
// (serve/replay.h) at any thread count, pinned by
// tests/serve_identity_test.cc and the bench_serve gate.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "geo/point.h"
#include "obs/window.h"
#include "serve/queue.h"
#include "serve/request.h"
#include "stream/tick_engine.h"
#include "util/mutex.h"
#include "util/thread_pool.h"

namespace fta {

/// One distribution center a shard will own.
struct CenterSpec {
  Point location;
};

struct ServerConfig {
  /// Shard-runner concurrency: how many pool workers consume the batch
  /// queue. The injected pool must have at least this many threads.
  size_t num_threads = 1;
  /// Admission bound: maximum requests admitted but not yet answered.
  /// At the bound Submit() sheds with AdmissionCode::kQueueFull.
  size_t queue_capacity = 1024;
  /// Tick t of every shard runs at absolute time t * tick_period.
  double tick_period = 1.0;
  /// Per-shard engine template. `center` is overridden by each shard's
  /// CenterSpec and `seed` is decorrelated per shard (see
  /// ShardEngineConfig); solver/catalog threading is forced serial —
  /// shard-level concurrency is the server's parallelism axis, and
  /// runners execute on the pool itself.
  TickEngineConfig engine;
  /// Rolling-window length (in batches) of the per-shard solve windows.
  size_t window_batches = 32;
  /// Construct with runners parked: admitted work queues up until
  /// Resume(). Lets tests fill the queue deterministically.
  bool start_paused = false;
};

/// The engine configuration shard `shard` of `config` runs: the template
/// with the shard's center and a SplitMix64-decorrelated seed. Exposed so
/// the sequential reference loop (serve/replay.h) constructs byte-equal
/// engines.
TickEngineConfig ShardEngineConfig(const ServerConfig& config, uint32_t shard,
                                   const Point& location);

/// Whole-server aggregation, mirrored into the obs metrics registry at
/// Drain().
struct ServeCounters {
  uint64_t admitted = 0;
  uint64_t rejected_full = 0;
  uint64_t rejected_shutdown = 0;
  uint64_t rejected_unknown = 0;
  uint64_t rejected_order = 0;
  /// Sealed batches solved (== responses emitted).
  uint64_t batches = 0;
  /// Admitted requests answered through a batch (== admitted after a
  /// clean drain).
  uint64_t answered = 0;
  /// Workers assigned a non-null strategy, summed over batches.
  uint64_t assignments = 0;
  uint64_t solver_rounds = 0;
  double catalog_ms = 0.0;
  double solve_ms = 0.0;
};

/// Long-running multi-center assignment service. Construction spawns no
/// threads of its own: runners are jobs on the injected pool. The server
/// must be Drain()ed (or destroyed, which drains) before the pool.
class AssignmentServer {
 public:
  /// Invoked by a runner thread after each solved batch. Callbacks for
  /// different shards can run concurrently; per shard they arrive in
  /// shard_seq order. Must be thread-safe.
  using ResponseCallback = std::function<void(const ServeResponse&)>;

  /// `pool` is non-owning and must outlive the server; it needs at least
  /// config.num_threads threads (checked). One shard per center.
  AssignmentServer(ServerConfig config, std::vector<CenterSpec> centers,
                   ThreadPool* pool);
  ~AssignmentServer();

  AssignmentServer(const AssignmentServer&) = delete;
  AssignmentServer& operator=(const AssignmentServer&) = delete;

  /// Optional streaming sink; set before the first Submit().
  void set_response_callback(ResponseCallback cb) { callback_ = std::move(cb); }

  /// Admission control. Never blocks; every outcome other than kAdmitted
  /// is a typed rejection that leaves no server state behind.
  AdmissionCode Submit(ServeRequest request) FTA_EXCLUDES(admit_mu_);

  /// Launches the runners of a start_paused server. Idempotent.
  void Resume() FTA_EXCLUDES(admit_mu_);

  /// Stops admission, force-seals any open batches so every admitted
  /// request is answered, completes all in-flight work, and parks the
  /// runners. Idempotent and safe to call concurrently (the first caller
  /// runs the sequence once; the rest block until it completes); implied
  /// by destruction.
  void Drain() FTA_EXCLUDES(admit_mu_);

  size_t num_shards() const { return shards_.size(); }
  /// Admitted-but-unanswered requests right now (tests; racy by nature).
  size_t in_flight() const FTA_EXCLUDES(admit_mu_);

  // ---- Post-Drain inspection (stable once Drain() returned). ----
  /// Whole-server aggregates. Coherent any time (one lock), and includes
  /// rejections recorded after the drain (e.g. kShuttingDown sheds).
  ServeCounters counters() const FTA_EXCLUDES(admit_mu_);
  /// The shard's running digest after its last batch.
  uint64_t shard_digest(uint32_t center) const;
  /// Every response the shard emitted, in shard_seq order.
  const std::vector<ServeResponse>& responses(uint32_t center) const;
  /// Batches solved per shard — the balance stats bench_serve reports.
  std::vector<uint64_t> shard_batch_counts() const;
  /// Per-shard rolling-window reading over solve_ms of the last
  /// config.window_batches batches.
  obs::WindowStats shard_solve_window(uint32_t center) const;
  /// Prometheus page: global registry snapshot plus per-shard windows.
  std::string PrometheusText() const;

 private:
  struct Shard;

  void RunnerLoop() FTA_EXCLUDES(admit_mu_);
  void RunShard(uint32_t center) FTA_EXCLUDES(admit_mu_);

  ServerConfig config_;
  ThreadPool* pool_;
  ResponseCallback callback_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Sealed-batch hand-off to the runners. Unbounded: tokens are hints,
  /// and a runner drains its whole shard FIFO under one token, so sibling
  /// tokens go stale in here after their batches are answered (and their
  /// requests left in_flight_). Request-level boundedness is enforced by
  /// the in_flight_ check in Submit, never by this queue; tokens are
  /// pushed under admit_mu_, so Drain's Close() cannot be ordered between
  /// an admission and its push (kClosed is unreachable in Submit).
  BoundedQueue<uint32_t> batch_queue_;

  /// Per-center admission protocol state (guarded by admit_mu_, not the
  /// shard mutex: validation and sequencing happen entirely inside the
  /// admission stage).
  struct AdmitState {
    /// A batch for open_tick is coalescing (not yet sealed).
    bool open = false;
    uint64_t open_tick = 0;
    /// Smallest admissible tick when no batch is open.
    uint64_t min_tick = 0;
  };

  mutable Mutex admit_mu_;
  CondVar drain_cv_;
  bool draining_ FTA_GUARDED_BY(admit_mu_) = false;
  bool started_ FTA_GUARDED_BY(admit_mu_) = false;
  uint64_t global_seq_ FTA_GUARDED_BY(admit_mu_) = 0;
  size_t in_flight_ FTA_GUARDED_BY(admit_mu_) = 0;
  size_t runners_active_ FTA_GUARDED_BY(admit_mu_) = 0;
  std::vector<AdmitState> admit_ FTA_GUARDED_BY(admit_mu_);
  ServeCounters counters_ FTA_GUARDED_BY(admit_mu_);
  /// Set by the draining thread once the full sequence (including the
  /// counter publish) completed; concurrent Drain() callers wait on
  /// drain_cv_ for it instead of re-running the sequence.
  bool drained_ FTA_GUARDED_BY(admit_mu_) = false;
};

}  // namespace fta

#endif  // FTA_SERVE_SERVER_H_
