#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geo/distance_matrix.h"
#include "geo/grid_index.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/math_util.h"
#include "util/stopwatch.h"
#include "vdps/catalog_internal.h"
#include "vdps/generators.h"
#include "vdps/pareto.h"

namespace fta {
namespace {

/// DP state key: subset mask * n + last delivery point.
using StateKey = uint64_t;

StateKey MakeKey(uint32_t mask, uint32_t last, uint32_t n) {
  return static_cast<StateKey>(mask) * n + last;
}

}  // namespace

GenerationResult GenerateCVdpsExact(const Instance& instance,
                                    const VdpsConfig& config) {
  const uint32_t n = static_cast<uint32_t>(instance.num_delivery_points());
  FTA_CHECK_MSG(n <= 24,
                "GenerateCVdpsExact is a bitmask DP; use "
                "GenerateCVdpsSequences beyond 24 delivery points");
  GenerationResult result;
  if (n == 0) return result;
  GenerationCounters& c = result.counters;

  const uint32_t cap =
      config.max_set_size == 0 ? n : std::min(config.max_set_size, n);
  const DistanceMatrix dm(instance.center(), instance.DeliveryPointLocations(),
                          instance.travel());

  // ε-adjacency rows (ascending, including self) replace the O(n) distance
  // rescan per state expansion — the same precompute, and therefore the
  // exact same neighborhood predicate, as the sequence enumerators.
  RadiusAdjacency adj;
  const bool pruned = !std::isinf(config.epsilon);
  if (pruned) {
    Stopwatch adj_sw;
    FTA_SPAN("vdps/adjacency");
    const GridIndex grid(instance.DeliveryPointLocations(), config.epsilon);
    adj = grid.BuildRadiusAdjacency(config.epsilon, nullptr);
    c.adjacency_ms = adj_sw.ElapsedMillis();
    c.adjacency_pairs = adj.num_pairs();
  }

  Stopwatch enum_sw;
  FTA_SPAN("vdps/enumerate");
  // dp[(mask, last)] -> Pareto frontier of (arrival, slack) with routes.
  std::unordered_map<StateKey, std::vector<SequenceOption>> dp;

  // Base case |Q| = 1 (Equation 3): center -> dp_j.
  std::vector<std::pair<uint32_t, SequenceOption>> roots;
  for (uint32_t j = 0; j < n; ++j) {
    const double arr = dm.FromOrigin(j);
    const double slack = instance.delivery_point(j).earliest_expiry() - arr;
    if (slack < 0.0) continue;  // infeasible even with offset 0
    SequenceOption opt;
    opt.route = {j};
    opt.center_time = arr;
    opt.slack = slack;
    roots.emplace_back(j, std::move(opt));
  }
  // Size the table from the level-1 frontier: each feasible root seeds a
  // state and each deeper level multiplies by a bounded branching factor.
  // (The old 2^min(n,20) reservation allocated a million-bucket table even
  // for a 10-point instance.)
  dp.reserve(roots.size() * (cap > 1 ? 8 : 1));
  for (auto& [j, opt] : roots) {
    dp[MakeKey(1u << j, j, n)].push_back(std::move(opt));
  }
  roots.clear();

  ParetoStats stats;
  std::unordered_map<uint32_t, CVdpsEntry> by_mask;
  // Expand masks in increasing numeric order; every submask precedes its
  // supersets, which realizes Algorithm 1's by-size iteration (Equation 4).
  const uint32_t full = (n >= 32) ? 0xffffffffu : ((1u << n) - 1);
  for (uint32_t mask = 1; mask <= full; ++mask) {
    const int size = __builtin_popcount(mask);
    if (size > static_cast<int>(cap)) continue;
    for (uint32_t last = 0; last < n; ++last) {
      if ((mask & (1u << last)) == 0) continue;
      const auto it = dp.find(MakeKey(mask, last, n));
      // operator[] during expansion default-creates target states that may
      // end up with no feasible option; those are not C-VDPSs.
      if (it == dp.end() || it->second.empty()) continue;
      ++c.states_expanded;

      // Collect this state into its set's entry now: expansions only write
      // strictly larger masks, so (mask, last) is final once the sweep
      // reaches it. Collecting in (mask asc, last asc) order here makes
      // each entry's frontier deterministic, unlike the old post-hoc sweep
      // in unordered_map bucket order.
      CVdpsEntry& entry = by_mask[mask];
      if (entry.dps.empty()) {
        for (uint32_t j = 0; j < n; ++j) {
          if (mask & (1u << j)) {
            entry.dps.push_back(j);
            entry.total_reward += instance.delivery_point(j).total_reward();
          }
        }
      }
      for (const SequenceOption& opt : it->second) {
        c.route_bytes_copied += opt.route.size() * sizeof(uint32_t);
        ++c.route_allocs;
        InsertParetoOption(entry.options, opt, config.max_pareto, &stats);
      }

      if (size == static_cast<int>(cap)) continue;  // no further expansion
      // Copy the source frontier by value (<= max_pareto short routes):
      // the dp[] target lookups below can rehash the table, which would
      // invalidate `it` — the old code re-found the source after every
      // target access instead.
      const std::vector<SequenceOption> sources = it->second;
      const auto expand_to = [&](uint32_t next) {
        if (mask & (1u << next)) return;
        const double hop = dm.Between(last, next);
        const double e_next = instance.delivery_point(next).earliest_expiry();
        auto& target = dp[MakeKey(mask | (1u << next), next, n)];
        for (const SequenceOption& src : sources) {
          const double arr = src.center_time + hop;
          const double slack = std::min(src.slack, e_next - arr);
          if (slack < 0.0) continue;  // delta_ij = 0: next misses deadline
          SequenceOption opt;
          opt.route = src.route;
          opt.route.push_back(next);
          opt.center_time = arr;
          opt.slack = slack;
          c.route_bytes_copied += opt.route.size() * sizeof(uint32_t);
          ++c.route_allocs;
          ++c.options_recorded;
          InsertParetoOption(target, std::move(opt), config.max_pareto,
                             &stats);
        }
      };
      if (pruned) {
        for (const uint32_t* p = adj.begin(last); p != adj.end(last); ++p) {
          expand_to(*p);
        }
      } else {
        for (uint32_t next = 0; next < n; ++next) expand_to(next);
      }
    }
  }
  c.enumerate_ms = enum_sw.ElapsedMillis();

  Stopwatch fin_sw;
  FTA_SPAN("vdps/finalize");
  result.entries.reserve(by_mask.size());
  for (auto& [mask, entry] : by_mask) {
    FTA_DCHECK(ParetoFrontierInvariantHolds(entry.options));
    result.entries.push_back(std::move(entry));
  }
  // Deterministic order: by set size, then lexicographic dps.
  std::sort(result.entries.begin(), result.entries.end(),
            vdps_internal::EntryOrder{});
  if (config.max_entries > 0 && result.entries.size() > config.max_entries) {
    result.entries.resize(config.max_entries);
    result.truncated = true;
  }
  c.finalize_ms = fin_sw.ElapsedMillis();
  c.pareto_inserts = stats.inserts;
  c.pareto_evictions = stats.evictions;
  c.entries = result.entries.size();
  // The exact engine keeps full routes in its DP table (no arena), so the
  // legacy model equals the actual cost.
  c.legacy_route_bytes = c.route_bytes_copied;
  c.legacy_route_allocs = c.route_allocs;
  c.shards = 1;
  c.max_shard_states = c.states_expanded;
  result.adjacency = std::move(adj);
  return result;
}

}  // namespace fta
