#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geo/distance_matrix.h"
#include "util/logging.h"
#include "util/math_util.h"
#include "vdps/generators.h"
#include "vdps/pareto.h"

namespace fta {
namespace {

/// DP state key: subset mask * n + last delivery point.
using StateKey = uint64_t;

StateKey MakeKey(uint32_t mask, uint32_t last, uint32_t n) {
  return static_cast<StateKey>(mask) * n + last;
}

}  // namespace

GenerationResult GenerateCVdpsExact(const Instance& instance,
                                    const VdpsConfig& config) {
  const uint32_t n = static_cast<uint32_t>(instance.num_delivery_points());
  FTA_CHECK_MSG(n <= 24,
                "GenerateCVdpsExact is a bitmask DP; use "
                "GenerateCVdpsSequences beyond 24 delivery points");
  GenerationResult result;
  if (n == 0) return result;

  const uint32_t cap =
      config.max_set_size == 0 ? n : std::min(config.max_set_size, n);
  const DistanceMatrix dm(instance.center(), instance.DeliveryPointLocations(),
                          instance.travel());

  // dp[(mask, last)] -> Pareto frontier of (arrival, slack) with routes.
  std::unordered_map<StateKey, std::vector<SequenceOption>> dp;
  dp.reserve(1u << std::min(n, 20u));

  // Base case |Q| = 1 (Equation 3): center -> dp_j.
  for (uint32_t j = 0; j < n; ++j) {
    const double arr = dm.FromOrigin(j);
    const double slack = instance.delivery_point(j).earliest_expiry() - arr;
    if (slack < 0.0) continue;  // infeasible even with offset 0
    SequenceOption opt;
    opt.route = {j};
    opt.center_time = arr;
    opt.slack = slack;
    dp[MakeKey(1u << j, j, n)].push_back(std::move(opt));
  }

  // Expand masks in increasing numeric order; every submask precedes its
  // supersets, which realizes Algorithm 1's by-size iteration (Equation 4).
  const uint32_t full = (n >= 32) ? 0xffffffffu : ((1u << n) - 1);
  for (uint32_t mask = 1; mask <= full; ++mask) {
    const int size = __builtin_popcount(mask);
    if (size > static_cast<int>(cap)) continue;
    for (uint32_t last = 0; last < n; ++last) {
      if ((mask & (1u << last)) == 0) continue;
      auto it = dp.find(MakeKey(mask, last, n));
      if (it == dp.end()) continue;
      if (size == static_cast<int>(cap)) continue;  // no further expansion
      for (uint32_t next = 0; next < n; ++next) {
        if (mask & (1u << next)) continue;
        // Distance-constrained pruning: only ε-neighbors of `last`.
        if (dm.DistanceBetween(last, next) > config.epsilon) continue;
        const double hop = dm.Between(last, next);
        const double e_next = instance.delivery_point(next).earliest_expiry();
        auto& target = dp[MakeKey(mask | (1u << next), next, n)];
        // NOTE: dp[] above may rehash; re-find the source options after.
        const auto& sources = dp.find(MakeKey(mask, last, n))->second;
        for (const SequenceOption& src : sources) {
          const double arr = src.center_time + hop;
          const double slack = std::min(src.slack, e_next - arr);
          if (slack < 0.0) continue;  // delta_ij = 0: next misses deadline
          SequenceOption opt;
          opt.route = src.route;
          opt.route.push_back(next);
          opt.center_time = arr;
          opt.slack = slack;
          InsertParetoOption(target, std::move(opt), config.max_pareto);
        }
      }
    }
  }

  // Collect: every mask with at least one feasible (last, option) is a
  // C-VDPS; merge options across last points into one frontier per set.
  std::unordered_map<uint32_t, CVdpsEntry> by_mask;
  for (const auto& [key, options] : dp) {
    // operator[] during expansion default-creates target states that may
    // end up with no feasible option; those are not C-VDPSs.
    if (options.empty()) continue;
    const uint32_t mask = static_cast<uint32_t>(key / n);
    CVdpsEntry& entry = by_mask[mask];
    if (entry.dps.empty()) {
      for (uint32_t j = 0; j < n; ++j) {
        if (mask & (1u << j)) {
          entry.dps.push_back(j);
          entry.total_reward += instance.delivery_point(j).total_reward();
        }
      }
    }
    for (const SequenceOption& opt : options) {
      InsertParetoOption(entry.options, opt, config.max_pareto);
    }
  }
  result.entries.reserve(by_mask.size());
  for (auto& [mask, entry] : by_mask) {
    result.entries.push_back(std::move(entry));
  }
  // Deterministic order: by set size, then lexicographic dps.
  std::sort(result.entries.begin(), result.entries.end(),
            [](const CVdpsEntry& a, const CVdpsEntry& b) {
              if (a.dps.size() != b.dps.size())
                return a.dps.size() < b.dps.size();
              return a.dps < b.dps;
            });
  if (config.max_entries > 0 && result.entries.size() > config.max_entries) {
    result.entries.resize(config.max_entries);
    result.truncated = true;
  }
  return result;
}

}  // namespace fta
