#include "vdps/catalog.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <memory>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "vdps/catalog_internal.h"
#include "vdps/generators.h"
#include "vdps/pareto.h"

namespace fta {
namespace {

using vdps_internal::kMinTravelTime;

/// Workers per inverted-index scan chunk (fixed partition, so the spliced
/// output never depends on the thread count).
constexpr size_t kWorkerChunk = 8;

/// Mirrors a finished generation run into the process-wide metrics
/// registry. Counter adds only (order-invariant across parallel centers);
/// wall times go to histograms, whose *counts* stay deterministic.
void PublishGeneration(const GenerationCounters& g) {
  auto& reg = obs::MetricsRegistry::Global();
  static obs::Counter& runs = reg.GetCounter("vdps/generations");
  static obs::Counter& states = reg.GetCounter("vdps/states_expanded");
  static obs::Counter& options = reg.GetCounter("vdps/options_recorded");
  static obs::Counter& inserts = reg.GetCounter("vdps/pareto_inserts");
  static obs::Counter& evictions = reg.GetCounter("vdps/pareto_evictions");
  static obs::Counter& entries = reg.GetCounter("vdps/entries");
  static obs::Counter& strategies = reg.GetCounter("vdps/strategies");
  static obs::Counter& arena_nodes = reg.GetCounter("vdps/arena_nodes");
  static obs::Counter& arena_bytes = reg.GetCounter("vdps/arena_bytes");
  static obs::Counter& adjacency = reg.GetCounter("vdps/adjacency_pairs");
  static obs::Counter& shards = reg.GetCounter("vdps/shards");
  static obs::Histogram& wall = reg.GetHistogram(
      "vdps/generate_wall_ms", obs::ExponentialBounds(0.25, 4.0, 8));
  runs.Increment();
  states.Add(g.states_expanded);
  options.Add(g.options_recorded);
  inserts.Add(g.pareto_inserts);
  evictions.Add(g.pareto_evictions);
  entries.Add(g.entries);
  strategies.Add(g.strategies);
  arena_nodes.Add(g.arena_nodes);
  arena_bytes.Add(g.arena_bytes);
  adjacency.Add(g.adjacency_pairs);
  shards.Add(g.shards);
  wall.Observe(g.wall_ms);
}

}  // namespace

void GenerationCounters::Merge(const GenerationCounters& o) {
  states_expanded += o.states_expanded;
  options_recorded += o.options_recorded;
  pareto_inserts += o.pareto_inserts;
  pareto_evictions += o.pareto_evictions;
  entries += o.entries;
  arena_nodes += o.arena_nodes;
  arena_bytes += o.arena_bytes;
  route_bytes_copied += o.route_bytes_copied;
  route_allocs += o.route_allocs;
  scratch_bytes_copied += o.scratch_bytes_copied;
  legacy_route_bytes += o.legacy_route_bytes;
  legacy_route_allocs += o.legacy_route_allocs;
  adjacency_pairs += o.adjacency_pairs;
  shards += o.shards;
  max_shard_states = std::max(max_shard_states, o.max_shard_states);
  strategies += o.strategies;
  adjacency_ms += o.adjacency_ms;
  enumerate_ms += o.enumerate_ms;
  finalize_ms += o.finalize_ms;
  strategies_ms += o.strategies_ms;
  wall_ms += o.wall_ms;
}

VdpsCatalog VdpsCatalog::Generate(const Instance& instance,
                                  const VdpsConfig& config) {
  FTA_SPAN("vdps/generate");
  Stopwatch wall;
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* pool = nullptr;
  if (config.pool != nullptr) {
    // Injected pool: reuse the caller's workers (a 1-thread pool keeps
    // generation serial, matching the num_threads <= 1 contract).
    if (config.pool->num_threads() > 1) pool = config.pool;
  } else if (config.num_threads > 1) {
    owned_pool = std::make_unique<ThreadPool>(config.num_threads);
    pool = owned_pool.get();
  }

  GenerationResult gen =
      config.use_exact_dp
          ? GenerateCVdpsExact(instance, config)
          : (config.beam_width > 0
                 ? GenerateCVdpsBeam(instance, config, config.beam_width, pool)
                 : GenerateCVdpsSequences(instance, config, pool));
  VdpsCatalog catalog;
  catalog.entries_ = std::move(gen.entries);
  catalog.truncated_ = gen.truncated;
  catalog.gen_ = gen.counters;
  catalog.config_ = config;
  // The catalog outlives the Generate() call; never retain the caller's
  // pool pointer past it (ApplyDelta and regen-from-config run serial).
  catalog.config_.pool = nullptr;
  catalog.adjacency_ = std::move(gen.adjacency);

  // Materialize per-worker strategies: a C-VDPS is valid for worker w iff
  // some retained sequence tolerates the worker's center offset, and the
  // set respects the worker's maxDP. Workers are independent, so the build
  // fans out per worker; each slot is written by exactly one job.
  Stopwatch strat_sw;
  const size_t num_workers = instance.num_workers();
  catalog.strategies_.resize(num_workers);
  {
    FTA_SPAN("vdps/strategies");
    const auto build_worker = [&](size_t w) {
      const double offset = instance.WorkerToCenterTime(w);
      const uint32_t max_dp = instance.worker(w).max_delivery_points;
      std::vector<WorkerStrategy>& out = catalog.strategies_[w];
      WorkerStrategy st;
      for (uint32_t e = 0; e < catalog.entries_.size(); ++e) {
        if (vdps_internal::MakeStrategy(catalog.entries_[e], e, offset,
                                        max_dp, &st)) {
          out.push_back(std::move(st));
        }
      }
      std::sort(out.begin(), out.end(), vdps_internal::StrategyOrder{});
    };
    if (pool != nullptr && num_workers > 1) {
      pool->RunBatch(num_workers, build_worker);
    } else {
      for (size_t w = 0; w < num_workers; ++w) build_worker(w);
    }
  }

  // Delivery-point → strategies inverted index, built once against the
  // final (sorted) strategy order. The parallel path scans fixed worker
  // chunks into private (dp, ref) lists and splices them in chunk order —
  // identical to the serial (worker asc, strategy asc) append order.
  FTA_SPAN("vdps/inverted_index");
  catalog.touching_.resize(instance.num_delivery_points());
  struct Touch {
    uint32_t dp;
    StrategyRef ref;
  };
  const auto scan_worker = [&](uint32_t w, std::vector<Touch>& out) {
    const auto& strategies = catalog.strategies_[w];
    for (size_t i = 0; i < strategies.size(); ++i) {
      const CVdpsEntry& entry = catalog.entries_[strategies[i].entry_id];
      for (uint32_t dp : entry.dps) {
        out.push_back(Touch{dp, StrategyRef{w, static_cast<int32_t>(i)}});
      }
    }
  };
  if (pool != nullptr && num_workers > 1) {
    std::vector<std::vector<Touch>> chunk_out(
        ThreadPool::NumChunks(num_workers, kWorkerChunk));
    pool->RunChunked(num_workers, kWorkerChunk,
                     [&](size_t chunk, size_t begin, size_t end) {
                       for (size_t w = begin; w < end; ++w) {
                         scan_worker(static_cast<uint32_t>(w),
                                     chunk_out[chunk]);
                       }
                     });
    for (const auto& out : chunk_out) {
      for (const Touch& t : out) {
        catalog.touching_[t.dp].push_back(t.ref);
      }
    }
  } else {
    std::vector<Touch> out;
    for (uint32_t w = 0; w < num_workers; ++w) {
      out.clear();
      scan_worker(w, out);
      for (const Touch& t : out) {
        catalog.touching_[t.dp].push_back(t.ref);
      }
    }
  }
  catalog.gen_.strategies_ms = strat_sw.ElapsedMillis();
  for (const auto& s : catalog.strategies_) {
    catalog.gen_.strategies += s.size();
  }
  catalog.RebuildStrategyPayoffs();

  catalog.gen_.wall_ms = wall.ElapsedMillis();
  // Phase-boundary contract: the catalog every solver will consume is
  // deep-checked once, right after generation.
  FTA_DCHECK_OK(catalog.ValidateInvariants(instance));
  PublishGeneration(catalog.gen_);
  FTA_LOG(kInfo) << "C-VDPS generation: entries=" << catalog.entries_.size()
                 << " strategies=" << catalog.gen_.strategies << " wall_ms="
                 << StrFormat("%.2f", catalog.gen_.wall_ms)
                 << " arena_bytes=" << catalog.gen_.arena_bytes
                 << " threads=" << (pool != nullptr ? pool->num_threads() : 1);
  return catalog;
}

namespace {

/// Tolerance for cross-checking stored times/rewards against a fresh
/// evaluation: the generators accumulate the same left-to-right sums the
/// evaluator does, but multi-set rewards may fold in a different
/// association, so allow a few ulps of headroom.
constexpr double kValidateTol = 1e-9;

bool NearlyEqual(double a, double b) {
  // Exact equality first: slack is +inf for routes no deadline constrains,
  // and inf - inf below would be NaN.
  if (a == b) return true;
  return std::abs(a - b) <=
         kValidateTol * std::max({1.0, std::abs(a), std::abs(b)});
}

}  // namespace

Status ValidateCVdpsEntry(const Instance& instance, const CVdpsEntry& entry) {
  if (entry.dps.empty()) {
    return Status::Internal("C-VDPS entry with an empty delivery point set");
  }
  double reward = 0.0;
  for (size_t i = 0; i < entry.dps.size(); ++i) {
    if (entry.dps[i] >= instance.num_delivery_points()) {
      return Status::Internal(
          StrFormat("entry references delivery point %u out of range",
                    entry.dps[i]));
    }
    if (i > 0 && entry.dps[i - 1] >= entry.dps[i]) {
      return Status::Internal("entry.dps not strictly ascending");
    }
    reward += instance.delivery_point(entry.dps[i]).total_reward();
  }
  if (!NearlyEqual(reward, entry.total_reward)) {
    return Status::Internal(
        StrFormat("entry total_reward %.17g != recomputed %.17g",
                  entry.total_reward, reward));
  }
  if (entry.options.empty()) {
    return Status::Internal("C-VDPS entry without any retained sequence");
  }
  if (!ParetoFrontierInvariantHolds(entry.options)) {
    return Status::Internal(
        "frontier violates (center_time asc, slack asc) invariant");
  }
  std::vector<uint32_t> sorted;
  for (const SequenceOption& opt : entry.options) {
    sorted = opt.route;
    std::sort(sorted.begin(), sorted.end());
    if (sorted != entry.dps) {
      return Status::Internal("option route is not a permutation of dps");
    }
    const RouteEvaluation eval =
        EvaluateRouteFromCenter(instance, opt.route, 0.0);
    if (!eval.feasible) {
      return Status::Internal("retained sequence misses a deadline");
    }
    if (!NearlyEqual(eval.total_time, opt.center_time)) {
      return Status::Internal(
          StrFormat("option center_time %.17g != evaluated %.17g",
                    opt.center_time, eval.total_time));
    }
    if (!NearlyEqual(eval.slack, opt.slack)) {
      return Status::Internal(StrFormat(
          "option slack %.17g != evaluated %.17g", opt.slack, eval.slack));
    }
  }
  return Status::Ok();
}

Status VdpsCatalog::ValidateInvariants(const Instance& instance) const {
  for (const CVdpsEntry& entry : entries_) {
    if (Status s = ValidateCVdpsEntry(instance, entry); !s.ok()) return s;
  }
  if (strategies_.size() != instance.num_workers()) {
    return Status::Internal(
        StrFormat("catalog covers %zu workers, instance has %zu",
                  strategies_.size(), instance.num_workers()));
  }
  for (size_t w = 0; w < strategies_.size(); ++w) {
    const double offset = instance.WorkerToCenterTime(w);
    const uint32_t max_dp = instance.worker(w).max_delivery_points;
    const std::vector<WorkerStrategy>& sts = strategies_[w];
    for (size_t i = 0; i < sts.size(); ++i) {
      const WorkerStrategy& st = sts[i];
      if (st.entry_id >= entries_.size()) {
        return Status::Internal(StrFormat(
            "worker %zu strategy %zu references missing entry %u", w, i,
            st.entry_id));
      }
      const CVdpsEntry& entry = entries_[st.entry_id];
      if (entry.dps.size() > max_dp) {
        return Status::Internal(StrFormat(
            "worker %zu strategy %zu exceeds maxDP (%zu > %u)", w, i,
            entry.dps.size(), max_dp));
      }
      if (i > 0 && (sts[i - 1].payoff < st.payoff ||
                    (sts[i - 1].payoff == st.payoff &&
                     sts[i - 1].entry_id >= st.entry_id))) {
        return Status::Internal(StrFormat(
            "worker %zu strategies not sorted by (payoff desc, entry asc) "
            "at %zu",
            w, i));
      }
      const SequenceOption* opt = entry.BestOptionFor(offset);
      if (opt == nullptr || opt->route != st.route) {
        return Status::Internal(StrFormat(
            "worker %zu strategy %zu route differs from BestOptionFor", w,
            i));
      }
      if (st.total_time != offset + opt->center_time ||
          st.total_reward != entry.total_reward ||
          st.payoff !=
              entry.total_reward / std::max(st.total_time, kMinTravelTime)) {
        return Status::Internal(StrFormat(
            "worker %zu strategy %zu carries stale time/reward/payoff", w,
            i));
      }
    }
  }
  // The SoA payoff mirror must track strategies_ bit for bit — the
  // BestResponseEngine's candidate scan reads only the mirror.
  if (strategy_payoffs_.size() != strategies_.size()) {
    return Status::Internal(
        StrFormat("strategy payoff mirror covers %zu workers, expected %zu",
                  strategy_payoffs_.size(), strategies_.size()));
  }
  for (size_t w = 0; w < strategies_.size(); ++w) {
    if (strategy_payoffs_[w].size() != strategies_[w].size()) {
      return Status::Internal(StrFormat(
          "strategy payoff mirror for worker %zu has %zu rows, expected %zu",
          w, strategy_payoffs_[w].size(), strategies_[w].size()));
    }
    for (size_t i = 0; i < strategies_[w].size(); ++i) {
      if (std::bit_cast<uint64_t>(strategy_payoffs_[w][i]) !=
          std::bit_cast<uint64_t>(strategies_[w][i].payoff)) {
        return Status::Internal(StrFormat(
            "strategy payoff mirror stale for worker %zu strategy %zu", w,
            i));
      }
    }
  }
  // Reconstruct the inverted index independently; the build order (worker
  // asc, strategy asc) is part of the contract BestResponseEngine::Mark
  // relies on.
  if (touching_.size() != instance.num_delivery_points()) {
    return Status::Internal("inverted index sized off the instance");
  }
  std::vector<std::vector<StrategyRef>> expected(touching_.size());
  for (uint32_t w = 0; w < strategies_.size(); ++w) {
    for (size_t i = 0; i < strategies_[w].size(); ++i) {
      for (uint32_t dp : entries_[strategies_[w][i].entry_id].dps) {
        expected[dp].push_back(StrategyRef{w, static_cast<int32_t>(i)});
      }
    }
  }
  for (size_t dp = 0; dp < touching_.size(); ++dp) {
    if (touching_[dp].size() != expected[dp].size()) {
      return Status::Internal(StrFormat(
          "inverted index at dp %zu has %zu refs, expected %zu", dp,
          touching_[dp].size(), expected[dp].size()));
    }
    for (size_t i = 0; i < expected[dp].size(); ++i) {
      if (touching_[dp][i].worker != expected[dp][i].worker ||
          touching_[dp][i].strategy != expected[dp][i].strategy) {
        return Status::Internal(StrFormat(
            "inverted index mismatch at dp %zu position %zu", dp, i));
      }
    }
  }
  return Status::Ok();
}

int32_t VdpsCatalog::FindEntry(std::span<const uint32_t> dps) const {
  const auto less = [](const CVdpsEntry& e, std::span<const uint32_t> key) {
    if (e.dps.size() != key.size()) return e.dps.size() < key.size();
    return std::lexicographical_compare(e.dps.begin(), e.dps.end(),
                                        key.begin(), key.end());
  };
  const auto it =
      std::lower_bound(entries_.begin(), entries_.end(), dps, less);
  if (it == entries_.end() || it->dps.size() != dps.size() ||
      !std::equal(it->dps.begin(), it->dps.end(), dps.begin())) {
    return -1;
  }
  return static_cast<int32_t>(it - entries_.begin());
}

int32_t VdpsCatalog::FindStrategy(size_t worker, uint32_t entry_id) const {
  const std::vector<WorkerStrategy>& sts = strategies_[worker];
  for (size_t i = 0; i < sts.size(); ++i) {
    if (sts[i].entry_id == entry_id) return static_cast<int32_t>(i);
  }
  return -1;
}

size_t VdpsCatalog::MaxStrategiesPerWorker() const {
  size_t m = 0;
  for (const auto& s : strategies_) m = std::max(m, s.size());
  return m;
}

void VdpsCatalog::RebuildStrategyPayoffs() {
  strategy_payoffs_.resize(strategies_.size());
  for (size_t w = 0; w < strategies_.size(); ++w) {
    const std::vector<WorkerStrategy>& sts = strategies_[w];
    strategy_payoffs_[w].resize(sts.size());
    for (size_t i = 0; i < sts.size(); ++i) {
      strategy_payoffs_[w][i] = sts[i].payoff;
    }
  }
}

std::string VdpsCatalog::Summary() const {
  size_t total = 0;
  for (const auto& s : strategies_) total += s.size();
  return StrFormat(
      "VdpsCatalog{entries=%zu, workers=%zu, strategies=%zu, max/worker=%zu%s}",
      entries_.size(), strategies_.size(), total, MaxStrategiesPerWorker(),
      truncated_ ? ", TRUNCATED" : "");
}

}  // namespace fta
