#include "vdps/catalog.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"
#include "vdps/generators.h"

namespace fta {
namespace {

/// Denominator floor guarding against degenerate zero travel times (worker
/// standing at the center with a delivery point there too).
constexpr double kMinTravelTime = 1e-12;

}  // namespace

VdpsCatalog VdpsCatalog::Generate(const Instance& instance,
                                  const VdpsConfig& config) {
  GenerationResult gen =
      config.use_exact_dp
          ? GenerateCVdpsExact(instance, config)
          : (config.beam_width > 0
                 ? GenerateCVdpsBeam(instance, config, config.beam_width)
                 : GenerateCVdpsSequences(instance, config));
  VdpsCatalog catalog;
  catalog.entries_ = std::move(gen.entries);
  catalog.truncated_ = gen.truncated;

  // Materialize per-worker strategies: a C-VDPS is valid for worker w iff
  // some retained sequence tolerates the worker's center offset, and the
  // set respects the worker's maxDP.
  catalog.strategies_.resize(instance.num_workers());
  for (size_t w = 0; w < instance.num_workers(); ++w) {
    const double offset = instance.WorkerToCenterTime(w);
    const uint32_t max_dp = instance.worker(w).max_delivery_points;
    std::vector<WorkerStrategy>& out = catalog.strategies_[w];
    for (uint32_t e = 0; e < catalog.entries_.size(); ++e) {
      const CVdpsEntry& entry = catalog.entries_[e];
      if (entry.dps.size() > max_dp) continue;
      const SequenceOption* opt = entry.BestOptionFor(offset);
      if (opt == nullptr) continue;
      WorkerStrategy st;
      st.entry_id = e;
      st.route = opt->route;
      st.total_time = offset + opt->center_time;
      st.total_reward = entry.total_reward;
      st.payoff =
          entry.total_reward / std::max(st.total_time, kMinTravelTime);
      out.push_back(std::move(st));
    }
    std::sort(out.begin(), out.end(),
              [](const WorkerStrategy& a, const WorkerStrategy& b) {
                if (a.payoff != b.payoff) return a.payoff > b.payoff;
                return a.entry_id < b.entry_id;
              });
  }

  // Delivery-point → strategies inverted index, built once against the
  // final (sorted) strategy order.
  catalog.touching_.resize(instance.num_delivery_points());
  for (uint32_t w = 0; w < catalog.strategies_.size(); ++w) {
    const auto& strategies = catalog.strategies_[w];
    for (size_t i = 0; i < strategies.size(); ++i) {
      const CVdpsEntry& entry = catalog.entries_[strategies[i].entry_id];
      for (uint32_t dp : entry.dps) {
        catalog.touching_[dp].push_back(
            StrategyRef{w, static_cast<int32_t>(i)});
      }
    }
  }
  return catalog;
}

size_t VdpsCatalog::MaxStrategiesPerWorker() const {
  size_t m = 0;
  for (const auto& s : strategies_) m = std::max(m, s.size());
  return m;
}

std::string VdpsCatalog::Summary() const {
  size_t total = 0;
  for (const auto& s : strategies_) total += s.size();
  return StrFormat(
      "VdpsCatalog{entries=%zu, workers=%zu, strategies=%zu, max/worker=%zu%s}",
      entries_.size(), strategies_.size(), total, MaxStrategiesPerWorker(),
      truncated_ ? ", TRUNCATED" : "");
}

}  // namespace fta
