#include "vdps/route_arena.h"

#include <algorithm>

namespace fta {

uint32_t RouteArena::Depth(uint32_t node) const {
  uint32_t depth = 0;
  for (uint32_t at = node; at != kNone; at = nodes_[at].parent) ++depth;
  return depth;
}

bool RouteArena::Contains(uint32_t node, uint32_t dp) const {
  for (uint32_t at = node; at != kNone; at = nodes_[at].parent) {
    if (nodes_[at].dp == dp) return true;
  }
  return false;
}

void RouteArena::Materialize(uint32_t node, Route& out) const {
  out.clear();
  for (uint32_t at = node; at != kNone; at = nodes_[at].parent) {
    out.push_back(nodes_[at].dp);
  }
  std::reverse(out.begin(), out.end());
}

Route RouteArena::Materialize(uint32_t node) const {
  Route out;
  Materialize(node, out);
  return out;
}

}  // namespace fta
