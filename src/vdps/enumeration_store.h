#ifndef FTA_VDPS_ENUMERATION_STORE_H_
#define FTA_VDPS_ENUMERATION_STORE_H_

// Internal shared machinery of the sequence/beam C-VDPS enumerators: the
// per-shard raw set store and the deterministic shard merge. Not part of
// the public catalog API.

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "vdps/catalog.h"
#include "vdps/generators.h"
#include "vdps/route_arena.h"

namespace fta {
namespace vdps_internal {

/// FNV-1a over an id sequence. Transparent so lookups can hash the
/// enumerator's incrementally maintained sorted key without materializing
/// a fresh vector per probe.
struct SetHash {
  using is_transparent = void;
  size_t operator()(std::span<const uint32_t> v) const {
    uint64_t h = 1469598103934665603ULL;
    for (uint32_t x : v) {
      h ^= x;
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
  size_t operator()(const std::vector<uint32_t>& v) const {
    return operator()(std::span<const uint32_t>(v));
  }
};

struct SetEq {
  using is_transparent = void;
  bool operator()(std::span<const uint32_t> a,
                  std::span<const uint32_t> b) const {
    return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }
};

/// One recorded feasible sequence: an arena route handle plus the
/// (center_time, slack) pair. Field names match SequenceOption so the
/// shared Pareto template runs the exact same selection on these 24-byte
/// records as it would on full options; routes materialize only for the
/// survivors.
struct RawOption {
  double center_time = 0.0;
  double slack = 0.0;
  /// Route handle into the owning shard's arena.
  uint32_t node = RouteArena::kNone;
  /// Owning shard index (selects the arena at materialization time).
  uint32_t shard = 0;
};

/// Raw per-set record: every feasible ordering, in discovery order.
struct SetRecord {
  double total_reward = 0.0;
  std::vector<RawOption> options;
};

using SetStore = std::unordered_map<std::vector<uint32_t>, SetRecord,
                                    SetHash, SetEq>;

/// One enumeration shard: a private set store, route arena, and counters.
/// Shards never share mutable state, so a batch of them runs lock-free;
/// FinalizeShards merges them in shard order afterwards.
struct EnumerationShard {
  SetStore sets;
  RouteArena arena;
  GenerationCounters counters;
  /// True if the max_entries cap blocked a set creation.
  bool truncated = false;

  /// Looks up or creates the record for `key` (sorted ascending). Returns
  /// nullptr — and sets `truncated` — when a creation would exceed
  /// `max_entries` (0 = unlimited). `*created` reports whether a new
  /// record was made; the caller fills total_reward exactly once then.
  /// Key-copy costs of a creation are charged to `counters`.
  SetRecord* Intern(std::span<const uint32_t> key, size_t max_entries,
                    bool* created);
};

/// Merges the shards in index order and builds the final sorted entry
/// list. Per set, raw options concatenate across shards ascending — with
/// shards covering ascending first-delivery-point ranges this reproduces
/// the serial enumerator's insertion order exactly, for any shard count —
/// then run through the shared Pareto selection; only surviving options
/// get their routes materialized from the owning shard's arena. Aggregates
/// every shard's counters (and arena totals) into result.counters.
void FinalizeShards(std::vector<EnumerationShard>& shards,
                    const VdpsConfig& config, GenerationResult& result);

}  // namespace vdps_internal
}  // namespace fta

#endif  // FTA_VDPS_ENUMERATION_STORE_H_
