#include "vdps/enumeration_store.h"

#include <algorithm>
#include <utility>

#include "util/check.h"
#include "util/logging.h"
#include "vdps/catalog_internal.h"
#include "vdps/pareto.h"

namespace fta {
namespace vdps_internal {

SetRecord* EnumerationShard::Intern(std::span<const uint32_t> key,
                                    size_t max_entries, bool* created) {
  *created = false;
  auto it = sets.find(key);
  if (it == sets.end()) {
    if (max_entries > 0 && sets.size() >= max_entries) {
      truncated = true;
      return nullptr;
    }
    it = sets.emplace(std::vector<uint32_t>(key.begin(), key.end()),
                      SetRecord{})
             .first;
    counters.route_bytes_copied += key.size() * sizeof(uint32_t);
    ++counters.route_allocs;
    *created = true;
  }
  return &it->second;
}

void FinalizeShards(std::vector<EnumerationShard>& shards,
                    const VdpsConfig& config, GenerationResult& result) {
  GenerationCounters& c = result.counters;
  for (const EnumerationShard& s : shards) {
    c.states_expanded += s.counters.states_expanded;
    c.options_recorded += s.counters.options_recorded;
    c.route_bytes_copied += s.counters.route_bytes_copied;
    c.route_allocs += s.counters.route_allocs;
    c.scratch_bytes_copied += s.counters.scratch_bytes_copied;
    c.legacy_route_bytes += s.counters.legacy_route_bytes;
    c.legacy_route_allocs += s.counters.legacy_route_allocs;
    c.arena_nodes += s.arena.num_nodes();
    c.arena_bytes += s.arena.bytes();
    c.max_shard_states =
        std::max(c.max_shard_states, s.counters.states_expanded);
    result.truncated = result.truncated || s.truncated;
  }
  c.shards += shards.size();

  // Merge the shard stores into shards[0].sets. merge() splices every set
  // first seen in shard s (raw options riding along untouched); sets that
  // already exist stay behind in the source and get their options appended
  // to the spliced record. Shards cover ascending first-delivery-point
  // ranges and are processed ascending, so the per-set concatenation is
  // exactly the order the serial enumerator would have recorded in.
  SetStore& merged = shards[0].sets;
  for (size_t s = 1; s < shards.size(); ++s) {
    merged.merge(shards[s].sets);
    // Order-invariant fold: each leftover key splices into its own merged
    // record, and shards are processed in ascending (fixed) order, so no
    // bucket-order dependence can reach the catalog — which additionally
    // sorts entries before returning.
    // NOLINTNEXTLINE(fta-det)
    for (auto& [key, rec] : shards[s].sets) {
      SetRecord& target = merged.find(key)->second;
      target.options.insert(target.options.end(), rec.options.begin(),
                            rec.options.end());
    }
    shards[s].sets.clear();
  }

  // Replay the serial Pareto selection over each set's raw options, then
  // materialize routes only for the survivors.
  ParetoStats stats;
  std::vector<RawOption> frontier;
  result.entries.reserve(merged.size());
  while (!merged.empty()) {
    auto nh = merged.extract(merged.begin());
    frontier.clear();
    for (const RawOption& raw : nh.mapped().options) {
      InsertParetoOptionT(frontier, raw, config.max_pareto, &stats);
    }
    CVdpsEntry entry;
    entry.dps = std::move(nh.key());
    entry.total_reward = nh.mapped().total_reward;
    entry.options.reserve(frontier.size());
    for (const RawOption& raw : frontier) {
      SequenceOption opt;
      shards[raw.shard].arena.Materialize(raw.node, opt.route);
      c.route_bytes_copied += opt.route.size() * sizeof(uint32_t);
      ++c.route_allocs;
      opt.center_time = raw.center_time;
      opt.slack = raw.slack;
      entry.options.push_back(std::move(opt));
    }
    FTA_DCHECK(ParetoFrontierInvariantHolds(entry.options));
    result.entries.push_back(std::move(entry));
  }
  std::sort(result.entries.begin(), result.entries.end(), EntryOrder{});
  c.pareto_inserts += stats.inserts;
  c.pareto_evictions += stats.evictions;
  c.entries += result.entries.size();
}

}  // namespace vdps_internal
}  // namespace fta
