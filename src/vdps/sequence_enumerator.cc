#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "geo/distance_matrix.h"
#include "geo/grid_index.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/math_util.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"
#include "vdps/enumeration_store.h"
#include "vdps/generators.h"
#include "vdps/route_arena.h"

namespace fta {
namespace {

/// Roots per enumeration shard. Small enough to keep ~n/8 shards for
/// dynamic load balancing across the pool, large enough that per-shard
/// scratch (an n-bit visited mask) stays negligible. The catalog does not
/// depend on this value: FinalizeShards reproduces the serial recording
/// order for any shard partition of ascending root ranges.
constexpr size_t kRootsPerShard = 8;

/// Read-only inputs shared by every shard.
struct DfsContext {
  const Instance* instance = nullptr;
  const VdpsConfig* config = nullptr;
  const DistanceMatrix* dm = nullptr;
  /// ε-neighbor rows; nullptr when ε = ∞ disables pruning.
  const RadiusAdjacency* adj = nullptr;
  uint32_t n = 0;
  uint32_t cap = 0;
  /// SoA mirrors of the two per-delivery-point fields the DFS inner loop
  /// reads (the scalar-AoS leftover of ROADMAP item 3): gathered once out
  /// of the ~56-byte-stride DeliveryPoint structs so the hot loop streams
  /// contiguous doubles next to the travel-time row instead of striding
  /// through Point + vector<SpatialTask> payloads per neighbor.
  std::vector<double> earliest_expiry;
  std::vector<double> total_reward;
};

/// Depth-first enumeration over one shard's root range. All mutable state
/// (set store, route arena, counters) lives in the shard, so shards run
/// lock-free on a pool.
class ShardDfs {
 public:
  ShardDfs(const DfsContext& ctx, vdps_internal::EnumerationShard& shard,
           uint32_t shard_index)
      : ctx_(ctx), shard_(shard), shard_index_(shard_index) {
    in_route_.assign(ctx.n, false);
    key_.reserve(ctx.cap);
    // One gather scratch per DFS depth: the batched neighbor gather at
    // depth d must survive the recursive calls it feeds, which overwrite
    // the scratch of depth d + 1 only.
    scratch_.resize(ctx.cap);
  }

  /// Enumerates every feasible sequence whose first delivery point lies in
  /// [begin, end). The first hop (center -> dp) is not ε-pruned: Equation 4
  /// constrains inter-point hops only.
  void RunRoots(uint32_t begin, uint32_t end) {
    for (uint32_t j = begin; j < end; ++j) {
      const double arr = ctx_.dm->FromOrigin(j);
      const double slack = ctx_.earliest_expiry[j] - arr;
      if (slack < 0.0) continue;
      in_route_[j] = true;
      key_.push_back(j);
      Dfs(j, arr, slack, shard_.arena.Push(RouteArena::kNone, j));
      key_.pop_back();
      in_route_[j] = false;
    }
  }

 private:
  /// Records the current sequence (its set is `key_`, its route is the
  /// arena chain ending at `node`) as a raw option.
  void Record(double arrival, double slack, uint32_t node) {
    GenerationCounters& c = shard_.counters;
    // What the pre-arena implementation would have spent here: a sort-key
    // copy plus a full route copy per recorded sequence...
    c.legacy_route_bytes += 2 * key_.size() * sizeof(uint32_t);
    c.legacy_route_allocs += 2;
    bool created = false;
    vdps_internal::SetRecord* rec =
        shard_.Intern(key_, ctx_.config->max_entries, &created);
    if (rec == nullptr) return;  // entry cap hit; shard_.truncated is set
    if (created) {
      // ...plus an entry.dps copy per new set.
      c.legacy_route_bytes += key_.size() * sizeof(uint32_t);
      ++c.legacy_route_allocs;
      double reward = 0.0;
      for (uint32_t dp : key_) reward += ctx_.total_reward[dp];
      rec->total_reward = reward;
    }
    rec->options.push_back(
        vdps_internal::RawOption{arrival, slack, node, shard_index_});
    ++c.options_recorded;
  }

  void Dfs(uint32_t last, double arrival, double slack, uint32_t node) {
    ++shard_.counters.states_expanded;
    Record(arrival, slack, node);
    if (key_.size() >= ctx_.cap) return;
    if (shard_.truncated) return;
    // Distance-constrained pruning (Section IV): extend only to delivery
    // points within ε of the current one — one precomputed adjacency row.
    //
    // Batched gather over the SoA mirrors: pass 1 streams the contiguous
    // travel-time row and expiry mirror to compute every feasible
    // neighbor's (arrival, slack); pass 2 recurses into them. The
    // per-neighbor expression tree is unchanged and in_route_ is restored
    // before each next sibling in the fused loop too, so the candidate
    // set, the visit order, and every double are bit-identical to the
    // fused form (pinned by vdps_catalog_equivalence_test) — the split
    // just keeps the gather loop branch-light and free of the recursion's
    // cache pollution.
    DepthScratch& sc = scratch_[key_.size() - 1];
    sc.next.clear();
    sc.arr.clear();
    sc.slk.clear();
    const double* row = ctx_.dm->TimeRow(last);
    const auto gather = [&](uint32_t next) {
      if (in_route_[next]) return;
      const double arr = arrival + row[next];
      const double slk = std::min(slack, ctx_.earliest_expiry[next] - arr);
      if (slk < 0.0) return;  // misses a deadline even with offset 0
      sc.next.push_back(next);
      sc.arr.push_back(arr);
      sc.slk.push_back(slk);
    };
    if (ctx_.adj == nullptr) {
      for (uint32_t next = 0; next < ctx_.n; ++next) gather(next);
    } else {
      for (const uint32_t* p = ctx_.adj->begin(last); p != ctx_.adj->end(last);
           ++p) {
        gather(*p);
      }
    }
    for (size_t k = 0; k < sc.next.size(); ++k) {
      const uint32_t next = sc.next[k];
      in_route_[next] = true;
      key_.insert(std::lower_bound(key_.begin(), key_.end(), next), next);
      Dfs(next, sc.arr[k], sc.slk[k], shard_.arena.Push(node, next));
      key_.erase(std::lower_bound(key_.begin(), key_.end(), next));
      in_route_[next] = false;
    }
  }

  /// Per-depth gather scratch: parallel (neighbor, arrival, slack) rows
  /// produced by pass 1 of the batched extend.
  struct DepthScratch {
    std::vector<uint32_t> next;
    std::vector<double> arr;
    std::vector<double> slk;
  };

  const DfsContext& ctx_;
  vdps_internal::EnumerationShard& shard_;
  const uint32_t shard_index_;
  std::vector<DepthScratch> scratch_;
  std::vector<bool> in_route_;
  /// The current set, kept sorted ascending — the enumerators key set
  /// stores by sorted id sequences, and maintaining the key incrementally
  /// (|key| <= max_set_size) replaces the old copy+sort per Record.
  std::vector<uint32_t> key_;
};

}  // namespace

GenerationResult GenerateCVdpsSequences(const Instance& instance,
                                        const VdpsConfig& config,
                                        ThreadPool* pool) {
  GenerationResult result;
  const uint32_t n = static_cast<uint32_t>(instance.num_delivery_points());
  if (n == 0) return result;

  const DistanceMatrix dm(instance.center(), instance.DeliveryPointLocations(),
                          instance.travel());

  // ε-adjacency precompute: one radius query per delivery point up front
  // instead of one per expanded DFS state.
  RadiusAdjacency adj;
  const bool pruned = !std::isinf(config.epsilon);
  if (pruned) {
    Stopwatch adj_sw;
    FTA_SPAN("vdps/adjacency");
    const GridIndex grid(instance.DeliveryPointLocations(), config.epsilon);
    adj = grid.BuildRadiusAdjacency(config.epsilon, pool);
    result.counters.adjacency_ms = adj_sw.ElapsedMillis();
    result.counters.adjacency_pairs = adj.num_pairs();
  }

  DfsContext ctx;
  ctx.instance = &instance;
  ctx.config = &config;
  ctx.dm = &dm;
  ctx.adj = pruned ? &adj : nullptr;
  ctx.n = n;
  ctx.cap = config.max_set_size == 0 ? n : std::min(config.max_set_size, n);
  ctx.earliest_expiry.resize(n);
  ctx.total_reward.resize(n);
  for (uint32_t j = 0; j < n; ++j) {
    const DeliveryPoint& dp = instance.delivery_point(j);
    ctx.earliest_expiry[j] = dp.earliest_expiry();
    ctx.total_reward[j] = dp.total_reward();
  }

  // max_entries > 0 forces a single shard: the truncation point is
  // path-dependent, and only the serial path reproduces it exactly.
  const bool parallel = pool != nullptr && pool->num_threads() > 1 &&
                        config.max_entries == 0 && n > 1;
  std::vector<vdps_internal::EnumerationShard> shards;
  Stopwatch enum_sw;
  {
    FTA_SPAN("vdps/enumerate");
    if (parallel) {
      shards.resize(ThreadPool::NumChunks(n, kRootsPerShard));
      pool->RunChunked(n, kRootsPerShard,
                       [&](size_t chunk, size_t begin, size_t end) {
                         FTA_SPAN("vdps/enumerate_shard");
                         ShardDfs dfs(ctx, shards[chunk],
                                      static_cast<uint32_t>(chunk));
                         dfs.RunRoots(static_cast<uint32_t>(begin),
                                      static_cast<uint32_t>(end));
                       });
    } else {
      shards.resize(1);
      ShardDfs dfs(ctx, shards[0], 0);
      dfs.RunRoots(0, n);
    }
  }
  result.counters.enumerate_ms = enum_sw.ElapsedMillis();

  Stopwatch fin_sw;
  {
    FTA_SPAN("vdps/finalize");
    vdps_internal::FinalizeShards(shards, config, result);
  }
  result.counters.finalize_ms = fin_sw.ElapsedMillis();
  result.adjacency = std::move(adj);
  if (result.truncated) {
    FTA_LOG(kWarning) << "C-VDPS generation truncated at "
                      << result.entries.size() << " entries";
  }
  return result;
}

}  // namespace fta
