#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geo/distance_matrix.h"
#include "geo/grid_index.h"
#include "util/logging.h"
#include "util/math_util.h"
#include "vdps/generators.h"
#include "vdps/pareto.h"

namespace fta {
namespace {

/// FNV-1a over a sorted id vector, used to key C-VDPS sets.
struct VectorHash {
  size_t operator()(const std::vector<uint32_t>& v) const {
    uint64_t h = 1469598103934665603ULL;
    for (uint32_t x : v) {
      h ^= x;
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

/// Mutable DFS state shared across recursive calls.
struct Search {
  const Instance* instance = nullptr;
  const VdpsConfig* config = nullptr;
  const DistanceMatrix* dm = nullptr;
  const GridIndex* grid = nullptr;
  uint32_t cap = 0;

  std::unordered_map<std::vector<uint32_t>, CVdpsEntry, VectorHash> entries;
  std::vector<bool> in_route;
  Route route;
  bool truncated = false;

  bool AtEntryCap() const {
    return config->max_entries > 0 && entries.size() >= config->max_entries;
  }

  /// Records the current route into its set's entry.
  void Record(double arrival, double slack) {
    std::vector<uint32_t> key = route;
    std::sort(key.begin(), key.end());
    auto it = entries.find(key);
    if (it == entries.end()) {
      if (AtEntryCap()) {
        truncated = true;
        return;
      }
      CVdpsEntry entry;
      entry.dps = key;
      for (uint32_t dp : key) {
        entry.total_reward += instance->delivery_point(dp).total_reward();
      }
      it = entries.emplace(std::move(key), std::move(entry)).first;
    }
    SequenceOption opt;
    opt.route = route;
    opt.center_time = arrival;
    opt.slack = slack;
    InsertParetoOption(it->second.options, std::move(opt),
                       config->max_pareto);
  }

  void Dfs(uint32_t last, double arrival, double slack) {
    Record(arrival, slack);
    if (route.size() >= cap) return;
    if (truncated && AtEntryCap()) return;
    // Distance-constrained pruning (Section IV): extend only to delivery
    // points within ε of the current one.
    const auto extend = [&](uint32_t next) {
      if (in_route[next]) return;
      const double arr = arrival + dm->Between(last, next);
      const double slk = std::min(
          slack, instance->delivery_point(next).earliest_expiry() - arr);
      if (slk < 0.0) return;  // misses a deadline even with offset 0
      in_route[next] = true;
      route.push_back(next);
      Dfs(next, arr, slk);
      route.pop_back();
      in_route[next] = false;
    };
    if (std::isinf(config->epsilon)) {
      for (uint32_t next = 0; next < instance->num_delivery_points(); ++next) {
        extend(next);
      }
    } else {
      const Point& at = instance->delivery_point(last).location();
      for (uint32_t next : grid->RadiusQuery(at, config->epsilon)) {
        extend(next);
      }
    }
  }
};

}  // namespace

GenerationResult GenerateCVdpsSequences(const Instance& instance,
                                        const VdpsConfig& config) {
  GenerationResult result;
  const uint32_t n = static_cast<uint32_t>(instance.num_delivery_points());
  if (n == 0) return result;

  const DistanceMatrix dm(instance.center(), instance.DeliveryPointLocations(),
                          instance.travel());
  // Cell size tuned to the query radius; for ε = inf the grid is unused.
  const GridIndex grid(instance.DeliveryPointLocations(),
                       std::isinf(config.epsilon) ? 0.0 : config.epsilon);

  Search search;
  search.instance = &instance;
  search.config = &config;
  search.dm = &dm;
  search.grid = &grid;
  search.cap = config.max_set_size == 0 ? n : std::min(config.max_set_size, n);
  search.in_route.assign(n, false);

  // The first hop (center -> dp) is not ε-pruned: Equation 4 constrains
  // inter-point hops only.
  for (uint32_t j = 0; j < n; ++j) {
    const double arr = dm.FromOrigin(j);
    const double slack = instance.delivery_point(j).earliest_expiry() - arr;
    if (slack < 0.0) continue;
    search.in_route[j] = true;
    search.route.push_back(j);
    search.Dfs(j, arr, slack);
    search.route.pop_back();
    search.in_route[j] = false;
  }

  result.entries.reserve(search.entries.size());
  for (auto& [key, entry] : search.entries) {
    result.entries.push_back(std::move(entry));
  }
  std::sort(result.entries.begin(), result.entries.end(),
            [](const CVdpsEntry& a, const CVdpsEntry& b) {
              if (a.dps.size() != b.dps.size())
                return a.dps.size() < b.dps.size();
              return a.dps < b.dps;
            });
  result.truncated = search.truncated;
  if (result.truncated) {
    FTA_LOG(kWarning) << "C-VDPS generation truncated at "
                      << result.entries.size() << " entries";
  }
  return result;
}

}  // namespace fta
