#ifndef FTA_VDPS_PARETO_H_
#define FTA_VDPS_PARETO_H_

#include <cstddef>
#include <vector>

#include "vdps/catalog.h"

namespace fta {

/// Inserts `opt` into `frontier` (kept sorted by center_time ascending,
/// slack ascending), dropping dominated options. Option A dominates B when
/// A.center_time <= B.center_time and A.slack >= B.slack. When the frontier
/// would exceed `max_size`, the option whose removal loses the least slack
/// coverage is dropped (the first one after the minimum-time option).
///
/// Returns true if `opt` was inserted.
bool InsertParetoOption(std::vector<SequenceOption>& frontier,
                        SequenceOption opt, size_t max_size);

}  // namespace fta

#endif  // FTA_VDPS_PARETO_H_
