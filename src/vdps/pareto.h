#ifndef FTA_VDPS_PARETO_H_
#define FTA_VDPS_PARETO_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/math_util.h"
#include "vdps/catalog.h"

namespace fta {

/// Bookkeeping of one frontier's insertion history (generation counters).
struct ParetoStats {
  /// Options accepted into the frontier.
  uint64_t inserts = 0;
  /// Options rejected as dominated on arrival.
  uint64_t rejects = 0;
  /// Options removed again — dominated by a later arrival or squeezed out
  /// by the max_size cap.
  uint64_t evictions = 0;
};

/// Inserts `opt` into `frontier` (kept sorted by center_time ascending,
/// slack ascending), dropping dominated options. Option A dominates B when
/// A.center_time <= B.center_time and A.slack >= B.slack. When the frontier
/// would exceed `max_size`, the option whose removal loses the least slack
/// coverage is dropped (the first one after the minimum-time option).
///
/// Templated so the enumerators can run the selection on lightweight
/// (center_time, slack, arena-handle) records and materialize routes only
/// for survivors; `Option` needs `center_time` and `slack` members. The
/// algorithm — and therefore the surviving set for a given insertion
/// order — is identical for every instantiation.
///
/// Returns true if `opt` was inserted.
template <typename Option>
bool InsertParetoOptionT(std::vector<Option>& frontier, Option opt,
                         size_t max_size, ParetoStats* stats = nullptr) {
  if (max_size == 0) return false;
  // Reject if dominated by an existing option.
  for (const Option& o : frontier) {
    if (o.center_time <= opt.center_time + kEps &&
        o.slack + kEps >= opt.slack) {
      if (stats != nullptr) ++stats->rejects;
      return false;
    }
  }
  // Remove options dominated by the new one.
  const size_t before = frontier.size();
  frontier.erase(std::remove_if(frontier.begin(), frontier.end(),
                                [&](const Option& o) {
                                  return opt.center_time <=
                                             o.center_time + kEps &&
                                         opt.slack + kEps >= o.slack;
                                }),
                 frontier.end());
  if (stats != nullptr) stats->evictions += before - frontier.size();
  // Insert keeping center_time ascending order (slack is then ascending
  // automatically on a Pareto frontier).
  auto it = std::lower_bound(frontier.begin(), frontier.end(), opt,
                             [](const Option& a, const Option& b) {
                               return a.center_time < b.center_time;
                             });
  frontier.insert(it, std::move(opt));
  if (stats != nullptr) ++stats->inserts;
  if (frontier.size() > max_size) {
    // Keep the fastest option and the max-slack option; squeeze the middle.
    frontier.erase(frontier.begin() + 1);
    if (stats != nullptr) ++stats->evictions;
  }
  return true;
}

/// The SequenceOption instantiation (callable with braced initializers).
bool InsertParetoOption(std::vector<SequenceOption>& frontier,
                        SequenceOption opt, size_t max_size,
                        ParetoStats* stats = nullptr);

/// True if `frontier` satisfies the documented ordering invariant: strictly
/// ascending center_time AND strictly ascending slack (every prefix option
/// is faster but tighter than its successors). CVdpsEntry::BestOptionFor's
/// binary search relies on it.
template <typename Option>
bool ParetoFrontierInvariantHolds(const std::vector<Option>& frontier) {
  for (size_t i = 1; i < frontier.size(); ++i) {
    if (frontier[i - 1].center_time >= frontier[i].center_time) return false;
    if (frontier[i - 1].slack >= frontier[i].slack) return false;
  }
  return true;
}

}  // namespace fta

#endif  // FTA_VDPS_PARETO_H_
